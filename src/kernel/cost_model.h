// Latency and performance-factor constants for the simulated machine.
//
// Every constant that the paper's Table 3 reports (or that its analysis
// depends on) lives here, so a benchmark can state exactly what it assumed
// and an experiment can tweak one knob (e.g. SMT contention for a
// memory-bound workload) without touching mechanism code.
//
// Calibration against Table 3 of the paper (Skylake defaults):
//   syscall                         72 ns   (line 10)
//   pthread minimal context switch 410 ns   (line 11)
//   CFS context switch             599 ns   (line 12)
//   local ghOSt schedule           888 ns = txn_commit_local(289) + cs(599)   (line 3)
//   msg delivery to global agent   265 ns = produce(135) + poll_detect(100) + dequeue(30) (line 2)
//   msg delivery to local agent    725 ns = produce(135) + wakeup(150) + agent_cs(410) + dequeue(30) (line 1)
//   remote schedule, agent side    665 ns = remote_commit_fixed(298) + per_txn(367)     (line 4)
//   remote schedule, target side  1064 ns = ipi_handle(465) + cs(599)                   (line 5)
//   remote schedule end-to-end    1769 ns = agent(665) + ipi_flight(40) + target(1064)  (line 6)
//   group of 10, agent side       3968 ns = 298 + 10*367                                (line 7)
#ifndef GHOST_SIM_SRC_KERNEL_COST_MODEL_H_
#define GHOST_SIM_SRC_KERNEL_COST_MODEL_H_

#include "src/base/time.h"

namespace gs {

struct CostModel {
  // --- Syscall & context-switch costs -------------------------------------
  Duration syscall = Nanoseconds(72);
  // Full kernel context switch (deschedule + switch + account), CFS path.
  Duration context_switch = Nanoseconds(599);
  // Lightweight switch into an agent thread (paper line 11: 410 ns).
  Duration agent_context_switch = Nanoseconds(410);

  // --- ghOSt transaction costs --------------------------------------------
  // Extra commit/validation work for a local commit on top of the switch.
  Duration txn_commit_local = Nanoseconds(289);
  // Remote (IPI-based) commit: fixed syscall+setup cost per TXNS_COMMIT call
  // plus a per-transaction cost. Group commits amortize the fixed part and
  // the IPI broadcast (batch interrupts, §3.2).
  Duration remote_commit_fixed = Nanoseconds(298);
  Duration remote_commit_per_txn = Nanoseconds(367);

  // --- Interrupts -----------------------------------------------------------
  // Wire flight time of an IPI to a same-socket CPU.
  Duration ipi_flight = Nanoseconds(40);
  // Additional flight time when crossing sockets (system bus, §4.1 Fig 5 ❸).
  Duration ipi_flight_cross_numa_extra = Nanoseconds(300);
  // Interrupt entry/exit + resched handling on the target CPU.
  Duration ipi_handle = Nanoseconds(465);

  // --- Message path ----------------------------------------------------------
  Duration msg_produce = Nanoseconds(135);
  // Amortized dequeue cost for a draining consumer (cache-resident ring).
  Duration msg_dequeue = Nanoseconds(30);
  // Time for a spinning consumer to observe a newly produced message
  // (cache-line transfer + poll granularity).
  Duration poll_detect = Nanoseconds(100);
  // Marking a blocked agent runnable + triggering a resched.
  Duration agent_wakeup = Nanoseconds(150);

  // --- Agent loop costs (userspace policy code) ------------------------------
  // Fixed cost of one scheduling-loop iteration (reading status words etc.).
  Duration agent_loop_fixed = Nanoseconds(150);
  // Cost per runnable task considered by the policy's dispatch loop.
  Duration agent_per_task_scan = Nanoseconds(30);
  // Cost per idle-CPU status-word read (amortized: the idle map is a bitmap,
  // so a draining agent reads many CPUs per cache line).
  Duration agent_per_cpu_scan = Nanoseconds(2);
  // Multiplier on agent-side per-transaction cost when the target CPU is on
  // a remote NUMA socket (memory ops across the interconnect, Fig 5 ❸).
  double remote_numa_txn_penalty = 1.5;

  // --- Timer ------------------------------------------------------------------
  Duration tick_period = Milliseconds(1);
  // CPU time each tick steals from the interrupted task (§5: for VM guests a
  // tick means a VM-exit; the tick-less ablation sets this to a few us).
  Duration tick_cost = 0;

  // --- Execution-speed factors -------------------------------------------------
  // Speed factor for a compute task whose SMT sibling is busy (1.0 = full
  // speed). Workload-dependent; 0.70 approximates integer/FP mixes, memory-
  // bound codes like bwaves suffer less (§4.5 uses ~0.88).
  double smt_contention_factor = 0.70;
  // Speed factor for a *spinning agent* whose sibling is busy (Fig 5 ❷).
  double agent_smt_contention_factor = 0.75;

  // --- Cache-warmth (migration) penalties, as service-time multipliers ----------
  // Applied once at placement based on how far the task moved since it last
  // ran (§4.4: same-L2, then CCX, then NUMA fan-out search). Neutral (1.0) by
  // default so microbenchmark calibration is exact; cache-sensitive
  // experiments (the Search reproduction) install realistic values via
  // WithCacheWarmth().
  double warmth_same_core = 1.0;
  double warmth_same_ccx = 1.0;
  double warmth_same_numa = 1.0;
  double warmth_cross_numa = 1.0;
  // Warmth decays: after this long off-CPU the cache is cold anyway and the
  // penalty no longer applies (everything costs warmth_cold_factor).
  Duration warmth_decay = Milliseconds(10);
  double warmth_cold_factor = 1.0;

  // Returns a copy with realistic cache-warmth penalties for memory-bound
  // workloads on CCX-based parts (used by the Google Search reproduction).
  CostModel WithCacheWarmth() const {
    CostModel model = *this;
    // Calibrated so that good-vs-bad placement moves service times by the
    // ~30-40% the paper's NUMA/CCX placement optimizations were worth
    // (§4.4: +27% and +10% throughput).
    model.warmth_same_core = 1.00;
    model.warmth_same_ccx = 1.03;
    model.warmth_same_numa = 1.35;
    model.warmth_cross_numa = 1.60;
    model.warmth_cold_factor = 1.15;
    // Large per-worker working sets stay L3-resident for tens of ms on
    // 16 MB CCX caches.
    model.warmth_decay = Milliseconds(50);
    return model;
  }
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_KERNEL_COST_MODEL_H_
