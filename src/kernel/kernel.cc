#include "src/kernel/kernel.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/sim/sched_tag.h"

namespace gs {

const char* ToString(TaskState state) {
  switch (state) {
    case TaskState::kCreated:
      return "created";
    case TaskState::kRunnable:
      return "runnable";
    case TaskState::kRunning:
      return "running";
    case TaskState::kBlocked:
      return "blocked";
    case TaskState::kDead:
      return "dead";
  }
  return "?";
}

Kernel::Kernel(EventLoop* loop, Topology topology, CostModel cost,
               StatsRegistry* stats_registry)
    : loop_(loop),
      topology_(std::move(topology)),
      cost_(cost),
      owned_stats_(stats_registry == nullptr ? std::make_unique<StatsRegistry>()
                                             : nullptr),
      stats_(stats_registry == nullptr ? owned_stats_.get() : stats_registry) {
  StatsRegistry& stats = *stats_;
  stat_switch_task_ = stats.GetCounter("kernel_context_switch_total", {{"kind", "task"}});
  stat_switch_agent_ = stats.GetCounter("kernel_context_switch_total", {{"kind", "agent"}});
  stat_ipi_local_ = stats.GetCounter("kernel_ipi_total", {{"cross_numa", "false"}});
  stat_ipi_cross_numa_ = stats.GetCounter("kernel_ipi_total", {{"cross_numa", "true"}});
  stat_ticks_ = stats.GetCounter("kernel_tick_total");
  stat_tick_cost_ns_ = stats.GetCounter("kernel_tick_cost_ns_total");
  cpus_.resize(topology_.num_cpus());
  tick_enabled_.assign(topology_.num_cpus(), true);
  ticks_delivered_.assign(topology_.num_cpus(), 0);
  for (int i = 0; i < topology_.num_cpus(); ++i) {
    cpus_[i].id = i;
    idle_cpus_.Set(i);  // every CPU boots idle
  }
  // Staggered per-CPU timer ticks, like Linux. Periodic: the tick re-arms in
  // place instead of re-scheduling itself, so the steady-state per-CPU tick
  // costs no push/pop churn.
  const Duration period = cost_.tick_period;
  for (int i = 0; i < topology_.num_cpus(); ++i) {
    const Duration phase = period * (i + 1) / topology_.num_cpus();
    loop_->SchedulePeriodic(phase, period, [this, i] { OnTick(i); },
                            MakeSchedTag(SchedTagKind::kTimer, i));
  }
}

Kernel::~Kernel() = default;

void Kernel::InstallClasses(std::vector<std::unique_ptr<SchedClass>> classes,
                            int default_index) {
  CHECK(classes_.empty()) << "classes already installed";
  CHECK_GE(default_index, 0);
  CHECK_LT(default_index, static_cast<int>(classes.size()));
  classes_ = std::move(classes);
  default_index_ = default_index;
  for (auto& cls : classes_) {
    cls->Attach(this);
  }
}

Task* Kernel::CreateTask(const std::string& name, SchedClass* cls) {
  if (cls == nullptr) {
    cls = default_class();
  }
  Task* ptr = task_slab_.New(next_tid_++, name);
  tasks_.push_back(ptr);
  ptr->set_sched_class(cls);
  cls->TaskNew(ptr);
  return ptr;
}

Task* Kernel::FindTask(int64_t tid) const {
  for (Task* task : tasks_) {
    if (task->tid() == tid) {
      return task;
    }
  }
  return nullptr;
}

void Kernel::StartBurst(Task* task, Duration duration, Task::BurstDoneFn on_done) {
  CHECK_GE(duration, 0);
  task->SetBurst(duration, std::move(on_done));
  if (task->state() == TaskState::kRunning) {
    ArmCompletion(task->cpu());
  }
}

void Kernel::Wake(Task* task) {
  CHECK(task->state() == TaskState::kCreated || task->state() == TaskState::kBlocked)
      << task->name() << " is " << ToString(task->state());
  // ttwu-on_cpu race: the task blocked but its CPU hasn't descheduled it yet
  // (the resched event is pending). Defer the wakeup until the deschedule
  // completes, as try_to_wake_up() does.
  if (task->state() == TaskState::kBlocked && task->cpu() >= 0 &&
      cpus_[task->cpu()].current == task) {
    task->set_wake_pending(true);
    return;
  }
  task->set_state(TaskState::kRunnable);
  task->set_runnable_since(now());
  trace_.Record(now(), TraceEventType::kWakeup, task->cpu(), task->tid());
  task->sched_class()->EnqueueWake(task);
}

void Kernel::Block(Task* task) {
  CHECK(task->state() == TaskState::kRunning) << task->name();
  task->set_state(TaskState::kBlocked);
  trace_.Record(now(), TraceEventType::kBlock, task->cpu(), task->tid());
  ReschedCpu(task->cpu());
}

void Kernel::Exit(Task* task) {
  CHECK(task->state() == TaskState::kRunning) << task->name();
  UpdateProgress(task->cpu());
  task->set_state(TaskState::kDead);
  trace_.Record(now(), TraceEventType::kExit, task->cpu(), task->tid());
  // Synchronous death bookkeeping (the task_dead hook): by the time Exit
  // returns, no class may still advertise the task as managed.
  task->sched_class()->TaskExited(task);
  ReschedCpu(task->cpu());
}

void Kernel::Yield(Task* task) {
  CHECK(task->state() == TaskState::kRunning) << task->name();
  cpus_[task->cpu()].yielded = true;
  ReschedCpu(task->cpu());
}

void Kernel::Kill(Task* task) {
  switch (task->state()) {
    case TaskState::kRunning:
      Exit(task);
      return;
    case TaskState::kRunnable:
      // May be queued in its class or mid-switch onto a CPU; the class forgets
      // it here and FinishSwitch tolerates a dead incoming task.
      task->sched_class()->TaskDeparted(task);
      task->set_state(TaskState::kDead);
      return;
    case TaskState::kCreated:
    case TaskState::kBlocked:
      task->set_state(TaskState::kDead);
      // No PutPrev will ever run for a task that dies off-CPU; the class
      // must still drop its bookkeeping (ghOSt: status word + enclave table).
      if (task->sched_class() != nullptr) {
        task->sched_class()->TaskExited(task);
      }
      return;
    case TaskState::kDead:
      return;
  }
}

int Kernel::AddIdleListener(IdleListener listener) {
  const int handle = next_listener_id_++;
  idle_listeners_.emplace_back(handle, std::move(listener));
  return handle;
}

void Kernel::RemoveIdleListener(int handle) {
  for (auto it = idle_listeners_.begin(); it != idle_listeners_.end(); ++it) {
    if (it->first == handle) {
      idle_listeners_.erase(it);
      return;
    }
  }
}

void Kernel::SetAffinity(Task* task, const CpuMask& mask) {
  CHECK(!mask.Empty());
  task->set_affinity(mask);
  task->sched_class()->AffinityChanged(task);
  if (task->state() == TaskState::kRunning && !mask.IsSet(task->cpu())) {
    ReschedCpu(task->cpu());
  }
}

void Kernel::SetNice(Task* task, int nice) {
  CHECK_GE(nice, -20);
  CHECK_LE(nice, 19);
  task->set_nice(nice);
}

void Kernel::SetSchedClass(Task* task, SchedClass* cls) {
  SchedClass* old = task->sched_class();
  if (old == cls) {
    return;
  }
  old->TaskDeparted(task);
  task->set_sched_class(cls);
  cls->TaskNew(task);
  if (task->state() == TaskState::kRunnable) {
    cls->EnqueueWake(task);
  } else if (task->state() == TaskState::kRunning) {
    // Keep running; the new class adopts it at the next PutPrev. Re-evaluate
    // in case something in the new order should preempt it.
    ReschedCpu(task->cpu());
  }
}

void Kernel::ReschedCpu(int cpu) {
  CpuState& cs = cpus_[cpu];
  if (cs.resched_scheduled) {
    return;
  }
  cs.resched_scheduled = true;
  loop_->ScheduleAfter(0, [this, cpu] {
    cpus_[cpu].resched_scheduled = false;
    ReschedNow(cpu);
  }, MakeSchedTag(SchedTagKind::kCpu, cpu));
}

void Kernel::SendIpi(int to_cpu, bool cross_numa, InlineCallback fn) {
  (cross_numa ? stat_ipi_cross_numa_ : stat_ipi_local_)->Inc();
  Duration delay = cost_.ipi_flight + cost_.ipi_handle;
  if (cross_numa) {
    delay += cost_.ipi_flight_cross_numa_extra;
  }
  if (fault_injector_ != nullptr) {
    // Delayed delivery or a drop recovered by redelivery — either way the
    // interrupt eventually lands, just later than the cost model promises.
    delay += fault_injector_->OnIpi(to_cpu);
  }
  loop_->ScheduleAfter(delay, std::move(fn),
                       MakeSchedTag(SchedTagKind::kCpu, to_cpu));
}

Duration Kernel::CurrentElapsed(int cpu) const {
  const CpuState& cs = cpus_[cpu];
  if (cs.current == nullptr) {
    return 0;
  }
  return now() - cs.pick_time;
}

CpuMask Kernel::IdleCpus() const { return idle_cpus_; }

int Kernel::ClassIndex(const SchedClass* cls) const {
  for (size_t i = 0; i < classes_.size(); ++i) {
    if (classes_[i].get() == cls) {
      return static_cast<int>(i);
    }
  }
  LOG(FATAL) << "unknown sched class";
  return -1;
}

bool Kernel::CpuAvailableFor(int cpu, const SchedClass* cls) const {
  const CpuState& cs = cpus_[cpu];
  const Task* occupant = cs.switching ? cs.switching_to : cs.current;
  if (occupant == nullptr) {
    return true;
  }
  return ClassIndex(occupant->sched_class()) > ClassIndex(cls);
}

uint64_t Kernel::total_context_switches() const {
  uint64_t total = 0;
  for (const CpuState& cs : cpus_) {
    total += cs.context_switches;
  }
  return total;
}

Duration Kernel::CpuBusyTime(int cpu) const {
  const CpuState& cs = cpus_[cpu];
  Duration busy = cs.busy_ns;
  if (cs.busy) {
    busy += now() - cs.busy_since;
  }
  return busy;
}

// ---- Internal machinery -------------------------------------------------------

void Kernel::ReschedNow(int cpu) {
  CpuState& cs = cpus_[cpu];
  if (cs.switching) {
    cs.resched_pending = true;
    return;
  }

  Task* old = cs.current;
  bool old_resumable = false;
  if (old != nullptr) {
    UpdateProgress(cpu);
    CancelCompletion(cpu);
    PutPrevReason reason = PutPrevReason::kPreempted;
    if (old->state() == TaskState::kBlocked) {
      reason = PutPrevReason::kBlocked;
    } else if (old->state() == TaskState::kDead) {
      reason = PutPrevReason::kExited;
    } else if (cs.yielded) {
      reason = PutPrevReason::kYielded;
    }
    cs.yielded = false;
    if (reason == PutPrevReason::kPreempted || reason == PutPrevReason::kYielded) {
      old->set_state(TaskState::kRunnable);
      old->set_runnable_since(now());
      old_resumable = true;
    }
    old->set_last_cpu(cpu);
    old->set_last_descheduled(now());
    old->set_cpu(-1);
    cs.current = nullptr;
    RefreshIdleBit(cpu);
    trace_.Record(now(), TraceEventType::kSwitchOut, cpu, old->tid(),
                  static_cast<int64_t>(reason));
    old->sched_class()->PutPrev(old, cpu, reason);
    if (old->wake_pending() && old->state() == TaskState::kBlocked) {
      old->set_wake_pending(false);
      Wake(old);
    }
  }

  Task* next = nullptr;
  for (auto& cls : classes_) {
    next = cls->PickNext(cpu);
    if (next != nullptr) {
      break;
    }
  }

  if (next == nullptr) {
    SetBusy(cpu, false);
    return;
  }
  CHECK(next->state() == TaskState::kRunnable)
      << next->name() << " picked while " << ToString(next->state());

  if (next == old) {
    // Re-picked the same task: resume, no context-switch cost. But a task
    // that *blocked* and was re-woken inside the deschedule window (ttwu
    // wake_pending) is not resuming — it went through schedule() and must be
    // treated as freshly placed, or its on-scheduled hook is lost (a
    // blocked-then-instantly-rewoken agent would occupy the CPU without ever
    // running another iteration).
    StartRunning(cpu, next, /*fresh_placement=*/!old_resumable);
    return;
  }

  cs.switching = true;
  RefreshIdleBit(cpu);
  cs.switching_to = next;
  next->set_inbound_cpu(cpu);
  ++cs.context_switches;
  (IsAgent(next) ? stat_switch_agent_ : stat_switch_task_)->Inc();
  SetBusy(cpu, true);
  const Duration cost = IsAgent(next) ? cost_.agent_context_switch : cost_.context_switch;
  cs.switch_event = loop_->ScheduleAfter(cost, [this, cpu] { FinishSwitch(cpu); },
                                         MakeSchedTag(SchedTagKind::kCpu, cpu));
}

void Kernel::FinishSwitch(int cpu) {
  CpuState& cs = cpus_[cpu];
  cs.switching = false;
  RefreshIdleBit(cpu);
  cs.switch_event = kInvalidEventId;
  Task* next = cs.switching_to;
  cs.switching_to = nullptr;
  CHECK(next != nullptr);
  if (next->inbound_cpu() == cpu) {
    next->set_inbound_cpu(-1);
  }
  if (next->state() != TaskState::kRunnable) {
    // The incoming task was killed while the switch was in flight.
    cs.resched_pending = false;
    ReschedCpu(cpu);
    return;
  }
  StartRunning(cpu, next, /*fresh_placement=*/true);
  if (cs.resched_pending) {
    cs.resched_pending = false;
    ReschedCpu(cpu);
  }
}

void Kernel::StartRunning(int cpu, Task* task, bool fresh_placement) {
  CpuState& cs = cpus_[cpu];
  cs.current = task;
  RefreshIdleBit(cpu);
  task->set_state(TaskState::kRunning);
  task->set_cpu(cpu);
  cs.pick_time = now();
  trace_.Record(now(), TraceEventType::kSwitchIn, cpu, task->tid());
  SetBusy(cpu, true);

  if (fresh_placement) {
    if (task->has_burst()) {
      task->InflateBurst(WarmthFactor(*task, cpu));
    }
    if (task->on_scheduled()) {
      task->on_scheduled()(task);
      // The hook may have blocked/yielded/exited the task; if so a resched is
      // already queued and there is nothing to arm.
      if (task->state() != TaskState::kRunning || cs.yielded) {
        cs.run_start = now();
        cs.speed = SpeedFactor(*task, cpu);
        return;
      }
    }
  }

  cs.run_start = now();
  cs.speed = SpeedFactor(*task, cpu);
  // has_pending_burst_done: a zero-length burst whose completion event was
  // canceled by a same-instant deschedule still owes its callback — without
  // the re-arm the callback is lost and its owner (e.g. the agent iteration
  // loop) wedges forever.
  if (task->has_burst() || task->has_pending_burst_done()) {
    ArmCompletion(cpu);
  } else {
    // Only agents may occupy a CPU without pending work (poll-wait / spin).
    CHECK(IsAgent(task)) << task->name() << " scheduled with no work";
  }
  task->sched_class()->TaskStarted(cpu, task);
}

void Kernel::UpdateProgress(int cpu) {
  CpuState& cs = cpus_[cpu];
  Task* task = cs.current;
  if (task == nullptr) {
    return;
  }
  const Duration elapsed = now() - cs.run_start;
  if (elapsed <= 0) {
    return;
  }
  auto progress =
      static_cast<Duration>(std::llround(static_cast<double>(elapsed) * cs.speed));
  // Rounding may not consume the final nanosecond: only the completion event
  // finishes a burst (otherwise a preemption at just the wrong instant would
  // strand a task with zero remaining work and an unfired callback).
  if (task->has_burst()) {
    progress = std::min(progress, task->burst_remaining() - 1);
  }
  task->ConsumeBurst(progress);
  task->AddRuntime(elapsed);
  cs.run_start = now();
}

void Kernel::ArmCompletion(int cpu) {
  CpuState& cs = cpus_[cpu];
  CancelCompletion(cpu);
  Task* task = cs.current;
  CHECK(task != nullptr);
  const double speed = cs.speed > 0 ? cs.speed : 1.0;
  const auto remaining = static_cast<Duration>(
      std::ceil(static_cast<double>(task->burst_remaining()) / speed));
  cs.completion_event = loop_->ScheduleAfter(remaining, [this, cpu] { BurstComplete(cpu); },
                                             MakeSchedTag(SchedTagKind::kCpu, cpu));
}

void Kernel::CancelCompletion(int cpu) {
  CpuState& cs = cpus_[cpu];
  if (cs.completion_event != kInvalidEventId) {
    loop_->Cancel(cs.completion_event);
    cs.completion_event = kInvalidEventId;
  }
}

void Kernel::BurstComplete(int cpu) {
  CpuState& cs = cpus_[cpu];
  cs.completion_event = kInvalidEventId;
  Task* task = cs.current;
  CHECK(task != nullptr);
  UpdateProgress(cpu);
  // Rounding guard: the completion event fired, so the burst is done.
  task->ConsumeBurst(task->burst_remaining());

  Task::BurstDoneFn done = task->TakeBurstDone();
  if (done) {
    done(task);
  }
  if (cs.current != task) {
    return;
  }
  if (task->state() == TaskState::kRunning && !cs.yielded) {
    if (task->has_burst()) {
      if (cs.completion_event == kInvalidEventId) {
        cs.run_start = now();
        ArmCompletion(cpu);
      }
    } else {
      // Agents may spin awaiting work; everyone else must have disposed of
      // themselves (block/exit/yield) or started another burst.
      CHECK(IsAgent(task)) << task->name()
                           << ": burst-done callback left task running with no work";
    }
  }
}

void Kernel::OnTick(int cpu) {
  CpuState& cs = cpus_[cpu];
  if (tick_enabled_[cpu]) {
    ++ticks_delivered_[cpu];
    stat_ticks_->Inc();
    Task* current = cs.current;
    if (current != nullptr && !cs.switching) {
      UpdateProgress(cpu);
      if (cost_.tick_cost > 0 && current->has_burst()) {
        // The interrupt steals CPU time from the running task (for a vCPU
        // this is a VM-exit + re-entry).
        current->AddBurst(cost_.tick_cost);
        stat_tick_cost_ns_->Inc(cost_.tick_cost);
        ArmCompletion(cpu);
      }
    }
    for (auto& cls : classes_) {
      if (current != nullptr && current->sched_class() == cls.get()) {
        cls->TaskTick(cpu, current);
      } else {
        cls->IdleTick(cpu);
      }
    }
  }
  // The tick is a periodic event: the loop re-arms it in place.
}

double Kernel::SpeedFactor(const Task& task, int cpu) const {
  const int sibling = topology_.cpu(cpu).sibling;
  if (sibling < 0) {
    return 1.0;
  }
  const CpuState& sib = cpus_[sibling];
  const bool sibling_busy = sib.current != nullptr || sib.switching;
  if (!sibling_busy) {
    return 1.0;
  }
  return IsAgent(&task) ? cost_.agent_smt_contention_factor : cost_.smt_contention_factor;
}

void Kernel::RerateSibling(int cpu) {
  const int sibling = topology_.cpu(cpu).sibling;
  if (sibling < 0) {
    return;
  }
  CpuState& sib = cpus_[sibling];
  if (sib.current == nullptr || sib.switching) {
    return;
  }
  UpdateProgress(sibling);
  sib.speed = SpeedFactor(*sib.current, sibling);
  if (sib.completion_event != kInvalidEventId) {
    ArmCompletion(sibling);
  }
}

void Kernel::SetBusy(int cpu, bool busy) {
  CpuState& cs = cpus_[cpu];
  if (cs.busy == busy) {
    return;
  }
  cs.busy = busy;
  if (busy) {
    cs.busy_since = now();
  } else {
    cs.busy_ns += now() - cs.busy_since;
  }
  RerateSibling(cpu);
  for (const auto& [handle, listener] : idle_listeners_) {
    listener(cpu, !busy);
  }
}

double Kernel::WarmthFactor(const Task& task, int cpu) const {
  if (task.last_cpu() < 0) {
    return 1.0;  // never ran: no cache state to lose
  }
  const Duration away = now() - task.last_descheduled();
  if (away > cost_.warmth_decay) {
    return cost_.warmth_cold_factor;
  }
  switch (topology_.Distance(task.last_cpu(), cpu)) {
    case PlacementDistance::kSameCpu:
    case PlacementDistance::kSameCore:
      return cost_.warmth_same_core;
    case PlacementDistance::kSameCcx:
      return cost_.warmth_same_ccx;
    case PlacementDistance::kSameNuma:
      return cost_.warmth_same_numa;
    case PlacementDistance::kCrossNuma:
      return cost_.warmth_cross_numa;
  }
  return 1.0;
}

}  // namespace gs
