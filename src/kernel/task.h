// Task: a simulated native OS thread.
//
// Work is expressed as *bursts*: a task that is given the CPU executes its
// current burst (possibly across preemptions, with exact progress accounting
// and CPU-dependent speed factors) and, when the burst's demanded CPU time is
// fully consumed, its completion callback runs. The callback — workload code —
// then blocks the task, starts another burst, yields, or exits. This is
// expressive enough for every workload in the paper's evaluation
// (request servers, packet processing, batch antagonists, vCPUs) while
// keeping the kernel's scheduling machinery workload-agnostic.
#ifndef GHOST_SIM_SRC_KERNEL_TASK_H_
#define GHOST_SIM_SRC_KERNEL_TASK_H_

#include <cstdint>
#include <string>

#include "src/base/cpumask.h"
#include "src/base/inline_callback.h"
#include "src/base/time.h"
#include "src/sim/event_loop.h"

namespace gs {

class SchedClass;
class Task;

enum class TaskState {
  kCreated,   // exists, never woken
  kRunnable,  // wants a CPU
  kRunning,   // on a CPU
  kBlocked,   // waiting (I/O, futex, request queue, ...)
  kDead,      // exited
};

const char* ToString(TaskState state);

// Why a running task was descheduled; sched classes receive this in
// PutPrev() (the ghOSt class turns it into THREAD_* messages).
enum class PutPrevReason {
  kPreempted,  // higher-priority or same-class preemption
  kBlocked,    // task blocked itself
  kYielded,    // task yielded voluntarily
  kExited,     // task died
};

// Per-class scheduler state embedded in the task, mirroring how task_struct
// embeds sched_entity / sched_rt_entity.
struct CfsTaskState {
  int64_t vruntime = 0;
  int64_t weight = 1024;  // nice 0
  bool queued = false;
  int rq_cpu = -1;  // which per-CPU runqueue holds it when queued
  // Portion of the task's total_runtime already converted into vruntime.
  Duration charged_runtime = 0;
};

struct MicroQuantaTaskState {
  Duration period = Milliseconds(1);
  Duration quanta = Nanoseconds(900'000);
  Time window_start = 0;
  Duration used_in_window = 0;
  Time run_begin = 0;  // when the task last started running (budget charge)
  bool throttled = false;
  bool queued = false;
  int rq_cpu = -1;
  EventId unthrottle_event = kInvalidEventId;
};

struct CoreSchedTaskState {
  int64_t cookie = 0;  // VM identity: only equal cookies share a physical core
  Duration vruntime = 0;
  bool queued = false;
};

class Task {
 public:
  // Burst completions fire once per simulated burst — hundreds of millions
  // per bench run. InlineFunction keeps the capture in the task itself; a
  // std::function here means a heap allocation per agent iteration.
  using BurstDoneFn = InlineFunction<void(Task*)>;

  Task(int64_t tid, std::string name) : tid_(tid), name_(std::move(name)) {
    affinity_.SetAll();
  }

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  int64_t tid() const { return tid_; }
  const std::string& name() const { return name_; }

  TaskState state() const { return state_; }
  void set_state(TaskState state) { state_ = state; }

  SchedClass* sched_class() const { return sched_class_; }
  void set_sched_class(SchedClass* cls) { sched_class_ = cls; }

  int nice() const { return nice_; }
  void set_nice(int nice) { nice_ = nice; }

  const CpuMask& affinity() const { return affinity_; }
  void set_affinity(const CpuMask& mask) { affinity_ = mask; }

  int cpu() const { return cpu_; }
  void set_cpu(int cpu) { cpu_ = cpu; }
  int last_cpu() const { return last_cpu_; }
  void set_last_cpu(int cpu) { last_cpu_ = cpu; }
  Time last_descheduled() const { return last_descheduled_; }
  void set_last_descheduled(Time t) { last_descheduled_ = t; }

  Duration total_runtime() const { return total_runtime_; }
  void AddRuntime(Duration d) { total_runtime_ += d; }

  // --- Burst model ---------------------------------------------------------
  bool has_burst() const { return burst_remaining_ > 0; }
  Duration burst_remaining() const { return burst_remaining_; }
  // A zero-length burst has no remaining work but still owes its completion
  // callback; placement must re-arm the completion event for it (a same-
  // instant preemption may have canceled the one StartBurst armed).
  bool has_pending_burst_done() const { return static_cast<bool>(on_burst_done_); }
  void SetBurst(Duration d, BurstDoneFn done) {
    burst_remaining_ = d;
    on_burst_done_ = std::move(done);
  }
  void ConsumeBurst(Duration d) {
    burst_remaining_ -= d;
    if (burst_remaining_ < 0) {
      burst_remaining_ = 0;
    }
  }
  // Extend the remaining burst (e.g. tick/VM-exit overhead charged to the
  // interrupted task).
  void AddBurst(Duration d) { burst_remaining_ += d; }
  // Inflate the remaining burst (cache-cold penalty at placement time).
  void InflateBurst(double factor) {
    burst_remaining_ = static_cast<Duration>(static_cast<double>(burst_remaining_) * factor);
  }
  BurstDoneFn TakeBurstDone() {
    BurstDoneFn fn = std::move(on_burst_done_);
    on_burst_done_ = nullptr;
    return fn;
  }

  // Hook invoked every time this task is placed on a CPU (fresh placement),
  // before its burst is armed. Agents use it to run their scheduling loop.
  // Embedded here so StartRunning never touches a side map.
  const InlineFunction<void(Task*)>& on_scheduled() const { return on_scheduled_; }
  void set_on_scheduled(InlineFunction<void(Task*)> hook) {
    on_scheduled_ = std::move(hook);
  }

  // Time when this task became runnable (for wakeup-latency accounting).
  Time runnable_since() const { return runnable_since_; }
  void set_runnable_since(Time t) { runnable_since_ = t; }

  // A wakeup arrived while the task was blocked but still on its CPU (its
  // deschedule hadn't completed) — the ttwu-on_cpu race. The kernel re-wakes
  // the task right after the deschedule completes.
  bool wake_pending() const { return wake_pending_; }
  void set_wake_pending(bool pending) { wake_pending_ = pending; }

  // CPU currently context-switching this task in (cs.switching_to points
  // here), or -1. A task in this window is still kRunnable, so schedulers
  // must treat it as already placed: picking or latching it elsewhere would
  // double-commit the thread.
  int inbound_cpu() const { return inbound_cpu_; }
  void set_inbound_cpu(int cpu) { inbound_cpu_ = cpu; }

  // Agent threads take the cheaper agent context-switch path and agent SMT
  // factor. Set once via Kernel::MarkAgent; checked on every context switch.
  bool is_agent() const { return is_agent_; }
  void set_is_agent(bool is_agent) { is_agent_ = is_agent; }

  // --- Per-class embedded state ---------------------------------------------
  CfsTaskState& cfs() { return cfs_; }
  const CfsTaskState& cfs() const { return cfs_; }
  MicroQuantaTaskState& mq() { return mq_; }
  const MicroQuantaTaskState& mq() const { return mq_; }
  CoreSchedTaskState& core_sched() { return core_sched_; }
  const CoreSchedTaskState& core_sched() const { return core_sched_; }

  // Opaque per-module attachments (ghOSt task state, agent state). The owner
  // module manages lifetime.
  void* ghost_state() const { return ghost_state_; }
  void set_ghost_state(void* state) { ghost_state_ = state; }
  void* agent_state() const { return agent_state_; }
  void set_agent_state(void* state) { agent_state_ = state; }

  // Generic workload attachment (e.g. which request a worker is serving).
  void* user_data() const { return user_data_; }
  void set_user_data(void* data) { user_data_ = data; }

 private:
  const int64_t tid_;
  const std::string name_;

  TaskState state_ = TaskState::kCreated;
  SchedClass* sched_class_ = nullptr;
  int nice_ = 0;
  CpuMask affinity_;

  int cpu_ = -1;
  int inbound_cpu_ = -1;
  int last_cpu_ = -1;
  Time last_descheduled_ = 0;
  Time runnable_since_ = 0;
  Duration total_runtime_ = 0;
  bool wake_pending_ = false;
  bool is_agent_ = false;

  Duration burst_remaining_ = 0;
  BurstDoneFn on_burst_done_;
  InlineFunction<void(Task*)> on_scheduled_;

  CfsTaskState cfs_;
  MicroQuantaTaskState mq_;
  CoreSchedTaskState core_sched_;
  void* ghost_state_ = nullptr;
  void* agent_state_ = nullptr;
  void* user_data_ = nullptr;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_KERNEL_TASK_H_
