// The agent scheduling class: top of the class hierarchy.
//
// ghOSt "assigns all agents a high kernel priority, similar to real-time
// scheduling... no other thread in the machine, whether ghOSt or non-ghOSt,
// can preempt agent-threads" (§3.3). Each CPU managed by ghOSt has exactly
// one agent pthread pinned to it; inactive agents block immediately, active
// agents run the policy loop. This class implements that contract: one
// registered agent per CPU, runnable agents always win the pick.
#ifndef GHOST_SIM_SRC_KERNEL_AGENT_CLASS_H_
#define GHOST_SIM_SRC_KERNEL_AGENT_CLASS_H_

#include <vector>

#include "src/kernel/sched_class.h"

namespace gs {

class AgentClass : public SchedClass {
 public:
  const char* name() const override { return "agent"; }

  void Attach(Kernel* kernel) override;

  // Pins `agent` to `cpu` as its agent thread. At most one live agent per
  // CPU; re-registering replaces a dead/detached predecessor.
  void RegisterAgent(int cpu, Task* agent);
  void UnregisterAgent(int cpu, Task* agent);
  Task* AgentFor(int cpu) const { return agents_[cpu].task; }

  void TaskNew(Task* task) override {}
  void TaskDeparted(Task* task) override;
  void EnqueueWake(Task* task) override;
  void PutPrev(Task* task, int cpu, PutPrevReason reason) override;
  Task* PickNext(int cpu) override;
  bool HasQueuedWork(int cpu) const override { return agents_[cpu].queued; }

 private:
  struct Slot {
    Task* task = nullptr;
    bool queued = false;
  };

  int CpuOf(const Task* task) const;

  std::vector<Slot> agents_;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_KERNEL_AGENT_CLASS_H_
