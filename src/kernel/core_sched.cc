#include "src/kernel/core_sched.h"

#include <algorithm>

#include "src/kernel/kernel.h"

namespace gs {

void CoreSchedClass::Attach(Kernel* kernel) {
  SchedClass::Attach(kernel);
  const int cores = kernel->topology().num_cores();
  core_cookie_.assign(cores, 0);
  core_since_.assign(cores, 0);
  core_rotate_.assign(cores, false);
}

int CoreSchedClass::CoreOf(int cpu) const { return kernel_->topology().cpu(cpu).core; }

int CoreSchedClass::OccupantsOnCore(int core) const {
  // Counts this class's tasks running *or mid-switch* on the core's CPUs —
  // a task picked for a sibling but still context-switching already owns the
  // cookie, so the core must not be handed to another domain.
  int count = 0;
  const CpuMask cpus = kernel_->topology().CoreMask(core);
  for (int cpu = cpus.First(); cpu >= 0; cpu = cpus.NextAfter(cpu)) {
    const CpuState& cs = kernel_->cpu_state(cpu);
    const Task* occupant = cs.switching ? cs.switching_to : cs.current;
    if (occupant != nullptr && occupant->sched_class() == this) {
      ++count;
    }
  }
  return count;
}

void CoreSchedClass::SetCookie(Task* task, int64_t cookie) {
  CHECK_NE(cookie, 0);
  task->core_sched().cookie = cookie;
}

void CoreSchedClass::TaskDeparted(Task* task) {
  CoreSchedTaskState& st = task->core_sched();
  if (st.queued) {
    Group& group = groups_[st.cookie];
    auto it = std::find(group.runnable.begin(), group.runnable.end(), task);
    CHECK(it != group.runnable.end());
    group.runnable.erase(it);
    st.queued = false;
  }
}

void CoreSchedClass::EnqueueWake(Task* task) {
  CoreSchedTaskState& st = task->core_sched();
  CHECK_NE(st.cookie, 0) << task->name() << " woken without a cookie";
  CHECK(!st.queued);
  st.queued = true;
  groups_[st.cookie].runnable.push_back(task);

  // Kick a CPU that could legally run it: a core already owned by this
  // cookie with a free sibling, else a fully free core.
  const Topology& topo = kernel_->topology();
  int free_core = -1;
  for (int core = 0; core < topo.num_cores(); ++core) {
    const CpuMask cpus = topo.CoreMask(core) & task->affinity();
    if (cpus.Empty()) {
      continue;
    }
    if (core_cookie_[core] == st.cookie) {
      for (int cpu = cpus.First(); cpu >= 0; cpu = cpus.NextAfter(cpu)) {
        if (kernel_->CpuAvailableFor(cpu, this)) {
          kernel_->ReschedCpu(cpu);
          return;
        }
      }
    }
    if (free_core < 0 && core_cookie_[core] == 0) {
      bool all_available = true;
      for (int cpu = cpus.First(); cpu >= 0; cpu = cpus.NextAfter(cpu)) {
        all_available &= kernel_->CpuAvailableFor(cpu, this);
      }
      if (all_available) {
        free_core = core;
      }
    }
  }
  if (free_core >= 0) {
    KickCore(free_core);
  }
  // Otherwise the task waits for a slice rotation.
}

void CoreSchedClass::KickCore(int core) {
  const CpuMask cpus = kernel_->topology().CoreMask(core);
  for (int cpu = cpus.First(); cpu >= 0; cpu = cpus.NextAfter(cpu)) {
    kernel_->ReschedCpu(cpu);
  }
}

Task* CoreSchedClass::PickNext(int cpu) {
  const int core = CoreOf(cpu);
  if (core_rotate_[core]) {
    // A rotation is in progress: the core must fully drain its old cookie
    // before adopting a new one (otherwise two domains would overlap).
    if (OccupantsOnCore(core) > 0) {
      return nullptr;
    }
    core_rotate_[core] = false;
    core_cookie_[core] = 0;
  }
  int64_t cookie = core_cookie_[core];

  if (cookie != 0 && groups_[cookie].runnable.empty()) {
    if (OccupantsOnCore(core) == 0) {
      core_cookie_[core] = 0;  // the domain drained; the core is up for grabs
      cookie = 0;
    } else {
      return nullptr;  // sibling still runs (or switches to) this cookie
    }
  }
  if (cookie == 0) {
    // Adopt the next cookie with work (round-robin for inter-VM fairness).
    cookie = NextCookie(last_adopted_);
    if (cookie == 0) {
      return nullptr;
    }
    core_cookie_[core] = cookie;
    core_since_[core] = kernel_->now();
    last_adopted_ = cookie;
    // Bring the sibling in for the rest of the domain's runnable threads.
    const int sibling = kernel_->topology().cpu(cpu).sibling;
    if (sibling >= 0) {
      kernel_->ReschedCpu(sibling);
    }
  }

  Group& group = groups_[cookie];
  for (auto it = group.runnable.begin(); it != group.runnable.end(); ++it) {
    Task* task = *it;
    if (!task->affinity().IsSet(cpu)) {
      continue;
    }
    group.runnable.erase(it);
    task->core_sched().queued = false;
    return task;
  }
  return nullptr;
}

int64_t CoreSchedClass::NextCookie(int64_t after) const {
  // First cookie strictly after `after` (wrapping) with runnable work that no
  // core currently owns: a VM is scheduled at core granularity (both vCPUs
  // on one core, §4.5), never split across half-idle cores.
  auto owned = [this](int64_t cookie) {
    for (int64_t c : core_cookie_) {
      if (c == cookie) {
        return true;
      }
    }
    return false;
  };
  auto start = groups_.upper_bound(after);
  for (auto it = start; it != groups_.end(); ++it) {
    if (!it->second.runnable.empty() && !owned(it->first)) {
      return it->first;
    }
  }
  for (auto it = groups_.begin(); it != start; ++it) {
    if (!it->second.runnable.empty() && !owned(it->first)) {
      return it->first;
    }
  }
  return 0;
}

bool CoreSchedClass::AnyOtherCookieWaiting(int64_t current) const {
  for (const auto& [cookie, group] : groups_) {
    if (cookie != current && !group.runnable.empty()) {
      return true;
    }
  }
  return false;
}

void CoreSchedClass::TaskStarted(int cpu, Task* task) {
  // Security monitor: the sibling must be idle or running the same cookie.
  const int sibling = kernel_->topology().cpu(cpu).sibling;
  if (sibling >= 0) {
    const Task* other = kernel_->current(sibling);
    if (other != nullptr && other->sched_class() == this &&
        other->core_sched().cookie != task->core_sched().cookie) {
      ++violations_;
      LOG(ERROR) << "core-sched violation: " << task->name() << " vs " << other->name();
    }
  }
}

void CoreSchedClass::PutPrev(Task* task, int cpu, PutPrevReason reason) {
  const int core = CoreOf(cpu);
  if (reason == PutPrevReason::kPreempted || reason == PutPrevReason::kYielded) {
    CoreSchedTaskState& st = task->core_sched();
    st.queued = true;
    groups_[st.cookie].runnable.push_back(task);
  }
  if (OccupantsOnCore(core) == 0) {
    if (core_rotate_[core]) {
      KickCore(core);  // drained: both CPUs may adopt the next cookie
    } else if (core_cookie_[core] != 0 && groups_[core_cookie_[core]].runnable.empty()) {
      core_cookie_[core] = 0;
    }
  }
}

void CoreSchedClass::TaskTick(int cpu, Task* current) {
  const int core = CoreOf(cpu);
  if (kernel_->now() - core_since_[core] < params_.slice) {
    return;
  }
  if (!AnyOtherCookieWaiting(core_cookie_[core])) {
    core_since_[core] = kernel_->now();  // nothing to rotate to; renew
    return;
  }
  // Slice expired with other domains waiting: rotate the whole core. Both
  // siblings are preempted; once drained, the core adopts the next cookie.
  ++rotations_;
  core_rotate_[core] = true;
  core_since_[core] = kernel_->now();
  KickCore(core);
}

void CoreSchedClass::IdleTick(int cpu) {
  if (!kernel_->CpuAvailableFor(cpu, this)) {
    return;
  }
  // Runnable work in the core's own domain, or an adoptable (unowned)
  // domain elsewhere — either way this idle CPU should re-pick.
  const int64_t own = core_cookie_[CoreOf(cpu)];
  if (own != 0 && !groups_[own].runnable.empty()) {
    kernel_->ReschedCpu(cpu);
    return;
  }
  if (NextCookie(last_adopted_) != 0) {
    kernel_->ReschedCpu(cpu);
  }
}

bool CoreSchedClass::HasQueuedWork(int cpu) const {
  for (const auto& [cookie, group] : groups_) {
    if (!group.runnable.empty()) {
      return true;
    }
  }
  return false;
}

}  // namespace gs
