#include "src/kernel/cfs.h"

#include <algorithm>

#include "src/kernel/kernel.h"

namespace gs {
namespace {

// Linux's sched_prio_to_weight table: nice -20 .. +19.
constexpr int64_t kNiceToWeight[40] = {
    88761, 71755, 56483, 46273, 36291, 29154, 23254, 18705, 14949, 11916,
    9548,  7620,  6100,  4904,  3906,  3121,  2501,  1991,  1586,  1277,
    1024,  820,   655,   526,   423,   335,   272,   215,   172,   137,
    110,   87,    70,    56,    45,    36,    29,    23,    18,    15,
};

constexpr int64_t kWeight0 = 1024;

}  // namespace

int64_t CfsClass::NiceToWeight(int nice) {
  CHECK_GE(nice, -20);
  CHECK_LE(nice, 19);
  return kNiceToWeight[nice + 20];
}

CfsClass::CfsClass() : CfsClass(Params()) {}

CfsClass::CfsClass(Params params) : params_(params) {}

void CfsClass::Attach(Kernel* kernel) {
  SchedClass::Attach(kernel);
  rqs_.resize(kernel->topology().num_cpus());
  pull_to_.assign(kernel->topology().num_cpus(), -1);
}

void CfsClass::TaskNew(Task* task) {
  task->cfs() = CfsTaskState();
  task->cfs().weight = NiceToWeight(task->nice());
  // Runtime accumulated under other classes is not charged here.
  task->cfs().charged_runtime = task->total_runtime();
}

void CfsClass::TaskDeparted(Task* task) {
  if (task->cfs().queued) {
    Dequeue(task->cfs().rq_cpu, task);
  }
}

void CfsClass::Enqueue(int cpu, Task* task) {
  CfsTaskState& st = task->cfs();
  CHECK(!st.queued) << task->name() << " state=" << ToString(task->state())
                    << " rq=" << st.rq_cpu << " dst=" << cpu;
  st.queued = true;
  st.rq_cpu = cpu;
  rqs_[cpu].Insert({st.vruntime, task});
  ++total_queued_;
}

void CfsClass::Dequeue(int cpu, Task* task) {
  CfsTaskState& st = task->cfs();
  CHECK(st.queued) << task->name();
  CHECK_EQ(st.rq_cpu, cpu);
  rqs_[cpu].Erase({st.vruntime, task});
  st.queued = false;
  st.rq_cpu = -1;
  --total_queued_;
}

int CfsClass::SelectCpu(Task* task) const {
  const Topology& topo = kernel_->topology();
  const CpuMask& affinity = task->affinity();

  auto usable = [&](int cpu) {
    return cpu >= 0 && cpu < topo.num_cpus() && affinity.IsSet(cpu) &&
           kernel_->CpuAvailableFor(cpu, this) && rqs_[cpu].queue.empty();
  };

  // select_idle_sibling(): the idle search is scoped to the previous CPU's
  // LLC domain (the whole socket on monolithic-L3 Intel parts, a 4-core CCX
  // on AMD Rome). A waking task does NOT scan the rest of the machine for
  // idle CPUs — spreading beyond the LLC is left to (ms-scale) load
  // balancing, which is exactly the latency artifact §4.4 measures against.
  const int prev = task->last_cpu();
  if (usable(prev)) {
    return prev;
  }
  if (prev >= 0) {
    const CpuInfo& info = topo.cpu(prev);
    if (usable(info.sibling)) {
      return info.sibling;
    }
    const CpuMask llc = topo.CcxMask(info.ccx) & affinity;
    for (int cpu = llc.First(); cpu >= 0; cpu = llc.NextAfter(cpu)) {
      if (usable(cpu)) {
        return cpu;
      }
    }
    // No idle CPU in the LLC domain: queue on the least-loaded rq within it
    // (falling back to prev when affinity excludes the whole domain).
    int best = -1;
    size_t best_depth = SIZE_MAX;
    for (int cpu = llc.First(); cpu >= 0; cpu = llc.NextAfter(cpu)) {
      const size_t depth = rqs_[cpu].queue.size() + (kernel_->CpuIdle(cpu) ? 0 : 1);
      if (depth < best_depth) {
        best_depth = depth;
        best = cpu;
      }
    }
    if (best >= 0) {
      return best;
    }
    if (affinity.IsSet(prev)) {
      return prev;
    }
  }
  // Never ran (fork balancing) or affinity moved: least-loaded allowed rq.
  int best = -1;
  size_t best_depth = SIZE_MAX;
  for (int cpu = affinity.First(); cpu >= 0 && cpu < topo.num_cpus();
       cpu = affinity.NextAfter(cpu)) {
    const size_t depth = rqs_[cpu].queue.size() + (kernel_->CpuIdle(cpu) ? 0 : 1);
    if (depth < best_depth) {
      best_depth = depth;
      best = cpu;
    }
  }
  CHECK_GE(best, 0) << "no allowed CPU for " << task->name();
  return best;
}

void CfsClass::EnqueueWake(Task* task) {
  task->cfs().weight = NiceToWeight(task->nice());
  const int cpu = SelectCpu(task);
  Rq& rq = rqs_[cpu];
  // Renormalize into the destination rq's virtual clock. Sleeper credit
  // places the waker no further back than min_vruntime - latency/2; the
  // ceiling bounds how much virtual lead a waker can carry across rqs whose
  // clocks advance at very different rates (a low-weight hog advances its
  // rq's clock ~70x faster than a nice -20 rq) — the kernel achieves the
  // same via per-entity renormalization on migration.
  const int64_t floor = rq.min_vruntime - params_.sched_latency / 2;
  const int64_t ceiling = rq.min_vruntime + params_.sched_latency;
  task->cfs().vruntime = std::clamp(task->cfs().vruntime, floor, ceiling);
  Enqueue(cpu, task);
  CheckWakeupPreemption(cpu, task);
}

void CfsClass::CheckWakeupPreemption(int cpu, Task* waking) {
  if (kernel_->CpuAvailableFor(cpu, this)) {
    kernel_->ReschedCpu(cpu);
    return;
  }
  const Task* current = kernel_->current(cpu);
  if (current == nullptr || current->sched_class() != this) {
    return;  // higher-priority class running: wait
  }
  // Approximate check_preempt_wakeup: preempt if the waking task is
  // sufficiently behind the current one in virtual time.
  const int64_t curr_vruntime =
      current->cfs().vruntime + kernel_->CurrentElapsed(cpu) * kWeight0 / current->cfs().weight;
  if (waking->cfs().vruntime + params_.wakeup_granularity < curr_vruntime) {
    kernel_->ReschedCpu(cpu);
  }
}

void CfsClass::ChargeVruntime(Task* task, int cpu) {
  CfsTaskState& st = task->cfs();
  const Duration ran = task->total_runtime() - st.charged_runtime;
  if (ran > 0) {
    st.vruntime += ran * kWeight0 / st.weight;
  }
  st.charged_runtime = task->total_runtime();
  // Advance the rq's virtual clock with the running task (update_min_vruntime).
  if (cpu >= 0) {
    Rq& rq = rqs_[cpu];
    int64_t clock = st.vruntime;
    if (!rq.queue.empty()) {
      clock = std::min(clock, rq.queue.front().first);
    }
    rq.min_vruntime = std::max(rq.min_vruntime, clock);
  }
}

void CfsClass::PutPrev(Task* task, int cpu, PutPrevReason reason) {
  ChargeVruntime(task, cpu);
  if (reason == PutPrevReason::kPreempted || reason == PutPrevReason::kYielded) {
    int target = cpu;
    if (pull_to_[cpu] >= 0 && task->affinity().IsSet(pull_to_[cpu])) {
      // Active balance completes: steer the preempted task to the idle core.
      target = pull_to_[cpu];
      task->cfs().vruntime = rqs_[target].min_vruntime;
      ++steals_;
    } else if (!task->affinity().IsSet(cpu)) {
      target = SelectCpu(task);
    }
    pull_to_[cpu] = -1;
    Enqueue(target, task);
    if (target != cpu) {
      kernel_->ReschedCpu(target);
    }
  } else {
    pull_to_[cpu] = -1;
  }
  // kBlocked / kExited: forget it (vruntime persists on the task).
}

Task* CfsClass::PickNext(int cpu) {
  Rq& rq = rqs_[cpu];
  if (rq.queue.empty()) {
    // Idle balance: try to pull work from the most loaded runqueue.
    if (PullOne(cpu) == nullptr) {
      return nullptr;
    }
  }
  const auto [vruntime, task] = rq.queue.front();
  rq.min_vruntime = std::max(rq.min_vruntime, vruntime);
  Dequeue(cpu, task);
  task->cfs().charged_runtime = task->total_runtime();  // start of charge window
  return task;
}

Task* CfsClass::PullOne(int cpu) {
  if (total_queued_ == 0) {
    // Nothing queued anywhere — the common case on a machine whose load runs
    // under another class. Skip the all-rq scan entirely.
    return nullptr;
  }
  // Find the busiest runqueue with a stealable (affinity-compatible) task.
  int busiest = -1;
  size_t busiest_depth = 0;
  for (int other = 0; other < static_cast<int>(rqs_.size()); ++other) {
    if (other == cpu) {
      continue;
    }
    // Don't steal from a queue whose own CPU is about to drain it — that
    // only ping-pongs tasks (e.g. right after an active-balance push).
    if (kernel_->CpuIdle(other)) {
      continue;
    }
    const size_t depth = rqs_[other].queue.size();
    if (depth > busiest_depth) {
      // Check there is at least one task allowed on `cpu`.
      for (const auto& [vruntime, task] : rqs_[other].queue) {
        if (task->affinity().IsSet(cpu)) {
          busiest = other;
          busiest_depth = depth;
          break;
        }
      }
    }
  }
  if (busiest < 0) {
    return nullptr;
  }
  Rq& src = rqs_[busiest];
  for (const auto& [vruntime, task] : src.queue) {
    if (!task->affinity().IsSet(cpu)) {
      continue;
    }
    Task* pulled = task;
    Dequeue(busiest, pulled);
    // Re-normalize into the destination rq's virtual clock, with the offset
    // bounded to one scheduling latency so clock-rate differences between
    // rqs cannot compound across repeated migrations.
    const int64_t rel = std::clamp(pulled->cfs().vruntime - src.min_vruntime,
                                   -params_.sched_latency / 2, params_.sched_latency);
    pulled->cfs().vruntime = rqs_[cpu].min_vruntime + rel;
    Enqueue(cpu, pulled);
    ++steals_;
    return pulled;
  }
  return nullptr;
}

void CfsClass::TaskTick(int cpu, Task* current) {
  ChargeVruntime(current, cpu);
  Rq& rq = rqs_[cpu];
  const int nr_running = static_cast<int>(rq.queue.size()) + 1;
  if (nr_running > 1) {
    const Duration slice =
        std::max(params_.min_granularity, params_.sched_latency / nr_running);
    if (kernel_->CurrentElapsed(cpu) >= slice) {
      kernel_->ReschedCpu(cpu);
    }
  }
  if (++rq.ticks_since_balance >= params_.balance_interval_ticks) {
    rq.ticks_since_balance = 0;
    // Periodic balance: if this CPU is much less loaded than the busiest,
    // pull one task over (ms-scale, like Linux's rebalance_domains()).
    // total_queued_ bounds max_depth, so a lightly loaded class skips the
    // all-rq scan.
    if (total_queued_ >= rq.queue.size() + 2) {
      size_t max_depth = 0;
      for (const Rq& other : rqs_) {
        max_depth = std::max(max_depth, other.queue.size());
      }
      if (max_depth >= rq.queue.size() + 2) {
        PullOne(cpu);
      }
    }
  }
}

void CfsClass::IdleTick(int cpu) {
  Rq& rq = rqs_[cpu];
  if (!kernel_->CpuAvailableFor(cpu, this)) {
    return;  // a higher-priority class owns the CPU
  }
  if (!rq.queue.empty()) {
    // Safety: runnable work and an available CPU — make sure a pick happens.
    kernel_->ReschedCpu(cpu);
    return;
  }
  if (PullOne(cpu) != nullptr) {
    kernel_->ReschedCpu(cpu);
    return;
  }
  // Nothing queued anywhere: SMT-aware active balance (ms-scale, like the
  // kernel's SD_SHARE_CPUCAPACITY domain) — relieve a dual-busy core if this
  // whole core is idle.
  if (++rq.ticks_since_balance >= params_.balance_interval_ticks) {
    rq.ticks_since_balance = 0;
    const int sibling = kernel_->topology().cpu(cpu).sibling;
    if (sibling < 0 || kernel_->CpuIdle(sibling)) {
      ActiveBalance(cpu);
    }
  }
}

bool CfsClass::ActiveBalance(int idle_cpu) {
  const Topology& topo = kernel_->topology();
  for (const CpuInfo& info : topo.cpus()) {
    if (info.sibling < 0 || info.id > info.sibling) {
      continue;  // visit each core once
    }
    const Task* a = kernel_->current(info.id);
    const Task* b = kernel_->current(info.sibling);
    if (a == nullptr || b == nullptr || a->sched_class() != this ||
        b->sched_class() != this) {
      continue;
    }
    // Move one of the pair (the one allowed on the idle CPU).
    for (int victim_cpu : {info.id, info.sibling}) {
      const Task* victim = kernel_->current(victim_cpu);
      if (victim != nullptr && victim->affinity().IsSet(idle_cpu) &&
          pull_to_[victim_cpu] < 0) {
        pull_to_[victim_cpu] = idle_cpu;
        kernel_->ReschedCpu(victim_cpu);
        return true;
      }
    }
  }
  return false;
}

void CfsClass::AffinityChanged(Task* task) {
  if (task->cfs().queued && !task->affinity().IsSet(task->cfs().rq_cpu)) {
    Dequeue(task->cfs().rq_cpu, task);
    const int cpu = SelectCpu(task);
    Enqueue(cpu, task);
    kernel_->ReschedCpu(cpu);
  }
}

bool CfsClass::HasQueuedWork(int cpu) const { return !rqs_[cpu].queue.empty(); }

}  // namespace gs
