// The simulated kernel: CPUs, context switches, the scheduling-class
// hierarchy, timer ticks, IPIs and task lifecycle "syscalls".
//
// This is the substrate the ghOSt scheduling class (src/ghost) plugs into,
// standing in for the paper's patched Linux 4.15. It reproduces the pieces of
// the Linux scheduling machinery that ghOSt's design interacts with:
//
//  * strict class priority (agents ≈ RT > CFS > ghOSt, §3.3/§3.4),
//  * pick_next_task semantics (put_prev then pick, per class in order),
//  * context-switch and IPI costs (CostModel, calibrated from Table 3),
//  * per-CPU 1 ms timer ticks,
//  * SMT sibling contention and cache-warmth placement penalties,
//  * task states and the transitions that generate ghOSt messages.
//
// Execution model: tasks run "bursts" (see task.h). The kernel tracks exact
// progress under preemption and CPU-speed changes (e.g. a sibling hyperthread
// becoming busy re-rates the current burst, which is how Fig 5's ❷ regime
// emerges).
#ifndef GHOST_SIM_SRC_KERNEL_KERNEL_H_
#define GHOST_SIM_SRC_KERNEL_KERNEL_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/base/cpumask.h"
#include "src/base/inline_callback.h"
#include "src/base/slab.h"
#include "src/base/time.h"
#include "src/kernel/cost_model.h"
#include "src/kernel/sched_class.h"
#include "src/kernel/task.h"
#include "src/sim/event_loop.h"
#include "src/sim/fault_injector.h"
#include "src/sim/trace.h"
#include "src/stats/stats.h"
#include "src/topology/topology.h"

namespace gs {

// Per-CPU scheduler state (≈ struct rq).
struct CpuState {
  int id = -1;

  Task* current = nullptr;  // nullptr => idle (or switching)
  bool switching = false;
  Task* switching_to = nullptr;
  bool resched_pending = false;   // resched requested while switching
  bool resched_scheduled = false; // a zero-delay resched event is queued
  bool yielded = false;           // current called Yield()

  EventId completion_event = kInvalidEventId;
  EventId switch_event = kInvalidEventId;
  Time run_start = 0;   // when `current` last started progressing
  double speed = 1.0;   // current execution speed factor
  Time pick_time = 0;   // when `current` was last picked (slice accounting)

  // Statistics.
  uint64_t context_switches = 0;
  Duration busy_ns = 0;
  Time busy_since = 0;
  bool busy = false;
};

class Kernel {
 public:
  // `stats` is the registry instrumentation lands in; the kernel does not own
  // it (a SimulationContext typically does). nullptr => the kernel creates a
  // private, disabled registry so metric pointers stay valid at zero cost —
  // handy for tests that build a bare Kernel/Machine without a context.
  Kernel(EventLoop* loop, Topology topology, CostModel cost = CostModel(),
         StatsRegistry* stats = nullptr);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // Installs scheduling classes in strict priority order (index 0 highest).
  // `default_index` designates the fallback class for plain tasks (CFS).
  void InstallClasses(std::vector<std::unique_ptr<SchedClass>> classes, int default_index);

  EventLoop* loop() { return loop_; }
  // The registry this simulated machine's instrumentation lands in. Enclaves,
  // agent processes, and policies reach their registry through here instead
  // of any process-global. Never nullptr.
  StatsRegistry* stats() { return stats_; }
  Time now() const { return loop_->now(); }
  const Topology& topology() const { return topology_; }
  const CostModel& cost() const { return cost_; }
  CostModel& mutable_cost() { return cost_; }

  SchedClass* default_class() { return classes_[default_index_].get(); }
  SchedClass* sched_class_at(int priority_index) { return classes_[priority_index].get(); }
  int num_classes() const { return static_cast<int>(classes_.size()); }
  // Priority index of a class (0 = highest). CHECK-fails for foreign classes.
  int ClassIndex(const SchedClass* cls) const;
  // True if `cpu` is idle or running something of strictly lower priority
  // than `cls` (i.e. a wakeup into `cls` could take the CPU immediately).
  bool CpuAvailableFor(int cpu, const SchedClass* cls) const;

  // ---- Task lifecycle --------------------------------------------------------
  // Creates a task in `cls` (nullptr => default class). The task starts in
  // kCreated; call Wake() (after setting a burst or an on-scheduled hook) to
  // make it runnable.
  Task* CreateTask(const std::string& name, SchedClass* cls = nullptr);

  // Marks `task` as an agent thread (scheduled with the cheaper agent
  // context-switch path and agent SMT factor). Stored as a bit on the task
  // so the context-switch hot path never touches a hash set.
  void MarkAgent(Task* task) { task->set_is_agent(true); }
  bool IsAgent(const Task* task) const { return task->is_agent(); }

  // Installs a hook invoked every time `task` is placed on a CPU, before its
  // burst is armed. Agents use this to run their scheduling loop.
  void SetOnScheduled(Task* task, InlineFunction<void(Task*)> hook) {
    task->set_on_scheduled(std::move(hook));
  }

  // Sets/extends the task's pending CPU demand and arms completion if the
  // task is currently running.
  void StartBurst(Task* task, Duration duration, Task::BurstDoneFn on_done);

  // ---- "Syscalls" -------------------------------------------------------------
  void Wake(Task* task);
  void Block(Task* task);  // task must be running
  void Exit(Task* task);   // task must be running
  void Yield(Task* task);  // task must be running
  // Forcefully terminates a task in any state (SIGKILL analog; used when an
  // enclave is destroyed and its agents must die).
  void Kill(Task* task);
  void SetAffinity(Task* task, const CpuMask& mask);
  void SetNice(Task* task, int nice);
  // Moves a task between scheduling classes (sched_setscheduler).
  void SetSchedClass(Task* task, SchedClass* cls);

  // ---- Scheduler machinery (used by sched classes and the ghOSt module) ------
  // Requests a pick_next_task pass on `cpu` (coalesced, zero virtual delay).
  void ReschedCpu(int cpu);

  // Delivers `fn` on `to_cpu` after IPI flight + handling costs.
  // `cross_numa` adds the cross-socket flight penalty.
  void SendIpi(int to_cpu, bool cross_numa, InlineCallback fn);

  // Accounted runtime of the current task on `cpu` since it was last picked.
  Duration CurrentElapsed(int cpu) const;

  // Tick-less operation (§5): with ticks disabled a CPU receives no timer
  // interrupt — no slice enforcement, no TIMER_TICK messages, and no
  // tick_cost (VM-exit) charged to the running task. A spinning global agent
  // makes the ticks redundant for ghOSt-managed CPUs.
  void SetTickEnabled(int cpu, bool enabled) { tick_enabled_[cpu] = enabled; }
  bool tick_enabled(int cpu) const { return tick_enabled_[cpu]; }
  uint64_t ticks_delivered(int cpu) const { return ticks_delivered_[cpu]; }

  // Inline: these sit inside scheduler scan loops (idle balancing touches
  // every runqueue per pick) — a call per probe is measurable.
  CpuState& cpu_state(int cpu) {
    DCHECK_GE(cpu, 0);
    DCHECK_LT(cpu, static_cast<int>(cpus_.size()));
    return cpus_[cpu];
  }
  const CpuState& cpu_state(int cpu) const {
    DCHECK_GE(cpu, 0);
    DCHECK_LT(cpu, static_cast<int>(cpus_.size()));
    return cpus_[cpu];
  }
  Task* current(int cpu) const { return cpus_[cpu].current; }
  // Idle = not running anything and not context-switching.
  bool CpuIdle(int cpu) const {
    const CpuState& cs = cpus_[cpu];
    return cs.current == nullptr && !cs.switching;
  }
  CpuMask IdleCpus() const;
  // The same information as per-CPU CpuIdle() calls, maintained incrementally
  // as a bitmask: a global agent intersects this with its enclave mask every
  // loop iteration, which must not cost a 256-CPU scan.
  const CpuMask& idle_cpus() const { return idle_cpus_; }

  // Listener invoked on busy<->idle transitions (ghOSt enclaves use this to
  // wake polling agents). `idle` is the new state. Returns a handle for
  // RemoveIdleListener.
  using IdleListener = InlineFunction<void(int cpu, bool idle)>;
  int AddIdleListener(IdleListener listener);
  void RemoveIdleListener(int handle);

  // ---- Statistics ---------------------------------------------------------------
  uint64_t total_context_switches() const;
  // Busy time including a currently running span.
  Duration CpuBusyTime(int cpu) const;

  const std::vector<Task*>& tasks() const { return tasks_; }
  Task* FindTask(int64_t tid) const;

  // Scheduling trace (sched_switch/sched_wakeup-style introspection).
  // Disabled by default; Enable() it in tests/tools that need it.
  Trace& trace() { return trace_; }

  // Fault injection (chaos/robustness testing). When installed, the kernel
  // and the ghOSt module consult it at their hook sites (IPI send, message
  // post, transaction validation). nullptr = no faults.
  void set_fault_injector(FaultInjector* injector) { fault_injector_ = injector; }
  FaultInjector* fault_injector() { return fault_injector_; }

 private:
  void ReschedNow(int cpu);
  void FinishSwitch(int cpu);
  void StartRunning(int cpu, Task* task, bool fresh_placement);
  // Account `current`'s progress up to now and restart the progress clock.
  void UpdateProgress(int cpu);
  void ArmCompletion(int cpu);
  void CancelCompletion(int cpu);
  void BurstComplete(int cpu);
  void OnTick(int cpu);
  double SpeedFactor(const Task& task, int cpu) const;
  // Re-rates the sibling CPU's current burst after this CPU's busy state
  // changed.
  void RerateSibling(int cpu);
  void SetBusy(int cpu, bool busy);
  double WarmthFactor(const Task& task, int cpu) const;
  // Mirror cpus_[cpu].current/switching into idle_cpus_; must follow every
  // write to either field.
  void RefreshIdleBit(int cpu) {
    if (CpuIdle(cpu)) {
      idle_cpus_.Set(cpu);
    } else {
      idle_cpus_.Clear(cpu);
    }
  }

  EventLoop* loop_;
  Topology topology_;
  CostModel cost_;
  // Fallback registry when the constructor got no external one.
  std::unique_ptr<StatsRegistry> owned_stats_;
  StatsRegistry* stats_;

  std::vector<std::unique_ptr<SchedClass>> classes_;
  int default_index_ = -1;

  std::vector<CpuState> cpus_;
  CpuMask idle_cpus_;  // bit set iff CpuIdle(cpu); see RefreshIdleBit
  // Tasks live in a typed slab (O(1) pooled allocation, pointer-stable,
  // cache-packed); tasks_ is the creation-ordered view.
  Slab<Task> task_slab_;
  std::vector<Task*> tasks_;
  int64_t next_tid_ = 1;

  // Sorted by handle; iterated on every busy<->idle transition, so a flat
  // vector beats a node-based map.
  std::vector<std::pair<int, IdleListener>> idle_listeners_;
  int next_listener_id_ = 1;
  std::vector<bool> tick_enabled_;
  std::vector<uint64_t> ticks_delivered_;
  Trace trace_;
  FaultInjector* fault_injector_ = nullptr;

  // Hot-path metrics (pointers into *stats_, cached at construction).
  Counter* stat_switch_task_;
  Counter* stat_switch_agent_;
  Counter* stat_ipi_local_;
  Counter* stat_ipi_cross_numa_;
  Counter* stat_ticks_;
  Counter* stat_tick_cost_ns_;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_KERNEL_KERNEL_H_
