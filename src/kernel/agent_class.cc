#include "src/kernel/agent_class.h"

#include "src/kernel/kernel.h"

namespace gs {

void AgentClass::Attach(Kernel* kernel) {
  SchedClass::Attach(kernel);
  agents_.resize(kernel->topology().num_cpus());
}

void AgentClass::RegisterAgent(int cpu, Task* agent) {
  CHECK_GE(cpu, 0);
  CHECK_LT(cpu, static_cast<int>(agents_.size()));
  Slot& slot = agents_[cpu];
  CHECK(slot.task == nullptr || slot.task->state() == TaskState::kDead)
      << "CPU " << cpu << " already has a live agent";
  slot.task = agent;
  slot.queued = false;
  agent->set_affinity(CpuMask::Single(cpu));
  kernel_->MarkAgent(agent);
}

void AgentClass::UnregisterAgent(int cpu, Task* agent) {
  Slot& slot = agents_[cpu];
  CHECK_EQ(slot.task, agent);
  slot.task = nullptr;
  slot.queued = false;
}

int AgentClass::CpuOf(const Task* task) const {
  for (size_t cpu = 0; cpu < agents_.size(); ++cpu) {
    if (agents_[cpu].task == task) {
      return static_cast<int>(cpu);
    }
  }
  LOG(FATAL) << task->name() << " is not a registered agent";
  return -1;
}

void AgentClass::TaskDeparted(Task* task) {
  const int cpu = CpuOf(task);
  agents_[cpu].queued = false;
}

void AgentClass::EnqueueWake(Task* task) {
  const int cpu = CpuOf(task);
  agents_[cpu].queued = true;
  kernel_->ReschedCpu(cpu);
}

void AgentClass::PutPrev(Task* task, int cpu, PutPrevReason reason) {
  Slot& slot = agents_[cpu];
  if (slot.task != task) {
    // The agent was unregistered (process shutdown/crash) while still on its
    // CPU; this is its final deschedule.
    return;
  }
  switch (reason) {
    case PutPrevReason::kPreempted:
      // Top class: shouldn't occur, but requeue to be safe.
      slot.queued = true;
      break;
    case PutPrevReason::kYielded:
      // A yielding agent vacates its CPU (commit-and-yield, Fig 3) and sleeps
      // until the next queue wakeup.
      slot.queued = false;
      task->set_state(TaskState::kBlocked);
      break;
    case PutPrevReason::kBlocked:
    case PutPrevReason::kExited:
      slot.queued = false;
      break;
  }
}

Task* AgentClass::PickNext(int cpu) {
  Slot& slot = agents_[cpu];
  if (!slot.queued) {
    return nullptr;
  }
  slot.queued = false;
  return slot.task;
}

}  // namespace gs
