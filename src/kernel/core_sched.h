// In-kernel core scheduling: the §4.5 baseline.
//
// Mitigating L1TF/MDS cross-hyperthread attacks requires that both logical
// CPUs of a physical core only ever run threads of the same trust domain
// ("cookie" — here, the same VM). This class is the in-kernel implementation
// ghOSt's secure-VM policy is compared against (Table 4): a global picture of
// cookie groups, per-core cookie ownership, and round-robin rotation among
// cookies every slice. Its complexity (the paper's in-kernel version is
// 7,164 LOC against ghOSt's 4,702) comes from doing all of this inside
// pick_next_task with only per-CPU context — exactly what the paper argues
// an agent with a global view does more simply.
#ifndef GHOST_SIM_SRC_KERNEL_CORE_SCHED_H_
#define GHOST_SIM_SRC_KERNEL_CORE_SCHED_H_

#include <map>
#include <vector>

#include "src/base/ring_deque.h"
#include "src/kernel/sched_class.h"

namespace gs {

class CoreSchedClass : public SchedClass {
 public:
  struct Params {
    Duration slice = Milliseconds(6);
  };

  CoreSchedClass() : CoreSchedClass(Params()) {}
  explicit CoreSchedClass(Params params) : params_(params) {}

  const char* name() const override { return "core-sched"; }
  void Attach(Kernel* kernel) override;

  // Assigns the task's trust-domain cookie (must be non-zero; tasks of the
  // same VM share a cookie). Set before the first wakeup.
  void SetCookie(Task* task, int64_t cookie);

  void TaskNew(Task* task) override {}
  void TaskDeparted(Task* task) override;
  void EnqueueWake(Task* task) override;
  void PutPrev(Task* task, int cpu, PutPrevReason reason) override;
  Task* PickNext(int cpu) override;
  void TaskStarted(int cpu, Task* task) override;
  void TaskTick(int cpu, Task* current) override;
  void IdleTick(int cpu) override;
  bool HasQueuedWork(int cpu) const override;

  // Security monitor: number of times two different cookies were observed
  // running on sibling CPUs (must stay 0).
  uint64_t violations() const { return violations_; }
  uint64_t rotations() const { return rotations_; }

 private:
  struct Group {
    RingDeque<Task*> runnable;
  };

  int CoreOf(int cpu) const;
  // This class's tasks running or mid-switch on the core's CPUs.
  int OccupantsOnCore(int core) const;
  // Picks the next cookie (round-robin after `after`) with runnable work.
  int64_t NextCookie(int64_t after) const;
  bool AnyOtherCookieWaiting(int64_t current) const;
  void KickCore(int core);

  Params params_;
  std::map<int64_t, Group> groups_;
  std::vector<int64_t> core_cookie_;  // active cookie per core (0 = none)
  std::vector<Time> core_since_;     // when the core adopted its cookie
  std::vector<bool> core_rotate_;    // slice expired: drain, then switch cookie
  int64_t last_adopted_ = 0;
  uint64_t violations_ = 0;
  uint64_t rotations_ = 0;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_KERNEL_CORE_SCHED_H_
