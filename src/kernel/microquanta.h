// MicroQuanta: Google's soft real-time scheduling class (the §4.3 baseline).
//
// From the paper: "we deploy in production MicroQuanta, a custom, soft
// real-time scheduler that guarantees that for any period, e.g. 1 ms, at most
// a quanta of time, e.g. 0.9 ms, is given to each packet processing worker.
// This policy ensures worker threads receive runtime while not starving other
// threads. However, it also leads to networking blackouts of up to 0.1 ms."
//
// Implementation: a class above CFS whose tasks run whenever runnable but are
// throttled once they consume their quanta inside the current period window;
// throttled tasks rejoin at the next window boundary. The 0.1 ms blackout
// that Fig 7 measures falls directly out of this throttling.
#ifndef GHOST_SIM_SRC_KERNEL_MICROQUANTA_H_
#define GHOST_SIM_SRC_KERNEL_MICROQUANTA_H_

#include <vector>

#include "src/base/ring_deque.h"
#include "src/kernel/sched_class.h"

namespace gs {

class MicroQuantaClass : public SchedClass {
 public:
  struct Params {
    Duration period = Milliseconds(1);
    Duration quanta = Nanoseconds(900'000);
  };

  MicroQuantaClass() : MicroQuantaClass(Params()) {}
  explicit MicroQuantaClass(Params params) : params_(params) {}

  const char* name() const override { return "microquanta"; }
  void Attach(Kernel* kernel) override;
  void TaskNew(Task* task) override;
  void TaskDeparted(Task* task) override;
  void EnqueueWake(Task* task) override;
  void PutPrev(Task* task, int cpu, PutPrevReason reason) override;
  Task* PickNext(int cpu) override;
  void TaskStarted(int cpu, Task* task) override;
  void IdleTick(int cpu) override;
  void AffinityChanged(Task* task) override;
  bool HasQueuedWork(int cpu) const override { return !rqs_[cpu].empty(); }

  uint64_t throttle_count() const { return throttle_count_; }

 private:
  void Enqueue(int cpu, Task* task);
  void DequeueIfQueued(Task* task);
  int SelectCpu(Task* task) const;
  // Rolls the task's accounting window forward if the period has elapsed.
  void MaybeRollWindow(Task* task);
  void Throttle(Task* task);
  void Unthrottle(Task* task);
  void CancelThrottleTimer(Task* task);

  Params params_;
  // Ring-backed FIFOs: per-CPU queues oscillate around empty, which makes
  // std::deque free/reallocate its block on every cycle.
  std::vector<RingDeque<Task*>> rqs_;
  // Tasks queued across all rqs_: every idle tick probes this class, and a
  // machine with no MicroQuanta work must not pay an all-CPU scan per tick.
  size_t queued_total_ = 0;
  // Throttle-check events for *running* tasks, keyed by CPU.
  std::vector<EventId> throttle_events_;
  uint64_t throttle_count_ = 0;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_KERNEL_MICROQUANTA_H_
