#include "src/kernel/microquanta.h"

#include <algorithm>

#include "src/kernel/kernel.h"

namespace gs {

void MicroQuantaClass::Attach(Kernel* kernel) {
  SchedClass::Attach(kernel);
  rqs_.resize(kernel->topology().num_cpus());
  throttle_events_.assign(kernel->topology().num_cpus(), kInvalidEventId);
}

void MicroQuantaClass::TaskNew(Task* task) {
  task->mq() = MicroQuantaTaskState();
  task->mq().period = params_.period;
  task->mq().quanta = params_.quanta;
  task->mq().window_start = kernel_->now();
}

void MicroQuantaClass::TaskDeparted(Task* task) {
  DequeueIfQueued(task);
  MicroQuantaTaskState& st = task->mq();
  if (st.unthrottle_event != kInvalidEventId) {
    kernel_->loop()->Cancel(st.unthrottle_event);
    st.unthrottle_event = kInvalidEventId;
  }
  st.throttled = false;
}

void MicroQuantaClass::Enqueue(int cpu, Task* task) {
  MicroQuantaTaskState& st = task->mq();
  CHECK(!st.queued) << task->name();
  st.queued = true;
  st.rq_cpu = cpu;
  rqs_[cpu].push_back(task);
  ++queued_total_;
}

void MicroQuantaClass::DequeueIfQueued(Task* task) {
  MicroQuantaTaskState& st = task->mq();
  if (!st.queued) {
    return;
  }
  auto& rq = rqs_[st.rq_cpu];
  auto it = std::find(rq.begin(), rq.end(), task);
  CHECK(it != rq.end());
  rq.erase(it);
  --queued_total_;
  st.queued = false;
  st.rq_cpu = -1;
}

int MicroQuantaClass::SelectCpu(Task* task) const {
  const CpuMask& affinity = task->affinity();
  const int num_cpus = kernel_->topology().num_cpus();

  auto usable = [&](int cpu) {
    return cpu >= 0 && cpu < num_cpus && affinity.IsSet(cpu) &&
           kernel_->CpuAvailableFor(cpu, this) && rqs_[cpu].empty();
  };

  if (usable(task->last_cpu())) {
    return task->last_cpu();
  }
  for (int cpu = affinity.First(); cpu >= 0 && cpu < num_cpus; cpu = affinity.NextAfter(cpu)) {
    if (usable(cpu)) {
      return cpu;
    }
  }
  // Everyone busy with >= our priority: shortest queue.
  int best = -1;
  size_t best_depth = SIZE_MAX;
  for (int cpu = affinity.First(); cpu >= 0 && cpu < num_cpus; cpu = affinity.NextAfter(cpu)) {
    if (rqs_[cpu].size() < best_depth) {
      best_depth = rqs_[cpu].size();
      best = cpu;
    }
  }
  CHECK_GE(best, 0) << "no allowed CPU for " << task->name();
  return best;
}

void MicroQuantaClass::MaybeRollWindow(Task* task) {
  MicroQuantaTaskState& st = task->mq();
  if (kernel_->now() - st.window_start >= st.period) {
    st.window_start = kernel_->now();
    st.used_in_window = 0;
  }
}

void MicroQuantaClass::EnqueueWake(Task* task) {
  MaybeRollWindow(task);
  MicroQuantaTaskState& st = task->mq();
  if (st.throttled) {
    return;  // joins at the unthrottle boundary
  }
  const int cpu = SelectCpu(task);
  Enqueue(cpu, task);
  if (kernel_->CpuAvailableFor(cpu, this)) {
    kernel_->ReschedCpu(cpu);
  }
}

void MicroQuantaClass::TaskStarted(int cpu, Task* task) {
  MaybeRollWindow(task);
  MicroQuantaTaskState& st = task->mq();
  st.run_begin = kernel_->now();
  const Duration remaining = std::max<Duration>(0, st.quanta - st.used_in_window);
  CancelThrottleTimer(task);
  throttle_events_[cpu] = kernel_->loop()->ScheduleAfter(remaining, [this, cpu, task] {
    throttle_events_[cpu] = kInvalidEventId;
    if (kernel_->current(cpu) != task) {
      return;  // stale
    }
    MaybeRollWindow(task);
    MicroQuantaTaskState& state = task->mq();
    if (state.used_in_window + (kernel_->now() - state.run_begin) < state.quanta) {
      // The window rolled while running: re-arm via another TaskStarted-style
      // charge point.
      TaskStarted(cpu, task);
      return;
    }
    Throttle(task);
    kernel_->ReschedCpu(cpu);
  });
}

void MicroQuantaClass::CancelThrottleTimer(Task* task) {
  const int cpu = task->cpu();
  if (cpu >= 0 && throttle_events_[cpu] != kInvalidEventId) {
    kernel_->loop()->Cancel(throttle_events_[cpu]);
    throttle_events_[cpu] = kInvalidEventId;
  }
}

void MicroQuantaClass::Throttle(Task* task) {
  MicroQuantaTaskState& st = task->mq();
  CHECK(!st.throttled);
  st.throttled = true;
  ++throttle_count_;
  const Time boundary = st.window_start + st.period;
  const Duration delay = std::max<Duration>(0, boundary - kernel_->now());
  st.unthrottle_event = kernel_->loop()->ScheduleAfter(delay, [this, task] { Unthrottle(task); });
}

void MicroQuantaClass::Unthrottle(Task* task) {
  MicroQuantaTaskState& st = task->mq();
  st.unthrottle_event = kInvalidEventId;
  st.throttled = false;
  st.window_start = kernel_->now();
  st.used_in_window = 0;
  if (task->state() == TaskState::kRunnable && !st.queued) {
    const int cpu = SelectCpu(task);
    Enqueue(cpu, task);
    if (kernel_->CpuAvailableFor(cpu, this)) {
      kernel_->ReschedCpu(cpu);
    }
  }
}

void MicroQuantaClass::IdleTick(int cpu) {
  if (queued_total_ == 0) {
    return;  // no queued work anywhere: nothing to migrate or kick
  }
  // This CPU could run MicroQuanta work but has none queued: migrate a task
  // stranded on a runqueue whose CPU is monopolized by a higher class (e.g.
  // a spinning agent).
  if (!kernel_->CpuAvailableFor(cpu, this) || !rqs_[cpu].empty()) {
    if (!rqs_[cpu].empty() && kernel_->CpuAvailableFor(cpu, this)) {
      kernel_->ReschedCpu(cpu);
    }
    return;
  }
  for (int other = 0; other < static_cast<int>(rqs_.size()); ++other) {
    if (other == cpu || rqs_[other].empty() || kernel_->CpuAvailableFor(other, this)) {
      continue;
    }
    for (Task* task : rqs_[other]) {
      if (task->affinity().IsSet(cpu)) {
        DequeueIfQueued(task);
        Enqueue(cpu, task);
        kernel_->ReschedCpu(cpu);
        return;
      }
    }
  }
}

void MicroQuantaClass::PutPrev(Task* task, int cpu, PutPrevReason reason) {
  MicroQuantaTaskState& st = task->mq();
  if (throttle_events_[cpu] != kInvalidEventId) {
    kernel_->loop()->Cancel(throttle_events_[cpu]);
    throttle_events_[cpu] = kInvalidEventId;
  }
  st.used_in_window += kernel_->now() - st.run_begin;
  st.run_begin = kernel_->now();
  if (reason == PutPrevReason::kBlocked || reason == PutPrevReason::kExited) {
    return;
  }
  if (st.throttled) {
    return;  // rejoins at the window boundary
  }
  if (st.used_in_window >= st.quanta) {
    Throttle(task);
    return;
  }
  Enqueue(cpu, task);
}

Task* MicroQuantaClass::PickNext(int cpu) {
  auto& rq = rqs_[cpu];
  if (rq.empty()) {
    return nullptr;
  }
  Task* task = rq.front();
  rq.pop_front();
  --queued_total_;
  task->mq().queued = false;
  task->mq().rq_cpu = -1;
  return task;
}

void MicroQuantaClass::AffinityChanged(Task* task) {
  MicroQuantaTaskState& st = task->mq();
  if (st.queued && !task->affinity().IsSet(st.rq_cpu)) {
    DequeueIfQueued(task);
    const int cpu = SelectCpu(task);
    Enqueue(cpu, task);
    kernel_->ReschedCpu(cpu);
  }
}

}  // namespace gs
