// Scheduling-class interface, mirroring Linux's struct sched_class.
//
// Classes are consulted in strict priority order by Kernel::PickNext (§2 of
// the paper): the agent class sits on top (like SCHED_FIFO), then optional
// experiment classes (MicroQuanta, core scheduling), then CFS, and the ghOSt
// class at the bottom so that "most threads in the system will preempt ghOSt
// threads" (§3.4).
#ifndef GHOST_SIM_SRC_KERNEL_SCHED_CLASS_H_
#define GHOST_SIM_SRC_KERNEL_SCHED_CLASS_H_

#include <string>

#include "src/kernel/task.h"

namespace gs {

class Kernel;

class SchedClass {
 public:
  virtual ~SchedClass() = default;

  virtual const char* name() const = 0;

  // Called once when the class is installed.
  virtual void Attach(Kernel* kernel) { kernel_ = kernel; }

  // A task was assigned to this class (creation or setscheduler).
  virtual void TaskNew(Task* task) = 0;

  // A task left this class (setscheduler away) or died. The task is not
  // running and not queued when this is called.
  virtual void TaskDeparted(Task* task) = 0;

  // The task became runnable (wakeup). The class may select a CPU and request
  // a resched via Kernel::ReschedCpu().
  virtual void EnqueueWake(Task* task) = 0;

  // `task` is coming off `cpu`. If the reason leaves it runnable
  // (kPreempted/kYielded) the class must requeue it; for kBlocked/kExited it
  // must forget it. Always called before PickNext for that CPU.
  virtual void PutPrev(Task* task, int cpu, PutPrevReason reason) = 0;

  // A running task died, called synchronously from Kernel::Exit() before the
  // freed CPU's (zero-delay, but separately ordered) reschedule event runs.
  // Classes that expose per-task state to outside observers (ghOSt's status
  // words and enclave tables) tear it down here so no event ordering can see
  // a dead-but-still-managed task — mirroring the real kernel's task_dead
  // hook, which runs in the exit path itself. The default leaves everything
  // to the reschedule's PutPrev(kExited).
  virtual void TaskExited(Task* task) {}

  // Returns the task this class wants on `cpu` now (possibly the task just
  // passed to PutPrev), or nullptr. The class removes the returned task from
  // its queues before returning it.
  virtual Task* PickNext(int cpu) = 0;

  // The task actually started running on `cpu` (after any context-switch
  // delay). Classes that enforce budgets (MicroQuanta) arm timers here.
  virtual void TaskStarted(int cpu, Task* task) {}

  // Periodic timer tick while `current` (owned by this class) runs on `cpu`.
  virtual void TaskTick(int cpu, Task* current) {}

  // Tick on an idle CPU (used for load balancing / TIMER_TICK messages).
  virtual void IdleTick(int cpu) {}

  // The task's affinity changed (sched_setaffinity). Task may be queued,
  // running, or blocked; the class must make its queues consistent.
  virtual void AffinityChanged(Task* task) {}

  // True if this class has any runnable (queued) task that `cpu` could run.
  // Used by the kernel to decide whether an idle CPU should look further.
  virtual bool HasQueuedWork(int cpu) const { return false; }

 protected:
  Kernel* kernel_ = nullptr;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_KERNEL_SCHED_CLASS_H_
