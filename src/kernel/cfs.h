// CFS: a faithful-in-spirit model of Linux's Completely Fair Scheduler.
//
// This is both the default class that ghOSt co-exists with (§3.4: ghOSt
// threads are preempted by CFS threads; crashed enclaves fall back to CFS)
// and the baseline scheduler for the Fig 6 (CFS-Shinjuku), Fig 8 (Google
// Search) and Table 4 comparisons. It implements the behaviours those
// experiments depend on:
//
//  * per-CPU vruntime runqueues with the standard nice->weight table,
//  * sleeper credit on wakeup and wakeup preemption,
//  * slice expiry on the 1 ms tick (sched_latency / nr_running),
//  * topology-aware wake placement (prev CPU -> sibling -> CCX -> NUMA),
//  * idle balancing (pull on idle) and *periodic* load balancing at
//    millisecond scale — the slow rebalancing the paper contrasts with a
//    spinning global agent (§4.4).
#ifndef GHOST_SIM_SRC_KERNEL_CFS_H_
#define GHOST_SIM_SRC_KERNEL_CFS_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "src/base/logging.h"
#include "src/kernel/sched_class.h"

namespace gs {

class CfsClass : public SchedClass {
 public:
  struct Params {
    Duration sched_latency = Milliseconds(6);
    Duration min_granularity = Microseconds(750);
    Duration wakeup_granularity = Milliseconds(1);
    // Periodic load balance interval, in ticks (Linux: O(ms), scaled by
    // domain size; 4 ms is representative for one socket).
    int balance_interval_ticks = 4;
  };

  CfsClass();
  explicit CfsClass(Params params);

  const char* name() const override { return "cfs"; }
  void Attach(Kernel* kernel) override;
  void TaskNew(Task* task) override;
  void TaskDeparted(Task* task) override;
  void EnqueueWake(Task* task) override;
  void PutPrev(Task* task, int cpu, PutPrevReason reason) override;
  Task* PickNext(int cpu) override;
  void TaskTick(int cpu, Task* current) override;
  void IdleTick(int cpu) override;
  void AffinityChanged(Task* task) override;
  bool HasQueuedWork(int cpu) const override;

  // Statistics.
  uint64_t steals() const { return steals_; }
  int QueueDepth(int cpu) const { return static_cast<int>(rqs_[cpu].queue.size()); }

  static int64_t NiceToWeight(int nice);

 private:
  // Ordered by (vruntime, tid) — leftmost is next. The tid tie-break keeps
  // ordering independent of Task allocation addresses.
  struct ByVruntimeTid {
    bool operator()(const std::pair<int64_t, Task*>& a,
                    const std::pair<int64_t, Task*>& b) const {
      if (a.first != b.first) {
        return a.first < b.first;
      }
      return a.second->tid() < b.second->tid();
    }
  };

  struct Rq {
    // A flat sorted vector instead of std::set: per-CPU depth is small (a
    // handful of tasks), so a shift of a few contiguous pairs beats a
    // red-black rebalance plus node malloc/free on every enqueue/dequeue,
    // and the leftmost pick is a front() read.
    std::vector<std::pair<int64_t, Task*>> queue;
    int64_t min_vruntime = 0;
    int ticks_since_balance = 0;

    void Insert(std::pair<int64_t, Task*> entry) {
      queue.insert(std::lower_bound(queue.begin(), queue.end(), entry,
                                    ByVruntimeTid()),
                   entry);
    }
    void Erase(std::pair<int64_t, Task*> entry) {
      auto it = std::lower_bound(queue.begin(), queue.end(), entry,
                                 ByVruntimeTid());
      CHECK(it != queue.end() && it->second == entry.second)
          << entry.second->name() << " not on rq";
      queue.erase(it);
    }
  };

  void Enqueue(int cpu, Task* task);
  void Dequeue(int cpu, Task* task);
  // Picks a CPU for a waking task: previous CPU if available, then outward
  // through the topology, else the least-loaded allowed runqueue.
  int SelectCpu(Task* task) const;
  // Charges vruntime for runtime accumulated since the task was picked.
  void ChargeVruntime(Task* task, int cpu);
  // Pulls one stealable task from the most loaded runqueue into `cpu`'s.
  // Returns the pulled task or nullptr.
  Task* PullOne(int cpu);
  // Active balance (migration_cpu_stop): when a whole core idles while
  // another core runs tasks on both hyperthreads, preempt one of them and
  // steer it here. Returns true if a migration was initiated.
  bool ActiveBalance(int idle_cpu);
  void CheckWakeupPreemption(int cpu, Task* waking);

  Params params_;
  std::vector<Rq> rqs_;
  // Tasks queued across all rqs. Guards the balance scans: an all-idle class
  // (e.g. fig5's pure-ghOSt regime) used to probe every runqueue + CPU on
  // every pick; with the counter an empty class answers PickNext in O(1).
  size_t total_queued_ = 0;
  // Pending active-balance destination per source CPU (-1 = none): the next
  // PutPrev(kPreempted) on that CPU enqueues onto the destination instead.
  std::vector<int> pull_to_;
  uint64_t steals_ = 0;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_KERNEL_CFS_H_
