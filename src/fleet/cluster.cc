#include "src/fleet/cluster.h"

#include <algorithm>
#include <utility>

#include "src/base/logging.h"
#include "src/sim/batch_runner.h"

namespace gs {
namespace fleet {
namespace {

Duration FromMs(double ms) { return static_cast<Duration>(ms * 1e6); }
Duration FromUs(double us) { return static_cast<Duration>(us * 1e3); }

// Gbps -> bytes per simulated nanosecond.
double BytesPerNs(double gbps) { return gbps / 8.0; }

}  // namespace

Cluster::Cluster(const scenario::ScenarioSpec& spec, StatsRegistry* stats, int jobs)
    : spec_(spec),
      stats_(stats),
      jobs_(jobs),
      fleet_mode_(spec.fleet.has_value()),
      session_rng_(spec.seed ^ 0x5e551017ULL),
      leaf_rng_(spec.seed ^ 0x9e3779b97f4a7c15ULL) {
  if (!fleet_mode_) {
    MachineSim::Options options;
    options.stats = stats_;
    machines_.push_back(std::make_unique<MachineSim>(spec_, options));
    return;
  }
  BuildFleet();
}

Cluster::~Cluster() = default;

void Cluster::BuildFleet() {
  const scenario::FleetSpec& fleet = *spec_.fleet;
  const int num_machines = fleet.machines;

  // ---- Per-machine specs: base + override sections + machine-scoped fault
  // events from the fleet plan, each with its own derived seed. -------------
  for (int m = 0; m < num_machines; ++m) {
    scenario::ScenarioSpec machine_spec = spec_;
    machine_spec.fleet.reset();
    machine_spec.seed = spec_.seed + 7919ULL * static_cast<uint64_t>(m + 1);
    for (const scenario::MachineOverrideSpec& o : fleet.overrides) {
      if (o.machine != m) {
        continue;
      }
      if (o.policy.has_value()) machine_spec.policy = *o.policy;
      if (o.enclave.has_value()) machine_spec.enclave = *o.enclave;
      if (o.workload.has_value()) machine_spec.workload = *o.workload;
      if (o.antagonist.has_value()) machine_spec.antagonist = *o.antagonist;
      if (o.faults.has_value()) machine_spec.faults = *o.faults;
    }
    for (const scenario::FleetEventSpec& event : fleet.plan) {
      if (event.machine != m || event.kind == "lb_drain" ||
          event.kind == "lb_undrain" || event.kind == "link_down" ||
          event.kind == "link_up") {
        continue;
      }
      scenario::FaultEventSpec fault;
      fault.at_ms = event.at_ms;
      fault.kind = event.kind;
      machine_spec.faults.plan.push_back(fault);
    }
    MachineSim::Options options;
    options.stats = nullptr;  // own a registry; merged at collect
    options.collect_stats = stats_ != nullptr;
    options.fleet_mode = true;
    machines_.push_back(std::make_unique<MachineSim>(machine_spec, options));
  }

  // ---- Front end + network -------------------------------------------------
  frontend_loop_ = std::make_unique<EventLoop>();
  const int frontend = num_machines;
  std::vector<EventLoop*> loops;
  for (const std::unique_ptr<MachineSim>& machine : machines_) {
    loops.push_back(&machine->loop());
  }
  loops.push_back(frontend_loop_.get());

  NetworkModel::Options net_options;
  net_options.default_latency = FromUs(fleet.network.latency_us);
  net_options.default_bytes_per_ns = BytesPerNs(fleet.network.bandwidth_gbps);
  network_ = std::make_unique<NetworkModel>(std::move(loops), net_options);
  for (const scenario::LinkSpec& link : fleet.network.links) {
    const int from = link.from < 0 ? frontend : link.from;
    const int to = link.to < 0 ? frontend : link.to;
    const Duration latency = link.latency_us >= 0 ? FromUs(link.latency_us)
                                                  : net_options.default_latency;
    const double bpn = link.bandwidth_gbps >= 0
                           ? BytesPerNs(link.bandwidth_gbps)
                           : net_options.default_bytes_per_ns;
    network_->SetLink(from, to, latency, bpn);
  }
  request_bytes_ = static_cast<int64_t>(fleet.network.request_bytes);
  response_bytes_ = static_cast<int64_t>(fleet.network.response_bytes);

  LoadBalancer::Options lb_options;
  lb_options.strategy = fleet.balancer.policy;
  lb_options.num_machines = num_machines;
  lb_options.shed_outstanding = fleet.balancer.shed_outstanding;
  lb_options.virtual_nodes = fleet.balancer.virtual_nodes;
  balancer_ = std::make_unique<LoadBalancer>(lb_options);

  // ---- Front-end load: the workload's Poisson phases drive arrivals, with
  // the same per-phase seeds the single-machine path uses. ------------------
  // Service model shared by arrival sampling and leaf RPC sampling.
  if (spec_.workload.service.model == "fixed") {
    service_ = std::make_unique<FixedServiceModel>(
        FromUs(spec_.workload.service.fixed_us));
  } else if (spec_.workload.service.model == "exponential") {
    service_ = std::make_unique<ExponentialServiceModel>(
        FromUs(spec_.workload.service.mean_us));
  } else {
    service_ = std::make_unique<BimodalServiceModel>(
        FromUs(spec_.workload.service.short_us),
        FromUs(spec_.workload.service.long_us), spec_.workload.service.p_long);
  }
  Time phase_start = 0;
  int phase_index = 0;
  for (const scenario::LoadPhase& phase : spec_.workload.phases) {
    const Time start = phase_start;
    const Time end = phase_start + FromMs(phase.duration_ms);
    if (phase.qps > 0) {
      gens_.push_back(std::make_unique<PoissonLoadGen>(
          frontend_loop_.get(), service_.get(), phase.qps,
          spec_.seed + 1000003ULL * static_cast<uint64_t>(phase_index),
          [this](Time, Duration service) { OnArrival(service); }));
      PoissonLoadGen* gen = gens_.back().get();
      frontend_loop_->ScheduleAt(start, [gen, end] { gen->Start(end); });
    }
    phase_start = end;
    ++phase_index;
  }

  // ---- Fleet plan: balancer events run on the front-end loop at their
  // exact times; link events become epoch cuts applied at barriers. ---------
  for (const scenario::FleetEventSpec& event : fleet.plan) {
    const Time when = FromMs(event.at_ms);
    const int machine = event.machine;
    if (event.kind == "lb_drain") {
      frontend_loop_->ScheduleAt(
          when, [this, machine] { balancer_->SetDraining(machine, true); });
    } else if (event.kind == "lb_undrain") {
      frontend_loop_->ScheduleAt(
          when, [this, machine] { balancer_->SetDraining(machine, false); });
    } else if (event.kind == "link_down" || event.kind == "link_up") {
      link_cuts_.push_back(when);
    }
  }
  std::sort(link_cuts_.begin(), link_cuts_.end());
  link_cuts_.erase(std::unique(link_cuts_.begin(), link_cuts_.end()),
                   link_cuts_.end());

  // ---- Warmup reset for the end-to-end metrics ----------------------------
  frontend_loop_->ScheduleAt(FromMs(spec_.warmup_ms), [this] {
    e2e_.Reset();
    completed_at_warmup_ = completed_;
  });
}

void Cluster::OnArrival(Duration root_service) {
  const uint64_t session =
      session_rng_.NextBounded(static_cast<uint64_t>(spec_.fleet->sessions));
  const int machine = balancer_->Route(session);
  if (machine < 0) {
    ++shed_;
    return;
  }
  balancer_->OnDispatch(machine);
  const Time arrival = frontend_loop_->now();
  // Leaf service times are sampled at the front end so there is exactly one
  // deterministic sampling stream no matter which machines serve the leaves.
  const int leaves = spec_.fleet->rpc_fanout - 1;
  auto leaf_services = std::make_shared<std::vector<Duration>>();
  for (int i = 0; i < leaves; ++i) {
    leaf_services->push_back(service_->Sample(leaf_rng_));
  }
  network_->Send(num_machines(), machine, request_bytes_,
                 [this, machine, arrival, root_service, leaf_services] {
                   OnMachineRequest(machine, arrival, root_service, leaf_services);
                 });
}

void Cluster::OnMachineRequest(int machine, Time arrival, Duration root_service,
                               std::shared_ptr<std::vector<Duration>> leaf_services) {
  // Runs on `machine`'s loop at request delivery time.
  MachineSim* root = machines_[machine].get();
  ++root->rpcs_received;
  root->SubmitRequest(
      root_service, [this, machine, arrival, leaf_services](Time, Duration) {
        if (leaf_services->empty()) {
          Respond(machine, arrival);
          return;
        }
        // Root service done: fan out to the next rpc_fanout-1 machines. The
        // join counter lives on the root machine's loop (leaf responses are
        // delivered there), so no cross-thread state.
        auto remaining = std::make_shared<int>(
            static_cast<int>(leaf_services->size()));
        for (size_t i = 0; i < leaf_services->size(); ++i) {
          const int leaf =
              (machine + 1 + static_cast<int>(i)) % num_machines();
          const Duration leaf_service = (*leaf_services)[i];
          network_->Send(
              machine, leaf, request_bytes_,
              [this, machine, arrival, leaf, leaf_service, remaining] {
                MachineSim* leaf_sim = machines_[leaf].get();
                ++leaf_sim->rpcs_received;
                leaf_sim->SubmitRequest(
                    leaf_service,
                    [this, machine, arrival, leaf, remaining](Time, Duration) {
                      network_->Send(leaf, machine, response_bytes_,
                                     [this, machine, arrival, remaining] {
                                       if (--*remaining == 0) {
                                         Respond(machine, arrival);
                                       }
                                     });
                    });
              });
        }
      });
}

void Cluster::Respond(int machine, Time arrival) {
  // Runs on the root machine's loop; the response crosses back to the front
  // end, where completion bookkeeping happens on the front-end loop.
  network_->Send(machine, num_machines(), response_bytes_,
                 [this, machine, arrival] {
                   balancer_->OnComplete(machine);
                   ++completed_;
                   e2e_.Add(frontend_loop_->now() - arrival);
                 });
}

void Cluster::RunFleet() {
  const scenario::FleetSpec& fleet = *spec_.fleet;
  const Time t_end =
      FromMs(spec_.warmup_ms) + FromMs(spec_.measure_ms) + FromMs(spec_.drain_ms);
  const Duration lookahead = network_->min_latency();
  CHECK_GT(lookahead, 0);

  // Link events at t=0 apply before anything runs.
  auto apply_link_events_at = [&](Time t) {
    for (const scenario::FleetEventSpec& event : fleet.plan) {
      if (FromMs(event.at_ms) != t) {
        continue;
      }
      if (event.kind == "link_down") {
        network_->SetNodeLinked(event.machine, false, t);
      } else if (event.kind == "link_up") {
        network_->SetNodeLinked(event.machine, true, t);
      }
    }
  };
  size_t next_cut = 0;
  while (next_cut < link_cuts_.size() && link_cuts_[next_cut] == 0) {
    apply_link_events_at(0);
    ++next_cut;
  }

  BatchRunner runner(jobs_);
  const int nodes = num_machines() + 1;
  Time t = 0;
  while (t < t_end) {
    Time next = std::min(t + lookahead, t_end);
    if (next_cut < link_cuts_.size() && link_cuts_[next_cut] > t) {
      next = std::min(next, link_cuts_[next_cut]);
    }
    // Advance every node to the barrier. Nodes share nothing mid-epoch, so
    // the pool only changes wall-clock time, never results.
    runner.Run(nodes, [&](int node) {
      if (node < num_machines()) {
        machines_[node]->AdvanceUntil(next);
      } else {
        frontend_loop_->RunUntil(next);
      }
    });
    network_->FlushAtBarrier();
    if (next_cut < link_cuts_.size() && link_cuts_[next_cut] == next) {
      apply_link_events_at(next);
      ++next_cut;
    }
    t = next;
  }
  for (const std::unique_ptr<MachineSim>& machine : machines_) {
    machine->FinishChecks();
  }
}

void Cluster::CollectFleet(scenario::ScenarioResult* result) {
  int64_t generated = 0;
  for (const auto& gen : gens_) {
    generated += gen->generated();
  }
  result->exact["generated"] = generated;
  result->exact["completed"] = completed_;
  result->exact["shed"] = shed_;
  int64_t rpcs = 0;
  int64_t routed_total = 0;
  int64_t routed_max = 0;
  for (int m = 0; m < num_machines(); ++m) {
    rpcs += machines_[m]->rpcs_received;
    routed_total += balancer_->routed(m);
    routed_max = std::max(routed_max, balancer_->routed(m));
  }
  result->exact["rpcs"] = rpcs;
  result->exact["net_messages"] = network_->delivered();
  result->exact["net_parked"] = network_->parked();

  const Duration measure_window =
      FromMs(spec_.measure_ms) + FromMs(spec_.drain_ms);
  result->envelopes["achieved_kqps"] =
      static_cast<double>(completed_ - completed_at_warmup_) /
      ToSeconds(measure_window) / 1e3;
  result->envelopes["p50_us"] = e2e_.PercentileUs(50);
  result->envelopes["p99_us"] = e2e_.PercentileUs(99);
  result->envelopes["p999_us"] = e2e_.PercentileUs(99.9);
  if (routed_total > 0) {
    result->envelopes["lb_max_share"] =
        static_cast<double>(routed_max) / static_cast<double>(routed_total);
  }

  if (spec_.invariants.enabled) {
    result->exact["invariants_ok"] = 1;
    result->exact["invariant_violations"] = 0;
  }
  for (int m = 0; m < num_machines(); ++m) {
    machines_[m]->CollectFleet(result, m);
  }
  if (stats_ != nullptr) {
    for (const std::unique_ptr<MachineSim>& machine : machines_) {
      stats_->MergeFrom(machine->stats());
    }
  }
}

scenario::ScenarioResult Cluster::Run() {
  scenario::ScenarioResult result;
  result.name = spec_.name;
  result.seed = spec_.seed;
  if (!fleet_mode_) {
    machines_[0]->RunLocal();
    machines_[0]->CollectLocal(&result);
    return result;
  }
  RunFleet();
  CollectFleet(&result);
  return result;
}

}  // namespace fleet
}  // namespace gs
