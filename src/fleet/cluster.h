// Cluster: a fleet of MachineSims behind a front-end load balancer.
//
// Ownership: Cluster -> N MachineSim -> SimulationContext -> Kernel. The
// cluster also owns the front end (its own EventLoop, the LoadBalancer, the
// session/leaf RNG streams, the end-to-end latency recorder) and the
// NetworkModel connecting all N+1 nodes.
//
// Execution is conservative-lookahead lockstep (see network.h): the run is
// cut into epochs no longer than the minimum link latency; each epoch every
// node's loop advances independently (optionally on a BatchRunner pool —
// nodes share nothing mid-epoch), then the barrier flushes cross-node
// messages in canonical order and applies any link state changes scheduled
// at that instant. Results are byte-identical for every --jobs value.
//
// A spec without a fleet block is the degenerate one-node cluster: one
// MachineSim borrowing the caller's registry, run via RunLocal() — the
// pre-fleet RunScenario path, byte-for-byte.
#ifndef GHOST_SIM_SRC_FLEET_CLUSTER_H_
#define GHOST_SIM_SRC_FLEET_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/rng.h"
#include "src/fleet/load_balancer.h"
#include "src/fleet/machine_sim.h"
#include "src/fleet/network.h"
#include "src/scenario/scenario.h"
#include "src/scenario/scenario_runner.h"
#include "src/sim/event_loop.h"
#include "src/workloads/latency_recorder.h"
#include "src/workloads/request_service.h"

namespace gs {
namespace fleet {

class Cluster {
 public:
  // `stats`: harness registry to record into (nullptr = no metrics). In
  // fleet mode each machine owns a private registry (so epochs can run on
  // threads) and the cluster merges them into `stats` in machine order at
  // collect time. `jobs` caps per-machine parallelism within an epoch;
  // results are independent of it.
  Cluster(const scenario::ScenarioSpec& spec, StatsRegistry* stats, int jobs);
  ~Cluster();

  scenario::ScenarioResult Run();

  int num_machines() const { return static_cast<int>(machines_.size()); }

 private:
  void BuildFleet();
  void RunFleet();
  void CollectFleet(scenario::ScenarioResult* result);
  // Front-end arrival: route, dispatch over the network, fan out, respond.
  void OnArrival(Duration root_service);
  void OnMachineRequest(int machine, Time arrival, Duration root_service,
                        std::shared_ptr<std::vector<Duration>> leaf_services);
  void Respond(int machine, Time arrival);

  scenario::ScenarioSpec spec_;
  StatsRegistry* stats_;
  int jobs_;
  bool fleet_mode_;

  std::vector<std::unique_ptr<MachineSim>> machines_;

  // Fleet-mode state (untouched on the degenerate path).
  std::unique_ptr<EventLoop> frontend_loop_;
  std::unique_ptr<NetworkModel> network_;
  std::unique_ptr<LoadBalancer> balancer_;
  std::unique_ptr<ServiceTimeModel> service_;
  std::vector<std::unique_ptr<PoissonLoadGen>> gens_;
  Rng session_rng_;
  Rng leaf_rng_;
  LatencyRecorder e2e_;
  int64_t completed_ = 0;
  int64_t completed_at_warmup_ = 0;
  int64_t shed_ = 0;
  int64_t request_bytes_ = 0;
  int64_t response_bytes_ = 0;
  // Sorted unique times at which link state changes (extra epoch cuts).
  std::vector<Time> link_cuts_;
};

}  // namespace fleet
}  // namespace gs

#endif  // GHOST_SIM_SRC_FLEET_CLUSTER_H_
