// Front-end load balancer: shards simulated user sessions across machines.
//
// Three strategies, all deterministic:
//  * round_robin     — next eligible machine in index order;
//  * least_loaded    — fewest front-end-tracked outstanding requests
//                      (ties to the lowest index);
//  * consistent_hash — a splitmix64 ring with `virtual_nodes` points per
//                      machine; a session maps to its hash's ring successor,
//                      walking past drained/full machines (so draining one
//                      machine only moves its own sessions).
//
// "Eligible" = not draining and (when shed_outstanding > 0) below the
// outstanding cap. Route() returns -1 when no machine is eligible — the
// caller sheds the request. The balancer only sees front-end events
// (dispatch/complete run on the front-end loop), so it needs no locking.
#ifndef GHOST_SIM_SRC_FLEET_LOAD_BALANCER_H_
#define GHOST_SIM_SRC_FLEET_LOAD_BALANCER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gs {
namespace fleet {

class LoadBalancer {
 public:
  struct Options {
    // "round_robin" | "least_loaded" | "consistent_hash" (the scenario
    // parser validates the enum).
    std::string strategy = "least_loaded";
    int num_machines = 1;
    // Max outstanding per machine before it stops being eligible
    // (0 = unlimited).
    int shed_outstanding = 0;
    // consistent_hash ring points per machine.
    int virtual_nodes = 16;
  };

  explicit LoadBalancer(Options options);

  // Machine for this session's next request, or -1 to shed. Does not change
  // any state: callers pair a successful Route with OnDispatch.
  int Route(uint64_t session_id);
  void OnDispatch(int machine);
  void OnComplete(int machine);

  void SetDraining(int machine, bool draining);
  bool draining(int machine) const { return draining_[machine] != 0; }
  int outstanding(int machine) const { return outstanding_[machine]; }
  int64_t routed(int machine) const { return routed_[machine]; }

 private:
  struct RingPoint {
    uint64_t point;
    int machine;
  };

  bool Eligible(int machine) const;

  Options options_;
  std::vector<char> draining_;
  std::vector<int> outstanding_;
  std::vector<int64_t> routed_;
  int rr_next_ = 0;
  std::vector<RingPoint> ring_;  // consistent_hash only; sorted by point
};

}  // namespace fleet
}  // namespace gs

#endif  // GHOST_SIM_SRC_FLEET_LOAD_BALANCER_H_
