#include "src/fleet/machine_sim.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/base/logging.h"
#include "src/policies/ab_test_policy.h"
#include "src/policies/factory.h"
#include "src/policies/predictive_shinjuku.h"

namespace gs {
namespace fleet {
namespace {

Duration FromMs(double ms) { return static_cast<Duration>(ms * 1e6); }
Duration FromUs(double us) { return static_cast<Duration>(us * 1e3); }

Topology MakeTopology(const scenario::TopologySpec& spec) {
  if (spec.preset == "e5_24") {
    return Topology::IntelE5_24();
  }
  if (spec.preset == "skylake112") {
    return Topology::IntelSkylake112();
  }
  if (spec.preset == "haswell72") {
    return Topology::IntelHaswell72();
  }
  if (spec.preset == "rome256") {
    return Topology::AmdRome256();
  }
  return Topology::Make("scenario", spec.sockets, spec.cores_per_socket, spec.smt,
                        spec.cores_per_ccx);
}

ServiceTimeModel* MakeService(const scenario::ServiceSpec& spec,
                              std::unique_ptr<ServiceTimeModel>* owned) {
  if (spec.model == "fixed") {
    *owned = std::make_unique<FixedServiceModel>(FromUs(spec.fixed_us));
  } else if (spec.model == "exponential") {
    *owned = std::make_unique<ExponentialServiceModel>(FromUs(spec.mean_us));
  } else {
    *owned = std::make_unique<BimodalServiceModel>(
        FromUs(spec.short_us), FromUs(spec.long_us), spec.p_long);
  }
  return owned->get();
}

// Joint state for one fan-out group (tail-at-scale): the group completes when
// its slowest sub-request does.
struct FanoutGroup {
  int remaining = 0;
  Duration max_latency = 0;
};

}  // namespace

MachineSim::MachineSim(const scenario::ScenarioSpec& spec, const Options& machine_options)
    : spec_(spec),
      warmup_(FromMs(spec.warmup_ms)),
      measure_(FromMs(spec.measure_ms)),
      drain_(FromMs(spec.drain_ms)),
      fanout_rng_(spec.seed ^ 0x9e3779b97f4a7c15ULL) {
  SimulationContext::Options options;
  options.topology = MakeTopology(spec_.topology);
  options.with_core_sched = spec_.policy.kind == "vm_core_sched";
  options.seed = spec_.seed;
  options.enable_stats = machine_options.stats != nullptr || machine_options.collect_stats;
  options.stats = machine_options.stats;
  const bool want_faults = !spec_.faults.plan.empty() ||
                           spec_.faults.ipi_delay_probability > 0 ||
                           spec_.faults.ipi_drop_probability > 0 ||
                           spec_.faults.msg_drop_probability > 0 ||
                           spec_.faults.estale_probability > 0;
  if (want_faults) {
    FaultInjector::Config faults;
    faults.window_start = FromMs(spec_.faults.window_start_ms);
    faults.window_end = spec_.faults.window_end_ms < 0
                            ? kTimeNever
                            : FromMs(spec_.faults.window_end_ms);
    faults.ipi_delay_probability = spec_.faults.ipi_delay_probability;
    faults.ipi_drop_probability = spec_.faults.ipi_drop_probability;
    faults.msg_drop_probability = spec_.faults.msg_drop_probability;
    faults.estale_probability = spec_.faults.estale_probability;
    options.faults = faults;
  }
  ctx_ = std::make_unique<SimulationContext>(std::move(options));

  // ---- CPU plan -------------------------------------------------------------
  const int num_cpus = ctx_->topology().num_cpus();
  const int cpu_first = std::min(spec_.enclave.cpu_first, num_cpus - 1);
  cpu_count_ = spec_.enclave.cpu_count < 0
                   ? num_cpus - cpu_first
                   : std::min(spec_.enclave.cpu_count, num_cpus - cpu_first);
  CpuMask server_cpus;
  for (int cpu = cpu_first; cpu < cpu_first + cpu_count_; ++cpu) {
    server_cpus.Set(cpu);
  }
  CHECK_GE(cpu_count_, 1) << "scenario " << spec_.name << ": empty enclave CPU set";

  // ---- Workload threads (created before the policy so tid-based classifiers
  // can capture them) ---------------------------------------------------------
  is_vm_ = spec_.workload.kind == "vm";
  if (is_vm_) {
    VmWorkload::Options vm_options;
    vm_options.num_vms = spec_.workload.num_vms;
    vm_options.vcpus_per_vm = spec_.workload.vcpus_per_vm;
    vm_options.work_per_vcpu = FromMs(spec_.workload.work_per_vcpu_ms);
    vm_ = std::make_unique<VmWorkload>(&ctx_->kernel(), vm_options);
  } else {
    ThreadPoolServer::Options server_options;
    server_options.num_workers = spec_.workload.num_workers;
    server_ = std::make_unique<ThreadPoolServer>(&ctx_->kernel(), server_options);
  }

  antagonist_ = std::make_unique<BatchApp>(
      &ctx_->kernel(), BatchApp::Options{.num_threads = std::max(spec_.antagonist.threads, 1),
                                         .chunk = FromUs(spec_.antagonist.chunk_us)});
  with_antagonist_ = spec_.antagonist.threads > 0;
  const bool antagonist_in_enclave =
      with_antagonist_ && spec_.antagonist.placement == "enclave";
  antagonist_tids_ = std::make_shared<std::set<int64_t>>();
  if (antagonist_in_enclave) {
    for (Task* t : antagonist_->threads()) {
      antagonist_tids_->insert(t->tid());
    }
  }

  // ---- Policy + enclave -----------------------------------------------------
  use_ghost_ = spec_.policy.kind != "cfs";
  if (use_ghost_) {
    Enclave::Config config;
    config.watchdog_timeout = FromMs(spec_.enclave.watchdog_timeout_ms);
    config.watchdog_period = FromMs(spec_.enclave.watchdog_period_ms);
    enclave_ = ctx_->CreateEnclave(server_cpus, config);

    if (spec_.policy.kind == "vm_core_sched") {
      CHECK(is_vm_) << "scenario " << spec_.name
                    << ": vm_core_sched requires workload.kind == \"vm\"";
    }
    PolicyEnv env;
    env.default_global_cpu = cpu_first;
    std::shared_ptr<std::set<int64_t>> tids = antagonist_tids_;
    env.tier_of = [tids](int64_t tid) { return tids->count(tid) ? 1 : 0; };
    if (is_vm_) {
      VmWorkload* vm_ptr = vm_.get();
      env.cookie_of = [vm_ptr](int64_t tid) { return vm_ptr->CookieOf(tid); };
    }
    if (spec_.ab_test.has_value()) {
      env.ab_test = &*spec_.ab_test;
    }
    process_ = ctx_->CreateAgentProcess(enclave_.get(),
                                        MakeScenarioPolicy(spec_.policy, env));
    process_->Start();

    // ---- A/B promote / rollback plan (§3.4 hot-swap under load) -------------
    if (spec_.policy.kind == "ab_test" && spec_.ab_test.has_value()) {
      const bool lifo = spec_.ab_test->canary.lifo;
      const auto swap_to = [this, lifo](int canary_percent) {
        if (process_ == nullptr || !process_->alive()) {
          return;
        }
        AbTestPolicy::Options o;
        o.canary_percent = canary_percent;
        o.canary_lifo = lifo;
        retired_policies_.push_back(
            process_->SwapPolicy(std::make_unique<AbTestPolicy>(o)));
      };
      if (spec_.ab_test->promote_at_ms >= 0) {
        ctx_->loop().ScheduleAt(FromMs(spec_.ab_test->promote_at_ms),
                                [swap_to] { swap_to(100); });
      }
      if (spec_.ab_test->rollback_at_ms >= 0) {
        ctx_->loop().ScheduleAt(FromMs(spec_.ab_test->rollback_at_ms),
                                [swap_to] { swap_to(0); });
      }
    }
  }

  // ---- Thread placement -----------------------------------------------------
  const std::vector<Task*>& workload_threads =
      is_vm_ ? vm_->vcpus() : server_->workers();
  for (Task* t : workload_threads) {
    if (use_ghost_) {
      enclave_->AddTask(t);
    } else {
      ctx_->kernel().SetAffinity(t, server_cpus);
    }
  }
  if (with_antagonist_) {
    for (Task* t : antagonist_->threads()) {
      if (antagonist_in_enclave) {
        enclave_->AddTask(t);
      } else {
        ctx_->kernel().SetAffinity(t, server_cpus);
        ctx_->kernel().SetNice(t, spec_.antagonist.nice);
      }
    }
    antagonist_->Start();
  }

  // ---- Load -----------------------------------------------------------------
  if (is_vm_) {
    vm_->Start();
    vm_->StartSecuritySampler();
  } else if (!machine_options.fleet_mode) {
    ServiceTimeModel* service = MakeService(spec_.workload.service, &service_owned_);
    ThreadPoolServer* server_ptr = server_.get();
    std::function<void(Time, Duration)> sink;
    const int fanout = spec_.workload.fanout;
    if (fanout <= 1) {
      sink = [server_ptr](Time t, Duration s) { server_ptr->Submit(t, s); };
    } else {
      Rng* fanout_rng = &fanout_rng_;
      LatencyRecorder* group_latency = &group_latency_;
      sink = [server_ptr, service, fanout, fanout_rng, group_latency](Time t,
                                                                      Duration s) {
        auto group = std::make_shared<FanoutGroup>();
        group->remaining = fanout;
        for (int k = 0; k < fanout; ++k) {
          const Duration sub_service = k == 0 ? s : service->Sample(*fanout_rng);
          server_ptr->Submit(t, sub_service,
                             [group, group_latency](Time, Duration latency) {
                               group->max_latency =
                                   std::max(group->max_latency, latency);
                               if (--group->remaining == 0) {
                                 group_latency->Add(group->max_latency);
                               }
                             });
        }
      };
    }
    Time phase_start = 0;
    int phase_index = 0;
    for (const scenario::LoadPhase& phase : spec_.workload.phases) {
      const Time start = phase_start;
      const Time end = phase_start + FromMs(phase.duration_ms);
      if (phase.qps > 0) {
        gens_.push_back(std::make_unique<PoissonLoadGen>(
            &ctx_->loop(), service, phase.qps,
            spec_.seed + 1000003ULL * static_cast<uint64_t>(phase_index), sink));
        PoissonLoadGen* gen = gens_.back().get();
        ctx_->loop().ScheduleAt(start, [gen, end] { gen->Start(end); });
      }
      phase_start = end;
      ++phase_index;
    }
  }

  // ---- Fault plan -----------------------------------------------------------
  if (!spec_.faults.plan.empty()) {
    FaultInjector* injector = ctx_->fault_injector();
    Enclave* enclave_ptr = enclave_.get();
    AgentProcess* process_ptr = process_.get();
    for (const scenario::FaultEventSpec& event : spec_.faults.plan) {
      const Time when = FromMs(event.at_ms);
      if (event.kind == "agent_crash" && process_ptr != nullptr) {
        injector->At(when, FaultKind::kAgentCrash,
                     [process_ptr] { process_ptr->Crash(); });
      } else if (event.kind == "agent_stall" && process_ptr != nullptr) {
        injector->At(when, FaultKind::kAgentStall,
                     [process_ptr] { process_ptr->SetStalled(true); });
      } else if (event.kind == "agent_recover" && process_ptr != nullptr) {
        injector->At(when, FaultKind::kAgentStall,
                     [process_ptr] { process_ptr->SetStalled(false); });
      } else if (event.kind == "enclave_destroy" && enclave_ptr != nullptr) {
        injector->At(when, FaultKind::kEnclaveDestroy, [enclave_ptr] {
          if (!enclave_ptr->destroyed()) {
            enclave_ptr->Destroy();
          }
        });
      }
    }
  }

  // ---- Invariant checking ---------------------------------------------------
  if (spec_.invariants.enabled) {
    InvariantChecker::Options inv;
    inv.period = FromUs(spec_.invariants.period_us);
    inv.ghost_starvation_bound = FromMs(spec_.invariants.ghost_starvation_bound_ms);
    checker_ = std::make_unique<InvariantChecker>(&ctx_->kernel(), inv);
    if (enclave_ != nullptr) {
      checker_->Watch(enclave_.get());
    }
    checker_->Start();
  }

  // ---- Warmup reset ---------------------------------------------------------
  ctx_->loop().ScheduleAt(warmup_, [this] {
    if (server_ != nullptr) {
      server_->latency().Reset();
      completed_at_warmup_ = server_->completed();
    }
    antagonist_->MarkWindow();
  });
}

void MachineSim::RunLocal() {
  ctx_->RunFor(warmup_ + measure_ + drain_);
  FinishChecks();
}

void MachineSim::SubmitRequest(Duration service, ThreadPoolServer::CompletionFn done) {
  CHECK(server_ != nullptr);
  server_->Submit(ctx_->loop().now(), service, std::move(done));
}

void MachineSim::FinishChecks() {
  if (checker_ != nullptr) {
    checker_->CheckNow();
    checker_->Stop();
  }
}

void MachineSim::CollectLocal(scenario::ScenarioResult* result) {
  int64_t generated = 0;
  for (const auto& gen : gens_) {
    generated += gen->generated();
  }
  if (!is_vm_) {
    result->exact["generated"] = generated;
    result->exact["completed"] = server_->completed();
    result->exact["dropped"] = server_->dropped();
    const double measured =
        static_cast<double>(server_->completed() - completed_at_warmup_);
    result->envelopes["achieved_kqps"] =
        measured / ToSeconds(measure_ + drain_) / 1e3;
    LatencyRecorder& lat =
        spec_.workload.fanout > 1 ? group_latency_ : server_->latency();
    result->envelopes["p50_us"] = lat.PercentileUs(50);
    result->envelopes["p99_us"] = lat.PercentileUs(99);
    result->envelopes["p999_us"] = lat.PercentileUs(99.9);
  } else {
    result->exact["vm_vcpus"] = static_cast<int64_t>(vm_->vcpus().size());
    result->exact["vm_completed"] = vm_->completed();
    result->exact["vm_coresidency_violations"] =
        static_cast<int64_t>(vm_->coresidency_violations());
    result->envelopes["vcpu_completed_frac"] =
        static_cast<double>(vm_->completed()) /
        static_cast<double>(vm_->vcpus().size());
  }
  if (with_antagonist_) {
    result->envelopes["antagonist_share"] =
        antagonist_->CpuShare(warmup_, ctx_->now(), cpu_count_);
  }
  if (ctx_->fault_injector() != nullptr) {
    const FaultInjector* injector = ctx_->fault_injector();
    for (int k = 0; k < kNumFaultKinds; ++k) {
      const FaultKind kind = static_cast<FaultKind>(k);
      result->exact[std::string("faults_") + ToString(kind)] =
          static_cast<int64_t>(injector->injected(kind));
    }
  }
  if (spec_.policy.kind == "ab_test") {
    // Per-lane totals across every policy instance that served the enclave
    // (initial + each promote/rollback swap-in). Lane membership is a pure
    // tid hash, so base + canary partition the run's totals exactly.
    AbTestPolicy::LaneCounters base;
    AbTestPolicy::LaneCounters canary;
    const auto add = [&base, &canary](Policy* p) {
      if (auto* ab = dynamic_cast<AbTestPolicy*>(p)) {
        base.scheduled += ab->base_counters().scheduled;
        base.completed += ab->base_counters().completed;
        canary.scheduled += ab->canary_counters().scheduled;
        canary.completed += ab->canary_counters().completed;
      }
    };
    for (const std::unique_ptr<Policy>& p : retired_policies_) {
      add(p.get());
    }
    if (process_ != nullptr) {
      add(process_->policy());
    }
    result->exact["ab_base_scheduled"] = static_cast<int64_t>(base.scheduled);
    result->exact["ab_base_completed"] = static_cast<int64_t>(base.completed);
    result->exact["ab_canary_scheduled"] = static_cast<int64_t>(canary.scheduled);
    result->exact["ab_canary_completed"] = static_cast<int64_t>(canary.completed);
    result->exact["policy_swaps"] =
        process_ != nullptr ? static_cast<int64_t>(process_->policy_swaps()) : 0;
  }
  if (spec_.policy.kind == "predictive_shinjuku" && process_ != nullptr) {
    // Pin the predictor's routing and the backstop's work exactly: a
    // regression in classification or the demotion path shifts these
    // counters even when the latency envelopes still pass.
    if (auto* pred = dynamic_cast<PredictiveShinjukuPolicy*>(process_->policy())) {
      result->exact["predicted_short"] =
          static_cast<int64_t>(pred->predicted_short());
      result->exact["predicted_long"] =
          static_cast<int64_t>(pred->predicted_long());
      result->exact["backstop_demotions"] =
          static_cast<int64_t>(pred->backstop_demotions());
      result->exact["predictive_preemptions"] =
          static_cast<int64_t>(pred->preemptions());
    }
  }
  result->exact["enclave_destroyed"] =
      enclave_ != nullptr && enclave_->destroyed() ? 1 : 0;
  if (checker_ != nullptr) {
    result->exact["invariants_ok"] = checker_->ok() ? 1 : 0;
    result->exact["invariant_violations"] =
        static_cast<int64_t>(checker_->violations().size());
    result->violations = checker_->violations();
  }
}

void MachineSim::CollectFleet(scenario::ScenarioResult* result, int index) {
  const std::string prefix = "m" + std::to_string(index) + "_";
  result->exact[prefix + "completed"] = server_->completed();
  result->exact[prefix + "dropped"] = server_->dropped();
  result->exact[prefix + "enclave_destroyed"] =
      enclave_ != nullptr && enclave_->destroyed() ? 1 : 0;
  if (with_antagonist_) {
    result->envelopes[prefix + "antagonist_share"] =
        antagonist_->CpuShare(warmup_, ctx_->now(), cpu_count_);
  }
  if (ctx_->fault_injector() != nullptr) {
    const FaultInjector* injector = ctx_->fault_injector();
    for (int k = 0; k < kNumFaultKinds; ++k) {
      const FaultKind kind = static_cast<FaultKind>(k);
      result->exact[std::string("faults_") + ToString(kind)] +=
          static_cast<int64_t>(injector->injected(kind));
    }
  }
  if (checker_ != nullptr) {
    if (!checker_->ok()) {
      result->exact["invariants_ok"] = 0;
    }
    result->exact["invariant_violations"] +=
        static_cast<int64_t>(checker_->violations().size());
    for (const std::string& v : checker_->violations()) {
      result->violations.push_back(prefix.substr(0, prefix.size() - 1) + ": " + v);
    }
  }
}

}  // namespace fleet
}  // namespace gs
