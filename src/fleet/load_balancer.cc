#include "src/fleet/load_balancer.h"

#include <algorithm>

#include "src/base/logging.h"

namespace gs {
namespace fleet {
namespace {

// splitmix64 finalizer: cheap, well-mixed, and stable across platforms — the
// ring layout is part of the deterministic contract.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

LoadBalancer::LoadBalancer(Options options) : options_(std::move(options)) {
  CHECK_GE(options_.num_machines, 1);
  draining_.assign(options_.num_machines, 0);
  outstanding_.assign(options_.num_machines, 0);
  routed_.assign(options_.num_machines, 0);
  if (options_.strategy == "consistent_hash") {
    CHECK_GE(options_.virtual_nodes, 1);
    ring_.reserve(static_cast<size_t>(options_.num_machines) *
                  options_.virtual_nodes);
    for (int m = 0; m < options_.num_machines; ++m) {
      for (int v = 0; v < options_.virtual_nodes; ++v) {
        const uint64_t point =
            Mix64((static_cast<uint64_t>(m) << 32) | static_cast<uint64_t>(v));
        ring_.push_back(RingPoint{point, m});
      }
    }
    std::sort(ring_.begin(), ring_.end(), [](const RingPoint& a, const RingPoint& b) {
      if (a.point != b.point) return a.point < b.point;
      return a.machine < b.machine;
    });
  } else {
    CHECK(options_.strategy == "round_robin" || options_.strategy == "least_loaded")
        << "unknown balancer strategy \"" << options_.strategy << "\"";
  }
}

bool LoadBalancer::Eligible(int machine) const {
  if (draining_[machine]) {
    return false;
  }
  return options_.shed_outstanding <= 0 ||
         outstanding_[machine] < options_.shed_outstanding;
}

int LoadBalancer::Route(uint64_t session_id) {
  const int n = options_.num_machines;
  if (options_.strategy == "round_robin") {
    for (int i = 0; i < n; ++i) {
      const int m = (rr_next_ + i) % n;
      if (Eligible(m)) {
        rr_next_ = (m + 1) % n;
        return m;
      }
    }
    return -1;
  }
  if (options_.strategy == "least_loaded") {
    int best = -1;
    for (int m = 0; m < n; ++m) {
      if (Eligible(m) && (best < 0 || outstanding_[m] < outstanding_[best])) {
        best = m;
      }
    }
    return best;
  }
  // consistent_hash: successor of the session's hash, skipping ineligible
  // machines (each step may revisit a machine via another virtual node; cap
  // the walk at the ring size, which guarantees every machine was offered).
  const uint64_t h = Mix64(session_id);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const RingPoint& p, uint64_t key) { return p.point < key; });
  const size_t start = static_cast<size_t>(it - ring_.begin()) % ring_.size();
  for (size_t i = 0; i < ring_.size(); ++i) {
    const int m = ring_[(start + i) % ring_.size()].machine;
    if (Eligible(m)) {
      return m;
    }
  }
  return -1;
}

void LoadBalancer::OnDispatch(int machine) {
  ++outstanding_[machine];
  ++routed_[machine];
}

void LoadBalancer::OnComplete(int machine) {
  CHECK_GT(outstanding_[machine], 0);
  --outstanding_[machine];
}

void LoadBalancer::SetDraining(int machine, bool draining) {
  draining_[machine] = draining ? 1 : 0;
}

}  // namespace fleet
}  // namespace gs
