// One scenario-configured machine, lifted out of the old monolithic
// RunScenario so a Cluster can own N of them.
//
// A MachineSim builds the full single-machine stack in the same order the
// scenario runner always has — SimulationContext, workload threads,
// antagonist, policy (via the policy factory) + enclave + agent process,
// thread placement, load generators, fault plan, invariant checker, the
// warmup metrics reset — and then exposes two ways to run it:
//
//  * RunLocal(): the degenerate one-node cluster. Runs the whole scenario on
//    the context, exactly byte-for-byte what RunScenario did before the
//    fleet layer existed (the existing goldens pin this).
//  * AdvanceUntil(t): lockstep epoch advancement driven by a Cluster. In
//    fleet mode the machine has no local load generators; requests arrive
//    from the network via SubmitRequest().
//
// A MachineSim is single-threaded like the context it owns; a Cluster may
// advance different machines on different threads because they share
// nothing (each fleet machine owns its StatsRegistry, merged at collect).
#ifndef GHOST_SIM_SRC_FLEET_MACHINE_SIM_H_
#define GHOST_SIM_SRC_FLEET_MACHINE_SIM_H_

#include <memory>
#include <set>
#include <vector>

#include "src/scenario/scenario.h"
#include "src/scenario/scenario_runner.h"
#include "src/sim/simulation.h"
#include "src/verify/invariants.h"
#include "src/workloads/batch.h"
#include "src/workloads/latency_recorder.h"
#include "src/workloads/request_service.h"
#include "src/workloads/vm_workload.h"

namespace gs {
namespace fleet {

class MachineSim {
 public:
  struct Options {
    // Borrowed registry (the single-machine path); nullptr = the context
    // owns one, enabled iff collect_stats (the fleet path, where per-machine
    // registries merge into the harness registry at collect time).
    StatsRegistry* stats = nullptr;
    bool collect_stats = false;
    // Fleet mode: no local load generation; requests arrive via
    // SubmitRequest() from the network.
    bool fleet_mode = false;
  };

  MachineSim(const scenario::ScenarioSpec& spec, const Options& options);

  EventLoop& loop() { return ctx_->loop(); }
  StatsRegistry& stats() { return ctx_->stats(); }
  Time now() const { return ctx_->now(); }

  // Degenerate path: run warmup+measure+drain in one go (byte-identical to
  // the pre-fleet RunScenario).
  void RunLocal();
  // Lockstep path: run this machine's loop up to and including `t`.
  void AdvanceUntil(Time t) { ctx_->loop().RunUntil(t); }

  // Fleet request entry, called on this machine's loop at RPC delivery time.
  void SubmitRequest(Duration service, ThreadPoolServer::CompletionFn done);

  // Final invariant sweep; call once after the last advance.
  void FinishChecks();

  // Single-machine result: the full metric set under the historical keys.
  void CollectLocal(scenario::ScenarioResult* result);
  // Fleet contribution: per-machine keys prefixed m<index>_, plus shared
  // fault/invariant aggregates.
  void CollectFleet(scenario::ScenarioResult* result, int index);

  // Cross-machine RPC bookkeeping, bumped by the cluster's delivery
  // callbacks (which run on this machine's loop).
  int64_t rpcs_received = 0;

 private:
  scenario::ScenarioSpec spec_;
  Duration warmup_;
  Duration measure_;
  Duration drain_;
  bool is_vm_ = false;
  bool use_ghost_ = false;
  bool with_antagonist_ = false;
  int cpu_count_ = 0;
  std::unique_ptr<SimulationContext> ctx_;
  std::unique_ptr<ThreadPoolServer> server_;
  std::unique_ptr<VmWorkload> vm_;
  std::unique_ptr<BatchApp> antagonist_;
  std::shared_ptr<std::set<int64_t>> antagonist_tids_;
  std::unique_ptr<Enclave> enclave_;
  std::unique_ptr<AgentProcess> process_;
  // Policies hot-swapped out by the A/B promote/rollback plan; kept so their
  // per-lane counters can be summed at collect time.
  std::vector<std::unique_ptr<Policy>> retired_policies_;
  std::unique_ptr<ServiceTimeModel> service_owned_;
  std::vector<std::unique_ptr<PoissonLoadGen>> gens_;
  LatencyRecorder group_latency_;  // fan-out group completion latency
  Rng fanout_rng_;
  std::unique_ptr<InvariantChecker> checker_;
  int64_t completed_at_warmup_ = 0;
};

}  // namespace fleet
}  // namespace gs

#endif  // GHOST_SIM_SRC_FLEET_MACHINE_SIM_H_
