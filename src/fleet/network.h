// Deterministic network model for fleet simulations.
//
// Nodes are event loops (M machine loops + the front-end loop); a message is
// a callback that runs on the destination loop after a per-link delay of
// queueing + transmit (bytes / bandwidth, serialized per directed link) +
// propagation latency.
//
// Cross-loop delivery uses conservative-lookahead barriers (classic parallel
// discrete-event simulation): the cluster advances all loops in lockstep
// epochs no longer than the minimum link latency, so a message sent during
// an epoch always delivers strictly after the epoch's end barrier. During an
// epoch each node appends sends to its own outbox (no shared state between
// loops, so epochs can run on a thread pool); at the barrier the cluster
// calls FlushAtBarrier(), which sorts all pending messages by
// (deliver_time, dst, src, seq) and schedules them into the destination
// loops — one deterministic order, byte-identical for any job count.
//
// Partitions: SetNodeLinked(node, false) parks every subsequent message to
// or from the node (messages already on the wire still deliver). Healing
// re-sends parked messages in (src, seq) order from the heal time. Link
// state may only change at a barrier, so senders never race the flag.
#ifndef GHOST_SIM_SRC_FLEET_NETWORK_H_
#define GHOST_SIM_SRC_FLEET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/base/time.h"
#include "src/sim/event_loop.h"

namespace gs {
namespace fleet {

class NetworkModel {
 public:
  struct Options {
    Duration default_latency = Microseconds(50);
    // 10 Gbps = 1.25 bytes/ns.
    double default_bytes_per_ns = 1.25;
  };

  // `loops[i]` is node i's event loop; borrowed, must outlive the model.
  NetworkModel(std::vector<EventLoop*> loops, Options options);

  // Per-directed-link override; by default every link uses the defaults.
  void SetLink(int from, int to, Duration latency, double bytes_per_ns);

  // Queue `deliver` to run on node `dst`'s loop. Must be called from node
  // `src`'s loop (during an epoch) or at a barrier. If either endpoint is
  // unlinked the message is parked until both are linked again.
  void Send(int src, int dst, int64_t bytes, std::function<void()> deliver);

  // Barrier step: schedule every pending message into its destination loop
  // in the canonical order. Caller guarantees all loops are paused at a
  // common time >= every sender's send time.
  void FlushAtBarrier();

  // Partition / heal node `node` at barrier time `now`. Healing re-sends the
  // parked messages whose endpoints are now both linked.
  void SetNodeLinked(int node, bool linked, Time now);
  bool node_linked(int node) const { return linked_[node] != 0; }

  Duration min_latency() const { return min_latency_; }
  int64_t delivered() const { return delivered_; }
  // Cumulative count of messages that hit a down link and were parked
  // (whether or not they were later retransmitted).
  int64_t parked() const { return total_parked_; }
  // Messages parked right now, awaiting a heal.
  int64_t parked_now() const;

 private:
  struct Link {
    Duration latency;
    double bytes_per_ns;
  };
  struct Pending {
    Time deliver;
    int src;
    int dst;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Parked {
    int dst;
    int64_t bytes;
    uint64_t seq;
    std::function<void()> fn;
  };

  int num_nodes() const { return static_cast<int>(loops_.size()); }
  Link& link(int from, int to) { return links_[from * num_nodes() + to]; }
  // Serialization point of the directed link: when its last transmit ends.
  Time& busy_until(int from, int to) { return busy_[from * num_nodes() + to]; }
  void Enqueue(int src, int dst, int64_t bytes, Time send_time,
               std::function<void()> fn);

  std::vector<EventLoop*> loops_;
  std::vector<Link> links_;
  std::vector<Time> busy_;
  Duration min_latency_;
  // One outbox and seq counter per source node: epochs touch disjoint state.
  std::vector<std::vector<Pending>> outbox_;
  std::vector<std::vector<Parked>> parked_;
  std::vector<uint64_t> seq_;
  std::vector<char> linked_;
  int64_t delivered_ = 0;
  int64_t total_parked_ = 0;
};

}  // namespace fleet
}  // namespace gs

#endif  // GHOST_SIM_SRC_FLEET_NETWORK_H_
