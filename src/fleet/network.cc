#include "src/fleet/network.h"

#include <algorithm>
#include <utility>

#include "src/base/logging.h"

namespace gs {
namespace fleet {

NetworkModel::NetworkModel(std::vector<EventLoop*> loops, Options options)
    : loops_(std::move(loops)) {
  CHECK_GE(loops_.size(), 2u) << "a network needs at least two nodes";
  CHECK_GT(options.default_latency, 0) << "zero latency breaks the lookahead barrier";
  CHECK_GT(options.default_bytes_per_ns, 0.0);
  const int n = num_nodes();
  links_.assign(static_cast<size_t>(n) * n,
                Link{options.default_latency, options.default_bytes_per_ns});
  busy_.assign(static_cast<size_t>(n) * n, 0);
  outbox_.resize(n);
  parked_.resize(n);
  seq_.assign(n, 0);
  linked_.assign(n, 1);
  min_latency_ = options.default_latency;
}

void NetworkModel::SetLink(int from, int to, Duration latency, double bytes_per_ns) {
  CHECK_GE(from, 0);
  CHECK_LT(from, num_nodes());
  CHECK_GE(to, 0);
  CHECK_LT(to, num_nodes());
  CHECK_NE(from, to);
  CHECK_GT(latency, 0) << "zero latency breaks the lookahead barrier";
  CHECK_GT(bytes_per_ns, 0.0);
  link(from, to) = Link{latency, bytes_per_ns};
  min_latency_ = std::min(min_latency_, latency);
}

void NetworkModel::Enqueue(int src, int dst, int64_t bytes, Time send_time,
                           std::function<void()> fn) {
  const Link& l = link(src, dst);
  const Duration transmit =
      static_cast<Duration>(static_cast<double>(bytes) / l.bytes_per_ns);
  Time& busy = busy_until(src, dst);
  const Time depart = std::max(send_time, busy) + transmit;
  busy = depart;
  outbox_[src].push_back(
      Pending{depart + l.latency, src, dst, seq_[src]++, std::move(fn)});
}

void NetworkModel::Send(int src, int dst, int64_t bytes, std::function<void()> deliver) {
  CHECK_NE(src, dst);
  if (!linked_[src] || !linked_[dst]) {
    ++total_parked_;
    parked_[src].push_back(Parked{dst, bytes, seq_[src]++, std::move(deliver)});
    return;
  }
  Enqueue(src, dst, bytes, loops_[src]->now(), std::move(deliver));
}

void NetworkModel::FlushAtBarrier() {
  std::vector<Pending> all;
  for (std::vector<Pending>& box : outbox_) {
    for (Pending& p : box) {
      all.push_back(std::move(p));
    }
    box.clear();
  }
  // The canonical delivery order: time, then destination, then source, then
  // per-source sequence. Total and independent of which thread advanced
  // which loop, so the schedule is byte-identical for any --jobs.
  std::sort(all.begin(), all.end(), [](const Pending& a, const Pending& b) {
    if (a.deliver != b.deliver) return a.deliver < b.deliver;
    if (a.dst != b.dst) return a.dst < b.dst;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  });
  for (Pending& p : all) {
    ++delivered_;
    loops_[p.dst]->ScheduleAt(p.deliver, std::move(p.fn));
  }
}

void NetworkModel::SetNodeLinked(int node, bool linked, Time now) {
  CHECK_GE(node, 0);
  CHECK_LT(node, num_nodes());
  linked_[node] = linked ? 1 : 0;
  if (!linked) {
    return;
  }
  // Heal: retransmit parked messages whose endpoints are both up, oldest
  // first per source, sources in index order — deterministic by construction.
  for (int src = 0; src < num_nodes(); ++src) {
    std::vector<Parked> keep;
    for (Parked& p : parked_[src]) {
      if (linked_[src] && linked_[p.dst]) {
        Enqueue(src, p.dst, p.bytes, now, std::move(p.fn));
      } else {
        keep.push_back(std::move(p));
      }
    }
    parked_[src] = std::move(keep);
  }
}

int64_t NetworkModel::parked_now() const {
  int64_t total = 0;
  for (const std::vector<Parked>& box : parked_) {
    total += static_cast<int64_t>(box.size());
  }
  return total;
}

}  // namespace fleet
}  // namespace gs
