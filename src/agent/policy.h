// Policy interface: the userspace scheduling logic that runs inside agents.
//
// A policy is invoked one loop iteration at a time (Fig 3 / Fig 4 of the
// paper). All interaction with the kernel goes through AgentContext, which
// charges virtual-time costs for every operation so that policy complexity
// translates into scheduling latency exactly as it does on real hardware.
// The returned action tells the agent runtime what the agent thread does
// next: spin another iteration, poll-wait, yield the CPU to a freshly
// committed thread (per-CPU model), or block until a queue wakeup.
#ifndef GHOST_SIM_SRC_AGENT_POLICY_H_
#define GHOST_SIM_SRC_AGENT_POLICY_H_

#include <vector>

#include "src/ghost/enclave.h"

namespace gs {

class AgentContext;
class AgentProcess;

enum class AgentAction {
  kRunAgain,  // immediately run another iteration (spinning agent with work)
  kPollWait,  // spin idle: stay on the CPU, re-run when poked (global agent)
  kYield,     // vacate the CPU (per-CPU agent after a local commit)
  kBlock,     // sleep until a queue wakeup (inactive / per-CPU idle agent)
};

class Policy {
 public:
  virtual ~Policy() = default;

  virtual const char* name() const = 0;

  // Called once before agents start: create queues, configure wakeups,
  // install fast paths.
  virtual void Attached(AgentProcess* process, Enclave* enclave, Kernel* kernel) {}

  // Called when this policy's process takes over an enclave that already
  // contains threads (in-place agent upgrade, §3.4). The default treats every
  // dumped thread as if a THREAD_CREATED message had been seen.
  virtual void Restore(const std::vector<Enclave::TaskInfo>& dump) {}

  // One iteration of the agent loop for the agent pinned to ctx.agent_cpu().
  virtual AgentAction RunAgent(AgentContext& ctx) = 0;

  // Number of runnable-but-unscheduled threads the policy currently tracks,
  // or -1 if the policy has no meaningful runqueue. Sampled once per agent
  // iteration into the `policy_runqueue_depth{policy=...}` metric.
  virtual int RunqueueDepth() const { return -1; }
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_AGENT_POLICY_H_
