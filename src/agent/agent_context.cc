#include "src/agent/agent_context.h"

namespace gs {

AgentContext::AgentContext(Enclave* enclave, GhostClass* ghost_class, Kernel* kernel,
                           Task* agent)
    : enclave_(enclave),
      ghost_class_(ghost_class),
      kernel_(kernel),
      agent_(agent),
      agent_cpu_(agent->cpu()),
      start_(kernel->now()) {
  // Baseline cost of entering the scheduling loop (status-word reads etc.).
  cost_ = kernel_->cost().agent_loop_fixed;
}

std::optional<Message> AgentContext::Pop(MessageQueue* queue) {
  std::optional<Message> msg = enclave_->PopMessage(queue);
  if (msg.has_value()) {
    cost_ += kernel_->cost().msg_dequeue;
  }
  return msg;
}

int AgentContext::Drain(MessageQueue* queue, std::vector<Message>* out, int max) {
  int count = 0;
  while (count < max) {
    std::optional<Message> msg = Pop(queue);
    if (!msg.has_value()) {
      break;
    }
    out->push_back(*msg);
    ++count;
  }
  return count;
}

uint32_t AgentContext::ReadAseq() {
  cost_ += kernel_->cost().agent_per_cpu_scan;
  return enclave_->agent_status(agent_).aseq;
}

const TaskStatusWord* AgentContext::ReadStatus(int64_t tid) {
  cost_ += kernel_->cost().agent_per_cpu_scan;
  return enclave_->task_status(tid);
}

uint64_t AgentContext::ReadHint(int64_t tid) {
  cost_ += kernel_->cost().agent_per_cpu_scan;
  return enclave_->Hint(tid);
}

CpuMask AgentContext::AvailableCpus() {
  const CpuMask& cpus = enclave_->cpus();
  // Same charge as scanning the enclave CPU by CPU — GetIdleCPUs() walks the
  // whole list whatever its representation.
  cost_ += kernel_->cost().agent_per_cpu_scan * cpus.Count();
  // Forced-idle CPUs count as available: the policy that idled them is the
  // one asking, and a fresh transaction supersedes the idle marker.
  CpuMask available = kernel_->idle_cpus() & cpus;
  available.AndNot(ghost_class_->latched_cpus());
  if (agent_cpu_ >= 0) {
    available.Clear(agent_cpu_);  // our own CPU is occupied by us
  }
  return available;
}

bool AgentContext::CpuAvailable(int cpu) {
  cost_ += kernel_->cost().agent_per_cpu_scan;
  return cpu != agent_cpu_ && kernel_->CpuIdle(cpu) && !ghost_class_->LatchPending(cpu);
}

bool AgentContext::HigherClassWaitersOn(int cpu) {
  cost_ += kernel_->cost().agent_per_cpu_scan;
  // Classes strictly between the agent class (index 0) and the ghOSt class.
  for (int i = 1; i < kernel_->num_classes(); ++i) {
    SchedClass* cls = kernel_->sched_class_at(i);
    if (cls == static_cast<SchedClass*>(ghost_class_)) {
      continue;
    }
    if (cls->HasQueuedWork(cpu)) {
      return true;
    }
  }
  return false;
}

void AgentContext::Commit(std::span<Transaction*> txns) {
  if (txns.empty()) {
    return;
  }
  const CostModel& cost = kernel_->cost();
  const Topology& topo = kernel_->topology();

  bool any_remote = false;
  for (const Transaction* txn : txns) {
    if (txn->target_cpu != agent_cpu_) {
      any_remote = true;
      break;
    }
  }
  cost_ += cost.syscall;
  if (any_remote) {
    cost_ += cost.remote_commit_fixed;
  }

  // Per-transaction agent-side work; record the ledger offset at which each
  // transaction's effect leaves the agent. Group commits are bounded by the
  // machine's CPU count in practice, so the ledger offsets live on the stack
  // (this runs once per agent iteration — no per-commit heap traffic).
  constexpr size_t kInlineDelays = 144;
  Duration inline_delays[kInlineDelays];
  std::vector<Duration> overflow_delays;
  Duration* delays = inline_delays;
  if (txns.size() > kInlineDelays) {
    overflow_delays.resize(txns.size());
    delays = overflow_delays.data();
  }
  const int agent_numa = agent_cpu_ >= 0 ? topo.cpu(agent_cpu_).numa : 0;
  for (size_t i = 0; i < txns.size(); ++i) {
    const Transaction& txn = *txns[i];
    if (txn.target_cpu == agent_cpu_) {
      cost_ += cost.txn_commit_local;
    } else {
      Duration per = cost.remote_commit_per_txn;
      if (txn.target_cpu >= 0 && topo.cpu(txn.target_cpu).numa != agent_numa) {
        per = static_cast<Duration>(static_cast<double>(per) * cost.remote_numa_txn_penalty);
      }
      cost_ += per;
    }
    delays[i] = cost_;
  }

  enclave_->TxnsCommit(txns, agent_, [delays](int i) { return delays[i]; });
}

}  // namespace gs
