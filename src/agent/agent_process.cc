#include "src/agent/agent_process.h"

#include <string>

namespace gs {

AgentProcess::AgentProcess(Kernel* kernel, GhostClass* ghost_class, Enclave* enclave,
                           std::unique_ptr<Policy> policy)
    : kernel_(kernel),
      ghost_class_(ghost_class),
      enclave_(enclave),
      policy_(std::move(policy)) {}

AgentProcess::~AgentProcess() {
  if (alive_ && !enclave_->destroyed()) {
    Shutdown();
  }
}

void AgentProcess::Start() {
  CHECK(!started_) << "agent process already started";
  CHECK(!enclave_->destroyed());
  started_ = true;
  alive_ = true;

  // Create the agent threads first so the policy can configure queue wakeups
  // against them in Attached(). No event runs until the simulation resumes,
  // so the ordering is race-free.
  SchedClass* agent_class = kernel_->sched_class_at(0);
  const CpuMask& cpus = enclave_->cpus();
  for (int cpu = cpus.First(); cpu >= 0; cpu = cpus.NextAfter(cpu)) {
    Task* agent = kernel_->CreateTask("agent/" + std::to_string(cpu), agent_class);
    agents_[cpu] = agent;
    enclave_->RegisterAgentTask(cpu, agent);
    kernel_->SetOnScheduled(agent, [this](Task* task) { OnAgentScheduled(task); });
  }

  policy_->Attached(this, enclave_, kernel_);
  if (enclave_->num_tasks() > 0) {
    // Upgrade path (§3.4): extract the state of all threads in the enclave
    // from the kernel and resume scheduling. The kernel dump supersedes any
    // message history left behind by the previous agent.
    enclave_->FlushAllQueues();
    policy_->Restore(enclave_->TaskDump());
  }

  for (auto& [cpu, agent] : agents_) {
    kernel_->Wake(agent);
  }

  // If the enclave dies out from under us (watchdog), stop driving.
  enclave_->SetDestroyListener([this] { alive_ = false; });
}

void AgentProcess::Shutdown() {
  if (!alive_) {
    return;
  }
  alive_ = false;
  for (auto& [cpu, agent] : agents_) {
    enclave_->UnregisterAgentTask(cpu, agent);
    kernel_->Kill(agent);
  }
  agents_.clear();
  polling_.clear();
}

Task* AgentProcess::agent_on(int cpu) const {
  auto it = agents_.find(cpu);
  return it == agents_.end() ? nullptr : it->second;
}

void AgentProcess::OnAgentScheduled(Task* agent) {
  polling_.erase(agent);
  BeginIteration(agent);
}

void AgentProcess::BeginIteration(Task* agent) {
  if (!alive_ || agent->state() == TaskState::kDead) {
    return;
  }
  ++iterations_;
  const uint64_t epoch = enclave_->poke_epoch();
  AgentContext ctx(enclave_, ghost_class_, kernel_, agent);
  const AgentAction action = policy_->RunAgent(ctx);
  const Time wakeup_at = ctx.wakeup_at();
  kernel_->trace().Record(kernel_->now(), TraceEventType::kAgentIter, agent->cpu(),
                          agent->tid(), ctx.cost());
  kernel_->StartBurst(agent, ctx.cost(), [this, action, epoch, wakeup_at](Task* task) {
    EndIteration(task, action, epoch, wakeup_at);
  });
}

void AgentProcess::EndIteration(Task* agent, AgentAction action, uint64_t epoch,
                                Time wakeup_at) {
  if (!alive_ || agent->state() == TaskState::kDead) {
    return;
  }
  if (action == AgentAction::kPollWait && enclave_->poke_epoch() != epoch) {
    // Something happened while this iteration's burst was charged; spin again
    // rather than poll-waiting (avoids a lost wakeup).
    action = AgentAction::kRunAgain;
  }
  switch (action) {
    case AgentAction::kRunAgain:
      BeginIteration(agent);
      break;
    case AgentAction::kPollWait: {
      polling_.insert(agent);
      enclave_->RegisterPollWaiter(agent, [this, agent] { Poke(agent); });
      if (wakeup_at != kTimeNever) {
        const Duration delay = std::max<Duration>(0, wakeup_at - kernel_->now());
        kernel_->loop()->ScheduleAfter(delay, [this, agent] { Poke(agent); });
      }
      break;
    }
    case AgentAction::kYield:
      kernel_->Yield(agent);
      break;
    case AgentAction::kBlock:
      kernel_->Block(agent);
      break;
  }
}

void AgentProcess::Poke(Task* agent) {
  if (!alive_ || agent->state() == TaskState::kDead || polling_.count(agent) == 0) {
    return;
  }
  polling_.erase(agent);
  enclave_->UnregisterPollWaiter(agent);
  kernel_->StartBurst(agent, kernel_->cost().poll_detect,
                      [this](Task* task) { BeginIteration(task); });
}

}  // namespace gs
