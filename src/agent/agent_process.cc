#include "src/agent/agent_process.h"

#include <algorithm>
#include <string>

namespace gs {

AgentProcess::AgentProcess(Kernel* kernel, GhostClass* ghost_class, Enclave* enclave,
                           std::unique_ptr<Policy> policy)
    : kernel_(kernel),
      ghost_class_(ghost_class),
      enclave_(enclave),
      policy_(std::move(policy)) {
  StatsRegistry& stats = *kernel_->stats();
  stat_iteration_cost_ns_ = stats.GetHistogram("agent_iteration_cost_ns");
  stat_runqueue_depth_ =
      stats.GetHistogram("policy_runqueue_depth", {{"policy", policy_->name()}});
}

AgentProcess::~AgentProcess() {
  if (alive_ && !enclave_->destroyed()) {
    Shutdown();
  }
  *gone_ = true;
}

void AgentProcess::Start() {
  CHECK(!started_) << "agent process already started";
  CHECK(!enclave_->destroyed());
  started_ = true;
  alive_ = true;

  // Create the agent threads first so the policy can configure queue wakeups
  // against them in Attached(). No event runs until the simulation resumes,
  // so the ordering is race-free.
  SchedClass* agent_class = kernel_->sched_class_at(0);
  const CpuMask& cpus = enclave_->cpus();
  for (int cpu = cpus.First(); cpu >= 0; cpu = cpus.NextAfter(cpu)) {
    Task* agent = kernel_->CreateTask("agent/" + std::to_string(cpu), agent_class);
    agents_.emplace_back(cpu, agent);
    enclave_->RegisterAgentTask(cpu, agent);
    std::shared_ptr<bool> gone = gone_;
    kernel_->SetOnScheduled(agent, [this, gone](Task* task) {
      if (!*gone) {
        OnAgentScheduled(task);
      }
    });
  }

  policy_->Attached(this, enclave_, kernel_);
  if (enclave_->num_tasks() > 0) {
    // Upgrade path (§3.4): extract the state of all threads in the enclave
    // from the kernel and resume scheduling. The kernel dump supersedes any
    // message history left behind by the previous agent.
    enclave_->FlushAllQueues();
    policy_->Restore(enclave_->TaskDump());
  }

  for (auto& [cpu, agent] : agents_) {
    kernel_->Wake(agent);
  }

  // If the enclave dies out from under us (watchdog), stop driving. The
  // listener can fire after this process is gone (a later process or the
  // enclave's owner may outlive us), hence the liveness guard.
  std::shared_ptr<bool> gone = gone_;
  enclave_->SetDestroyListener([this, gone] {
    if (!*gone) {
      alive_ = false;
    }
  });
}

void AgentProcess::Shutdown() {
  if (!alive_) {
    return;
  }
  alive_ = false;
  for (auto& [cpu, agent] : agents_) {
    enclave_->UnregisterAgentTask(cpu, agent);
    kernel_->Kill(agent);
  }
  agents_.clear();
  polling_.clear();
}

std::unique_ptr<Policy> AgentProcess::SwapPolicy(std::unique_ptr<Policy> next) {
  CHECK(started_) << "SwapPolicy before Start()";
  CHECK(next != nullptr);
  std::unique_ptr<Policy> old = std::move(policy_);
  policy_ = std::move(next);
  if (!alive_) {
    return old;  // enclave died; nothing to hand over
  }
  ++policy_swaps_;

  // The kernel dump supersedes the outgoing policy's message history, and
  // the routing reset guarantees no message can land in a queue the incoming
  // policy does not drain (the outgoing policy's queues are destroyed).
  enclave_->FlushAllQueues();
  enclave_->ResetQueueRouting();

  StatsRegistry& stats = *kernel_->stats();
  stat_runqueue_depth_ =
      stats.GetHistogram("policy_runqueue_depth", {{"policy", policy_->name()}});
  policy_->Attached(this, enclave_, kernel_);
  policy_->Restore(enclave_->TaskDump());

  // The flush discarded pending queue wakeups and Restore() placed runnable
  // threads on runqueues whose agents may be asleep or committed to a stale
  // iteration plan. Kick everyone: blocked agents wake, poll-waiters are
  // poked into a fresh iteration, running agents re-run via the
  // check-then-sleep aseq bump.
  for (auto& [cpu, agent] : agents_) {
    if (agent->state() == TaskState::kDead) {
      continue;
    }
    if (agent->state() == TaskState::kBlocked) {
      kernel_->Wake(agent);
    } else {
      enclave_->PokeAgent(agent);
      Poke(agent);  // no-op unless the agent is poll-waiting
    }
  }
  return old;
}

Task* AgentProcess::agent_on(int cpu) const {
  for (const auto& [c, agent] : agents_) {
    if (c == cpu) {
      return agent;
    }
  }
  return nullptr;
}

bool AgentProcess::PollingErase(Task* agent) {
  auto it = std::find(polling_.begin(), polling_.end(), agent);
  if (it == polling_.end()) {
    return false;
  }
  *it = polling_.back();
  polling_.pop_back();
  return true;
}

void AgentProcess::OnAgentScheduled(Task* agent) {
  PollingErase(agent);
  BeginIteration(agent);
}

// Running agents fall into the stall path at their next burst completion;
// blocked or poll-waiting agents fall into it at their next wakeup/poke.
void AgentProcess::SetStalled(bool stalled) { stalled_ = stalled; }

void AgentProcess::BeginIteration(Task* agent) {
  if (!alive_ || agent->state() == TaskState::kDead) {
    return;
  }
  if (stalled_) {
    // Wedged agent (§3.4): burns CPU in a tight loop without ever consulting
    // the policy. Runnable ghOSt threads starve; the enclave watchdog is the
    // recovery mechanism.
    std::shared_ptr<bool> gone = gone_;
    kernel_->StartBurst(agent, Microseconds(10), [this, gone](Task* task) {
      if (!*gone) {
        BeginIteration(task);
      }
    });
    return;
  }
  ++iterations_;

  // Message-queue overflow recovery (§3.1/§3.4): a dropped message left the
  // policy's view of some thread permanently stale. Discard the message
  // backlog and rebuild the view from the kernel's authoritative dump — the
  // same machinery an in-place upgrade uses.
  bool resynced = false;
  if (enclave_->ConsumeOverflowPending()) {
    ++resyncs_;
    enclave_->FlushAllQueues();
    policy_->Restore(enclave_->TaskDump());
    resynced = true;
    // The flush discarded every pending queue wakeup, and Restore() may have
    // placed runnable threads on sibling CPUs whose agents already went to
    // sleep — nothing else will ever wake them. Kick every sibling so the
    // rebuilt runqueues are picked up.
    for (auto& [cpu, sibling] : agents_) {
      if (sibling == agent || sibling->state() == TaskState::kDead) {
        continue;
      }
      if (sibling->state() == TaskState::kBlocked) {
        kernel_->Wake(sibling);
      } else {
        enclave_->PokeAgent(sibling);
      }
    }
  }

  const uint64_t epoch = enclave_->poke_epoch();
  const uint32_t aseq = enclave_->agent_status(agent).aseq;
  AgentContext ctx(enclave_, ghost_class_, kernel_, agent);
  if (resynced) {
    const CostModel& cost = kernel_->cost();
    ctx.Charge(cost.syscall * 2 +
               cost.agent_per_task_scan * enclave_->num_tasks());
  }
  const AgentAction action = policy_->RunAgent(ctx);
  const Time wakeup_at = ctx.wakeup_at();
  stat_iteration_cost_ns_->Observe(ctx.cost());
  if (const int depth = policy_->RunqueueDepth(); depth >= 0) {
    stat_runqueue_depth_->Observe(depth);
  }
  kernel_->trace().Record(kernel_->now(), TraceEventType::kAgentIter, agent->cpu(),
                          agent->tid(), ctx.cost());
  std::shared_ptr<bool> gone = gone_;
  kernel_->StartBurst(agent, ctx.cost(),
                      [this, gone, action, epoch, aseq, wakeup_at](Task* task) {
                        if (!*gone) {
                          EndIteration(task, action, epoch, aseq, wakeup_at);
                        }
                      });
}

void AgentProcess::EndIteration(Task* agent, AgentAction action, uint64_t epoch,
                                uint32_t aseq, Time wakeup_at) {
  if (!alive_ || agent->state() == TaskState::kDead) {
    return;
  }
  if (!test_skip_sleep_recheck_ && action == AgentAction::kPollWait &&
      enclave_->poke_epoch() != epoch) {
    // Something happened while this iteration's burst was charged; spin again
    // rather than poll-waiting (avoids a lost wakeup).
    action = AgentAction::kRunAgain;
  }
  if (!test_skip_sleep_recheck_ && action == AgentAction::kBlock &&
      (enclave_->agent_status(agent).aseq != aseq || enclave_->overflow_pending())) {
    // Check-then-sleep: a message reached this agent's queue — or a sibling
    // poked it about freshly queued work — after the iteration had already
    // decided to block. Enclave::Post only wakes consumers that are blocked
    // at post time, so going to sleep now would strand the work until the
    // next incidental message (possibly forever).
    action = AgentAction::kRunAgain;
  }
  switch (action) {
    case AgentAction::kRunAgain:
      BeginIteration(agent);
      break;
    case AgentAction::kPollWait: {
      polling_.push_back(agent);
      std::shared_ptr<bool> gone = gone_;
      enclave_->RegisterPollWaiter(agent, [this, gone, agent] {
        if (!*gone) {
          Poke(agent);
        }
      });
      if (wakeup_at != kTimeNever) {
        const Duration delay = std::max<Duration>(0, wakeup_at - kernel_->now());
        std::shared_ptr<bool> gone = gone_;
        kernel_->loop()->ScheduleAfter(delay, [this, gone, agent] {
          if (!*gone) {
            Poke(agent);
          }
        });
      }
      break;
    }
    case AgentAction::kYield:
      kernel_->Yield(agent);
      break;
    case AgentAction::kBlock:
      kernel_->Block(agent);
      break;
  }
}

void AgentProcess::Poke(Task* agent) {
  if (!alive_ || agent->state() == TaskState::kDead || !PollingErase(agent)) {
    return;
  }
  enclave_->UnregisterPollWaiter(agent);
  std::shared_ptr<bool> gone = gone_;
  kernel_->StartBurst(agent, kernel_->cost().poll_detect,
                      [this, gone](Task* task) {
                        if (!*gone) {
                          BeginIteration(task);
                        }
                      });
}

}  // namespace gs
