#include "src/agent/dispatch_policy.h"

#include <algorithm>

namespace gs {

void DispatchPolicy::Dispatch(AgentContext& ctx, const Message& msg) {
  PolicyTask* task = nullptr;
  const TaskTable::Event event = table_.Apply(msg, &task);
  switch (event) {
    case TaskTable::Event::kNone:
      // CPU-scoped or about an unknown (already dead) thread.
      if (msg.type == MessageType::kTimerTick) {
        TimerTick(ctx, msg);
      } else if (msg.type == MessageType::kAgentWakeup) {
        AgentWakeup(ctx, msg);
      }
      break;
    case TaskTable::Event::kNew:
      TaskNew(ctx, task, msg);
      break;
    case TaskTable::Event::kRunnable:
      if (msg.type == MessageType::kTaskPreempted) {
        TaskPreempted(ctx, task, msg);
      } else if (msg.type == MessageType::kTaskYield) {
        TaskYield(ctx, task, msg);
      } else {
        TaskWakeup(ctx, task, msg);
      }
      break;
    case TaskTable::Event::kBlocked:
      TaskBlocked(ctx, task, msg);
      break;
    case TaskTable::Event::kDead:
      if (msg.type == MessageType::kTaskDeparted) {
        TaskDeparted(ctx, task, msg);
      } else {
        TaskDead(ctx, task, msg);
      }
      table_.Remove(msg.tid);
      break;
    case TaskTable::Event::kAffinity:
      TaskAffinity(ctx, task, msg);
      break;
  }
}

void DispatchPolicy::Restore(const std::vector<Enclave::TaskInfo>& dump) {
  restore_backlog_.clear();
  // Table entries the dump no longer mentions departed while our view was
  // stale (or under the outgoing policy of a live swap). Mark survivors as
  // we walk the dump; sorted iteration keeps the backlog deterministic.
  std::vector<int64_t> stale = table_.SortedTids();
  for (const Enclave::TaskInfo& info : dump) {
    stale.erase(std::remove(stale.begin(), stale.end(), info.tid), stale.end());
    Message msg;
    msg.tid = info.tid;
    msg.tseq = info.tseq;
    msg.affinity = info.affinity;
    PolicyTask* task = table_.Find(info.tid);
    if (task == nullptr) {
      // An on-cpu thread is not re-enqueued: it already holds a CPU, and its
      // eventual preempt/yield/block message re-enters it the normal way.
      msg.type = MessageType::kTaskNew;
      msg.runnable = info.runnable && !info.on_cpu;
    } else if (info.runnable && !info.on_cpu && !task->runnable) {
      msg.type = MessageType::kTaskWakeup;  // lost wakeup: kernel says ready
    } else if (!info.runnable && task->runnable) {
      msg.type = MessageType::kTaskBlocked;
      msg.cpu = task->assigned_cpu >= 0 ? task->assigned_cpu : task->last_cpu;
    } else {
      continue;  // views agree; nothing to replay
    }
    restore_backlog_.push_back(msg);
  }
  for (int64_t tid : stale) {
    Message msg;
    msg.type = MessageType::kTaskDeparted;
    msg.tid = tid;
    restore_backlog_.push_back(msg);
  }
}

AgentAction DispatchPolicy::RunAgent(AgentContext& ctx) {
  if (!restore_backlog_.empty()) {
    // Swap out first: a hook may trigger another Restore() (it should not,
    // but a hostile subclass can), and Dispatch must not walk a mutating
    // vector.
    std::vector<Message> backlog;
    backlog.swap(restore_backlog_);
    for (Message& msg : backlog) {
      msg.posted = ctx.kernel()->now();
      Dispatch(ctx, msg);
    }
  }
  scratch_queues_.clear();
  CollectQueues(ctx, &scratch_queues_);
  scratch_msgs_.clear();
  for (MessageQueue* queue : scratch_queues_) {
    ctx.Drain(queue, &scratch_msgs_);
  }
  for (const Message& msg : scratch_msgs_) {
    Dispatch(ctx, msg);
  }
  return Schedule(ctx);
}

}  // namespace gs
