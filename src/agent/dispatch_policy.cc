#include "src/agent/dispatch_policy.h"

namespace gs {

void DispatchPolicy::Dispatch(AgentContext& ctx, const Message& msg) {
  PolicyTask* task = nullptr;
  const TaskTable::Event event = table_.Apply(msg, &task);
  switch (event) {
    case TaskTable::Event::kNone:
      // CPU-scoped or about an unknown (already dead) thread.
      if (msg.type == MessageType::kTimerTick) {
        TimerTick(ctx, msg);
      } else if (msg.type == MessageType::kAgentWakeup) {
        AgentWakeup(ctx, msg);
      }
      break;
    case TaskTable::Event::kNew:
      TaskNew(ctx, task, msg);
      break;
    case TaskTable::Event::kRunnable:
      if (msg.type == MessageType::kTaskPreempted) {
        TaskPreempted(ctx, task, msg);
      } else if (msg.type == MessageType::kTaskYield) {
        TaskYield(ctx, task, msg);
      } else {
        TaskWakeup(ctx, task, msg);
      }
      break;
    case TaskTable::Event::kBlocked:
      TaskBlocked(ctx, task, msg);
      break;
    case TaskTable::Event::kDead:
      if (msg.type == MessageType::kTaskDeparted) {
        TaskDeparted(ctx, task, msg);
      } else {
        TaskDead(ctx, task, msg);
      }
      table_.Remove(msg.tid);
      break;
    case TaskTable::Event::kAffinity:
      TaskAffinity(ctx, task, msg);
      break;
  }
}

AgentAction DispatchPolicy::RunAgent(AgentContext& ctx) {
  scratch_queues_.clear();
  CollectQueues(ctx, &scratch_queues_);
  scratch_msgs_.clear();
  for (MessageQueue* queue : scratch_queues_) {
    ctx.Drain(queue, &scratch_msgs_);
  }
  for (const Message& msg : scratch_msgs_) {
    Dispatch(ctx, msg);
  }
  return Schedule(ctx);
}

}  // namespace gs
