// DispatchPolicy: a typed message-dispatch adapter layered over
// Policy::RunAgent, in the style of upstream ghost-userspace's
// BasicDispatchScheduler.
//
// A raw Policy drains queues and switches on MessageType by hand. A
// DispatchPolicy factors that boilerplate into the base class: each
// iteration drains the queues the subclass nominates, folds every message
// into the shared TaskTable, routes it to a per-type virtual hook
// (TaskNew/TaskWakeup/TaskBlocked/TaskPreempted/TaskYield/TaskDead/
// TaskDeparted/TaskAffinity/TimerTick/AgentWakeup), and then asks the
// subclass to Schedule(). Subclasses keep only the decisions that make a
// policy a policy: where a task goes when it becomes runnable, and what to
// commit.
//
// Hook contract:
//  * `task` is the TaskTable entry, already updated from the message
//    (runnable/tseq/affinity/last_cpu reflect the message's effect);
//  * for TaskDead/TaskDeparted the entry is removed from the table right
//    after the hook returns — drop runqueue links and `user` state inside;
//  * CPU-scoped messages (TimerTick) and bookkeeping wakeups (AgentWakeup)
//    carry no task; hooks receive the raw message only;
//  * messages about threads the table does not know (already dead) are
//    dropped before any hook fires, exactly as hand-written policies do.
//
// PerCpuFifoPolicy is the reference consumer (src/policies/per_cpu_fifo.*).
#ifndef GHOST_SIM_SRC_AGENT_DISPATCH_POLICY_H_
#define GHOST_SIM_SRC_AGENT_DISPATCH_POLICY_H_

#include <vector>

#include "src/agent/agent_context.h"
#include "src/agent/policy.h"
#include "src/agent/task_table.h"

namespace gs {

class DispatchPolicy : public Policy {
 public:
  // Drains, dispatches, then defers to Schedule(). Final: the adapter owns
  // the iteration shape; subclasses customize through the hooks below.
  AgentAction RunAgent(AgentContext& ctx) final;

  // Default upgrade/resync restore (§3.4): reconciles the table against the
  // kernel dump by synthesizing messages, dispatched through the normal hook
  // path at the start of the next RunAgent iteration. Threads the dump knows
  // and the table does not become kTaskNew (a fresh policy instance after a
  // live swap re-places everything this way — a thread the outgoing policy
  // never scheduled is still re-announced, never silently dropped); known
  // threads whose runnability disagrees with the dump get kTaskWakeup /
  // kTaskBlocked; table entries missing from the dump get kTaskDeparted.
  // Subclasses with richer state (home CPUs, priority arrays) override with
  // full-view replacement instead; this default keeps hook-only policies
  // correct without one.
  void Restore(const std::vector<Enclave::TaskInfo>& dump) override;

 protected:
  // ---- Subclass obligations --------------------------------------------------
  // Appends the queues this agent drains each iteration, in drain order
  // (e.g. the boss agent adds the enclave default queue before its own).
  virtual void CollectQueues(AgentContext& ctx, std::vector<MessageQueue*>* queues) = 0;

  // Runs after every drained message has been dispatched: pick, commit, and
  // return what the agent thread does next.
  virtual AgentAction Schedule(AgentContext& ctx) = 0;

  // ---- Typed message hooks (default: accept the table update, do nothing) ---
  virtual void TaskNew(AgentContext& ctx, PolicyTask* task, const Message& msg) {}
  virtual void TaskWakeup(AgentContext& ctx, PolicyTask* task, const Message& msg) {}
  virtual void TaskPreempted(AgentContext& ctx, PolicyTask* task, const Message& msg) {}
  virtual void TaskYield(AgentContext& ctx, PolicyTask* task, const Message& msg) {}
  virtual void TaskBlocked(AgentContext& ctx, PolicyTask* task, const Message& msg) {}
  virtual void TaskDead(AgentContext& ctx, PolicyTask* task, const Message& msg) {}
  virtual void TaskDeparted(AgentContext& ctx, PolicyTask* task, const Message& msg) {}
  virtual void TaskAffinity(AgentContext& ctx, PolicyTask* task, const Message& msg) {}
  virtual void TimerTick(AgentContext& ctx, const Message& msg) {}
  virtual void AgentWakeup(AgentContext& ctx, const Message& msg) {}

  // The message-driven thread view shared by the adapter and the subclass
  // (Restore() paths may rebuild it directly).
  TaskTable& table() { return table_; }

  // Routes one message through the table and the hooks; exposed for
  // Restore()-style resync code that replays synthesized messages.
  void Dispatch(AgentContext& ctx, const Message& msg);

 private:
  TaskTable table_;
  std::vector<MessageQueue*> scratch_queues_;
  std::vector<Message> scratch_msgs_;
  // Synthesized by the default Restore(); dispatched (then cleared) before
  // the queue drain of the next iteration. Deferred because Restore() runs
  // without an AgentContext.
  std::vector<Message> restore_backlog_;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_AGENT_DISPATCH_POLICY_H_
