// AgentContext: the cost-charged userspace API surface for one agent-loop
// iteration.
//
// Policy code runs "instantaneously" in host time at the start of its
// iteration; every API call accrues virtual-time cost to the ledger. When the
// policy returns, the agent runtime turns the accrued cost into the agent's
// CPU burst, and transaction effects land at the offsets at which they left
// the agent — reproducing the agent-side overheads of Table 3 (fixed commit
// cost + per-transaction cost, NUMA penalties, amortized group commits).
#ifndef GHOST_SIM_SRC_AGENT_AGENT_CONTEXT_H_
#define GHOST_SIM_SRC_AGENT_AGENT_CONTEXT_H_

#include <span>
#include <vector>

#include "src/ghost/enclave.h"
#include "src/ghost/ghost_class.h"

namespace gs {

class AgentContext {
 public:
  AgentContext(Enclave* enclave, GhostClass* ghost_class, Kernel* kernel, Task* agent);

  Enclave* enclave() { return enclave_; }
  Kernel* kernel() { return kernel_; }
  Task* agent_task() { return agent_; }
  int agent_cpu() const { return agent_cpu_; }

  // Virtual time at which this iteration started.
  Time start() const { return start_; }
  // Cost accrued so far (the iteration's eventual CPU burst).
  Duration cost() const { return cost_; }
  // Policies charge their own computation explicitly when it is significant.
  void Charge(Duration d) { cost_ += d; }

  // A spinning agent that poll-waits is also re-run at this time even without
  // a poke (for timeslice enforcement, e.g. Shinjuku's 30 µs preemption).
  void RequestWakeupAt(Time when) {
    if (wakeup_at_ == kTimeNever || when < wakeup_at_) {
      wakeup_at_ = when;
    }
  }
  Time wakeup_at() const { return wakeup_at_; }

  // ---- Messages -------------------------------------------------------------
  // Pops one message (charges the dequeue cost). nullopt if empty.
  std::optional<Message> Pop(MessageQueue* queue);
  // Drains up to `max` messages into `out`; returns the count.
  int Drain(MessageQueue* queue, std::vector<Message>* out, int max = INT32_MAX);

  // ---- Status words ------------------------------------------------------------
  uint32_t ReadAseq();
  const TaskStatusWord* ReadStatus(int64_t tid);
  // Application-provided scheduling hint for the thread (shared memory read).
  uint64_t ReadHint(int64_t tid);

  // ---- CPU state -----------------------------------------------------------------
  // Enclave CPUs that are idle and have no in-flight/latched transaction —
  // what GetIdleCPUs() returns in Fig 4. Charges a per-CPU scan cost.
  CpuMask AvailableCpus();
  bool CpuAvailable(int cpu);
  // True if a non-ghOSt scheduling class (e.g. CFS) has runnable work queued
  // for `cpu` — the §3.3 hot-handoff trigger: a spinning global agent must
  // vacate its CPU when the kernel wants to run something else there.
  bool HigherClassWaitersOn(int cpu);

  // ---- Transactions ----------------------------------------------------------------
  // TXN_CREATE(): fills in a transaction (cheap; shared-memory write).
  static Transaction MakeTxn(int64_t tid, int cpu) {
    Transaction txn;
    txn.tid = tid;
    txn.target_cpu = cpu;
    return txn;
  }

  // TXNS_COMMIT() for any mix of local/remote transactions. Remote targets
  // pay the fixed + per-transaction agent cost (with the cross-NUMA
  // multiplier); their effects leave the agent at the accrued offsets and
  // arrive behind an IPI. A local target (the agent's own CPU) latches for
  // pickup when the agent yields.
  void Commit(std::span<Transaction*> txns);
  void Commit(Transaction* txn) { Commit(std::span<Transaction*>(&txn, 1)); }

 private:
  Enclave* enclave_;
  GhostClass* ghost_class_;
  Kernel* kernel_;
  Task* agent_;
  int agent_cpu_;
  Time start_;
  Duration cost_ = 0;
  Time wakeup_at_ = kTimeNever;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_AGENT_AGENT_CONTEXT_H_
