// Policy-SDK placement helpers: hint types plus the inside-out tiered
// placer factored out of the Google Search policy (§4.4).
//
// Placement in a ghOSt policy answers "which of these idle CPUs should run
// this task" with cache topology in mind. TieredPlacer searches inside-out
// from where the task last ran — same physical core (warm L1/L2), same CCX
// (warm L3), nearest-neighbour CCXs, then anywhere the cpumask permits —
// and implements §4.4's bespoke optimization of keeping a thread pending
// briefly rather than migrating it cache-cold. A PlacementHint (e.g. from a
// wakeup-affinity predictor) is consulted after the warm tiers: a confident
// prediction about where the task's footprint is headed beats a cold
// migration, but never beats demonstrated warmth.
#ifndef GHOST_SIM_SRC_AGENT_SDK_PLACEMENT_H_
#define GHOST_SIM_SRC_AGENT_SDK_PLACEMENT_H_

#include <cstdint>

#include "src/agent/agent_context.h"
#include "src/agent/task_table.h"
#include "src/base/cpumask.h"
#include "src/base/time.h"

namespace gs {

// A placement preference for one dispatch, from the policy or a predictor.
// Fields are advisory: the placer uses them only when they intersect the
// candidate mask, and demonstrated cache warmth always wins over a hint.
struct PlacementHint {
  int ccx = -1;  // preferred CCX (L3 domain); -1 = no preference
  int cpu = -1;  // preferred exact CPU; -1 = no preference
  bool empty() const { return ccx < 0 && cpu < 0; }
};

class TieredPlacer {
 public:
  struct Options {
    // Placement tiers (ablation benches disable these).
    bool ccx_aware = true;
    // Keep a thread pending this long before accepting a cache-cold CPU
    // (0 = migrate immediately).
    Duration max_pending_before_migrate = Microseconds(100);
  };

  TieredPlacer() = default;
  explicit TieredPlacer(Options options) : options_(options) {}

  // Must run before Pick (the placer reads topology and per-CPU idleness).
  void Attach(Kernel* kernel) { kernel_ = kernel; }

  // Chooses a CPU from `candidates` by placement tier relative to where
  // `task` last ran; -1 = defer (wait for a warmer CPU). Charges the
  // placement-heuristic cost on the tiered path.
  int Pick(AgentContext& ctx, const PolicyTask& task, const CpuMask& candidates,
           const PlacementHint& hint = PlacementHint());

  // Within a tier, prefer a CPU on a fully idle core (like the kernel's
  // select_idle_core()); otherwise the tier's first CPU.
  int PickFromTier(const CpuMask& tier) const;

  const Options& options() const { return options_; }
  uint64_t deferred() const { return deferred_; }
  uint64_t hint_hits() const { return hint_hits_; }

 private:
  Options options_;
  Kernel* kernel_ = nullptr;
  uint64_t deferred_ = 0;   // kept pending for cache warmth
  uint64_t hint_hits_ = 0;  // placements decided by a hint
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_AGENT_SDK_PLACEMENT_H_
