// Policy-SDK runqueue primitives: the one runqueue implementation surface
// that DispatchPolicy authors compose instead of hand-rolling.
//
// FifoRunqueue backs the Shinjuku/Snap-style FIFO policies (Fig 3/4);
// MinRunqueue is an ordered queue keyed by a policy-chosen value — elapsed
// runtime for the Google Search policy's min-heap (§4.4), deadlines for the
// EDF secure-VM policy (§4.5); PrioArrayRunqueue is a multilevel FIFO with
// an occupancy bitmap and O(1) highest-priority pick (the Linux 2.6 O(1)
// scheduler's priority array, hoisted out of the O1 policy).
#ifndef GHOST_SIM_SRC_AGENT_SDK_RUNQUEUE_H_
#define GHOST_SIM_SRC_AGENT_SDK_RUNQUEUE_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/agent/task_table.h"
#include "src/base/logging.h"
#include "src/base/ring_deque.h"

namespace gs {

// Ring-backed: a std::deque oscillating around empty pays a chunk
// malloc/free every time its position crosses a block boundary, which showed
// up as the last steady-state allocations in tests/sim_alloc_test.
class FifoRunqueue {
 public:
  void Push(PolicyTask* task) { queue_.push_back(task); }
  void PushFront(PolicyTask* task) { queue_.push_front(task); }

  PolicyTask* Pop() {
    if (queue_.empty()) {
      return nullptr;
    }
    PolicyTask* task = queue_.front();
    queue_.pop_front();
    return task;
  }

  PolicyTask* Peek() const { return queue_.empty() ? nullptr : queue_.front(); }

  // Removes a task wherever it sits (e.g. it blocked while queued).
  bool Remove(PolicyTask* task) { return queue_.remove(task); }

  size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }
  void Clear() { queue_.clear(); }

  // Rotation support for skip-and-revisit scans (the Search policy skips
  // threads whose preferred CPUs are busy and revisits them next loop).
  RingDeque<PolicyTask*>& raw() { return queue_; }

 private:
  RingDeque<PolicyTask*> queue_;
};

// Ordered runqueue: smallest key first; ties broken by tid for determinism.
//
// Flat: one vector sorted descending by (key, tid), so the minimum lives at
// the back and PopMin is a pop_back. Push/Remove binary-search and memmove
// — contiguous 16-byte entries, no per-node heap traffic. The node churn of
// the previous std::set/std::map pair was the Search policy's hottest
// allocation site (two mallocs per enqueue, two frees per dispatch), and
// iteration order here is identical to what that std::set produced.
class MinRunqueue {
 public:
  void Push(PolicyTask* task, int64_t key) {
    task->rq_key = key;
    const Entry entry{key, task};
    queue_.insert(std::upper_bound(queue_.begin(), queue_.end(), entry, After),
                  entry);
  }

  PolicyTask* PopMin() {
    if (queue_.empty()) {
      return nullptr;
    }
    PolicyTask* task = queue_.back().second;
    queue_.pop_back();
    return task;
  }

  PolicyTask* PeekMin() const {
    return queue_.empty() ? nullptr : queue_.back().second;
  }

  bool Remove(PolicyTask* task) {
    const size_t index = IndexOf(task);
    if (index == queue_.size()) {
      return false;
    }
    queue_.erase(queue_.begin() + index);
    return true;
  }

  bool Contains(PolicyTask* task) const { return IndexOf(task) != queue_.size(); }
  size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }
  void Clear() { queue_.clear(); }

  // In-order iteration, smallest key first (skip-scan support).
  auto begin() const { return queue_.rbegin(); }
  auto end() const { return queue_.rend(); }

 private:
  using Entry = std::pair<int64_t, PolicyTask*>;

  // Descending (key, tid) — a strict total order since tids are unique.
  static bool After(const Entry& a, const Entry& b) {
    if (a.first != b.first) {
      return a.first > b.first;
    }
    return a.second->tid > b.second->tid;
  }

  // Index of `task`'s entry, or size() if absent. task->rq_key pins the
  // binary-search position; a stale key on an unqueued task just misses.
  size_t IndexOf(PolicyTask* task) const {
    const Entry probe{task->rq_key, task};
    auto it = std::lower_bound(queue_.begin(), queue_.end(), probe, After);
    if (it != queue_.end() && it->second == task) {
      return static_cast<size_t>(it - queue_.begin());
    }
    return queue_.size();
  }

  std::vector<Entry> queue_;
};

// Multilevel FIFO with an occupancy bitmap: one FIFO per priority level
// (0 is highest), pick = count-trailing-zeros on the bitmap + pop that
// queue's head. At most 64 levels (one bitmap word). This is the O(1)
// scheduler's priority array; the O1 policy keeps an active/expired pair of
// these and swaps them when the active one drains.
class PrioArrayRunqueue {
 public:
  PrioArrayRunqueue() = default;
  explicit PrioArrayRunqueue(int levels) { Resize(levels); }

  // Sets the number of priority levels. Existing queued tasks are dropped;
  // call before use (or between runs), not while populated.
  void Resize(int levels) {
    CHECK(levels >= 1 && levels <= 64)
        << "PrioArrayRunqueue: levels must be in [1, 64], got " << levels;
    queues_.assign(static_cast<size_t>(levels), FifoRunqueue());
    bitmap_ = 0;
  }

  void Push(PolicyTask* task, int prio, bool front) {
    if (front) {
      queues_[prio].PushFront(task);
    } else {
      queues_[prio].Push(task);
    }
    bitmap_ |= uint64_t{1} << prio;
  }

  // Head of the highest-priority non-empty level; nullptr if empty.
  PolicyTask* Pop() {
    if (bitmap_ == 0) {
      return nullptr;
    }
    const int prio = std::countr_zero(bitmap_);
    PolicyTask* task = queues_[prio].Pop();
    if (queues_[prio].empty()) {
      bitmap_ &= ~(uint64_t{1} << prio);
    }
    return task;
  }

  bool Remove(PolicyTask* task, int prio) {
    if (!queues_[prio].Remove(task)) {
      return false;
    }
    if (queues_[prio].empty()) {
      bitmap_ &= ~(uint64_t{1} << prio);
    }
    return true;
  }

  bool empty() const { return bitmap_ == 0; }

  size_t size() const {
    size_t total = 0;
    for (const FifoRunqueue& q : queues_) {
      total += q.size();
    }
    return total;
  }

  // Drops every queued task, keeping the level count.
  void Clear() {
    for (FifoRunqueue& q : queues_) {
      q.Clear();
    }
    bitmap_ = 0;
  }

  int levels() const { return static_cast<int>(queues_.size()); }

 private:
  uint64_t bitmap_ = 0;
  std::vector<FifoRunqueue> queues_;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_AGENT_SDK_RUNQUEUE_H_
