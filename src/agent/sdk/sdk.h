// The policy SDK: everything a DispatchPolicy author composes.
//
// ghOSt's pitch is that a scheduler is just user-space software (Table 2:
// the paper's policies are 700–900 LoC because the support library does the
// heavy lifting). The SDK is that support library's policy-facing surface:
//
//  * runqueue primitives (sdk/runqueue.h): FifoRunqueue, MinRunqueue,
//    PrioArrayRunqueue — the three queue shapes every policy in this repo
//    is built from;
//  * timeslice helpers (sdk/timeslice.h): SliceBudget virtual-time
//    accounting, priority->slice interpolation, slice-expiry wakeup arming;
//  * placement helpers (sdk/placement.h): PlacementHint and the inside-out
//    TieredPlacer (§4.4's same-core/same-CCX/neighbour search with warmth
//    deferral).
//
// Message plumbing lives one level down in DispatchPolicy (typed hooks over
// the shared TaskTable); predictors that feed PlacementHints and
// long-vs-short routing live in src/predict/. A new policy is: subclass
// DispatchPolicy, pick queue primitives, implement Schedule() — see the
// README quickstart and src/policies/ for consumers.
#ifndef GHOST_SIM_SRC_AGENT_SDK_SDK_H_
#define GHOST_SIM_SRC_AGENT_SDK_SDK_H_

#include "src/agent/dispatch_policy.h"  // IWYU pragma: export
#include "src/agent/sdk/placement.h"    // IWYU pragma: export
#include "src/agent/sdk/runqueue.h"     // IWYU pragma: export
#include "src/agent/sdk/timeslice.h"    // IWYU pragma: export
#include "src/agent/task_table.h"       // IWYU pragma: export

#endif  // GHOST_SIM_SRC_AGENT_SDK_SDK_H_
