#include "src/agent/sdk/placement.h"

#include "src/kernel/kernel.h"
#include "src/topology/topology.h"

namespace gs {

int TieredPlacer::PickFromTier(const CpuMask& tier) const {
  // Prefer a CPU whose SMT sibling is idle (a whole idle core), like the
  // kernel's select_idle_core(); otherwise take any CPU in the tier.
  const Topology& topo = kernel_->topology();
  for (int cpu = tier.First(); cpu >= 0; cpu = tier.NextAfter(cpu)) {
    const int sibling = topo.cpu(cpu).sibling;
    if (sibling < 0 || kernel_->CpuIdle(sibling)) {
      return cpu;
    }
  }
  return tier.First();
}

int TieredPlacer::Pick(AgentContext& ctx, const PolicyTask& task,
                       const CpuMask& candidates, const PlacementHint& hint) {
  // An exact-CPU hint that is actually available short-circuits everything:
  // the hinting policy already knows more than the tier heuristic.
  if (hint.cpu >= 0 && candidates.IsSet(hint.cpu)) {
    ++hint_hits_;
    return hint.cpu;
  }
  if (!options_.ccx_aware || task.last_cpu < 0) {
    // No run history to be warm relative to: a CCX hint (predicted wakeup
    // affinity) is the only locality signal there is.
    if (hint.ccx >= 0) {
      const CpuMask tier = candidates & kernel_->topology().CcxMask(hint.ccx);
      if (!tier.Empty()) {
        ++hint_hits_;
        return PickFromTier(tier);
      }
    }
    return PickFromTier(candidates);
  }
  const Topology& topo = kernel_->topology();
  const CpuInfo& last = topo.cpu(task.last_cpu);
  ctx.Charge(kernel_->cost().agent_per_task_scan);  // the 57-line heuristic

  // Tier 1: same physical core (warm L1/L2).
  CpuMask tier = candidates & topo.CoreMask(last.core);
  if (!tier.Empty()) {
    return tier.First();
  }
  // Tier 2: same CCX (warm L3).
  tier = candidates & topo.CcxMask(last.ccx);
  if (!tier.Empty()) {
    return PickFromTier(tier);
  }
  // Hinted CCX: the predictor says the task's footprint is headed there, so
  // it outranks the blind neighbour fan-out — and takes it immediately, no
  // warmth deferral, because the hint is itself the warmth estimate.
  if (hint.ccx >= 0 && hint.ccx != last.ccx) {
    tier = candidates & topo.CcxMask(hint.ccx);
    if (!tier.Empty()) {
      ++hint_hits_;
      return PickFromTier(tier);
    }
  }
  // Tier 3: nearest-neighbour CCXs on the same socket (fan-out search).
  const int ccxs_per_numa = topo.num_ccxs() / topo.num_numa_nodes();
  const int numa_first_ccx = (last.ccx / ccxs_per_numa) * ccxs_per_numa;
  for (int distance = 1; distance < ccxs_per_numa; ++distance) {
    for (int sign : {+1, -1}) {
      const int ccx = last.ccx + sign * distance;
      if (ccx < numa_first_ccx || ccx >= numa_first_ccx + ccxs_per_numa) {
        continue;
      }
      tier = candidates & topo.CcxMask(ccx);
      if (!tier.Empty()) {
        // §4.4's bespoke optimization: prefer waiting up to 100 us for the
        // home CCX over an immediate cross-CCX migration.
        if (ctx.start() - task.became_runnable < options_.max_pending_before_migrate) {
          ++deferred_;
          return -1;
        }
        return PickFromTier(tier);
      }
    }
  }
  // Anywhere allowed (cross-socket only if the cpumask permits it).
  if (ctx.start() - task.became_runnable < options_.max_pending_before_migrate) {
    ++deferred_;
    return -1;
  }
  return PickFromTier(candidates);
}

}  // namespace gs
