// Policy-SDK timeslice and budget helpers.
//
// Slice accounting in a ghOSt policy is virtual-time arithmetic over the
// agent's own observations: the policy knows when it committed a task
// (picked_at) and learns when the task left the CPU (the next message about
// it), so "how much slice is left" is a subtraction, not a kernel query.
// SliceBudget packages that bookkeeping; the interpolation and wakeup-arming
// helpers cover the two ways policies consume slices (per-priority budgets
// in O(1)-style schedulers, rotation probes in Shinjuku-style ones).
#ifndef GHOST_SIM_SRC_AGENT_SDK_TIMESLICE_H_
#define GHOST_SIM_SRC_AGENT_SDK_TIMESLICE_H_

#include "src/base/time.h"

namespace gs {

// Per-task slice budget, charged in virtual time between the policy's
// commit and the next message about the task.
struct SliceBudget {
  Duration remaining = 0;  // budget left in the current slice
  Time picked_at = 0;      // when the policy last committed the task
  bool running = false;    // policy belief: on CPU since picked_at

  // Grants a fresh slice (wakeup reward, post-expiry refresh).
  void Refresh(Duration slice) { remaining = slice; }

  // Records a committed dispatch at virtual time `now`.
  void MarkPicked(Time now) {
    picked_at = now;
    running = true;
  }

  // Charges run time since the last pick against the budget; no-op unless
  // the task was believed running. The commit landed slightly after
  // picked_at (agent-iteration cost), so this over-charges by at most one
  // iteration — the same direction real tick-based accounting errs.
  void ChargeUntil(Time now) {
    if (!running) {
      return;
    }
    running = false;
    const Duration elapsed = now - picked_at;
    remaining = remaining > elapsed ? remaining - elapsed : 0;
  }

  bool Expired() const { return remaining == 0; }
};

// Linear priority -> timeslice interpolation: `base` at priority 0 down to
// `min` at the lowest level, mirroring Linux's static_prio -> timeslice map.
inline Duration InterpolatedTimeslice(Duration base, Duration min, int priority,
                                      int levels) {
  if (levels <= 1) {
    return base;
  }
  return base - (base - min) * priority / (levels - 1);
}

// When must a slice-enforcing agent next wake up? With probe_interval == 0
// the agent tracks each running task exactly and wakes at the earliest
// expiry (`earliest_since + slice`); with probe_interval > 0 it wakes on a
// fixed cadence instead — how the real Shinjuku dataplane polls worker
// state on a timer rather than tracking per-request expiries.
inline Time NextSliceWakeup(Time earliest_since, Duration slice, Time now,
                            Duration probe_interval) {
  if (probe_interval > 0) {
    return now + probe_interval;
  }
  return earliest_since + slice;
}

}  // namespace gs

#endif  // GHOST_SIM_SRC_AGENT_SDK_TIMESLICE_H_
