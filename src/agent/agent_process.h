// AgentProcess: the userspace process hosting the agent threads.
//
// "Each agent is implemented in a Linux pthread and all agents belong to the
// same userspace process" (§3). This class creates one agent task per enclave
// CPU, drives the policy's loop iterations, and implements the lifecycle the
// paper's §3.4 describes: graceful shutdown, crash, and in-place upgrade
// (a replacement process attaches and restores state from the kernel dump).
#ifndef GHOST_SIM_SRC_AGENT_AGENT_PROCESS_H_
#define GHOST_SIM_SRC_AGENT_AGENT_PROCESS_H_

#include <map>
#include <set>
#include <memory>

#include "src/agent/agent_context.h"
#include "src/agent/policy.h"

namespace gs {

class AgentProcess {
 public:
  AgentProcess(Kernel* kernel, GhostClass* ghost_class, Enclave* enclave,
               std::unique_ptr<Policy> policy);
  ~AgentProcess();

  AgentProcess(const AgentProcess&) = delete;
  AgentProcess& operator=(const AgentProcess&) = delete;

  // Spawns and wakes one agent per enclave CPU. If the enclave already holds
  // threads (agent upgrade), the policy's Restore() is invoked with the
  // kernel's task dump first.
  void Start();

  // Graceful exit: unregisters and kills all agent threads. The enclave and
  // its threads survive (a new process may attach).
  void Shutdown();

  // Simulates an agent crash. Identical kernel-visible effect to Shutdown();
  // recovery is driven by the watchdog or by a supervisor destroying the
  // enclave.
  void Crash() { Shutdown(); }

  Policy* policy() { return policy_.get(); }
  Enclave* enclave() { return enclave_; }
  Task* agent_on(int cpu) const;
  bool started() const { return started_; }
  bool alive() const { return alive_; }

  uint64_t iterations() const { return iterations_; }

 private:
  void OnAgentScheduled(Task* agent);
  void BeginIteration(Task* agent);
  void EndIteration(Task* agent, AgentAction action, uint64_t epoch, Time wakeup_at);
  // Idempotently kicks a poll-waiting agent into another iteration.
  void Poke(Task* agent);

  Kernel* kernel_;
  GhostClass* ghost_class_;
  Enclave* enclave_;
  std::unique_ptr<Policy> policy_;
  std::map<int, Task*> agents_;  // cpu -> agent task
  std::set<Task*> polling_;      // agents in poll-wait
  bool started_ = false;
  bool alive_ = false;
  uint64_t iterations_ = 0;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_AGENT_AGENT_PROCESS_H_
