// AgentProcess: the userspace process hosting the agent threads.
//
// "Each agent is implemented in a Linux pthread and all agents belong to the
// same userspace process" (§3). This class creates one agent task per enclave
// CPU, drives the policy's loop iterations, and implements the lifecycle the
// paper's §3.4 describes: graceful shutdown, crash, and in-place upgrade
// (a replacement process attaches and restores state from the kernel dump).
#ifndef GHOST_SIM_SRC_AGENT_AGENT_PROCESS_H_
#define GHOST_SIM_SRC_AGENT_AGENT_PROCESS_H_

#include <memory>
#include <utility>
#include <vector>

#include "src/agent/agent_context.h"
#include "src/agent/policy.h"

namespace gs {

class AgentProcess {
 public:
  AgentProcess(Kernel* kernel, GhostClass* ghost_class, Enclave* enclave,
               std::unique_ptr<Policy> policy);
  ~AgentProcess();

  AgentProcess(const AgentProcess&) = delete;
  AgentProcess& operator=(const AgentProcess&) = delete;

  // Spawns and wakes one agent per enclave CPU. If the enclave already holds
  // threads (agent upgrade), the policy's Restore() is invoked with the
  // kernel's task dump first.
  void Start();

  // Graceful exit: unregisters and kills all agent threads. The enclave and
  // its threads survive (a new process may attach).
  void Shutdown();

  // Simulates an agent crash. Identical kernel-visible effect to Shutdown();
  // recovery is driven by the watchdog or by a supervisor destroying the
  // enclave.
  void Crash() { Shutdown(); }

  // Live in-place policy swap (§3.4 upgrade without restarting the agent
  // threads): flushes all queues, resets message routing to the default
  // queue, attaches `next`, restores it from the kernel's TaskDump, and
  // wakes/pokes every agent so the rebuilt runqueues are picked up. The
  // outgoing policy is returned (its queues are already destroyed; it must
  // not touch the enclave again). This is the promote/rollback path of an
  // A/B canary and the hostile-swap path of the policy fuzzer. Requires a
  // started, alive process; no-ops into a plain object replacement when the
  // enclave already died.
  std::unique_ptr<Policy> SwapPolicy(std::unique_ptr<Policy> next);
  uint64_t policy_swaps() const { return policy_swaps_; }

  // Simulates a wedged agent (infinite loop in policy code, §3.4): the agent
  // threads stay alive and burn CPU but never run the policy, so runnable
  // ghOSt threads starve until the enclave watchdog destroys the enclave and
  // falls everything back to CFS. Reversible for tests that model a
  // transient stall shorter than the watchdog bound.
  void SetStalled(bool stalled);
  bool stalled() const { return stalled_; }

  Policy* policy() { return policy_.get(); }
  Enclave* enclave() { return enclave_; }
  Task* agent_on(int cpu) const;
  bool started() const { return started_; }
  bool alive() const { return alive_; }

  uint64_t iterations() const { return iterations_; }
  // Times this process recovered from a message-queue overflow by flushing
  // all queues and restoring policy state from the kernel's TaskDump.
  uint64_t resyncs() const { return resyncs_; }

  // Test seam (schedule-space explorer mutation battery): disables the
  // check-then-sleep re-validation in EndIteration, reintroducing the lost-
  // wakeup race — an agent whose queue received work mid-iteration blocks or
  // poll-waits anyway. Never set outside tests.
  void set_test_skip_sleep_recheck(bool skip) { test_skip_sleep_recheck_ = skip; }

 private:
  void OnAgentScheduled(Task* agent);
  void BeginIteration(Task* agent);
  void EndIteration(Task* agent, AgentAction action, uint64_t epoch, uint32_t aseq,
                    Time wakeup_at);
  // Idempotently kicks a poll-waiting agent into another iteration.
  void Poke(Task* agent);

  Kernel* kernel_;
  GhostClass* ghost_class_;
  Enclave* enclave_;
  // Deferred callbacks (burst completions, timer pokes, the enclave destroy
  // listener) can outlive this object; each captures this flag and bails if
  // the process was destroyed in the meantime.
  std::shared_ptr<bool> gone_ = std::make_shared<bool>(false);
  std::unique_ptr<Policy> policy_;
  // cpu -> agent task, in ascending-cpu order (built once at Start). A flat
  // vector: iterated every resync and searched on agent_on(), where the
  // handful of enclave CPUs fit in a cache line or two.
  std::vector<std::pair<int, Task*>> agents_;
  // Agents in poll-wait; membership-only, so an unordered vector with
  // swap-remove beats std::set's node churn in the spin loop.
  std::vector<Task*> polling_;
  bool PollingErase(Task* agent);
  bool started_ = false;
  bool alive_ = false;
  bool stalled_ = false;
  bool test_skip_sleep_recheck_ = false;
  uint64_t iterations_ = 0;
  uint64_t resyncs_ = 0;
  uint64_t policy_swaps_ = 0;

  // Hot-path metrics (global registry; pointers cached at construction).
  HistogramMetric* stat_iteration_cost_ns_;
  HistogramMetric* stat_runqueue_depth_;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_AGENT_AGENT_PROCESS_H_
