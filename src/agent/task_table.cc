#include "src/agent/task_table.h"

#include "src/base/logging.h"

namespace gs {

PolicyTask* TaskTable::Find(int64_t tid) {
  auto it = tasks_.find(tid);
  return it == tasks_.end() ? nullptr : it->second.get();
}

PolicyTask* TaskTable::Add(int64_t tid) {
  auto task = std::make_unique<PolicyTask>();
  task->tid = tid;
  task->affinity.SetAll();
  PolicyTask* ptr = task.get();
  tasks_[tid] = std::move(task);
  return ptr;
}

void TaskTable::Remove(int64_t tid) { tasks_.erase(tid); }

TaskTable::Event TaskTable::Apply(const Message& msg, PolicyTask** out) {
  *out = nullptr;
  if (msg.tid == 0) {
    return Event::kNone;  // CPU message (TIMER_TICK)
  }
  PolicyTask* task = Find(msg.tid);

  switch (msg.type) {
    case MessageType::kTaskNew: {
      if (task == nullptr) {
        task = Add(msg.tid);
      }
      task->tseq = msg.tseq;
      task->affinity = msg.affinity;
      task->runnable = msg.runnable;
      task->became_runnable = msg.posted;
      *out = task;
      return Event::kNew;
    }
    case MessageType::kTaskWakeup:
      if (task == nullptr) {
        return Event::kNone;
      }
      task->tseq = msg.tseq;
      task->runnable = true;
      task->became_runnable = msg.posted;
      *out = task;
      return Event::kRunnable;
    case MessageType::kTaskPreempted:
    case MessageType::kTaskYield:
      if (task == nullptr) {
        return Event::kNone;
      }
      task->tseq = msg.tseq;
      task->runnable = true;
      task->became_runnable = msg.posted;
      task->last_cpu = msg.cpu;
      task->assigned_cpu = -1;
      *out = task;
      return Event::kRunnable;
    case MessageType::kTaskBlocked:
      if (task == nullptr) {
        return Event::kNone;
      }
      task->tseq = msg.tseq;
      task->runnable = false;
      task->last_cpu = msg.cpu;
      task->assigned_cpu = -1;
      *out = task;
      return Event::kBlocked;
    case MessageType::kTaskDead:
    case MessageType::kTaskDeparted:
      if (task == nullptr) {
        return Event::kNone;
      }
      *out = task;  // caller cleans up `user`, then calls Remove()
      return Event::kDead;
    case MessageType::kTaskAffinity:
      if (task == nullptr) {
        return Event::kNone;
      }
      task->tseq = msg.tseq;
      task->affinity = msg.affinity;
      *out = task;
      return Event::kAffinity;
    case MessageType::kTimerTick:
    case MessageType::kAgentWakeup:
      return Event::kNone;
  }
  return Event::kNone;
}

}  // namespace gs
