#include "src/agent/task_table.h"

#include <algorithm>

#include "src/base/logging.h"

namespace gs {

std::vector<int64_t> TaskTable::SortedTids() const {
  std::vector<int64_t> tids;
  tids.reserve(by_tid_.size());
  by_tid_.ForEach([&tids](int64_t tid, PolicyTask* const&) { tids.push_back(tid); });
  std::sort(tids.begin(), tids.end());
  return tids;
}

PolicyTask* TaskTable::Add(int64_t tid) {
  PolicyTask* task = slab_.New();
  task->tid = tid;
  task->affinity.SetAll();
  by_tid_.Insert(tid, task);
  return task;
}

void TaskTable::Remove(int64_t tid) {
  PolicyTask** slot = by_tid_.Find(tid);
  if (slot != nullptr) {
    slab_.Delete(*slot);
    by_tid_.Erase(tid);
  }
}

TaskTable::Event TaskTable::Apply(const Message& msg, PolicyTask** out) {
  *out = nullptr;
  if (msg.tid == 0) {
    return Event::kNone;  // CPU message (TIMER_TICK)
  }
  PolicyTask* task = Find(msg.tid);

  switch (msg.type) {
    case MessageType::kTaskNew: {
      if (task == nullptr) {
        task = Add(msg.tid);
      }
      task->tseq = msg.tseq;
      task->affinity = msg.affinity;
      task->runnable = msg.runnable;
      task->became_runnable = msg.posted;
      *out = task;
      return Event::kNew;
    }
    case MessageType::kTaskWakeup:
      if (task == nullptr) {
        return Event::kNone;
      }
      task->tseq = msg.tseq;
      task->runnable = true;
      task->became_runnable = msg.posted;
      *out = task;
      return Event::kRunnable;
    case MessageType::kTaskPreempted:
    case MessageType::kTaskYield:
      if (task == nullptr) {
        return Event::kNone;
      }
      task->tseq = msg.tseq;
      task->runnable = true;
      task->became_runnable = msg.posted;
      task->last_cpu = msg.cpu;
      task->assigned_cpu = -1;
      *out = task;
      return Event::kRunnable;
    case MessageType::kTaskBlocked:
      if (task == nullptr) {
        return Event::kNone;
      }
      task->tseq = msg.tseq;
      task->runnable = false;
      task->last_cpu = msg.cpu;
      task->assigned_cpu = -1;
      *out = task;
      return Event::kBlocked;
    case MessageType::kTaskDead:
    case MessageType::kTaskDeparted:
      if (task == nullptr) {
        return Event::kNone;
      }
      *out = task;  // caller cleans up `user`, then calls Remove()
      return Event::kDead;
    case MessageType::kTaskAffinity:
      if (task == nullptr) {
        return Event::kNone;
      }
      task->tseq = msg.tseq;
      task->affinity = msg.affinity;
      *out = task;
      return Event::kAffinity;
    case MessageType::kTimerTick:
    case MessageType::kAgentWakeup:
      return Event::kNone;
  }
  return Event::kNone;
}

}  // namespace gs
