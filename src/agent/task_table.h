// TaskTable: message-driven bookkeeping of thread state in userspace.
//
// This is the core of the paper's "ghOSt Userspace Support Library"
// (Table 2): policies consume the kernel's message stream and need a
// consistent per-thread view (runnable? where did it run? latest Tseq?).
// Policies attach their own state via the `user` pointer and react to
// transitions through the Apply() result.
#ifndef GHOST_SIM_SRC_AGENT_TASK_TABLE_H_
#define GHOST_SIM_SRC_AGENT_TASK_TABLE_H_

#include <cstdint>
#include <vector>

#include "src/base/cpumask.h"
#include "src/base/flat_map.h"
#include "src/base/slab.h"
#include "src/base/time.h"
#include "src/ghost/message.h"

namespace gs {

// The policy's view of one managed thread.
struct PolicyTask {
  int64_t tid = 0;
  bool runnable = false;
  // Policy's belief: scheduled on this CPU (set by the policy on a committed
  // transaction, cleared when a BLOCKED/PREEMPTED/YIELD/DEAD message lands).
  int assigned_cpu = -1;
  int last_cpu = -1;  // where it last ran, for locality decisions
  uint32_t tseq = 0;  // latest sequence number seen
  CpuMask affinity;
  Time became_runnable = 0;
  // Common policy bookkeeping: is the task sitting in a policy runqueue, and
  // which priority tier does it belong to (0 = latency-critical).
  bool queued = false;
  int tier = 0;
  // Key under which a MinRunqueue currently holds this task (written by
  // MinRunqueue::Push, meaningful only while queued): lets Remove binary-
  // search the flat queue instead of keeping a side map.
  int64_t rq_key = 0;
  // Policy-specific payload (e.g. deadlines, per-query state).
  void* user = nullptr;
};

class TaskTable {
 public:
  enum class Event {
    kNone,        // CPU message or unknown thread
    kNew,         // thread joined (possibly already runnable)
    kRunnable,    // thread became runnable (wakeup / preempted / yielded)
    kBlocked,     // thread blocked
    kDead,        // thread died or departed
    kAffinity,    // affinity changed (still in whatever state it was)
  };

  // Folds a message into the table. `*out` receives the affected task
  // (nullptr for CPU messages / already-dead threads).
  Event Apply(const Message& msg, PolicyTask** out);

  // Policies call Find once per message and per commit attempt — tens of
  // millions of times in a bench run — so the table is a flat hash over a
  // slab rather than a std::map of unique_ptrs.
  PolicyTask* Find(int64_t tid) {
    PolicyTask** slot = by_tid_.Find(tid);
    return slot == nullptr ? nullptr : *slot;
  }
  PolicyTask* Add(int64_t tid);  // for Restore() paths
  void Remove(int64_t tid);
  // All tracked tids, sorted ascending (deterministic iteration for
  // Restore()-style reconciliation against a TaskDump).
  std::vector<int64_t> SortedTids() const;
  // Drops every entry (Restore()/resync paths rebuild from a TaskDump).
  // Callers must first clear any runqueues holding PolicyTask pointers.
  void Clear() {
    by_tid_.Clear();
    slab_.Clear();
  }
  size_t size() const { return by_tid_.size(); }

 private:
  Slab<PolicyTask> slab_;
  TidMap<PolicyTask*> by_tid_;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_AGENT_TASK_TABLE_H_
