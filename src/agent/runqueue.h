// Userspace runqueues for policies.
//
// FifoRunqueue backs the Shinjuku/Snap-style FIFO policies (Fig 3/4);
// MinRunqueue is an ordered queue keyed by a policy-chosen value — elapsed
// runtime for the Google Search policy's min-heap (§4.4), deadlines for the
// EDF secure-VM policy (§4.5).
#ifndef GHOST_SIM_SRC_AGENT_RUNQUEUE_H_
#define GHOST_SIM_SRC_AGENT_RUNQUEUE_H_

#include <deque>
#include <set>

#include "src/agent/task_table.h"
#include "src/base/logging.h"

namespace gs {

class FifoRunqueue {
 public:
  void Push(PolicyTask* task) { queue_.push_back(task); }
  void PushFront(PolicyTask* task) { queue_.push_front(task); }

  PolicyTask* Pop() {
    if (queue_.empty()) {
      return nullptr;
    }
    PolicyTask* task = queue_.front();
    queue_.pop_front();
    return task;
  }

  PolicyTask* Peek() const { return queue_.empty() ? nullptr : queue_.front(); }

  // Removes a task wherever it sits (e.g. it blocked while queued).
  bool Remove(PolicyTask* task) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (*it == task) {
        queue_.erase(it);
        return true;
      }
    }
    return false;
  }

  size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }
  void Clear() { queue_.clear(); }

  // Rotation support for skip-and-revisit scans (the Search policy skips
  // threads whose preferred CPUs are busy and revisits them next loop).
  std::deque<PolicyTask*>& raw() { return queue_; }

 private:
  std::deque<PolicyTask*> queue_;
};

// Ordered runqueue: smallest key first; ties broken by tid for determinism.
class MinRunqueue {
 public:
  void Push(PolicyTask* task, int64_t key) {
    keys_[task] = key;
    queue_.insert({key, task});
  }

  PolicyTask* PopMin() {
    if (queue_.empty()) {
      return nullptr;
    }
    PolicyTask* task = queue_.begin()->second;
    queue_.erase(queue_.begin());
    keys_.erase(task);
    return task;
  }

  PolicyTask* PeekMin() const { return queue_.empty() ? nullptr : queue_.begin()->second; }

  bool Remove(PolicyTask* task) {
    auto it = keys_.find(task);
    if (it == keys_.end()) {
      return false;
    }
    const size_t erased = queue_.erase({it->second, task});
    CHECK_EQ(erased, 1u);
    keys_.erase(it);
    return true;
  }

  bool Contains(PolicyTask* task) const { return keys_.count(task) > 0; }
  size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }
  void Clear() {
    queue_.clear();
    keys_.clear();
  }

  // In-order iteration (skip-scan support).
  auto begin() const { return queue_.begin(); }
  auto end() const { return queue_.end(); }

 private:
  struct Less {
    bool operator()(const std::pair<int64_t, PolicyTask*>& a,
                    const std::pair<int64_t, PolicyTask*>& b) const {
      if (a.first != b.first) {
        return a.first < b.first;
      }
      return a.second->tid < b.second->tid;
    }
  };

  std::set<std::pair<int64_t, PolicyTask*>, Less> queue_;
  std::map<PolicyTask*, int64_t> keys_;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_AGENT_RUNQUEUE_H_
