// Userspace runqueues for policies.
//
// FifoRunqueue backs the Shinjuku/Snap-style FIFO policies (Fig 3/4);
// MinRunqueue is an ordered queue keyed by a policy-chosen value — elapsed
// runtime for the Google Search policy's min-heap (§4.4), deadlines for the
// EDF secure-VM policy (§4.5).
#ifndef GHOST_SIM_SRC_AGENT_RUNQUEUE_H_
#define GHOST_SIM_SRC_AGENT_RUNQUEUE_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "src/agent/task_table.h"
#include "src/base/logging.h"
#include "src/base/ring_deque.h"

namespace gs {

// Ring-backed: a std::deque oscillating around empty pays a chunk
// malloc/free every time its position crosses a block boundary, which showed
// up as the last steady-state allocations in tests/sim_alloc_test.
class FifoRunqueue {
 public:
  void Push(PolicyTask* task) { queue_.push_back(task); }
  void PushFront(PolicyTask* task) { queue_.push_front(task); }

  PolicyTask* Pop() {
    if (queue_.empty()) {
      return nullptr;
    }
    PolicyTask* task = queue_.front();
    queue_.pop_front();
    return task;
  }

  PolicyTask* Peek() const { return queue_.empty() ? nullptr : queue_.front(); }

  // Removes a task wherever it sits (e.g. it blocked while queued).
  bool Remove(PolicyTask* task) { return queue_.remove(task); }

  size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }
  void Clear() { queue_.clear(); }

  // Rotation support for skip-and-revisit scans (the Search policy skips
  // threads whose preferred CPUs are busy and revisits them next loop).
  RingDeque<PolicyTask*>& raw() { return queue_; }

 private:
  RingDeque<PolicyTask*> queue_;
};

// Ordered runqueue: smallest key first; ties broken by tid for determinism.
//
// Flat: one vector sorted descending by (key, tid), so the minimum lives at
// the back and PopMin is a pop_back. Push/Remove binary-search and memmove
// — contiguous 16-byte entries, no per-node heap traffic. The node churn of
// the previous std::set/std::map pair was the Search policy's hottest
// allocation site (two mallocs per enqueue, two frees per dispatch), and
// iteration order here is identical to what that std::set produced.
class MinRunqueue {
 public:
  void Push(PolicyTask* task, int64_t key) {
    task->rq_key = key;
    const Entry entry{key, task};
    queue_.insert(std::upper_bound(queue_.begin(), queue_.end(), entry, After),
                  entry);
  }

  PolicyTask* PopMin() {
    if (queue_.empty()) {
      return nullptr;
    }
    PolicyTask* task = queue_.back().second;
    queue_.pop_back();
    return task;
  }

  PolicyTask* PeekMin() const {
    return queue_.empty() ? nullptr : queue_.back().second;
  }

  bool Remove(PolicyTask* task) {
    const size_t index = IndexOf(task);
    if (index == queue_.size()) {
      return false;
    }
    queue_.erase(queue_.begin() + index);
    return true;
  }

  bool Contains(PolicyTask* task) const { return IndexOf(task) != queue_.size(); }
  size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }
  void Clear() { queue_.clear(); }

  // In-order iteration, smallest key first (skip-scan support).
  auto begin() const { return queue_.rbegin(); }
  auto end() const { return queue_.rend(); }

 private:
  using Entry = std::pair<int64_t, PolicyTask*>;

  // Descending (key, tid) — a strict total order since tids are unique.
  static bool After(const Entry& a, const Entry& b) {
    if (a.first != b.first) {
      return a.first > b.first;
    }
    return a.second->tid > b.second->tid;
  }

  // Index of `task`'s entry, or size() if absent. task->rq_key pins the
  // binary-search position; a stale key on an unqueued task just misses.
  size_t IndexOf(PolicyTask* task) const {
    const Entry probe{task->rq_key, task};
    auto it = std::lower_bound(queue_.begin(), queue_.end(), probe, After);
    if (it != queue_.end() && it->second == task) {
      return static_cast<size_t>(it - queue_.begin());
    }
    return queue_.size();
  }

  std::vector<Entry> queue_;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_AGENT_RUNQUEUE_H_
