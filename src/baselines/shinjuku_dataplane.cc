#include "src/baselines/shinjuku_dataplane.h"

namespace gs {

namespace {

// Self-rearming spin burst (replaces the leaky shared_ptr<std::function>
// self-capture; see BatchApp::SpinForever for the pattern).
void SpinForever(Kernel* kernel, Task* task) {
  kernel->StartBurst(task, Milliseconds(10), [kernel](Task* t) {
    SpinForever(kernel, t);
  });
}

}  // namespace

ShinjukuDataplane::ShinjukuDataplane(Kernel* kernel, AgentClass* agent_class,
                                     Options options)
    : kernel_(kernel), options_(std::move(options)) {
  worker_busy_.assign(options_.worker_cpus.size(), false);
  worker_request_.resize(options_.worker_cpus.size());

  // Pin never-preemptible spinners on every dataplane CPU: the machine's
  // other schedulers see these CPUs as permanently busy.
  std::vector<int> spin_cpus = options_.worker_cpus;
  spin_cpus.insert(spin_cpus.end(), options_.dispatcher_cpus.begin(),
                   options_.dispatcher_cpus.end());
  for (int cpu : spin_cpus) {
    Task* spinner = kernel_->CreateTask("shinjuku-spin/" + std::to_string(cpu),
                                        agent_class);
    agent_class->RegisterAgent(cpu, spinner);
    SpinForever(kernel_, spinner);
    kernel_->Wake(spinner);
  }
}

void ShinjukuDataplane::Submit(Time arrival, Duration service) {
  fifo_.push_back(Request{arrival, service});
  TryDispatch();
}

void ShinjukuDataplane::TryDispatch() {
  while (!fifo_.empty()) {
    int free_worker = -1;
    for (size_t w = 0; w < worker_busy_.size(); ++w) {
      if (!worker_busy_[w]) {
        free_worker = static_cast<int>(w);
        break;
      }
    }
    if (free_worker < 0) {
      return;
    }
    const Request request = fifo_.front();
    fifo_.pop_front();
    worker_busy_[free_worker] = true;
    kernel_->loop()->ScheduleAfter(options_.dispatch_cost, [this, free_worker, request] {
      RunSlice(free_worker, request);
    });
  }
}

void ShinjukuDataplane::RunSlice(int worker, Request request) {
  worker_request_[worker] = request;
  const Duration slice = std::min(request.remaining, options_.timeslice);
  kernel_->loop()->ScheduleAfter(slice, [this, worker] { OnSliceEnd(worker); });
}

void ShinjukuDataplane::OnSliceEnd(int worker) {
  Request& request = worker_request_[worker];
  request.remaining -= std::min(request.remaining, options_.timeslice);
  if (request.remaining == 0) {
    latency_.Add(kernel_->now() - request.arrival);
    ++completed_;
    worker_busy_[worker] = false;
    TryDispatch();
    return;
  }
  // Timeslice expired: preempt (posted interrupt) and rotate to the back of
  // the central FIFO.
  ++preemptions_;
  kernel_->loop()->ScheduleAfter(options_.preempt_cost, [this, worker] {
    fifo_.push_back(worker_request_[worker]);
    worker_busy_[worker] = false;
    TryDispatch();
  });
}

}  // namespace gs
