// Shinjuku dataplane baseline (Kaffes et al., NSDI'19) — the §4.2 comparison.
//
// The original Shinjuku is a specialized dataplane OS: a spinning dispatcher
// on a dedicated physical core assigns request *descriptors* (not threads) to
// spinning worker threads pinned to dedicated hyperthreads, preempting
// requests via posted interrupts after a timeslice. Because the workers spin,
// their CPUs are unavailable to anything else on the machine (Fig 6c: the
// batch app gets zero CPU under Shinjuku).
//
// The reproduction runs request dispatch at event level (descriptor passing
// costs ~100s of ns, far below thread scheduling) while pinning
// never-preemptible spinner tasks on the dataplane's CPUs so that the rest of
// the simulated machine correctly sees those CPUs as owned.
#ifndef GHOST_SIM_SRC_BASELINES_SHINJUKU_DATAPLANE_H_
#define GHOST_SIM_SRC_BASELINES_SHINJUKU_DATAPLANE_H_

#include <deque>
#include <vector>

#include "src/kernel/agent_class.h"
#include "src/kernel/kernel.h"
#include "src/workloads/latency_recorder.h"

namespace gs {

class ShinjukuDataplane {
 public:
  struct Options {
    std::vector<int> worker_cpus;      // spinning workers, one per CPU
    std::vector<int> dispatcher_cpus;  // the dispatcher's dedicated core
    Duration timeslice = Microseconds(30);
    // Descriptor hand-off from dispatcher to worker (shared-memory queue).
    Duration dispatch_cost = Nanoseconds(150);
    // Posted-interrupt preemption + context save/restore.
    Duration preempt_cost = Nanoseconds(1000);
  };

  // `agent_class` hosts the spinners so nothing can preempt them (the
  // dataplane owns its cores outright, like Dune/VT-x in the original).
  ShinjukuDataplane(Kernel* kernel, AgentClass* agent_class, Options options);

  // Request arrival.
  void Submit(Time arrival, Duration service);

  LatencyRecorder& latency() { return latency_; }
  int64_t completed() const { return completed_; }
  uint64_t preemptions() const { return preemptions_; }
  size_t queue_depth() const { return fifo_.size(); }

 private:
  struct Request {
    Time arrival = 0;
    Duration remaining = 0;
  };

  void TryDispatch();
  void RunSlice(int worker, Request request);
  void OnSliceEnd(int worker);

  Kernel* kernel_;
  Options options_;
  std::deque<Request> fifo_;
  std::vector<bool> worker_busy_;
  std::vector<Request> worker_request_;
  LatencyRecorder latency_;
  int64_t completed_ = 0;
  uint64_t preemptions_ = 0;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_BASELINES_SHINJUKU_DATAPLANE_H_
