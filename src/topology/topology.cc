#include "src/topology/topology.h"

#include <utility>

#include "src/base/logging.h"

namespace gs {

const char* ToString(PlacementDistance distance) {
  switch (distance) {
    case PlacementDistance::kSameCpu:
      return "same-cpu";
    case PlacementDistance::kSameCore:
      return "same-core";
    case PlacementDistance::kSameCcx:
      return "same-ccx";
    case PlacementDistance::kSameNuma:
      return "same-numa";
    case PlacementDistance::kCrossNuma:
      return "cross-numa";
  }
  return "?";
}

Topology Topology::Make(std::string name, int sockets, int cores_per_socket, int smt,
                        int cores_per_ccx) {
  CHECK_GE(sockets, 1);
  CHECK_GE(cores_per_socket, 1);
  CHECK(smt == 1 || smt == 2) << "only SMT1/SMT2 supported";
  CHECK_GE(cores_per_ccx, 1);
  CHECK_EQ(cores_per_socket % cores_per_ccx, 0)
      << "cores_per_ccx must divide cores_per_socket";

  Topology topo;
  topo.name_ = std::move(name);
  topo.smt_ = smt;
  topo.num_cores_ = sockets * cores_per_socket;
  topo.num_numa_nodes_ = sockets;
  topo.num_ccxs_ = topo.num_cores_ / cores_per_ccx;

  const int num_cpus = topo.num_cores_ * smt;
  CHECK_LE(num_cpus, CpuMask::kMaxCpus);
  topo.cpus_.resize(num_cpus);

  for (int core = 0; core < topo.num_cores_; ++core) {
    const int socket = core / cores_per_socket;
    const int ccx = core / cores_per_ccx;
    for (int t = 0; t < smt; ++t) {
      const int id = core + t * topo.num_cores_;
      CpuInfo& info = topo.cpus_[id];
      info.id = id;
      info.core = core;
      info.smt_index = t;
      info.sibling = smt == 2 ? (t == 0 ? id + topo.num_cores_ : id - topo.num_cores_) : -1;
      info.ccx = ccx;
      info.numa = socket;
    }
  }
  topo.BuildMaskCaches();
  return topo;
}

void Topology::BuildMaskCaches() {
  core_masks_.assign(num_cores_, CpuMask());
  ccx_masks_.assign(num_ccxs_, CpuMask());
  numa_masks_.assign(num_numa_nodes_, CpuMask());
  for (const CpuInfo& info : cpus_) {
    core_masks_[info.core].Set(info.id);
    ccx_masks_[info.ccx].Set(info.id);
    numa_masks_[info.numa].Set(info.id);
  }
}

Topology Topology::IntelSkylake112() {
  // Xeon Platinum 8173M: one L3 per socket, so CCX == socket.
  return Make("skylake-112", /*sockets=*/2, /*cores_per_socket=*/28, /*smt=*/2,
              /*cores_per_ccx=*/28);
}

Topology Topology::IntelHaswell72() {
  return Make("haswell-72", /*sockets=*/2, /*cores_per_socket=*/18, /*smt=*/2,
              /*cores_per_ccx=*/18);
}

Topology Topology::IntelE5_24() {
  // §4.2 uses a single socket of a 2-socket E5-2658: 12 cores, 24 CPUs.
  return Make("e5-24", /*sockets=*/1, /*cores_per_socket=*/12, /*smt=*/2, /*cores_per_ccx=*/12);
}

Topology Topology::AmdRome256() {
  // 2 sockets x 64 cores, clustered in 4-core CCXs each with its own L3 (§4.4).
  return Make("rome-256", /*sockets=*/2, /*cores_per_socket=*/64, /*smt=*/2,
              /*cores_per_ccx=*/4);
}

const CpuInfo& Topology::cpu(int id) const {
  CHECK_GE(id, 0);
  CHECK_LT(id, num_cpus());
  return cpus_[id];
}

const CpuMask& Topology::CoreMask(int core) const {
  DCHECK_GE(core, 0);
  DCHECK_LT(core, static_cast<int>(core_masks_.size()));
  return core_masks_[core];
}

const CpuMask& Topology::CcxMask(int ccx) const {
  DCHECK_GE(ccx, 0);
  DCHECK_LT(ccx, static_cast<int>(ccx_masks_.size()));
  return ccx_masks_[ccx];
}

const CpuMask& Topology::NumaMask(int numa) const {
  DCHECK_GE(numa, 0);
  DCHECK_LT(numa, static_cast<int>(numa_masks_.size()));
  return numa_masks_[numa];
}

PlacementDistance Topology::Distance(int from_cpu, int to_cpu) const {
  const CpuInfo& a = cpu(from_cpu);
  const CpuInfo& b = cpu(to_cpu);
  if (a.id == b.id) {
    return PlacementDistance::kSameCpu;
  }
  if (a.core == b.core) {
    return PlacementDistance::kSameCore;
  }
  if (a.ccx == b.ccx) {
    return PlacementDistance::kSameCcx;
  }
  if (a.numa == b.numa) {
    return PlacementDistance::kSameNuma;
  }
  return PlacementDistance::kCrossNuma;
}

}  // namespace gs
