// Machine topology model: logical CPUs, SMT siblings, physical cores,
// CCX/L3 complexes, and NUMA sockets.
//
// The ghOSt paper's experiments span four machines (2-socket Skylake and
// Haswell Xeons, a single-socket E5 v4, and a 2-socket AMD Rome part with
// 256 CPUs and 4-core CCXs). Scheduling policies query this model the same
// way the paper's agents parse sysfs at startup (§4.4): siblings for SMT
// decisions, CCX masks for L3 locality, NUMA masks and distances for
// placement, plus a placement-distance lattice used by cache-warmth models.
#ifndef GHOST_SIM_SRC_TOPOLOGY_TOPOLOGY_H_
#define GHOST_SIM_SRC_TOPOLOGY_TOPOLOGY_H_

#include <string>
#include <vector>

#include "src/base/cpumask.h"

namespace gs {

// How "far" a destination CPU is from where a task last ran; the Search
// policy (§4.4) searches these tiers inside-out.
enum class PlacementDistance {
  kSameCpu = 0,
  kSameCore = 1,   // SMT sibling: shares L1/L2
  kSameCcx = 2,    // shares L3
  kSameNuma = 3,   // same socket, different L3
  kCrossNuma = 4,  // remote socket
};

const char* ToString(PlacementDistance distance);

struct CpuInfo {
  int id = -1;
  int core = -1;       // physical core index (machine-wide)
  int smt_index = -1;  // 0 = primary hyperthread, 1 = secondary
  int sibling = -1;    // other logical CPU on the same core; -1 if SMT off
  int ccx = -1;        // L3 complex index (machine-wide)
  int numa = -1;       // NUMA node / socket
};

class Topology {
 public:
  // Generic builder. Logical CPU enumeration follows the common Linux x86
  // convention: CPUs [0, num_cores) are the primary hyperthreads (socket-major
  // order) and CPUs [num_cores, 2*num_cores) are their SMT siblings.
  static Topology Make(std::string name, int sockets, int cores_per_socket, int smt,
                       int cores_per_ccx);

  // The paper's machines.
  static Topology IntelSkylake112();  // §4.1, §4.3, §4.5: 2s x 28c x 2t
  static Topology IntelHaswell72();   // Fig 5: 2s x 18c x 2t
  static Topology IntelE5_24();       // §4.2: single socket of E5-2658, 12c x 2t
  static Topology AmdRome256();       // §4.4: 2s x 64c x 2t, 4-core CCXs

  const std::string& name() const { return name_; }
  int num_cpus() const { return static_cast<int>(cpus_.size()); }
  int num_cores() const { return num_cores_; }
  int num_ccxs() const { return num_ccxs_; }
  int num_numa_nodes() const { return num_numa_nodes_; }
  int smt() const { return smt_; }

  const CpuInfo& cpu(int id) const;
  const std::vector<CpuInfo>& cpus() const { return cpus_; }

  CpuMask AllCpus() const { return CpuMask::AllUpTo(num_cpus()); }
  // Cached per-tier masks (built once at construction): placement policies
  // call these inside per-task scan loops, so a rebuild-by-scanning-every-CPU
  // implementation dominated the Search policy's profile.
  const CpuMask& CoreMask(int core) const;
  const CpuMask& CcxMask(int ccx) const;
  const CpuMask& NumaMask(int numa) const;

  PlacementDistance Distance(int from_cpu, int to_cpu) const;

  // Relative NUMA distance in the style of the SLIT table: 10 local, 21 remote.
  int NumaDistance(int from_node, int to_node) const { return from_node == to_node ? 10 : 21; }

 private:
  Topology() = default;

  // Fills core_masks_/ccx_masks_/numa_masks_ from cpus_.
  void BuildMaskCaches();

  std::string name_;
  int smt_ = 1;
  int num_cores_ = 0;
  int num_ccxs_ = 0;
  int num_numa_nodes_ = 0;
  std::vector<CpuInfo> cpus_;
  std::vector<CpuMask> core_masks_;
  std::vector<CpuMask> ccx_masks_;
  std::vector<CpuMask> numa_masks_;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_TOPOLOGY_TOPOLOGY_H_
