// Work-stealing per-CPU policy: the §3.1 load-balancing pattern.
//
// From the paper: "to enable load-balancing and work-stealing between CPUs,
// agents can change the routing of messages from threads to queues via
// ASSOCIATE_QUEUE(). It is up to the agent implementation (in userspace) to
// properly coordinate the message routing across queues to agents. If a
// thread has its association change from one queue to another while there are
// pending messages in the original queue, the association operation will
// fail. In that case, the agent must drain the original queue before
// re-issuing ASSOCIATE_QUEUE()."
//
// This policy extends the per-CPU FIFO model with exactly that protocol: an
// agent whose runqueue is empty steals the longest-waiting thread from the
// most loaded sibling runqueue (all agents share the process address space,
// so runqueues are visible), re-associates the thread's queue — retrying
// after a drain when the association fails — and runs it locally.
#ifndef GHOST_SIM_SRC_POLICIES_WORK_STEALING_H_
#define GHOST_SIM_SRC_POLICIES_WORK_STEALING_H_

#include <map>
#include <vector>

#include "src/agent/agent_context.h"
#include "src/agent/agent_process.h"
#include "src/agent/policy.h"
#include "src/agent/sdk/runqueue.h"
#include "src/agent/task_table.h"

namespace gs {

class WorkStealingPolicy : public Policy {
 public:
  const char* name() const override { return "work-stealing"; }
  void Attached(AgentProcess* process, Enclave* enclave, Kernel* kernel) override;
  void Restore(const std::vector<Enclave::TaskInfo>& dump) override;
  AgentAction RunAgent(AgentContext& ctx) override;

  uint64_t scheduled() const { return scheduled_; }
  uint64_t steals() const { return steals_; }
  uint64_t association_retries() const { return association_retries_; }
  size_t QueueDepth(int cpu) const;
  int RunqueueDepth() const override {
    int total = 0;
    for (const auto& [cpu, sched] : cpus_) {
      total += static_cast<int>(sched.runqueue.size());
    }
    return total;
  }

 private:
  struct CpuSched {
    MessageQueue* queue = nullptr;
    FifoRunqueue runqueue;
  };

  void HandleMessage(AgentContext& ctx, int cpu, const Message& msg);
  void NotifyAgent(AgentContext& ctx, int cpu);
  int NextHomeCpu();
  // Steals the longest-waiting thread from the deepest sibling runqueue into
  // `thief_cpu`'s, re-associating its message queue per §3.1. Returns the
  // stolen task or nullptr.
  PolicyTask* TrySteal(AgentContext& ctx, int thief_cpu);

  Enclave* enclave_ = nullptr;
  AgentProcess* process_ = nullptr;
  TaskTable table_;
  std::map<int, CpuSched> cpus_;
  std::map<int64_t, int> home_cpu_;
  std::vector<int> cpu_list_;
  size_t rr_next_ = 0;
  int boss_cpu_ = -1;
  std::vector<Message> scratch_msgs_;

  uint64_t scheduled_ = 0;
  uint64_t steals_ = 0;
  uint64_t association_retries_ = 0;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_POLICIES_WORK_STEALING_H_
