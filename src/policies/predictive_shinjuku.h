// Predictive Shinjuku: centralized request scheduling that routes
// predicted-long requests Shinjuku-style without paying the preemption
// probe (ROADMAP item 4, the KernelOracle direction).
//
// Probe-based Shinjuku (centralized_fifo.cc) cannot tell a 10 µs request
// from a 10 ms one, so it arms a 30 µs timer whenever anything is queued
// and rotates whatever is running — which mostly means preempting long
// requests over and over, and preempting them even when idle CPUs could
// have served the waiters. This policy uses a per-tid Markov service-time
// predictor (src/predict/) to classify each wakeup as short or long up
// front and exploits the classification three ways:
//
//  * Predicted-short requests run to completion: no probe timer fires for
//    them, and the agent arms a wakeup only for the backstop below.
//  * Predicted-long requests go to a separate long lane that only gets a
//    CPU when no short is waiting, and a running long is preempted only
//    when a waiter exists AND no idle CPU could serve it — the two
//    conditions probe-Shinjuku never checks.
//  * Mispredicted shorts (a long classified short) are caught by a
//    backstop: each predicted-short dispatch carries an overrun allowance
//    (predicted * multiplier, floored); exceeding it demotes the task to
//    the long lane and rotates it out. The backstop is the price of
//    skipping the probe — a mispredicted long runs unpreempted slightly
//    longer than 30 µs, once, and is long-lane forever after.
//
// Service times are observed exactly from status-word runtime deltas
// (wakeup to block), so preemptions in the middle of a request do not
// corrupt the training signal.
//
// SDK consumer: DispatchPolicy hooks + FifoRunqueue lanes + the
// NextSliceWakeup arming helper. Tier-1 batch threads (Shenango-style) sit
// in a third lane below both request lanes and are preempted on demand.
#ifndef GHOST_SIM_SRC_POLICIES_PREDICTIVE_SHINJUKU_H_
#define GHOST_SIM_SRC_POLICIES_PREDICTIVE_SHINJUKU_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/agent/agent_context.h"
#include "src/agent/sdk/sdk.h"
#include "src/predict/estimators.h"

namespace gs {

class PredictiveShinjukuPolicy : public DispatchPolicy {
 public:
  struct Options {
    // CPU hosting the global agent. -1 = first enclave CPU.
    int global_cpu = -1;
    // Predicted service at or above this is routed to the long lane.
    // Scenario key: policy.long_threshold_us.
    Duration long_threshold = Microseconds(100);
    // Slice for rotating long-lane (and demoted) tasks when someone waits;
    // the Shinjuku 30 µs. Scenario key: policy.timeslice_us.
    Duration rotation_slice = Microseconds(30);
    // Backstop allowance for predicted-shorts: predicted * multiplier,
    // floored at min_backstop. Scenario key: policy.backstop_multiplier.
    int backstop_multiplier = 4;
    Duration min_backstop = Microseconds(20);
    // Maps tid -> tier (0 latency-critical, 1 batch). Default: everything 0.
    std::function<int(int64_t)> tier_of;
    bool use_tseq = true;
    predict::ServiceTimePredictor::Options predictor;
  };

  PredictiveShinjukuPolicy() : PredictiveShinjukuPolicy(Options()) {}
  explicit PredictiveShinjukuPolicy(Options options);

  const char* name() const override { return "predictive-shinjuku"; }
  void Attached(AgentProcess* process, Enclave* enclave, Kernel* kernel) override;
  void Restore(const std::vector<Enclave::TaskInfo>& dump) override;

  // Statistics.
  uint64_t scheduled() const { return scheduled_; }
  uint64_t preemptions() const { return preemptions_; }
  uint64_t txn_failures() const { return txn_failures_; }
  uint64_t hot_handoffs() const { return hot_handoffs_; }
  uint64_t predicted_short() const { return predicted_short_; }
  uint64_t predicted_long() const { return predicted_long_; }
  uint64_t backstop_demotions() const { return backstop_demotions_; }
  int global_cpu() const { return global_cpu_; }
  size_t queue_depth() const {
    return lanes_[0].size() + lanes_[1].size() + lanes_[2].size();
  }
  int RunqueueDepth() const override { return static_cast<int>(queue_depth()); }
  const predict::ServiceTimePredictor& predictor() const { return predictor_; }

 protected:
  void CollectQueues(AgentContext& ctx, std::vector<MessageQueue*>* queues) override;
  AgentAction Schedule(AgentContext& ctx) override;
  void TaskNew(AgentContext& ctx, PolicyTask* task, const Message& msg) override;
  void TaskWakeup(AgentContext& ctx, PolicyTask* task, const Message& msg) override;
  void TaskPreempted(AgentContext& ctx, PolicyTask* task, const Message& msg) override;
  void TaskYield(AgentContext& ctx, PolicyTask* task, const Message& msg) override;
  void TaskBlocked(AgentContext& ctx, PolicyTask* task, const Message& msg) override;
  void TaskDead(AgentContext& ctx, PolicyTask* task, const Message& msg) override;
  void TaskDeparted(AgentContext& ctx, PolicyTask* task, const Message& msg) override;

 private:
  // Lanes, in strict dispatch-priority order.
  enum Lane { kShort = 0, kLong = 1, kBatch = 2, kNumLanes = 3 };

  // Per-task predictive state, owned here and linked from PolicyTask::user.
  struct PredTask {
    int lane = kShort;
    // Status-word runtime at the start of the current service interval;
    // the delta at block time is the exact observed service.
    int64_t wake_runtime = 0;
    // Overrun allowance for this dispatch (backstop for shorts, rotation
    // slice for longs/batch).
    Duration allowance = 0;
    int on_cpu = -1;  // policy belief, for running_[] upkeep
  };

  struct Running {
    PolicyTask* task = nullptr;
    Time since = 0;
  };

  PredTask& StateOf(PolicyTask* task) {
    return *static_cast<PredTask*>(task->user);
  }
  PredTask& AttachState(PolicyTask* task);
  // Classifies the upcoming service interval and records the training
  // baseline from the status word.
  void ClassifyWakeup(AgentContext& ctx, PolicyTask* task);
  void ObserveService(AgentContext& ctx, PolicyTask* task);
  void Enqueue(PolicyTask* task, bool front);
  void Dequeue(PolicyTask* task);
  void ClearRunning(PolicyTask* task);
  PolicyTask* PopNext();
  PolicyTask* PopRequestLane();  // short then long, never batch

  Options options_;
  Enclave* enclave_ = nullptr;
  AgentProcess* process_ = nullptr;
  int global_cpu_ = -1;

  predict::ServiceTimePredictor predictor_;
  FifoRunqueue lanes_[kNumLanes];
  std::vector<Running> running_;  // dense cpu -> policy belief
  std::map<int64_t, PredTask> states_;
  // Per-iteration scratch, reused so the steady-state loop never mallocs.
  std::vector<std::pair<int, PolicyTask*>> assignments_scratch_;
  std::vector<Transaction> txn_storage_scratch_;
  std::vector<Transaction*> txn_ptrs_scratch_;

  uint64_t scheduled_ = 0;
  uint64_t preemptions_ = 0;
  uint64_t txn_failures_ = 0;
  uint64_t hot_handoffs_ = 0;
  uint64_t predicted_short_ = 0;
  uint64_t predicted_long_ = 0;
  uint64_t backstop_demotions_ = 0;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_POLICIES_PREDICTIVE_SHINJUKU_H_
