#include "src/policies/factory.h"

#include <algorithm>
#include <utility>

#include "src/base/logging.h"
#include "src/policies/ab_test_policy.h"
#include "src/policies/o1.h"
#include "src/policies/per_cpu_fifo.h"
#include "src/policies/predictive_shinjuku.h"
#include "src/policies/search.h"
#include "src/policies/shinjuku.h"
#include "src/policies/vm_core_sched.h"

namespace gs {
namespace {

Duration FromUs(double us) { return static_cast<Duration>(us * 1e3); }
Duration FromMs(double ms) { return static_cast<Duration>(ms * 1e6); }

int GlobalCpu(const scenario::PolicySpec& spec, const PolicyEnv& env) {
  return spec.global_cpu >= 0 ? spec.global_cpu : env.default_global_cpu;
}

std::function<int(int64_t)> TierOf(const PolicyEnv& env) {
  if (env.tier_of) {
    return env.tier_of;
  }
  return [](int64_t) { return 0; };
}

using Builder = std::unique_ptr<Policy> (*)(const scenario::PolicySpec&,
                                            const PolicyEnv&);

struct Entry {
  const char* kind;
  Builder build;
};

// The registration table: one row per scenario-selectable kind, in the order
// the PolicySpec documentation lists them. o1 and the centralized family
// register identically — a kind name and a builder over (spec, env).
constexpr Entry kBuilders[] = {
    {"centralized_fifo",
     [](const scenario::PolicySpec& spec, const PolicyEnv& env) {
       CentralizedFifoPolicy::Options o;
       o.global_cpu = GlobalCpu(spec, env);
       o.preemption_timeslice = FromUs(spec.timeslice_us);
       return std::unique_ptr<Policy>(std::make_unique<CentralizedFifoPolicy>(o));
     }},
    {"shinjuku",
     [](const scenario::PolicySpec& spec, const PolicyEnv& env) {
       return std::unique_ptr<Policy>(
           MakeShinjukuPolicy(FromUs(spec.timeslice_us), GlobalCpu(spec, env),
                              FromUs(spec.probe_interval_us)));
     }},
    {"shinjuku_shenango",
     [](const scenario::PolicySpec& spec, const PolicyEnv& env) {
       return std::unique_ptr<Policy>(MakeShinjukuShenangoPolicy(
           FromUs(spec.timeslice_us), TierOf(env), GlobalCpu(spec, env),
           FromUs(spec.probe_interval_us)));
     }},
    {"snap",
     [](const scenario::PolicySpec& spec, const PolicyEnv& env) {
       return std::unique_ptr<Policy>(
           MakeSnapPolicy(TierOf(env), GlobalCpu(spec, env)));
     }},
    {"per_cpu_fifo",
     [](const scenario::PolicySpec&, const PolicyEnv&) {
       return std::unique_ptr<Policy>(std::make_unique<PerCpuFifoPolicy>());
     }},
    {"o1",
     [](const scenario::PolicySpec& spec, const PolicyEnv& env) {
       O1Policy::Options o;
       o.num_priorities = spec.num_priorities;
       o.base_timeslice = FromMs(spec.base_timeslice_ms);
       o.min_timeslice = FromMs(spec.min_timeslice_ms);
       const std::function<int(int64_t)> tier = TierOf(env);
       const int worker_prio = spec.worker_priority;
       const int antagonist_prio = spec.antagonist_priority;
       o.priority_of = [tier, worker_prio, antagonist_prio](int64_t tid) {
         return tier(tid) != 0 ? antagonist_prio : worker_prio;
       };
       return std::unique_ptr<Policy>(std::make_unique<O1Policy>(o));
     }},
    {"search",
     [](const scenario::PolicySpec& spec, const PolicyEnv& env) {
       SearchPolicy::Options o;
       o.global_cpu = GlobalCpu(spec, env);
       return std::unique_ptr<Policy>(std::make_unique<SearchPolicy>(o));
     }},
    {"predictive_search",
     [](const scenario::PolicySpec& spec, const PolicyEnv& env) {
       SearchPolicy::Options o;
       o.global_cpu = GlobalCpu(spec, env);
       o.predictive_placement = true;
       return std::unique_ptr<Policy>(std::make_unique<SearchPolicy>(o));
     }},
    {"predictive_shinjuku",
     [](const scenario::PolicySpec& spec, const PolicyEnv& env) {
       PredictiveShinjukuPolicy::Options o;
       o.global_cpu = GlobalCpu(spec, env);
       o.rotation_slice = FromUs(spec.timeslice_us);
       o.long_threshold = FromUs(spec.long_threshold_us);
       o.backstop_multiplier = spec.backstop_multiplier;
       o.tier_of = TierOf(env);
       return std::unique_ptr<Policy>(
           std::make_unique<PredictiveShinjukuPolicy>(o));
     }},
    {"ab_test",
     [](const scenario::PolicySpec&, const PolicyEnv& env) {
       AbTestPolicy::Options o;
       if (env.ab_test != nullptr) {
         o.canary_percent = env.ab_test->canary.percent;
         o.canary_lifo = env.ab_test->canary.lifo;
       }
       return std::unique_ptr<Policy>(std::make_unique<AbTestPolicy>(o));
     }},
    {"vm_core_sched",
     [](const scenario::PolicySpec& spec, const PolicyEnv& env) {
       CHECK(env.cookie_of != nullptr)
           << "vm_core_sched needs PolicyEnv::cookie_of (a vm workload)";
       VmCoreSchedPolicy::Options o;
       o.global_cpu = GlobalCpu(spec, env);
       o.slice = FromMs(spec.vm_slice_ms);
       o.cookie_of = env.cookie_of;
       return std::unique_ptr<Policy>(std::make_unique<VmCoreSchedPolicy>(o));
     }},
};

}  // namespace

std::vector<std::string> RegisteredPolicyKinds() {
  std::vector<std::string> kinds;
  for (const Entry& entry : kBuilders) {
    kinds.push_back(entry.kind);
  }
  std::sort(kinds.begin(), kinds.end());
  return kinds;
}

bool HasPolicyKind(const std::string& kind) {
  for (const Entry& entry : kBuilders) {
    if (kind == entry.kind) {
      return true;
    }
  }
  return false;
}

std::unique_ptr<Policy> MakeScenarioPolicy(const scenario::PolicySpec& spec,
                                           const PolicyEnv& env) {
  CHECK(spec.kind != "cfs") << "\"cfs\" selects the kernel default class; "
                               "there is no agent policy to build";
  for (const Entry& entry : kBuilders) {
    if (spec.kind == entry.kind) {
      return entry.build(spec, env);
    }
  }
  LOG(FATAL) << "unknown policy kind \"" << spec.kind << "\"";
  return nullptr;
}

}  // namespace gs
