#include "src/policies/search.h"

#include <algorithm>

namespace gs {

SearchPolicy::SearchPolicy(Options options)
    : options_(options),
      placer_(TieredPlacer::Options{
          .ccx_aware = options.ccx_aware,
          .max_pending_before_migrate = options.max_pending_before_migrate}) {}

void SearchPolicy::Attached(AgentProcess* process, Enclave* enclave, Kernel* kernel) {
  enclave_ = enclave;
  kernel_ = kernel;
  placer_.Attach(kernel);
  global_cpu_ = options_.global_cpu >= 0 ? options_.global_cpu : enclave->cpus().First();
}

void SearchPolicy::Restore(const std::vector<Enclave::TaskInfo>& dump) {
  // Full view replacement (also the overflow-resync path).
  runqueue_.Clear();
  table_.Clear();
  for (const Enclave::TaskInfo& info : dump) {
    enclave_->AssociateQueue(info.tid, enclave_->default_queue());
    PolicyTask* task = table_.Add(info.tid);
    task->tseq = info.tseq;
    task->affinity = info.affinity;
    task->runnable = info.runnable;
    if (info.on_cpu) {
      task->assigned_cpu = info.cpu;
    } else if (info.runnable) {
      task->queued = true;
      runqueue_.Push(task, 0);
    }
  }
}

void SearchPolicy::EnqueueRunnable(AgentContext& ctx, PolicyTask* task) {
  if (task->queued) {
    return;
  }
  // Min-heap key: elapsed runtime, read from the thread's status word.
  // A sleeper floor (as in CFS's min_vruntime placement) bounds how much
  // credit a rarely-running thread can carry, so long-living workers
  // (query type C) are not starved behind a stream of short-runtime wakers.
  const TaskStatusWord* status = ctx.ReadStatus(task->tid);
  int64_t runtime = status != nullptr ? status->runtime : 0;
  max_runtime_seen_ = std::max(max_runtime_seen_, runtime);
  runtime = std::max(runtime, max_runtime_seen_ - sleeper_window_);
  // The wakeup is the train point: each wakeup's eventual CCX accumulates
  // into the tid's frequency table, so Predict() tracks the modal home.
  if (options_.predictive_placement && task->last_cpu >= 0) {
    affinity_.Observe(task->tid, kernel_->topology().cpu(task->last_cpu).ccx);
  }
  task->queued = true;
  runqueue_.Push(task, runtime);
}

void SearchPolicy::HandleMessage(AgentContext& ctx, const Message& msg) {
  PolicyTask* task = nullptr;
  switch (table_.Apply(msg, &task)) {
    case TaskTable::Event::kNew:
      if (task->runnable) {
        EnqueueRunnable(ctx, task);
      }
      break;
    case TaskTable::Event::kRunnable:
      EnqueueRunnable(ctx, task);
      break;
    case TaskTable::Event::kBlocked:
      if (task->queued) {
        runqueue_.Remove(task);
        task->queued = false;
      }
      break;
    case TaskTable::Event::kDead:
      if (task->queued) {
        runqueue_.Remove(task);
      }
      if (options_.predictive_placement) {
        affinity_.Forget(msg.tid);
      }
      table_.Remove(msg.tid);
      break;
    case TaskTable::Event::kAffinity:
    case TaskTable::Event::kNone:
      break;
  }
}

AgentAction SearchPolicy::RunAgent(AgentContext& ctx) {
  if (ctx.agent_cpu() != global_cpu_) {
    return AgentAction::kBlock;
  }
  bool progress = false;

  scratch_msgs_.clear();
  if (ctx.Drain(enclave_->default_queue(), &scratch_msgs_) > 0) {
    progress = true;
  }
  for (const Message& msg : scratch_msgs_) {
    HandleMessage(ctx, msg);
  }

  CpuMask avail = ctx.AvailableCpus();
  std::vector<std::pair<int, PolicyTask*>>& assignments = scratch_assignments_;
  assignments.clear();
  // Walk the min-heap in runtime order; skip threads whose preferred CPUs
  // are busy and revisit them on the next loop iteration (§4.4). The copy
  // exists because the loop removes dispatched tasks from the runqueue.
  scratch_ordered_.assign(runqueue_.begin(), runqueue_.end());
  for (auto& [key, task] : scratch_ordered_) {
    if (avail.Empty()) {
      break;
    }
    ctx.Charge(kernel_->cost().agent_per_task_scan);
    const CpuMask candidates = avail & task->affinity;
    if (candidates.Empty()) {
      continue;  // revisit next iteration
    }
    PlacementHint hint;
    if (options_.predictive_placement) {
      hint.ccx = affinity_.Predict(task->tid);
    }
    const int cpu = placer_.Pick(ctx, *task, candidates, hint);
    if (cpu < 0) {
      continue;  // deferred for cache warmth
    }
    avail.Clear(cpu);
    runqueue_.Remove(task);
    task->queued = false;
    assignments.emplace_back(cpu, task);
  }

  if (!assignments.empty()) {
    std::vector<Transaction>& storage = scratch_txns_;
    storage.clear();
    storage.resize(assignments.size());
    std::vector<Transaction*>& txns = scratch_txn_ptrs_;
    txns.clear();
    txns.resize(assignments.size());
    for (size_t i = 0; i < assignments.size(); ++i) {
      storage[i] = AgentContext::MakeTxn(assignments[i].second->tid, assignments[i].first);
      if (options_.use_tseq) {
        storage[i].expected_tseq = assignments[i].second->tseq;
      }
      txns[i] = &storage[i];
    }
    ctx.Commit(txns);
    for (size_t i = 0; i < assignments.size(); ++i) {
      auto [cpu, task] = assignments[i];
      if (storage[i].committed()) {
        task->assigned_cpu = cpu;
        task->last_cpu = cpu;
        ++scheduled_;
        progress = true;
      } else {
        ++txn_failures_;
        if (task->runnable && !task->queued) {
          task->queued = true;
          runqueue_.Push(task, 0);  // retry promptly
        }
      }
    }
  }

  // Deferred-for-warmth threads need a timed revisit even if nothing pokes.
  if (!runqueue_.empty() && options_.max_pending_before_migrate > 0) {
    ctx.RequestWakeupAt(ctx.start() + options_.max_pending_before_migrate);
  }
  return progress ? AgentAction::kRunAgain : AgentAction::kPollWait;
}

}  // namespace gs
