// Centralized FIFO policy: one spinning global agent schedules every CPU in
// the enclave (Fig 4 of the paper).
//
// This single policy, parameterized, covers three of the paper's five
// evaluation policies:
//
//  * Fig 5's round-robin scalability policy ("manages all threads in a FIFO
//    runqueue, scheduling them on CPUs as soon as CPUs become idle", grouping
//    as many transactions as possible per commit);
//  * the Shinjuku policy (§4.2): 30 µs preemption timeslice, requests
//    rotate to the back of the FIFO;
//  * the Shinjuku+Shenango and Snap policies (§4.2/§4.3): a second, batch
//    tier that only gets CPUs when the latency-critical tier leaves them
//    idle, and that latency-critical wakeups preempt immediately.
#ifndef GHOST_SIM_SRC_POLICIES_CENTRALIZED_FIFO_H_
#define GHOST_SIM_SRC_POLICIES_CENTRALIZED_FIFO_H_

#include <functional>
#include <vector>

#include "src/agent/agent_context.h"
#include "src/agent/policy.h"
#include "src/agent/sdk/runqueue.h"
#include "src/agent/sdk/timeslice.h"
#include "src/agent/task_table.h"

namespace gs {

class CentralizedFifoPolicy : public Policy {
 public:
  struct Options {
    // CPU hosting the global agent. -1 = first enclave CPU.
    int global_cpu = -1;
    // 0 disables preemption (run to completion, like CFS-Shinjuku).
    Duration preemption_timeslice = 0;
    // Cadence at which the agent wakes to probe for expired slices. 0 =
    // track each running task's exact expiry (wake precisely when the
    // earliest slice runs out); >0 = wake on a fixed probe interval, the way
    // the real Shinjuku dataplane polls worker state on a timer. Scenario
    // key: policy.probe_interval_us.
    Duration probe_interval = 0;
    // Maps tid -> tier (0 latency-critical, 1 batch). Default: everything 0.
    std::function<int(int64_t)> tier_of;
    // Tag transactions with expected_tseq (§3.3 staleness detection).
    bool use_tseq = true;
    // Install the BPF-analog fast path (§3.2/§5): overflow runnable threads
    // are published to a shared ring that idle CPUs pop from pick_next_task.
    bool use_fastpath = false;
    // Extra per-iteration policy cost (models heavyweight scheduling loops;
    // the §5 discussion's 30 us loop). Used by the fast-path ablation.
    Duration extra_loop_cost = 0;
    // Cap on transactions per TXNS_COMMIT (group-commit ablation).
    int max_group_commit = INT32_MAX;
  };

  CentralizedFifoPolicy() : CentralizedFifoPolicy(Options()) {}
  explicit CentralizedFifoPolicy(Options options);

  const char* name() const override { return "centralized-fifo"; }
  void Attached(AgentProcess* process, Enclave* enclave, Kernel* kernel) override;
  void Restore(const std::vector<Enclave::TaskInfo>& dump) override;
  AgentAction RunAgent(AgentContext& ctx) override;

  // Statistics.
  uint64_t scheduled() const { return scheduled_; }
  uint64_t preemptions() const { return preemptions_; }
  uint64_t txn_failures() const { return txn_failures_; }
  uint64_t hot_handoffs() const { return hot_handoffs_; }
  int global_cpu() const { return global_cpu_; }
  size_t queue_depth() const { return fifo_[0].size() + fifo_[1].size(); }
  int RunqueueDepth() const override { return static_cast<int>(queue_depth()); }
  const TaskTable& table() const { return table_; }

 private:
  struct Running {
    PolicyTask* task = nullptr;
    Time since = 0;
  };

  void HandleMessage(const Message& msg);
  void Enqueue(PolicyTask* task, bool front);
  void DequeueFromRunqueue(PolicyTask* task);
  PolicyTask* PopNext();       // high tier first
  PolicyTask* PopTier(int tier);
  void ClearRunning(PolicyTask* task);

  Options options_;
  Enclave* enclave_ = nullptr;
  int global_cpu_ = -1;

  TaskTable table_;
  FifoRunqueue fifo_[2];
  // Dense cpu -> policy belief (task == nullptr means idle). The agent scans
  // this every loop iteration; ascending-index scans match the old std::map's
  // ascending-cpu order, so decisions are unchanged.
  std::vector<Running> running_;
  std::vector<Message> scratch_msgs_;
  // Per-iteration scratch, reused so the steady-state loop never mallocs.
  std::vector<std::pair<int, PolicyTask*>> assignments_scratch_;
  std::vector<Transaction> txn_storage_scratch_;
  std::vector<Transaction*> txn_ptrs_scratch_;

  AgentProcess* process_ = nullptr;
  uint64_t scheduled_ = 0;
  uint64_t preemptions_ = 0;
  uint64_t txn_failures_ = 0;
  uint64_t hot_handoffs_ = 0;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_POLICIES_CENTRALIZED_FIFO_H_
