// Named policy constructors matching the paper's §4.2 and §4.3 policies.
//
// The paper's Shinjuku / Shinjuku+Shenango / Snap policies are thin
// parameterizations of the centralized model (Table 2 notes the policies are
// ~700-900 LoC because the userspace support library does the heavy
// lifting — same structure here).
#ifndef GHOST_SIM_SRC_POLICIES_SHINJUKU_H_
#define GHOST_SIM_SRC_POLICIES_SHINJUKU_H_

#include <functional>
#include <memory>

#include "src/policies/centralized_fifo.h"

namespace gs {

// §4.2: centralized, preemptive FIFO with the Shinjuku 30 µs timeslice.
// probe_interval > 0 wakes the agent on a fixed probe cadence instead of
// tracking exact per-request expiries (scenario key:
// policy.probe_interval_us); 0 keeps exact tracking.
std::unique_ptr<CentralizedFifoPolicy> MakeShinjukuPolicy(Duration timeslice,
                                                          int global_cpu = -1,
                                                          Duration probe_interval = 0);

// §4.2: Shinjuku + Shenango-style batch sharing — idle cycles go to threads
// classified as batch (tier 1), which latency-critical wakeups preempt
// immediately. "Merely 17 more lines of code" in the paper; one classifier
// hook here.
std::unique_ptr<CentralizedFifoPolicy> MakeShinjukuShenangoPolicy(
    Duration timeslice, std::function<int(int64_t)> tier_of, int global_cpu = -1,
    Duration probe_interval = 0);

// §4.3: the Snap policy — centralized FIFO giving Snap packet-processing
// workers strict priority over antagonist threads, no timeslice (workers
// run to completion; they block quickly by design).
std::unique_ptr<CentralizedFifoPolicy> MakeSnapPolicy(
    std::function<int(int64_t)> tier_of, int global_cpu = -1);

}  // namespace gs

#endif  // GHOST_SIM_SRC_POLICIES_SHINJUKU_H_
