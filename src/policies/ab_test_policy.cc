#include "src/policies/ab_test_policy.h"

#include "src/kernel/kernel.h"

namespace gs {

namespace {
// splitmix64 finalizer: the lane split must be uniform over sequential tids
// and identical in every run, promote, and rollback.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

bool AbTestPolicy::InCanary(int64_t tid) const {
  return static_cast<int>(Mix(static_cast<uint64_t>(tid)) % 100) < options_.canary_percent;
}

void AbTestPolicy::Attached(AgentProcess* process, Enclave* enclave, Kernel* kernel) {
  enclave_ = enclave;
  process_ = process;
  const CpuMask& cpus = enclave->cpus();
  boss_cpu_ = cpus.First();
  cpus_.resize(kernel->topology().num_cpus());
  for (int cpu = cpus.First(); cpu >= 0; cpu = cpus.NextAfter(cpu)) {
    CpuSched& cs = cpus_[cpu];
    cs.queue = enclave->CreateQueue();
    enclave->ConfigQueueWakeup(cs.queue, process->agent_on(cpu));
    enclave->SetCpuQueue(cpu, cs.queue);
    cpu_list_.push_back(cpu);
  }
  enclave->ConfigQueueWakeup(enclave->default_queue(), process->agent_on(boss_cpu_));

  StatsRegistry& stats = *kernel->stats();
  const char* lane_name[2] = {"ab-base", "ab-canary"};
  for (int lane = 0; lane < 2; ++lane) {
    stat_scheduled_[lane] =
        stats.GetCounter("ab_lane_scheduled", {{"policy", lane_name[lane]}});
    stat_completed_[lane] =
        stats.GetCounter("ab_lane_completed", {{"policy", lane_name[lane]}});
  }
}

void AbTestPolicy::Restore(const std::vector<Enclave::TaskInfo>& dump) {
  // Full view replacement (also the overflow-resync path). Lane membership is
  // recomputed from the tid hash; the cumulative lane counters survive.
  for (CpuSched& sched : cpus_) {
    sched.runqueue.Clear();
  }
  home_cpu_.Clear();
  table().Clear();
  for (const Enclave::TaskInfo& info : dump) {
    PolicyTask* task = table().Add(info.tid);
    task->tseq = info.tseq;
    task->affinity = info.affinity;
    task->runnable = info.runnable;
    const int home = NextHomeCpu();
    home_cpu_.Insert(info.tid, home);
    enclave_->AssociateQueue(info.tid, cpus_[home].queue);
    if (info.runnable && !info.on_cpu) {
      task->queued = true;
      cpus_[home].runqueue.Push(task);
    }
  }
}

int AbTestPolicy::NextHomeCpu() {
  const int cpu = cpu_list_[rr_next_ % cpu_list_.size()];
  ++rr_next_;
  return cpu;
}

void AbTestPolicy::CollectQueues(AgentContext& ctx, std::vector<MessageQueue*>* queues) {
  const int cpu = ctx.agent_cpu();
  if (cpu == boss_cpu_) {
    queues->push_back(enclave_->default_queue());
  }
  queues->push_back(cpus_[cpu].queue);
}

void AbTestPolicy::TimerTick(AgentContext& ctx, const Message& msg) { rotate_ = true; }

void AbTestPolicy::TaskNew(AgentContext& ctx, PolicyTask* task, const Message& msg) {
  const int home = NextHomeCpu();
  home_cpu_.Insert(msg.tid, home);
  ctx.Charge(ctx.kernel()->cost().syscall);
  enclave_->AssociateQueue(msg.tid, cpus_[home].queue);
  if (task->runnable && !task->queued) {
    task->queued = true;
    cpus_[home].runqueue.Push(task);
    NotifyAgent(ctx, home);
  }
}

void AbTestPolicy::EnqueueRunnable(AgentContext& ctx, PolicyTask* task, bool front) {
  if (task->queued) {
    return;
  }
  // The canary lane's behavioral delta: LIFO admission.
  if (!front && options_.canary_lifo && InCanary(task->tid)) {
    front = true;
  }
  const int home = HomeOf(task->tid, ctx.agent_cpu());
  task->queued = true;
  if (front) {
    cpus_[home].runqueue.PushFront(task);
  } else {
    cpus_[home].runqueue.Push(task);
  }
  NotifyAgent(ctx, home);
}

void AbTestPolicy::TaskWakeup(AgentContext& ctx, PolicyTask* task, const Message& msg) {
  EnqueueRunnable(ctx, task, /*front=*/false);
}

void AbTestPolicy::TaskPreempted(AgentContext& ctx, PolicyTask* task, const Message& msg) {
  EnqueueRunnable(ctx, task, /*front=*/true);
}

void AbTestPolicy::TaskYield(AgentContext& ctx, PolicyTask* task, const Message& msg) {
  EnqueueRunnable(ctx, task, /*front=*/false);
}

void AbTestPolicy::TaskBlocked(AgentContext& ctx, PolicyTask* task, const Message& msg) {
  if (task->queued) {
    cpus_[HomeOf(task->tid, ctx.agent_cpu())].runqueue.Remove(task);
    task->queued = false;
  }
}

void AbTestPolicy::Evict(AgentContext& ctx, PolicyTask* task) {
  if (task->queued) {
    cpus_[HomeOf(task->tid, ctx.agent_cpu())].runqueue.Remove(task);
  }
  home_cpu_.Erase(task->tid);
}

void AbTestPolicy::TaskDead(AgentContext& ctx, PolicyTask* task, const Message& msg) {
  const int lane = LaneOf(task->tid);
  ++lanes_[lane].completed;
  stat_completed_[lane]->Inc();
  Evict(ctx, task);
}

void AbTestPolicy::TaskDeparted(AgentContext& ctx, PolicyTask* task, const Message& msg) {
  // Departed (moved out of the enclave alive) is not a completion.
  Evict(ctx, task);
}

void AbTestPolicy::NotifyAgent(AgentContext& ctx, int cpu) {
  if (cpu == ctx.agent_cpu()) {
    return;
  }
  Task* agent = process_->agent_on(cpu);
  if (agent == nullptr) {
    return;
  }
  if (agent->state() == TaskState::kBlocked) {
    ctx.Charge(ctx.kernel()->cost().syscall + ctx.kernel()->cost().agent_wakeup);
    ctx.kernel()->Wake(agent);
  } else {
    enclave_->PokeAgent(agent);
  }
}

AgentAction AbTestPolicy::Schedule(AgentContext& ctx) {
  const int cpu = ctx.agent_cpu();
  CpuSched& cs = cpus_[cpu];
  const uint32_t aseq = ctx.ReadAseq();
  const bool rotate = rotate_;
  rotate_ = false;

  if (cs.runqueue.empty()) {
    return AgentAction::kBlock;
  }
  if (rotate && cs.runqueue.size() >= 2) {
    PolicyTask* front = cs.runqueue.Pop();
    cs.runqueue.Push(front);
  }

  PolicyTask* next = cs.runqueue.Pop();
  next->queued = false;
  Transaction txn = AgentContext::MakeTxn(next->tid, cpu);
  txn.expected_aseq = aseq;
  Transaction* ptr = &txn;
  ctx.Commit(ptr);
  if (txn.committed()) {
    next->assigned_cpu = cpu;
    next->last_cpu = cpu;
    const int lane = LaneOf(next->tid);
    ++lanes_[lane].scheduled;
    stat_scheduled_[lane]->Inc();
    return AgentAction::kYield;
  }
  if (txn.status == TxnStatus::kEStale) {
    ++estale_failures_;
    next->queued = true;
    cs.runqueue.PushFront(next);
    return AgentAction::kRunAgain;
  }
  if (next->runnable) {
    next->queued = true;
    if (!next->affinity.IsSet(cpu)) {
      int new_home = cpu;
      for (int candidate : cpu_list_) {
        if (next->affinity.IsSet(candidate)) {
          new_home = candidate;
          break;
        }
      }
      home_cpu_.Insert(next->tid, new_home);
      cpus_[new_home].runqueue.Push(next);
      NotifyAgent(ctx, new_home);
    } else {
      cs.runqueue.Push(next);
    }
  }
  return AgentAction::kRunAgain;
}

}  // namespace gs
