#include "src/policies/predictive_shinjuku.h"

#include <algorithm>

#include "src/agent/agent_process.h"
#include "src/base/logging.h"

namespace gs {

PredictiveShinjukuPolicy::PredictiveShinjukuPolicy(Options options)
    : options_(std::move(options)), predictor_(options_.predictor) {
  if (!options_.tier_of) {
    options_.tier_of = [](int64_t) { return 0; };
  }
  CHECK_GT(options_.rotation_slice, 0);
  CHECK_GE(options_.backstop_multiplier, 1);
}

void PredictiveShinjukuPolicy::Attached(AgentProcess* process, Enclave* enclave,
                                        Kernel* kernel) {
  enclave_ = enclave;
  process_ = process;
  global_cpu_ = options_.global_cpu >= 0 ? options_.global_cpu : enclave->cpus().First();
  running_.assign(kernel->topology().num_cpus(), Running{});
}

void PredictiveShinjukuPolicy::Restore(const std::vector<Enclave::TaskInfo>& dump) {
  // Full view replacement (also the overflow-resync path). Predictor state
  // survives: service-time history is still valid across a resync.
  for (FifoRunqueue& lane : lanes_) {
    lane.Clear();
  }
  running_.assign(running_.size(), Running{});
  states_.clear();
  table().Clear();
  for (const Enclave::TaskInfo& info : dump) {
    CHECK(enclave_->AssociateQueue(info.tid, enclave_->default_queue()));
    PolicyTask* task = table().Add(info.tid);
    task->tseq = info.tseq;
    task->affinity = info.affinity;
    task->tier = options_.tier_of(info.tid);
    task->runnable = info.runnable;
    PredTask& st = AttachState(task);
    // No status-word context for a mid-flight interval: restart training at
    // the next wakeup and classify conservatively as short (the backstop
    // catches it if that is wrong).
    st.lane = task->tier != 0 ? kBatch : kShort;
    st.allowance = st.lane == kBatch ? options_.rotation_slice : options_.min_backstop;
    if (info.on_cpu) {
      task->assigned_cpu = info.cpu;
      st.on_cpu = info.cpu;
      running_[info.cpu] = Running{task, 0};
    } else if (info.runnable) {
      Enqueue(task, /*front=*/false);
    }
  }
}

PredictiveShinjukuPolicy::PredTask& PredictiveShinjukuPolicy::AttachState(
    PolicyTask* task) {
  PredTask& st = states_[task->tid];
  task->user = &st;
  return st;
}

void PredictiveShinjukuPolicy::ClassifyWakeup(AgentContext& ctx, PolicyTask* task) {
  PredTask& st = StateOf(task);
  const TaskStatusWord* status = ctx.ReadStatus(task->tid);
  st.wake_runtime = status != nullptr ? status->runtime : 0;
  if (task->tier != 0) {
    st.lane = kBatch;
    st.allowance = options_.rotation_slice;
    return;
  }
  const Duration predicted = predictor_.Predict(task->tid);
  if (predicted >= options_.long_threshold) {
    st.lane = kLong;
    st.allowance = options_.rotation_slice;
    ++predicted_long_;
  } else {
    st.lane = kShort;
    st.allowance = std::max(predicted * options_.backstop_multiplier,
                            options_.min_backstop);
    ++predicted_short_;
  }
}

void PredictiveShinjukuPolicy::ObserveService(AgentContext& ctx, PolicyTask* task) {
  PredTask& st = StateOf(task);
  const TaskStatusWord* status = ctx.ReadStatus(task->tid);
  if (status == nullptr) {
    return;
  }
  const Duration observed = status->runtime - st.wake_runtime;
  if (observed > 0) {
    predictor_.Observe(task->tid, observed);
  }
}

void PredictiveShinjukuPolicy::Enqueue(PolicyTask* task, bool front) {
  CHECK(!task->queued);
  task->queued = true;
  if (front) {
    lanes_[StateOf(task).lane].PushFront(task);
  } else {
    lanes_[StateOf(task).lane].Push(task);
  }
}

void PredictiveShinjukuPolicy::Dequeue(PolicyTask* task) {
  if (task->queued) {
    CHECK(lanes_[StateOf(task).lane].Remove(task));
    task->queued = false;
  }
}

void PredictiveShinjukuPolicy::ClearRunning(PolicyTask* task) {
  PredTask& st = StateOf(task);
  if (st.on_cpu >= 0 && st.on_cpu < static_cast<int>(running_.size()) &&
      running_[st.on_cpu].task == task) {
    running_[st.on_cpu] = Running{};
  }
  st.on_cpu = -1;
}

PolicyTask* PredictiveShinjukuPolicy::PopRequestLane() {
  for (int lane : {kShort, kLong}) {
    PolicyTask* task = lanes_[lane].Pop();
    if (task != nullptr) {
      task->queued = false;
      return task;
    }
  }
  return nullptr;
}

PolicyTask* PredictiveShinjukuPolicy::PopNext() {
  PolicyTask* task = PopRequestLane();
  if (task != nullptr) {
    return task;
  }
  task = lanes_[kBatch].Pop();
  if (task != nullptr) {
    task->queued = false;
  }
  return task;
}

void PredictiveShinjukuPolicy::TaskNew(AgentContext& ctx, PolicyTask* task,
                                       const Message& msg) {
  task->tier = options_.tier_of(task->tid);
  AttachState(task);
  if (task->runnable) {
    ClassifyWakeup(ctx, task);
    Enqueue(task, /*front=*/false);
  }
}

void PredictiveShinjukuPolicy::TaskWakeup(AgentContext& ctx, PolicyTask* task,
                                          const Message& msg) {
  ClearRunning(task);
  if (!task->queued) {
    ClassifyWakeup(ctx, task);
    Enqueue(task, /*front=*/false);
  }
}

void PredictiveShinjukuPolicy::TaskPreempted(AgentContext& ctx, PolicyTask* task,
                                             const Message& msg) {
  // Mid-request preemption: the lane (possibly just demoted by the
  // backstop) and the wake_runtime baseline both stand — the status-word
  // delta at block time still measures the whole request.
  ClearRunning(task);
  if (!task->queued) {
    Enqueue(task, /*front=*/false);
  }
}

void PredictiveShinjukuPolicy::TaskYield(AgentContext& ctx, PolicyTask* task,
                                         const Message& msg) {
  ClearRunning(task);
  if (!task->queued) {
    Enqueue(task, /*front=*/false);
  }
}

void PredictiveShinjukuPolicy::TaskBlocked(AgentContext& ctx, PolicyTask* task,
                                           const Message& msg) {
  // Request complete: train on the exact observed service time.
  ObserveService(ctx, task);
  ClearRunning(task);
  Dequeue(task);
}

void PredictiveShinjukuPolicy::TaskDead(AgentContext& ctx, PolicyTask* task,
                                        const Message& msg) {
  ClearRunning(task);
  Dequeue(task);
  predictor_.Forget(task->tid);
  states_.erase(task->tid);
}

void PredictiveShinjukuPolicy::TaskDeparted(AgentContext& ctx, PolicyTask* task,
                                            const Message& msg) {
  TaskDead(ctx, task, msg);
}

void PredictiveShinjukuPolicy::CollectQueues(AgentContext& ctx,
                                             std::vector<MessageQueue*>* queues) {
  if (ctx.agent_cpu() == global_cpu_) {
    queues->push_back(enclave_->default_queue());
  }
}

AgentAction PredictiveShinjukuPolicy::Schedule(AgentContext& ctx) {
  if (ctx.agent_cpu() != global_cpu_) {
    return AgentAction::kBlock;  // inactive agent (Fig 2)
  }

  // Hot handoff (§3.3), exactly as in the probe-based centralized policy.
  if (ctx.HigherClassWaitersOn(global_cpu_)) {
    const CpuMask idle = ctx.AvailableCpus();
    for (int cpu = idle.First(); cpu >= 0; cpu = idle.NextAfter(cpu)) {
      Task* successor = process_->agent_on(cpu);
      if (successor == nullptr || successor->state() != TaskState::kBlocked) {
        continue;
      }
      global_cpu_ = cpu;
      ++hot_handoffs_;
      ctx.Charge(ctx.kernel()->cost().syscall + ctx.kernel()->cost().agent_wakeup);
      ctx.kernel()->Wake(successor);
      return AgentAction::kYield;
    }
  }

  assignments_scratch_.clear();
  std::vector<std::pair<int, PolicyTask*>>& assignments = assignments_scratch_;

  // 1. Fill idle CPUs first. Probe-Shinjuku preempts before it ever looks
  // at the idle set; doing it in this order means a long request is never
  // preempted to serve a waiter an idle CPU could have taken.
  const CpuMask avail = ctx.AvailableCpus();
  for (int cpu = avail.First(); cpu >= 0; cpu = avail.NextAfter(cpu)) {
    PolicyTask* next = PopNext();
    if (next == nullptr) {
      break;
    }
    ctx.Charge(ctx.kernel()->cost().agent_per_task_scan);
    assignments.emplace_back(cpu, next);
  }

  // 2. Latency-critical work still waiting means every CPU is busy: preempt,
  // in lane order of the victim — batch immediately, longs after their
  // rotation slice, predicted-shorts only past their backstop (that is the
  // mispredict detector).
  if (!lanes_[kShort].empty() || !lanes_[kLong].empty()) {
    for (int cpu = 0; cpu < static_cast<int>(running_.size()); ++cpu) {
      Running& run = running_[cpu];
      if (run.task == nullptr) {
        continue;
      }
      if (lanes_[kShort].empty() && lanes_[kLong].empty()) {
        break;
      }
      PredTask& st = StateOf(run.task);
      const Duration ran = ctx.start() - run.since;
      bool preempt = false;
      if (st.lane == kBatch) {
        preempt = true;
      } else if (ran >= st.allowance) {
        if (st.lane == kShort) {
          // Backstop tripped: the prediction was wrong. Demote so the
          // preemption hook re-enqueues it as a long, and so every future
          // slice for this interval is a plain rotation slice.
          st.lane = kLong;
          st.allowance = options_.rotation_slice;
          ++backstop_demotions_;
        }
        preempt = true;
      }
      if (preempt) {
        PolicyTask* next = PopRequestLane();
        if (next != nullptr) {
          assignments.emplace_back(cpu, next);
          ++preemptions_;
        }
      }
    }
  }

  // 3. Group-commit all assignments.
  bool progress = false;
  if (!assignments.empty()) {
    txn_storage_scratch_.assign(assignments.size(), Transaction{});
    txn_ptrs_scratch_.resize(assignments.size());
    std::vector<Transaction>& storage = txn_storage_scratch_;
    std::vector<Transaction*>& txns = txn_ptrs_scratch_;
    for (size_t i = 0; i < assignments.size(); ++i) {
      storage[i] = AgentContext::MakeTxn(assignments[i].second->tid,
                                         assignments[i].first);
      if (options_.use_tseq) {
        storage[i].expected_tseq = assignments[i].second->tseq;
      }
      txns[i] = &storage[i];
    }
    ctx.Commit(txns);
    for (size_t i = 0; i < assignments.size(); ++i) {
      auto [cpu, task] = assignments[i];
      if (storage[i].committed()) {
        task->assigned_cpu = cpu;
        task->last_cpu = cpu;
        StateOf(task).on_cpu = cpu;
        running_[cpu] = Running{task, ctx.start() + ctx.cost()};
        ++scheduled_;
        progress = true;
      } else {
        ++txn_failures_;
        if (task->runnable && !task->queued) {
          Enqueue(task, /*front=*/true);
        }
      }
    }
  }

  // 4. Arm the earliest allowance expiry — but only while someone is
  // waiting to rotate in. When only predicted-shorts are running and the
  // queues are empty (the common case), no timer is armed at all: that is
  // the probe the predictor saves.
  if (queue_depth() > 0) {
    Time earliest = kTimeNever;
    for (const Running& run : running_) {
      if (run.task == nullptr) {
        continue;
      }
      const PredTask& st = StateOf(run.task);
      if (st.lane == kBatch) {
        continue;  // preempted on demand, no timer needed
      }
      earliest = std::min(earliest, run.since + st.allowance);
    }
    if (earliest != kTimeNever) {
      ctx.RequestWakeupAt(std::max(earliest, ctx.start() + ctx.cost()));
    }
  }

  return progress ? AgentAction::kRunAgain : AgentAction::kPollWait;
}

}  // namespace gs
