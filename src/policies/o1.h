// O(1)-style multilevel-queue policy: per-CPU active/expired priority
// arrays with bitmap pick, in the spirit of the Linux 2.6 O(1) scheduler
// (and the ghost-userspace O1 agent port referenced in ROADMAP).
//
// Each CPU's agent owns two priority arrays of FIFO runqueues ("active" and
// "expired") plus a per-array occupancy bitmap. Picking the next thread is
// O(1): count-trailing-zeros on the active bitmap, pop the head of that
// queue. Every task carries a priority-dependent timeslice (higher priority
// => longer slice, as in Linux); when a task exhausts its slice it moves to
// the *expired* array with a fresh slice, and when the active array drains
// the two arrays swap. The swap is the starvation-freedom mechanism: every
// queued task, of every priority, runs before any task runs twice off the
// same array generation.
//
// Interactivity, O(1)-style but simplified: a task that blocks and wakes
// gets a fresh slice and re-enters the ACTIVE array (sleepers are rewarded);
// a task that calls sched_yield is demoted to the expired array.
//
// SDK consumer: message boilerplate lives in DispatchPolicy, the priority
// arrays are sdk PrioArrayRunqueues, and slice accounting is an sdk
// SliceBudget per task; this file keeps only the active/expired generation
// logic and per-CPU homing that make the policy O(1)-shaped.
#ifndef GHOST_SIM_SRC_POLICIES_O1_H_
#define GHOST_SIM_SRC_POLICIES_O1_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/agent/agent_context.h"
#include "src/agent/agent_process.h"
#include "src/agent/sdk/sdk.h"

namespace gs {

class O1Policy : public DispatchPolicy {
 public:
  struct Options {
    // Priority levels; 0 is the highest. Must be in [1, 64] (one bitmap word).
    int num_priorities = 8;
    // Timeslices interpolate linearly from base (priority 0) down to min
    // (lowest priority), mirroring Linux's static_prio -> timeslice map.
    // Slices below the kernel tick period cannot be enforced any finer than
    // the tick, so keep min >= the cost model's tick_period (1 ms default).
    Duration base_timeslice = Milliseconds(6);
    Duration min_timeslice = Milliseconds(1);
    // Maps tid -> priority (clamped into range). Default: everything mid.
    std::function<int(int64_t)> priority_of;
  };

  O1Policy() : O1Policy(Options()) {}
  explicit O1Policy(Options options);

  const char* name() const override { return "o1-mlq"; }
  void Attached(AgentProcess* process, Enclave* enclave, Kernel* kernel) override;
  void Restore(const std::vector<Enclave::TaskInfo>& dump) override;

  // The slice a task of `priority` receives per array generation.
  Duration TimesliceFor(int priority) const;

  uint64_t scheduled() const { return scheduled_; }
  uint64_t estale_failures() const { return estale_failures_; }
  uint64_t array_swaps() const { return array_swaps_; }
  uint64_t slice_expirations() const { return slice_expirations_; }
  int RunqueueDepth() const override;

 protected:
  void CollectQueues(AgentContext& ctx, std::vector<MessageQueue*>* queues) override;
  AgentAction Schedule(AgentContext& ctx) override;
  void TaskNew(AgentContext& ctx, PolicyTask* task, const Message& msg) override;
  void TaskWakeup(AgentContext& ctx, PolicyTask* task, const Message& msg) override;
  void TaskPreempted(AgentContext& ctx, PolicyTask* task, const Message& msg) override;
  void TaskYield(AgentContext& ctx, PolicyTask* task, const Message& msg) override;
  void TaskBlocked(AgentContext& ctx, PolicyTask* task, const Message& msg) override;
  void TaskDead(AgentContext& ctx, PolicyTask* task, const Message& msg) override;
  void TaskDeparted(AgentContext& ctx, PolicyTask* task, const Message& msg) override;
  void TaskAffinity(AgentContext& ctx, PolicyTask* task, const Message& msg) override;

 private:
  // Per-task O1 state, owned here and linked from PolicyTask::user.
  struct O1Task {
    int prio = 0;
    SliceBudget slice;  // budget left in this array generation
    int home = -1;      // owning CPU
    int array = 0;      // which of its home's arrays it is queued in
  };

  struct CpuSched {
    MessageQueue* queue = nullptr;
    PrioArrayRunqueue arrays[2];
    int active = 0;  // index of the active array; 1 - active is expired
  };

  O1Task& StateOf(PolicyTask* task) { return *static_cast<O1Task*>(task->user); }
  O1Task& AttachState(PolicyTask* task);
  // Charges virtual run time since the last pick against the slice budget.
  void ChargeRuntime(AgentContext& ctx, PolicyTask* task);
  // Queues a runnable task on its home CPU. `expired` selects the array;
  // `front` resumes an unfinished slice at the queue head.
  void EnqueueRunnable(AgentContext& ctx, PolicyTask* task, bool expired, bool front);
  void Dequeue(PolicyTask* task);
  void Evict(AgentContext& ctx, PolicyTask* task);
  void NotifyAgent(AgentContext& ctx, int cpu);
  int NextHomeCpu();
  int ClampPriority(int prio) const;

  Options options_;
  Enclave* enclave_ = nullptr;
  AgentProcess* process_ = nullptr;
  std::map<int, CpuSched> cpus_;
  std::map<int64_t, O1Task> states_;  // tid -> O1 state (PolicyTask::user)
  std::vector<int> cpu_list_;
  size_t rr_next_ = 0;
  int boss_cpu_ = -1;

  uint64_t scheduled_ = 0;
  uint64_t estale_failures_ = 0;
  uint64_t array_swaps_ = 0;
  uint64_t slice_expirations_ = 0;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_POLICIES_O1_H_
