#include "src/policies/work_stealing.h"

namespace gs {

void WorkStealingPolicy::Attached(AgentProcess* process, Enclave* enclave, Kernel* kernel) {
  enclave_ = enclave;
  process_ = process;
  const CpuMask& cpus = enclave->cpus();
  boss_cpu_ = cpus.First();
  for (int cpu = cpus.First(); cpu >= 0; cpu = cpus.NextAfter(cpu)) {
    CpuSched& cs = cpus_[cpu];
    cs.queue = enclave->CreateQueue();
    enclave->ConfigQueueWakeup(cs.queue, process->agent_on(cpu));
    enclave->SetCpuQueue(cpu, cs.queue);
    cpu_list_.push_back(cpu);
  }
  enclave->ConfigQueueWakeup(enclave->default_queue(), process->agent_on(boss_cpu_));
}

void WorkStealingPolicy::Restore(const std::vector<Enclave::TaskInfo>& dump) {
  // Full view replacement (also the overflow-resync path).
  for (auto& [cpu, sched] : cpus_) {
    sched.runqueue.Clear();
  }
  home_cpu_.clear();
  table_.Clear();
  for (const Enclave::TaskInfo& info : dump) {
    PolicyTask* task = table_.Add(info.tid);
    task->tseq = info.tseq;
    task->affinity = info.affinity;
    task->runnable = info.runnable;
    const int home = NextHomeCpu();
    home_cpu_[info.tid] = home;
    enclave_->AssociateQueue(info.tid, cpus_[home].queue);
    if (info.runnable && !info.on_cpu) {
      task->queued = true;
      cpus_[home].runqueue.Push(task);
    }
  }
}

size_t WorkStealingPolicy::QueueDepth(int cpu) const {
  auto it = cpus_.find(cpu);
  return it == cpus_.end() ? 0 : it->second.runqueue.size();
}

int WorkStealingPolicy::NextHomeCpu() {
  const int cpu = cpu_list_[rr_next_ % cpu_list_.size()];
  ++rr_next_;
  return cpu;
}

void WorkStealingPolicy::NotifyAgent(AgentContext& ctx, int cpu) {
  if (cpu == ctx.agent_cpu()) {
    return;
  }
  Task* agent = process_->agent_on(cpu);
  if (agent == nullptr) {
    return;
  }
  if (agent->state() == TaskState::kBlocked) {
    ctx.Charge(ctx.kernel()->cost().syscall + ctx.kernel()->cost().agent_wakeup);
    ctx.kernel()->Wake(agent);
  } else {
    // The sibling is mid-iteration (or queued to run): flag the push so its
    // check-then-sleep re-runs instead of blocking over a non-empty runqueue.
    enclave_->PokeAgent(agent);
  }
}

void WorkStealingPolicy::HandleMessage(AgentContext& ctx, int cpu, const Message& msg) {
  if (msg.type == MessageType::kTimerTick) {
    return;
  }
  PolicyTask* task = nullptr;
  switch (table_.Apply(msg, &task)) {
    case TaskTable::Event::kNew: {
      const int home = NextHomeCpu();
      home_cpu_[msg.tid] = home;
      ctx.Charge(ctx.kernel()->cost().syscall);
      enclave_->AssociateQueue(msg.tid, cpus_[home].queue);
      if (task->runnable && !task->queued) {
        task->queued = true;
        cpus_[home].runqueue.Push(task);
        NotifyAgent(ctx, home);
      }
      break;
    }
    case TaskTable::Event::kRunnable: {
      const int home = home_cpu_.count(msg.tid) > 0 ? home_cpu_[msg.tid] : cpu;
      if (!task->queued) {
        task->queued = true;
        if (msg.type == MessageType::kTaskPreempted) {
          cpus_[home].runqueue.PushFront(task);
        } else {
          cpus_[home].runqueue.Push(task);
        }
        NotifyAgent(ctx, home);
      }
      break;
    }
    case TaskTable::Event::kBlocked:
      if (task->queued) {
        cpus_[home_cpu_.count(msg.tid) > 0 ? home_cpu_[msg.tid] : cpu].runqueue.Remove(task);
        task->queued = false;
      }
      break;
    case TaskTable::Event::kDead:
      if (task->queued) {
        cpus_[home_cpu_.count(msg.tid) > 0 ? home_cpu_[msg.tid] : cpu].runqueue.Remove(task);
      }
      home_cpu_.erase(msg.tid);
      table_.Remove(msg.tid);
      break;
    case TaskTable::Event::kAffinity: {
      // sched_setaffinity may have excluded the task's home CPU: re-home it
      // to an allowed enclave CPU (and move any queued entry along).
      const int home = home_cpu_.count(msg.tid) > 0 ? home_cpu_[msg.tid] : cpu;
      if (!task->affinity.IsSet(home)) {
        int new_home = -1;
        for (int candidate : cpu_list_) {
          if (task->affinity.IsSet(candidate)) {
            new_home = candidate;
            break;
          }
        }
        if (new_home >= 0) {
          if (task->queued) {
            cpus_[home].runqueue.Remove(task);
            cpus_[new_home].runqueue.Push(task);
          }
          home_cpu_[msg.tid] = new_home;
          ctx.Charge(ctx.kernel()->cost().syscall);
          enclave_->AssociateQueue(msg.tid, cpus_[new_home].queue);
          NotifyAgent(ctx, new_home);
        }
      }
      break;
    }
    case TaskTable::Event::kNone:
      break;
  }
}

PolicyTask* WorkStealingPolicy::TrySteal(AgentContext& ctx, int thief_cpu) {
  // Pick the deepest victim runqueue (agents share the process, so reading
  // sibling queues is a plain memory access).
  int victim_cpu = -1;
  size_t deepest = 0;
  for (auto& [cpu, cs] : cpus_) {
    if (cpu != thief_cpu && cs.runqueue.size() > deepest) {
      deepest = cs.runqueue.size();
      victim_cpu = cpu;
    }
  }
  if (victim_cpu < 0) {
    return nullptr;
  }
  CpuSched& victim = cpus_[victim_cpu];
  // Snapshot: the drain in the retry path may mutate the victim runqueue.
  const std::vector<PolicyTask*> candidates(victim.runqueue.raw().begin(),
                                            victim.runqueue.raw().end());
  for (PolicyTask* candidate : candidates) {
    if (!candidate->queued || !candidate->affinity.IsSet(thief_cpu)) {
      continue;
    }
    // §3.1 protocol: move the thread's message routing to the thief's queue.
    // The association fails while messages for the thread sit undrained in
    // the victim queue; drain it (messages are applied as usual — the victim
    // agent will see an empty queue) and retry once.
    ctx.Charge(ctx.kernel()->cost().syscall);
    if (!enclave_->AssociateQueue(candidate->tid, cpus_[thief_cpu].queue)) {
      ++association_retries_;
      std::vector<Message> drained;
      ctx.Drain(victim.queue, &drained);
      for (const Message& msg : drained) {
        HandleMessage(ctx, victim_cpu, msg);
      }
      ctx.Charge(ctx.kernel()->cost().syscall);
      if (!enclave_->AssociateQueue(candidate->tid, cpus_[thief_cpu].queue)) {
        continue;
      }
      // Draining may have dequeued the candidate (it blocked/died).
      if (!candidate->queued) {
        continue;
      }
    }
    victim.runqueue.Remove(candidate);
    home_cpu_[candidate->tid] = thief_cpu;
    ++steals_;
    return candidate;  // caller runs it (still marked queued until dispatch)
  }
  return nullptr;
}

AgentAction WorkStealingPolicy::RunAgent(AgentContext& ctx) {
  const int cpu = ctx.agent_cpu();
  CpuSched& cs = cpus_[cpu];
  const uint32_t aseq = ctx.ReadAseq();

  scratch_msgs_.clear();
  if (cpu == boss_cpu_) {
    ctx.Drain(enclave_->default_queue(), &scratch_msgs_);
  }
  ctx.Drain(cs.queue, &scratch_msgs_);
  for (const Message& msg : scratch_msgs_) {
    HandleMessage(ctx, cpu, msg);
  }

  PolicyTask* next = cs.runqueue.Pop();
  if (next == nullptr) {
    next = TrySteal(ctx, cpu);
  }
  if (next == nullptr) {
    return AgentAction::kBlock;
  }
  next->queued = false;

  Transaction txn = AgentContext::MakeTxn(next->tid, cpu);
  txn.expected_aseq = aseq;
  Transaction* ptr = &txn;
  ctx.Commit(ptr);
  if (txn.committed()) {
    next->assigned_cpu = cpu;
    next->last_cpu = cpu;
    ++scheduled_;
    return AgentAction::kYield;
  }
  if (next->runnable) {
    next->queued = true;
    if (!next->affinity.IsSet(cpu)) {
      int new_home = cpu;
      for (int candidate : cpu_list_) {
        if (next->affinity.IsSet(candidate)) {
          new_home = candidate;
          break;
        }
      }
      home_cpu_[next->tid] = new_home;
      cpus_[new_home].runqueue.Push(next);
      NotifyAgent(ctx, new_home);
    } else {
      cs.runqueue.Push(next);
    }
  }
  return AgentAction::kRunAgain;
}

}  // namespace gs
