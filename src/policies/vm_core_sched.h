// Secure-VM core scheduling policy (§4.5, Fig 9).
//
// The ghOSt counterpart to in-kernel core scheduling: a global agent
// schedules *physical cores*, committing synchronized transaction groups —
// one transaction per sibling CPU — that either all latch or all fail, so a
// core only ever runs vCPUs of one VM (or a forced-idle sibling). From the
// paper: "a ghOSt agent can easily schedule an entire core by performing a
// synchronized group commit for each physical core"; the policy itself is a
// partitioned-EDF-flavored scheme that guarantees each runnable VM its time
// slice per period, sharing the excess.
#ifndef GHOST_SIM_SRC_POLICIES_VM_CORE_SCHED_H_
#define GHOST_SIM_SRC_POLICIES_VM_CORE_SCHED_H_

#include <functional>
#include <map>
#include <vector>

#include "src/agent/agent_context.h"
#include "src/agent/policy.h"
#include "src/agent/task_table.h"

namespace gs {

class VmCoreSchedPolicy : public Policy {
 public:
  struct Options {
    int global_cpu = -1;
    // Maps a thread to its VM (trust-domain cookie, non-zero).
    std::function<int64_t(int64_t)> cookie_of;
    // Guaranteed slice per VM per scheduling period (EDF parameters).
    Duration slice = Milliseconds(6);
  };

  explicit VmCoreSchedPolicy(Options options);

  const char* name() const override { return "vm-core-sched"; }
  void Attached(AgentProcess* process, Enclave* enclave, Kernel* kernel) override;
  AgentAction RunAgent(AgentContext& ctx) override;

  uint64_t cores_scheduled() const { return cores_scheduled_; }
  uint64_t group_failures() const { return group_failures_; }

 private:
  struct Vm {
    int64_t cookie = 0;
    std::vector<PolicyTask*> threads;
    int core = -1;         // physical core it currently owns, -1 if none
    Time deadline = 0;     // EDF key
    Time placed_at = 0;
  };

  struct Core {
    int cpu_a = -1;
    int cpu_b = -1;  // -1 when SMT is off
    int64_t cookie = 0;
  };

  void HandleMessage(const Message& msg);
  Vm* VmOf(int64_t tid);
  int RunnableThreads(const Vm& vm) const;
  bool CoreFullyAvailable(AgentContext& ctx, const Core& core) const;
  // Commits (up to) both siblings of `core` to `vm` as a synchronized group.
  bool PlaceVm(AgentContext& ctx, int core_index, Vm* vm);
  void ReleaseCore(Vm* vm);

  Options options_;
  Enclave* enclave_ = nullptr;
  Kernel* kernel_ = nullptr;
  int global_cpu_ = -1;

  TaskTable table_;
  std::map<int64_t, Vm> vms_;
  std::vector<Core> cores_;
  std::vector<Message> scratch_msgs_;

  uint64_t cores_scheduled_ = 0;
  uint64_t group_failures_ = 0;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_POLICIES_VM_CORE_SCHED_H_
