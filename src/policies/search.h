// The Google Search policy (§4.4).
//
// Centralized model, one global agent scheduling all 256 CPUs of the AMD
// Rome machine. From the paper:
//  * "The global agent maintains a min-heap ordered by thread runtime, where
//    threads with the least elapsed runtime are picked for execution first."
//  * At startup it builds a model of the machine topology (sysfs there, the
//    Topology object here).
//  * Placement searches inside-out from where the thread last ran: same
//    L1/L2 (core), then CCX (L3), then nearest-neighbour CCX, then the
//    socket — "to avoid expensive thread migration costs due to high
//    inter-CCX communication latencies". That search is the SDK's
//    TieredPlacer (src/agent/sdk/placement.h), including §4.4's bespoke
//    keep-pending-up-to-100us optimization.
//  * NUMA preferences arrive as cpumasks via sched_setaffinity /
//    THREAD_CREATED messages; the agent intersects them with the idle set
//    and skips threads whose preferred CPUs are busy, revisiting them on the
//    next loop iteration.
//
// Predictive placement (ROADMAP item 4): with Options::predictive_placement
// a WakeupAffinityPredictor learns each thread's modal CCX from where it
// actually runs; when a thread has drifted off its home CCX (migrated under
// pressure) the prediction pulls it back to its warm-history CCX instead of
// fanning out blindly from the drifted position.
#ifndef GHOST_SIM_SRC_POLICIES_SEARCH_H_
#define GHOST_SIM_SRC_POLICIES_SEARCH_H_

#include <vector>

#include "src/agent/agent_context.h"
#include "src/agent/policy.h"
#include "src/agent/sdk/sdk.h"
#include "src/predict/estimators.h"

namespace gs {

class SearchPolicy : public Policy {
 public:
  struct Options {
    int global_cpu = -1;
    // Placement tiers (the ablation bench disables these).
    bool ccx_aware = true;
    // Keep a thread pending this long before accepting a cache-cold CPU
    // (0 = migrate immediately).
    Duration max_pending_before_migrate = Microseconds(100);
    bool use_tseq = true;
    // Feed TieredPlacer CCX hints from a per-tid wakeup-affinity predictor.
    bool predictive_placement = false;
  };

  SearchPolicy() : SearchPolicy(Options()) {}
  explicit SearchPolicy(Options options);

  const char* name() const override {
    return options_.predictive_placement ? "predictive-search" : "search";
  }
  void Attached(AgentProcess* process, Enclave* enclave, Kernel* kernel) override;
  void Restore(const std::vector<Enclave::TaskInfo>& dump) override;
  AgentAction RunAgent(AgentContext& ctx) override;

  uint64_t scheduled() const { return scheduled_; }
  uint64_t deferred_for_warmth() const { return placer_.deferred(); }
  uint64_t txn_failures() const { return txn_failures_; }
  uint64_t hint_hits() const { return placer_.hint_hits(); }
  int RunqueueDepth() const override { return static_cast<int>(runqueue_.size()); }

 private:
  void HandleMessage(AgentContext& ctx, const Message& msg);
  void EnqueueRunnable(AgentContext& ctx, PolicyTask* task);

  Options options_;
  Enclave* enclave_ = nullptr;
  Kernel* kernel_ = nullptr;
  int global_cpu_ = -1;

  TaskTable table_;
  MinRunqueue runqueue_;  // keyed by elapsed runtime (with sleeper floor)
  TieredPlacer placer_;
  predict::WakeupAffinityPredictor affinity_;
  int64_t max_runtime_seen_ = 0;
  // Sleeper-floor window: effectively unbounded reproduces the paper's plain
  // least-runtime heap; benchmarks may tighten it.
  Duration sleeper_window_ = Seconds(3600);
  // Iteration scratch, reused across RunAgent calls: the global agent loops
  // millions of times per run, so these keep their capacity instead of
  // paying four vector allocations per iteration.
  std::vector<Message> scratch_msgs_;
  std::vector<std::pair<int64_t, PolicyTask*>> scratch_ordered_;
  std::vector<std::pair<int, PolicyTask*>> scratch_assignments_;
  std::vector<Transaction> scratch_txns_;
  std::vector<Transaction*> scratch_txn_ptrs_;

  uint64_t scheduled_ = 0;
  uint64_t txn_failures_ = 0;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_POLICIES_SEARCH_H_
