// Per-CPU FIFO policy: the paper's Fig 3 pattern.
//
// Each CPU's local agent owns a message queue and a FIFO runqueue. New
// threads (announced on the default queue, drained by the agent of the first
// enclave CPU) are assigned round-robin to per-CPU queues via
// ASSOCIATE_QUEUE. An agent iteration drains its queue, dequeues the next
// thread, commits a local transaction tagged with its Aseq, and yields; an
// ESTALE failure sends it back around the loop, exactly as in Fig 3.
//
// Reference consumer of the DispatchPolicy adapter: message boilerplate
// (queue draining, TaskTable upkeep, per-type routing) lives in the base
// class; this file keeps only the FIFO decisions — which runqueue a task
// lands in per message type, and what Schedule() commits.
#ifndef GHOST_SIM_SRC_POLICIES_PER_CPU_FIFO_H_
#define GHOST_SIM_SRC_POLICIES_PER_CPU_FIFO_H_

#include <vector>

#include "src/agent/agent_context.h"
#include "src/agent/agent_process.h"
#include "src/agent/dispatch_policy.h"
#include "src/agent/sdk/runqueue.h"
#include "src/agent/task_table.h"
#include "src/base/flat_map.h"

namespace gs {

class PerCpuFifoPolicy : public DispatchPolicy {
 public:
  const char* name() const override { return "per-cpu-fifo"; }
  void Attached(AgentProcess* process, Enclave* enclave, Kernel* kernel) override;
  void Restore(const std::vector<Enclave::TaskInfo>& dump) override;

  uint64_t scheduled() const { return scheduled_; }
  uint64_t estale_failures() const { return estale_failures_; }
  size_t QueueDepth(int cpu) const;
  int RunqueueDepth() const override {
    int total = 0;
    for (const CpuSched& sched : cpus_) {
      total += static_cast<int>(sched.runqueue.size());
    }
    return total;
  }

 protected:
  // DispatchPolicy hooks.
  void CollectQueues(AgentContext& ctx, std::vector<MessageQueue*>* queues) override;
  AgentAction Schedule(AgentContext& ctx) override;
  void TaskNew(AgentContext& ctx, PolicyTask* task, const Message& msg) override;
  void TaskWakeup(AgentContext& ctx, PolicyTask* task, const Message& msg) override;
  void TaskPreempted(AgentContext& ctx, PolicyTask* task, const Message& msg) override;
  void TaskYield(AgentContext& ctx, PolicyTask* task, const Message& msg) override;
  void TaskBlocked(AgentContext& ctx, PolicyTask* task, const Message& msg) override;
  void TaskDead(AgentContext& ctx, PolicyTask* task, const Message& msg) override;
  void TaskDeparted(AgentContext& ctx, PolicyTask* task, const Message& msg) override;
  void TaskAffinity(AgentContext& ctx, PolicyTask* task, const Message& msg) override;
  void TimerTick(AgentContext& ctx, const Message& msg) override;

 private:
  struct CpuSched {
    MessageQueue* queue = nullptr;
    FifoRunqueue runqueue;
  };

  // Queues a freshly runnable task on its home CPU (front = resume-after-
  // preemption semantics) and notifies that CPU's agent.
  void EnqueueRunnable(AgentContext& ctx, PolicyTask* task, bool front);
  // Drops a task's runqueue link and home mapping (dead/departed).
  void Evict(AgentContext& ctx, PolicyTask* task);
  // Wakes the (blocked) agent of `cpu` so it notices freshly queued work.
  void NotifyAgent(AgentContext& ctx, int cpu);
  // Round-robin target for newly arrived threads.
  int NextHomeCpu();
  int HomeOf(int64_t tid, int fallback) {
    const int* home = home_cpu_.Find(tid);
    return home == nullptr ? fallback : *home;
  }

  Enclave* enclave_ = nullptr;
  AgentProcess* process_ = nullptr;
  // Dense cpu -> scheduling state (queue == nullptr for CPUs outside the
  // enclave); indexed on every message and every Schedule() call.
  std::vector<CpuSched> cpus_;
  TidMap<int> home_cpu_;  // tid -> owning CPU
  std::vector<int> cpu_list_;
  size_t rr_next_ = 0;
  int boss_cpu_ = -1;  // drains the default queue (new-thread announcements)
  bool rotate_ = false;  // a TIMER_TICK landed this iteration

  uint64_t scheduled_ = 0;
  uint64_t estale_failures_ = 0;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_POLICIES_PER_CPU_FIFO_H_
