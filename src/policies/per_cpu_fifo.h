// Per-CPU FIFO policy: the paper's Fig 3 pattern.
//
// Each CPU's local agent owns a message queue and a FIFO runqueue. New
// threads (announced on the default queue, drained by the agent of the first
// enclave CPU) are assigned round-robin to per-CPU queues via
// ASSOCIATE_QUEUE. An agent iteration drains its queue, dequeues the next
// thread, commits a local transaction tagged with its Aseq, and yields; an
// ESTALE failure sends it back around the loop, exactly as in Fig 3.
#ifndef GHOST_SIM_SRC_POLICIES_PER_CPU_FIFO_H_
#define GHOST_SIM_SRC_POLICIES_PER_CPU_FIFO_H_

#include <map>
#include <vector>

#include "src/agent/agent_context.h"
#include "src/agent/agent_process.h"
#include "src/agent/policy.h"
#include "src/agent/runqueue.h"
#include "src/agent/task_table.h"

namespace gs {

class PerCpuFifoPolicy : public Policy {
 public:
  const char* name() const override { return "per-cpu-fifo"; }
  void Attached(AgentProcess* process, Enclave* enclave, Kernel* kernel) override;
  void Restore(const std::vector<Enclave::TaskInfo>& dump) override;
  AgentAction RunAgent(AgentContext& ctx) override;

  uint64_t scheduled() const { return scheduled_; }
  uint64_t estale_failures() const { return estale_failures_; }
  size_t QueueDepth(int cpu) const;
  int RunqueueDepth() const override {
    int total = 0;
    for (const auto& [cpu, sched] : cpus_) {
      total += static_cast<int>(sched.runqueue.size());
    }
    return total;
  }

 private:
  struct CpuSched {
    MessageQueue* queue = nullptr;
    FifoRunqueue runqueue;
  };

  void HandleMessage(AgentContext& ctx, int cpu, const Message& msg);
  // Wakes the (blocked) agent of `cpu` so it notices freshly queued work.
  void NotifyAgent(AgentContext& ctx, int cpu);
  // Round-robin target for newly arrived threads.
  int NextHomeCpu();

  Enclave* enclave_ = nullptr;
  AgentProcess* process_ = nullptr;
  TaskTable table_;
  std::map<int, CpuSched> cpus_;
  std::map<int64_t, int> home_cpu_;  // tid -> owning CPU
  std::vector<int> cpu_list_;
  size_t rr_next_ = 0;
  int boss_cpu_ = -1;  // drains the default queue (new-thread announcements)
  std::vector<Message> scratch_msgs_;

  uint64_t scheduled_ = 0;
  uint64_t estale_failures_ = 0;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_POLICIES_PER_CPU_FIFO_H_
