#include "src/policies/shinjuku.h"

namespace gs {

std::unique_ptr<CentralizedFifoPolicy> MakeShinjukuPolicy(Duration timeslice,
                                                          int global_cpu,
                                                          Duration probe_interval) {
  CentralizedFifoPolicy::Options options;
  options.global_cpu = global_cpu;
  options.preemption_timeslice = timeslice;
  options.probe_interval = probe_interval;
  return std::make_unique<CentralizedFifoPolicy>(options);
}

std::unique_ptr<CentralizedFifoPolicy> MakeShinjukuShenangoPolicy(
    Duration timeslice, std::function<int(int64_t)> tier_of, int global_cpu,
    Duration probe_interval) {
  CentralizedFifoPolicy::Options options;
  options.global_cpu = global_cpu;
  options.preemption_timeslice = timeslice;
  options.tier_of = std::move(tier_of);
  options.probe_interval = probe_interval;
  return std::make_unique<CentralizedFifoPolicy>(options);
}

std::unique_ptr<CentralizedFifoPolicy> MakeSnapPolicy(
    std::function<int(int64_t)> tier_of, int global_cpu) {
  CentralizedFifoPolicy::Options options;
  options.global_cpu = global_cpu;
  options.preemption_timeslice = 0;
  options.tier_of = std::move(tier_of);
  return std::make_unique<CentralizedFifoPolicy>(options);
}

}  // namespace gs
