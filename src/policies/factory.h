// One construction surface for every scenario-selectable policy.
//
// Before this factory, each entry point (scenario runner, benches) hand-rolled
// its own if/else ladder from PolicySpec to a concrete policy, so adding a
// policy meant touching every ladder. Now all eight scenario kinds construct
// through the same table: `MakeScenarioPolicy` maps a parsed `PolicySpec` plus
// a `PolicyEnv` (the runtime classifiers a spec cannot carry — tid -> tier,
// tid -> cookie) to a ready-to-attach `Policy`.
//
// Authoring surface: new policies should subclass `DispatchPolicy`
// (src/agent/dispatch_policy.h) — the typed message-dispatch adapter — and be
// added to the factory table in factory.cc. Implementing raw `Policy` remains
// supported for policies that need to own the full agent loop (the
// centralized-FIFO family predates the adapter and delegates through it), but
// the dispatch hooks + factory registration is the documented path.
#ifndef GHOST_SIM_SRC_POLICIES_FACTORY_H_
#define GHOST_SIM_SRC_POLICIES_FACTORY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/agent/policy.h"
#include "src/scenario/scenario.h"

namespace gs {

// Runtime context a PolicySpec needs to become a Policy: classifiers over
// tids and the enclave's CPU plan. Everything is optional except
// default_global_cpu; a null classifier means "everything is tier 0 /
// cookie = tid".
struct PolicyEnv {
  // Home CPU for centralized policies when spec.global_cpu < 0
  // (conventionally the first enclave CPU).
  int default_global_cpu = 0;
  // Two-tier policies (shinjuku_shenango, snap): 0 = latency-critical,
  // 1 = batch. The scenario runner classifies enclave antagonist tids as
  // tier 1.
  std::function<int(int64_t)> tier_of;
  // vm_core_sched: trust-domain cookie of a thread.
  std::function<int64_t(int64_t)> cookie_of;
  // ab_test: the scenario's A/B block (borrowed); nullptr = default lanes.
  const scenario::AbTestSpec* ab_test = nullptr;
};

// Sorted names of every kind the factory can build. "cfs" is not in the
// list: it selects the kernel default class, i.e. no agent policy at all.
std::vector<std::string> RegisteredPolicyKinds();
bool HasPolicyKind(const std::string& kind);

// Builds the policy for `spec.kind`. CHECK-fails on "cfs" (callers decide
// not to start an agent instead) and on unknown kinds — the scenario parser
// rejects those before a spec can reach this point.
std::unique_ptr<Policy> MakeScenarioPolicy(const scenario::PolicySpec& spec,
                                           const PolicyEnv& env);

}  // namespace gs

#endif  // GHOST_SIM_SRC_POLICIES_FACTORY_H_
