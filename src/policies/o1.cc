#include "src/policies/o1.h"

#include "src/base/logging.h"

namespace gs {

O1Policy::O1Policy(Options options) : options_(std::move(options)) {
  CHECK(options_.num_priorities >= 1 && options_.num_priorities <= 64)
      << "O1Policy: num_priorities must be in [1, 64], got "
      << options_.num_priorities;
  CHECK_GE(options_.base_timeslice, options_.min_timeslice);
}

Duration O1Policy::TimesliceFor(int priority) const {
  return InterpolatedTimeslice(options_.base_timeslice, options_.min_timeslice,
                               priority, options_.num_priorities);
}

int O1Policy::ClampPriority(int prio) const {
  if (prio < 0) {
    return 0;
  }
  if (prio >= options_.num_priorities) {
    return options_.num_priorities - 1;
  }
  return prio;
}

void O1Policy::Attached(AgentProcess* process, Enclave* enclave, Kernel* kernel) {
  enclave_ = enclave;
  process_ = process;
  const CpuMask& cpus = enclave->cpus();
  boss_cpu_ = cpus.First();
  for (int cpu = cpus.First(); cpu >= 0; cpu = cpus.NextAfter(cpu)) {
    CpuSched& cs = cpus_[cpu];
    cs.queue = enclave->CreateQueue();
    cs.arrays[0].Resize(options_.num_priorities);
    cs.arrays[1].Resize(options_.num_priorities);
    enclave->ConfigQueueWakeup(cs.queue, process->agent_on(cpu));
    enclave->SetCpuQueue(cpu, cs.queue);
    cpu_list_.push_back(cpu);
  }
  enclave->ConfigQueueWakeup(enclave->default_queue(), process->agent_on(boss_cpu_));
}

void O1Policy::Restore(const std::vector<Enclave::TaskInfo>& dump) {
  for (auto& [cpu, sched] : cpus_) {
    sched.arrays[0].Clear();
    sched.arrays[1].Clear();
    sched.active = 0;
  }
  states_.clear();
  table().Clear();
  for (const Enclave::TaskInfo& info : dump) {
    PolicyTask* task = table().Add(info.tid);
    task->tseq = info.tseq;
    task->affinity = info.affinity;
    task->runnable = info.runnable;
    O1Task& st = AttachState(task);
    st.home = NextHomeCpu();
    enclave_->AssociateQueue(info.tid, cpus_[st.home].queue);
    if (info.runnable && !info.on_cpu) {
      task->queued = true;
      st.array = cpus_[st.home].active;
      cpus_[st.home].arrays[st.array].Push(task, st.prio, /*front=*/false);
    }
  }
}

int O1Policy::RunqueueDepth() const {
  int total = 0;
  for (const auto& [cpu, sched] : cpus_) {
    total += static_cast<int>(sched.arrays[0].size() + sched.arrays[1].size());
  }
  return total;
}

O1Policy::O1Task& O1Policy::AttachState(PolicyTask* task) {
  O1Task& st = states_[task->tid];
  st.prio = options_.priority_of
                ? ClampPriority(options_.priority_of(task->tid))
                : options_.num_priorities / 2;
  st.slice.Refresh(TimesliceFor(st.prio));
  task->user = &st;
  return st;
}

int O1Policy::NextHomeCpu() {
  const int cpu = cpu_list_[rr_next_ % cpu_list_.size()];
  ++rr_next_;
  return cpu;
}

void O1Policy::CollectQueues(AgentContext& ctx, std::vector<MessageQueue*>* queues) {
  const int cpu = ctx.agent_cpu();
  if (cpu == boss_cpu_) {
    queues->push_back(enclave_->default_queue());
  }
  queues->push_back(cpus_[cpu].queue);
}

void O1Policy::ChargeRuntime(AgentContext& ctx, PolicyTask* task) {
  StateOf(task).slice.ChargeUntil(ctx.start());
}

void O1Policy::EnqueueRunnable(AgentContext& ctx, PolicyTask* task, bool expired,
                               bool front) {
  if (task->queued) {
    return;
  }
  O1Task& st = StateOf(task);
  CpuSched& cs = cpus_[st.home];
  task->queued = true;
  st.array = expired ? 1 - cs.active : cs.active;
  cs.arrays[st.array].Push(task, st.prio, front);
  NotifyAgent(ctx, st.home);
}

void O1Policy::Dequeue(PolicyTask* task) {
  if (!task->queued) {
    return;
  }
  O1Task& st = StateOf(task);
  cpus_[st.home].arrays[st.array].Remove(task, st.prio);
  task->queued = false;
}

void O1Policy::TaskNew(AgentContext& ctx, PolicyTask* task, const Message& msg) {
  O1Task& st = AttachState(task);
  st.home = NextHomeCpu();
  ctx.Charge(ctx.kernel()->cost().syscall);
  enclave_->AssociateQueue(msg.tid, cpus_[st.home].queue);
  if (task->runnable) {
    EnqueueRunnable(ctx, task, /*expired=*/false, /*front=*/false);
  }
}

void O1Policy::TaskWakeup(AgentContext& ctx, PolicyTask* task, const Message& msg) {
  // Sleeper reward (the O(1) interactivity idea, minus the heuristics):
  // blocking forfeited the rest of the old slice; waking grants a fresh one
  // and re-entry into the active array.
  O1Task& st = StateOf(task);
  st.slice.Refresh(TimesliceFor(st.prio));
  EnqueueRunnable(ctx, task, /*expired=*/false, /*front=*/false);
}

void O1Policy::TaskPreempted(AgentContext& ctx, PolicyTask* task, const Message& msg) {
  ChargeRuntime(ctx, task);
  O1Task& st = StateOf(task);
  if (st.slice.Expired()) {
    // Slice exhausted: refresh and rotate into the expired array.
    ++slice_expirations_;
    st.slice.Refresh(TimesliceFor(st.prio));
    EnqueueRunnable(ctx, task, /*expired=*/true, /*front=*/false);
  } else {
    // Slice unfinished (agent preemption, higher-priority wakeup): resume at
    // the head of its level.
    EnqueueRunnable(ctx, task, /*expired=*/false, /*front=*/true);
  }
}

void O1Policy::TaskYield(AgentContext& ctx, PolicyTask* task, const Message& msg) {
  // sched_yield under O(1): to the expired array, fresh slice.
  ChargeRuntime(ctx, task);
  O1Task& st = StateOf(task);
  st.slice.Refresh(TimesliceFor(st.prio));
  EnqueueRunnable(ctx, task, /*expired=*/true, /*front=*/false);
}

void O1Policy::TaskBlocked(AgentContext& ctx, PolicyTask* task, const Message& msg) {
  ChargeRuntime(ctx, task);
  Dequeue(task);
}

void O1Policy::Evict(AgentContext& ctx, PolicyTask* task) {
  Dequeue(task);
  states_.erase(task->tid);
  // The DispatchPolicy base removes the TaskTable entry after this hook.
}

void O1Policy::TaskDead(AgentContext& ctx, PolicyTask* task, const Message& msg) {
  Evict(ctx, task);
}

void O1Policy::TaskDeparted(AgentContext& ctx, PolicyTask* task, const Message& msg) {
  Evict(ctx, task);
}

void O1Policy::TaskAffinity(AgentContext& ctx, PolicyTask* task, const Message& msg) {
  O1Task& st = StateOf(task);
  if (task->affinity.IsSet(st.home)) {
    return;
  }
  int new_home = -1;
  for (int candidate : cpu_list_) {
    if (task->affinity.IsSet(candidate)) {
      new_home = candidate;
      break;
    }
  }
  if (new_home < 0) {
    return;
  }
  const bool was_queued = task->queued;
  Dequeue(task);
  st.home = new_home;
  ctx.Charge(ctx.kernel()->cost().syscall);
  enclave_->AssociateQueue(task->tid, cpus_[new_home].queue);
  if (was_queued) {
    EnqueueRunnable(ctx, task, /*expired=*/false, /*front=*/false);
  }
}

void O1Policy::NotifyAgent(AgentContext& ctx, int cpu) {
  if (cpu == ctx.agent_cpu()) {
    return;
  }
  Task* agent = process_->agent_on(cpu);
  if (agent == nullptr) {
    return;
  }
  if (agent->state() == TaskState::kBlocked) {
    ctx.Charge(ctx.kernel()->cost().syscall + ctx.kernel()->cost().agent_wakeup);
    ctx.kernel()->Wake(agent);
  } else {
    enclave_->PokeAgent(agent);
  }
}

AgentAction O1Policy::Schedule(AgentContext& ctx) {
  const int cpu = ctx.agent_cpu();
  CpuSched& cs = cpus_[cpu];
  const uint32_t aseq = ctx.ReadAseq();

  if (cs.arrays[cs.active].empty()) {
    if (cs.arrays[1 - cs.active].empty()) {
      return AgentAction::kBlock;
    }
    // The active array drained: swap. Every expired task now runs before any
    // task runs twice — the O(1) starvation-freedom guarantee.
    cs.active = 1 - cs.active;
    ++array_swaps_;
  }

  PolicyTask* next = cs.arrays[cs.active].Pop();
  next->queued = false;
  O1Task& st = StateOf(next);
  Transaction txn = AgentContext::MakeTxn(next->tid, cpu);
  txn.expected_aseq = aseq;
  Transaction* ptr = &txn;
  ctx.Commit(ptr);
  if (txn.committed()) {
    next->assigned_cpu = cpu;
    next->last_cpu = cpu;
    st.slice.MarkPicked(ctx.start());
    ++scheduled_;
    return AgentAction::kYield;
  }
  if (txn.status == TxnStatus::kEStale) {
    ++estale_failures_;
    next->queued = true;
    st.array = cs.active;
    cs.arrays[cs.active].Push(next, st.prio, /*front=*/true);
    return AgentAction::kRunAgain;
  }
  if (next->runnable) {
    if (!next->affinity.IsSet(cpu)) {
      int new_home = cpu;
      for (int candidate : cpu_list_) {
        if (next->affinity.IsSet(candidate)) {
          new_home = candidate;
          break;
        }
      }
      st.home = new_home;
      EnqueueRunnable(ctx, next, /*expired=*/false, /*front=*/false);
    } else {
      next->queued = true;
      st.array = cs.active;
      cs.arrays[cs.active].Push(next, st.prio, /*front=*/false);
    }
  }
  return AgentAction::kRunAgain;
}

}  // namespace gs
