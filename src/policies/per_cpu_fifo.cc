#include "src/policies/per_cpu_fifo.h"

namespace gs {

void PerCpuFifoPolicy::Attached(AgentProcess* process, Enclave* enclave, Kernel* kernel) {
  enclave_ = enclave;
  process_ = process;
  const CpuMask& cpus = enclave->cpus();
  boss_cpu_ = cpus.First();
  cpus_.resize(kernel->topology().num_cpus());
  for (int cpu = cpus.First(); cpu >= 0; cpu = cpus.NextAfter(cpu)) {
    CpuSched& cs = cpus_[cpu];
    cs.queue = enclave->CreateQueue();
    enclave->ConfigQueueWakeup(cs.queue, process->agent_on(cpu));
    enclave->SetCpuQueue(cpu, cs.queue);
    cpu_list_.push_back(cpu);
  }
  // New-thread announcements land on the default queue; the boss agent
  // drains it and spreads threads round-robin via ASSOCIATE_QUEUE.
  enclave->ConfigQueueWakeup(enclave->default_queue(), process->agent_on(boss_cpu_));
}

void PerCpuFifoPolicy::Restore(const std::vector<Enclave::TaskInfo>& dump) {
  // Full view replacement (also the overflow-resync path).
  for (CpuSched& sched : cpus_) {
    sched.runqueue.Clear();
  }
  home_cpu_.Clear();
  table().Clear();
  for (const Enclave::TaskInfo& info : dump) {
    PolicyTask* task = table().Add(info.tid);
    task->tseq = info.tseq;
    task->affinity = info.affinity;
    task->runnable = info.runnable;
    const int home = NextHomeCpu();
    home_cpu_.Insert(info.tid, home);
    enclave_->AssociateQueue(info.tid, cpus_[home].queue);
    if (info.runnable && !info.on_cpu) {
      task->queued = true;
      cpus_[home].runqueue.Push(task);
    }
  }
}

size_t PerCpuFifoPolicy::QueueDepth(int cpu) const {
  if (cpu < 0 || cpu >= static_cast<int>(cpus_.size())) {
    return 0;
  }
  return cpus_[cpu].runqueue.size();
}

int PerCpuFifoPolicy::NextHomeCpu() {
  const int cpu = cpu_list_[rr_next_ % cpu_list_.size()];
  ++rr_next_;
  return cpu;
}

void PerCpuFifoPolicy::CollectQueues(AgentContext& ctx,
                                     std::vector<MessageQueue*>* queues) {
  const int cpu = ctx.agent_cpu();
  if (cpu == boss_cpu_) {
    queues->push_back(enclave_->default_queue());
  }
  queues->push_back(cpus_[cpu].queue);
}

void PerCpuFifoPolicy::TimerTick(AgentContext& ctx, const Message& msg) {
  rotate_ = true;  // rotation decision is made in Schedule()
}

void PerCpuFifoPolicy::TaskNew(AgentContext& ctx, PolicyTask* task, const Message& msg) {
  const int home = NextHomeCpu();
  home_cpu_.Insert(msg.tid, home);
  ctx.Charge(ctx.kernel()->cost().syscall);
  // May fail if more messages are pending on the default queue for this
  // thread; retried when they are drained.
  enclave_->AssociateQueue(msg.tid, cpus_[home].queue);
  if (task->runnable && !task->queued) {
    task->queued = true;
    cpus_[home].runqueue.Push(task);
    NotifyAgent(ctx, home);
  }
}

void PerCpuFifoPolicy::EnqueueRunnable(AgentContext& ctx, PolicyTask* task, bool front) {
  if (task->queued) {
    return;
  }
  const int home = HomeOf(task->tid, ctx.agent_cpu());
  task->queued = true;
  if (front) {
    cpus_[home].runqueue.PushFront(task);  // resume after the interruption
  } else {
    cpus_[home].runqueue.Push(task);
  }
  NotifyAgent(ctx, home);
}

void PerCpuFifoPolicy::TaskWakeup(AgentContext& ctx, PolicyTask* task, const Message& msg) {
  EnqueueRunnable(ctx, task, /*front=*/false);
}

void PerCpuFifoPolicy::TaskPreempted(AgentContext& ctx, PolicyTask* task,
                                     const Message& msg) {
  EnqueueRunnable(ctx, task, /*front=*/true);
}

void PerCpuFifoPolicy::TaskYield(AgentContext& ctx, PolicyTask* task, const Message& msg) {
  EnqueueRunnable(ctx, task, /*front=*/false);
}

void PerCpuFifoPolicy::TaskBlocked(AgentContext& ctx, PolicyTask* task, const Message& msg) {
  if (task->queued) {
    cpus_[HomeOf(task->tid, ctx.agent_cpu())].runqueue.Remove(task);
    task->queued = false;
  }
}

void PerCpuFifoPolicy::Evict(AgentContext& ctx, PolicyTask* task) {
  if (task->queued) {
    cpus_[HomeOf(task->tid, ctx.agent_cpu())].runqueue.Remove(task);
  }
  home_cpu_.Erase(task->tid);
  // The DispatchPolicy base removes the TaskTable entry after this hook.
}

void PerCpuFifoPolicy::TaskDead(AgentContext& ctx, PolicyTask* task, const Message& msg) {
  Evict(ctx, task);
}

void PerCpuFifoPolicy::TaskDeparted(AgentContext& ctx, PolicyTask* task,
                                    const Message& msg) {
  Evict(ctx, task);
}

void PerCpuFifoPolicy::TaskAffinity(AgentContext& ctx, PolicyTask* task,
                                    const Message& msg) {
  // sched_setaffinity may have excluded the task's home CPU: re-home it
  // to an allowed enclave CPU (and move any queued entry along).
  const int home = HomeOf(task->tid, ctx.agent_cpu());
  if (task->affinity.IsSet(home)) {
    return;
  }
  int new_home = -1;
  for (int candidate : cpu_list_) {
    if (task->affinity.IsSet(candidate)) {
      new_home = candidate;
      break;
    }
  }
  if (new_home < 0) {
    return;
  }
  if (task->queued) {
    cpus_[home].runqueue.Remove(task);
    cpus_[new_home].runqueue.Push(task);
  }
  home_cpu_.Insert(task->tid, new_home);
  ctx.Charge(ctx.kernel()->cost().syscall);
  enclave_->AssociateQueue(task->tid, cpus_[new_home].queue);
  NotifyAgent(ctx, new_home);
}

void PerCpuFifoPolicy::NotifyAgent(AgentContext& ctx, int cpu) {
  if (cpu == ctx.agent_cpu()) {
    return;
  }
  // Userspace cross-agent notification (futex-style): wake the sibling agent
  // so it schedules the work we just queued for it.
  Task* agent = process_->agent_on(cpu);
  if (agent == nullptr) {
    return;
  }
  if (agent->state() == TaskState::kBlocked) {
    ctx.Charge(ctx.kernel()->cost().syscall + ctx.kernel()->cost().agent_wakeup);
    ctx.kernel()->Wake(agent);
  } else {
    // The sibling is mid-iteration (or queued to run): flag the push so its
    // check-then-sleep re-runs instead of blocking over a non-empty runqueue.
    enclave_->PokeAgent(agent);
  }
}

AgentAction PerCpuFifoPolicy::Schedule(AgentContext& ctx) {
  const int cpu = ctx.agent_cpu();
  CpuSched& cs = cpus_[cpu];
  const uint32_t aseq = ctx.ReadAseq();
  const bool rotate = rotate_;
  rotate_ = false;

  if (cs.runqueue.empty()) {
    return AgentAction::kBlock;
  }
  // Round-robin on timer ticks: rotate the interrupted thread to the back.
  if (rotate && cs.runqueue.size() >= 2) {
    PolicyTask* front = cs.runqueue.Pop();
    cs.runqueue.Push(front);
  }

  PolicyTask* next = cs.runqueue.Pop();
  next->queued = false;
  Transaction txn = AgentContext::MakeTxn(next->tid, cpu);
  txn.expected_aseq = aseq;
  Transaction* ptr = &txn;
  ctx.Commit(ptr);
  if (txn.committed()) {
    next->assigned_cpu = cpu;
    next->last_cpu = cpu;
    ++scheduled_;
    // Fig 3: the local commit takes effect when the agent vacates its CPU.
    return AgentAction::kYield;
  }
  if (txn.status == TxnStatus::kEStale) {
    ++estale_failures_;
    next->queued = true;
    cs.runqueue.PushFront(next);
    return AgentAction::kRunAgain;  // drain the newer messages and retry
  }
  // Other failure: if the thread may no longer run here, re-home it;
  // otherwise push to the back and retry next time around.
  if (next->runnable) {
    next->queued = true;
    if (!next->affinity.IsSet(cpu)) {
      int new_home = cpu;
      for (int candidate : cpu_list_) {
        if (next->affinity.IsSet(candidate)) {
          new_home = candidate;
          break;
        }
      }
      home_cpu_.Insert(next->tid, new_home);
      cpus_[new_home].runqueue.Push(next);
      NotifyAgent(ctx, new_home);
    } else {
      cs.runqueue.Push(next);
    }
  }
  return AgentAction::kRunAgain;
}

}  // namespace gs
