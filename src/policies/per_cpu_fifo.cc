#include "src/policies/per_cpu_fifo.h"

namespace gs {

void PerCpuFifoPolicy::Attached(AgentProcess* process, Enclave* enclave, Kernel* kernel) {
  enclave_ = enclave;
  process_ = process;
  const CpuMask& cpus = enclave->cpus();
  boss_cpu_ = cpus.First();
  for (int cpu = cpus.First(); cpu >= 0; cpu = cpus.NextAfter(cpu)) {
    CpuSched& cs = cpus_[cpu];
    cs.queue = enclave->CreateQueue();
    enclave->ConfigQueueWakeup(cs.queue, process->agent_on(cpu));
    enclave->SetCpuQueue(cpu, cs.queue);
    cpu_list_.push_back(cpu);
  }
  // New-thread announcements land on the default queue; the boss agent
  // drains it and spreads threads round-robin via ASSOCIATE_QUEUE.
  enclave->ConfigQueueWakeup(enclave->default_queue(), process->agent_on(boss_cpu_));
}

void PerCpuFifoPolicy::Restore(const std::vector<Enclave::TaskInfo>& dump) {
  // Full view replacement (also the overflow-resync path).
  for (auto& [cpu, sched] : cpus_) {
    sched.runqueue.Clear();
  }
  home_cpu_.clear();
  table_.Clear();
  for (const Enclave::TaskInfo& info : dump) {
    PolicyTask* task = table_.Add(info.tid);
    task->tseq = info.tseq;
    task->affinity = info.affinity;
    task->runnable = info.runnable;
    const int home = NextHomeCpu();
    home_cpu_[info.tid] = home;
    enclave_->AssociateQueue(info.tid, cpus_[home].queue);
    if (info.runnable && !info.on_cpu) {
      task->queued = true;
      cpus_[home].runqueue.Push(task);
    }
  }
}

size_t PerCpuFifoPolicy::QueueDepth(int cpu) const {
  auto it = cpus_.find(cpu);
  return it == cpus_.end() ? 0 : it->second.runqueue.size();
}

int PerCpuFifoPolicy::NextHomeCpu() {
  const int cpu = cpu_list_[rr_next_ % cpu_list_.size()];
  ++rr_next_;
  return cpu;
}

void PerCpuFifoPolicy::HandleMessage(AgentContext& ctx, int cpu, const Message& msg) {
  if (msg.type == MessageType::kTimerTick) {
    return;  // rotation decision is made by the caller
  }
  PolicyTask* task = nullptr;
  const TaskTable::Event event = table_.Apply(msg, &task);
  switch (event) {
    case TaskTable::Event::kNew: {
      const int home = NextHomeCpu();
      home_cpu_[msg.tid] = home;
      ctx.Charge(ctx.kernel()->cost().syscall);
      // May fail if more messages are pending on the default queue for this
      // thread; retried when they are drained.
      enclave_->AssociateQueue(msg.tid, cpus_[home].queue);
      if (task->runnable && !task->queued) {
        task->queued = true;
        cpus_[home].runqueue.Push(task);
        NotifyAgent(ctx, home);
      }
      break;
    }
    case TaskTable::Event::kRunnable: {
      const int home = home_cpu_.count(msg.tid) > 0 ? home_cpu_[msg.tid] : cpu;
      if (!task->queued) {
        task->queued = true;
        if (msg.type == MessageType::kTaskPreempted) {
          cpus_[home].runqueue.PushFront(task);  // resume after the interruption
        } else {
          cpus_[home].runqueue.Push(task);
        }
        NotifyAgent(ctx, home);
      }
      break;
    }
    case TaskTable::Event::kBlocked:
      if (task->queued) {
        const int home = home_cpu_.count(msg.tid) > 0 ? home_cpu_[msg.tid] : cpu;
        cpus_[home].runqueue.Remove(task);
        task->queued = false;
      }
      break;
    case TaskTable::Event::kDead: {
      if (task->queued) {
        const int home = home_cpu_.count(msg.tid) > 0 ? home_cpu_[msg.tid] : cpu;
        cpus_[home].runqueue.Remove(task);
      }
      home_cpu_.erase(msg.tid);
      table_.Remove(msg.tid);
      break;
    }
    case TaskTable::Event::kAffinity: {
      // sched_setaffinity may have excluded the task's home CPU: re-home it
      // to an allowed enclave CPU (and move any queued entry along).
      const int home = home_cpu_.count(msg.tid) > 0 ? home_cpu_[msg.tid] : cpu;
      if (!task->affinity.IsSet(home)) {
        int new_home = -1;
        for (int candidate : cpu_list_) {
          if (task->affinity.IsSet(candidate)) {
            new_home = candidate;
            break;
          }
        }
        if (new_home >= 0) {
          if (task->queued) {
            cpus_[home].runqueue.Remove(task);
            cpus_[new_home].runqueue.Push(task);
          }
          home_cpu_[msg.tid] = new_home;
          ctx.Charge(ctx.kernel()->cost().syscall);
          enclave_->AssociateQueue(msg.tid, cpus_[new_home].queue);
          NotifyAgent(ctx, new_home);
        }
      }
      break;
    }
    case TaskTable::Event::kNone:
      break;
  }
}

void PerCpuFifoPolicy::NotifyAgent(AgentContext& ctx, int cpu) {
  if (cpu == ctx.agent_cpu()) {
    return;
  }
  // Userspace cross-agent notification (futex-style): wake the sibling agent
  // so it schedules the work we just queued for it.
  Task* agent = process_->agent_on(cpu);
  if (agent == nullptr) {
    return;
  }
  if (agent->state() == TaskState::kBlocked) {
    ctx.Charge(ctx.kernel()->cost().syscall + ctx.kernel()->cost().agent_wakeup);
    ctx.kernel()->Wake(agent);
  } else {
    // The sibling is mid-iteration (or queued to run): flag the push so its
    // check-then-sleep re-runs instead of blocking over a non-empty runqueue.
    enclave_->PokeAgent(agent);
  }
}

AgentAction PerCpuFifoPolicy::RunAgent(AgentContext& ctx) {
  const int cpu = ctx.agent_cpu();
  CpuSched& cs = cpus_[cpu];
  const uint32_t aseq = ctx.ReadAseq();

  bool rotate = false;
  scratch_msgs_.clear();
  if (cpu == boss_cpu_) {
    ctx.Drain(enclave_->default_queue(), &scratch_msgs_);
  }
  ctx.Drain(cs.queue, &scratch_msgs_);
  for (const Message& msg : scratch_msgs_) {
    if (msg.type == MessageType::kTimerTick) {
      rotate = true;
    }
    HandleMessage(ctx, cpu, msg);
  }

  if (cs.runqueue.empty()) {
    return AgentAction::kBlock;
  }
  // Round-robin on timer ticks: rotate the interrupted thread to the back.
  if (rotate && cs.runqueue.size() >= 2) {
    PolicyTask* front = cs.runqueue.Pop();
    cs.runqueue.Push(front);
  }

  PolicyTask* next = cs.runqueue.Pop();
  next->queued = false;
  Transaction txn = AgentContext::MakeTxn(next->tid, cpu);
  txn.expected_aseq = aseq;
  Transaction* ptr = &txn;
  ctx.Commit(ptr);
  if (txn.committed()) {
    next->assigned_cpu = cpu;
    next->last_cpu = cpu;
    ++scheduled_;
    // Fig 3: the local commit takes effect when the agent vacates its CPU.
    return AgentAction::kYield;
  }
  if (txn.status == TxnStatus::kEStale) {
    ++estale_failures_;
    next->queued = true;
    cs.runqueue.PushFront(next);
    return AgentAction::kRunAgain;  // drain the newer messages and retry
  }
  // Other failure: if the thread may no longer run here, re-home it;
  // otherwise push to the back and retry next time around.
  if (next->runnable) {
    next->queued = true;
    if (!next->affinity.IsSet(cpu)) {
      int new_home = cpu;
      for (int candidate : cpu_list_) {
        if (next->affinity.IsSet(candidate)) {
          new_home = candidate;
          break;
        }
      }
      home_cpu_[next->tid] = new_home;
      cpus_[new_home].runqueue.Push(next);
      NotifyAgent(ctx, new_home);
    } else {
      cs.runqueue.Push(next);
    }
  }
  return AgentAction::kRunAgain;
}

}  // namespace gs
