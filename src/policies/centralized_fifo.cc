#include "src/policies/centralized_fifo.h"

#include "src/agent/agent_process.h"

#include <algorithm>

namespace gs {

CentralizedFifoPolicy::CentralizedFifoPolicy(Options options) : options_(std::move(options)) {
  if (!options_.tier_of) {
    options_.tier_of = [](int64_t) { return 0; };
  }
}

void CentralizedFifoPolicy::Attached(AgentProcess* process, Enclave* enclave,
                                     Kernel* kernel) {
  enclave_ = enclave;
  process_ = process;
  global_cpu_ = options_.global_cpu >= 0 ? options_.global_cpu : enclave->cpus().First();
  running_.assign(kernel->topology().num_cpus(), Running{});
  if (options_.use_fastpath) {
    enclave->InstallFastPath(RingFastPath::Global(kernel->topology().num_cpus()));
  }
}

void CentralizedFifoPolicy::Restore(const std::vector<Enclave::TaskInfo>& dump) {
  // Restore() is also the overflow-resync path: the dump replaces the whole
  // view, so stale runqueue/table state must go first.
  fifo_[0].Clear();
  fifo_[1].Clear();
  running_.assign(running_.size(), Running{});
  table_.Clear();
  for (const Enclave::TaskInfo& info : dump) {
    // Route future messages to this policy's (default) queue, regardless of
    // what the previous agent had configured.
    CHECK(enclave_->AssociateQueue(info.tid, enclave_->default_queue()));
    PolicyTask* task = table_.Add(info.tid);
    task->tseq = info.tseq;
    task->affinity = info.affinity;
    task->tier = options_.tier_of(info.tid);
    task->runnable = info.runnable;
    if (info.on_cpu) {
      task->assigned_cpu = info.cpu;
      running_[info.cpu] = Running{task, 0};
    } else if (info.runnable) {
      Enqueue(task, /*front=*/false);
    }
  }
}

void CentralizedFifoPolicy::Enqueue(PolicyTask* task, bool front) {
  CHECK(!task->queued);
  task->queued = true;
  if (front) {
    fifo_[task->tier].PushFront(task);
  } else {
    fifo_[task->tier].Push(task);
  }
  // Publish to the fast-path ring: if a CPU idles before the agent's next
  // loop iteration, its pick_next_task hook runs this thread immediately.
  if (options_.use_fastpath && task->tier == 0 && enclave_->fastpath() != nullptr) {
    enclave_->fastpath()->Publish(0, task->tid);
  }
}

void CentralizedFifoPolicy::DequeueFromRunqueue(PolicyTask* task) {
  if (task->queued) {
    CHECK(fifo_[task->tier].Remove(task));
    task->queued = false;
  }
}

PolicyTask* CentralizedFifoPolicy::PopTier(int tier) {
  PolicyTask* task = fifo_[tier].Pop();
  if (task != nullptr) {
    task->queued = false;
  }
  return task;
}

PolicyTask* CentralizedFifoPolicy::PopNext() {
  PolicyTask* task = PopTier(0);
  return task != nullptr ? task : PopTier(1);
}

void CentralizedFifoPolicy::ClearRunning(PolicyTask* task) {
  const int cpu = task->assigned_cpu;
  if (cpu >= 0 && cpu < static_cast<int>(running_.size()) &&
      running_[cpu].task == task) {
    running_[cpu] = Running{};
  }
}

void CentralizedFifoPolicy::HandleMessage(const Message& msg) {
  // Snapshot the pre-apply assignment: Apply() clears it.
  PolicyTask* prior = table_.Find(msg.tid);
  const int prior_cpu = prior != nullptr ? prior->assigned_cpu : -1;

  PolicyTask* task = nullptr;
  switch (table_.Apply(msg, &task)) {
    case TaskTable::Event::kNew:
      task->tier = options_.tier_of(task->tid);
      if (task->runnable && !task->queued) {
        Enqueue(task, /*front=*/false);
      }
      break;
    case TaskTable::Event::kRunnable:
      if (prior_cpu >= 0 && prior_cpu < static_cast<int>(running_.size()) &&
          running_[prior_cpu].task == task) {
        running_[prior_cpu] = Running{};
      }
      if (!task->queued) {
        // Preempted / expired requests rejoin at the back (Shinjuku FIFO).
        Enqueue(task, /*front=*/false);
      }
      break;
    case TaskTable::Event::kBlocked:
      if (prior_cpu >= 0 && prior_cpu < static_cast<int>(running_.size()) &&
          running_[prior_cpu].task == task) {
        running_[prior_cpu] = Running{};
      }
      DequeueFromRunqueue(task);
      break;
    case TaskTable::Event::kDead:
      ClearRunning(task);
      DequeueFromRunqueue(task);
      table_.Remove(msg.tid);
      break;
    case TaskTable::Event::kAffinity:
    case TaskTable::Event::kNone:
      break;
  }
}

AgentAction CentralizedFifoPolicy::RunAgent(AgentContext& ctx) {
  if (ctx.agent_cpu() != global_cpu_) {
    return AgentAction::kBlock;  // inactive agent (Fig 2)
  }
  bool progress = false;
  ctx.Charge(options_.extra_loop_cost);

  // Hot handoff (§3.3): if the kernel wants to run a non-ghOSt thread on
  // this CPU, wake the inactive agent on an idle CPU to become the new
  // global agent, then vacate. Policy state is shared process memory, so the
  // successor resumes seamlessly.
  if (ctx.HigherClassWaitersOn(global_cpu_)) {
    const CpuMask idle = ctx.AvailableCpus();
    for (int cpu = idle.First(); cpu >= 0; cpu = idle.NextAfter(cpu)) {
      Task* successor = process_->agent_on(cpu);
      if (successor == nullptr || successor->state() != TaskState::kBlocked) {
        continue;
      }
      global_cpu_ = cpu;
      ++hot_handoffs_;
      ctx.Charge(ctx.kernel()->cost().syscall + ctx.kernel()->cost().agent_wakeup);
      ctx.kernel()->Wake(successor);
      // Yield (not block): the waiting CFS thread takes this CPU, and the
      // old agent re-blocks as a normal inactive agent on its next run.
      return AgentAction::kYield;
    }
    // No idle CPU to hand off to: keep scheduling (the kernel thread waits,
    // exactly as when all CPUs are busy).
  }

  // 1. Drain the global queue (Fig 4: DrainMessageQueue()).
  scratch_msgs_.clear();
  if (ctx.Drain(enclave_->default_queue(), &scratch_msgs_) > 0) {
    progress = true;
  }
  for (const Message& msg : scratch_msgs_) {
    HandleMessage(msg);
  }

  assignments_scratch_.clear();
  std::vector<std::pair<int, PolicyTask*>>& assignments = assignments_scratch_;

  // 2. Timeslice rotation (Shinjuku: preempt after the allotted slice and
  // move the request to the back of the FIFO).
  const Duration slice = options_.preemption_timeslice;
  if (slice > 0) {
    for (int cpu = 0; cpu < static_cast<int>(running_.size()); ++cpu) {
      Running& run = running_[cpu];
      if (run.task == nullptr || ctx.start() - run.since < slice) {
        continue;
      }
      // Rotate only if someone of the same-or-higher priority is waiting.
      PolicyTask* next = nullptr;
      if (!fifo_[0].empty()) {
        next = PopTier(0);
      } else if (run.task->tier == 1 && !fifo_[1].empty()) {
        next = PopTier(1);
      }
      if (next != nullptr) {
        assignments.emplace_back(cpu, next);
        ++preemptions_;
      }
    }
  }

  // 3. Latency-critical wakeups preempt batch threads immediately.
  if (!fifo_[0].empty()) {
    for (int cpu = 0; cpu < static_cast<int>(running_.size()); ++cpu) {
      Running& run = running_[cpu];
      if (run.task == nullptr) {
        continue;
      }
      if (fifo_[0].empty()) {
        break;
      }
      if (run.task->tier == 1 &&
          std::none_of(assignments.begin(), assignments.end(),
                       [cpu](const auto& a) { return a.first == cpu; })) {
        assignments.emplace_back(cpu, PopTier(0));
        ++preemptions_;
      }
    }
  }

  // 4. Fill available CPUs (Fig 4: GetIdleCPUs()).
  const CpuMask avail = ctx.AvailableCpus();
  for (int cpu = avail.First(); cpu >= 0; cpu = avail.NextAfter(cpu)) {
    PolicyTask* next = PopNext();
    if (next == nullptr) {
      break;
    }
    ctx.Charge(ctx.kernel()->cost().agent_per_task_scan);
    assignments.emplace_back(cpu, next);
  }

  // 5. Group-commit all assignments (Fig 4: Schedule()), split into chunks
  // of at most max_group_commit transactions per syscall.
  if (!assignments.empty()) {
    txn_storage_scratch_.assign(assignments.size(), Transaction{});
    txn_ptrs_scratch_.resize(assignments.size());
    std::vector<Transaction>& storage = txn_storage_scratch_;
    std::vector<Transaction*>& txns = txn_ptrs_scratch_;
    for (size_t i = 0; i < assignments.size(); ++i) {
      storage[i] = AgentContext::MakeTxn(assignments[i].second->tid, assignments[i].first);
      if (options_.use_tseq) {
        storage[i].expected_tseq = assignments[i].second->tseq;
      }
      txns[i] = &storage[i];
    }
    const size_t chunk = static_cast<size_t>(options_.max_group_commit);
    for (size_t off = 0; off < txns.size(); off += chunk) {
      ctx.Commit(std::span<Transaction*>(txns).subspan(off, std::min(chunk, txns.size() - off)));
    }
    for (size_t i = 0; i < assignments.size(); ++i) {
      auto [cpu, task] = assignments[i];
      if (storage[i].committed()) {
        task->assigned_cpu = cpu;
        task->last_cpu = cpu;
        running_[cpu] = Running{task, ctx.start() + ctx.cost()};
        ++scheduled_;
        progress = true;
      } else {
        ++txn_failures_;
        // Transaction failed: re-enqueue and retry next loop (Fig 4).
        if (task->runnable && !task->queued) {
          Enqueue(task, /*front=*/true);
        }
      }
    }
  }

  // 6. Arm the next slice-expiry wakeup so preemption is punctual even when
  // no messages arrive. Pointless (and livelock-prone) unless someone is
  // actually waiting to rotate in.
  if (slice > 0 && queue_depth() > 0) {
    Time earliest_since = kTimeNever;
    for (const Running& run : running_) {
      if (run.task != nullptr) {
        earliest_since = std::min(earliest_since, run.since);
      }
    }
    if (earliest_since != kTimeNever) {
      const Time wake = NextSliceWakeup(earliest_since, slice, ctx.start(),
                                        options_.probe_interval);
      ctx.RequestWakeupAt(std::max(wake, ctx.start() + ctx.cost()));
    }
  }

  return progress ? AgentAction::kRunAgain : AgentAction::kPollWait;
}

}  // namespace gs
