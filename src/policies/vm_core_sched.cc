#include "src/policies/vm_core_sched.h"

#include <algorithm>

namespace gs {

VmCoreSchedPolicy::VmCoreSchedPolicy(Options options) : options_(std::move(options)) {
  CHECK(options_.cookie_of != nullptr);
}

void VmCoreSchedPolicy::Attached(AgentProcess* process, Enclave* enclave, Kernel* kernel) {
  enclave_ = enclave;
  kernel_ = kernel;
  global_cpu_ = options_.global_cpu >= 0 ? options_.global_cpu : enclave->cpus().First();

  // Build the schedulable core list: every physical core whose CPUs are all
  // in the enclave, except the global agent's own core (its sibling can
  // never be part of a secure pair while the agent spins).
  const Topology& topo = kernel->topology();
  const int agent_core = topo.cpu(global_cpu_).core;
  for (int core = 0; core < topo.num_cores(); ++core) {
    if (core == agent_core) {
      continue;
    }
    const CpuMask cpus = topo.CoreMask(core);
    bool all_in = true;
    for (int cpu = cpus.First(); cpu >= 0; cpu = cpus.NextAfter(cpu)) {
      all_in &= enclave->cpus().IsSet(cpu);
    }
    if (!all_in) {
      continue;
    }
    Core c;
    c.cpu_a = cpus.First();
    c.cpu_b = cpus.NextAfter(c.cpu_a);
    cores_.push_back(c);
  }
}

VmCoreSchedPolicy::Vm* VmCoreSchedPolicy::VmOf(int64_t tid) {
  const int64_t cookie = options_.cookie_of(tid);
  CHECK_NE(cookie, 0) << "thread " << tid << " has no VM cookie";
  Vm& vm = vms_[cookie];
  vm.cookie = cookie;
  return &vm;
}

void VmCoreSchedPolicy::HandleMessage(const Message& msg) {
  PolicyTask* task = nullptr;
  switch (table_.Apply(msg, &task)) {
    case TaskTable::Event::kNew: {
      Vm* vm = VmOf(msg.tid);
      vm->threads.push_back(task);
      break;
    }
    case TaskTable::Event::kDead: {
      Vm* vm = VmOf(msg.tid);
      vm->threads.erase(std::remove(vm->threads.begin(), vm->threads.end(), task),
                        vm->threads.end());
      table_.Remove(msg.tid);
      break;
    }
    case TaskTable::Event::kRunnable:
    case TaskTable::Event::kBlocked:
    case TaskTable::Event::kAffinity:
    case TaskTable::Event::kNone:
      break;
  }
}

int VmCoreSchedPolicy::RunnableThreads(const Vm& vm) const {
  int count = 0;
  for (const PolicyTask* task : vm.threads) {
    if (task->runnable) {
      ++count;
    }
  }
  return count;
}

bool VmCoreSchedPolicy::CoreFullyAvailable(AgentContext& ctx, const Core& core) const {
  // Both siblings idle with no pending transaction. (ctx.CpuAvailable charges
  // the status-word read.)
  AgentContext& mut = const_cast<AgentContext&>(ctx);
  if (!mut.CpuAvailable(core.cpu_a)) {
    return false;
  }
  return core.cpu_b < 0 || mut.CpuAvailable(core.cpu_b);
}

void VmCoreSchedPolicy::ReleaseCore(Vm* vm) {
  if (vm->core >= 0) {
    cores_[vm->core].cookie = 0;
    vm->core = -1;
  }
}

bool VmCoreSchedPolicy::PlaceVm(AgentContext& ctx, int core_index, Vm* vm) {
  Core& core = cores_[core_index];
  std::vector<PolicyTask*> to_run;
  for (PolicyTask* task : vm->threads) {
    if (task->runnable && task->assigned_cpu < 0 &&
        static_cast<int>(to_run.size()) < (core.cpu_b >= 0 ? 2 : 1)) {
      to_run.push_back(task);
    }
  }
  if (to_run.empty()) {
    return false;
  }

  // Synchronized group: both siblings commit together — a vCPU on one and
  // either a vCPU or a forced-idle marker on the other (Fig 9).
  std::vector<Transaction> storage;
  storage.reserve(2);
  Transaction a = AgentContext::MakeTxn(to_run[0]->tid, core.cpu_a);
  a.expected_tseq = to_run[0]->tseq;
  a.sync_group = core_index;
  storage.push_back(a);
  if (core.cpu_b >= 0) {
    Transaction b;
    if (to_run.size() > 1) {
      b = AgentContext::MakeTxn(to_run[1]->tid, core.cpu_b);
      b.expected_tseq = to_run[1]->tseq;
    } else {
      b.target_cpu = core.cpu_b;
      b.idle = true;  // the VM occupies one sibling; the other runs idle
    }
    b.sync_group = core_index;
    storage.push_back(b);
  }
  std::vector<Transaction*> txns;
  for (Transaction& txn : storage) {
    txns.push_back(&txn);
  }
  ctx.Commit(txns);
  for (const Transaction* txn : txns) {
    if (!txn->committed()) {
      ++group_failures_;
      return false;
    }
  }
  for (size_t i = 0; i < to_run.size(); ++i) {
    to_run[i]->assigned_cpu = i == 0 ? core.cpu_a : core.cpu_b;
    to_run[i]->last_cpu = to_run[i]->assigned_cpu;
  }
  ReleaseCore(vm);
  core.cookie = vm->cookie;
  vm->core = core_index;
  vm->placed_at = ctx.start();
  vm->deadline = ctx.start() + options_.slice;
  ++cores_scheduled_;
  return true;
}

AgentAction VmCoreSchedPolicy::RunAgent(AgentContext& ctx) {
  if (ctx.agent_cpu() != global_cpu_) {
    return AgentAction::kBlock;
  }
  bool progress = false;

  scratch_msgs_.clear();
  if (ctx.Drain(enclave_->default_queue(), &scratch_msgs_) > 0) {
    progress = true;
  }
  for (const Message& msg : scratch_msgs_) {
    HandleMessage(msg);
  }

  // 1. Release cores whose VM has fully drained (blocked or exited).
  for (auto& [cookie, vm] : vms_) {
    if (vm.core >= 0 && RunnableThreads(vm) == 0) {
      bool any_on_cpu = false;
      for (const PolicyTask* task : vm.threads) {
        any_on_cpu |= task->assigned_cpu >= 0;
      }
      if (!any_on_cpu) {
        ReleaseCore(&vm);
      }
    }
  }

  // 2. A placed VM with a newly runnable vCPU re-fills its own core's free
  // sibling (same cookie: no synchronization needed).
  for (auto& [cookie, vm] : vms_) {
    if (vm.core < 0) {
      continue;
    }
    const Core& core = cores_[vm.core];
    for (PolicyTask* task : vm.threads) {
      if (!task->runnable || task->assigned_cpu >= 0) {
        continue;
      }
      for (int cpu : {core.cpu_a, core.cpu_b}) {
        if (cpu >= 0 && ctx.CpuAvailable(cpu)) {
          Transaction txn = AgentContext::MakeTxn(task->tid, cpu);
          txn.expected_tseq = task->tseq;
          Transaction* ptr = &txn;
          ctx.Commit(ptr);
          if (txn.committed()) {
            task->assigned_cpu = cpu;
            task->last_cpu = cpu;
            progress = true;
          }
          break;
        }
      }
    }
  }

  // 3. Fill fully free cores with waiting VMs in EDF order.
  std::vector<Vm*> waiting;
  for (auto& [cookie, vm] : vms_) {
    if (vm.core < 0 && RunnableThreads(vm) > 0) {
      waiting.push_back(&vm);
    }
  }
  std::sort(waiting.begin(), waiting.end(),
            [](const Vm* a, const Vm* b) { return a->deadline < b->deadline; });
  size_t next_waiting = 0;
  for (size_t c = 0; c < cores_.size() && next_waiting < waiting.size(); ++c) {
    if (cores_[c].cookie != 0 || !CoreFullyAvailable(ctx, cores_[c])) {
      continue;
    }
    if (PlaceVm(ctx, static_cast<int>(c), waiting[next_waiting])) {
      ++next_waiting;
      progress = true;
    }
  }

  // 4. EDF rotation: preempt over-slice VMs when others wait.
  Time earliest_expiry = kTimeNever;
  if (next_waiting < waiting.size()) {
    for (auto& [cookie, vm] : vms_) {
      if (next_waiting >= waiting.size()) {
        break;
      }
      if (vm.core < 0) {
        continue;
      }
      if (ctx.start() - vm.placed_at >= options_.slice) {
        // Preempt the whole core with a synchronized commit of the waiting VM.
        Vm* incoming = waiting[next_waiting];
        const int core_index = vm.core;
        // The outgoing VM's threads will report PREEMPTED; mark them free.
        for (PolicyTask* task : vm.threads) {
          task->assigned_cpu = -1;
        }
        ReleaseCore(&vm);
        if (PlaceVm(ctx, core_index, incoming)) {
          ++next_waiting;
          progress = true;
        }
      } else {
        earliest_expiry = std::min(earliest_expiry, vm.placed_at + options_.slice);
      }
    }
  }
  if (earliest_expiry != kTimeNever) {
    ctx.RequestWakeupAt(earliest_expiry);
  }
  return progress ? AgentAction::kRunAgain : AgentAction::kPollWait;
}

}  // namespace gs
