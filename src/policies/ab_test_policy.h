// A/B (canary) scheduling policy: two policy variants sharing one enclave.
//
// The paper's §3.4 upgrade story replaces the whole agent process; fleets
// additionally want to *canary* a scheduler change on a slice of threads
// before promoting it. This policy implements that split inside one
// DispatchPolicy: every thread is hashed into a lane ("base" or "canary",
// canary_percent of the tid space), each lane's scheduling behavior can
// differ (the canary here runs LIFO instead of FIFO when canary_lifo is
// set — a deliberately visible behavioral delta), and all counters are kept
// per lane, both as plain members (deterministic scenario accounting) and as
// StatsRegistry counters labeled {policy=ab-base|ab-canary}.
//
// Promote/rollback is expressed through AgentProcess::SwapPolicy: promoting
// a canary means swapping in an AbTestPolicy with canary_percent=100 (or a
// plain policy), rolling back means canary_percent=0. Lane membership is a
// pure function of the tid, so counters from a split run partition the
// single-policy run's totals exactly.
#ifndef GHOST_SIM_SRC_POLICIES_AB_TEST_POLICY_H_
#define GHOST_SIM_SRC_POLICIES_AB_TEST_POLICY_H_

#include <cstdint>
#include <vector>

#include "src/agent/agent_context.h"
#include "src/agent/agent_process.h"
#include "src/agent/dispatch_policy.h"
#include "src/agent/sdk/runqueue.h"
#include "src/agent/task_table.h"
#include "src/base/flat_map.h"
#include "src/stats/stats.h"

namespace gs {

class AbTestPolicy : public DispatchPolicy {
 public:
  struct Options {
    // Share of the tid space routed to the canary lane, 0..100.
    int canary_percent = 10;
    // Canary behavioral delta: freshly woken canary threads go to the front
    // of their runqueue (LIFO) instead of the back.
    bool canary_lifo = false;
  };

  AbTestPolicy() : AbTestPolicy(Options()) {}
  explicit AbTestPolicy(Options options) : options_(options) {}

  const char* name() const override { return "ab-test"; }
  void Attached(AgentProcess* process, Enclave* enclave, Kernel* kernel) override;
  void Restore(const std::vector<Enclave::TaskInfo>& dump) override;

  // Lane membership: stable hash of the tid, independent of arrival order,
  // so split-run counters partition a single-policy run's totals exactly.
  bool InCanary(int64_t tid) const;

  struct LaneCounters {
    uint64_t scheduled = 0;  // committed transactions
    uint64_t completed = 0;  // THREAD_DEAD seen for the lane
  };
  const LaneCounters& base_counters() const { return lanes_[0]; }
  const LaneCounters& canary_counters() const { return lanes_[1]; }
  uint64_t estale_failures() const { return estale_failures_; }
  int RunqueueDepth() const override {
    int total = 0;
    for (const CpuSched& sched : cpus_) {
      total += static_cast<int>(sched.runqueue.size());
    }
    return total;
  }

 protected:
  void CollectQueues(AgentContext& ctx, std::vector<MessageQueue*>* queues) override;
  AgentAction Schedule(AgentContext& ctx) override;
  void TaskNew(AgentContext& ctx, PolicyTask* task, const Message& msg) override;
  void TaskWakeup(AgentContext& ctx, PolicyTask* task, const Message& msg) override;
  void TaskPreempted(AgentContext& ctx, PolicyTask* task, const Message& msg) override;
  void TaskYield(AgentContext& ctx, PolicyTask* task, const Message& msg) override;
  void TaskBlocked(AgentContext& ctx, PolicyTask* task, const Message& msg) override;
  void TaskDead(AgentContext& ctx, PolicyTask* task, const Message& msg) override;
  void TaskDeparted(AgentContext& ctx, PolicyTask* task, const Message& msg) override;
  void TimerTick(AgentContext& ctx, const Message& msg) override;

 private:
  struct CpuSched {
    MessageQueue* queue = nullptr;
    FifoRunqueue runqueue;
  };

  // lane index: 0 = base, 1 = canary.
  int LaneOf(int64_t tid) const { return InCanary(tid) ? 1 : 0; }
  void EnqueueRunnable(AgentContext& ctx, PolicyTask* task, bool front);
  void Evict(AgentContext& ctx, PolicyTask* task);
  void NotifyAgent(AgentContext& ctx, int cpu);
  int NextHomeCpu();
  int HomeOf(int64_t tid, int fallback) {
    const int* home = home_cpu_.Find(tid);
    return home == nullptr ? fallback : *home;
  }

  Options options_;
  Enclave* enclave_ = nullptr;
  AgentProcess* process_ = nullptr;
  std::vector<CpuSched> cpus_;
  TidMap<int> home_cpu_;
  std::vector<int> cpu_list_;
  size_t rr_next_ = 0;
  int boss_cpu_ = -1;
  bool rotate_ = false;

  LaneCounters lanes_[2];
  uint64_t estale_failures_ = 0;
  // Registry mirrors, labeled per lane (survive SwapPolicy: the registry
  // hands back the same counter objects to the incoming instance).
  Counter* stat_scheduled_[2] = {nullptr, nullptr};
  Counter* stat_completed_[2] = {nullptr, nullptr};
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_POLICIES_AB_TEST_POLICY_H_
