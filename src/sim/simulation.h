// SimulationContext: one whole simulated machine as a single owned value.
//
// Historically the simulator leaned on process-global state (one implicit
// stats registry per process), which forced every multi-run workload —
// multi-seed bench sweeps, explorer walks, the chaos battery — to execute
// serially. A SimulationContext makes ownership explicit, in the same spirit
// as upstream ghost-userspace hanging everything off an Enclave/Scheduler
// object: the context constructs and owns the EventLoop, Kernel (with the
// standard scheduling-class stack), topology, StatsRegistry, the kernel
// Trace, an optional FaultInjector, and the run's RNG seed. Components
// receive their registry/loop through the context instead of reaching for a
// global.
//
// Thread-safety contract: a context is single-threaded internally and shares
// NOTHING with other contexts. Construct, run, inspect, and destroy it on
// one thread; put independent contexts on independent threads freely (that
// is what BatchRunner does). Two contexts built with the same Options and
// seed produce byte-identical results regardless of what other contexts are
// doing on other threads. Explicit StatsRegistry* injection is the only
// metrics path — there is no thread-local or process-global registry.
#ifndef GHOST_SIM_SRC_SIM_SIMULATION_H_
#define GHOST_SIM_SRC_SIM_SIMULATION_H_

#include <memory>
#include <optional>

#include "src/agent/agent_process.h"
#include "src/agent/policy.h"
#include "src/base/rng.h"
#include "src/ghost/machine.h"
#include "src/sim/fault_injector.h"
#include "src/stats/stats.h"

namespace gs {

class SimulationContext {
 public:
  struct Options {
    Topology topology = Topology::Make("sim", 1, 4, 1, 4);
    CostModel cost = CostModel();
    bool with_core_sched = false;
    // Base seed for this run; rng() is seeded with it, and the fault
    // injector (when configured) derives its stream from it.
    uint64_t seed = 1;
    // Whether metric updates are recorded. Off by default, preserving the
    // zero-overhead instrumentation path.
    bool enable_stats = false;
    // Record sched_switch/sched_wakeup-style events into trace().
    bool enable_trace = false;
    // When set, a FaultInjector with this config is constructed and
    // installed on the kernel.
    std::optional<FaultInjector::Config> faults;
    // Registry to record into instead of a context-owned one (borrowed, not
    // owned). A bench harness passes its per-run registry here so one
    // registry accumulates a whole sweep of contexts. nullptr => the context
    // owns its registry.
    StatsRegistry* stats = nullptr;
  };

  explicit SimulationContext(Options options);
  ~SimulationContext();

  SimulationContext(const SimulationContext&) = delete;
  SimulationContext& operator=(const SimulationContext&) = delete;

  // ---- Owned components -----------------------------------------------------
  EventLoop& loop() { return machine_.loop(); }
  Kernel& kernel() { return machine_.kernel(); }
  Machine& machine() { return machine_; }
  const Topology& topology() { return machine_.kernel().topology(); }
  StatsRegistry& stats() { return *stats_; }
  Trace& trace() { return machine_.kernel().trace(); }
  // nullptr unless Options::faults was set.
  FaultInjector* fault_injector() { return fault_injector_.get(); }
  uint64_t seed() const { return options_.seed; }
  // The run's workload RNG, seeded from Options::seed.
  Rng& rng() { return rng_; }

  AgentClass* agent_class() { return machine_.agent_class(); }
  CfsClass* cfs_class() { return machine_.cfs_class(); }
  GhostClass* ghost_class() { return machine_.ghost_class(); }
  CoreSchedClass* core_sched_class() { return machine_.core_sched_class(); }

  // ---- ghOSt setup ----------------------------------------------------------
  std::unique_ptr<Enclave> CreateEnclave(const CpuMask& cpus,
                                         Enclave::Config config = Enclave::Config()) {
    return machine_.CreateEnclave(cpus, config);
  }
  // Convenience: an agent process over `enclave` running `policy`, wired to
  // this context's kernel/ghost class. Not started.
  std::unique_ptr<AgentProcess> CreateAgentProcess(Enclave* enclave,
                                                   std::unique_ptr<Policy> policy);

  // ---- Execution ------------------------------------------------------------
  void RunFor(Duration d) { machine_.RunFor(d); }
  Time now() const { return machine_.now(); }

 private:
  Options options_;
  // Owned registry unless Options::stats borrowed an external one.
  std::unique_ptr<StatsRegistry> owned_stats_;
  StatsRegistry* stats_;
  Machine machine_;
  Rng rng_;
  std::unique_ptr<FaultInjector> fault_injector_;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_SIM_SIMULATION_H_
