// BatchRunner: fan N independent, run-indexed jobs across a fixed-size
// thread pool with deterministic aggregation.
//
// The simulator's multi-run workloads — multi-seed bench sweeps, explorer
// random walks, the chaos battery — are embarrassingly parallel once each
// run owns its whole world (see SimulationContext): run k depends only on
// its index/seed, never on its siblings. BatchRunner exploits exactly that
// shape:
//
//  * the body receives the run index; workers claim indices from an atomic
//    counter, so scheduling is work-stealing-free and allocation-free;
//  * results are written into slot `index` of a pre-sized vector, so the
//    aggregate is byte-identical no matter how runs interleave or how many
//    workers there are (jobs=1 and jobs=N produce the same vector);
//  * an exception in any body is captured and rethrown on the calling thread
//    after all workers join (first one by run index wins).
//
// With jobs <= 1 the bodies run inline on the calling thread — no threads
// are spawned, which keeps single-job runs easy to debug and exactly as
// deterministic as a hand-written loop.
#ifndef GHOST_SIM_SRC_SIM_BATCH_RUNNER_H_
#define GHOST_SIM_SRC_SIM_BATCH_RUNNER_H_

#include <functional>
#include <vector>

namespace gs {

class BatchRunner {
 public:
  // jobs == 0 => one job per hardware thread; otherwise clamped to >= 1.
  explicit BatchRunner(int jobs);

  int jobs() const { return jobs_; }

  // Invokes body(0) .. body(num_runs - 1), each exactly once, across up to
  // jobs() threads (never more than num_runs). Returns when all runs have
  // finished. Rethrows the lowest-indexed captured exception, if any. The
  // body must confine itself to run-local state (a SimulationContext it
  // builds itself, its slot of a results vector); it runs concurrently with
  // other indices.
  void Run(int num_runs, const std::function<void(int run_index)>& body) const;

  // Convenience: materializes `Run` into an index-ordered result vector.
  // fn(k) fills slot k; the returned vector is independent of jobs().
  template <typename R>
  std::vector<R> Map(int num_runs, const std::function<R(int run_index)>& fn) const {
    std::vector<R> results(static_cast<size_t>(num_runs < 0 ? 0 : num_runs));
    Run(num_runs, [&results, &fn](int k) { results[static_cast<size_t>(k)] = fn(k); });
    return results;
  }

 private:
  int jobs_;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_SIM_BATCH_RUNNER_H_
