#include "src/sim/fault_injector.h"

#include "src/stats/stats.h"

namespace gs {

const char* ToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kAgentCrash:
      return "agent_crash";
    case FaultKind::kAgentStall:
      return "agent_stall";
    case FaultKind::kQueueOverflow:
      return "queue_overflow";
    case FaultKind::kIpiDelay:
      return "ipi_delay";
    case FaultKind::kIpiDrop:
      return "ipi_drop";
    case FaultKind::kEStale:
      return "estale";
    case FaultKind::kRemoveTask:
      return "remove_task";
    case FaultKind::kEnclaveDestroy:
      return "enclave_destroy";
  }
  return "?";
}

FaultInjector::FaultInjector(EventLoop* loop, Trace* trace, uint64_t seed,
                             Config config, StatsRegistry* stats)
    : loop_(loop), trace_(trace), rng_(seed), config_(config) {
  if (stats == nullptr) {
    owned_stats_ = std::make_unique<StatsRegistry>();
    stats = owned_stats_.get();
  }
  for (int k = 0; k < kNumFaultKinds; ++k) {
    stat_injected_[k] = stats->GetCounter(
        "fault_injected_total", {{"kind", ToString(static_cast<FaultKind>(k))}});
  }
}

bool FaultInjector::Active() const {
  const Time now = loop_->now();
  return now >= config_.window_start && now < config_.window_end;
}

void FaultInjector::Inject(FaultKind kind, int cpu, int64_t tid) {
  ++counts_[static_cast<size_t>(kind)];
  stat_injected_[static_cast<size_t>(kind)]->Inc();
  if (trace_ != nullptr) {
    trace_->Record(loop_->now(), TraceEventType::kFault, cpu, tid,
                   static_cast<int64_t>(kind));
  }
}

Duration FaultInjector::OnIpi(int to_cpu) {
  if (!Active()) {
    return 0;
  }
  // Sample drop first: a lost interrupt dominates a merely late one.
  if (config_.ipi_drop_probability > 0 &&
      rng_.NextBernoulli(config_.ipi_drop_probability)) {
    Inject(FaultKind::kIpiDrop, to_cpu, 0);
    return config_.ipi_redeliver_delay;
  }
  if (config_.ipi_delay_probability > 0 &&
      rng_.NextBernoulli(config_.ipi_delay_probability)) {
    Inject(FaultKind::kIpiDelay, to_cpu, 0);
    return config_.ipi_extra_delay;
  }
  return 0;
}

bool FaultInjector::OnMessagePost(int queue_id, int64_t tid) {
  if (!Active() || config_.msg_drop_probability <= 0 ||
      !rng_.NextBernoulli(config_.msg_drop_probability)) {
    return false;
  }
  Inject(FaultKind::kQueueOverflow, /*cpu=*/queue_id, tid);
  return true;
}

bool FaultInjector::OnTxnValidate(int target_cpu, int64_t tid) {
  if (!Active() || config_.estale_probability <= 0 ||
      !rng_.NextBernoulli(config_.estale_probability)) {
    return false;
  }
  Inject(FaultKind::kEStale, target_cpu, tid);
  return true;
}

EventId FaultInjector::At(Time when, FaultKind kind, std::function<void()> action) {
  return loop_->ScheduleAt(when, [this, kind, action = std::move(action)] {
    Inject(kind, -1, 0);
    action();
  });
}

EventId FaultInjector::After(Duration delay, FaultKind kind,
                             std::function<void()> action) {
  return At(loop_->now() + delay, kind, std::move(action));
}

uint64_t FaultInjector::total_injected() const {
  uint64_t total = 0;
  for (const uint64_t count : counts_) {
    total += count;
  }
  return total;
}

}  // namespace gs
