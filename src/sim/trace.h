// Scheduling trace: tracepoint-style event recording for the simulated
// machine.
//
// The paper's §2 complaint is that kernel schedulers "cannot be introspected
// with popular debugging tools"; agents, living in userspace, can. This
// module provides the equivalent of sched_switch/sched_wakeup tracepoints
// for the simulator plus ghOSt-specific events (messages, commits), recorded
// into a bounded ring and dumpable as text — the first tool to reach for
// when a policy misbehaves in a test.
#ifndef GHOST_SIM_SRC_SIM_TRACE_H_
#define GHOST_SIM_SRC_SIM_TRACE_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/base/time.h"

namespace gs {

enum class TraceEventType : uint8_t {
  kSwitchIn,    // task started running on cpu
  kSwitchOut,   // task descheduled (arg: PutPrevReason as int)
  kWakeup,      // task became runnable
  kBlock,       // task blocked
  kExit,        // task died
  kMessage,     // ghOSt message posted (arg: MessageType as int)
  kTxnCommit,   // transaction latched (arg: target cpu)
  kTxnFail,     // transaction failed (arg: TxnStatus as int)
  kAgentIter,   // agent loop iteration (arg: accrued cost in ns)
  kMsgDrop,     // message dropped on queue overflow (arg: MessageType as int)
  kFault,       // fault injected (arg: FaultKind as int)
};

const char* ToString(TraceEventType type);

struct TraceEvent {
  Time when = 0;
  TraceEventType type = TraceEventType::kSwitchIn;
  int cpu = -1;
  int64_t tid = 0;
  int64_t arg = 0;
};

// Pluggable consumer of trace events. Sinks observe every recorded event in
// order, independent of the bounded ring (a sink sees events the ring later
// evicts). Exporters (e.g. ChromeTraceExporter) implement this.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnEvent(const TraceEvent& event) = 0;
};

// Bounded in-memory trace buffer. Disabled (zero overhead beyond a branch)
// until Enable() is called.
class Trace {
 public:
  explicit Trace(size_t capacity = 1 << 16) : capacity_(capacity) {}

  void Enable() { enabled_ = true; }
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  // Attaches `sink` (not owned; must outlive the Trace or be removed) and
  // enables tracing — an attached sink that saw no events is useless.
  void AddSink(TraceSink* sink) {
    sinks_.push_back(sink);
    Enable();
  }
  void RemoveSink(TraceSink* sink) {
    sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
  }

  void Record(Time when, TraceEventType type, int cpu, int64_t tid, int64_t arg = 0) {
    if (!enabled_) {
      return;
    }
    Fold(when, type, cpu, tid, arg);
    if (events_.size() >= capacity_) {
      events_.pop_front();
      ++dropped_;
    }
    events_.push_back(TraceEvent{when, type, cpu, tid, arg});
    for (TraceSink* sink : sinks_) {
      sink->OnEvent(events_.back());
    }
  }

  // Rolling FNV-1a digest over every event ever recorded (independent of the
  // ring capacity). Two runs of the same seeded scenario must produce equal
  // digests — the deterministic-replay contract.
  uint64_t digest() const { return digest_; }
  uint64_t recorded() const { return recorded_; }

  size_t size() const { return events_.size(); }
  uint64_t dropped() const { return dropped_; }
  void Clear() {
    events_.clear();
    dropped_ = 0;
    digest_ = 0xcbf29ce484222325ULL;
    recorded_ = 0;
  }

  const std::deque<TraceEvent>& events() const { return events_; }

  // Events of one type (for assertions in tests).
  std::vector<TraceEvent> Filter(TraceEventType type) const;
  // Events touching one tid, in order.
  std::vector<TraceEvent> ForTask(int64_t tid) const;

  // Human-readable dump of the last `max_lines` events.
  std::string Dump(size_t max_lines = 100) const;

 private:
  void Fold(Time when, TraceEventType type, int cpu, int64_t tid, int64_t arg) {
    ++recorded_;
    const uint64_t words[4] = {static_cast<uint64_t>(when),
                               (static_cast<uint64_t>(type) << 32) |
                                   static_cast<uint32_t>(cpu),
                               static_cast<uint64_t>(tid), static_cast<uint64_t>(arg)};
    for (const uint64_t word : words) {
      for (int shift = 0; shift < 64; shift += 8) {
        digest_ ^= (word >> shift) & 0xff;
        digest_ *= 0x100000001b3ULL;  // FNV-1a 64 prime
      }
    }
  }

  size_t capacity_;
  bool enabled_ = false;
  std::vector<TraceSink*> sinks_;
  std::deque<TraceEvent> events_;
  uint64_t dropped_ = 0;
  uint64_t digest_ = 0xcbf29ce484222325ULL;  // FNV-1a 64 offset basis
  uint64_t recorded_ = 0;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_SIM_TRACE_H_
