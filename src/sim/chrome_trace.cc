#include "src/sim/chrome_trace.h"

#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "src/base/json.h"
#include "src/base/logging.h"
#include "src/base/time.h"
#include "src/sim/fault_injector.h"

namespace gs {

namespace {

// Track used for events that carry no CPU (e.g. a wakeup of a task that is
// not placed anywhere yet).
constexpr int kUnboundTrack = 9999;

int TrackOf(const TraceEvent& e) { return e.cpu >= 0 ? e.cpu : kUnboundTrack; }

// Microsecond timestamp with nanosecond resolution, as the format expects.
std::string TsString(Time when) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ToMicros(when));
  return buf;
}

}  // namespace

void ChromeTraceExporter::Render(JsonWriter& w) const {
  auto task_name = [this](int64_t tid) {
    if (task_namer_) {
      const std::string name = task_namer_(tid);
      if (!name.empty()) {
        return name;
      }
    }
    return "tid " + std::to_string(tid);
  };
  auto arg_name = [this](TraceEventType type, int64_t arg) {
    if (arg_namer_) {
      const std::string name = arg_namer_(type, arg);
      if (!name.empty()) {
        return name;
      }
    }
    if (type == TraceEventType::kFault) {
      return std::string(ToString(static_cast<FaultKind>(arg)));
    }
    return std::to_string(arg);
  };
  // Common event prelude. `ph` is the Trace Event Format phase letter.
  auto emit = [&w](const char* ph, Time ts, int track) {
    w.BeginObject();
    w.KV("ph", ph);
    w.Key("ts");
    w.Raw(TsString(ts));
    w.KV("pid", 0);
    w.KV("tid", track);
  };

  // Metadata: name the process and every track that will appear.
  std::set<int> tracks;
  for (const TraceEvent& e : events_) {
    tracks.insert(TrackOf(e));
  }
  w.BeginObject();
  w.KV("ph", "M");
  w.KV("pid", 0);
  w.KV("name", "process_name");
  w.Key("args");
  w.BeginObject();
  w.KV("name", process_name_);
  w.EndObject();
  w.EndObject();
  for (const int track : tracks) {
    w.BeginObject();
    w.KV("ph", "M");
    w.KV("pid", 0);
    w.KV("tid", track);
    w.KV("name", "thread_name");
    w.Key("args");
    w.BeginObject();
    w.KV("name", track == kUnboundTrack ? std::string("(unbound)")
                                        : "cpu " + std::to_string(track));
    w.EndObject();
    w.EndObject();
  }

  std::map<int, int64_t> open_slice;   // cpu track -> tid of the open B slice
  std::set<int64_t> open_async;        // tids with an open message->commit span
  Time last_ts = 0;
  for (const TraceEvent& e : events_) {
    last_ts = e.when;
    const int track = TrackOf(e);
    switch (e.type) {
      case TraceEventType::kSwitchIn: {
        // A lost switch-out (ring truncation) leaves a stale open slice;
        // close it so B/E stay balanced on the track.
        if (auto it = open_slice.find(track); it != open_slice.end()) {
          emit("E", e.when, track);
          w.EndObject();
          open_slice.erase(it);
        }
        emit("B", e.when, track);
        w.KV("name", task_name(e.tid));
        w.KV("cat", "sched");
        w.Key("args");
        w.BeginObject();
        w.KV("tid", e.tid);
        w.EndObject();
        w.EndObject();
        open_slice[track] = e.tid;
        break;
      }
      case TraceEventType::kSwitchOut: {
        auto it = open_slice.find(track);
        if (it == open_slice.end()) {
          break;  // switch-in predates tracing; nothing to close
        }
        emit("E", e.when, track);
        w.EndObject();
        open_slice.erase(it);
        break;
      }
      case TraceEventType::kMessage: {
        emit("i", e.when, track);
        w.KV("name", "msg " + arg_name(e.type, e.arg));
        w.KV("cat", "msg");
        w.KV("s", "t");
        w.EndObject();
        // Async span: the oldest undelivered message for a thread opens the
        // causality arrow that the commit for that thread closes.
        if (e.tid != 0 && open_async.insert(e.tid).second) {
          emit("b", e.when, track);
          w.KV("name", "msg->commit");
          w.KV("cat", "causality");
          w.KV("id", e.tid);
          w.EndObject();
        }
        break;
      }
      case TraceEventType::kTxnCommit: {
        emit("i", e.when, track);
        w.KV("name", "txn_commit");
        w.KV("cat", "txn");
        w.KV("s", "t");
        w.Key("args");
        w.BeginObject();
        w.KV("tid", e.tid);
        w.EndObject();
        w.EndObject();
        if (auto it = open_async.find(e.tid); it != open_async.end()) {
          emit("e", e.when, track);
          w.KV("name", "msg->commit");
          w.KV("cat", "causality");
          w.KV("id", e.tid);
          w.EndObject();
          open_async.erase(it);
        }
        break;
      }
      case TraceEventType::kTxnFail: {
        emit("i", e.when, track);
        w.KV("name", "txn_fail " + arg_name(e.type, e.arg));
        w.KV("cat", "txn");
        w.KV("s", "t");
        w.EndObject();
        break;
      }
      case TraceEventType::kAgentIter: {
        emit("i", e.when, track);
        w.KV("name", "agent_iter");
        w.KV("cat", "agent");
        w.KV("s", "t");
        w.Key("args");
        w.BeginObject();
        w.KV("cost_ns", e.arg);
        w.EndObject();
        w.EndObject();
        break;
      }
      case TraceEventType::kFault: {
        // Global scope: a big vertical marker across every track.
        emit("i", e.when, track);
        w.KV("name", "fault " + arg_name(e.type, e.arg));
        w.KV("cat", "fault");
        w.KV("s", "g");
        w.EndObject();
        break;
      }
      case TraceEventType::kMsgDrop: {
        emit("i", e.when, track);
        w.KV("name", "msg_drop " + arg_name(TraceEventType::kMessage, e.arg));
        w.KV("cat", "msg");
        w.KV("s", "t");
        w.EndObject();
        break;
      }
      case TraceEventType::kWakeup:
      case TraceEventType::kBlock:
      case TraceEventType::kExit: {
        emit("i", e.when, track);
        w.KV("name", std::string(ToString(e.type)) + " " + task_name(e.tid));
        w.KV("cat", "sched");
        w.KV("s", "t");
        w.EndObject();
        break;
      }
    }
  }

  // Close whatever is still running at the end of the capture.
  for (const auto& [track, tid] : open_slice) {
    emit("E", last_ts, track);
    w.EndObject();
  }
  for (const int64_t tid : open_async) {
    emit("e", last_ts, kUnboundTrack);
    w.KV("name", "msg->commit");
    w.KV("cat", "causality");
    w.KV("id", tid);
    w.EndObject();
  }
}

std::string ChromeTraceExporter::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  Render(w);
  w.EndArray();
  w.KV("displayTimeUnit", "ns");
  w.EndObject();
  return w.str();
}

bool ChromeTraceExporter::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    LOG(ERROR) << "cannot open trace output file " << path;
    return false;
  }
  const std::string json = ToJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok) {
    LOG(ERROR) << "short write to trace output file " << path;
  }
  return ok;
}

}  // namespace gs
