// Dependence tags for schedule-space exploration.
//
// Events scheduled on the EventLoop may carry a 64-bit tag describing what
// state they touch. The tags feed the explorer's sleep-set pruning
// (src/verify/explorer): two same-timestamp events whose tags say they
// operate on *different CPUs' private kernel state* commute, so the explorer
// does not explore both orders. Tags are a heuristic under-approximation of
// independence — anything shared (message queues, enclave state, untagged
// events) is treated as dependent-with-everything, which keeps the pruning
// sound in the conservative direction (it only ever prunes the most clearly
// commuting pairs). A tag of 0 means "unclassified" and is never pruned.
#ifndef GHOST_SIM_SRC_SIM_SCHED_TAG_H_
#define GHOST_SIM_SRC_SIM_SCHED_TAG_H_

#include <cstdint>

namespace gs {

enum class SchedTagKind : uint64_t {
  kNone = 0,      // unclassified: dependent with everything
  kCpu = 1,       // per-CPU kernel mechanics: resched, switch, IPI delivery
  kTimer = 2,     // per-CPU periodic tick
  kQueue = 3,     // message-queue delivery / agent wakeup for a queue
  kWatchdog = 4,  // enclave watchdog scan (reads all task state)
};

// Packs (kind, id) into an event tag. `id + 1` keeps every real tag nonzero
// even for id 0.
constexpr uint64_t MakeSchedTag(SchedTagKind kind, uint64_t id) {
  return (static_cast<uint64_t>(kind) << 32) | (id + 1);
}

constexpr SchedTagKind SchedTagKindOf(uint64_t tag) {
  return static_cast<SchedTagKind>(tag >> 32);
}

constexpr uint64_t SchedTagId(uint64_t tag) {
  return (tag & 0xffffffffu) - 1;
}

// True when two same-timestamp events provably commute under the tag
// heuristic: both are per-CPU kernel mechanics (kCpu or kTimer) pinned to
// different CPUs. Everything else — shared queues, watchdog scans, untagged
// events, same-CPU pairs — is treated as dependent.
constexpr bool SchedTagsIndependent(uint64_t a, uint64_t b) {
  return a != 0 && b != 0 &&
         (SchedTagKindOf(a) == SchedTagKind::kCpu ||
          SchedTagKindOf(a) == SchedTagKind::kTimer) &&
         (SchedTagKindOf(b) == SchedTagKind::kCpu ||
          SchedTagKindOf(b) == SchedTagKind::kTimer) &&
         (a & 0xffffffffu) != (b & 0xffffffffu);
}

}  // namespace gs

#endif  // GHOST_SIM_SRC_SIM_SCHED_TAG_H_
