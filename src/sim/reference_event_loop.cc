#include "src/sim/reference_event_loop.h"

#include <algorithm>
#include <utility>

namespace gs {

EventId ReferenceEventLoop::ScheduleInternal(Time when, Duration period,
                                             InlineCallback fn) {
  CHECK_GE(when, now_) << "cannot schedule into the past";
  const EventId id = next_id_++;
  heap_.push_back(Event{when, next_seq_++, id, period, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later());
  live_.insert(id);
  ++pending_count_;
  return id;
}

bool ReferenceEventLoop::Cancel(EventId id) {
  if (id != kInvalidEventId && id == firing_id_ && !firing_cancelled_) {
    // Periodic event cancelled from inside its own callback: suppress the
    // re-arm. Its pending_count_ share was already consumed by the fire.
    firing_cancelled_ = true;
    live_.erase(id);
    return true;
  }
  // Only live (scheduled, unfired) events can be cancelled; a fired or
  // already-cancelled id is a no-op.
  if (live_.erase(id) == 0) {
    return false;
  }
  cancelled_.insert(id);  // tombstone: skipped when it surfaces in the heap
  --pending_count_;
  return true;
}

void ReferenceEventLoop::SkipCancelled() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.front().id);
    if (it == cancelled_.end()) {
      return;
    }
    cancelled_.erase(it);
    std::pop_heap(heap_.begin(), heap_.end(), Later());
    heap_.pop_back();
  }
}

void ReferenceEventLoop::RunTop() {
  std::pop_heap(heap_.begin(), heap_.end(), Later());
  Event event = std::move(heap_.back());
  heap_.pop_back();
  CHECK_GE(event.when, now_);
  now_ = event.when;
  --pending_count_;
  ++executed_count_;
  if (event.period > 0) {
    firing_id_ = event.id;
    firing_cancelled_ = false;
    event.fn();
    firing_id_ = kInvalidEventId;
    if (!firing_cancelled_) {
      // Re-arm with the same id and a seq drawn after the callback, matching
      // both a self-rescheduling callback and EventLoop's in-place re-arm.
      event.when = now_ + event.period;
      event.seq = next_seq_++;
      heap_.push_back(std::move(event));
      std::push_heap(heap_.begin(), heap_.end(), Later());
      ++pending_count_;
    }
  } else {
    live_.erase(event.id);
    event.fn();
  }
}

bool ReferenceEventLoop::RunOne() {
  SkipCancelled();
  if (heap_.empty()) {
    return false;
  }
  RunTop();
  return true;
}

void ReferenceEventLoop::RunUntil(Time deadline) {
  // One tombstone scan per iteration: SkipCancelled leaves a live top (or an
  // empty heap), so RunTop can fire it directly without re-scanning.
  for (;;) {
    SkipCancelled();
    if (heap_.empty() || heap_.front().when > deadline) {
      break;
    }
    RunTop();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

void ReferenceEventLoop::RunUntilIdle() {
  while (RunOne()) {
  }
}

}  // namespace gs
