#include "src/sim/batch_runner.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace gs {

BatchRunner::BatchRunner(int jobs) {
  if (jobs == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs_ = hw == 0 ? 1 : static_cast<int>(hw);
  } else {
    jobs_ = jobs < 1 ? 1 : jobs;
  }
}

void BatchRunner::Run(int num_runs,
                      const std::function<void(int run_index)>& body) const {
  if (num_runs <= 0) {
    return;
  }
  if (jobs_ <= 1 || num_runs == 1) {
    for (int k = 0; k < num_runs; ++k) {
      body(k);
    }
    return;
  }

  std::atomic<int> next{0};
  // First failure by run index; workers keep draining so every index still
  // executes at most once and the pool always joins.
  std::mutex error_mu;
  int error_index = -1;
  std::exception_ptr error;

  auto worker = [&]() {
    for (;;) {
      const int k = next.fetch_add(1, std::memory_order_relaxed);
      if (k >= num_runs) {
        return;
      }
      try {
        body(k);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (error_index < 0 || k < error_index) {
          error_index = k;
          error = std::current_exception();
        }
      }
    }
  };

  const int workers = jobs_ < num_runs ? jobs_ : num_runs;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    pool.emplace_back(worker);
  }
  for (std::thread& t : pool) {
    t.join();
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

}  // namespace gs
