#include "src/sim/event_loop.h"

#include <algorithm>
#include <utility>

namespace gs {

namespace {

// Highest set bit / kLevelBits; level 0 for delta == 0.
inline int LevelForDelta(uint64_t delta) {
  if (delta == 0) {
    return 0;
  }
  return (63 - __builtin_clzll(delta)) / 6;
}

}  // namespace

EventLoop::EventLoop() { buckets_.fill(kNil); }

uint32_t EventLoop::AllocSlot() {
  if (free_head_ != kNil) {
    const uint32_t idx = free_head_;
    free_head_ = slots_[idx].next;
    return idx;
  }
  CHECK_LT(slots_.size(), static_cast<size_t>(kNil)) << "event slab exhausted";
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void EventLoop::FreeSlot(uint32_t idx) {
  EventSlot& s = slots_[idx];
  s.fn.Reset();  // release captures promptly (shared_ptr chains etc.)
  if (++s.gen == 0) {
    s.gen = 1;  // keep MakeId(0, gen) != kInvalidEventId
  }
  s.state = SlotState::kFree;
  s.prev = kNil;
  s.next = free_head_;
  free_head_ = idx;
}

EventId EventLoop::ScheduleInternal(Time when, Duration period,
                                    InlineCallback fn, uint64_t tag) {
  CHECK_GE(when, now_) << "cannot schedule into the past";
  const uint32_t idx = AllocSlot();
  EventSlot& s = slots_[idx];
  s.when = when;
  s.seq = next_seq_++;
  s.tag = tag;
  s.period = period;
  s.cancel_while_firing = false;
  s.fn = std::move(fn);
  ++pending_count_;
  if (!ready_.empty() && when == ready_time_) {
    // The bucket for `when` is the one being fired right now; append so the
    // new event (highest seq) runs after the bucket's remaining events.
    s.state = SlotState::kInReady;
    ready_.push_back(ReadyEntry{idx, s.gen, s.seq});
  } else {
    InsertIntoWheel(idx);
  }
  return MakeId(idx, s.gen);
}

void EventLoop::InsertIntoWheel(uint32_t idx) {
  if (wheel_count_ == 0 && now_ > wheel_time_) {
    // Re-anchor an empty wheel so sparse workloads don't pay cascades for
    // the full distance back to the last processed bucket. Forward only:
    // mid-cascade the wheel position can be ahead of now_, and rewinding it
    // would undo the cascade's progress.
    wheel_time_ = now_;
  }
  EventSlot& s = slots_[idx];
  const uint64_t delta =
      static_cast<uint64_t>(s.when) ^ static_cast<uint64_t>(wheel_time_);
  const int level = LevelForDelta(delta);
  const int slot =
      static_cast<int>((s.when >> (kLevelBits * level)) & (kSlotsPerLevel - 1));
  const int b = level * kSlotsPerLevel + slot;
  s.state = SlotState::kInWheel;
  s.bucket = static_cast<uint16_t>(b);
  s.prev = kNil;
  s.next = buckets_[b];
  if (s.next != kNil) {
    slots_[s.next].prev = idx;
  }
  buckets_[b] = idx;
  occupied_[level] |= uint64_t{1} << slot;
  ++wheel_count_;
}

void EventLoop::UnlinkFromWheel(uint32_t idx) {
  EventSlot& s = slots_[idx];
  if (s.prev != kNil) {
    slots_[s.prev].next = s.next;
  } else {
    buckets_[s.bucket] = s.next;
  }
  if (s.next != kNil) {
    slots_[s.next].prev = s.prev;
  }
  if (buckets_[s.bucket] == kNil) {
    occupied_[s.bucket / kSlotsPerLevel] &=
        ~(uint64_t{1} << (s.bucket % kSlotsPerLevel));
  }
  --wheel_count_;
}

EventLoop::WheelPos EventLoop::NextOccupiedSlot() const {
  // Lowest occupied level wins: level L-1 events all precede the next 64^L
  // boundary, which every occupied level-L slot starts at or after.
  for (int level = 0; level < kLevels; ++level) {
    const int cursor =
        static_cast<int>((wheel_time_ >> (kLevelBits * level)) &
                         (kSlotsPerLevel - 1));
    const uint64_t ahead = occupied_[level] >> cursor;
    if (ahead == 0) {
      continue;
    }
    const int slot = cursor + __builtin_ctzll(ahead);
    const int shift = kLevelBits * (level + 1);
    const uint64_t upper_mask = shift >= 64 ? 0 : (~uint64_t{0} << shift);
    const Time start = static_cast<Time>(
        (static_cast<uint64_t>(wheel_time_) & upper_mask) |
        (static_cast<uint64_t>(slot) << (kLevelBits * level)));
    return WheelPos{level, slot, start};
  }
  LOG(FATAL) << "wheel_count_=" << wheel_count_ << " but no occupied slot";
  return WheelPos{-1, -1, 0};
}

void EventLoop::CascadeSlot(const WheelPos& pos) {
  wheel_time_ = pos.start;
  const int b = pos.level * kSlotsPerLevel + pos.slot;
  uint32_t head = buckets_[b];
  buckets_[b] = kNil;
  occupied_[pos.level] &= ~(uint64_t{1} << pos.slot);
  while (head != kNil) {
    const uint32_t next = slots_[head].next;
    --wheel_count_;
    // Re-inserts relative to the advanced wheel_time_, landing at a strictly
    // lower level (every event here is within the slot's 64^level range).
    InsertIntoWheel(head);
    head = next;
  }
}

void EventLoop::CollectBucket(const WheelPos& pos) {
  wheel_time_ = pos.start;
  ready_.clear();
  ready_pos_ = 0;
  ready_time_ = pos.start;
  const int b = pos.slot;  // level 0
  uint32_t head = buckets_[b];
  buckets_[b] = kNil;
  occupied_[0] &= ~(uint64_t{1} << pos.slot);
  while (head != kNil) {
    EventSlot& s = slots_[head];
    const uint32_t next = s.next;
    CHECK_EQ(s.when, pos.start) << "level-0 bucket must be exact";
    s.state = SlotState::kInReady;
    ready_.push_back(ReadyEntry{head, s.gen, s.seq});
    --wheel_count_;
    head = next;
  }
  // Level-0 buckets are exact, so entries share a timestamp; seq order is
  // global FIFO order no matter which levels each event cascaded through.
  std::sort(ready_.begin(), ready_.end(),
            [](const ReadyEntry& a, const ReadyEntry& b) { return a.seq < b.seq; });
}

void EventLoop::SkipStaleReady() {
  while (ready_pos_ < ready_.size()) {
    const ReadyEntry& e = ready_[ready_pos_];
    const EventSlot& s = slots_[e.slot];
    if (s.state == SlotState::kInReady && s.gen == e.gen) {
      return;
    }
    ++ready_pos_;  // cancelled after collection; slot already freed
  }
  ready_.clear();
  ready_pos_ = 0;
}

void EventLoop::FireReadyFront() { FireReadyEntry(ready_[ready_pos_++]); }

void EventLoop::FireReadyNext() {
  if (oracle_ == nullptr) {
    FireReadyFront();
    return;
  }
  // Collect the live entries of the current batch (stale entries — cancelled
  // after collection — are skipped, exactly as SkipStaleReady would).
  oracle_cands_.clear();
  oracle_positions_.clear();
  for (size_t i = ready_pos_; i < ready_.size(); ++i) {
    const ReadyEntry& e = ready_[i];
    const EventSlot& s = slots_[e.slot];
    if (s.state == SlotState::kInReady && s.gen == e.gen) {
      oracle_cands_.push_back(ScheduleOracle::Candidate{s.tag, e.seq});
      oracle_positions_.push_back(i);
    }
  }
  if (oracle_cands_.size() <= 1) {
    FireReadyFront();  // front is live (SkipStaleReady ran) — no choice here
    return;
  }
  const size_t choice = oracle_->Pick(ready_time_, oracle_cands_);
  CHECK_LT(choice, oracle_cands_.size()) << "oracle picked out of range";
  const size_t pos = oracle_positions_[choice];
  const ReadyEntry e = ready_[pos];
  // Detach the chosen entry; the rest of the batch keeps its seq order.
  ready_.erase(ready_.begin() + static_cast<ptrdiff_t>(pos));
  FireReadyEntry(e);
}

void EventLoop::FireReadyEntry(ReadyEntry e) {
  const uint32_t idx = e.slot;
  EventSlot& s = slots_[idx];
  const Time fire_time = s.when;
  CHECK_GE(fire_time, now_);
  now_ = fire_time;
  --pending_count_;
  ++executed_count_;
  InlineCallback fn = std::move(s.fn);
  if (s.period > 0) {
    s.state = SlotState::kFiring;
    s.cancel_while_firing = false;
    fn();
    // Re-fetch: the callback may have scheduled events and grown the slab.
    EventSlot& s2 = slots_[idx];
    if (s2.cancel_while_firing) {
      FreeSlot(idx);
    } else {
      // Re-arm in place: same id, fresh seq drawn after the callback — the
      // same tie-break order a self-rescheduling callback would get.
      s2.fn = std::move(fn);
      s2.when = fire_time + s2.period;
      s2.seq = next_seq_++;
      ++pending_count_;
      InsertIntoWheel(idx);
    }
  } else {
    // Free before invoking so Cancel(own id) inside the callback reports
    // "already fired" and the slot is immediately reusable.
    FreeSlot(idx);
    fn();
  }
}

bool EventLoop::Cancel(EventId id) {
  const uint32_t idx = static_cast<uint32_t>(id);
  const uint32_t gen = static_cast<uint32_t>(id >> 32);
  if (idx >= slots_.size()) {
    return false;
  }
  EventSlot& s = slots_[idx];
  if (s.gen != gen) {
    return false;  // already fired / cancelled / never existed
  }
  switch (s.state) {
    case SlotState::kInWheel:
      UnlinkFromWheel(idx);
      FreeSlot(idx);
      --pending_count_;
      return true;
    case SlotState::kInReady:
      // Its ReadyEntry goes stale (generation mismatch) and is skipped.
      FreeSlot(idx);
      --pending_count_;
      return true;
    case SlotState::kFiring:
      // Periodic event cancelled from inside its own callback: suppress the
      // re-arm. (Its pending_count_ share was already consumed by the fire.)
      if (s.cancel_while_firing) {
        return false;
      }
      s.cancel_while_firing = true;
      return true;
    case SlotState::kFree:
      return false;
  }
  return false;
}

bool EventLoop::RunOne() {
  for (;;) {
    SkipStaleReady();
    if (HaveLiveReady()) {
      FireReadyNext();
      return true;
    }
    if (wheel_count_ == 0) {
      return false;
    }
    const WheelPos pos = NextOccupiedSlot();
    if (pos.level == 0) {
      CollectBucket(pos);
    } else {
      CascadeSlot(pos);
    }
  }
}

void EventLoop::RunUntil(Time deadline) {
  for (;;) {
    SkipStaleReady();
    if (HaveLiveReady()) {
      if (ready_time_ > deadline) {
        break;  // partially drained bucket past the deadline
      }
      FireReadyNext();
      continue;
    }
    if (wheel_count_ == 0) {
      break;
    }
    const WheelPos pos = NextOccupiedSlot();
    // pos.start lower-bounds every event in the slot, so nothing is due.
    if (pos.start > deadline) {
      break;
    }
    if (pos.level == 0) {
      CollectBucket(pos);
    } else {
      CascadeSlot(pos);
    }
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

void EventLoop::RunUntilIdle() {
  while (RunOne()) {
  }
}

}  // namespace gs
