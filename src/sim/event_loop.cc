#include "src/sim/event_loop.h"

#include <utility>

namespace gs {

EventId EventLoop::ScheduleAt(Time when, std::function<void()> fn) {
  CHECK_GE(when, now_) << "cannot schedule into the past";
  const EventId id = next_id_++;
  heap_.push(Event{when, next_seq_++, id, std::move(fn)});
  live_.insert(id);
  ++pending_count_;
  return id;
}

bool EventLoop::Cancel(EventId id) {
  // Only live (scheduled, unfired) events can be cancelled; a fired or
  // already-cancelled id is a no-op.
  if (live_.erase(id) == 0) {
    return false;
  }
  cancelled_.insert(id);  // tombstone: skipped when it surfaces in the heap
  --pending_count_;
  return true;
}

void EventLoop::SkipCancelled() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) {
      return;
    }
    cancelled_.erase(it);
    heap_.pop();
  }
}

bool EventLoop::RunOne() {
  SkipCancelled();
  if (heap_.empty()) {
    return false;
  }
  // Move the closure out before popping so the event may schedule/cancel.
  Event event = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  CHECK_GE(event.when, now_);
  now_ = event.when;
  live_.erase(event.id);
  --pending_count_;
  ++executed_count_;
  event.fn();
  return true;
}

void EventLoop::RunUntil(Time deadline) {
  for (;;) {
    SkipCancelled();
    if (heap_.empty() || heap_.top().when > deadline) {
      break;
    }
    RunOne();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

void EventLoop::RunUntilIdle() {
  while (RunOne()) {
  }
}

}  // namespace gs
