#include "src/sim/trace.h"

#include <cstdio>

namespace gs {

const char* ToString(TraceEventType type) {
  switch (type) {
    case TraceEventType::kSwitchIn:
      return "switch_in";
    case TraceEventType::kSwitchOut:
      return "switch_out";
    case TraceEventType::kWakeup:
      return "wakeup";
    case TraceEventType::kBlock:
      return "block";
    case TraceEventType::kExit:
      return "exit";
    case TraceEventType::kMessage:
      return "message";
    case TraceEventType::kTxnCommit:
      return "txn_commit";
    case TraceEventType::kTxnFail:
      return "txn_fail";
    case TraceEventType::kAgentIter:
      return "agent_iter";
    case TraceEventType::kMsgDrop:
      return "msg_drop";
    case TraceEventType::kFault:
      return "fault";
  }
  return "?";
}

std::vector<TraceEvent> Trace::Filter(TraceEventType type) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& event : events_) {
    if (event.type == type) {
      out.push_back(event);
    }
  }
  return out;
}

std::vector<TraceEvent> Trace::ForTask(int64_t tid) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& event : events_) {
    if (event.tid == tid) {
      out.push_back(event);
    }
  }
  return out;
}

std::string Trace::Dump(size_t max_lines) const {
  std::string out;
  const size_t start = events_.size() > max_lines ? events_.size() - max_lines : 0;
  for (size_t i = start; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    char line[128];
    std::snprintf(line, sizeof(line), "%12.3fus cpu%-3d tid%-6lld %-11s arg=%lld\n",
                  ToMicros(e.when), e.cpu, static_cast<long long>(e.tid),
                  ToString(e.type), static_cast<long long>(e.arg));
    out += line;
  }
  if (dropped_ > 0) {
    out += "(" + std::to_string(dropped_) + " earlier events dropped)\n";
  }
  return out;
}

}  // namespace gs
