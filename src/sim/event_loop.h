// Discrete-event simulation engine.
//
// The entire machine model runs on one virtual clock: every hardware and
// kernel action (timer tick, IPI delivery, context-switch completion, burst
// completion, watchdog scan) is an event. Events at equal timestamps fire in
// schedule order (stable FIFO), which together with seeded RNGs makes every
// experiment bit-for-bit reproducible.
//
// Implementation: a hierarchical timing wheel over a pooled slab of event
// slots, built for the simulator's bimodal delay distribution (1 ms periodic
// ticks + sub-10 µs scheduler events):
//
//  * Scheduling never allocates in steady state: callbacks are stored inline
//    in the slot (InlineCallback, no heap fallback), and slots are recycled
//    through a free list.
//  * EventId = (slot generation << 32) | slot index, so Cancel() is a true
//    O(1) unlink — no hash lookups, no tombstones surfacing on the pop path.
//  * kLevels wheel levels of 64 slots each (level L has 64^L ns resolution)
//    cover any int64 horizon. Level-0 buckets are exact (1 ns), so a bucket
//    holds only events with identical timestamps; firing order within it is
//    by sequence number, preserving global (time, seq) FIFO regardless of
//    which levels an event cascaded through.
//  * SchedulePeriodic() re-arms in place after each firing (same id, fresh
//    seq), eliminating the per-period push/pop/alloc churn of self-
//    rescheduling callbacks. The re-arm draws its sequence number *after*
//    the callback returns, exactly as a self-rescheduling callback would,
//    so converting a call site does not perturb tie-break order.
//
// The previous binary-heap engine survives as ReferenceEventLoop
// (src/sim/reference_event_loop.h) for differential testing.
#ifndef GHOST_SIM_SRC_SIM_EVENT_LOOP_H_
#define GHOST_SIM_SRC_SIM_EVENT_LOOP_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/base/inline_callback.h"
#include "src/base/logging.h"
#include "src/base/time.h"

namespace gs {

// Opaque handle for cancelling a scheduled event. 0 is never a valid id.
using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

// Schedule-space exploration hook (src/verify/explorer). When installed on an
// EventLoop, the oracle — not the default FIFO tie-break — decides which of
// several events that are ready at the same timestamp fires next. Candidates
// are presented in seq (default FIFO) order, so an oracle that always returns
// 0 reproduces the default schedule exactly. The oracle must not mutate the
// loop from inside Pick().
class ScheduleOracle {
 public:
  struct Candidate {
    uint64_t tag = 0;  // dependence tag supplied at Schedule* time; 0 = none
    uint64_t seq = 0;  // global FIFO sequence number (strictly increasing)
  };

  virtual ~ScheduleOracle() = default;

  // Chooses which candidate fires next among >= 2 events ready at `when`.
  // Must return an index < candidates.size().
  virtual size_t Pick(Time when,
                      const std::vector<Candidate>& candidates) = 0;
};

class EventLoop {
 public:
  EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  Time now() const { return now_; }

  // Schedules `fn` to run at absolute time `when` (must be >= now()).
  //
  // `tag` is an optional dependence label handed to an installed
  // ScheduleOracle (see src/sim/sched_tag.h for the taxonomy); it has no
  // effect on execution and defaults to 0 (unclassified).
  EventId ScheduleAt(Time when, InlineCallback fn, uint64_t tag = 0) {
    return ScheduleInternal(when, /*period=*/0, std::move(fn), tag);
  }

  // Schedules `fn` to run `delay` from now.
  EventId ScheduleAfter(Duration delay, InlineCallback fn, uint64_t tag = 0) {
    CHECK_GE(delay, 0);
    return ScheduleInternal(now_ + delay, /*period=*/0, std::move(fn), tag);
  }

  // Schedules `fn` to fire first at `first` and then every `period` after
  // each firing, re-arming in place: the returned id stays valid (and
  // cancellable) across firings. Cancelling from inside the callback stops
  // the re-arm.
  EventId SchedulePeriodicAt(Time first, Duration period, InlineCallback fn,
                             uint64_t tag = 0) {
    CHECK_GT(period, 0);
    return ScheduleInternal(first, period, std::move(fn), tag);
  }

  EventId SchedulePeriodic(Duration initial_delay, Duration period,
                           InlineCallback fn, uint64_t tag = 0) {
    CHECK_GE(initial_delay, 0);
    return SchedulePeriodicAt(now_ + initial_delay, period, std::move(fn),
                              tag);
  }

  // Installs (or clears, with nullptr) the schedule-exploration oracle. The
  // oracle is consulted only when two or more live events are ready at the
  // same timestamp; with none installed the loop fires in (time, seq) order.
  void set_oracle(ScheduleOracle* oracle) { oracle_ = oracle; }
  ScheduleOracle* oracle() const { return oracle_; }

  // Cancels a pending event. Returns true if the event existed and had not
  // yet fired; false (and no effect) for already-fired, already-cancelled,
  // or unknown ids. For a periodic event, "fired" means fully cancelled:
  // cancelling during or after any individual firing still returns true and
  // stops future firings.
  bool Cancel(EventId id);

  // Runs the next pending event, advancing the clock. Returns false if idle.
  bool RunOne();

  // Runs until the clock reaches `deadline` (events at exactly `deadline`
  // included) or the queue drains.
  void RunUntil(Time deadline);

  void RunFor(Duration d) { RunUntil(now_ + d); }

  // Runs events until the queue is empty. (Never returns while a periodic
  // event is armed.)
  void RunUntilIdle();

  bool empty() const { return pending_count_ == 0; }
  size_t pending_count() const { return pending_count_; }
  uint64_t executed_count() const { return executed_count_; }

 private:
  static constexpr int kLevelBits = 6;
  static constexpr int kSlotsPerLevel = 1 << kLevelBits;  // 64
  // 64^11 = 2^66 > 2^63: enough levels for any int64 timestamp.
  static constexpr int kLevels = 11;
  static constexpr uint32_t kNil = 0xffffffffu;

  enum class SlotState : uint8_t {
    kFree,     // on the free list
    kInWheel,  // linked into a wheel bucket
    kInReady,  // in the ready list of the bucket being fired
    kFiring,   // periodic event currently running its callback
  };

  struct EventSlot {
    Time when = 0;
    uint64_t seq = 0;    // tiebreaker: FIFO among equal timestamps
    uint64_t tag = 0;    // dependence label for ScheduleOracle (0 = none)
    Duration period = 0; // > 0 => periodic
    uint32_t gen = 1;    // bumped on free; stale ids fail the match
    uint32_t next = kNil;  // bucket list when kInWheel; free list when kFree
    uint32_t prev = kNil;
    uint16_t bucket = 0;   // which wheel bucket holds this slot (for unlink)
    SlotState state = SlotState::kFree;
    bool cancel_while_firing = false;
    InlineCallback fn;
  };

  struct ReadyEntry {
    uint32_t slot;
    uint32_t gen;
    uint64_t seq;
  };

  struct WheelPos {
    int level;
    int slot;
    Time start;  // start of the slot's time range (== event time at level 0)
  };

  static EventId MakeId(uint32_t idx, uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | idx;
  }

  EventId ScheduleInternal(Time when, Duration period, InlineCallback fn,
                           uint64_t tag);
  uint32_t AllocSlot();
  void FreeSlot(uint32_t idx);
  void InsertIntoWheel(uint32_t idx);
  void UnlinkFromWheel(uint32_t idx);
  // Lowest-level occupied wheel slot at/after the cursor. Requires
  // wheel_count_ > 0.
  WheelPos NextOccupiedSlot() const;
  // Moves the events of a level>0 slot down a level (exact wheel position
  // advances to the slot's start first).
  void CascadeSlot(const WheelPos& pos);
  // Detaches a level-0 bucket into the ready list, sorted by seq.
  void CollectBucket(const WheelPos& pos);
  // Advances ready_pos_ past cancelled entries.
  void SkipStaleReady();
  bool HaveLiveReady() const { return ready_pos_ < ready_.size(); }
  // Fires the front ready entry (must be live).
  void FireReadyFront();
  // Fires `e` (already detached from ready_; its slot must be live).
  void FireReadyEntry(ReadyEntry e);
  // Fires the next ready event: the front in FIFO order, or whichever live
  // same-timestamp entry the installed oracle picks.
  void FireReadyNext();

  Time now_ = 0;
  // Wheel cursor time: <= every event resident in the wheel. Lags now_ when
  // the wheel is sparse; re-anchored to now_ whenever the wheel empties.
  Time wheel_time_ = 0;
  uint64_t next_seq_ = 0;
  size_t pending_count_ = 0;  // live (scheduled, unfired) events
  size_t wheel_count_ = 0;    // live events resident in the wheel
  uint64_t executed_count_ = 0;

  std::vector<EventSlot> slots_;
  uint32_t free_head_ = kNil;

  std::array<uint32_t, kLevels * kSlotsPerLevel> buckets_;
  std::array<uint64_t, kLevels> occupied_{};

  // The bucket currently being fired (all entries share ready_time_),
  // ascending seq from ready_pos_.
  std::vector<ReadyEntry> ready_;
  size_t ready_pos_ = 0;
  Time ready_time_ = 0;

  ScheduleOracle* oracle_ = nullptr;
  // Scratch buffers for oracle candidate collection (avoid reallocation).
  std::vector<ScheduleOracle::Candidate> oracle_cands_;
  std::vector<size_t> oracle_positions_;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_SIM_EVENT_LOOP_H_
