// Discrete-event simulation engine.
//
// The entire machine model runs on one virtual clock: every hardware and
// kernel action (timer tick, IPI delivery, context-switch completion, burst
// completion, watchdog scan) is an event. Events at equal timestamps fire in
// schedule order (stable FIFO), which together with seeded RNGs makes every
// experiment bit-for-bit reproducible.
#ifndef GHOST_SIM_SRC_SIM_EVENT_LOOP_H_
#define GHOST_SIM_SRC_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/base/logging.h"
#include "src/base/time.h"

namespace gs {

// Opaque handle for cancelling a scheduled event. 0 is never a valid id.
using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventLoop {
 public:
  EventLoop() = default;

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  Time now() const { return now_; }

  // Schedules `fn` to run at absolute time `when` (must be >= now()).
  EventId ScheduleAt(Time when, std::function<void()> fn);

  // Schedules `fn` to run `delay` from now.
  EventId ScheduleAfter(Duration delay, std::function<void()> fn) {
    CHECK_GE(delay, 0);
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Cancels a pending event. Returns true if the event existed and had not
  // yet fired; false (and no effect) for already-fired, already-cancelled,
  // or unknown ids.
  bool Cancel(EventId id);

  // Runs the next pending event, advancing the clock. Returns false if idle.
  bool RunOne();

  // Runs until the clock reaches `deadline` (events at exactly `deadline`
  // included) or the queue drains.
  void RunUntil(Time deadline);

  void RunFor(Duration d) { RunUntil(now_ + d); }

  // Runs events until the queue is empty.
  void RunUntilIdle();

  bool empty() const { return pending_count_ == 0; }
  size_t pending_count() const { return pending_count_; }
  uint64_t executed_count() const { return executed_count_; }

 private:
  struct Event {
    Time when;
    uint64_t seq;  // tiebreaker: FIFO among equal timestamps
    EventId id;
    std::function<void()> fn;
  };

  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  // Pops tombstoned (cancelled) events off the top of the heap.
  void SkipCancelled();

  Time now_ = 0;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  size_t pending_count_ = 0;  // live (non-cancelled) events
  uint64_t executed_count_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> live_;  // scheduled and not yet fired/cancelled
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_SIM_EVENT_LOOP_H_
