// Reference discrete-event engine: the pre-timing-wheel binary-heap
// implementation, kept for differential testing and benchmarking.
//
// Semantics are identical to EventLoop (same (time, seq) FIFO firing order,
// same Cancel() return values, same SchedulePeriodic re-arm point), but the
// machinery is the simple O(log n) heap with tombstoned cancellation. Tests
// run random programs against both engines and require identical firing
// sequences; bench/event_engine measures the speedup of the wheel over this
// engine.
#ifndef GHOST_SIM_SRC_SIM_REFERENCE_EVENT_LOOP_H_
#define GHOST_SIM_SRC_SIM_REFERENCE_EVENT_LOOP_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/base/inline_callback.h"
#include "src/base/logging.h"
#include "src/base/time.h"
#include "src/sim/event_loop.h"  // EventId / kInvalidEventId

namespace gs {

class ReferenceEventLoop {
 public:
  ReferenceEventLoop() = default;

  ReferenceEventLoop(const ReferenceEventLoop&) = delete;
  ReferenceEventLoop& operator=(const ReferenceEventLoop&) = delete;

  Time now() const { return now_; }

  EventId ScheduleAt(Time when, InlineCallback fn) {
    return ScheduleInternal(when, /*period=*/0, std::move(fn));
  }

  EventId ScheduleAfter(Duration delay, InlineCallback fn) {
    CHECK_GE(delay, 0);
    return ScheduleInternal(now_ + delay, /*period=*/0, std::move(fn));
  }

  EventId SchedulePeriodicAt(Time first, Duration period, InlineCallback fn) {
    CHECK_GT(period, 0);
    return ScheduleInternal(first, period, std::move(fn));
  }

  EventId SchedulePeriodic(Duration initial_delay, Duration period,
                           InlineCallback fn) {
    CHECK_GE(initial_delay, 0);
    return SchedulePeriodicAt(now_ + initial_delay, period, std::move(fn));
  }

  bool Cancel(EventId id);
  bool RunOne();
  void RunUntil(Time deadline);
  void RunFor(Duration d) { RunUntil(now_ + d); }
  void RunUntilIdle();

  bool empty() const { return pending_count_ == 0; }
  size_t pending_count() const { return pending_count_; }
  uint64_t executed_count() const { return executed_count_; }

 private:
  struct Event {
    Time when;
    uint64_t seq;  // tiebreaker: FIFO among equal timestamps
    EventId id;
    Duration period;  // > 0 => periodic, re-armed with the same id
    InlineCallback fn;
  };

  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  EventId ScheduleInternal(Time when, Duration period, InlineCallback fn);
  // Pops tombstoned (cancelled) events off the top of the heap.
  void SkipCancelled();
  // Pops and fires the top of the heap, which must be live (SkipCancelled
  // must already have run for this iteration).
  void RunTop();

  Time now_ = 0;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  size_t pending_count_ = 0;  // live (non-cancelled) events
  uint64_t executed_count_ = 0;
  // std::push_heap/pop_heap over a plain vector: pop_heap rotates the top to
  // the back, which can then be moved from without const_cast tricks.
  std::vector<Event> heap_;
  std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> live_;  // scheduled and not yet fired/cancelled
  EventId firing_id_ = kInvalidEventId;  // periodic event mid-callback
  bool firing_cancelled_ = false;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_SIM_REFERENCE_EVENT_LOOP_H_
