// Fault injector: seeded, schedulable failures for the simulated machine.
//
// The paper's robustness story (§3.4) is exactly the set of paths a test
// suite exercises least: agents crash or wedge, message queues fill up,
// IPIs arrive late, transactions go stale in storms, enclaves are torn down
// mid-load. This module makes every one of those failure modes a first-class,
// deterministic event: probabilistic faults are sampled from a dedicated
// xoshiro stream at well-defined hook sites (IPI send, message post,
// transaction validation), and one-shot faults (crash the agent at t=5 ms)
// are scheduled on the event loop like any other hardware event. Every
// injection is recorded into the Trace, so a run's fault history is part of
// its replayable event digest.
//
// Layering: this lives in src/sim (below the kernel) and knows nothing about
// kernels, enclaves, or agents. The kernel and enclave call *into* it at
// their hook sites; scheduled faults carry their effect as a callback built
// by the test harness.
#ifndef GHOST_SIM_SRC_SIM_FAULT_INJECTOR_H_
#define GHOST_SIM_SRC_SIM_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>

#include "src/base/rng.h"
#include "src/base/time.h"
#include "src/sim/event_loop.h"
#include "src/sim/trace.h"
#include "src/stats/stats.h"

namespace gs {

enum class FaultKind : uint8_t {
  kAgentCrash,      // agent process dies (scheduled)
  kAgentStall,      // agent wedges: alive but never schedules (scheduled)
  kQueueOverflow,   // message dropped under queue pressure (hook)
  kIpiDelay,        // IPI delivery delayed (hook)
  kIpiDrop,         // IPI lost; redelivered after the resend timeout (hook)
  kEStale,          // transaction validation forced to ESTALE (hook)
  kRemoveTask,      // thread yanked from its enclave mid-run (scheduled)
  kEnclaveDestroy,  // enclave torn down mid-load (scheduled)
};
inline constexpr int kNumFaultKinds = 8;

const char* ToString(FaultKind kind);

class FaultInjector {
 public:
  struct Config {
    // Probabilistic faults fire only inside [window_start, window_end).
    Time window_start = 0;
    Time window_end = kTimeNever;

    // IPI faults, sampled per SendIpi call.
    double ipi_delay_probability = 0;
    Duration ipi_extra_delay = Microseconds(20);
    double ipi_drop_probability = 0;
    // A "dropped" IPI is recovered by redelivery after this much extra
    // latency (modelling the retry/timeout path: interrupts are not silently
    // lost forever on real hardware either).
    Duration ipi_redeliver_delay = Microseconds(100);

    // Queue-overflow pressure: probability that a message post is dropped as
    // if the target queue were full, per Enclave::Post call.
    double msg_drop_probability = 0;

    // ESTALE storm: probability that a transaction validation is forced to
    // fail with kEStale, per Validate call.
    double estale_probability = 0;
  };

  // `stats` is borrowed (a SimulationContext or Kernel registry); nullptr =>
  // a private, disabled registry backs the fault counters.
  FaultInjector(EventLoop* loop, Trace* trace, uint64_t seed, Config config,
                class StatsRegistry* stats = nullptr);
  FaultInjector(EventLoop* loop, Trace* trace, uint64_t seed)
      : FaultInjector(loop, trace, seed, Config()) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  Config& config() { return config_; }
  const Config& config() const { return config_; }

  // ---- Hook sites (called from kernel/enclave code) --------------------------
  // An IPI is about to be sent to `to_cpu`: returns the extra virtual-time
  // delay to add to its flight (0 = no fault).
  Duration OnIpi(int to_cpu);
  // A message for `tid` is about to be posted to queue `queue_id`: true =
  // drop it (simulated overflow pressure).
  bool OnMessagePost(int queue_id, int64_t tid);
  // A transaction targeting `target_cpu` for `tid` is being validated:
  // true = force kEStale.
  bool OnTxnValidate(int target_cpu, int64_t tid);

  // ---- Scheduled one-shot faults ---------------------------------------------
  // Arms `action` to fire at `when` / after `delay`, counting and tracing it
  // as an injection of `kind`. The action is harness-supplied (e.g. "crash
  // this AgentProcess", "destroy that enclave") so the injector stays below
  // the kernel in the layering.
  EventId At(Time when, FaultKind kind, std::function<void()> action);
  EventId After(Duration delay, FaultKind kind, std::function<void()> action);

  // ---- Statistics -------------------------------------------------------------
  uint64_t injected(FaultKind kind) const {
    return counts_[static_cast<size_t>(kind)];
  }
  uint64_t total_injected() const;

 private:
  bool Active() const;
  // Counts the injection and records it into the trace (arg = FaultKind).
  void Inject(FaultKind kind, int cpu, int64_t tid);

  EventLoop* loop_;
  Trace* trace_;
  Rng rng_;
  Config config_;
  std::array<uint64_t, kNumFaultKinds> counts_{};
  // Per-kind `fault_injected_total{kind=...}` counters, cached at
  // construction (see src/stats/stats.h).
  std::unique_ptr<class StatsRegistry> owned_stats_;
  std::array<class Counter*, kNumFaultKinds> stat_injected_{};
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_SIM_FAULT_INJECTOR_H_
