#include "src/sim/simulation.h"

#include <utility>

namespace gs {

namespace {

StatsRegistry* MakeOrBorrowStats(const SimulationContext::Options& options,
                                 std::unique_ptr<StatsRegistry>* owned) {
  if (options.stats != nullptr) {
    return options.stats;
  }
  *owned = std::make_unique<StatsRegistry>();
  return owned->get();
}

}  // namespace

SimulationContext::SimulationContext(Options options)
    : options_(std::move(options)),
      stats_(MakeOrBorrowStats(options_, &owned_stats_)),
      machine_(options_.topology, options_.cost, options_.with_core_sched, stats_),
      rng_(options_.seed) {
  if (options_.enable_stats) {
    stats_->Enable();
  }
  if (options_.enable_trace) {
    machine_.kernel().trace().Enable();
  }
  if (options_.faults.has_value()) {
    // The injector gets its own seed stream (derived, so faults and workload
    // sampling stay decoupled) and records into this context's registry.
    fault_injector_ = std::make_unique<FaultInjector>(
        &machine_.loop(), &machine_.kernel().trace(),
        options_.seed ^ 0x5eedfa17bad5eedULL, *options_.faults, stats_);
    machine_.kernel().set_fault_injector(fault_injector_.get());
  }
}

SimulationContext::~SimulationContext() {
  // The fault injector must outlive nothing that might fire into it: tear it
  // off the kernel before members destruct in reverse order.
  if (fault_injector_ != nullptr) {
    machine_.kernel().set_fault_injector(nullptr);
  }
}

std::unique_ptr<AgentProcess> SimulationContext::CreateAgentProcess(
    Enclave* enclave, std::unique_ptr<Policy> policy) {
  return std::make_unique<AgentProcess>(&machine_.kernel(), machine_.ghost_class(),
                                        enclave, std::move(policy));
}

}  // namespace gs
