// Chrome-trace / Perfetto JSON exporter for the scheduling trace.
//
// Attached to a Trace as a TraceSink, this collects every recorded event and
// renders the Trace Event Format JSON that chrome://tracing and
// ui.perfetto.dev load directly:
//
//  * one thread track per CPU (pid 0 = the simulated machine), with B/E
//    slices for what each CPU is running — tasks appear by name when a
//    resolver is installed;
//  * async ("b"/"e") slices connecting a ghOSt message posted for a thread
//    to the transaction that commits it — the message->commit causality of
//    Fig 3 made visible;
//  * instant events for wakeups/blocks/preemptions, message drops, and
//    injected faults (faults are global-scope so they flag the whole
//    timeline).
//
// Virtual-time nanoseconds are rendered as the format's microsecond `ts`
// with 3 decimal places, so nanosecond resolution survives.
#ifndef GHOST_SIM_SRC_SIM_CHROME_TRACE_H_
#define GHOST_SIM_SRC_SIM_CHROME_TRACE_H_

#include <functional>
#include <string>
#include <vector>

#include "src/sim/trace.h"

namespace gs {

class JsonWriter;

class ChromeTraceExporter : public TraceSink {
 public:
  explicit ChromeTraceExporter(std::string process_name = "ghost-sim")
      : process_name_(std::move(process_name)) {}

  // TraceSink: buffers the event (rendering happens at ToJson/WriteFile).
  void OnEvent(const TraceEvent& event) override { events_.push_back(event); }

  // Maps a tid to a display name for slices ("agent/3", "worker/17"). By
  // default slices are named "tid <n>". Resolved at render time, so it may
  // be installed after events were recorded but must not outlive its
  // captures (the bench harness installs one per machine run).
  void SetTaskNamer(std::function<std::string(int64_t)> namer) {
    task_namer_ = std::move(namer);
  }
  // Maps an event's `arg` to a display name (message types, txn statuses).
  // sim/ cannot name ghost/'s enums, so the layer that can installs this.
  void SetArgNamer(std::function<std::string(TraceEventType, int64_t)> namer) {
    arg_namer_ = std::move(namer);
  }

  size_t num_events() const { return events_.size(); }

  // Renders the complete trace as a Trace Event Format document:
  //   {"traceEvents": [...], "displayTimeUnit": "ns"}
  std::string ToJson() const;

  // Writes ToJson() to `path`. Returns false (and logs) on I/O failure.
  bool WriteFile(const std::string& path) const;

 private:
  void Render(JsonWriter& w) const;

  std::string process_name_;
  std::function<std::string(int64_t)> task_namer_;
  std::function<std::string(TraceEventType, int64_t)> arg_namer_;
  std::vector<TraceEvent> events_;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_SIM_CHROME_TRACE_H_
