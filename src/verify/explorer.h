// Schedule-space explorer: a DPOR-lite stateless model checker for the
// mechanism layer.
//
// The simulator is deterministic, so one seed explores one schedule. Real
// kernels hit races because hardware reorders concurrent work; the explorer
// reintroduces that adversarial freedom in a controlled way. Whenever the
// EventLoop has more than one event due at the same timestamp (a "batch"),
// the installed ScheduleOracle is asked which fires next — each such batch is
// a choice point. A Scenario builds a fresh machine + workload, installs the
// oracle, runs, and reports whether an invariant broke. The explorer then:
//
//  * enumerates interleavings by iterative depth-first search, re-executing
//    the scenario from scratch with a forced choice prefix (stateless model
//    checking — no snapshotting, the simulator's determinism is the
//    checkpoint);
//  * prunes commutative orderings with sleep sets over a conservative
//    independence relation on event tags (src/sim/sched_tag.h): only strictly
//    per-CPU kernel mechanics on distinct CPUs commute, everything untagged
//    or shared is dependent;
//  * falls back to seeded bounded-depth random walks when the space is too
//    large to exhaust;
//  * delta-debugs the choice trace of the first violating schedule down to a
//    minimal reproducer and can save/load it as a text replay file that
//    re-executes byte-deterministically.
//
// Scenarios should return a *time-normalized* violation description (strip
// the "[invariant t=..ns]" prefix; NormalizeViolation() does this): shrinking
// keeps a reduction only if the violation's first line is unchanged, and
// reordered schedules legitimately detect the same violation at different
// virtual times.
#ifndef GHOST_SIM_SRC_VERIFY_EXPLORER_H_
#define GHOST_SIM_SRC_VERIFY_EXPLORER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/base/time.h"
#include "src/sim/event_loop.h"

namespace gs {

class Explorer {
 public:
  enum class Mode {
    kExhaustive,   // DFS with sleep-set pruning, up to max_schedules
    kRandomWalk,   // seeded random choices, max_schedules independent walks
  };

  struct Options {
    Mode mode = Mode::kExhaustive;
    // Budget: total scenario executions (DFS backtracks or random walks).
    uint64_t max_schedules = 4096;
    // Choice points deeper than this are not branched (DFS) / not randomized
    // (walk); the default schedule is taken. Bounds the search depth without
    // truncating the execution itself.
    int max_branch_depth = 64;
    bool sleep_sets = true;
    uint64_t seed = 1;  // random-walk seed
    // Delta-debug the first violating trace down to a minimal one.
    bool shrink = true;
    uint64_t max_shrink_runs = 512;
    bool stop_at_first = true;
  };

  // Builds a fresh deterministic world, installs `oracle` on its EventLoop,
  // runs a fixed workload, and returns a violation description ("" if clean).
  // Must be repeatable: same oracle decisions => same execution.
  using Scenario = std::function<std::string(ScheduleOracle* oracle)>;

  // trace[k] = candidate index taken at the k-th choice point. Positions
  // beyond the trace (and index 0) mean "default order".
  using ChoiceTrace = std::vector<uint32_t>;

  struct Result {
    bool violation_found = false;
    std::string violation;     // first violation seen (normalized by scenario)
    ChoiceTrace trace;         // choices of the first violating schedule
    ChoiceTrace shrunk_trace;  // after delta-debugging (== trace if !shrink)
    uint64_t schedules = 0;    // scenario executions (excluding shrink runs)
    uint64_t choice_points = 0;  // total oracle consultations across runs
    uint64_t pruned = 0;         // branches skipped by sleep sets
    int max_depth = 0;           // deepest choice point seen in any run
    uint64_t shrink_runs = 0;
  };

  Explorer(Scenario scenario, Options options);

  Result Explore();

  // Builds a fresh, thread-confined Scenario for one parallel sub-search.
  // Scenarios close over the world they build, so sharing one closure across
  // threads would share that world; a factory keeps each walk's machine
  // private to its worker.
  using ScenarioFactory = std::function<Scenario()>;

  // Random-walk search fanned across a BatchRunner pool of `jobs` workers
  // (0 = one per hardware thread). The global walk space seed..seed+budget-1
  // is split into contiguous per-worker blocks, so with stop_at_first the
  // merged result reports exactly the violation a serial walk of the same
  // budget would have found first — the outcome is independent of both the
  // job count and thread interleaving. Totals (schedules, choice points,
  // max depth) are merged run-indexed; shrinking happens once, after the
  // merge, on the calling thread. options.mode is ignored (always
  // kRandomWalk).
  static Result ExploreParallelWalks(const ScenarioFactory& factory,
                                     const Options& options, int jobs);

  // Re-executes the scenario forcing `trace`; returns the violation ("" if
  // none). Deterministic: the same trace always yields the same execution.
  std::string Replay(const ChoiceTrace& trace);

  // Text replay-file round trip. Format:
  //   # ghost-sim explorer replay v1
  //   scenario: <name>
  //   violation: <description>   (informational)
  //   choices: c0 c1 c2 ...
  static bool SaveTrace(const std::string& path, const std::string& scenario_name,
                        const std::string& violation, const ChoiceTrace& trace);
  static bool LoadTrace(const std::string& path, std::string* scenario_name,
                        ChoiceTrace* trace);

 private:
  struct Frame;
  class DfsOracle;
  class ReplayOracle;
  class WalkOracle;

  Result ExploreDfs();
  Result ExploreRandomWalk();
  void Shrink(Result* result);

  Scenario scenario_;
  Options options_;
};

// Strips the "[invariant t=<...>ns] " prefix from the first line of an
// InvariantChecker report so that the same logical violation compares equal
// across schedules that detect it at different virtual times.
std::string NormalizeViolation(const std::string& report);

}  // namespace gs

#endif  // GHOST_SIM_SRC_VERIFY_EXPLORER_H_
