#include "src/verify/invariants.h"

#include <cstring>
#include <sstream>

#include "src/ghost/enclave.h"
#include "src/ghost/ghost_class.h"
#include "src/ghost/ghost_task.h"
#include "src/kernel/kernel.h"

namespace gs {

InvariantChecker::InvariantChecker(Kernel* kernel, Options options)
    : kernel_(kernel), options_(options) {
  last_busy_.assign(kernel_->topology().num_cpus(), kernel_->now());
}

InvariantChecker::~InvariantChecker() { Stop(); }

void InvariantChecker::Watch(Enclave* enclave) { enclaves_.push_back(enclave); }

void InvariantChecker::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  ScheduleNext();
}

void InvariantChecker::Stop() {
  running_ = false;
  if (scan_event_ != kInvalidEventId) {
    kernel_->loop()->Cancel(scan_event_);
    scan_event_ = kInvalidEventId;
  }
}

void InvariantChecker::ScheduleNext() {
  // Periodic: Stop() cancels the armed event; the running_ guard is belt and
  // braces against a stray firing.
  scan_event_ = kernel_->loop()->SchedulePeriodic(
      options_.period, options_.period, [this] {
        if (!running_) {
          return;
        }
        Scan();
      });
}

void InvariantChecker::CheckNow() { Scan(); }

std::string InvariantChecker::Report() const {
  std::ostringstream out;
  for (const std::string& v : violations_) {
    out << v << "\n";
  }
  return out.str();
}

void InvariantChecker::Violation(const std::string& message) {
  if (violations_.size() >= options_.max_violations) {
    return;
  }
  if (!seen_.insert(message).second) {
    return;  // already reported (possibly at an earlier scan)
  }
  std::ostringstream out;
  out << "[invariant t=" << kernel_->now() << "ns] " << message;
  violations_.push_back(out.str());
}

void InvariantChecker::Scan() {
  ++scans_;
  CheckCpus();
  CheckGhostMembership();
  for (Enclave* enclave : enclaves_) {
    CheckEnclave(enclave);
  }
  CheckOrphanedCpuState();
  CheckConservation();
}

void InvariantChecker::CheckOrphanedCpuState() {
  GhostClass* cls = nullptr;
  for (Enclave* enclave : enclaves_) {
    if (enclave->ghost_class() != nullptr) {
      cls = enclave->ghost_class();  // one ghost class per kernel
      break;
    }
  }
  if (cls == nullptr) {
    return;
  }
  const int num_cpus = kernel_->topology().num_cpus();
  for (int cpu = 0; cpu < num_cpus; ++cpu) {
    // A forced-idle marker under a pending latch wedges the CPU permanently:
    // PickNext() returns nullptr so the latch never clears, and every later
    // commit fails ETXNPENDING — the latched task is stranded forever. The
    // only way to reach this state is a stale idle-IPI acting on behalf of an
    // invalidated commit (the commit-generation guard exists to drop it).
    if (Task* latched = cls->LatchedTask(cpu);
        latched != nullptr && cls->forced_idle(cpu)) {
      Violation("cpu " + std::to_string(cpu) + " holds a latch for '" +
                latched->name() +
                "' under a forced-idle marker (wedged commit)");
    }
    if (cls->EnclaveForCpu(cpu) != nullptr) {
      continue;  // the owning enclave's checks cover it
    }
    if (Task* latched = cls->LatchedTask(cpu); latched != nullptr) {
      Violation("cpu " + std::to_string(cpu) + " has no enclave but holds a latch for '" +
                latched->name() + "' (leaked across teardown)");
    }
    if (cls->forced_idle(cpu)) {
      Violation("cpu " + std::to_string(cpu) +
                " has no enclave but is marked forced-idle (leaked across teardown)");
    }
  }
}

void InvariantChecker::CheckCpus() {
  const int num_cpus = kernel_->topology().num_cpus();
  std::map<const Task*, int> running_on;
  for (int cpu = 0; cpu < num_cpus; ++cpu) {
    const CpuState& cs = kernel_->cpu_state(cpu);
    const Task* current = cs.current;
    if (current == nullptr) {
      continue;
    }
    // A current task may transiently be kBlocked/kDead while its zero-delay
    // deschedule event is queued behind this scan; kRunnable/kCreated never.
    if (current->state() == TaskState::kRunnable ||
        current->state() == TaskState::kCreated) {
      Violation("cpu " + std::to_string(cpu) + " current '" + current->name() +
                "' is " + ToString(current->state()) + ", not running");
    }
    if (current->cpu() != cpu) {
      Violation("cpu " + std::to_string(cpu) + " current '" + current->name() +
                "' believes it is on cpu " + std::to_string(current->cpu()));
    }
    auto [it, inserted] = running_on.emplace(current, cpu);
    if (!inserted) {
      Violation("task '" + current->name() + "' is current on cpus " +
                std::to_string(it->second) + " and " + std::to_string(cpu));
    }
  }
  // Every running task is current exactly where it says it runs.
  for (const auto& task : kernel_->tasks()) {
    if (task->state() != TaskState::kRunning) {
      continue;
    }
    const int cpu = task->cpu();
    if (cpu < 0 || cpu >= num_cpus) {
      Violation("running task '" + task->name() + "' has invalid cpu " +
                std::to_string(cpu));
      continue;
    }
    if (kernel_->cpu_state(cpu).current != task) {
      Violation("running task '" + task->name() + "' is not current on cpu " +
                std::to_string(cpu));
    }
  }
}

void InvariantChecker::CheckGhostMembership() {
  // No lost tasks: a live thread in the ghOSt class must be enclave-managed
  // (its GhostTask back-pointers intact); only the enclave-destroy/remove
  // paths may strip ghOSt state, and they move the thread to CFS first.
  for (const auto& task : kernel_->tasks()) {
    if (task->state() == TaskState::kDead || task->sched_class() == nullptr) {
      continue;
    }
    const bool in_ghost_class = std::strcmp(task->sched_class()->name(), "ghost") == 0;
    auto* gt = static_cast<GhostTask*>(task->ghost_state());
    if (in_ghost_class && gt == nullptr) {
      Violation("task '" + task->name() + "' is in the ghost class but unmanaged");
    }
    if (gt != nullptr) {
      if (gt->task != task) {
        Violation("task '" + task->name() + "' ghost state points elsewhere");
      }
      if (!in_ghost_class) {
        Violation("task '" + task->name() + "' has ghost state but class " +
                  task->sched_class()->name());
      }
    }
  }
}

void InvariantChecker::CheckEnclave(Enclave* enclave) {
  if (enclave->destroyed()) {
    return;  // threads are back on CFS; the generic checks cover them
  }
  GhostClass* cls = enclave->ghost_class();
  const Time now = kernel_->now();

  // Starvation bound: the watchdog must destroy the enclave before any
  // runnable thread waits timeout + one full scan period (detection latency)
  // + slack. With the watchdog disabled, fall back to the configured bound.
  Duration starvation_bound = options_.ghost_starvation_bound;
  if (enclave->config().watchdog_timeout > 0) {
    starvation_bound = enclave->config().watchdog_timeout +
                       2 * enclave->config().watchdog_period +
                       options_.starvation_slack;
  }

  for (const Enclave::TaskInfo& info : enclave->TaskDump()) {
    GhostTask* gt = enclave->Find(info.tid);
    if (gt == nullptr || gt->task == nullptr) {
      Violation("enclave task tid " + std::to_string(info.tid) + " has no state");
      continue;
    }
    Task* task = gt->task;
    if (task->state() == TaskState::kDead) {
      Violation("dead task '" + task->name() + "' still enclave-managed");
      continue;
    }
    if (task->sched_class() != cls) {
      Violation("enclave task '" + task->name() + "' is in class " +
                task->sched_class()->name());
    }
    if (task->ghost_state() != gt) {
      Violation("enclave task '" + task->name() + "' ghost-state mismatch");
    }

    // Status word vs kernel truth.
    if (gt->status.tseq != gt->tseq) {
      Violation("task '" + task->name() + "' status tseq " +
                std::to_string(gt->status.tseq) + " != kernel tseq " +
                std::to_string(gt->tseq));
    }
    auto& rec = last_tseq_[info.tid];
    if (rec.first == gt->gen && gt->tseq < rec.second) {
      Violation("task '" + task->name() + "' tseq regressed " +
                std::to_string(rec.second) + " -> " + std::to_string(gt->tseq));
    }
    rec = {gt->gen, gt->tseq};

    if ((task->state() == TaskState::kRunnable ||
         task->state() == TaskState::kRunning) &&
        !gt->status.runnable) {
      Violation("task '" + task->name() + "' is " + ToString(task->state()) +
                " but status says not runnable (lost wakeup)");
    }
    if (gt->status.on_cpu) {
      const int cpu = gt->status.cpu;
      if (cpu < 0 || cpu >= kernel_->topology().num_cpus() ||
          kernel_->current(cpu) != task) {
        Violation("task '" + task->name() + "' status claims on_cpu " +
                  std::to_string(cpu) + " but is not current there");
      }
    }
    if (task->state() == TaskState::kRunning &&
        kernel_->current(task->cpu()) == task &&
        (!gt->status.on_cpu || gt->status.cpu != task->cpu())) {
      // A thread that entered the enclave *while running* keeps executing
      // with a blank status word until the pending resched descheduules it
      // (the first ghOSt pick makes the status authoritative) — only a
      // settled CPU makes this a real inconsistency.
      const CpuState& cs = kernel_->cpu_state(task->cpu());
      if (!cs.resched_scheduled && !cs.resched_pending && !cs.switching) {
        Violation("task '" + task->name() + "' runs on cpu " +
                  std::to_string(task->cpu()) + " but status disagrees");
      }
    }

    // Latch back-pointer.
    if (gt->latched_cpu >= 0 && cls->LatchedTask(gt->latched_cpu) != task) {
      Violation("task '" + task->name() + "' believes it is latched on cpu " +
                std::to_string(gt->latched_cpu) + " but is not");
    }

    if (starvation_bound > 0 && task->state() == TaskState::kRunnable &&
        now - task->runnable_since() > starvation_bound) {
      Violation("ghost task '" + task->name() + "' runnable for " +
                std::to_string((now - task->runnable_since()) / 1000) +
                "us, past the watchdog bound (agent and watchdog both failed)");
    }
  }

  // Latch forward-pointers: a pending commit must reference a live, managed
  // thread that points back at the latching CPU.
  const CpuMask& cpus = enclave->cpus();
  for (int cpu = cpus.First(); cpu >= 0; cpu = cpus.NextAfter(cpu)) {
    Task* latched = cls->LatchedTask(cpu);
    if (latched == nullptr) {
      continue;
    }
    if (latched->state() == TaskState::kDead) {
      Violation("cpu " + std::to_string(cpu) + " latch holds dead task '" +
                latched->name() + "'");
      continue;
    }
    auto* lgt = static_cast<GhostTask*>(latched->ghost_state());
    if (lgt == nullptr || lgt->latched_cpu != cpu) {
      Violation("cpu " + std::to_string(cpu) + " latch holds task '" +
                latched->name() + "' that does not point back");
    }
    // A latched thread must not execute anywhere before its latch is
    // consumed: commit validation rejects placed/mid-switch threads and the
    // fast path skips latched ones, so this firing means a pick path handed
    // out a thread the agent had already scheduled elsewhere.
    if (latched->state() == TaskState::kRunning && latched->cpu() != cpu) {
      Violation("cpu " + std::to_string(cpu) + " latch holds task '" +
                latched->name() + "' that is running on cpu " +
                std::to_string(latched->cpu()));
    }
  }

  // Queue accounting: per-task pending counts tally messages that really sit
  // undrained in queues (CPU messages make queued >= pending).
  const int pending = enclave->PendingTaskMessages();
  const size_t queued = enclave->QueuedMessages();
  if (pending < 0 || static_cast<size_t>(pending) > queued) {
    Violation("enclave pending-message count " + std::to_string(pending) +
              " exceeds " + std::to_string(queued) + " queued messages");
  }
}

void InvariantChecker::CheckConservation() {
  const Time now = kernel_->now();
  const int num_cpus = kernel_->topology().num_cpus();
  for (int cpu = 0; cpu < num_cpus; ++cpu) {
    if (!kernel_->CpuIdle(cpu)) {
      last_busy_[cpu] = now;
    }
  }
  if (options_.conservation_grace <= 0) {
    return;
  }
  for (const auto& task : kernel_->tasks()) {
    if (task->state() != TaskState::kRunnable) {
      continue;
    }
    // ghOSt threads are governed by the enclave starvation bound above (an
    // agent may legitimately leave CPUs idle, e.g. a stalled or centralized
    // agent); throttled MicroQuanta threads are idle by design.
    if (task->ghost_state() != nullptr || task->mq().throttled) {
      continue;
    }
    if (now - task->runnable_since() <= options_.conservation_grace) {
      continue;
    }
    for (int cpu = 0; cpu < num_cpus; ++cpu) {
      if (task->affinity().IsSet(cpu) &&
          now - last_busy_[cpu] > options_.conservation_grace) {
        Violation("runnable task '" + task->name() + "' waited " +
                  std::to_string((now - task->runnable_since()) / 1000) +
                  "us while cpu " + std::to_string(cpu) + " sat idle");
        break;
      }
    }
  }
}

}  // namespace gs
