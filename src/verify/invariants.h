// InvariantChecker: continuous whole-machine consistency auditing.
//
// Attach one to a Kernel (and Watch() the enclaves of interest) and it
// periodically sweeps kernel + ghOSt module state, asserting the properties
// the paper's design is supposed to preserve even under faults (§3.1, §3.4):
//
//  * CPU/task mutual consistency — a CPU's `current` is kRunning and believes
//    it is on that CPU; every kRunning task is current (or switching in) on
//    exactly the CPU it names.
//  * No lost tasks — every thread in the ghOSt scheduling class is managed by
//    an enclave; every enclave-managed thread is alive, in the enclave's
//    class, and its kernel/ghOSt back-pointers agree.
//  * Status-word consistency — the published Tseq matches the kernel-side
//    counter and never regresses within one enclave membership; on_cpu /
//    runnable bits agree with the kernel's view.
//  * Latch consistency — a latched (committed, not yet picked) transaction
//    points at a live task and the task points back at the latching CPU.
//  * Queue accounting — per-task pending-message counts never exceed the
//    messages actually sitting in the enclave's queues.
//  * Bounded ghOSt starvation — a runnable ghOSt thread is never left
//    unscheduled longer than the enclave's watchdog bound (the watchdog must
//    have destroyed the enclave by then, §3.4).
//  * Work conservation (non-ghOSt) — a runnable CFS/RT thread does not wait
//    beyond a grace period while a CPU it may run on sits continuously idle.
//
// Checks never mutate simulation state and never touch the trace, so an
// attached checker does not perturb deterministic-replay digests.
#ifndef GHOST_SIM_SRC_VERIFY_INVARIANTS_H_
#define GHOST_SIM_SRC_VERIFY_INVARIANTS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/base/time.h"
#include "src/sim/event_loop.h"

namespace gs {

class Enclave;
class Kernel;

class InvariantChecker {
 public:
  struct Options {
    // Scan cadence. Scans are pure observation (no state changes, no trace
    // records), so the period trades CPU for detection latency only.
    Duration period = Microseconds(250);
    // A runnable non-ghOSt task may wait this long while an affinity-
    // compatible CPU sits continuously idle before it counts as a work-
    // conservation violation (CFS idle/periodic balance is ms-scale).
    Duration conservation_grace = Milliseconds(20);
    // Slack added to the watchdog starvation bound (watchdog_timeout plus up
    // to two scan periods of detection latency, plus this).
    Duration starvation_slack = Milliseconds(2);
    // Starvation bound applied to ghOSt threads of watched enclaves whose
    // watchdog is disabled. 0 = skip the check for such enclaves.
    Duration ghost_starvation_bound = 0;
    // Stop collecting after this many distinct violations.
    size_t max_violations = 32;
  };

  InvariantChecker(Kernel* kernel, Options options);
  explicit InvariantChecker(Kernel* kernel) : InvariantChecker(kernel, Options()) {}
  ~InvariantChecker();

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  // Adds an enclave to the watch set (enclave checks + starvation bound).
  // The enclave must outlive the checker or be destroyed (not freed) first.
  void Watch(Enclave* enclave);

  // Starts/stops periodic scanning on the kernel's event loop.
  void Start();
  void Stop();

  // Runs one scan immediately (usable with or without Start()).
  void CheckNow();

  bool ok() const { return violations_.empty(); }
  const std::vector<std::string>& violations() const { return violations_; }
  // All violations joined for test failure messages; empty when ok().
  std::string Report() const;
  uint64_t scans() const { return scans_; }

 private:
  void Scan();
  void ScheduleNext();
  void Violation(const std::string& message);

  void CheckCpus();
  void CheckGhostMembership();
  void CheckEnclave(Enclave* enclave);
  // A CPU no enclave owns must hold no latch and no forced-idle marker:
  // leaked teardown state silently strands whatever a successor enclave
  // places there. Runs against the ghost class of every watched enclave,
  // including destroyed ones (teardown is exactly when leaks happen).
  void CheckOrphanedCpuState();
  void CheckConservation();

  Kernel* kernel_;
  Options options_;
  std::vector<Enclave*> enclaves_;

  bool running_ = false;
  EventId scan_event_ = kInvalidEventId;
  uint64_t scans_ = 0;

  std::vector<std::string> violations_;
  std::set<std::string> seen_;  // dedup: one report per distinct message

  // Tseq monotonicity memory: tid -> {membership generation, last tseq}.
  std::map<int64_t, std::pair<uint64_t, uint32_t>> last_tseq_;
  // Conservation: when each CPU was last observed non-idle.
  std::vector<Time> last_busy_;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_VERIFY_INVARIANTS_H_
