#include "src/verify/policy_fuzzer.h"

#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "src/agent/agent_process.h"
#include "src/agent/dispatch_policy.h"
#include "src/agent/sdk/runqueue.h"
#include "src/base/rng.h"
#include "src/ghost/machine.h"
#include "src/policies/per_cpu_fifo.h"
#include "src/sim/fault_injector.h"
#include "src/verify/invariants.h"

namespace gs {
namespace {

std::string FirstLine(const std::string& text) {
  const size_t nl = text.find('\n');
  return nl == std::string::npos ? text : text.substr(0, nl);
}

// The generated adversary. Centralized (only the boss agent schedules, the
// rest just exist — itself a legal-but-unhelpful shape) and every decision
// runs through the seeded knobs. Deliberately does NOT override Restore():
// the DispatchPolicy reconciliation default must keep even this policy's
// post-swap view sound.
class HostilePolicy : public DispatchPolicy {
 public:
  explicit HostilePolicy(const HostileConfig& config)
      : config_(config), rng_(config.seed ^ 0x4057113e5ULL) {}

  const char* name() const override { return "hostile-fuzz"; }

  void Attached(AgentProcess* process, Enclave* enclave, Kernel* kernel) override {
    enclave_ = enclave;
    process_ = process;
    kernel_ = kernel;
    const CpuMask& cpus = enclave->cpus();
    boss_cpu_ = cpus.First();
    cpu_list_.clear();
    for (int cpu = cpus.First(); cpu >= 0; cpu = cpus.NextAfter(cpu)) {
      cpu_list_.push_back(cpu);
    }
    // Everything stays on the default queue; only the boss drains it.
    enclave->ConfigQueueWakeup(enclave->default_queue(), process->agent_on(boss_cpu_));
  }

  int RunqueueDepth() const override { return static_cast<int>(rq_.size()); }

 protected:
  void CollectQueues(AgentContext& ctx, std::vector<MessageQueue*>* queues) override {
    if (ctx.agent_cpu() == boss_cpu_) {
      queues->push_back(enclave_->default_queue());
    }
  }

  void TaskNew(AgentContext& ctx, PolicyTask* task, const Message& msg) override {
    if (Chance(config_.drop_new_pct)) {
      return;  // hostile: pretend the thread never arrived
    }
    Enqueue(task);
  }
  void TaskWakeup(AgentContext& ctx, PolicyTask* task, const Message& msg) override {
    MaybeEnqueue(task);
  }
  void TaskPreempted(AgentContext& ctx, PolicyTask* task, const Message& msg) override {
    MaybeEnqueue(task);
  }
  void TaskYield(AgentContext& ctx, PolicyTask* task, const Message& msg) override {
    MaybeEnqueue(task);
  }
  void TaskBlocked(AgentContext& ctx, PolicyTask* task, const Message& msg) override {
    Evict(task);
  }
  void TaskDead(AgentContext& ctx, PolicyTask* task, const Message& msg) override {
    Evict(task);
  }
  void TaskDeparted(AgentContext& ctx, PolicyTask* task, const Message& msg) override {
    Evict(task);
  }

  AgentAction Schedule(AgentContext& ctx) override {
    // Policy code takes time even when hostile; without this a spinning
    // agent would also be a zero-cost one.
    ctx.Charge(Nanoseconds(200));
    if (ctx.agent_cpu() != boss_cpu_) {
      return AgentAction::kBlock;
    }
    if (Chance(config_.idle_commit_pct)) {
      // Spurious idle transaction at a random CPU (§4.5 shape, no group).
      Transaction idle;
      idle.idle = true;
      idle.target_cpu = RandomCpu();
      ctx.Commit(&idle);
    }
    if (rq_.empty()) {
      return AgentAction::kBlock;
    }
    if (Chance(config_.block_with_work_pct)) {
      return AgentAction::kBlock;  // hostile: sleep on a non-empty runqueue
    }

    PolicyTask* next = rq_.Pop();
    next->queued = false;

    if (Chance(config_.conflict_group_pct) && !rq_.empty()) {
      // Conflicting synchronized group: both members name the same CPU, so
      // the group can never commit whole and must roll back untouched.
      PolicyTask* second = rq_.Pop();
      second->queued = false;
      const int cpu = RandomCpu();
      Transaction ta = AgentContext::MakeTxn(next->tid, cpu);
      ta.sync_group = 7;
      Transaction tb = AgentContext::MakeTxn(second->tid, cpu);
      tb.sync_group = 7;
      Transaction* txns[] = {&ta, &tb};
      ctx.Commit(std::span<Transaction*>(txns, 2));
      Requeue(next, ta.committed());
      Requeue(second, tb.committed());
      return AgentAction::kRunAgain;
    }

    const bool remote = Chance(config_.remote_pct);
    const int target = remote ? RandomCpu() : ctx.agent_cpu();
    Transaction txn = AgentContext::MakeTxn(next->tid, target);
    if (!Chance(config_.stale_cpu_pct)) {
      txn.expected_aseq = ctx.ReadAseq();
    }
    ctx.Commit(&txn);
    if (txn.committed()) {
      next->assigned_cpu = target;
      if (target == ctx.agent_cpu() && Chance(config_.never_yield_pct)) {
        // Hostile: spin instead of vacating, so the local latch starves
        // behind us until something preempts the agent.
        return AgentAction::kRunAgain;
      }
      return target == ctx.agent_cpu() ? AgentAction::kYield : AgentAction::kRunAgain;
    }
    Requeue(next, /*committed=*/false);
    return AgentAction::kRunAgain;
  }

 private:
  bool Chance(int pct) {
    return pct > 0 && static_cast<int>(rng_.NextBounded(100)) < pct;
  }
  int RandomCpu() {
    return cpu_list_[rng_.NextBounded(cpu_list_.size())];
  }
  void MaybeEnqueue(PolicyTask* task) {
    if (Chance(config_.drop_wakeup_pct)) {
      return;  // hostile: swallow the wakeup
    }
    Enqueue(task);
  }
  void Enqueue(PolicyTask* task) {
    if (task->runnable && !task->queued) {
      task->queued = true;
      rq_.Push(task);
    }
  }
  void Requeue(PolicyTask* task, bool committed) {
    if (!committed && task->runnable && !task->queued) {
      task->queued = true;
      rq_.Push(task);
    }
  }
  void Evict(PolicyTask* task) {
    if (task->queued) {
      rq_.Remove(task);
      task->queued = false;
    }
  }

  HostileConfig config_;
  Rng rng_;
  Enclave* enclave_ = nullptr;
  AgentProcess* process_ = nullptr;
  Kernel* kernel_ = nullptr;
  int boss_cpu_ = -1;
  std::vector<int> cpu_list_;
  FifoRunqueue rq_;
};

// Worker life: `cycles` rounds of (burst, block, timed rewake), then exit.
// Everything is driven off burst completions and loop timers, so the pattern
// is deterministic under any oracle schedule.
void RunWorkerCycle(Kernel& kernel, EventLoop& loop, Task* worker, int cycles,
                    Duration burst, Duration sleep) {
  kernel.StartBurst(worker, burst,
                    [&kernel, &loop, cycles, burst, sleep](Task* task) {
                      if (cycles <= 1) {
                        kernel.Exit(task);
                        return;
                      }
                      kernel.Block(task);
                      loop.ScheduleAfter(
                          sleep, [&kernel, &loop, task, cycles, burst, sleep] {
                            if (task->state() != TaskState::kBlocked) {
                              return;
                            }
                            RunWorkerCycle(kernel, loop, task, cycles - 1, burst,
                                           sleep);
                            kernel.Wake(task);
                          });
                    });
}

}  // namespace

HostileConfig GenerateHostileConfig(uint64_t seed) {
  HostileConfig config;
  config.seed = seed;
  Rng rng(seed ^ 0xf022a1ab5eed0007ULL);
  // Each knob joins the composition with probability 1/2 at strength 10..60%
  // — strong enough to bite, weak enough that several behaviors interleave.
  auto knob = [&rng] {
    return rng.NextBounded(2) == 0 ? 0 : 10 + static_cast<int>(rng.NextBounded(51));
  };
  config.drop_wakeup_pct = knob();
  config.drop_new_pct = knob();
  config.stale_cpu_pct = knob();
  config.remote_pct = knob();
  config.idle_commit_pct = knob();
  config.conflict_group_pct = knob();
  config.never_yield_pct = knob();
  config.block_with_work_pct = knob();
  config.stall_window = rng.NextBounded(4) == 0;
  config.crash_agent = rng.NextBounded(8) == 0;
  if (config.drop_wakeup_pct == 0 && config.drop_new_pct == 0 &&
      config.stale_cpu_pct == 0 && config.remote_pct == 0 &&
      config.idle_commit_pct == 0 && config.conflict_group_pct == 0 &&
      config.never_yield_pct == 0 && config.block_with_work_pct == 0 &&
      !config.stall_window && !config.crash_agent) {
    config.drop_wakeup_pct = 25;  // never generate a well-behaved policy
  }
  return config;
}

std::string RunFuzzCase(const HostileConfig& config, const FuzzSeams& seams,
                        ScheduleOracle* oracle) {
  // Default (non-zero) protocol costs: the fuzzer hunts logic bugs in commit
  // lifetimes and teardown, which need real windows between effect and
  // arrival — injected IPI delays stretch them further.
  Machine machine(Topology::Make("fuzz", 2, 2, 1, 2));
  EventLoop& loop = machine.loop();
  loop.set_oracle(oracle);
  Kernel& kernel = machine.kernel();
  machine.ghost_class()->set_test_unguarded_commit_ipis(seams.unguarded_commit_ipis);
  machine.ghost_class()->set_test_leak_teardown_cpu_state(seams.leak_teardown_cpu_state);
  machine.ghost_class()->set_test_deferred_exit_teardown(seams.deferred_exit_teardown);

  Enclave::Config econfig;
  econfig.watchdog_timeout = Milliseconds(2);
  econfig.watchdog_period = Microseconds(250);
  std::unique_ptr<Enclave> enclave =
      machine.CreateEnclave(CpuMask::AllUpTo(4), econfig);

  FaultInjector::Config fconfig;
  fconfig.msg_drop_probability = 0.02;
  fconfig.estale_probability = 0.05;
  fconfig.ipi_delay_probability = 0.25;
  fconfig.ipi_extra_delay = Microseconds(30);
  FaultInjector injector(&loop, &kernel.trace(), config.seed ^ 0x5eedfa17ULL,
                         fconfig);
  kernel.set_fault_injector(&injector);

  AgentProcess process(&kernel, machine.ghost_class(), enclave.get(),
                       std::make_unique<PerCpuFifoPolicy>());
  process.Start();

  constexpr int kWorkers = 6;
  std::vector<Task*> workers;
  for (int i = 0; i < kWorkers; ++i) {
    Task* worker = kernel.CreateTask("w" + std::to_string(i));
    enclave->AddTask(worker);
    workers.push_back(worker);
    RunWorkerCycle(kernel, loop, worker, /*cycles=*/3,
                   Microseconds(80 + 20 * i), Microseconds(50));
    kernel.Wake(worker);
  }

  InvariantChecker::Options copt;
  copt.period = Nanoseconds(777);
  copt.conservation_grace = 0;
  // The watchdog supplies the starvation bound; checker slack on top.
  copt.ghost_starvation_bound = 0;
  InvariantChecker checker(&kernel, copt);
  checker.Watch(enclave.get());
  checker.Start();

  // Swapped-out policies must outlive their in-flight effects.
  std::vector<std::unique_ptr<Policy>> retired;

  // t=0.5ms: hot-swap the hostile policy into the loaded enclave.
  loop.ScheduleAt(Microseconds(500), [&process, &retired, &config] {
    if (process.alive()) {
      retired.push_back(process.SwapPolicy(std::make_unique<HostilePolicy>(config)));
    }
  });
  if (config.stall_window) {
    loop.ScheduleAt(Microseconds(1200), [&process] { process.SetStalled(true); });
    loop.ScheduleAt(Microseconds(1600), [&process] { process.SetStalled(false); });
  }
  // t=1.5ms: shrink one worker's affinity under the hostile policy.
  loop.ScheduleAt(Microseconds(1500), [&kernel, &workers] {
    if (workers[2]->state() != TaskState::kDead) {
      kernel.SetAffinity(workers[2], CpuMask::Single(1));
    }
  });
  // t=2.2ms: yank a thread out of the enclave mid-run.
  injector.At(Microseconds(2200), FaultKind::kRemoveTask, [&enclave, &workers] {
    if (!enclave->destroyed() && workers[1]->state() != TaskState::kDead &&
        workers[1]->ghost_state() != nullptr) {
      enclave->RemoveTask(workers[1]);
    }
  });
  // t=2.5ms: roll the hostile policy back out (the A/B rollback path).
  loop.ScheduleAt(Microseconds(2500), [&process, &retired] {
    if (process.alive()) {
      retired.push_back(process.SwapPolicy(std::make_unique<PerCpuFifoPolicy>()));
    }
  });
  if (config.crash_agent) {
    injector.At(Microseconds(3000), FaultKind::kAgentCrash,
                [&process] { process.Crash(); });
  }
  // t=4.5ms: tear the enclave down mid-load (unless the watchdog already
  // did); commit effects still in flight must die with it.
  injector.At(Microseconds(4500), FaultKind::kEnclaveDestroy, [&enclave] {
    if (!enclave->destroyed()) {
      enclave->Destroy();
    }
  });

  machine.RunFor(Milliseconds(7));
  checker.CheckNow();
  checker.Stop();

  const std::string report = checker.Report();
  if (!report.empty()) {
    return NormalizeViolation(report);
  }
  // Containment predicate: whatever the policy did, every worker must have
  // finished — via ghOSt, the watchdog's CFS fallback, or the teardown.
  for (int i = 0; i < kWorkers; ++i) {
    if (workers[i]->state() != TaskState::kDead) {
      return "fuzz: worker w" + std::to_string(i) +
             " stranded past watchdog and teardown";
    }
  }
  return "";
}

std::string RunFuzzReplay(const HostileConfig& config, const FuzzSeams& seams,
                          const Explorer::ChoiceTrace& trace) {
  Explorer explorer(
      [config, seams](ScheduleOracle* oracle) {
        return RunFuzzCase(config, seams, oracle);
      },
      Explorer::Options());
  return explorer.Replay(trace);
}

namespace {

// Greedy config shrink: zero one knob at a time (fixed order), keep the zero
// iff the violation's first line still reproduces on the same choice trace.
HostileConfig ShrinkConfig(const HostileConfig& config, const FuzzSeams& seams,
                           const Explorer::ChoiceTrace& trace,
                           const std::string& violation, uint64_t* runs) {
  HostileConfig best = config;
  const std::string want = FirstLine(violation);
  int* knobs[] = {&best.drop_wakeup_pct,    &best.drop_new_pct,
                  &best.stale_cpu_pct,      &best.remote_pct,
                  &best.idle_commit_pct,    &best.conflict_group_pct,
                  &best.never_yield_pct,    &best.block_with_work_pct};
  for (int* knob : knobs) {
    if (*knob == 0) {
      continue;
    }
    const int saved = *knob;
    *knob = 0;
    ++*runs;
    if (FirstLine(RunFuzzReplay(best, seams, trace)) != want) {
      *knob = saved;
    }
  }
  bool* flags[] = {&best.stall_window, &best.crash_agent};
  for (bool* flag : flags) {
    if (!*flag) {
      continue;
    }
    *flag = false;
    ++*runs;
    if (FirstLine(RunFuzzReplay(best, seams, trace)) != want) {
      *flag = true;
    }
  }
  return best;
}

}  // namespace

FuzzSweepResult RunFuzzSweep(const FuzzSweepOptions& options) {
  FuzzSweepResult result;
  for (int i = 0; i < options.cases; ++i) {
    const HostileConfig config =
        GenerateHostileConfig(options.base_seed + static_cast<uint64_t>(i));
    Explorer::Options eopt;
    eopt.mode = Explorer::Mode::kRandomWalk;
    eopt.max_schedules = options.schedules_per_case;
    eopt.seed = config.seed;
    eopt.shrink = options.shrink;
    eopt.stop_at_first = true;
    const FuzzSeams seams = options.seams;
    Explorer::ScenarioFactory factory = [config, seams]() -> Explorer::Scenario {
      return [config, seams](ScheduleOracle* oracle) {
        return RunFuzzCase(config, seams, oracle);
      };
    };
    Explorer::Result er =
        options.jobs > 1
            ? Explorer::ExploreParallelWalks(factory, eopt, options.jobs)
            : Explorer(factory(), eopt).Explore();
    ++result.cases_run;
    result.total_schedules += er.schedules;
    if (er.violation_found) {
      FuzzCaseResult fc;
      fc.config = config;
      fc.violation = er.violation;
      fc.trace = er.shrunk_trace;
      fc.schedules = er.schedules + er.shrink_runs;
      uint64_t shrink_runs = 0;
      fc.shrunk = options.shrink
                      ? ShrinkConfig(config, seams, fc.trace, fc.violation,
                                     &shrink_runs)
                      : config;
      fc.schedules += shrink_runs;
      result.violations.push_back(std::move(fc));
      if (options.stop_at_first_case) {
        break;
      }
    }
  }
  return result;
}

bool SaveFuzzReplay(const std::string& path, const FuzzCaseResult& result,
                    const FuzzSeams& seams) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  const HostileConfig& c = result.shrunk;
  out << "# ghost-sim policy-fuzzer replay v1\n";
  out << "seed: " << c.seed << "\n";
  out << "violation: " << FirstLine(result.violation) << "\n";
  out << "knobs: drop_wakeup=" << c.drop_wakeup_pct
      << " drop_new=" << c.drop_new_pct << " stale_cpu=" << c.stale_cpu_pct
      << " remote=" << c.remote_pct << " idle_commit=" << c.idle_commit_pct
      << " conflict_group=" << c.conflict_group_pct
      << " never_yield=" << c.never_yield_pct
      << " block_with_work=" << c.block_with_work_pct
      << " stall=" << (c.stall_window ? 1 : 0)
      << " crash=" << (c.crash_agent ? 1 : 0) << "\n";
  out << "seams: unguarded_commit_ipis=" << (seams.unguarded_commit_ipis ? 1 : 0)
      << " leak_teardown_cpu_state=" << (seams.leak_teardown_cpu_state ? 1 : 0)
      << " deferred_exit_teardown=" << (seams.deferred_exit_teardown ? 1 : 0)
      << "\n";
  out << "choices:";
  for (uint32_t choice : result.trace) {
    out << " " << choice;
  }
  out << "\n";
  return out.good();
}

bool LoadFuzzReplay(const std::string& path, HostileConfig* config,
                    FuzzSeams* seams, Explorer::ChoiceTrace* trace,
                    std::string* violation) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::string line;
  if (!std::getline(in, line) || line != "# ghost-sim policy-fuzzer replay v1") {
    return false;
  }
  *config = HostileConfig();
  *seams = FuzzSeams();
  trace->clear();
  violation->clear();
  auto parse_kv_ints = [](const std::string& body, auto&& assign) {
    std::istringstream fields(body);
    std::string field;
    while (fields >> field) {
      const size_t eq = field.find('=');
      if (eq == std::string::npos) {
        return false;
      }
      assign(field.substr(0, eq), std::stoll(field.substr(eq + 1)));
    }
    return true;
  };
  while (std::getline(in, line)) {
    const size_t colon = line.find(": ");
    std::string key, body;
    if (colon == std::string::npos) {
      // "choices:" with an empty trace has no trailing space.
      if (line == "choices:") {
        continue;
      }
      return false;
    }
    key = line.substr(0, colon);
    body = line.substr(colon + 2);
    if (key == "seed") {
      config->seed = std::stoull(body);
    } else if (key == "violation") {
      *violation = body;
    } else if (key == "knobs") {
      const bool ok = parse_kv_ints(body, [config](const std::string& k, long long v) {
        if (k == "drop_wakeup") config->drop_wakeup_pct = static_cast<int>(v);
        else if (k == "drop_new") config->drop_new_pct = static_cast<int>(v);
        else if (k == "stale_cpu") config->stale_cpu_pct = static_cast<int>(v);
        else if (k == "remote") config->remote_pct = static_cast<int>(v);
        else if (k == "idle_commit") config->idle_commit_pct = static_cast<int>(v);
        else if (k == "conflict_group") config->conflict_group_pct = static_cast<int>(v);
        else if (k == "never_yield") config->never_yield_pct = static_cast<int>(v);
        else if (k == "block_with_work") config->block_with_work_pct = static_cast<int>(v);
        else if (k == "stall") config->stall_window = v != 0;
        else if (k == "crash") config->crash_agent = v != 0;
      });
      if (!ok) {
        return false;
      }
    } else if (key == "seams") {
      const bool ok = parse_kv_ints(body, [seams](const std::string& k, long long v) {
        if (k == "unguarded_commit_ipis") seams->unguarded_commit_ipis = v != 0;
        else if (k == "leak_teardown_cpu_state") seams->leak_teardown_cpu_state = v != 0;
        else if (k == "deferred_exit_teardown") seams->deferred_exit_teardown = v != 0;
      });
      if (!ok) {
        return false;
      }
    } else if (key == "choices") {
      std::istringstream choices(body);
      uint32_t choice;
      while (choices >> choice) {
        trace->push_back(choice);
      }
    } else {
      return false;  // unknown key: refuse to half-load a replay
    }
  }
  return true;
}

}  // namespace gs
