#include "src/verify/explorer_scenarios.h"

#include <memory>
#include <span>

#include "src/agent/agent_process.h"
#include "src/ghost/machine.h"
#include "src/policies/per_cpu_fifo.h"
#include "src/verify/invariants.h"

namespace gs {
namespace {

// The checker is pure observation, so its scan events merely add interleaving
// candidates. The period is chosen to not divide the scenarios' trigger times
// (50/100 us), keeping the scans out of the hand-crafted race batches in the
// default schedule while still bounding detection latency below any race
// window of interest.
constexpr Duration kScanPeriod = Nanoseconds(777);

InvariantChecker::Options CheckerOptions() {
  InvariantChecker::Options options;
  options.period = kScanPeriod;
  // Scenarios run agent-less phases and deliberately-stranded threads; the
  // time-based bounds would fire on benign schedules (and embed durations in
  // the message, defeating shrink comparison). Stranding is asserted by each
  // scenario's own end-state predicate instead.
  options.conservation_grace = 0;
  options.ghost_starvation_bound = 0;
  return options;
}

// All delegation-protocol costs zeroed: the entire kernel<->agent exchange
// around one wakeup collapses into a single same-timestamp event batch, which
// is exactly the adversarial freedom the explorer feeds on — every protocol
// step becomes reorderable against the racing event.
CostModel ZeroProtocolCosts() {
  CostModel cost;
  cost.syscall = 0;
  cost.context_switch = 0;
  cost.agent_context_switch = 0;
  cost.txn_commit_local = 0;
  cost.remote_commit_fixed = 0;
  cost.remote_commit_per_txn = 0;
  cost.ipi_flight = 0;
  cost.ipi_flight_cross_numa_extra = 0;
  cost.ipi_handle = 0;
  cost.msg_produce = 0;
  cost.msg_dequeue = 0;
  cost.poll_detect = 0;
  cost.agent_wakeup = 0;
  cost.agent_loop_fixed = 0;
  cost.agent_per_task_scan = 0;
  cost.agent_per_cpu_scan = 0;
  return cost;
}

// Retry helper for RunLostWakeupScenario: wakes the worker into its final
// 30 us burst once it has actually blocked; while it is still running,
// re-queues itself at the back of the current event batch.
void WakeWhenBlocked(Kernel& kernel, EventLoop& loop, Task* worker) {
  if (worker->state() == TaskState::kBlocked) {
    kernel.StartBurst(worker, Microseconds(30),
                      [&kernel](Task* task) { kernel.Exit(task); });
    kernel.Wake(worker);
  } else if (worker->state() == TaskState::kRunning) {
    loop.ScheduleAfter(0, [&kernel, &loop, worker] {
      WakeWhenBlocked(kernel, loop, worker);
    });
  }
}

}  // namespace

// A worker blocks at exactly t=50us; an external wakeup is aimed at the same
// instant. The agent that drained the THREAD_BLOCKED message decides to sleep
// in the same batch — the explorer searches for the order where the wakeup's
// message lands after the agent committed to blocking but before it actually
// slept. The check-then-sleep re-validation makes every order safe; the
// mutation removes it.
std::string RunLostWakeupScenario(ScheduleOracle* oracle, bool mutate) {
  Machine machine(Topology::Make("t", 1, 1, 1, 1), ZeroProtocolCosts());
  EventLoop& loop = machine.loop();
  loop.set_oracle(oracle);
  Kernel& kernel = machine.kernel();
  std::unique_ptr<Enclave> enclave = machine.CreateEnclave(CpuMask::AllUpTo(1));

  AgentProcess process(&kernel, machine.ghost_class(), enclave.get(),
                       std::make_unique<PerCpuFifoPolicy>());
  process.Start();
  process.set_test_skip_sleep_recheck(mutate);

  Task* worker = kernel.CreateTask("w");
  enclave->AddTask(worker);
  kernel.StartBurst(worker, Microseconds(50),
                    [&kernel](Task* task) { kernel.Block(task); });
  kernel.Wake(worker);

  InvariantChecker checker(&kernel, CheckerOptions());
  checker.Watch(enclave.get());
  checker.Start();

  // Wake-with-retry: depending on the explored order the wake event can fire
  // while the worker is still mid-burst; re-queue at the back of the batch
  // until the block has happened (Kernel::Wake itself absorbs the
  // blocked-but-still-current window via wake_pending). The retry is a plain
  // recursive closure — kernel/loop/worker all outlive RunFor below, so the
  // old shared_ptr<std::function> self-capture (which leaked) is unneeded.
  loop.ScheduleAt(Microseconds(50), [&kernel, &loop, worker] {
    WakeWhenBlocked(kernel, loop, worker);
  });

  machine.RunFor(Milliseconds(1));
  checker.CheckNow();
  checker.Stop();
  const std::string report = checker.Report();
  if (!report.empty()) {
    return NormalizeViolation(report);
  }
  if (worker->state() != TaskState::kDead) {
    return "lost wakeup: worker stranded runnable behind a sleeping agent";
  }
  return "";
}

// A synchronized group {a->cpu1, b->cpu2} races an affinity change that
// invalidates b's placement. Committed first, the group wins and the late
// affinity change legitimately defeats b's latch (§3.3). Reordered, member b
// fails validation mid-group and the all-or-nothing protocol must roll a back
// untouched; the mutation delivers already-latched members anyway.
std::string RunSyncGroupScenario(ScheduleOracle* oracle, bool mutate) {
  Machine machine(Topology::Make("t", 1, 3, 1, 3));
  EventLoop& loop = machine.loop();
  loop.set_oracle(oracle);
  Kernel& kernel = machine.kernel();
  std::unique_ptr<Enclave> enclave = machine.CreateEnclave(CpuMask::AllUpTo(3));
  enclave->set_test_partial_sync_groups(mutate);

  Task* a = kernel.CreateTask("a");
  enclave->AddTask(a);
  kernel.StartBurst(a, Microseconds(50), [&kernel](Task* task) { kernel.Exit(task); });
  kernel.Wake(a);
  Task* b = kernel.CreateTask("b");
  enclave->AddTask(b);
  kernel.StartBurst(b, Microseconds(50), [&kernel](Task* task) { kernel.Exit(task); });
  kernel.Wake(b);

  InvariantChecker checker(&kernel, CheckerOptions());
  checker.Watch(enclave.get());
  checker.Start();

  Transaction ta;
  ta.tid = a->tid();
  ta.target_cpu = 1;
  ta.sync_group = 1;
  Transaction tb;
  tb.tid = b->tid();
  tb.target_cpu = 2;
  tb.sync_group = 1;
  std::string group_violation;

  // Both racers are deferred by one zero-delay hop so they land as sibling
  // candidates in the same batch; the wrapper order fixes the benign default
  // (commit first), the oracle is free to flip them.
  const Time kRace = Microseconds(100);
  loop.ScheduleAt(kRace, [&loop, &enclave, &ta, &tb, &group_violation] {
    loop.ScheduleAfter(0, [&enclave, &ta, &tb, &group_violation] {
      Transaction* txns[] = {&ta, &tb};
      enclave->TxnsCommit(std::span<Transaction*>(txns, 2), nullptr,
                          [](int) { return Microseconds(5); });
      const bool any_fail = ta.status != TxnStatus::kCommitted ||
                            tb.status != TxnStatus::kCommitted;
      const bool any_commit = ta.status == TxnStatus::kCommitted ||
                              tb.status == TxnStatus::kCommitted;
      if (any_fail && any_commit) {
        group_violation =
            "sync group partially committed: one member failed while a "
            "sibling was delivered";
      }
    });
  });
  loop.ScheduleAt(kRace, [&loop, &kernel, b] {
    loop.ScheduleAfter(0, [&kernel, b] {
      if (b->state() != TaskState::kDead) {
        kernel.SetAffinity(b, CpuMask::Single(0));
      }
    });
  });

  machine.RunFor(Microseconds(400));
  checker.CheckNow();
  checker.Stop();
  const std::string report = checker.Report();
  if (!report.empty()) {
    return NormalizeViolation(report);
  }
  return group_violation;
}

// The agent publishes a runnable tid into the BPF fast-path ring, then
// commits the same thread to cpu 0 while cpu 1 goes idle and consults the
// ring. Pick first: the commit must fail (the thread is mid-switch
// elsewhere). Commit first: the pick must skip the latched tid. The mutation
// removes the pick-side revalidation, so the reordered schedule runs the
// thread on cpu 1 while its latch on cpu 0 is still pending delivery.
std::string RunFastpathScenario(ScheduleOracle* oracle, bool mutate) {
  Machine machine(Topology::Make("t", 1, 2, 1, 2));
  EventLoop& loop = machine.loop();
  loop.set_oracle(oracle);
  Kernel& kernel = machine.kernel();
  std::unique_ptr<Enclave> enclave = machine.CreateEnclave(CpuMask::AllUpTo(2));
  machine.ghost_class()->set_test_unsafe_fastpath(mutate);

  std::shared_ptr<RingFastPath> ring = RingFastPath::Global(2);
  enclave->InstallFastPath(ring);

  Task* worker = kernel.CreateTask("w");
  enclave->AddTask(worker);
  kernel.StartBurst(worker, Microseconds(200),
                    [&kernel](Task* task) { kernel.Exit(task); });
  kernel.Wake(worker);
  ring->Publish(0, worker->tid());

  InvariantChecker checker(&kernel, CheckerOptions());
  checker.Watch(enclave.get());
  checker.Start();

  Transaction txn;
  txn.tid = worker->tid();
  txn.target_cpu = 0;
  const Time kRace = Microseconds(100);
  loop.ScheduleAt(kRace, [&loop, &kernel] {
    loop.ScheduleAfter(0, [&kernel] { kernel.ReschedCpu(1); });
  });
  loop.ScheduleAt(kRace, [&loop, &enclave, &txn] {
    // Double hop: ReschedCpu is itself one event deep (it only queues the
    // resched), while TxnsCommit latches synchronously. The extra deferral
    // lines the two chains up so the benign order — idle pick before the
    // remote commit — is the default schedule, and the race fires only when
    // the oracle reorders the batch.
    loop.ScheduleAfter(0, [&loop, &enclave, &txn] {
      loop.ScheduleAfter(0, [&enclave, &txn] {
        Transaction* ptr = &txn;
        // A generous agent-side delay keeps the latch pending long enough
        // for the checker to observe the latched-but-running-elsewhere
        // window.
        enclave->TxnsCommit(std::span<Transaction*>(&ptr, 1), nullptr,
                            [](int) { return Microseconds(20); });
      });
    });
  });

  machine.RunFor(Microseconds(500));
  checker.CheckNow();
  checker.Stop();
  const std::string report = checker.Report();
  if (!report.empty()) {
    return NormalizeViolation(report);
  }
  return "";
}

const std::vector<ExplorerScenarioInfo>& AllExplorerScenarios() {
  static const std::vector<ExplorerScenarioInfo> scenarios = {
      {"lost_wakeup",
       "agent check-then-sleep vs wakeup arriving mid-iteration",
       RunLostWakeupScenario},
      {"sync_group_partial",
       "synchronized group commit vs racing affinity change",
       RunSyncGroupScenario},
      {"fastpath_stale_pick",
       "BPF fast-path pick vs remote commit of the published tid",
       RunFastpathScenario},
  };
  return scenarios;
}

Explorer::Scenario MakeExplorerScenario(const std::string& name, bool mutate) {
  for (const ExplorerScenarioInfo& info : AllExplorerScenarios()) {
    if (name == info.name) {
      auto run = info.run;
      return [run, mutate](ScheduleOracle* oracle) { return run(oracle, mutate); };
    }
  }
  return nullptr;
}

}  // namespace gs
