#include "src/verify/explorer.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/base/logging.h"
#include "src/base/rng.h"
#include "src/sim/batch_runner.h"
#include "src/sim/sched_tag.h"

namespace gs {
namespace {

using Candidate = ScheduleOracle::Candidate;

bool InSleep(const std::vector<Candidate>& sleep, uint64_t seq) {
  for (const Candidate& z : sleep) {
    if (z.seq == seq) {
      return true;
    }
  }
  return false;
}

// Sleep-set update after firing `fired`: sleeping events dependent with the
// fired one wake up (are dropped); independent ones stay asleep.
void FireUpdate(std::vector<Candidate>* sleep, const Candidate& fired) {
  sleep->erase(std::remove_if(sleep->begin(), sleep->end(),
                              [&fired](const Candidate& z) {
                                return z.seq == fired.seq ||
                                       !SchedTagsIndependent(z.tag, fired.tag);
                              }),
               sleep->end());
}

std::string FirstLine(const std::string& s) {
  const size_t nl = s.find('\n');
  return nl == std::string::npos ? s : s.substr(0, nl);
}

}  // namespace

std::string NormalizeViolation(const std::string& report) {
  std::string line = FirstLine(report);
  if (line.rfind("[invariant t=", 0) == 0) {
    const size_t close = line.find("] ");
    if (close != std::string::npos) {
      line = line.substr(close + 2);
    }
  }
  return line;
}

// One choice point along the current DFS path.
struct Explorer::Frame {
  std::vector<Candidate> cands;
  // cur_sleep at node entry (full set, not restricted to cands): needed to
  // recompute the post-node sleep set when this node is re-branched.
  std::vector<Candidate> entry_sleep;
  uint32_t chosen = 0;
  std::vector<bool> tried;  // fully-explored (or pruned) candidate indices
};

// Oracle for one DFS execution: forces the prefix recorded in `stack`, then
// extends the path with default (first non-sleeping) choices, recording new
// frames as it goes.
class Explorer::DfsOracle : public ScheduleOracle {
 public:
  DfsOracle(std::vector<Frame>* stack, size_t prefix_len,
            std::vector<Candidate> post_prefix_sleep, const Options& options,
            Result* result)
      : stack_(stack),
        prefix_len_(prefix_len),
        cur_sleep_(std::move(post_prefix_sleep)),
        options_(options),
        result_(result) {}

  size_t Pick(Time when, const std::vector<Candidate>& cands) override {
    (void)when;
    const size_t node = next_node_++;
    ++result_->choice_points;
    result_->max_depth =
        std::max(result_->max_depth, static_cast<int>(node) + 1);
    if (node < prefix_len_) {
      // Determinism guarantees the same candidates as when the frame was
      // recorded; clamp defensively anyway.
      size_t choice = (*stack_)[node].chosen;
      if (choice >= cands.size()) {
        choice = cands.size() - 1;
      }
      return choice;
    }
    size_t choice = 0;
    if (options_.sleep_sets) {
      for (size_t c = 0; c < cands.size(); ++c) {
        if (!InSleep(cur_sleep_, cands[c].seq)) {
          choice = c;
          break;
        }
      }
      // All candidates asleep: this subtree is redundant, but the execution
      // must still finish — take the default and never branch here (the
      // driver sees every candidate sleeping and skips them).
    }
    Frame f;
    f.cands = cands;
    f.entry_sleep = cur_sleep_;
    f.chosen = static_cast<uint32_t>(choice);
    f.tried.assign(cands.size(), false);
    stack_->push_back(std::move(f));
    FireUpdate(&cur_sleep_, cands[choice]);
    return choice;
  }

 private:
  std::vector<Frame>* stack_;
  size_t prefix_len_;
  std::vector<Candidate> cur_sleep_;
  const Options& options_;
  Result* result_;
  size_t next_node_ = 0;
};

// Oracle that forces a recorded trace (defaulting to 0 past its end).
class Explorer::ReplayOracle : public ScheduleOracle {
 public:
  explicit ReplayOracle(const ChoiceTrace& trace) : trace_(trace) {}

  size_t Pick(Time when, const std::vector<Candidate>& cands) override {
    (void)when;
    const size_t node = next_node_++;
    size_t choice = node < trace_.size() ? trace_[node] : 0;
    if (choice >= cands.size()) {
      choice = cands.size() - 1;
    }
    return choice;
  }

 private:
  const ChoiceTrace& trace_;
  size_t next_node_ = 0;
};

// Oracle for one random walk: seeded choices down to max_branch_depth, the
// default schedule beyond. Records the trace for replay/shrinking.
class Explorer::WalkOracle : public ScheduleOracle {
 public:
  WalkOracle(uint64_t seed, int max_depth, Result* result)
      : rng_(seed), max_depth_(max_depth), result_(result) {}

  size_t Pick(Time when, const std::vector<Candidate>& cands) override {
    (void)when;
    const size_t node = next_node_++;
    ++result_->choice_points;
    result_->max_depth =
        std::max(result_->max_depth, static_cast<int>(node) + 1);
    size_t choice = 0;
    if (static_cast<int>(node) < max_depth_) {
      choice = static_cast<size_t>(rng_.Next() % cands.size());
    }
    trace_.push_back(static_cast<uint32_t>(choice));
    return choice;
  }

  const ChoiceTrace& trace() const { return trace_; }

 private:
  Rng rng_;
  int max_depth_;
  Result* result_;
  ChoiceTrace trace_;
  size_t next_node_ = 0;
};

Explorer::Explorer(Scenario scenario, Options options)
    : scenario_(std::move(scenario)), options_(options) {}

Explorer::Result Explorer::Explore() {
  Result result = options_.mode == Mode::kRandomWalk ? ExploreRandomWalk()
                                                     : ExploreDfs();
  if (result.violation_found) {
    result.shrunk_trace = result.trace;
    if (options_.shrink) {
      Shrink(&result);
    }
  }
  return result;
}

Explorer::Result Explorer::ExploreDfs() {
  Result result;
  std::vector<Frame> stack;

  // First execution: pure default schedule.
  {
    DfsOracle oracle(&stack, /*prefix_len=*/0, {}, options_, &result);
    std::string violation = scenario_(&oracle);
    ++result.schedules;
    if (!violation.empty()) {
      result.violation_found = true;
      result.violation = violation;
      result.trace.clear();
      for (const Frame& f : stack) {
        result.trace.push_back(f.chosen);
      }
      if (options_.stop_at_first) {
        return result;
      }
    }
  }

  while (result.schedules < options_.max_schedules) {
    // Backtrack: deepest frame with an untried, non-sleeping alternative.
    bool found = false;
    uint32_t next_choice = 0;
    while (!stack.empty()) {
      Frame& f = stack.back();
      f.tried[f.chosen] = true;
      if (static_cast<int>(stack.size()) - 1 < options_.max_branch_depth) {
        for (uint32_t c = 0; c < f.cands.size(); ++c) {
          if (f.tried[c]) {
            continue;
          }
          if (options_.sleep_sets && InSleep(f.entry_sleep, f.cands[c].seq)) {
            f.tried[c] = true;
            ++result.pruned;
            continue;
          }
          next_choice = c;
          found = true;
          break;
        }
      }
      if (found) {
        break;
      }
      stack.pop_back();
    }
    if (!found) {
      break;  // schedule space exhausted
    }

    Frame& f = stack.back();
    // Sleep set entering the new child: everything asleep at node entry plus
    // the already-explored siblings, minus whatever the new choice wakes.
    std::vector<Candidate> post_sleep = f.entry_sleep;
    for (uint32_t c = 0; c < f.cands.size(); ++c) {
      if (f.tried[c] && !InSleep(post_sleep, f.cands[c].seq)) {
        post_sleep.push_back(f.cands[c]);
      }
    }
    f.chosen = next_choice;
    FireUpdate(&post_sleep, f.cands[next_choice]);

    const size_t prefix_len = stack.size();
    DfsOracle oracle(&stack, prefix_len, std::move(post_sleep), options_,
                     &result);
    std::string violation = scenario_(&oracle);
    ++result.schedules;
    if (!violation.empty() && !result.violation_found) {
      result.violation_found = true;
      result.violation = violation;
      result.trace.clear();
      for (const Frame& fr : stack) {
        result.trace.push_back(fr.chosen);
      }
      if (options_.stop_at_first) {
        break;
      }
    }
  }
  return result;
}

Explorer::Result Explorer::ExploreRandomWalk() {
  Result result;
  for (uint64_t walk = 0; walk < options_.max_schedules; ++walk) {
    WalkOracle oracle(options_.seed + walk, options_.max_branch_depth, &result);
    std::string violation = scenario_(&oracle);
    ++result.schedules;
    if (!violation.empty()) {
      result.violation_found = true;
      result.violation = violation;
      result.trace = oracle.trace();
      if (options_.stop_at_first) {
        break;
      }
    }
  }
  return result;
}

Explorer::Result Explorer::ExploreParallelWalks(const ScenarioFactory& factory,
                                                const Options& options,
                                                int jobs) {
  BatchRunner runner(jobs);
  const uint64_t searches = std::min<uint64_t>(
      std::max(1, runner.jobs()), std::max<uint64_t>(1, options.max_schedules));
  std::vector<Result> results(searches);

  // Partition the global walk space seed+0 .. seed+budget-1 into contiguous
  // blocks: block j covers walk indices [start_j, start_j + count_j). Every
  // walk that a serial search would run is run exactly once, whatever the
  // job count.
  const uint64_t base = options.max_schedules / searches;
  const uint64_t extra = options.max_schedules % searches;
  runner.Run(static_cast<int>(searches), [&](int index) {
    const uint64_t j = static_cast<uint64_t>(index);
    const uint64_t start = j * base + std::min(j, extra);
    Options sub = options;
    sub.mode = Mode::kRandomWalk;
    sub.shrink = false;  // shrink once, after the merge
    sub.seed = options.seed + start;
    sub.max_schedules = base + (j < extra ? 1 : 0);
    Explorer sub_explorer(factory(), sub);
    results[index] = sub_explorer.ExploreRandomWalk();
  });

  // Deterministic merge: totals sum run-indexed; the reported violation is
  // the one from the lowest-indexed violating block, which (with
  // stop_at_first) is the globally earliest violating walk — exactly what a
  // serial search would have returned.
  Result merged;
  for (const Result& r : results) {
    merged.schedules += r.schedules;
    merged.choice_points += r.choice_points;
    merged.pruned += r.pruned;
    merged.max_depth = std::max(merged.max_depth, r.max_depth);
    if (!merged.violation_found && r.violation_found) {
      merged.violation_found = true;
      merged.violation = r.violation;
      merged.trace = r.trace;
    }
  }
  if (merged.violation_found) {
    merged.shrunk_trace = merged.trace;
    if (options.shrink) {
      Explorer shrinker(factory(), options);
      shrinker.Shrink(&merged);
    }
  }
  return merged;
}

std::string Explorer::Replay(const ChoiceTrace& trace) {
  ReplayOracle oracle(trace);
  return scenario_(&oracle);
}

// Greedy ddmin over non-default choices: try resetting each to the default
// order, keep the reduction iff the violation is unchanged; iterate to a
// fixpoint, then drop the all-default tail (replay treats positions past the
// trace as default, so the trimmed trace reproduces identically).
void Explorer::Shrink(Result* result) {
  ChoiceTrace best = result->trace;
  const std::string target = FirstLine(result->violation);
  bool progress = true;
  while (progress && result->shrink_runs < options_.max_shrink_runs) {
    progress = false;
    for (size_t i = 0; i < best.size(); ++i) {
      if (best[i] == 0 || result->shrink_runs >= options_.max_shrink_runs) {
        continue;
      }
      ChoiceTrace candidate = best;
      candidate[i] = 0;
      ++result->shrink_runs;
      if (FirstLine(Replay(candidate)) == target) {
        best = std::move(candidate);
        progress = true;
      }
    }
  }
  while (!best.empty() && best.back() == 0) {
    best.pop_back();
  }
  result->shrunk_trace = std::move(best);
}

bool Explorer::SaveTrace(const std::string& path, const std::string& scenario_name,
                         const std::string& violation, const ChoiceTrace& trace) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << "# ghost-sim explorer replay v1\n";
  out << "scenario: " << scenario_name << "\n";
  out << "violation: " << FirstLine(violation) << "\n";
  out << "choices:";
  for (uint32_t c : trace) {
    out << " " << c;
  }
  out << "\n";
  return static_cast<bool>(out);
}

bool Explorer::LoadTrace(const std::string& path, std::string* scenario_name,
                         ChoiceTrace* trace) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  scenario_name->clear();
  trace->clear();
  std::string line;
  bool saw_choices = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    if (line.rfind("scenario: ", 0) == 0) {
      *scenario_name = line.substr(10);
    } else if (line.rfind("choices:", 0) == 0) {
      saw_choices = true;
      std::istringstream fields(line.substr(8));
      uint32_t c;
      while (fields >> c) {
        trace->push_back(c);
      }
    }
  }
  return !scenario_name->empty() && saw_choices;
}

}  // namespace gs
