// Fixed workloads for the schedule-space explorer, each aimed at one
// historical mechanism-layer race. Every scenario builds a fresh Machine on a
// private EventLoop, installs the explorer's oracle, runs a short workload
// under the InvariantChecker and returns a *time-normalized* violation
// description ("" when the schedule is clean).
//
// Each scenario takes a `mutate` flag that reintroduces the bug it was built
// to catch, via a test seam in the production code (no #ifdefs):
//
//  * lost_wakeup          — AgentProcess::set_test_skip_sleep_recheck():
//                           the agent's check-then-sleep re-validation is
//                           skipped, so a message arriving mid-iteration can
//                           strand a runnable thread behind a sleeping agent.
//  * sync_group_partial   — Enclave::set_test_partial_sync_groups(): members
//                           latched before a failing sibling are delivered
//                           instead of rolled back (all-or-nothing broken).
//  * fastpath_stale_pick  — GhostClass::set_test_unsafe_fastpath(): the BPF
//                           fast-path pick skips the latched/inbound
//                           revalidation, handing out a thread the agent
//                           already committed to a different CPU.
//
// With mutate=false every interleaving must be clean (the explorer proves the
// fix, not just the bug).
#ifndef GHOST_SIM_SRC_VERIFY_EXPLORER_SCENARIOS_H_
#define GHOST_SIM_SRC_VERIFY_EXPLORER_SCENARIOS_H_

#include <string>
#include <vector>

#include "src/verify/explorer.h"

namespace gs {

std::string RunLostWakeupScenario(ScheduleOracle* oracle, bool mutate);
std::string RunSyncGroupScenario(ScheduleOracle* oracle, bool mutate);
std::string RunFastpathScenario(ScheduleOracle* oracle, bool mutate);

struct ExplorerScenarioInfo {
  const char* name;
  const char* description;
  std::string (*run)(ScheduleOracle* oracle, bool mutate);
};

const std::vector<ExplorerScenarioInfo>& AllExplorerScenarios();

// Wraps the named scenario as an Explorer::Scenario; returns a null function
// for unknown names.
Explorer::Scenario MakeExplorerScenario(const std::string& name, bool mutate);

}  // namespace gs

#endif  // GHOST_SIM_SRC_VERIFY_EXPLORER_SCENARIOS_H_
