// Policy fuzzer: seeded random hostile policies thrown at the mechanism layer.
//
// The paper's security/robustness claim (§3.4) is that a buggy or adversarial
// policy can starve its own threads but can never corrupt the mechanism layer
// or strand a thread past the watchdog. The explorer scenarios each pin one
// historical race; this module attacks the claim *generatively*: a seeded
// generator composes legal-but-hostile DispatchPolicy behaviors — drop
// wakeups or new-thread announcements, commit to stale/remote CPUs without
// sequence protection, spray spurious idle transactions, commit conflicting
// sync-groups, spin after committing instead of yielding, sleep on a
// non-empty runqueue, wedge or crash mid-run — and runs each composition
// through a fixed upgrade-heavy workload: the hostile policy is hot-swapped
// in and out of a live enclave (AgentProcess::SwapPolicy) under load, with
// message-drop/ESTALE/IPI-delay fault injection, the InvariantChecker
// scanning throughout, and an explicit mid-load enclave teardown at the end.
//
// A violation is shrunk greedily (knobs zeroed one at a time while the
// normalized violation reproduces) and written to a deterministic replay
// file that re-executes byte-identically, PR-4 style. The `seams` flags
// reintroduce the mechanism bugs this battery surfaced (see GhostClass::
// set_test_unguarded_commit_ipis / set_test_leak_teardown_cpu_state /
// set_test_deferred_exit_teardown), so the checked-in replays stay honest
// regression tests.
#ifndef GHOST_SIM_SRC_VERIFY_POLICY_FUZZER_H_
#define GHOST_SIM_SRC_VERIFY_POLICY_FUZZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/verify/explorer.h"

namespace gs {

// One generated hostile policy: every knob is a per-decision probability (in
// percent) sampled from the policy's own seeded rng, so a config fully
// determines the policy's behavior on a given schedule.
struct HostileConfig {
  uint64_t seed = 1;
  int drop_wakeup_pct = 0;      // ignore a wakeup (thread never enqueued)
  int drop_new_pct = 0;         // ignore a new-thread announcement
  int stale_cpu_pct = 0;        // commit without aseq protection
  int remote_pct = 0;           // commit to a random remote enclave CPU
  int idle_commit_pct = 0;      // spray a spurious idle txn at a random CPU
  int conflict_group_pct = 0;   // sync-group whose members target one CPU
  int never_yield_pct = 0;      // spin after a local commit (latch starves)
  int block_with_work_pct = 0;  // sleep on a non-empty runqueue
  bool stall_window = false;    // wedge the agent for a window mid-run
  bool crash_agent = false;     // kill the agent process mid-run
};

// Test seams threaded through a fuzz case; both false in production. Each
// true flag reintroduces a fixed mechanism bug so its shrunken replay stays
// a failing reproduction.
struct FuzzSeams {
  bool unguarded_commit_ipis = false;
  bool leak_teardown_cpu_state = false;
  bool deferred_exit_teardown = false;
};

// Deterministic config generation: same seed, same config. At least one
// hostile knob is always active.
HostileConfig GenerateHostileConfig(uint64_t seed);

// Runs one fuzz case: a 4-CPU machine, a watchdogged enclave under a sane
// policy, the hostile policy hot-swapped in and back out mid-load, fault
// injection, and a mid-load teardown. Returns the normalized first violation
// ("" when the mechanism layer survived). Explorer-compatible: `oracle` may
// reorder every same-timestamp batch.
std::string RunFuzzCase(const HostileConfig& config, const FuzzSeams& seams,
                        ScheduleOracle* oracle);

struct FuzzCaseResult {
  HostileConfig config;          // as generated
  HostileConfig shrunk;          // after greedy knob zeroing
  std::string violation;         // normalized first line
  Explorer::ChoiceTrace trace;   // shrunk schedule trace
  uint64_t schedules = 0;        // executions spent on this case
};

struct FuzzSweepOptions {
  int cases = 200;
  uint64_t base_seed = 1;
  // Schedule-space budget per generated config (random-walk executions).
  uint64_t schedules_per_case = 2;
  int jobs = 1;  // parallel walks per case (Explorer::ExploreParallelWalks)
  bool shrink = true;
  bool stop_at_first_case = false;  // stop the sweep at its first violation
  FuzzSeams seams;
};

struct FuzzSweepResult {
  int cases_run = 0;
  uint64_t total_schedules = 0;
  std::vector<FuzzCaseResult> violations;
};

FuzzSweepResult RunFuzzSweep(const FuzzSweepOptions& options);

// Replay-file round trip. Format (text, one header line then key: value):
//   # ghost-sim policy-fuzzer replay v1
//   seed: <config seed>
//   violation: <normalized first line>      (informational)
//   knobs: drop_wakeup=.. drop_new=.. stale_cpu=.. remote=.. idle_commit=..
//          conflict_group=.. never_yield=.. block_with_work=.. stall=0|1
//          crash=0|1                         (single line)
//   seams: unguarded_commit_ipis=0|1 leak_teardown_cpu_state=0|1
//          deferred_exit_teardown=0|1              (single line)
//   choices: c0 c1 c2 ...                    (may be empty)
bool SaveFuzzReplay(const std::string& path, const FuzzCaseResult& result,
                    const FuzzSeams& seams);
bool LoadFuzzReplay(const std::string& path, HostileConfig* config,
                    FuzzSeams* seams, Explorer::ChoiceTrace* trace,
                    std::string* violation);

// Re-executes a loaded replay; returns the observed violation ("" if clean).
std::string RunFuzzReplay(const HostileConfig& config, const FuzzSeams& seams,
                          const Explorer::ChoiceTrace& trace);

}  // namespace gs

#endif  // GHOST_SIM_SRC_VERIFY_POLICY_FUZZER_H_
