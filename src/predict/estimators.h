// Online predictors for the predictive policy family (ROADMAP item 4,
// KernelOracle direction): cheap, dependency-free estimators over the
// per-thread signals a ghOSt agent already observes — status-word runtime
// deltas (service time) and committed placements (wakeup affinity).
//
// Contract (what policies may rely on):
//  * Deterministic: identical observation sequences give identical
//    predictions — no clocks, no randomness, no global state. Predictions
//    are therefore byte-identical across --jobs and across runs.
//  * O(1) per Observe/Predict with bounded per-tid memory, so a predictor
//    can sit on the agent's message hot path.
//  * Cold-start explicit: predictors return a caller-supplied default (or
//    -1 for affinity) until they have seen data for the tid; they never
//    fabricate a confident answer from nothing.
//  * Forget(tid) drops all state for a departed thread.
#ifndef GHOST_SIM_SRC_PREDICT_ESTIMATORS_H_
#define GHOST_SIM_SRC_PREDICT_ESTIMATORS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "src/base/time.h"

namespace gs {
namespace predict {

// Exponentially weighted moving average. alpha is the weight of the newest
// sample; the first sample initializes the average directly.
class Ewma {
 public:
  Ewma() = default;
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void Observe(double sample) {
    value_ = initialized_ ? alpha_ * sample + (1.0 - alpha_) * value_ : sample;
    initialized_ = true;
  }

  bool initialized() const { return initialized_; }
  double value() const { return value_; }

 private:
  double alpha_ = 0.25;
  double value_ = 0.0;
  bool initialized_ = false;
};

// Per-tid Markov service-time predictor.
//
// Service times are quantized into log2 classes (1 µs granularity: class 0
// is <2 µs, class 4 ≈ 10 µs, class 14 ≈ 10 ms). Per tid it keeps a Markov
// transition count matrix over classes plus a per-class EWMA of the actual
// durations observed in that class. Predict() follows the most-frequent
// transition out of the last observed class and returns that target class's
// EWMA — so a thread alternating short/long request types is predicted
// correctly where a plain EWMA would smear the two modes together.
class ServiceTimePredictor {
 public:
  struct Options {
    int num_classes = 16;           // log2 buckets above 1 µs
    double class_alpha = 0.25;      // per-class duration EWMA weight
    Duration default_prediction = Microseconds(10);  // before any data
  };

  ServiceTimePredictor() : ServiceTimePredictor(Options()) {}
  explicit ServiceTimePredictor(Options options);

  // Records one completed service interval for `tid`.
  void Observe(int64_t tid, Duration service);

  // Predicted next service time for `tid`; options.default_prediction until
  // the tid has been observed at least once.
  Duration Predict(int64_t tid) const;

  // The log2 service class a duration falls into (exposed for tests and for
  // policies that threshold on class rather than duration).
  int ClassOf(Duration service) const;

  void Forget(int64_t tid);
  size_t tracked() const { return states_.size(); }

 private:
  struct TidState {
    int last_class = -1;
    std::vector<uint32_t> transitions;  // [from * num_classes + to] counts
    std::vector<Ewma> class_service;    // per-class observed duration
  };

  // Most-frequent next class out of `from` (ties to the smaller class for
  // determinism); -1 if no transition out of `from` has been seen.
  int ArgmaxTransition(const TidState& st, int from) const;

  Options options_;
  std::map<int64_t, TidState> states_;
};

// Next-wakeup CPU-affinity predictor: per tid, a frequency table over nodes
// (CCX indices for L3 placement; CPU ids work too) with periodic halving so
// the table adapts after a thread's home moves. Predict() returns the modal
// node, ties to the smaller index; -1 until the tid has been observed.
class WakeupAffinityPredictor {
 public:
  struct Options {
    // Halve all of a tid's counts when its max count reaches this, so old
    // homes decay with a half-life of ~decay_limit observations.
    uint32_t decay_limit = 64;
  };

  WakeupAffinityPredictor() : WakeupAffinityPredictor(Options()) {}
  explicit WakeupAffinityPredictor(Options options) : options_(options) {}

  // Records that `tid` ran on `node` (call at wakeup with where it last ran,
  // or post-commit with where it was placed).
  void Observe(int64_t tid, int node);

  // Modal node for `tid`; -1 if unknown.
  int Predict(int64_t tid) const;

  void Forget(int64_t tid) { states_.erase(tid); }
  size_t tracked() const { return states_.size(); }

 private:
  Options options_;
  std::map<int64_t, std::vector<uint32_t>> states_;  // tid -> per-node counts
};

}  // namespace predict
}  // namespace gs

#endif  // GHOST_SIM_SRC_PREDICT_ESTIMATORS_H_
