#include "src/predict/estimators.h"

#include <algorithm>
#include <bit>

#include "src/base/logging.h"

namespace gs {
namespace predict {

ServiceTimePredictor::ServiceTimePredictor(Options options)
    : options_(options) {
  CHECK(options_.num_classes >= 1 && options_.num_classes <= 64)
      << "ServiceTimePredictor: num_classes must be in [1, 64], got "
      << options_.num_classes;
}

int ServiceTimePredictor::ClassOf(Duration service) const {
  if (service <= 0) {
    return 0;
  }
  // log2 of the duration in whole microseconds: <2 µs -> 0, ~10 µs -> 4,
  // ~100 µs -> 7, ~10 ms -> 14.
  const uint64_t us = static_cast<uint64_t>(service) / 1000;
  const int cls = us == 0 ? 0 : std::bit_width(us);
  return std::min(cls, options_.num_classes - 1);
}

void ServiceTimePredictor::Observe(int64_t tid, Duration service) {
  TidState& st = states_[tid];
  if (st.transitions.empty()) {
    const size_t n = static_cast<size_t>(options_.num_classes);
    st.transitions.assign(n * n, 0);
    st.class_service.assign(n, Ewma(options_.class_alpha));
  }
  const int cls = ClassOf(service);
  st.class_service[cls].Observe(static_cast<double>(service));
  if (st.last_class >= 0) {
    uint32_t& count =
        st.transitions[st.last_class * options_.num_classes + cls];
    if (count == UINT32_MAX) {
      // Saturate by halving the row, keeping relative frequencies.
      for (int to = 0; to < options_.num_classes; ++to) {
        st.transitions[st.last_class * options_.num_classes + to] /= 2;
      }
    }
    ++count;
  }
  st.last_class = cls;
}

int ServiceTimePredictor::ArgmaxTransition(const TidState& st, int from) const {
  int best = -1;
  uint32_t best_count = 0;
  for (int to = 0; to < options_.num_classes; ++to) {
    const uint32_t count = st.transitions[from * options_.num_classes + to];
    if (count > best_count) {
      best_count = count;
      best = to;
    }
  }
  return best;
}

Duration ServiceTimePredictor::Predict(int64_t tid) const {
  auto it = states_.find(tid);
  if (it == states_.end() || it->second.last_class < 0) {
    return options_.default_prediction;
  }
  const TidState& st = it->second;
  int cls = ArgmaxTransition(st, st.last_class);
  if (cls < 0) {
    // One observation, no transition yet: predict a repeat.
    cls = st.last_class;
  }
  const Ewma& service = st.class_service[cls];
  if (service.initialized()) {
    return static_cast<Duration>(service.value());
  }
  // Transition into a class we never timed (halving artifacts): fall back to
  // the geometric center of the class bucket.
  const uint64_t us = cls == 0 ? 1 : (uint64_t{1} << cls);
  return static_cast<Duration>(us) * 1000;
}

void ServiceTimePredictor::Forget(int64_t tid) { states_.erase(tid); }

void WakeupAffinityPredictor::Observe(int64_t tid, int node) {
  if (node < 0) {
    return;
  }
  std::vector<uint32_t>& counts = states_[tid];
  if (counts.size() <= static_cast<size_t>(node)) {
    counts.resize(static_cast<size_t>(node) + 1, 0);
  }
  if (++counts[node] >= options_.decay_limit) {
    for (uint32_t& c : counts) {
      c /= 2;
    }
  }
}

int WakeupAffinityPredictor::Predict(int64_t tid) const {
  auto it = states_.find(tid);
  if (it == states_.end()) {
    return -1;
  }
  int best = -1;
  uint32_t best_count = 0;
  for (size_t node = 0; node < it->second.size(); ++node) {
    if (it->second[node] > best_count) {
      best_count = it->second[node];
      best = static_cast<int>(node);
    }
  }
  return best;
}

}  // namespace predict
}  // namespace gs
