// Machine: convenience bundle wiring up the standard simulated host.
//
// Builds the class stack the paper's testbeds run:
//   agent (RT) > MicroQuanta > CFS (default) > ghOSt
// Experiments and tests grab the pieces they need; extra classes (in-kernel
// core scheduling) can be inserted via the constructor flag.
#ifndef GHOST_SIM_SRC_GHOST_MACHINE_H_
#define GHOST_SIM_SRC_GHOST_MACHINE_H_

#include <memory>
#include <utility>
#include <vector>

#include "src/ghost/enclave.h"
#include "src/ghost/ghost_class.h"
#include "src/kernel/agent_class.h"
#include "src/kernel/cfs.h"
#include "src/kernel/core_sched.h"
#include "src/kernel/kernel.h"
#include "src/kernel/microquanta.h"
#include "src/sim/event_loop.h"

namespace gs {

class Machine {
 public:
  // `stats` is forwarded to the Kernel (borrowed; nullptr => the kernel backs
  // its metrics with a private disabled registry). SimulationContext passes
  // its own registry here; bare Machine construction stays zero-config.
  explicit Machine(Topology topology, CostModel cost = CostModel(),
                   bool with_core_sched = false, StatsRegistry* stats = nullptr)
      : kernel_(&loop_, std::move(topology), cost, stats) {
    auto agent = std::make_unique<AgentClass>();
    auto mq = std::make_unique<MicroQuantaClass>();
    auto cfs = std::make_unique<CfsClass>();
    auto ghost = std::make_unique<GhostClass>();
    agent_class_ = agent.get();
    mq_class_ = mq.get();
    cfs_class_ = cfs.get();
    ghost_class_ = ghost.get();

    std::vector<std::unique_ptr<SchedClass>> classes;
    classes.push_back(std::move(agent));
    classes.push_back(std::move(mq));
    int default_index = 2;
    if (with_core_sched) {
      auto core_sched = std::make_unique<CoreSchedClass>();
      core_sched_class_ = core_sched.get();
      classes.push_back(std::move(core_sched));
      default_index = 3;
    }
    classes.push_back(std::move(cfs));
    classes.push_back(std::move(ghost));
    kernel_.InstallClasses(std::move(classes), default_index);
  }

  EventLoop& loop() { return loop_; }
  Kernel& kernel() { return kernel_; }
  AgentClass* agent_class() { return agent_class_; }
  MicroQuantaClass* mq_class() { return mq_class_; }
  CfsClass* cfs_class() { return cfs_class_; }
  GhostClass* ghost_class() { return ghost_class_; }
  CoreSchedClass* core_sched_class() { return core_sched_class_; }

  std::unique_ptr<Enclave> CreateEnclave(const CpuMask& cpus,
                                         Enclave::Config config = Enclave::Config()) {
    return std::make_unique<Enclave>(&kernel_, ghost_class_, agent_class_, cpus, config);
  }

  void RunFor(Duration d) { loop_.RunFor(d); }
  Time now() const { return loop_.now(); }

 private:
  EventLoop loop_;
  Kernel kernel_;
  AgentClass* agent_class_ = nullptr;
  MicroQuantaClass* mq_class_ = nullptr;
  CfsClass* cfs_class_ = nullptr;
  GhostClass* ghost_class_ = nullptr;
  CoreSchedClass* core_sched_class_ = nullptr;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_GHOST_MACHINE_H_
