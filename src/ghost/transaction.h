// Transactions: the agent -> kernel scheduling interface (§3.2).
//
// An agent opens a transaction naming (thread, target CPU), optionally with
// the sequence number its decision was based on, and commits one or many via
// TXNS_COMMIT. Group commits amortize syscall and IPI costs (batch
// interrupts). Synchronized groups (sync_group >= 0) commit atomically —
// either every member latches or none do — which is what the secure-VM
// core-scheduling policy uses to schedule both hyperthreads of a physical
// core at once (§4.5).
#ifndef GHOST_SIM_SRC_GHOST_TRANSACTION_H_
#define GHOST_SIM_SRC_GHOST_TRANSACTION_H_

#include <cstdint>
#include <optional>

namespace gs {

enum class TxnStatus : uint8_t {
  kPending,      // created, not yet committed
  kCommitted,    // latched; the kernel will switch the target CPU
  kEStale,       // sequence-number mismatch (ESTALE, §3.2/§3.3)
  kENotRunnable, // target thread blocked/dead/already running
  kECpuBusy,     // target CPU held by a higher-priority sched class
  kETxnPending,  // another transaction is already latched on the target CPU
  kEInvalid,     // malformed (unknown thread, CPU outside the enclave, ...)
  kEAborted,     // a sibling in a synchronized group failed
  kENoAgent,     // committing agent is not attached to the enclave
};

const char* ToString(TxnStatus status);

struct Transaction {
  int64_t tid = 0;
  int target_cpu = -1;

  // Centralized model (§3.3): fail with kEStale unless the thread's Tseq
  // still equals this value at commit time.
  std::optional<uint32_t> expected_tseq;
  // Per-CPU model (§3.2): fail with kEStale unless the committing agent's
  // Aseq still equals this value (i.e. no new messages arrived).
  std::optional<uint32_t> expected_aseq;

  // Transactions sharing a non-negative sync_group commit atomically.
  int sync_group = -1;

  // An idle marker: schedule nothing on target_cpu (used by core scheduling
  // to force a sibling idle; tid must be 0).
  bool idle = false;

  TxnStatus status = TxnStatus::kPending;

  bool committed() const { return status == TxnStatus::kCommitted; }
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_GHOST_TRANSACTION_H_
