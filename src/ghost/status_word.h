// Status words: per-thread and per-agent state shared with userspace (§3.1).
//
// "ghOSt allows agents to efficiently poll auxiliary information about thread
// and CPU state through status words, mapped into the agent's address space."
// In the reproduction these are plain structs owned by the kernel-side ghOSt
// module; agents read them through AgentContext, which charges the
// (tiny) polling cost. The fields mirror the real uAPI: sequence numbers for
// staleness detection, on-cpu state, and accumulated runtime.
#ifndef GHOST_SIM_SRC_GHOST_STATUS_WORD_H_
#define GHOST_SIM_SRC_GHOST_STATUS_WORD_H_

#include <cstdint>

#include "src/base/time.h"

namespace gs {

struct TaskStatusWord {
  uint32_t tseq = 0;     // thread sequence number
  bool on_cpu = false;   // currently executing
  bool runnable = false; // wants a CPU
  int cpu = -1;          // where it runs (valid when on_cpu)
  Duration runtime = 0;  // total accumulated CPU time
};

struct AgentStatusWord {
  uint32_t aseq = 0;  // incremented per message posted to this agent's queue
  int cpu = -1;       // the agent's home CPU
  bool active = false;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_GHOST_STATUS_WORD_H_
