// The ghOSt kernel scheduling class.
//
// Sits at the *bottom* of the class hierarchy (§3.4): any CFS or RT thread
// preempts a ghOSt thread, generating a THREAD_PREEMPTED message for the
// agent. The class holds no runqueues — policy lives in userspace. Its only
// per-CPU state is the transaction latch (the committed-but-not-yet-picked
// thread), a forced-idle flag (synchronized core-scheduling commits), and the
// optional fast-path hook consulted when a CPU would otherwise idle.
#ifndef GHOST_SIM_SRC_GHOST_GHOST_CLASS_H_
#define GHOST_SIM_SRC_GHOST_GHOST_CLASS_H_

#include <vector>

#include "src/base/cpumask.h"
#include "src/kernel/sched_class.h"

namespace gs {

class Enclave;

class GhostClass : public SchedClass {
 public:
  const char* name() const override { return "ghost"; }
  void Attach(Kernel* kernel) override;

  // ---- Enclave registry -----------------------------------------------------
  void AddEnclave(Enclave* enclave);
  void RemoveEnclave(Enclave* enclave);
  Enclave* EnclaveForCpu(int cpu) const { return cpu_owner_[cpu]; }

  // ---- Transaction latch ------------------------------------------------------
  // Latches `task` on `cpu`. If `enabled`, the next pick may take it;
  // otherwise it becomes pickable once EnableLatch() runs (IPI arrival).
  void LatchTask(int cpu, Task* task, bool enabled);
  void EnableLatch(int cpu);
  // Marks an existing latch pickable without kicking the CPU (the caller is
  // the local agent, which vacates the CPU itself — synchronized group
  // commits' deliver phase).
  void EnableLatchQuiet(int cpu);
  void ClearLatch(int cpu);
  bool HasLatch(int cpu) const { return latches_[cpu].task != nullptr; }
  Task* LatchedTask(int cpu) const { return latches_[cpu].task; }
  // Forced idle (idle transactions from synchronized groups, §4.5): the
  // ghOSt class schedules nothing on the CPU until the next latch.
  void SetForcedIdle(int cpu, bool forced);
  bool forced_idle(int cpu) const { return latches_[cpu].forced_idle; }

  // A CPU is available for a new transaction if no latch is pending there.
  bool LatchPending(int cpu) const { return latches_[cpu].task != nullptr; }
  // All latch-pending CPUs as a mask (kept in sync by LatchTask/ClearLatch):
  // lets AvailableCpus() subtract them with word ops instead of a per-CPU scan.
  const CpuMask& latched_cpus() const { return latched_; }

  // ---- SchedClass ----------------------------------------------------------------
  void TaskNew(Task* task) override;
  void TaskDeparted(Task* task) override;
  void EnqueueWake(Task* task) override;
  void PutPrev(Task* task, int cpu, PutPrevReason reason) override;
  Task* PickNext(int cpu) override;
  void TaskStarted(int cpu, Task* task) override;
  void TaskTick(int cpu, Task* current) override;
  void AffinityChanged(Task* task) override;

  uint64_t fastpath_picks() const { return fastpath_picks_; }

  // Test seam (schedule-space explorer mutation battery): disables the
  // pick-time placement re-validation — the fast path returns published tids
  // without checking whether they were latched elsewhere or are mid-switch
  // onto another CPU, reintroducing the stale-pick race. Never set outside
  // tests.
  void set_test_unsafe_fastpath(bool unsafe) { test_unsafe_fastpath_ = unsafe; }
  bool test_unsafe_fastpath() const { return test_unsafe_fastpath_; }

 private:
  struct Latch {
    Task* task = nullptr;
    bool enabled = false;
    bool forced_idle = false;
  };

  std::vector<Enclave*> enclaves_;
  std::vector<Enclave*> cpu_owner_;
  std::vector<Latch> latches_;
  CpuMask latched_;  // bit set iff latches_[cpu].task != nullptr
  uint64_t fastpath_picks_ = 0;
  bool test_unsafe_fastpath_ = false;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_GHOST_GHOST_CLASS_H_
