// The ghOSt kernel scheduling class.
//
// Sits at the *bottom* of the class hierarchy (§3.4): any CFS or RT thread
// preempts a ghOSt thread, generating a THREAD_PREEMPTED message for the
// agent. The class holds no runqueues — policy lives in userspace. Its only
// per-CPU state is the transaction latch (the committed-but-not-yet-picked
// thread), a forced-idle flag (synchronized core-scheduling commits), and the
// optional fast-path hook consulted when a CPU would otherwise idle.
#ifndef GHOST_SIM_SRC_GHOST_GHOST_CLASS_H_
#define GHOST_SIM_SRC_GHOST_GHOST_CLASS_H_

#include <cstdint>
#include <vector>

#include "src/base/cpumask.h"
#include "src/kernel/sched_class.h"

namespace gs {

class Enclave;

class GhostClass : public SchedClass {
 public:
  const char* name() const override { return "ghost"; }
  void Attach(Kernel* kernel) override;

  // ---- Enclave registry -----------------------------------------------------
  void AddEnclave(Enclave* enclave);
  void RemoveEnclave(Enclave* enclave);
  Enclave* EnclaveForCpu(int cpu) const { return cpu_owner_[cpu]; }

  // ---- Transaction latch ------------------------------------------------------
  // Latches `task` on `cpu`. If `enabled`, the next pick may take it;
  // otherwise it becomes pickable once EnableLatch() runs (IPI arrival).
  void LatchTask(int cpu, Task* task, bool enabled);
  // Per-CPU commit generation: bumped whenever the CPU's latch/forced-idle
  // state is (re)written or invalidated. Deferred commit effects (the
  // enable-IPI and forced-idle-IPI callbacks) carry the generation observed
  // at commit time and are dropped on arrival if it moved — an in-flight IPI
  // must never act on behalf of a commit that was since cleared, superseded,
  // or torn down with its enclave.
  uint64_t commit_gen(int cpu) const { return latches_[cpu].gen; }
  void EnableLatch(int cpu, uint64_t gen);
  // Deferred arm of a forced-idle marker (remote idle transaction, §4.5).
  void ForceIdle(int cpu, uint64_t gen);
  // Marks an existing latch pickable without kicking the CPU (the caller is
  // the local agent, which vacates the CPU itself — synchronized group
  // commits' deliver phase).
  void EnableLatchQuiet(int cpu);
  void ClearLatch(int cpu);
  bool HasLatch(int cpu) const { return latches_[cpu].task != nullptr; }
  Task* LatchedTask(int cpu) const { return latches_[cpu].task; }
  // Forced idle (idle transactions from synchronized groups, §4.5): the
  // ghOSt class schedules nothing on the CPU until the next latch.
  void SetForcedIdle(int cpu, bool forced);
  bool forced_idle(int cpu) const { return latches_[cpu].forced_idle; }

  // A CPU is available for a new transaction if no latch is pending there.
  bool LatchPending(int cpu) const { return latches_[cpu].task != nullptr; }
  // All latch-pending CPUs as a mask (kept in sync by LatchTask/ClearLatch):
  // lets AvailableCpus() subtract them with word ops instead of a per-CPU scan.
  const CpuMask& latched_cpus() const { return latched_; }

  // ---- SchedClass ----------------------------------------------------------------
  void TaskNew(Task* task) override;
  void TaskDeparted(Task* task) override;
  void EnqueueWake(Task* task) override;
  void PutPrev(Task* task, int cpu, PutPrevReason reason) override;
  // Synchronous task_dead bookkeeping: posts TASK_DEAD, clears any latch the
  // task holds, and erases it from its enclave before Exit() returns.
  void TaskExited(Task* task) override;
  Task* PickNext(int cpu) override;
  void TaskStarted(int cpu, Task* task) override;
  void TaskTick(int cpu, Task* current) override;
  void AffinityChanged(Task* task) override;

  uint64_t fastpath_picks() const { return fastpath_picks_; }

  // Test seam (schedule-space explorer mutation battery): disables the
  // pick-time placement re-validation — the fast path returns published tids
  // without checking whether they were latched elsewhere or are mid-switch
  // onto another CPU, reintroducing the stale-pick race. Never set outside
  // tests.
  void set_test_unsafe_fastpath(bool unsafe) { test_unsafe_fastpath_ = unsafe; }
  bool test_unsafe_fastpath() const { return test_unsafe_fastpath_; }

  // Test seam (policy fuzzer battery): ignores the commit-generation guard on
  // deferred IPI effects, reintroducing two historical bugs — a stale
  // enable-IPI arming a newer latch early, and an idle-IPI forcing a CPU idle
  // after its commit was invalidated (including past enclave teardown, which
  // wedges every later enclave on that CPU). Never set outside tests.
  void set_test_unguarded_commit_ipis(bool unguarded) {
    test_unguarded_commit_ipis_ = unguarded;
  }
  // Test seam (policy fuzzer battery): RemoveEnclave leaves the departing
  // enclave's per-CPU latch/forced-idle state behind instead of clearing it,
  // reintroducing the teardown leak where a surviving forced-idle marker
  // strands every thread a successor enclave places on the CPU. Never set
  // outside tests.
  void set_test_leak_teardown_cpu_state(bool leak) {
    test_leak_teardown_cpu_state_ = leak;
  }
  // Test seam (policy fuzzer battery): defers exit teardown back to the freed
  // CPU's reschedule event instead of the synchronous task_dead hook,
  // reintroducing the same-instant window where an invariant scan ordered
  // between Kernel::Exit() and the resched sees a dead task still
  // enclave-managed. Never set outside tests.
  void set_test_deferred_exit_teardown(bool deferred) {
    test_deferred_exit_teardown_ = deferred;
  }

 private:
  struct Latch {
    Task* task = nullptr;
    bool enabled = false;
    bool forced_idle = false;
    uint64_t gen = 0;  // commit generation, see commit_gen()
  };

  std::vector<Enclave*> enclaves_;
  std::vector<Enclave*> cpu_owner_;
  std::vector<Latch> latches_;
  CpuMask latched_;  // bit set iff latches_[cpu].task != nullptr
  uint64_t fastpath_picks_ = 0;
  bool test_unsafe_fastpath_ = false;
  bool test_unguarded_commit_ipis_ = false;
  bool test_leak_teardown_cpu_state_ = false;
  bool test_deferred_exit_teardown_ = false;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_GHOST_GHOST_CLASS_H_
