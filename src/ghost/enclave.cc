#include "src/ghost/enclave.h"

#include <algorithm>
#include <set>
#include <utility>

#include "src/ghost/ghost_class.h"
#include "src/kernel/agent_class.h"
#include "src/sim/sched_tag.h"

namespace gs {

const char* ToString(MessageType type) {
  switch (type) {
    case MessageType::kTaskNew:
      return "THREAD_CREATED";
    case MessageType::kTaskBlocked:
      return "THREAD_BLOCKED";
    case MessageType::kTaskPreempted:
      return "THREAD_PREEMPTED";
    case MessageType::kTaskYield:
      return "THREAD_YIELD";
    case MessageType::kTaskDead:
      return "THREAD_DEAD";
    case MessageType::kTaskWakeup:
      return "THREAD_WAKEUP";
    case MessageType::kTaskAffinity:
      return "THREAD_AFFINITY";
    case MessageType::kTaskDeparted:
      return "THREAD_DEPARTED";
    case MessageType::kTimerTick:
      return "TIMER_TICK";
    case MessageType::kAgentWakeup:
      return "AGENT_WAKEUP";
  }
  return "?";
}

const char* ToString(TxnStatus status) {
  switch (status) {
    case TxnStatus::kPending:
      return "PENDING";
    case TxnStatus::kCommitted:
      return "COMMITTED";
    case TxnStatus::kEStale:
      return "ESTALE";
    case TxnStatus::kENotRunnable:
      return "ENOTRUNNABLE";
    case TxnStatus::kECpuBusy:
      return "ECPUBUSY";
    case TxnStatus::kETxnPending:
      return "ETXNPENDING";
    case TxnStatus::kEInvalid:
      return "EINVAL";
    case TxnStatus::kEAborted:
      return "EABORTED";
    case TxnStatus::kENoAgent:
      return "ENOAGENT";
  }
  return "?";
}

Enclave::Enclave(Kernel* kernel, GhostClass* ghost_class, AgentClass* agent_class,
                 CpuMask cpus, Config config)
    : kernel_(kernel),
      ghost_class_(ghost_class),
      agent_class_(agent_class),
      cpus_(cpus),
      config_(config) {
  CHECK(!cpus_.Empty());
  cpu_queues_.assign(kernel_->topology().num_cpus(), nullptr);
  agents_.assign(kernel_->topology().num_cpus(), nullptr);

  StatsRegistry& stats = *kernel_->stats();
  for (int t = 0; t <= static_cast<int>(MessageType::kAgentWakeup); ++t) {
    stat_msg_post_.push_back(stats.GetCounter(
        "ghost_msg_post_total", {{"type", ToString(static_cast<MessageType>(t))}}));
  }
  for (int s = 0; s <= static_cast<int>(TxnStatus::kENoAgent); ++s) {
    stat_txn_status_.push_back(stats.GetCounter(
        "txn_commit_total", {{"status", ToString(static_cast<TxnStatus>(s))}}));
  }
  stat_msg_drop_ = stats.GetCounter("ghost_msg_drop_total");
  stat_msg_deliver_ = stats.GetCounter("ghost_msg_deliver_total");
  stat_group_commit_size_ = stats.GetHistogram("ghost_group_commit_size");
  stat_sched_latency_ns_ = stats.GetHistogram("ghost_sched_latency_ns");

  ghost_class_->AddEnclave(this);
  default_queue_ = CreateQueue(config_.default_queue_capacity);

  idle_listener_handle_ = kernel_->AddIdleListener(
      [this](int cpu, bool idle) { OnCpuIdleTransition(cpu, idle); });

  if (config_.watchdog_timeout > 0) {
    ScheduleWatchdog();
  }
}

Enclave::~Enclave() {
  if (!destroyed_) {
    Destroy();
  }
}

void Enclave::ScheduleWatchdog() {
  // Periodic: one armed event for the enclave's lifetime. Destroy() cancels
  // it — including from inside WatchdogScan itself, which suppresses the
  // re-arm.
  watchdog_event_ = kernel_->loop()->SchedulePeriodic(
      config_.watchdog_period, config_.watchdog_period,
      [this] { WatchdogScan(); },
      MakeSchedTag(SchedTagKind::kWatchdog, 0));
}

void Enclave::WatchdogScan() {
  if (destroyed_ || config_.watchdog_timeout <= 0) {
    return;
  }
  const Time now = kernel_->now();
  for (const GhostTask* gt : tasks_by_tid_) {
    const Task* task = gt->task;
    // A thread's wait is measured from the later of its wakeup and the last
    // agent handoff (registration / queue resync): a freshly installed agent
    // inherits threads that may have been runnable through the entire
    // upgrade window, and must get a full timeout to schedule them before
    // the watchdog declares it unfit (§3.4).
    const Time waiting_since = std::max(task->runnable_since(), watchdog_reset_);
    if (task->state() == TaskState::kRunnable &&
        now - waiting_since > config_.watchdog_timeout) {
      LOG(WARNING) << "ghOSt watchdog: " << task->name() << " runnable for "
                   << ToMillis(now - task->runnable_since())
                   << " ms without being scheduled; destroying enclave";
      Destroy();
      return;
    }
  }
}

void Enclave::Destroy() {
  if (destroyed_) {
    return;
  }
  destroyed_ = true;
  if (tickless_) {
    SetTickless(false);
    tickless_ = true;  // remember the mode for post-mortem inspection
  }
  if (watchdog_event_ != kInvalidEventId) {
    kernel_->loop()->Cancel(watchdog_event_);
    watchdog_event_ = kInvalidEventId;
  }
  kernel_->RemoveIdleListener(idle_listener_handle_);

  // Every managed thread falls back to the default scheduler (CFS). Collect
  // first: SetSchedClass mutates tasks_ via OnTaskDeparted.
  std::vector<Task*> managed;
  managed.reserve(tasks_by_tid_.size());
  for (const GhostTask* gt : tasks_by_tid_) {
    managed.push_back(gt->task);
  }
  for (Task* task : managed) {
    kernel_->SetSchedClass(task, kernel_->default_class());
  }
  CHECK_EQ(num_tasks(), 0);

  // Kill the agents.
  for (int cpu = 0; cpu < static_cast<int>(agents_.size()); ++cpu) {
    Task* agent = agents_[cpu];
    if (agent == nullptr) {
      continue;
    }
    kernel_->Kill(agent);
    agent_class_->UnregisterAgent(cpu, agent);
    agents_[cpu] = nullptr;
  }
  poll_waiters_.clear();

  ghost_class_->RemoveEnclave(this);
  if (destroy_listener_) {
    destroy_listener_();
  }
}

// ---- Threads ------------------------------------------------------------------

void Enclave::AddTask(Task* task) {
  CHECK(!destroyed_);
  CHECK(task->ghost_state() == nullptr) << task->name() << " already in an enclave";
  GhostTask* gt = task_slab_.New();
  gt->task = task;
  gt->enclave = this;
  gt->queue = default_queue_;
  gt->gen = next_task_gen_++;
  task->set_ghost_state(gt);
  task_by_tid_.Insert(task->tid(), gt);
  // Keep the deterministic-iteration view sorted by tid (tids are usually
  // inserted in increasing order, so this is normally a push_back).
  auto pos = std::lower_bound(tasks_by_tid_.begin(), tasks_by_tid_.end(), gt,
                              [](const GhostTask* a, const GhostTask* b) {
                                return a->task->tid() < b->task->tid();
                              });
  tasks_by_tid_.insert(pos, gt);
  kernel_->SetSchedClass(task, ghost_class_);
}

void Enclave::RemoveTask(Task* task) {
  CHECK(task->ghost_state() != nullptr);
  kernel_->SetSchedClass(task, kernel_->default_class());
}

void Enclave::EraseTask(GhostTask* gt) {
  const int64_t tid = gt->task->tid();
  task_by_tid_.Erase(tid);
  auto pos = std::lower_bound(tasks_by_tid_.begin(), tasks_by_tid_.end(), gt,
                              [](const GhostTask* a, const GhostTask* b) {
                                return a->task->tid() < b->task->tid();
                              });
  CHECK(pos != tasks_by_tid_.end() && *pos == gt);
  tasks_by_tid_.erase(pos);
  task_slab_.Delete(gt);
}

const TaskStatusWord* Enclave::task_status(int64_t tid) {
  GhostTask* gt = Find(tid);
  return gt == nullptr ? nullptr : &gt->status;
}

std::vector<Enclave::TaskInfo> Enclave::TaskDump() const {
  std::vector<TaskInfo> dump;
  dump.reserve(tasks_by_tid_.size());
  for (const GhostTask* gt : tasks_by_tid_) {
    TaskInfo info;
    info.tid = gt->task->tid();
    info.runnable = gt->status.runnable;
    info.on_cpu = gt->status.on_cpu;
    info.cpu = gt->status.cpu;
    info.tseq = gt->tseq;
    info.affinity = gt->task->affinity();
    dump.push_back(info);
  }
  return dump;
}

// ---- Queues -------------------------------------------------------------------

MessageQueue* Enclave::CreateQueue(size_t capacity) {
  auto queue = std::make_unique<MessageQueue>(next_queue_id_++, capacity);
  MessageQueue* ptr = queue.get();
  queues_.push_back(std::move(queue));
  return ptr;
}

void Enclave::DestroyQueue(MessageQueue* queue) {
  CHECK_NE(queue, default_queue_) << "cannot destroy the default queue";
  for (const GhostTask* gt : tasks_by_tid_) {
    CHECK(gt->queue != queue) << "queue still has associated threads";
  }
  for (MessageQueue*& q : cpu_queues_) {
    if (q == queue) {
      q = default_queue_;
    }
  }
  queues_.erase(std::find_if(queues_.begin(), queues_.end(),
                             [queue](const auto& q) { return q.get() == queue; }));
}

bool Enclave::AssociateQueue(int64_t tid, MessageQueue* queue) {
  GhostTask* gt = Find(tid);
  if (gt == nullptr) {
    // The thread already departed (died or was removed): the agent is acting
    // on a stale message. An ESRCH-style failure, not a kernel panic.
    return false;
  }
  if (gt->queue == queue) {
    return true;
  }
  if (gt->pending_msgs > 0) {
    // The agent must drain the original queue and retry (§3.1).
    return false;
  }
  gt->queue = queue;
  return true;
}

void Enclave::ConfigQueueWakeup(MessageQueue* queue, Task* agent) {
  queue->set_wakeup_agent(agent);
}

void Enclave::SetCpuQueue(int cpu, MessageQueue* queue) {
  CHECK(cpus_.IsSet(cpu));
  CHECK_LT(cpu, static_cast<int>(cpu_queues_.size()));
  cpu_queues_[cpu] = queue;
}

std::optional<Message> Enclave::PopMessage(MessageQueue* queue) {
  std::optional<Message> msg = queue->Pop();
  if (msg.has_value()) {
    stat_msg_deliver_->Inc();
  }
  if (msg.has_value() && msg->tid != 0) {
    GhostTask* gt = Find(msg->tid);
    if (gt != nullptr && gt->pending_msgs > 0) {
      --gt->pending_msgs;
    }
  }
  return msg;
}

void Enclave::FlushAllQueues() {
  for (auto& queue : queues_) {
    while (queue->Pop().has_value()) {
    }
  }
  for (GhostTask* gt : tasks_by_tid_) {
    gt->pending_msgs = 0;
    gt->resync = false;
  }
  overflow_pending_ = false;
  // Queue re-association / upgrade resync: the inheriting agent gets a full
  // watchdog timeout before inherited runnable threads count against it.
  watchdog_reset_ = kernel_->now();
}

void Enclave::ResetQueueRouting() {
  for (GhostTask* gt : tasks_by_tid_) {
    CHECK_EQ(gt->pending_msgs, 0) << "ResetQueueRouting requires a flush first";
    gt->queue = default_queue_;
  }
  for (MessageQueue*& queue : cpu_queues_) {
    queue = nullptr;
  }
  default_queue_->set_wakeup_agent(nullptr);
  queues_.erase(std::remove_if(queues_.begin(), queues_.end(),
                               [this](const std::unique_ptr<MessageQueue>& q) {
                                 return q.get() != default_queue_;
                               }),
                queues_.end());
}

bool Enclave::ConsumeOverflowPending() {
  const bool pending = overflow_pending_;
  overflow_pending_ = false;
  return pending;
}

void Enclave::Post(GhostTask* gt, MessageType type, int cpu) {
  if (destroyed_) {
    return;
  }
  Message msg;
  msg.type = type;
  msg.cpu = cpu;
  msg.posted = kernel_->now();
  MessageQueue* queue = default_queue_;
  if (gt != nullptr) {
    msg.tid = gt->task->tid();
    // Tseq advances whether or not the message survives: a dropped message
    // leaves a detectable gap, exactly like the real uAPI's sequence numbers.
    msg.tseq = ++gt->tseq;
    gt->status.tseq = gt->tseq;
    msg.affinity = gt->task->affinity();
    msg.runnable = gt->status.runnable;
    queue = gt->queue;
  } else if (cpu >= 0 && cpu < static_cast<int>(cpu_queues_.size()) &&
             cpu_queues_[cpu] != nullptr) {
    queue = cpu_queues_[cpu];
  }

  // Recoverable overflow (§3.1/§3.4): a full queue — or injected overflow
  // pressure — drops the message instead of CHECK-crashing. The per-task
  // resync flag and the enclave-wide latch force the agent runtime to
  // resync from TaskDump() + FlushAllQueues(); the kernel dump supersedes
  // the lost message history.
  FaultInjector* injector = kernel_->fault_injector();
  bool dropped = injector != nullptr && injector->OnMessagePost(queue->id(), msg.tid);
  if (!dropped) {
    dropped = !queue->Push(msg);
  }
  if (dropped) {
    queue->NoteOverflow();
    ++messages_dropped_;
    stat_msg_drop_->Inc();
    overflow_pending_ = true;
    if (gt != nullptr) {
      gt->resync = true;
    }
    kernel_->trace().Record(kernel_->now(), TraceEventType::kMsgDrop, cpu,
                            msg.tid, static_cast<int64_t>(type));
  } else {
    if (gt != nullptr) {
      ++gt->pending_msgs;
    }
    ++messages_posted_;
    stat_msg_post_[static_cast<int>(type)]->Inc();
    kernel_->trace().Record(kernel_->now(), TraceEventType::kMessage, cpu,
                            msg.tid, static_cast<int64_t>(type));
  }

  // Aseq bookkeeping + consumer notification. A dropped message still wakes
  // or pokes the consumer: the agent must notice the overflow promptly, not
  // at its next incidental wakeup.
  Task* agent = queue->wakeup_agent();
  if (agent != nullptr) {
    // The Aseq advances even when the message was dropped: the queue's
    // contents no longer reflect the world, so any in-flight commit built on
    // the pre-drop view must fail kEStale rather than act on a stale task
    // set. (The drop itself is surfaced via the overflow/resync flags.)
    ++StatusFor(agent).aseq;
    if (agent->state() == TaskState::kBlocked) {
      // Batched delivery: messages landing on this queue within one dispatch
      // batch (same virtual instant, same wakeup delay) share one wakeup
      // event — the producer-side mirror of the paper's group commit. The
      // armed event fires at the exact time the first message's wakeup would
      // have; the later per-message wakeups it replaces were provably no-ops
      // (the agent is already awake at that instant and, with context-switch
      // costs > 0, cannot have re-blocked within it). Coalescing requires
      // delay > 0: equality of a *future* fire time proves the armed event
      // has not fired yet. At delay == 0 (zero-cost models, e.g. the
      // explorer's adversarial CostModel) the armed event may already have
      // fired — and the agent re-blocked — within this same instant, so
      // every post schedules its own idempotent wakeup, the pre-batching
      // behavior the schedule-space explorer verified.
      const Duration delay = kernel_->cost().msg_produce + kernel_->cost().agent_wakeup;
      const Time fire_at = kernel_->now() + delay;
      if (delay > 0 && queue->armed_wakeup_at() == fire_at) {
        ++queue_wakeups_coalesced_;
      } else {
        queue->set_armed_wakeup_at(fire_at);
        ++queue_wakeups_scheduled_;
        Kernel* kernel = kernel_;
        kernel_->loop()->ScheduleAfter(delay, [kernel, agent] {
          if (agent->state() == TaskState::kBlocked) {
            kernel->Wake(agent);
          }
        }, MakeSchedTag(SchedTagKind::kQueue, queue->id()));
      }
    }
  }
  PokePollWaiters();
}

// ---- Agents --------------------------------------------------------------------

AgentStatusWord& Enclave::StatusFor(Task* agent) {
  AgentStatusWord** slot = agent_status_by_tid_.Find(agent->tid());
  if (slot != nullptr) {
    return **slot;
  }
  agent_status_storage_.emplace_back();
  AgentStatusWord* status = &agent_status_storage_.back();
  agent_status_by_tid_.Insert(agent->tid(), status);
  return *status;
}

void Enclave::RegisterAgentTask(int cpu, Task* agent) {
  CHECK(cpus_.IsSet(cpu)) << "CPU " << cpu << " not in enclave";
  CHECK_LT(cpu, static_cast<int>(agents_.size()));
  // Agent handoff: runnable-wait accounting restarts so the watchdog does
  // not charge the new agent for its predecessor's backlog.
  watchdog_reset_ = kernel_->now();
  agents_[cpu] = agent;
  AgentStatusWord& status = StatusFor(agent);
  status.cpu = cpu;
  status.active = true;
  agent_class_->RegisterAgent(cpu, agent);
}

void Enclave::UnregisterAgentTask(int cpu, Task* agent) {
  if (cpu >= 0 && cpu < static_cast<int>(agents_.size()) &&
      agents_[cpu] == agent) {
    agents_[cpu] = nullptr;
    agent_class_->UnregisterAgent(cpu, agent);
    // The departing agent's in-flight transactions die with it (§3.4): its
    // txn region is torn down, so a latch it committed but that has not yet
    // fired must not outlive it. An orphaned latch wedges the CPU — the
    // latched thread fails every later commit with ENOTRUNNABLE while the
    // latch waits for a pick that the replacement agent (a higher sched
    // class) never lets happen. The thread stays runnable in the kernel and
    // reappears in the successor's TaskDump.
    ghost_class_->ClearLatch(cpu);
    ghost_class_->SetForcedIdle(cpu, false);
  }
  UnregisterPollWaiter(agent);
}

void Enclave::RegisterPollWaiter(Task* agent, InlineFunction<void()> poke) {
  poll_waiters_.emplace_back(agent, std::move(poke));
}

void Enclave::UnregisterPollWaiter(Task* agent) {
  poll_waiters_.erase(std::remove_if(poll_waiters_.begin(), poll_waiters_.end(),
                                     [agent](const auto& w) { return w.first == agent; }),
                      poll_waiters_.end());
}

void Enclave::PokePollWaiters() {
  ++poke_epoch_;
  if (poll_waiters_.empty()) {
    return;
  }
  // Single-shot: a poked spinner re-registers when it next runs dry. The
  // scratch vector is a member so the swap dance does not allocate per poke.
  poll_scratch_.clear();
  poll_scratch_.swap(poll_waiters_);
  for (auto& [agent, poke] : poll_scratch_) {
    poke();
  }
}

// ---- Transactions ----------------------------------------------------------------

TxnStatus Enclave::Validate(const Transaction& txn, Task* agent) {
  if (destroyed_) {
    return TxnStatus::kENoAgent;
  }
  if (txn.target_cpu < 0 || !cpus_.IsSet(txn.target_cpu)) {
    return TxnStatus::kEInvalid;
  }
  // Fault injection: an ESTALE storm models messages racing ahead of the
  // commit (§3.2/§3.3) — the agent's retry loop must absorb it.
  FaultInjector* injector = kernel_->fault_injector();
  if (injector != nullptr && injector->OnTxnValidate(txn.target_cpu, txn.tid)) {
    return TxnStatus::kEStale;
  }
  if (agent != nullptr) {
    const AgentStatusWord* status = FindStatus(agent);
    if (status == nullptr) {
      return TxnStatus::kENoAgent;
    }
    if (txn.expected_aseq.has_value() && *txn.expected_aseq != status->aseq) {
      return TxnStatus::kEStale;
    }
  }
  if (ghost_class_->LatchPending(txn.target_cpu)) {
    return TxnStatus::kETxnPending;
  }
  if (txn.idle) {
    return txn.tid == 0 ? TxnStatus::kPending : TxnStatus::kEInvalid;
  }
  GhostTask* gt = Find(txn.tid);
  if (gt == nullptr) {
    return TxnStatus::kEInvalid;
  }
  if (txn.expected_tseq.has_value() && *txn.expected_tseq != gt->tseq) {
    return TxnStatus::kEStale;
  }
  Task* task = gt->task;
  if (!task->affinity().IsSet(txn.target_cpu)) {
    return TxnStatus::kEInvalid;
  }
  if (task->state() != TaskState::kRunnable || gt->latched_cpu >= 0) {
    return TxnStatus::kENotRunnable;
  }
  if (task->inbound_cpu() >= 0 && task->inbound_cpu() != txn.target_cpu) {
    // Still kRunnable, but a context switch is already carrying the thread
    // onto another CPU (e.g. a fast-path pick): committing it here would
    // place it twice.
    return TxnStatus::kENotRunnable;
  }
  // The target CPU must be idle, running a (preemptible) ghOSt thread, or be
  // the committing agent's own CPU (local commit-and-yield).
  const CpuState& cs = kernel_->cpu_state(txn.target_cpu);
  const Task* occupant = cs.switching ? cs.switching_to : cs.current;
  if (occupant != nullptr && occupant != agent &&
      occupant->sched_class() != ghost_class_) {
    return TxnStatus::kECpuBusy;
  }
  return TxnStatus::kPending;  // validation passed
}

void Enclave::Latch(Transaction* txn, Task* agent, Duration delay) {
  GhostClass* ghost_class = ghost_class_;
  Kernel* kernel = kernel_;
  const int cpu = txn->target_cpu;
  const bool local = agent != nullptr && agent->cpu() == cpu;
  const bool cross_numa =
      agent != nullptr && agent->cpu() >= 0 &&
      kernel_->topology().cpu(agent->cpu()).numa != kernel_->topology().cpu(cpu).numa;

  if (txn->idle) {
    if (local) {
      ghost_class->SetForcedIdle(cpu, true);
    } else {
      // The IPI carries the commit generation observed now: if anything
      // rewrites the CPU's commit state before it lands (a newer latch, a
      // teardown), the effect is dropped instead of wedging the CPU.
      const uint64_t gen = ghost_class->commit_gen(cpu);
      kernel_->loop()->ScheduleAfter(delay, [kernel, ghost_class, cpu, cross_numa, gen] {
        kernel->SendIpi(cpu, cross_numa,
                        [ghost_class, cpu, gen] { ghost_class->ForceIdle(cpu, gen); });
      }, MakeSchedTag(SchedTagKind::kCpu, cpu));
    }
    return;
  }

  GhostTask* gt = Find(txn->tid);
  CHECK(gt != nullptr);
  ghost_class->SetForcedIdle(cpu, false);
  if (local) {
    // Takes effect when the agent yields its CPU.
    ghost_class->LatchTask(cpu, gt->task, /*enabled=*/true);
  } else {
    ghost_class->LatchTask(cpu, gt->task, /*enabled=*/false);
    const uint64_t gen = ghost_class->commit_gen(cpu);
    kernel_->loop()->ScheduleAfter(delay, [kernel, ghost_class, cpu, cross_numa, gen] {
      kernel->SendIpi(cpu, cross_numa,
                      [ghost_class, cpu, gen] { ghost_class->EnableLatch(cpu, gen); });
    }, MakeSchedTag(SchedTagKind::kCpu, cpu));
  }
}

void Enclave::LatchDeliver(Transaction* txn, Task* agent, Duration delay) {
  // Deliver phase of a synchronized group commit: the member was already
  // latched (disabled) during the mark phase; this makes it take effect.
  GhostClass* ghost_class = ghost_class_;
  Kernel* kernel = kernel_;
  const int cpu = txn->target_cpu;
  const bool local = agent != nullptr && agent->cpu() == cpu;
  const bool cross_numa =
      agent != nullptr && agent->cpu() >= 0 &&
      kernel_->topology().cpu(agent->cpu()).numa != kernel_->topology().cpu(cpu).numa;

  if (txn->idle) {
    if (local) {
      ghost_class->SetForcedIdle(cpu, true);
    } else {
      const uint64_t gen = ghost_class->commit_gen(cpu);
      kernel_->loop()->ScheduleAfter(delay, [kernel, ghost_class, cpu, cross_numa, gen] {
        kernel->SendIpi(cpu, cross_numa,
                        [ghost_class, cpu, gen] { ghost_class->ForceIdle(cpu, gen); });
      }, MakeSchedTag(SchedTagKind::kCpu, cpu));
    }
    return;
  }

  if (local) {
    // Takes effect when the agent yields its CPU.
    ghost_class->EnableLatchQuiet(cpu);
  } else {
    const uint64_t gen = ghost_class->commit_gen(cpu);
    kernel_->loop()->ScheduleAfter(delay, [kernel, ghost_class, cpu, cross_numa, gen] {
      kernel->SendIpi(cpu, cross_numa,
                      [ghost_class, cpu, gen] { ghost_class->EnableLatch(cpu, gen); });
    }, MakeSchedTag(SchedTagKind::kCpu, cpu));
  }
}

void Enclave::TxnsCommit(std::span<Transaction*> txns, Task* agent,
                         const InlineFunction<Duration(int)>& agent_side_delay) {
  if (!txns.empty()) {
    stat_group_commit_size_->Observe(static_cast<int64_t>(txns.size()));
  }
  // Pass 1: validate everything (latching as we go so that duplicate targets
  // inside one call conflict, as in the real txn table).
  // Synchronized groups need all-or-nothing semantics, so validation for them
  // happens before any latch in the group.
  std::map<int, std::vector<int>> sync_groups;  // group id -> txn indices
  for (int i = 0; i < static_cast<int>(txns.size()); ++i) {
    if (txns[i]->sync_group >= 0) {
      sync_groups[txns[i]->sync_group].push_back(i);
    }
  }

  // Synchronized groups: all-or-nothing (§4.5). Members latch as they
  // validate — so each member is checked against the group's own partial
  // latch state, as in the real txn table — and a member failing
  // (kEInvalid/kECpuBusy/...) mid-latch rolls every already-latched sibling
  // back: siblings report kEAborted and their target CPUs are left
  // untouched. Side effects that escape the commit call (enable-IPIs,
  // forced-idle markers) are deferred to a deliver phase that runs only once
  // the whole group has latched, so a rollback never has to chase an IPI.
  txn_handled_scratch_.assign(txns.size(), false);
  std::vector<bool>& handled = txn_handled_scratch_;
  for (auto& [group, members] : sync_groups) {
    std::vector<TxnStatus> statuses(members.size());
    std::set<int> group_cpus;
    std::set<int64_t> group_tids;
    struct MarkedMember {
      size_t m;
      bool forced_idle_before;  // marker the latch cleared; restored on abort
    };
    std::vector<MarkedMember> marked;
    bool failed = false;
    for (size_t m = 0; m < members.size(); ++m) {
      const Transaction& txn = *txns[members[m]];
      statuses[m] = Validate(txn, agent);
      // Duplicate CPUs / threads within the group: once the group has
      // failed nothing more is marked, so later duplicates of unmarked
      // members must be rejected explicitly rather than via latch state.
      if (statuses[m] == TxnStatus::kPending) {
        if (!group_cpus.insert(txn.target_cpu).second) {
          statuses[m] = TxnStatus::kETxnPending;
        } else if (!txn.idle && !group_tids.insert(txn.tid).second) {
          statuses[m] = TxnStatus::kENotRunnable;
        }
      }
      if (statuses[m] != TxnStatus::kPending) {
        failed = true;
        continue;
      }
      if (failed) {
        continue;  // group already doomed; keep validating for status only
      }
      const bool idle_before = ghost_class_->forced_idle(txn.target_cpu);
      if (!txn.idle) {
        GhostTask* gt = Find(txn.tid);
        CHECK(gt != nullptr);
        ghost_class_->LatchTask(txn.target_cpu, gt->task, /*enabled=*/false);
      }
      marked.push_back(MarkedMember{m, idle_before});
    }

    if (!failed || test_partial_sync_groups_) {
      for (const MarkedMember& mk : marked) {
        const int i = members[mk.m];
        statuses[mk.m] = TxnStatus::kCommitted;
        LatchDeliver(txns[i], agent, agent_side_delay(i));
      }
    } else {
      // Roll back, newest first.
      for (auto it = marked.rbegin(); it != marked.rend(); ++it) {
        const Transaction& txn = *txns[members[it->m]];
        if (!txn.idle) {
          ghost_class_->ClearLatch(txn.target_cpu);
          if (it->forced_idle_before) {
            ghost_class_->SetForcedIdle(txn.target_cpu, true);
          }
        }
      }
    }

    for (size_t m = 0; m < members.size(); ++m) {
      const int i = members[m];
      handled[i] = true;
      TxnStatus status = statuses[m];
      if (status == TxnStatus::kPending) {
        status = TxnStatus::kEAborted;  // validated fine, but a sibling failed
      }
      txns[i]->status = status;
      if (status == TxnStatus::kCommitted) {
        ++txns_committed_;
      } else {
        ++txns_failed_;
      }
      stat_txn_status_[static_cast<int>(status)]->Inc();
    }
  }

  for (int i = 0; i < static_cast<int>(txns.size()); ++i) {
    if (handled[i]) {
      continue;
    }
    const TxnStatus status = Validate(*txns[i], agent);
    if (status != TxnStatus::kPending) {
      txns[i]->status = status;
      ++txns_failed_;
      stat_txn_status_[static_cast<int>(status)]->Inc();
      kernel_->trace().Record(kernel_->now(), TraceEventType::kTxnFail,
                              txns[i]->target_cpu, txns[i]->tid,
                              static_cast<int64_t>(status));
      continue;
    }
    txns[i]->status = TxnStatus::kCommitted;
    Latch(txns[i], agent, agent_side_delay(i));
    ++txns_committed_;
    stat_txn_status_[static_cast<int>(TxnStatus::kCommitted)]->Inc();
    kernel_->trace().Record(kernel_->now(), TraceEventType::kTxnCommit,
                            txns[i]->target_cpu, txns[i]->tid);
  }
}

// ---- Introspection -------------------------------------------------------------------

size_t Enclave::QueuedMessages() const {
  size_t total = 0;
  for (const auto& queue : queues_) {
    total += queue->size();
  }
  return total;
}

int Enclave::PendingTaskMessages() const {
  int total = 0;
  for (const GhostTask* gt : tasks_by_tid_) {
    total += gt->pending_msgs;
  }
  return total;
}

// ---- Hooks from the scheduling class ------------------------------------------------

void Enclave::OnTaskNew(Task* task, bool runnable) {
  GhostTask* gt = Find(task->tid());
  CHECK(gt != nullptr);
  Post(gt, MessageType::kTaskNew, task->cpu());
}

void Enclave::OnTaskWakeup(Task* task) {
  Post(Find(task->tid()), MessageType::kTaskWakeup, -1);
}

void Enclave::OnTaskPutPrev(Task* task, int cpu, PutPrevReason reason) {
  GhostTask* gt = Find(task->tid());
  CHECK(gt != nullptr);
  switch (reason) {
    case PutPrevReason::kBlocked:
      Post(gt, MessageType::kTaskBlocked, cpu);
      break;
    case PutPrevReason::kPreempted:
      Post(gt, MessageType::kTaskPreempted, cpu);
      break;
    case PutPrevReason::kYielded:
      Post(gt, MessageType::kTaskYield, cpu);
      break;
    case PutPrevReason::kExited:
      Post(gt, MessageType::kTaskDead, cpu);
      task->set_ghost_state(nullptr);
      EraseTask(gt);
      break;
  }
}

void Enclave::OnTaskAffinity(Task* task) {
  Post(Find(task->tid()), MessageType::kTaskAffinity, -1);
}

void Enclave::OnTaskDeparted(Task* task) {
  GhostTask* gt = Find(task->tid());
  CHECK(gt != nullptr);
  Post(gt, MessageType::kTaskDeparted, -1);
  task->set_ghost_state(nullptr);
  EraseTask(gt);
}

void Enclave::OnTaskStarted(Task* task, int cpu) {
  const Duration latency = kernel_->now() - task->runnable_since();
  sched_latency_.Add(latency);
  stat_sched_latency_ns_->Observe(latency);
}

void Enclave::OnTimerTick(int cpu) { Post(nullptr, MessageType::kTimerTick, cpu); }

void Enclave::SetTickless(bool tickless) {
  tickless_ = tickless;
  for (int cpu = cpus_.First(); cpu >= 0; cpu = cpus_.NextAfter(cpu)) {
    kernel_->SetTickEnabled(cpu, !tickless);
  }
}

void Enclave::SetHint(int64_t tid, uint64_t hint) {
  GhostTask* gt = Find(tid);
  if (gt != nullptr) {
    gt->hint = hint;
  }
}

uint64_t Enclave::Hint(int64_t tid) {
  GhostTask* gt = Find(tid);
  return gt != nullptr ? gt->hint : 0;
}

void Enclave::OnCpuIdleTransition(int cpu, bool idle) {
  if (destroyed_ || !idle || !cpus_.IsSet(cpu)) {
    return;
  }
  PokePollWaiters();
}

}  // namespace gs
