// Enclave: the unit of ghOSt policy isolation (§3, Fig 2).
//
// An enclave owns a set of CPUs and runs one scheduling policy via its agent
// process. It provides the full kernel<->agent contract of the paper:
//
//  * message queues with CREATE/DESTROY/ASSOCIATE_QUEUE and
//    CONFIG_QUEUE_WAKEUP semantics (including the "must drain before
//    re-associating" failure, §3.1),
//  * per-thread Tseq and per-agent Aseq sequence numbers exposed through
//    status words,
//  * the transaction commit engine with group commits, batch IPIs, ESTALE
//    validation and synchronized (all-or-nothing) groups (§3.2, §4.5),
//  * the watchdog that destroys an enclave whose agent stops scheduling
//    runnable threads, falling every thread back to CFS (§3.4),
//  * task-state dumps for in-place agent upgrades (§3.4),
//  * the BPF-analog fast path hook (§3.2/§5).
#ifndef GHOST_SIM_SRC_GHOST_ENCLAVE_H_
#define GHOST_SIM_SRC_GHOST_ENCLAVE_H_

#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "src/base/cpumask.h"
#include "src/base/flat_map.h"
#include "src/base/histogram.h"
#include "src/base/inline_callback.h"
#include "src/base/slab.h"
#include "src/ghost/fastpath.h"
#include "src/ghost/ghost_task.h"
#include "src/ghost/message_queue.h"
#include "src/ghost/transaction.h"
#include "src/kernel/kernel.h"

namespace gs {

class AgentClass;
class GhostClass;

class Enclave {
 public:
  struct Config {
    // If a runnable ghOSt thread goes unscheduled for this long, the
    // watchdog destroys the enclave (0 disables the watchdog).
    Duration watchdog_timeout = 0;
    Duration watchdog_period = Milliseconds(10);
    size_t default_queue_capacity = 8192;
  };

  Enclave(Kernel* kernel, GhostClass* ghost_class, AgentClass* agent_class, CpuMask cpus,
          Config config);
  Enclave(Kernel* kernel, GhostClass* ghost_class, AgentClass* agent_class, CpuMask cpus)
      : Enclave(kernel, ghost_class, agent_class, cpus, Config()) {}
  ~Enclave();

  Enclave(const Enclave&) = delete;
  Enclave& operator=(const Enclave&) = delete;

  Kernel* kernel() { return kernel_; }
  GhostClass* ghost_class() { return ghost_class_; }
  const CpuMask& cpus() const { return cpus_; }
  const Config& config() const { return config_; }
  bool destroyed() const { return destroyed_; }

  // Destroys the enclave: every managed thread moves back to the default
  // scheduler (CFS) and all attached agents are killed (§3.4).
  void Destroy();
  void SetDestroyListener(std::function<void()> listener) {
    destroy_listener_ = std::move(listener);
  }

  // ---- Threads --------------------------------------------------------------
  // Moves a native thread into this enclave (it becomes ghOSt-scheduled and a
  // THREAD_CREATED message is posted).
  void AddTask(Task* task);
  // Moves a thread back to CFS (posts a departed message).
  void RemoveTask(Task* task);

  GhostTask* Find(int64_t tid) {
    GhostTask** slot = task_by_tid_.Find(tid);
    return slot == nullptr ? nullptr : *slot;
  }
  const TaskStatusWord* task_status(int64_t tid);
  int num_tasks() const { return static_cast<int>(tasks_by_tid_.size()); }

  // Snapshot of all thread state, used by a replacement agent to resume
  // scheduling after an in-place upgrade (§3.4).
  struct TaskInfo {
    int64_t tid = 0;
    bool runnable = false;
    bool on_cpu = false;
    int cpu = -1;
    uint32_t tseq = 0;
    CpuMask affinity;
  };
  std::vector<TaskInfo> TaskDump() const;

  // ---- Queues (CREATE/DESTROY/ASSOCIATE_QUEUE, CONFIG_QUEUE_WAKEUP) ----------
  MessageQueue* CreateQueue(size_t capacity = 8192);
  void DestroyQueue(MessageQueue* queue);
  MessageQueue* default_queue() { return default_queue_; }
  // Fails (returns false) if messages for the thread are pending in its
  // current queue — the agent must drain first and retry (§3.1).
  bool AssociateQueue(int64_t tid, MessageQueue* queue);
  void ConfigQueueWakeup(MessageQueue* queue, Task* agent);
  // Routes CPU messages (TIMER_TICK) for `cpu` to `queue`.
  void SetCpuQueue(int cpu, MessageQueue* queue);

  // Consumer side: pops one message, maintaining per-task pending counts and
  // the Aseq bookkeeping. (AgentContext charges the dequeue cost.)
  std::optional<Message> PopMessage(MessageQueue* queue);

  // Discards every undrained message in every queue. Used at agent takeover
  // (§3.4): the kernel's TaskDump() supersedes pre-crash message history, so
  // a replacement agent starts from a clean slate and can re-associate
  // queues freely. Also clears all overflow/resync state: after a flush the
  // dump is the authoritative view.
  void FlushAllQueues();

  // Returns message routing to the initial state: every thread re-associates
  // with the default queue, CPU-message routing and the default queue's
  // wakeup target reset, and every policy-created queue is destroyed. Used by
  // the live policy swap (§3.4 hot upgrade): the outgoing policy's queues
  // must not keep receiving messages nobody will ever drain. Call after
  // FlushAllQueues() — queues must be empty (CHECKed).
  void ResetQueueRouting();

  // ---- Overflow (recoverable, §3.1/§3.4) -------------------------------------
  // A full (or fault-injected) queue drops the message instead of crashing
  // the kernel: the per-task resync flag and the enclave-wide overflow latch
  // are raised, and the consumer is still woken/poked so it notices. The
  // agent runtime reacts by resyncing from TaskDump() + FlushAllQueues().
  // True if any message has been dropped since the last flush/consume.
  bool overflow_pending() const { return overflow_pending_; }
  // Returns the latch and clears it (the caller owns the resync).
  bool ConsumeOverflowPending();
  uint64_t messages_dropped() const { return messages_dropped_; }

  // ---- Introspection (invariant checking) ------------------------------------
  // Total undrained messages across all queues, and the sum of per-task
  // pending counts (the latter excludes CPU messages, so pending <= queued).
  size_t QueuedMessages() const;
  int PendingTaskMessages() const;

  // ---- Agents ------------------------------------------------------------------
  // Registers `agent` as the agent thread for `cpu` (pins it, top priority).
  void RegisterAgentTask(int cpu, Task* agent);
  void UnregisterAgentTask(int cpu, Task* agent);
  Task* AgentOnCpu(int cpu) const {
    return cpu >= 0 && cpu < static_cast<int>(agents_.size()) ? agents_[cpu]
                                                              : nullptr;
  }
  AgentStatusWord& agent_status(Task* agent) { return StatusFor(agent); }
  // Userspace notification for a *running* sibling agent: bumps its aseq so
  // the check-then-sleep protocol in the agent runtime sees that work was
  // queued for it mid-iteration and re-runs instead of blocking. (A blocked
  // sibling is woken directly; this covers the other half of that race.)
  void PokeAgent(Task* agent) { ++StatusFor(agent).aseq; }

  // A spinning agent with nothing to do registers a single-shot poke,
  // modelling "the global agent notices new state within its poll
  // granularity". Fired on message posts and enclave-CPU idle transitions.
  void RegisterPollWaiter(Task* agent, InlineFunction<void()> poke);
  void UnregisterPollWaiter(Task* agent);
  // Monotonic counter of poke-worthy events (message posts, idle
  // transitions). A spinner that saw epoch E at iteration start must re-run
  // instead of poll-waiting if the epoch moved during its burst.
  uint64_t poke_epoch() const { return poke_epoch_; }

  // ---- Transactions ----------------------------------------------------------------
  // Validates and latches a group of transactions committed by `agent`.
  // `agent_side_delay(i)` is the virtual-time offset (from now) at which the
  // i-th transaction's effect leaves the agent (AgentContext computes this
  // from its cost ledger). Local commits (target == agent's CPU) latch
  // immediately and take effect when the agent yields.
  void TxnsCommit(std::span<Transaction*> txns, Task* agent,
                  const InlineFunction<Duration(int)>& agent_side_delay);

  // ---- Fast path --------------------------------------------------------------------
  void InstallFastPath(std::shared_ptr<RingFastPath> fastpath) {
    fastpath_ = std::move(fastpath);
  }
  RingFastPath* fastpath() { return fastpath_.get(); }

  // ---- Tick-less mode (§5) -------------------------------------------------------------
  // With a spinning global agent the per-CPU timer ticks are redundant;
  // disabling them removes VM-exit jitter for guest workloads. Restored on
  // enclave destruction.
  void SetTickless(bool tickless);
  bool tickless() const { return tickless_; }

  // ---- Scheduling hints (§4.3) -----------------------------------------------------------
  // A shared-memory word per thread that applications write and policies
  // read (e.g. expected burst length, deadline class).
  void SetHint(int64_t tid, uint64_t hint);
  uint64_t Hint(int64_t tid);

  // ---- Hooks from GhostClass (kernel context) ------------------------------------------
  void OnTaskNew(Task* task, bool runnable);
  void OnTaskWakeup(Task* task);
  void OnTaskPutPrev(Task* task, int cpu, PutPrevReason reason);
  void OnTaskAffinity(Task* task);
  void OnTaskDeparted(Task* task);
  void OnTaskStarted(Task* task, int cpu);
  void OnTimerTick(int cpu);
  void OnCpuIdleTransition(int cpu, bool idle);

  // Statistics.
  uint64_t messages_posted() const { return messages_posted_; }
  uint64_t txns_committed() const { return txns_committed_; }
  uint64_t txns_failed() const { return txns_failed_; }
  // Batched-delivery introspection: wakeup events actually armed vs. posts
  // that rode an already-armed event (same queue, same fire instant).
  uint64_t queue_wakeups_scheduled() const { return queue_wakeups_scheduled_; }
  uint64_t queue_wakeups_coalesced() const { return queue_wakeups_coalesced_; }
  // Wakeup-to-running latency of managed threads, recorded kernel-side at
  // every dispatch — the end-to-end cost of the delegation machinery.
  const Histogram& sched_latency() const { return sched_latency_; }

  // Test seam (schedule-space explorer mutation battery): on a synchronized
  // group failure, members latched before the failing one are delivered
  // anyway instead of rolled back — the partial-latch bug the all-or-nothing
  // protocol exists to prevent. Never set outside tests.
  void set_test_partial_sync_groups(bool partial) {
    test_partial_sync_groups_ = partial;
  }

 private:
  // Posts a message about `gt` (or a CPU message when gt == nullptr) to the
  // right queue; bumps Tseq/Aseq; wakes or pokes the consumer.
  void Post(GhostTask* gt, MessageType type, int cpu);
  TxnStatus Validate(const Transaction& txn, Task* agent);
  void Latch(Transaction* txn, Task* agent, Duration delay);
  // Deliver phase of a synchronized group commit: enables / announces a
  // latch placed (disabled) during the group's mark phase.
  void LatchDeliver(Transaction* txn, Task* agent, Duration delay);
  void ScheduleWatchdog();
  void WatchdogScan();
  void PokePollWaiters();
  // Removes `gt` from the tid table and the sorted view, then recycles it.
  void EraseTask(GhostTask* gt);
  // Find-or-create: agent status words live in a stable deque and are looked
  // up through the open-addressing tid table (hot: every post and poke).
  AgentStatusWord& StatusFor(Task* agent);
  AgentStatusWord* FindStatus(Task* agent) {
    AgentStatusWord** slot = agent_status_by_tid_.Find(agent->tid());
    return slot == nullptr ? nullptr : *slot;
  }

  Kernel* kernel_;
  GhostClass* ghost_class_;
  AgentClass* agent_class_;
  CpuMask cpus_;
  Config config_;
  bool destroyed_ = false;
  std::function<void()> destroy_listener_;

  // Managed threads: slab-allocated GhostTask records (O(1) pooled churn),
  // an open-addressing tid table for the hot Find(), and a tid-sorted view
  // for the iteration sites that must stay deterministic (watchdog scan,
  // TaskDump, destroy).
  Slab<GhostTask> task_slab_;
  TidMap<GhostTask*> task_by_tid_;
  std::vector<GhostTask*> tasks_by_tid_;
  uint64_t next_task_gen_ = 1;

  std::vector<std::unique_ptr<MessageQueue>> queues_;
  MessageQueue* default_queue_ = nullptr;
  int next_queue_id_ = 1;
  std::vector<MessageQueue*> cpu_queues_;  // TIMER_TICK routing, by CPU

  std::vector<Task*> agents_;  // agent task by CPU (nullptr = none)
  // Status words need stable addresses (tasks hold no back-pointer); the
  // deque owns them, the tid table is the lookup path.
  std::deque<AgentStatusWord> agent_status_storage_;
  TidMap<AgentStatusWord*> agent_status_by_tid_;
  std::vector<std::pair<Task*, InlineFunction<void()>>> poll_waiters_;
  // Swap target for PokePollWaiters: keeps both vectors' capacity across
  // iterations instead of reallocating per poke round.
  std::vector<std::pair<Task*, InlineFunction<void()>>> poll_scratch_;
  uint64_t poke_epoch_ = 0;

  std::shared_ptr<RingFastPath> fastpath_;
  bool tickless_ = false;
  EventId watchdog_event_ = kInvalidEventId;
  // Most recent agent handoff (registration or queue flush): the watchdog
  // measures runnable waits from max(runnable_since, watchdog_reset_) so a
  // replacement agent is not blamed for its predecessor's backlog.
  Time watchdog_reset_ = 0;
  int idle_listener_handle_ = -1;
  bool test_partial_sync_groups_ = false;

  uint64_t messages_posted_ = 0;
  uint64_t messages_dropped_ = 0;
  bool overflow_pending_ = false;
  uint64_t txns_committed_ = 0;
  uint64_t txns_failed_ = 0;
  uint64_t queue_wakeups_scheduled_ = 0;
  uint64_t queue_wakeups_coalesced_ = 0;
  // Per-commit scratch (TxnsCommit is once per agent iteration).
  std::vector<bool> txn_handled_scratch_;
  Histogram sched_latency_;

  // Hot-path metrics (global registry; pointers cached at construction).
  // Indexed by MessageType / TxnStatus enum value.
  std::vector<Counter*> stat_msg_post_;
  std::vector<Counter*> stat_txn_status_;
  Counter* stat_msg_drop_;
  Counter* stat_msg_deliver_;
  HistogramMetric* stat_group_commit_size_;
  HistogramMetric* stat_sched_latency_ns_;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_GHOST_ENCLAVE_H_
