// BPF fast-path analog (§3.2, §5).
//
// "ghOSt allows recovering lost CPU time via a custom BPF program, attached
// by the agent to the kernel's pick_next_task() function. When a CPU becomes
// idle and the agent has not already issued a transaction, the BPF program
// issues its own transaction, picking a thread to run on that CPU. The BPF
// program communicates with the agent via a shared-memory window."
//
// Here the "BPF program" is a FastPath object invoked by the ghOSt scheduling
// class when a CPU would otherwise go idle. RingFastPath is the §5 design:
// the agent publishes runnable thread ids into a shared MPMC ring (one per
// NUMA domain if desired); the pick-next hook pops candidates. The agent can
// effectively revoke a thread by scheduling it elsewhere first — the hook
// skips ids that are no longer runnable.
#ifndef GHOST_SIM_SRC_GHOST_FASTPATH_H_
#define GHOST_SIM_SRC_GHOST_FASTPATH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/mpmc_ring.h"

namespace gs {

class FastPath {
 public:
  virtual ~FastPath() = default;

  // Called from pick_next_task context when `cpu` is about to idle.
  // Returns the tid of a thread to run, or 0 for none. The callee must not
  // return the same tid twice without it being re-published.
  virtual int64_t PickForCpu(int cpu) = 0;

  // Statistics: how many picks the fast path served.
  virtual uint64_t picks() const = 0;
};

// Shared-memory ring(s) of runnable tids. With `per_numa` rings the agent can
// keep NUMA locality (§5: "one ring buffer per NUMA node").
class RingFastPath : public FastPath {
 public:
  RingFastPath(int num_rings, std::vector<int> cpu_to_ring, size_t capacity = 1024)
      : cpu_to_ring_(std::move(cpu_to_ring)) {
    rings_.reserve(num_rings);
    for (int i = 0; i < num_rings; ++i) {
      rings_.push_back(std::make_unique<MpmcRing<int64_t>>(capacity));
    }
  }

  // Single global ring covering `num_cpus` CPUs.
  static std::unique_ptr<RingFastPath> Global(int num_cpus, size_t capacity = 1024) {
    return std::make_unique<RingFastPath>(1, std::vector<int>(num_cpus, 0), capacity);
  }

  // Agent side: publish a runnable thread. Returns false if the ring is full.
  bool Publish(int ring, int64_t tid) { return rings_[ring]->TryPush(tid); }

  int64_t PickForCpu(int cpu) override {
    if (cpu < 0 || cpu >= static_cast<int>(cpu_to_ring_.size())) {
      return 0;
    }
    auto tid = rings_[cpu_to_ring_[cpu]]->TryPop();
    if (!tid.has_value()) {
      return 0;
    }
    ++picks_;
    return *tid;
  }

  uint64_t picks() const override { return picks_; }

  int ring_for_cpu(int cpu) const { return cpu_to_ring_[cpu]; }

 private:
  std::vector<std::unique_ptr<MpmcRing<int64_t>>> rings_;
  std::vector<int> cpu_to_ring_;
  uint64_t picks_ = 0;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_GHOST_FASTPATH_H_
