#include "src/ghost/ghost_class.h"

#include <algorithm>

#include "src/ghost/enclave.h"
#include "src/ghost/ghost_task.h"
#include "src/kernel/kernel.h"

namespace gs {
namespace {

GhostTask* StateOf(Task* task) {
  auto* gt = static_cast<GhostTask*>(task->ghost_state());
  CHECK(gt != nullptr) << task->name() << " has no ghOSt state";
  return gt;
}

}  // namespace

void GhostClass::Attach(Kernel* kernel) {
  SchedClass::Attach(kernel);
  const int n = kernel->topology().num_cpus();
  cpu_owner_.assign(n, nullptr);
  latches_.resize(n);
}

void GhostClass::AddEnclave(Enclave* enclave) {
  enclaves_.push_back(enclave);
  const CpuMask& cpus = enclave->cpus();
  for (int cpu = cpus.First(); cpu >= 0; cpu = cpus.NextAfter(cpu)) {
    CHECK(cpu_owner_[cpu] == nullptr) << "CPU " << cpu << " already in an enclave";
    cpu_owner_[cpu] = enclave;
  }
}

void GhostClass::RemoveEnclave(Enclave* enclave) {
  enclaves_.erase(std::remove(enclaves_.begin(), enclaves_.end(), enclave), enclaves_.end());
  for (auto& owner : cpu_owner_) {
    if (owner == enclave) {
      owner = nullptr;
    }
  }
  for (size_t cpu = 0; cpu < latches_.size(); ++cpu) {
    if (cpu_owner_[cpu] == nullptr && latches_[cpu].task != nullptr &&
        StateOf(latches_[cpu].task)->enclave == enclave) {
      ClearLatch(static_cast<int>(cpu));
    }
  }
}

void GhostClass::LatchTask(int cpu, Task* task, bool enabled) {
  Latch& latch = latches_[cpu];
  CHECK(latch.task == nullptr) << "CPU " << cpu << " already has a pending transaction";
  latch.task = task;
  latched_.Set(cpu);
  latch.enabled = enabled;
  latch.forced_idle = false;
  StateOf(task)->latched_cpu = cpu;
}

void GhostClass::EnableLatch(int cpu) {
  Latch& latch = latches_[cpu];
  if (latch.task == nullptr) {
    return;  // invalidated while the IPI was in flight
  }
  latch.enabled = true;
  kernel_->ReschedCpu(cpu);
}

void GhostClass::EnableLatchQuiet(int cpu) {
  Latch& latch = latches_[cpu];
  if (latch.task != nullptr) {
    latch.enabled = true;
  }
}

void GhostClass::ClearLatch(int cpu) {
  Latch& latch = latches_[cpu];
  if (latch.task != nullptr) {
    StateOf(latch.task)->latched_cpu = -1;
    latch.task = nullptr;
    latched_.Clear(cpu);
  }
  latch.enabled = false;
}

void GhostClass::SetForcedIdle(int cpu, bool forced) {
  latches_[cpu].forced_idle = forced;
  if (forced) {
    // Kick any ghOSt thread currently running there.
    Task* current = kernel_->current(cpu);
    if (current != nullptr && current->sched_class() == this) {
      kernel_->ReschedCpu(cpu);
    }
  }
}

void GhostClass::TaskNew(Task* task) {
  GhostTask* gt = StateOf(task);
  const bool runnable =
      task->state() == TaskState::kRunnable || task->state() == TaskState::kRunning;
  gt->status.runnable = runnable;
  gt->enclave->OnTaskNew(task, runnable);
}

void GhostClass::TaskDeparted(Task* task) {
  GhostTask* gt = StateOf(task);
  if (gt->latched_cpu >= 0) {
    ClearLatch(gt->latched_cpu);
  }
  gt->enclave->OnTaskDeparted(task);
}

void GhostClass::EnqueueWake(Task* task) {
  GhostTask* gt = StateOf(task);
  if (gt->status.runnable) {
    return;  // already reported runnable (enclave-entry path)
  }
  gt->status.runnable = true;
  gt->enclave->OnTaskWakeup(task);
}

void GhostClass::PutPrev(Task* task, int cpu, PutPrevReason reason) {
  GhostTask* gt = StateOf(task);
  gt->status.on_cpu = false;
  gt->status.cpu = -1;
  gt->status.runtime = task->total_runtime();
  switch (reason) {
    case PutPrevReason::kBlocked:
      gt->status.runnable = false;
      break;
    case PutPrevReason::kExited:
      gt->status.runnable = false;
      break;
    case PutPrevReason::kPreempted:
    case PutPrevReason::kYielded:
      gt->status.runnable = true;
      break;
  }
  gt->enclave->OnTaskPutPrev(task, cpu, reason);
}

Task* GhostClass::PickNext(int cpu) {
  Latch& latch = latches_[cpu];
  if (latch.forced_idle) {
    return nullptr;
  }
  if (latch.task != nullptr) {
    if (!latch.enabled) {
      return nullptr;  // commit in flight (IPI not yet delivered)
    }
    Task* task = latch.task;
    ClearLatch(cpu);
    if (task->state() == TaskState::kRunnable && task->affinity().IsSet(cpu) &&
        (task->inbound_cpu() < 0 || task->inbound_cpu() == cpu)) {
      return task;
    }
    // Stale latch (thread blocked/died/affinity changed since commit, or
    // mid-switch onto another CPU): fall through to the fast path.
  }
  Enclave* enclave = cpu_owner_[cpu];
  if (enclave == nullptr || enclave->fastpath() == nullptr) {
    return nullptr;
  }
  // BPF-analog: pop published runnable threads until a usable one surfaces.
  // A published tid may have been scheduled elsewhere since the agent pushed
  // it — already latched by a remote commit, or mid-context-switch onto
  // another CPU (still kRunnable in that window) — so placement is
  // re-validated at pick time, honoring the "skips ids that are no longer
  // runnable" contract in fastpath.h.
  RingFastPath* fastpath = enclave->fastpath();
  for (;;) {
    const int64_t tid = fastpath->PickForCpu(cpu);
    if (tid == 0) {
      return nullptr;
    }
    GhostTask* gt = enclave->Find(tid);
    if (gt == nullptr) {
      continue;
    }
    Task* task = gt->task;
    if (!test_unsafe_fastpath_ &&
        (gt->latched_cpu >= 0 || task->inbound_cpu() >= 0)) {
      continue;
    }
    if (task->state() == TaskState::kRunnable && task->affinity().IsSet(cpu)) {
      ++fastpath_picks_;
      return task;
    }
  }
}

void GhostClass::TaskStarted(int cpu, Task* task) {
  GhostTask* gt = StateOf(task);
  gt->status.on_cpu = true;
  gt->status.cpu = cpu;
  gt->enclave->OnTaskStarted(task, cpu);
}

void GhostClass::TaskTick(int cpu, Task* current) {
  Enclave* enclave = cpu_owner_[cpu];
  if (enclave != nullptr) {
    enclave->OnTimerTick(cpu);
  }
}

void GhostClass::AffinityChanged(Task* task) {
  GhostTask* gt = StateOf(task);
  if (gt->latched_cpu >= 0 && !task->affinity().IsSet(gt->latched_cpu)) {
    // §3.3's example: an affinity change must defeat an in-flight commit.
    ClearLatch(gt->latched_cpu);
  }
  gt->enclave->OnTaskAffinity(task);
}

}  // namespace gs
