#include "src/ghost/ghost_class.h"

#include <algorithm>

#include "src/ghost/enclave.h"
#include "src/ghost/ghost_task.h"
#include "src/kernel/kernel.h"

namespace gs {
namespace {

GhostTask* StateOf(Task* task) {
  auto* gt = static_cast<GhostTask*>(task->ghost_state());
  CHECK(gt != nullptr) << task->name() << " has no ghOSt state";
  return gt;
}

}  // namespace

void GhostClass::Attach(Kernel* kernel) {
  SchedClass::Attach(kernel);
  const int n = kernel->topology().num_cpus();
  cpu_owner_.assign(n, nullptr);
  latches_.resize(n);
}

void GhostClass::AddEnclave(Enclave* enclave) {
  enclaves_.push_back(enclave);
  const CpuMask& cpus = enclave->cpus();
  for (int cpu = cpus.First(); cpu >= 0; cpu = cpus.NextAfter(cpu)) {
    CHECK(cpu_owner_[cpu] == nullptr) << "CPU " << cpu << " already in an enclave";
    cpu_owner_[cpu] = enclave;
  }
}

void GhostClass::RemoveEnclave(Enclave* enclave) {
  enclaves_.erase(std::remove(enclaves_.begin(), enclaves_.end(), enclave), enclaves_.end());
  const CpuMask& cpus = enclave->cpus();
  for (auto& owner : cpu_owner_) {
    if (owner == enclave) {
      owner = nullptr;
    }
  }
  if (test_leak_teardown_cpu_state_) {
    // Pre-fix behavior: only latches whose task demonstrably belongs to the
    // departing enclave were cleared; forced-idle markers (and the commit
    // generation they would have bumped) survived teardown.
    for (size_t cpu = 0; cpu < latches_.size(); ++cpu) {
      if (cpu_owner_[cpu] == nullptr && latches_[cpu].task != nullptr &&
          StateOf(latches_[cpu].task)->enclave == enclave) {
        ClearLatch(static_cast<int>(cpu));
      }
    }
    return;
  }
  // The departing enclave's commits die with it: any latch or forced-idle
  // marker on its CPUs is residue of a transaction whose agent no longer
  // exists. Left behind, a forced-idle marker makes PickNext() return
  // nullptr forever, stranding every thread a successor enclave places on
  // the CPU. ClearLatch also bumps the commit generation, so in-flight
  // enable/forced-idle IPIs from this enclave are dropped on arrival.
  for (int cpu = cpus.First(); cpu >= 0; cpu = cpus.NextAfter(cpu)) {
    ClearLatch(cpu);
    latches_[cpu].forced_idle = false;
  }
}

void GhostClass::LatchTask(int cpu, Task* task, bool enabled) {
  Latch& latch = latches_[cpu];
  CHECK(latch.task == nullptr) << "CPU " << cpu << " already has a pending transaction";
  latch.task = task;
  latched_.Set(cpu);
  latch.enabled = enabled;
  latch.forced_idle = false;
  ++latch.gen;
  StateOf(task)->latched_cpu = cpu;
}

void GhostClass::EnableLatch(int cpu, uint64_t gen) {
  Latch& latch = latches_[cpu];
  if (!test_unguarded_commit_ipis_ && latch.gen != gen) {
    // The commit this IPI belongs to was cleared or superseded while the IPI
    // was in flight. Without the guard a stale enable could arm a *newer*
    // latch before that commit's own effect left the agent — collapsing its
    // commit-in-flight window and letting the pick race the agent's yield.
    return;
  }
  if (latch.task == nullptr) {
    return;  // invalidated while the IPI was in flight
  }
  latch.enabled = true;
  kernel_->ReschedCpu(cpu);
}

void GhostClass::ForceIdle(int cpu, uint64_t gen) {
  if (!test_unguarded_commit_ipis_ && latches_[cpu].gen != gen) {
    // The idle commit was invalidated while its IPI was in flight — a newer
    // transaction latched the CPU, or the committing enclave was torn down.
    // Acting anyway would stamp a forced-idle marker under the newer latch
    // (wedging the CPU: pick returns nullptr, every later commit fails
    // ETXNPENDING) or onto a CPU the enclave no longer owns.
    return;
  }
  SetForcedIdle(cpu, true);
  kernel_->ReschedCpu(cpu);
}

void GhostClass::EnableLatchQuiet(int cpu) {
  Latch& latch = latches_[cpu];
  if (latch.task != nullptr) {
    latch.enabled = true;
  }
}

void GhostClass::ClearLatch(int cpu) {
  Latch& latch = latches_[cpu];
  if (latch.task != nullptr) {
    StateOf(latch.task)->latched_cpu = -1;
    latch.task = nullptr;
    latched_.Clear(cpu);
  }
  latch.enabled = false;
  // Unconditional: clearing invalidates whatever commit the state belonged
  // to, so any of its IPIs still in flight must find a moved generation.
  ++latch.gen;
}

void GhostClass::SetForcedIdle(int cpu, bool forced) {
  latches_[cpu].forced_idle = forced;
  ++latches_[cpu].gen;
  if (forced) {
    // Kick any ghOSt thread currently running there.
    Task* current = kernel_->current(cpu);
    if (current != nullptr && current->sched_class() == this) {
      kernel_->ReschedCpu(cpu);
    }
  }
}

void GhostClass::TaskNew(Task* task) {
  GhostTask* gt = StateOf(task);
  const bool runnable =
      task->state() == TaskState::kRunnable || task->state() == TaskState::kRunning;
  gt->status.runnable = runnable;
  gt->enclave->OnTaskNew(task, runnable);
}

void GhostClass::TaskDeparted(Task* task) {
  GhostTask* gt = StateOf(task);
  if (gt->latched_cpu >= 0) {
    ClearLatch(gt->latched_cpu);
  }
  gt->enclave->OnTaskDeparted(task);
}

void GhostClass::EnqueueWake(Task* task) {
  GhostTask* gt = StateOf(task);
  if (gt->status.runnable) {
    return;  // already reported runnable (enclave-entry path)
  }
  gt->status.runnable = true;
  gt->enclave->OnTaskWakeup(task);
}

void GhostClass::TaskExited(Task* task) {
  // Real ghOSt does this in the task_dead hook, synchronously with the exit —
  // not at the next reschedule. Tearing the state down here closes the
  // same-instant window where an invariant scan (or any other event ordered
  // between Exit and the freed CPU's resched) would see a dead task still
  // enclave-managed. Found by the policy fuzzer (remote/conflict-group knobs
  // merely shifted death into a scan-coincident instant; the window itself
  // exists for every exit).
  if (test_deferred_exit_teardown_) {
    return;  // pre-fix behavior: PutPrev(kExited) at the resched does it all
  }
  auto* gt = static_cast<GhostTask*>(task->ghost_state());
  if (gt == nullptr) {
    return;  // already departed (enclave remove raced the exit)
  }
  const int cpu = task->cpu();
  gt->status.on_cpu = false;
  gt->status.cpu = -1;
  gt->status.runtime = task->total_runtime();
  gt->status.runnable = false;
  if (gt->latched_cpu >= 0) {
    ClearLatch(gt->latched_cpu);
  }
  gt->enclave->OnTaskPutPrev(task, cpu, PutPrevReason::kExited);
}

void GhostClass::PutPrev(Task* task, int cpu, PutPrevReason reason) {
  if (reason == PutPrevReason::kExited && !test_deferred_exit_teardown_) {
    // Torn down synchronously in TaskExited(); the deferred reschedule has
    // nothing left to put away.
    CHECK(task->ghost_state() == nullptr);
    return;
  }
  GhostTask* gt = StateOf(task);
  gt->status.on_cpu = false;
  gt->status.cpu = -1;
  gt->status.runtime = task->total_runtime();
  switch (reason) {
    case PutPrevReason::kBlocked:
      gt->status.runnable = false;
      break;
    case PutPrevReason::kExited:
      gt->status.runnable = false;
      break;
    case PutPrevReason::kPreempted:
    case PutPrevReason::kYielded:
      gt->status.runnable = true;
      break;
  }
  gt->enclave->OnTaskPutPrev(task, cpu, reason);
}

Task* GhostClass::PickNext(int cpu) {
  Latch& latch = latches_[cpu];
  if (latch.forced_idle) {
    return nullptr;
  }
  if (latch.task != nullptr) {
    if (!latch.enabled) {
      return nullptr;  // commit in flight (IPI not yet delivered)
    }
    Task* task = latch.task;
    ClearLatch(cpu);
    if (task->state() == TaskState::kRunnable && task->affinity().IsSet(cpu) &&
        (task->inbound_cpu() < 0 || task->inbound_cpu() == cpu)) {
      return task;
    }
    // Stale latch (thread blocked/died/affinity changed since commit, or
    // mid-switch onto another CPU): fall through to the fast path.
  }
  Enclave* enclave = cpu_owner_[cpu];
  if (enclave == nullptr || enclave->fastpath() == nullptr) {
    return nullptr;
  }
  // BPF-analog: pop published runnable threads until a usable one surfaces.
  // A published tid may have been scheduled elsewhere since the agent pushed
  // it — already latched by a remote commit, or mid-context-switch onto
  // another CPU (still kRunnable in that window) — so placement is
  // re-validated at pick time, honoring the "skips ids that are no longer
  // runnable" contract in fastpath.h.
  RingFastPath* fastpath = enclave->fastpath();
  for (;;) {
    const int64_t tid = fastpath->PickForCpu(cpu);
    if (tid == 0) {
      return nullptr;
    }
    GhostTask* gt = enclave->Find(tid);
    if (gt == nullptr) {
      continue;
    }
    Task* task = gt->task;
    if (!test_unsafe_fastpath_ &&
        (gt->latched_cpu >= 0 || task->inbound_cpu() >= 0)) {
      continue;
    }
    if (task->state() == TaskState::kRunnable && task->affinity().IsSet(cpu)) {
      ++fastpath_picks_;
      return task;
    }
  }
}

void GhostClass::TaskStarted(int cpu, Task* task) {
  GhostTask* gt = StateOf(task);
  gt->status.on_cpu = true;
  gt->status.cpu = cpu;
  gt->enclave->OnTaskStarted(task, cpu);
}

void GhostClass::TaskTick(int cpu, Task* current) {
  Enclave* enclave = cpu_owner_[cpu];
  if (enclave != nullptr) {
    enclave->OnTimerTick(cpu);
  }
}

void GhostClass::AffinityChanged(Task* task) {
  GhostTask* gt = StateOf(task);
  if (gt->latched_cpu >= 0 && !task->affinity().IsSet(gt->latched_cpu)) {
    // §3.3's example: an affinity change must defeat an in-flight commit.
    ClearLatch(gt->latched_cpu);
  }
  gt->enclave->OnTaskAffinity(task);
}

}  // namespace gs
