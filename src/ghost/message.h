// ghOSt messages (Table 1 of the paper).
//
// The kernel notifies userspace agents of thread state changes via typed
// messages delivered through shared-memory queues. Every message about a
// thread T carries T's sequence number (Tseq), incremented at post time, so
// agents can detect stale views when committing transactions (§3.1, §3.3).
#ifndef GHOST_SIM_SRC_GHOST_MESSAGE_H_
#define GHOST_SIM_SRC_GHOST_MESSAGE_H_

#include <cstdint>

#include "src/base/cpumask.h"
#include "src/base/time.h"

namespace gs {

enum class MessageType : uint8_t {
  kTaskNew,        // THREAD_CREATED: thread entered the enclave
  kTaskBlocked,    // THREAD_BLOCKED
  kTaskPreempted,  // THREAD_PREEMPTED (e.g. by a CFS thread, §3.4)
  kTaskYield,      // THREAD_YIELD
  kTaskDead,       // THREAD_DEAD
  kTaskWakeup,     // THREAD_WAKEUP
  kTaskAffinity,   // THREAD_AFFINITY (sched_setaffinity happened)
  kTaskDeparted,   // thread left the enclave (setscheduler away)
  kTimerTick,      // TIMER_TICK for a CPU running a ghOSt thread
  kAgentWakeup,    // queue wakeup marker (internal bookkeeping)
};

const char* ToString(MessageType type);

struct Message {
  MessageType type = MessageType::kTaskNew;
  int64_t tid = 0;    // subject thread; 0 for CPU messages
  uint32_t tseq = 0;  // thread sequence number at post time
  int cpu = -1;       // CPU messages (kTimerTick) and context for preemptions
  Time posted = 0;    // virtual post time
  // kTaskAffinity / kTaskNew payload: the thread's allowed CPUs.
  CpuMask affinity;
  // kTaskNew payload: was the thread runnable when it entered the enclave?
  bool runnable = false;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_GHOST_MESSAGE_H_
