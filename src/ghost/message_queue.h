// Shared-memory message queue (§3.1).
//
// One producer (the kernel-side ghOSt class, which serializes on the enclave)
// and one consumer (whichever agent drains the queue) — the custom
// shared-memory queues the paper describes, built on the lock-free SPSC ring.
// A queue may be configured to wake up a (blocked) agent when a message is
// produced (CONFIG_QUEUE_WAKEUP); spinning agents instead get poked through
// the enclave's poll-waiter list.
#ifndef GHOST_SIM_SRC_GHOST_MESSAGE_QUEUE_H_
#define GHOST_SIM_SRC_GHOST_MESSAGE_QUEUE_H_

#include <optional>

#include "src/base/spsc_ring.h"
#include "src/base/time.h"
#include "src/ghost/message.h"

namespace gs {

class Task;

class MessageQueue {
 public:
  MessageQueue(int id, size_t capacity) : id_(id), ring_(capacity) {}

  int id() const { return id_; }

  bool Push(const Message& msg) { return ring_.TryPush(msg); }
  std::optional<Message> Pop() { return ring_.TryPop(); }
  const Message* Peek() const { return ring_.Peek(); }
  size_t size() const { return ring_.size(); }
  bool empty() const { return ring_.empty(); }
  size_t capacity() const { return ring_.capacity(); }

  // CONFIG_QUEUE_WAKEUP target: agent woken when a message lands while it is
  // blocked. nullptr = no wakeup (polled queue).
  Task* wakeup_agent() const { return wakeup_agent_; }
  void set_wakeup_agent(Task* agent) { wakeup_agent_ = agent; }

  // A message aimed at this queue was dropped (ring full or injected
  // overflow pressure). The consumer's view of the affected threads is now
  // stale; it must resync from the kernel's TaskDump (§3.1/§3.4).
  void NoteOverflow() { ++overflows_; }
  uint64_t overflows() const { return overflows_; }

  // Batched-delivery bookkeeping (producer side, mirrors group commit): the
  // virtual time at which the most recently armed wakeup event for this
  // queue will fire. Messages posted within the same event-loop dispatch
  // batch (same virtual instant, same wakeup delay) ride the already-armed
  // event instead of scheduling their own — one wakeup per batch. Wakeups
  // are idempotent ("wake if blocked"), and within one instant a just-woken
  // agent cannot have re-blocked (context switches cost > 0), so coalescing
  // is observationally identical to one event per message.
  Time armed_wakeup_at() const { return armed_wakeup_at_; }
  void set_armed_wakeup_at(Time t) { armed_wakeup_at_ = t; }

 private:
  const int id_;
  SpscRing<Message> ring_;
  Task* wakeup_agent_ = nullptr;
  uint64_t overflows_ = 0;
  Time armed_wakeup_at_ = -1;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_GHOST_MESSAGE_QUEUE_H_
