// Kernel-side per-task ghOSt state.
#ifndef GHOST_SIM_SRC_GHOST_GHOST_TASK_H_
#define GHOST_SIM_SRC_GHOST_GHOST_TASK_H_

#include <cstdint>

#include "src/base/time.h"
#include "src/ghost/status_word.h"

namespace gs {

class Enclave;
class MessageQueue;
class Task;

struct GhostTask {
  Task* task = nullptr;
  Enclave* enclave = nullptr;
  // Queue this task's messages are delivered to (ASSOCIATE_QUEUE target).
  MessageQueue* queue = nullptr;
  // Messages for this task sitting undrained in `queue` — a queue
  // re-association fails while this is non-zero (§3.1).
  int pending_msgs = 0;
  // A message about this task was dropped (queue overflow): the agent's view
  // of the task is stale until it resyncs from a TaskDump. Cleared by
  // FlushAllQueues (the resync entry point).
  bool resync = false;
  // Enclave-membership generation: a removed-and-re-added thread gets a fresh
  // GhostTask (tseq restarts at 0); the generation lets observers tell a
  // legitimate restart from a sequence-number regression.
  uint64_t gen = 0;
  uint32_t tseq = 0;
  // Application-provided scheduling hint (shared memory, §4.3).
  uint64_t hint = 0;
  // CPU with a latched (committed, not yet picked) transaction for this task,
  // or -1. A task can be latched on at most one CPU.
  int latched_cpu = -1;
  TaskStatusWord status;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_GHOST_GHOST_TASK_H_
