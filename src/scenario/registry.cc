#include "src/scenario/registry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sys/stat.h>

#include "src/base/logging.h"

namespace gs {
namespace scenario {
namespace {

struct Builtin {
  const char* name;
  const char* json;
};

// The built-in battery: production-shaped situations on deliberately small
// topologies / short windows, so the whole golden suite runs in seconds.
// Entries are grouped thematically; BuiltinScenarioNames() sorts.
constexpr Builtin kBuiltins[] = {
    // Fig 6b in miniature: latency-critical serving co-located with a nice-19
    // CFS batch app on the same CPUs, ghOSt keeping tails down while the
    // antagonist soaks idle cycles.
    {"cfs_antagonist_colocation", R"json({
  "name": "cfs_antagonist_colocation",
  "description": "Shinjuku-style serving co-located with a nice-19 CFS batch app",
  "seed": 42,
  "warmup_ms": 20, "measure_ms": 60, "drain_ms": 20,
  "topology": {"preset": "custom", "sockets": 1, "cores_per_socket": 4, "smt": 2, "cores_per_ccx": 4},
  "policy": {"kind": "shinjuku", "timeslice_us": 30},
  "enclave": {"cpu_first": 1, "cpu_count": 6},
  "workload": {
    "kind": "request_service", "num_workers": 40,
    "service": {"model": "bimodal", "short_us": 10, "long_us": 1000, "p_long": 0.01},
    "phases": [{"duration_ms": 100, "qps": 40000}]
  },
  "antagonist": {"threads": 4, "placement": "cfs", "nice": 19, "chunk_us": 500}
})json"},

    // Fleet reality: load swings through a trough-peak-trough day. The policy
    // must ride the swing without parking requests.
    {"diurnal_load_swing", R"json({
  "name": "diurnal_load_swing",
  "description": "Trough-peak-trough offered load under a centralized preemptive policy",
  "seed": 42,
  "warmup_ms": 10, "measure_ms": 100, "drain_ms": 20,
  "topology": {"preset": "custom", "sockets": 1, "cores_per_socket": 4, "smt": 2, "cores_per_ccx": 4},
  "policy": {"kind": "shinjuku", "timeslice_us": 30},
  "enclave": {"cpu_first": 1},
  "workload": {
    "kind": "request_service", "num_workers": 40,
    "service": {"model": "exponential", "mean_us": 25},
    "phases": [
      {"duration_ms": 35, "qps": 8000},
      {"duration_ms": 40, "qps": 60000},
      {"duration_ms": 35, "qps": 8000}
    ]
  }
})json"},

    // Offered load exceeds capacity, then drops: the backlog must drain and
    // the system return to steady state (no stuck queues, no lost requests).
    {"overload_recovery", R"json({
  "name": "overload_recovery",
  "description": "Transient overload then recovery; backlog must drain cleanly",
  "seed": 42,
  "warmup_ms": 5, "measure_ms": 90, "drain_ms": 40,
  "topology": {"preset": "custom", "sockets": 1, "cores_per_socket": 2, "smt": 2, "cores_per_ccx": 2},
  "policy": {"kind": "centralized_fifo", "timeslice_us": 50},
  "enclave": {"cpu_first": 1},
  "workload": {
    "kind": "request_service", "num_workers": 30,
    "service": {"model": "fixed", "fixed_us": 100},
    "phases": [
      {"duration_ms": 30, "qps": 60000},
      {"duration_ms": 65, "qps": 5000}
    ]
  }
})json"},

    // Tail-at-scale: every logical request fans out to 8 sub-requests and
    // completes at the max — the workload shape that makes p99 of the parts
    // the median of the whole.
    {"tail_at_scale_fanout", R"json({
  "name": "tail_at_scale_fanout",
  "description": "Fan-out of 8 per request; group latency is the slowest leg",
  "seed": 42,
  "warmup_ms": 20, "measure_ms": 60, "drain_ms": 20,
  "topology": {"preset": "custom", "sockets": 1, "cores_per_socket": 4, "smt": 2, "cores_per_ccx": 4},
  "policy": {"kind": "shinjuku", "timeslice_us": 30},
  "enclave": {"cpu_first": 1},
  "workload": {
    "kind": "request_service", "num_workers": 60, "fanout": 8,
    "service": {"model": "exponential", "mean_us": 20},
    "phases": [{"duration_ms": 100, "qps": 5000}]
  }
})json"},

    // High-priority serving sharing an O(1) multilevel queue with low-priority
    // enclave antagonists; the expired-array swap must keep the antagonists
    // alive while the timeslice map keeps the servers responsive.
    {"priority_inversion_storm", R"json({
  "name": "priority_inversion_storm",
  "description": "O1 multilevel queue: high-prio servers vs low-prio enclave hogs",
  "seed": 42,
  "warmup_ms": 20, "measure_ms": 60, "drain_ms": 20,
  "topology": {"preset": "custom", "sockets": 1, "cores_per_socket": 4, "smt": 2, "cores_per_ccx": 4},
  "policy": {"kind": "o1", "num_priorities": 8, "base_timeslice_ms": 6, "min_timeslice_ms": 1,
             "worker_priority": 0, "antagonist_priority": 7},
  "enclave": {"cpu_first": 1},
  "workload": {
    "kind": "request_service", "num_workers": 30,
    "service": {"model": "bimodal", "short_us": 20, "long_us": 2000, "p_long": 0.01},
    "phases": [{"duration_ms": 100, "qps": 15000}]
  },
  "antagonist": {"threads": 6, "placement": "enclave", "chunk_us": 500},
  "invariants": {"enabled": true, "period_us": 250, "ghost_starvation_bound_ms": 40}
})json"},

    // §3.4 robustness: the agent crashes mid-spike; the watchdog destroys the
    // enclave and every thread falls back to CFS, which finishes the load.
    {"agent_crash_midspike_fallback_cfs", R"json({
  "name": "agent_crash_midspike_fallback_cfs",
  "description": "Agent crash under load; watchdog tears down; CFS fallback completes",
  "seed": 42,
  "warmup_ms": 10, "measure_ms": 80, "drain_ms": 30,
  "topology": {"preset": "custom", "sockets": 1, "cores_per_socket": 4, "smt": 2, "cores_per_ccx": 4},
  "policy": {"kind": "per_cpu_fifo"},
  "enclave": {"cpu_first": 1, "watchdog_timeout_ms": 5, "watchdog_period_ms": 2},
  "workload": {
    "kind": "request_service", "num_workers": 30,
    "service": {"model": "exponential", "mean_us": 50},
    "phases": [{"duration_ms": 110, "qps": 20000}]
  },
  "faults": {"plan": [{"at_ms": 40, "kind": "agent_crash"}]}
})json"},

    // §4.5 in miniature: VMs under the core-scheduling policy; the golden
    // pins zero cross-VM sibling co-residencies (the security property).
    {"vm_colocation", R"json({
  "name": "vm_colocation",
  "description": "VMs under synchronized core scheduling; zero cross-VM SMT sharing",
  "seed": 42,
  "warmup_ms": 0, "measure_ms": 150, "drain_ms": 50,
  "topology": {"preset": "custom", "sockets": 1, "cores_per_socket": 4, "smt": 2, "cores_per_ccx": 4},
  "policy": {"kind": "vm_core_sched", "vm_slice_ms": 6},
  "enclave": {"cpu_first": 1},
  "workload": {"kind": "vm", "num_vms": 4, "vcpus_per_vm": 2, "work_per_vcpu_ms": 15}
})json"},

    // §3.3 under stress: transaction validation forced stale 20% of the time
    // inside the fault window; agents must retry through the storm.
    {"estale_storm", R"json({
  "name": "estale_storm",
  "description": "Forced-ESTALE storm; per-CPU agents retry through it",
  "seed": 42,
  "warmup_ms": 10, "measure_ms": 80, "drain_ms": 30,
  "topology": {"preset": "custom", "sockets": 1, "cores_per_socket": 4, "smt": 2, "cores_per_ccx": 4},
  "policy": {"kind": "per_cpu_fifo"},
  "enclave": {"cpu_first": 1},
  "workload": {
    "kind": "request_service", "num_workers": 30,
    "service": {"model": "exponential", "mean_us": 40},
    "phases": [{"duration_ms": 110, "qps": 15000}]
  },
  "faults": {"window_start_ms": 20, "window_end_ms": 70, "estale_probability": 0.2}
})json"},

    // Flaky interconnect: IPIs delayed or dropped (with redelivery);
    // scheduling latencies stretch but nothing is lost.
    {"ipi_flaky_fabric", R"json({
  "name": "ipi_flaky_fabric",
  "description": "Delayed/dropped IPIs with redelivery under a centralized policy",
  "seed": 42,
  "warmup_ms": 10, "measure_ms": 80, "drain_ms": 30,
  "topology": {"preset": "custom", "sockets": 1, "cores_per_socket": 4, "smt": 2, "cores_per_ccx": 4},
  "policy": {"kind": "shinjuku", "timeslice_us": 30},
  "enclave": {"cpu_first": 1},
  "workload": {
    "kind": "request_service", "num_workers": 30,
    "service": {"model": "exponential", "mean_us": 30},
    "phases": [{"duration_ms": 110, "qps": 15000}]
  },
  "faults": {"window_start_ms": 20, "window_end_ms": 80,
             "ipi_delay_probability": 0.3, "ipi_drop_probability": 0.1}
})json"},

    // Queue pressure: a fraction of message posts dropped as if queues were
    // full; the enclave's overflow resync path has to keep the agent's view
    // consistent (invariants stay on).
    {"queue_overflow_pressure", R"json({
  "name": "queue_overflow_pressure",
  "description": "Message posts dropped under simulated queue overflow pressure",
  "seed": 42,
  "warmup_ms": 10, "measure_ms": 80, "drain_ms": 30,
  "topology": {"preset": "custom", "sockets": 1, "cores_per_socket": 2, "smt": 2, "cores_per_ccx": 2},
  "policy": {"kind": "per_cpu_fifo"},
  "enclave": {"cpu_first": 1},
  "workload": {
    "kind": "request_service", "num_workers": 20,
    "service": {"model": "exponential", "mean_us": 50},
    "phases": [{"duration_ms": 110, "qps": 8000}]
  },
  "faults": {"window_start_ms": 20, "window_end_ms": 70, "msg_drop_probability": 0.02}
})json"},

    // ---- Fleet scenarios: N machines behind a sharded front end ------------

    // Fleet overload/brownout: the spike exceeds aggregate capacity, the
    // balancer browns out (sheds) once every machine carries its outstanding
    // cap, and the fleet recovers when the spike passes. Every root request
    // fans out one leaf RPC to the next machine over the network.
    {"fleet_overload_brownout", R"json({
  "name": "fleet_overload_brownout",
  "description": "8-machine fleet; spike past capacity; balancer sheds, then recovers",
  "seed": 42,
  "warmup_ms": 10, "measure_ms": 70, "drain_ms": 20,
  "topology": {"preset": "custom", "sockets": 1, "cores_per_socket": 2, "smt": 2, "cores_per_ccx": 2},
  "policy": {"kind": "shinjuku", "timeslice_us": 30},
  "enclave": {"cpu_first": 1},
  "workload": {
    "kind": "request_service", "num_workers": 24,
    "service": {"model": "exponential", "mean_us": 100},
    "phases": [
      {"duration_ms": 30, "qps": 60000},
      {"duration_ms": 40, "qps": 200000},
      {"duration_ms": 30, "qps": 60000}
    ]
  },
  "fleet": {
    "machines": 8, "sessions": 512, "rpc_fanout": 2,
    "balancer": {"policy": "least_loaded", "shed_outstanding": 48},
    "network": {"latency_us": 50, "bandwidth_gbps": 10,
                "request_bytes": 1500, "response_bytes": 4096}
  }
})json"},

    // Machine failure mid-spike: machine 3's agent crashes, its watchdog
    // destroys the enclave and the workers fall back to CFS while the
    // balancer drains it at the front door (it still serves leaf RPCs from
    // its neighbor — interior traffic bypasses the front end). A short link
    // partition on machine 6 parks in-flight messages until the heal.
    {"fleet_machine_failure_drain", R"json({
  "name": "fleet_machine_failure_drain",
  "description": "Agent crash on one machine: CFS fallback + balancer drain; brief partition elsewhere",
  "seed": 42,
  "warmup_ms": 10, "measure_ms": 70, "drain_ms": 30,
  "topology": {"preset": "custom", "sockets": 1, "cores_per_socket": 2, "smt": 2, "cores_per_ccx": 2},
  "policy": {"kind": "per_cpu_fifo"},
  "enclave": {"cpu_first": 1, "watchdog_timeout_ms": 5, "watchdog_period_ms": 2},
  "workload": {
    "kind": "request_service", "num_workers": 24,
    "service": {"model": "exponential", "mean_us": 80},
    "phases": [{"duration_ms": 110, "qps": 80000}]
  },
  "fleet": {
    "machines": 8, "sessions": 256, "rpc_fanout": 2,
    "balancer": {"policy": "round_robin"},
    "network": {"latency_us": 50, "bandwidth_gbps": 10},
    "plan": [
      {"at_ms": 40, "kind": "agent_crash", "machine": 3},
      {"at_ms": 40, "kind": "lb_drain", "machine": 3},
      {"at_ms": 70, "kind": "lb_undrain", "machine": 3},
      {"at_ms": 55, "kind": "link_down", "machine": 6},
      {"at_ms": 60, "kind": "link_up", "machine": 6}
    ]
  }
})json"},

    // Heterogeneous fleet under consistent hashing: machine 0 is configured
    // weaker (two enclave CPUs: the global agent plus one worker CPU, versus
    // three elsewhere) via a per-machine override; the golden pins the
    // session->machine sharding (lb_max_share) and the weak machine's
    // throughput alongside the rest.
    {"fleet_hetero_consistent_hash", R"json({
  "name": "fleet_hetero_consistent_hash",
  "description": "Consistent-hash sharding over a heterogeneous 4-machine fleet",
  "seed": 42,
  "warmup_ms": 10, "measure_ms": 60, "drain_ms": 20,
  "topology": {"preset": "custom", "sockets": 1, "cores_per_socket": 2, "smt": 2, "cores_per_ccx": 2},
  "policy": {"kind": "shinjuku", "timeslice_us": 30},
  "enclave": {"cpu_first": 1},
  "workload": {
    "kind": "request_service", "num_workers": 16,
    "service": {"model": "bimodal", "short_us": 20, "long_us": 2000, "p_long": 0.01},
    "phases": [{"duration_ms": 90, "qps": 40000}]
  },
  "fleet": {
    "machines": 4, "sessions": 1024, "rpc_fanout": 1,
    "balancer": {"policy": "consistent_hash", "virtual_nodes": 32},
    "network": {"latency_us": 80, "bandwidth_gbps": 10},
    "overrides": [
      {"machine": 0, "enclave": {"cpu_first": 1, "cpu_count": 2}}
    ]
  }
})json"},

    // The O1 satellite's own scenario: mixed priorities, diurnal-ish load,
    // pinning array-swap behavior end to end.
    {"o1_multilevel_mix", R"json({
  "name": "o1_multilevel_mix",
  "description": "O1 multilevel queue under a two-phase load swing",
  "seed": 42,
  "warmup_ms": 10, "measure_ms": 90, "drain_ms": 20,
  "topology": {"preset": "custom", "sockets": 1, "cores_per_socket": 4, "smt": 2, "cores_per_ccx": 4},
  "policy": {"kind": "o1", "num_priorities": 16, "base_timeslice_ms": 4, "min_timeslice_ms": 1,
             "worker_priority": 2, "antagonist_priority": 12},
  "enclave": {"cpu_first": 1},
  "workload": {
    "kind": "request_service", "num_workers": 30,
    "service": {"model": "bimodal", "short_us": 15, "long_us": 1500, "p_long": 0.02},
    "phases": [
      {"duration_ms": 50, "qps": 10000},
      {"duration_ms": 50, "qps": 30000}
    ]
  },
  "antagonist": {"threads": 4, "placement": "enclave", "chunk_us": 300},
  "invariants": {"enabled": true, "period_us": 250, "ghost_starvation_bound_ms": 40}
})json"},

    // Live A/B canary under load: 30% of threads run the canary lane (LIFO
    // admission), the canary is promoted to 100% mid-measure and rolled back
    // before drain — two SwapPolicy hot-swaps (§3.4) with per-lane counters
    // pinned exactly.
    {"ab_hot_swap", R"json({
  "name": "ab_hot_swap",
  "description": "A/B canary split with mid-run promote and rollback hot-swaps",
  "seed": 42,
  "warmup_ms": 10, "measure_ms": 60, "drain_ms": 20,
  "topology": {"preset": "custom", "sockets": 1, "cores_per_socket": 4, "smt": 2, "cores_per_ccx": 4},
  "policy": {"kind": "ab_test"},
  "enclave": {"cpu_first": 1},
  "workload": {
    "kind": "request_service", "num_workers": 30,
    "service": {"model": "bimodal", "short_us": 15, "long_us": 1000, "p_long": 0.01},
    "phases": [{"duration_ms": 90, "qps": 20000}]
  },
  "ab_test": {
    "canary": {"percent": 30, "lifo": true},
    "promote_at_ms": 35,
    "rollback_at_ms": 60
  },
  "invariants": {"enabled": true, "period_us": 250, "ghost_starvation_bound_ms": 40}
})json"},

    // Predictive Shinjuku under an adversarial bimodal mix: 10% of requests
    // are longs, so the per-tid predictor mispredicts constantly at first
    // and every long classified short must be caught by the backstop and
    // demoted to the long lane. The golden pins the demotion/preemption
    // counters alongside the latency envelopes — a regression in the
    // backstop path shows up as a counter shift even when tails survive.
    {"predictive_mispredict_storm", R"json({
  "name": "predictive_mispredict_storm",
  "description": "Predictive Shinjuku vs adversarial bimodal: backstop catches mispredicted longs",
  "seed": 42,
  "warmup_ms": 10, "measure_ms": 80, "drain_ms": 30,
  "topology": {"preset": "custom", "sockets": 1, "cores_per_socket": 4, "smt": 2, "cores_per_ccx": 4},
  "policy": {"kind": "predictive_shinjuku", "timeslice_us": 30,
             "long_threshold_us": 100, "backstop_multiplier": 4},
  "enclave": {"cpu_first": 1},
  "workload": {
    "kind": "request_service", "num_workers": 40,
    "service": {"model": "bimodal", "short_us": 10, "long_us": 1000, "p_long": 0.1},
    "phases": [{"duration_ms": 100, "qps": 20000}]
  }
})json"},

    // Policy-fuzzer smoke: a small deterministic sweep of generated hostile
    // policies through the fuzz harness, pinning "the mechanism layer
    // survives every one of them" as a golden (CI's wide sweeps run through
    // bench/policy_fuzz).
    {"fuzz_smoke", R"json({
  "name": "fuzz_smoke",
  "description": "Hostile-policy fuzz sweep: mechanism survives every generated policy",
  "seed": 42,
  "warmup_ms": 1, "measure_ms": 1, "drain_ms": 0,
  "fuzz": {"cases": 25, "base_seed": 1, "schedules_per_case": 1}
})json"},
};

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

std::vector<std::string> BuiltinScenarioNames() {
  std::vector<std::string> names;
  for (const Builtin& b : kBuiltins) {
    names.push_back(b.name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

const char* BuiltinScenarioJson(const std::string& name) {
  for (const Builtin& b : kBuiltins) {
    if (name == b.name) {
      return b.json;
    }
  }
  return nullptr;
}

ScenarioSpec GetBuiltinScenario(const std::string& name) {
  const char* json = BuiltinScenarioJson(name);
  CHECK(json != nullptr) << "unknown built-in scenario: " << name;
  std::string error;
  std::optional<ScenarioSpec> spec = ScenarioSpec::Parse(json, &error);
  CHECK(spec.has_value()) << "built-in scenario " << name << ": " << error;
  return *std::move(spec);
}

ScenarioSpec LoadScenarioOrExit(const std::string& name_or_path) {
  if (BuiltinScenarioJson(name_or_path) != nullptr) {
    return GetBuiltinScenario(name_or_path);
  }
  if (FileExists(name_or_path)) {
    return ScenarioSpec::LoadFileOrExit(name_or_path);
  }
  std::fprintf(stderr,
               "scenario: \"%s\" is neither a built-in scenario nor a file.\n"
               "Built-in scenarios:\n",
               name_or_path.c_str());
  for (const Builtin& b : kBuiltins) {
    std::fprintf(stderr, "  %s\n", b.name);
  }
  std::exit(2);
}

}  // namespace scenario
}  // namespace gs
