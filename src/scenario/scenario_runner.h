// Executes a ScenarioSpec: spec -> fleet::Cluster -> ScenarioResult, plus the
// golden-expectation rendering/checking used by the regression suite. The
// cluster is the only execution engine: a spec without a `fleet` block is the
// degenerate one-node cluster (the historical single-machine run).
//
// A ScenarioResult splits its observations the way the golden files do:
//
//  * `exact` — integer facts the simulation reproduces bit-for-bit for a
//    fixed seed (request counts, fault injections, invariant verdicts,
//    enclave teardown). Goldens compare these exactly; any drift is a
//    behavior change someone must sign off on via --update-goldens.
//  * `envelopes` — latency/throughput style doubles. Goldens store a
//    [lo, hi] tolerance band around the recorded value, so refactors that
//    shift performance a little do not churn goldens, while regressions
//    that move a p99 out of band fail loudly.
//
// Rendering is deterministic (JsonWriter, sorted std::map iteration), so
// `--update-goldens` twice in a row — or under different --jobs — produces
// byte-identical files; a test pins that property.
#ifndef GHOST_SIM_SRC_SCENARIO_SCENARIO_RUNNER_H_
#define GHOST_SIM_SRC_SCENARIO_SCENARIO_RUNNER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/scenario/scenario.h"
#include "src/stats/stats.h"

namespace gs {
namespace scenario {

struct ScenarioResult {
  std::string name;
  uint64_t seed = 0;
  // Deterministic integer observations, keyed by metric name.
  std::map<std::string, int64_t> exact;
  // Toleranced performance observations, keyed by metric name.
  std::map<std::string, double> envelopes;
  // Invariant-checker violation messages (empty on a clean run); the count
  // and ok-bit are mirrored into `exact` for the golden comparison.
  std::vector<std::string> violations;
};

// Runs the scenario to completion on a fleet::Cluster. A spec without a
// `fleet` block builds the degenerate one-node cluster — one SimulationContext
// run locally, byte-for-byte the historical single-machine path. `stats`,
// when non-null, is borrowed as the run's StatsRegistry (the harness passes
// its per-run registry); nullptr keeps the zero-overhead path. In fleet mode
// each machine owns a private registry, merged into `stats` in machine order.
// `jobs` bounds intra-epoch machine parallelism in fleet mode; results are
// byte-identical for every value.
ScenarioResult RunScenario(const ScenarioSpec& spec, StatsRegistry* stats = nullptr,
                           int jobs = 1);

// Renders the golden-expectations document for a result (trailing newline
// included — goldens are files).
std::string RenderGolden(const ScenarioResult& result);

// Checks `result` against a golden document previously produced by
// RenderGolden. Exact fields must match exactly and have identical key sets;
// envelope values must lie inside the golden's [lo, hi]. On failure returns
// false and appends one line per mismatch to `*failures`.
bool CheckGolden(const ScenarioResult& result, const std::string& golden_json,
                 std::vector<std::string>* failures);

// The [lo, hi] band RenderGolden stores for metric `name` at `value`
// (relative tolerance plus an absolute slack floor, per metric family).
void EnvelopeBand(const std::string& name, double value, double* lo, double* hi);

}  // namespace scenario
}  // namespace gs

#endif  // GHOST_SIM_SRC_SCENARIO_SCENARIO_RUNNER_H_
