#include "src/scenario/scenario.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace gs {
namespace scenario {
namespace {

// Strict object reader: every getter marks its key consumed; Finish() rejects
// anything left over, so typos surface as `unknown key "section.key"` instead
// of silently running a default configuration.
class ObjectReader {
 public:
  ObjectReader(const JsonValue& value, std::string path, std::string* error)
      : value_(value), path_(std::move(path)), error_(error) {
    if (!value_.is_object() && error_->empty()) {
      *error_ = Quote(path_) + " must be an object";
    }
  }

  bool ok() const { return error_->empty(); }
  bool Has(const char* key) const { return value_.object.count(key) > 0; }

  void String(const char* key, std::string* out) {
    const JsonValue* v = Take(key);
    if (v == nullptr) {
      return;
    }
    if (!v->is_string()) {
      Fail(Quote(Path(key)) + " must be a string");
      return;
    }
    *out = v->string;
  }

  void Double(const char* key, double* out) {
    const JsonValue* v = Take(key);
    if (v == nullptr) {
      return;
    }
    if (!v->is_number()) {
      Fail(Quote(Path(key)) + " must be a number");
      return;
    }
    *out = v->number;
  }

  void Int(const char* key, int* out) {
    double d = 0;
    const size_t before = consumed_.size();
    Double(key, &d);
    if (!ok() || consumed_.size() == before) {
      return;  // error or key absent
    }
    *out = static_cast<int>(d);
  }

  void UInt64(const char* key, uint64_t* out) {
    double d = 0;
    const size_t before = consumed_.size();
    Double(key, &d);
    if (!ok() || consumed_.size() == before) {
      return;
    }
    *out = static_cast<uint64_t>(d);
  }

  void Bool(const char* key, bool* out) {
    const JsonValue* v = Take(key);
    if (v == nullptr) {
      return;
    }
    if (v->type != JsonValue::Type::kBool) {
      Fail(Quote(Path(key)) + " must be a boolean");
      return;
    }
    *out = v->boolean;
  }

  // Nested object/array member; nullptr when absent (defaults apply).
  const JsonValue* Section(const char* key) { return Take(key); }

  std::string Path(const char* key) const {
    return path_.empty() ? key : path_ + "." + key;
  }

  void Require(const char* key) {
    if (ok() && !Has(key)) {
      Fail("missing required key " + Quote(Path(key)));
    }
  }

  // Unknown-key check; call after all getters.
  void Finish() {
    if (!ok()) {
      return;
    }
    for (const auto& [key, unused] : value_.object) {
      bool known = false;
      for (const std::string& c : consumed_) {
        if (c == key) {
          known = true;
          break;
        }
      }
      if (!known) {
        Fail("unknown key " + Quote(Path(key.c_str())));
        return;
      }
    }
  }

  void Fail(const std::string& message) {
    if (error_->empty()) {
      *error_ = message;
    }
  }

  static std::string Quote(const std::string& s) { return "\"" + s + "\""; }

 private:
  const JsonValue* Take(const char* key) {
    if (!ok()) {
      return nullptr;
    }
    const JsonValue* v = value_.Find(key);
    if (v != nullptr) {
      consumed_.push_back(key);
    }
    return v;
  }

  const JsonValue& value_;
  std::string path_;
  std::string* error_;
  std::vector<std::string> consumed_;
};

bool OneOf(const std::string& value, std::initializer_list<const char*> allowed) {
  for (const char* a : allowed) {
    if (value == a) {
      return true;
    }
  }
  return false;
}

std::string BadEnum(const std::string& path, const std::string& value,
                    std::initializer_list<const char*> allowed) {
  std::string msg = ObjectReader::Quote(path) + ": unknown value " +
                    ObjectReader::Quote(value) + " (expected one of";
  for (const char* a : allowed) {
    msg += " ";
    msg += a;
  }
  msg += ")";
  return msg;
}

void ParseTopology(const JsonValue& v, TopologySpec* out, std::string* error) {
  ObjectReader r(v, "topology", error);
  r.String("preset", &out->preset);
  static constexpr std::initializer_list<const char*> kPresets = {
      "custom", "e5_24", "skylake112", "haswell72", "rome256"};
  if (r.ok() && !OneOf(out->preset, kPresets)) {
    r.Fail(BadEnum("topology.preset", out->preset, kPresets));
  }
  if (r.ok() && out->preset != "custom") {
    for (const char* dim : {"sockets", "cores_per_socket", "smt", "cores_per_ccx"}) {
      if (r.Has(dim)) {
        r.Fail(ObjectReader::Quote(std::string("topology.") + dim) +
               " is only valid with preset \"custom\"");
      }
    }
  }
  r.Int("sockets", &out->sockets);
  r.Int("cores_per_socket", &out->cores_per_socket);
  r.Int("smt", &out->smt);
  r.Int("cores_per_ccx", &out->cores_per_ccx);
  if (r.ok() && out->preset == "custom" &&
      (out->sockets < 1 || out->cores_per_socket < 1 || out->smt < 1)) {
    r.Fail("\"topology\": sockets, cores_per_socket and smt must be >= 1");
  }
  r.Finish();
}

// Section parsers take the section's full path (e.g. "policy" or
// "fleet.overrides[2].policy") so error messages stay exact wherever the
// section appears.
void ParsePolicy(const JsonValue& v, const std::string& path, PolicySpec* out,
                 std::string* error) {
  ObjectReader r(v, path, error);
  r.String("kind", &out->kind);
  static constexpr std::initializer_list<const char*> kKinds = {
      "centralized_fifo",    "shinjuku",          "shinjuku_shenango",
      "snap",                "per_cpu_fifo",      "o1",
      "search",              "predictive_shinjuku", "predictive_search",
      "vm_core_sched",       "ab_test",           "cfs"};
  if (r.ok() && !OneOf(out->kind, kKinds)) {
    r.Fail(BadEnum(r.Path("kind"), out->kind, kKinds));
  }
  r.Int("global_cpu", &out->global_cpu);
  r.Double("timeslice_us", &out->timeslice_us);
  r.Double("probe_interval_us", &out->probe_interval_us);
  r.Double("long_threshold_us", &out->long_threshold_us);
  r.Int("backstop_multiplier", &out->backstop_multiplier);
  r.Int("num_priorities", &out->num_priorities);
  r.Double("base_timeslice_ms", &out->base_timeslice_ms);
  r.Double("min_timeslice_ms", &out->min_timeslice_ms);
  r.Int("worker_priority", &out->worker_priority);
  r.Int("antagonist_priority", &out->antagonist_priority);
  r.Double("vm_slice_ms", &out->vm_slice_ms);
  if (r.ok() && (out->num_priorities < 1 || out->num_priorities > 64)) {
    r.Fail(ObjectReader::Quote(r.Path("num_priorities")) + " must be in [1, 64]");
  }
  if (r.ok() && out->min_timeslice_ms > out->base_timeslice_ms) {
    r.Fail(ObjectReader::Quote(r.Path("min_timeslice_ms")) + " must be <= " +
           ObjectReader::Quote(r.Path("base_timeslice_ms")));
  }
  if (r.ok() && out->probe_interval_us < 0) {
    r.Fail(ObjectReader::Quote(r.Path("probe_interval_us")) + " must be >= 0");
  }
  if (r.ok() && out->long_threshold_us <= 0) {
    r.Fail(ObjectReader::Quote(r.Path("long_threshold_us")) + " must be > 0");
  }
  if (r.ok() && out->backstop_multiplier < 1) {
    r.Fail(ObjectReader::Quote(r.Path("backstop_multiplier")) + " must be >= 1");
  }
  r.Finish();
}

void ParseService(const JsonValue& v, const std::string& path, ServiceSpec* out,
                  std::string* error) {
  ObjectReader r(v, path, error);
  r.String("model", &out->model);
  static constexpr std::initializer_list<const char*> kModels = {"fixed", "bimodal",
                                                                 "exponential"};
  if (r.ok() && !OneOf(out->model, kModels)) {
    r.Fail(BadEnum(r.Path("model"), out->model, kModels));
  }
  r.Double("fixed_us", &out->fixed_us);
  r.Double("short_us", &out->short_us);
  r.Double("long_us", &out->long_us);
  r.Double("p_long", &out->p_long);
  r.Double("mean_us", &out->mean_us);
  if (r.ok() && (out->p_long < 0 || out->p_long > 1)) {
    r.Fail(ObjectReader::Quote(r.Path("p_long")) + " must be in [0, 1]");
  }
  r.Finish();
}

void ParsePhases(const JsonValue& v, const std::string& phases_path,
                 std::vector<LoadPhase>* out, std::string* error) {
  if (!v.is_array()) {
    if (error->empty()) {
      *error = ObjectReader::Quote(phases_path) + " must be an array";
    }
    return;
  }
  out->clear();
  for (size_t i = 0; i < v.array.size(); ++i) {
    const std::string path = phases_path + "[" + std::to_string(i) + "]";
    ObjectReader r(v.array[i], path, error);
    LoadPhase phase;
    r.Require("duration_ms");
    r.Double("duration_ms", &phase.duration_ms);
    r.Double("qps", &phase.qps);
    if (r.ok() && phase.duration_ms <= 0) {
      r.Fail(ObjectReader::Quote(path + ".duration_ms") + " must be > 0");
    }
    if (r.ok() && phase.qps < 0) {
      r.Fail(ObjectReader::Quote(path + ".qps") + " must be >= 0");
    }
    r.Finish();
    if (!error->empty()) {
      return;
    }
    out->push_back(phase);
  }
}

void ParseWorkload(const JsonValue& v, const std::string& path, WorkloadSpec* out,
                   std::string* error) {
  ObjectReader r(v, path, error);
  r.String("kind", &out->kind);
  static constexpr std::initializer_list<const char*> kKinds = {"request_service", "vm"};
  if (r.ok() && !OneOf(out->kind, kKinds)) {
    r.Fail(BadEnum(r.Path("kind"), out->kind, kKinds));
  }
  r.Int("num_workers", &out->num_workers);
  r.Int("fanout", &out->fanout);
  if (const JsonValue* service = r.Section("service")) {
    ParseService(*service, r.Path("service"), &out->service, error);
  }
  if (const JsonValue* phases = r.Section("phases")) {
    ParsePhases(*phases, r.Path("phases"), &out->phases, error);
  }
  r.Int("num_vms", &out->num_vms);
  r.Int("vcpus_per_vm", &out->vcpus_per_vm);
  r.Double("work_per_vcpu_ms", &out->work_per_vcpu_ms);
  if (r.ok() && out->num_workers < 1) {
    r.Fail(ObjectReader::Quote(r.Path("num_workers")) + " must be >= 1");
  }
  if (r.ok() && out->fanout < 1) {
    r.Fail(ObjectReader::Quote(r.Path("fanout")) + " must be >= 1");
  }
  if (r.ok() && out->kind == "vm" && (out->num_vms < 1 || out->vcpus_per_vm < 1)) {
    r.Fail(ObjectReader::Quote(path) + ": num_vms and vcpus_per_vm must be >= 1");
  }
  r.Finish();
}

void ParseAntagonist(const JsonValue& v, const std::string& path, AntagonistSpec* out,
                     std::string* error) {
  ObjectReader r(v, path, error);
  r.Int("threads", &out->threads);
  r.String("placement", &out->placement);
  static constexpr std::initializer_list<const char*> kPlacements = {"cfs", "enclave"};
  if (r.ok() && !OneOf(out->placement, kPlacements)) {
    r.Fail(BadEnum(r.Path("placement"), out->placement, kPlacements));
  }
  r.Int("nice", &out->nice);
  r.Double("chunk_us", &out->chunk_us);
  if (r.ok() && out->threads < 0) {
    r.Fail(ObjectReader::Quote(r.Path("threads")) + " must be >= 0");
  }
  if (r.ok() && (out->nice < -20 || out->nice > 19)) {
    r.Fail(ObjectReader::Quote(r.Path("nice")) + " must be in [-20, 19]");
  }
  r.Finish();
}

void ParseFaults(const JsonValue& v, const std::string& section_path, FaultsSpec* out,
                 std::string* error) {
  ObjectReader r(v, section_path, error);
  r.Double("window_start_ms", &out->window_start_ms);
  r.Double("window_end_ms", &out->window_end_ms);
  r.Double("ipi_delay_probability", &out->ipi_delay_probability);
  r.Double("ipi_drop_probability", &out->ipi_drop_probability);
  r.Double("msg_drop_probability", &out->msg_drop_probability);
  r.Double("estale_probability", &out->estale_probability);
  for (const char* p : {"ipi_delay_probability", "ipi_drop_probability",
                        "msg_drop_probability", "estale_probability"}) {
    const JsonValue* pv = v.Find(p);
    if (r.ok() && pv != nullptr && pv->is_number() &&
        (pv->number < 0 || pv->number > 1)) {
      r.Fail(ObjectReader::Quote(r.Path(p)) + " must be in [0, 1]");
    }
  }
  if (const JsonValue* plan = r.Section("plan")) {
    if (!plan->is_array()) {
      r.Fail(ObjectReader::Quote(r.Path("plan")) + " must be an array");
    } else {
      out->plan.clear();
      for (size_t i = 0; i < plan->array.size(); ++i) {
        const std::string path = r.Path("plan") + "[" + std::to_string(i) + "]";
        ObjectReader e(plan->array[i], path, error);
        FaultEventSpec event;
        e.Require("kind");
        e.String("kind", &event.kind);
        static constexpr std::initializer_list<const char*> kKinds = {
            "agent_crash", "agent_stall", "agent_recover", "enclave_destroy"};
        if (e.ok() && !OneOf(event.kind, kKinds)) {
          e.Fail(BadEnum(path + ".kind", event.kind, kKinds));
        }
        e.Double("at_ms", &event.at_ms);
        if (e.ok() && event.at_ms < 0) {
          e.Fail(ObjectReader::Quote(path + ".at_ms") + " must be >= 0");
        }
        e.Finish();
        if (!error->empty()) {
          return;
        }
        out->plan.push_back(event);
      }
    }
  }
  r.Finish();
}

void ParseEnclave(const JsonValue& v, const std::string& path, EnclaveSpec* out,
                  std::string* error) {
  ObjectReader r(v, path, error);
  r.Int("cpu_first", &out->cpu_first);
  r.Int("cpu_count", &out->cpu_count);
  r.Double("watchdog_timeout_ms", &out->watchdog_timeout_ms);
  r.Double("watchdog_period_ms", &out->watchdog_period_ms);
  if (r.ok() && out->cpu_first < 0) {
    r.Fail(ObjectReader::Quote(r.Path("cpu_first")) + " must be >= 0");
  }
  if (r.ok() && out->watchdog_timeout_ms < 0) {
    r.Fail(ObjectReader::Quote(r.Path("watchdog_timeout_ms")) + " must be >= 0");
  }
  r.Finish();
}

void ParseInvariants(const JsonValue& v, InvariantsSpec* out, std::string* error) {
  ObjectReader r(v, "invariants", error);
  r.Bool("enabled", &out->enabled);
  r.Double("period_us", &out->period_us);
  r.Double("ghost_starvation_bound_ms", &out->ghost_starvation_bound_ms);
  if (r.ok() && out->period_us <= 0) {
    r.Fail("\"invariants.period_us\" must be > 0");
  }
  r.Finish();
}

void ParseAbTest(const JsonValue& v, AbTestSpec* out, std::string* error) {
  ObjectReader r(v, "ab_test", error);
  if (const JsonValue* canary = r.Section("canary")) {
    ObjectReader c(*canary, r.Path("canary"), error);
    c.Int("percent", &out->canary.percent);
    c.Bool("lifo", &out->canary.lifo);
    if (c.ok() && (out->canary.percent < 0 || out->canary.percent > 100)) {
      c.Fail(ObjectReader::Quote(c.Path("percent")) + " must be in [0, 100]");
    }
    c.Finish();
  }
  r.Double("promote_at_ms", &out->promote_at_ms);
  r.Double("rollback_at_ms", &out->rollback_at_ms);
  if (r.ok() && out->promote_at_ms >= 0 && out->rollback_at_ms >= 0 &&
      out->rollback_at_ms <= out->promote_at_ms) {
    r.Fail(ObjectReader::Quote(r.Path("rollback_at_ms")) + " must be > " +
           ObjectReader::Quote(r.Path("promote_at_ms")) +
           " when both are scheduled");
  }
  r.Finish();
}

void ParseFuzz(const JsonValue& v, FuzzSpec* out, std::string* error) {
  ObjectReader r(v, "fuzz", error);
  r.Int("cases", &out->cases);
  r.UInt64("base_seed", &out->base_seed);
  r.Int("schedules_per_case", &out->schedules_per_case);
  if (r.ok() && out->cases < 1) {
    r.Fail(ObjectReader::Quote(r.Path("cases")) + " must be >= 1");
  }
  if (r.ok() && out->schedules_per_case < 1) {
    r.Fail(ObjectReader::Quote(r.Path("schedules_per_case")) + " must be >= 1");
  }
  r.Finish();
}

void ParseBalancer(const JsonValue& v, const std::string& path, BalancerSpec* out,
                   std::string* error) {
  ObjectReader r(v, path, error);
  r.String("policy", &out->policy);
  static constexpr std::initializer_list<const char*> kPolicies = {
      "round_robin", "least_loaded", "consistent_hash"};
  if (r.ok() && !OneOf(out->policy, kPolicies)) {
    r.Fail(BadEnum(r.Path("policy"), out->policy, kPolicies));
  }
  r.Int("shed_outstanding", &out->shed_outstanding);
  r.Int("virtual_nodes", &out->virtual_nodes);
  if (r.ok() && out->shed_outstanding < 0) {
    r.Fail(ObjectReader::Quote(r.Path("shed_outstanding")) + " must be >= 0");
  }
  if (r.ok() && (out->virtual_nodes < 1 || out->virtual_nodes > 512)) {
    r.Fail(ObjectReader::Quote(r.Path("virtual_nodes")) + " must be in [1, 512]");
  }
  r.Finish();
}

void ParseNetwork(const JsonValue& v, const std::string& section_path, int machines,
                  NetworkSpec* out, std::string* error) {
  ObjectReader r(v, section_path, error);
  r.Double("latency_us", &out->latency_us);
  r.Double("bandwidth_gbps", &out->bandwidth_gbps);
  r.Double("request_bytes", &out->request_bytes);
  r.Double("response_bytes", &out->response_bytes);
  if (r.ok() && out->latency_us <= 0) {
    r.Fail(ObjectReader::Quote(r.Path("latency_us")) + " must be > 0");
  }
  if (r.ok() && out->bandwidth_gbps <= 0) {
    r.Fail(ObjectReader::Quote(r.Path("bandwidth_gbps")) + " must be > 0");
  }
  if (r.ok() && (out->request_bytes < 0 || out->response_bytes < 0)) {
    r.Fail(ObjectReader::Quote(section_path) +
           ": request_bytes and response_bytes must be >= 0");
  }
  if (const JsonValue* links = r.Section("links")) {
    if (!links->is_array()) {
      r.Fail(ObjectReader::Quote(r.Path("links")) + " must be an array");
    } else {
      out->links.clear();
      for (size_t i = 0; i < links->array.size(); ++i) {
        const std::string path = r.Path("links") + "[" + std::to_string(i) + "]";
        ObjectReader l(links->array[i], path, error);
        LinkSpec link;
        l.Require("from");
        l.Require("to");
        l.Int("from", &link.from);
        l.Int("to", &link.to);
        const bool has_latency = l.Has("latency_us");
        const bool has_bandwidth = l.Has("bandwidth_gbps");
        l.Double("latency_us", &link.latency_us);
        l.Double("bandwidth_gbps", &link.bandwidth_gbps);
        const auto check_node = [&](const char* name, int node) {
          if (l.ok() && (node < -1 || node >= machines)) {
            l.Fail(ObjectReader::Quote(path + "." + name) +
                   " must be a machine index in [0, " + std::to_string(machines) +
                   ") or -1 for the front end");
          }
        };
        check_node("from", link.from);
        check_node("to", link.to);
        if (l.ok() && link.from == link.to) {
          l.Fail(ObjectReader::Quote(path) + ": from and to must differ");
        }
        if (l.ok() && has_latency && link.latency_us <= 0) {
          l.Fail(ObjectReader::Quote(path + ".latency_us") +
                 " must be > 0 (omit it to inherit the network default)");
        }
        if (l.ok() && has_bandwidth && link.bandwidth_gbps <= 0) {
          l.Fail(ObjectReader::Quote(path + ".bandwidth_gbps") +
                 " must be > 0 (omit it to inherit the network default)");
        }
        l.Finish();
        if (!error->empty()) {
          return;
        }
        out->links.push_back(link);
      }
    }
  }
  r.Finish();
}

// Fleet parsing happens after the base sections, so each override can start
// from a copy of the already-merged base section.
void ParseFleet(const JsonValue& v, const ScenarioSpec& base, FleetSpec* out,
                std::string* error) {
  ObjectReader r(v, "fleet", error);
  r.Int("machines", &out->machines);
  r.Int("sessions", &out->sessions);
  r.Int("rpc_fanout", &out->rpc_fanout);
  if (r.ok() && (out->machines < 1 || out->machines > 64)) {
    r.Fail(ObjectReader::Quote(r.Path("machines")) + " must be in [1, 64]");
  }
  if (r.ok() && out->sessions < 1) {
    r.Fail(ObjectReader::Quote(r.Path("sessions")) + " must be >= 1");
  }
  if (r.ok() && (out->rpc_fanout < 1 || out->rpc_fanout > out->machines)) {
    r.Fail(ObjectReader::Quote(r.Path("rpc_fanout")) +
           " must be in [1, fleet.machines]");
  }
  if (const JsonValue* balancer = r.Section("balancer")) {
    ParseBalancer(*balancer, r.Path("balancer"), &out->balancer, error);
  }
  if (const JsonValue* network = r.Section("network")) {
    ParseNetwork(*network, r.Path("network"), out->machines, &out->network, error);
  }
  if (const JsonValue* overrides = r.Section("overrides")) {
    if (!overrides->is_array()) {
      r.Fail(ObjectReader::Quote(r.Path("overrides")) + " must be an array");
    } else {
      out->overrides.clear();
      for (size_t i = 0; i < overrides->array.size(); ++i) {
        const std::string path = r.Path("overrides") + "[" + std::to_string(i) + "]";
        ObjectReader o(overrides->array[i], path, error);
        MachineOverrideSpec override_spec;
        o.Require("machine");
        o.Int("machine", &override_spec.machine);
        if (o.ok() &&
            (override_spec.machine < 0 || override_spec.machine >= out->machines)) {
          o.Fail(ObjectReader::Quote(path + ".machine") + " must be in [0, " +
                 std::to_string(out->machines) + ")");
        }
        if (const JsonValue* s = o.Section("policy")) {
          override_spec.policy = base.policy;
          ParsePolicy(*s, path + ".policy", &*override_spec.policy, error);
        }
        if (const JsonValue* s = o.Section("enclave")) {
          override_spec.enclave = base.enclave;
          ParseEnclave(*s, path + ".enclave", &*override_spec.enclave, error);
        }
        if (const JsonValue* s = o.Section("workload")) {
          override_spec.workload = base.workload;
          ParseWorkload(*s, path + ".workload", &*override_spec.workload, error);
        }
        if (const JsonValue* s = o.Section("antagonist")) {
          override_spec.antagonist = base.antagonist;
          ParseAntagonist(*s, path + ".antagonist", &*override_spec.antagonist, error);
        }
        if (const JsonValue* s = o.Section("faults")) {
          override_spec.faults = base.faults;
          ParseFaults(*s, path + ".faults", &*override_spec.faults, error);
        }
        o.Finish();
        if (!error->empty()) {
          return;
        }
        out->overrides.push_back(std::move(override_spec));
      }
    }
  }
  if (const JsonValue* plan = r.Section("plan")) {
    if (!plan->is_array()) {
      r.Fail(ObjectReader::Quote(r.Path("plan")) + " must be an array");
    } else {
      out->plan.clear();
      for (size_t i = 0; i < plan->array.size(); ++i) {
        const std::string path = r.Path("plan") + "[" + std::to_string(i) + "]";
        ObjectReader e(plan->array[i], path, error);
        FleetEventSpec event;
        e.Require("kind");
        e.String("kind", &event.kind);
        static constexpr std::initializer_list<const char*> kKinds = {
            "agent_crash", "agent_stall", "agent_recover", "enclave_destroy",
            "lb_drain",    "lb_undrain",  "link_down",     "link_up"};
        if (e.ok() && !OneOf(event.kind, kKinds)) {
          e.Fail(BadEnum(path + ".kind", event.kind, kKinds));
        }
        e.Double("at_ms", &event.at_ms);
        e.Int("machine", &event.machine);
        if (e.ok() && event.at_ms < 0) {
          e.Fail(ObjectReader::Quote(path + ".at_ms") + " must be >= 0");
        }
        if (e.ok() && (event.machine < 0 || event.machine >= out->machines)) {
          e.Fail(ObjectReader::Quote(path + ".machine") + " must be in [0, " +
                 std::to_string(out->machines) + ")");
        }
        e.Finish();
        if (!error->empty()) {
          return;
        }
        out->plan.push_back(event);
      }
    }
  }
  r.Finish();
}

}  // namespace

std::optional<ScenarioSpec> ScenarioSpec::Parse(std::string_view text,
                                                std::string* error) {
  std::string local_error;
  if (error == nullptr) {
    error = &local_error;
  }
  error->clear();
  std::string json_error;
  std::optional<JsonValue> doc = JsonValue::Parse(text, &json_error);
  if (!doc.has_value()) {
    *error = json_error.empty() ? "invalid JSON" : json_error;
    return std::nullopt;
  }

  ScenarioSpec spec;
  ObjectReader r(*doc, "", error);
  r.Require("name");
  r.String("name", &spec.name);
  r.String("description", &spec.description);
  r.UInt64("seed", &spec.seed);
  r.Double("warmup_ms", &spec.warmup_ms);
  r.Double("measure_ms", &spec.measure_ms);
  r.Double("drain_ms", &spec.drain_ms);
  if (r.ok() && spec.name.empty()) {
    r.Fail("\"name\" must be a non-empty string");
  }
  if (r.ok() && (spec.warmup_ms < 0 || spec.measure_ms <= 0 || spec.drain_ms < 0)) {
    r.Fail("\"measure_ms\" must be > 0 and \"warmup_ms\"/\"drain_ms\" >= 0");
  }
  if (const JsonValue* v = r.Section("topology")) {
    ParseTopology(*v, &spec.topology, error);
  }
  if (const JsonValue* v = r.Section("policy")) {
    ParsePolicy(*v, "policy", &spec.policy, error);
  }
  if (const JsonValue* v = r.Section("enclave")) {
    ParseEnclave(*v, "enclave", &spec.enclave, error);
  }
  if (const JsonValue* v = r.Section("workload")) {
    ParseWorkload(*v, "workload", &spec.workload, error);
  }
  if (const JsonValue* v = r.Section("antagonist")) {
    ParseAntagonist(*v, "antagonist", &spec.antagonist, error);
  }
  if (const JsonValue* v = r.Section("faults")) {
    ParseFaults(*v, "faults", &spec.faults, error);
  }
  if (const JsonValue* v = r.Section("invariants")) {
    ParseInvariants(*v, &spec.invariants, error);
  }
  if (const JsonValue* v = r.Section("ab_test")) {
    spec.ab_test.emplace();
    ParseAbTest(*v, &*spec.ab_test, error);
    if (r.ok() && spec.policy.kind != "ab_test") {
      r.Fail("\"ab_test\" requires \"policy.kind\" == \"ab_test\"");
    }
  }
  if (const JsonValue* v = r.Section("fuzz")) {
    spec.fuzz.emplace();
    ParseFuzz(*v, &*spec.fuzz, error);
    if (r.ok() && spec.ab_test.has_value()) {
      r.Fail("\"fuzz\" cannot be combined with \"ab_test\"");
    }
  }
  // Fleet comes last: overrides merge over the fully-parsed base sections.
  if (const JsonValue* v = r.Section("fleet")) {
    spec.fleet.emplace();
    ParseFleet(*v, spec, &*spec.fleet, error);
    if (r.ok() && spec.workload.kind != "request_service") {
      r.Fail("\"fleet\" requires \"workload.kind\" == \"request_service\"");
    }
    if (r.ok() && spec.workload.fanout != 1) {
      r.Fail("\"fleet\" requires \"workload.fanout\" == 1 "
             "(use \"fleet.rpc_fanout\" for cross-machine fan-out)");
    }
    if (r.ok() && spec.policy.kind == "vm_core_sched") {
      r.Fail("\"fleet\" cannot be combined with \"policy.kind\" \"vm_core_sched\"");
    }
    if (r.ok() && (spec.ab_test.has_value() || spec.policy.kind == "ab_test")) {
      r.Fail("\"fleet\" cannot be combined with \"ab_test\"");
    }
    if (r.ok() && spec.fuzz.has_value()) {
      r.Fail("\"fleet\" cannot be combined with \"fuzz\"");
    }
    if (r.ok()) {
      for (size_t i = 0; i < spec.fleet->overrides.size(); ++i) {
        const MachineOverrideSpec& o = spec.fleet->overrides[i];
        const std::string path = "fleet.overrides[" + std::to_string(i) + "]";
        if (o.workload.has_value() && (o.workload->kind != "request_service" ||
                                       o.workload->fanout != 1)) {
          r.Fail(ObjectReader::Quote(path + ".workload") +
                 " must keep kind \"request_service\" and fanout 1 in a fleet");
          break;
        }
        if (o.policy.has_value() && o.policy->kind == "vm_core_sched") {
          r.Fail(ObjectReader::Quote(path + ".policy.kind") +
                 " cannot be \"vm_core_sched\" in a fleet");
          break;
        }
      }
    }
  }
  r.Finish();
  if (!error->empty()) {
    return std::nullopt;
  }
  return spec;
}

namespace {

// Section renderers shared between the top-level spec and fleet overrides;
// every parsed field is emitted, so parse -> render -> parse is a fixed point.
void RenderPolicy(JsonWriter& w, const PolicySpec& policy) {
  w.BeginObject();
  w.KV("kind", policy.kind);
  w.KV("global_cpu", policy.global_cpu);
  w.KV("timeslice_us", policy.timeslice_us);
  w.KV("probe_interval_us", policy.probe_interval_us);
  w.KV("long_threshold_us", policy.long_threshold_us);
  w.KV("backstop_multiplier", policy.backstop_multiplier);
  w.KV("num_priorities", policy.num_priorities);
  w.KV("base_timeslice_ms", policy.base_timeslice_ms);
  w.KV("min_timeslice_ms", policy.min_timeslice_ms);
  w.KV("worker_priority", policy.worker_priority);
  w.KV("antagonist_priority", policy.antagonist_priority);
  w.KV("vm_slice_ms", policy.vm_slice_ms);
  w.EndObject();
}

void RenderEnclave(JsonWriter& w, const EnclaveSpec& enclave) {
  w.BeginObject();
  w.KV("cpu_first", enclave.cpu_first);
  w.KV("cpu_count", enclave.cpu_count);
  w.KV("watchdog_timeout_ms", enclave.watchdog_timeout_ms);
  w.KV("watchdog_period_ms", enclave.watchdog_period_ms);
  w.EndObject();
}

void RenderWorkload(JsonWriter& w, const WorkloadSpec& workload) {
  w.BeginObject();
  w.KV("kind", workload.kind);
  w.KV("num_workers", workload.num_workers);
  w.KV("fanout", workload.fanout);
  w.Key("service");
  w.BeginObject();
  w.KV("model", workload.service.model);
  w.KV("fixed_us", workload.service.fixed_us);
  w.KV("short_us", workload.service.short_us);
  w.KV("long_us", workload.service.long_us);
  w.KV("p_long", workload.service.p_long);
  w.KV("mean_us", workload.service.mean_us);
  w.EndObject();
  w.Key("phases");
  w.BeginArray();
  for (const LoadPhase& phase : workload.phases) {
    w.BeginObject();
    w.KV("duration_ms", phase.duration_ms);
    w.KV("qps", phase.qps);
    w.EndObject();
  }
  w.EndArray();
  w.KV("num_vms", workload.num_vms);
  w.KV("vcpus_per_vm", workload.vcpus_per_vm);
  w.KV("work_per_vcpu_ms", workload.work_per_vcpu_ms);
  w.EndObject();
}

void RenderAntagonist(JsonWriter& w, const AntagonistSpec& antagonist) {
  w.BeginObject();
  w.KV("threads", antagonist.threads);
  w.KV("placement", antagonist.placement);
  w.KV("nice", antagonist.nice);
  w.KV("chunk_us", antagonist.chunk_us);
  w.EndObject();
}

void RenderFaults(JsonWriter& w, const FaultsSpec& faults) {
  w.BeginObject();
  w.KV("window_start_ms", faults.window_start_ms);
  w.KV("window_end_ms", faults.window_end_ms);
  w.KV("ipi_delay_probability", faults.ipi_delay_probability);
  w.KV("ipi_drop_probability", faults.ipi_drop_probability);
  w.KV("msg_drop_probability", faults.msg_drop_probability);
  w.KV("estale_probability", faults.estale_probability);
  w.Key("plan");
  w.BeginArray();
  for (const FaultEventSpec& event : faults.plan) {
    w.BeginObject();
    w.KV("at_ms", event.at_ms);
    w.KV("kind", event.kind);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

void RenderFleet(JsonWriter& w, const FleetSpec& fleet) {
  w.BeginObject();
  w.KV("machines", fleet.machines);
  w.KV("sessions", fleet.sessions);
  w.KV("rpc_fanout", fleet.rpc_fanout);
  w.Key("balancer");
  w.BeginObject();
  w.KV("policy", fleet.balancer.policy);
  w.KV("shed_outstanding", fleet.balancer.shed_outstanding);
  w.KV("virtual_nodes", fleet.balancer.virtual_nodes);
  w.EndObject();
  w.Key("network");
  w.BeginObject();
  w.KV("latency_us", fleet.network.latency_us);
  w.KV("bandwidth_gbps", fleet.network.bandwidth_gbps);
  w.KV("request_bytes", fleet.network.request_bytes);
  w.KV("response_bytes", fleet.network.response_bytes);
  w.Key("links");
  w.BeginArray();
  for (const LinkSpec& link : fleet.network.links) {
    w.BeginObject();
    w.KV("from", link.from);
    w.KV("to", link.to);
    // The sentinel -1 means "inherit"; only explicit overrides are rendered,
    // since the parser rejects non-positive explicit values.
    if (link.latency_us >= 0) {
      w.KV("latency_us", link.latency_us);
    }
    if (link.bandwidth_gbps >= 0) {
      w.KV("bandwidth_gbps", link.bandwidth_gbps);
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.Key("overrides");
  w.BeginArray();
  for (const MachineOverrideSpec& o : fleet.overrides) {
    w.BeginObject();
    w.KV("machine", o.machine);
    if (o.policy.has_value()) {
      w.Key("policy");
      RenderPolicy(w, *o.policy);
    }
    if (o.enclave.has_value()) {
      w.Key("enclave");
      RenderEnclave(w, *o.enclave);
    }
    if (o.workload.has_value()) {
      w.Key("workload");
      RenderWorkload(w, *o.workload);
    }
    if (o.antagonist.has_value()) {
      w.Key("antagonist");
      RenderAntagonist(w, *o.antagonist);
    }
    if (o.faults.has_value()) {
      w.Key("faults");
      RenderFaults(w, *o.faults);
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("plan");
  w.BeginArray();
  for (const FleetEventSpec& event : fleet.plan) {
    w.BeginObject();
    w.KV("at_ms", event.at_ms);
    w.KV("kind", event.kind);
    w.KV("machine", event.machine);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

}  // namespace

std::string ScenarioSpec::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.KV("name", name);
  w.KV("description", description);
  w.KV("seed", seed);
  w.KV("warmup_ms", warmup_ms);
  w.KV("measure_ms", measure_ms);
  w.KV("drain_ms", drain_ms);

  w.Key("topology");
  w.BeginObject();
  w.KV("preset", topology.preset);
  if (topology.preset == "custom") {
    w.KV("sockets", topology.sockets);
    w.KV("cores_per_socket", topology.cores_per_socket);
    w.KV("smt", topology.smt);
    w.KV("cores_per_ccx", topology.cores_per_ccx);
  }
  w.EndObject();

  w.Key("policy");
  RenderPolicy(w, policy);
  w.Key("enclave");
  RenderEnclave(w, enclave);
  w.Key("workload");
  RenderWorkload(w, workload);
  w.Key("antagonist");
  RenderAntagonist(w, antagonist);
  w.Key("faults");
  RenderFaults(w, faults);

  w.Key("invariants");
  w.BeginObject();
  w.KV("enabled", invariants.enabled);
  w.KV("period_us", invariants.period_us);
  w.KV("ghost_starvation_bound_ms", invariants.ghost_starvation_bound_ms);
  w.EndObject();

  if (ab_test.has_value()) {
    w.Key("ab_test");
    w.BeginObject();
    w.Key("canary");
    w.BeginObject();
    w.KV("percent", ab_test->canary.percent);
    w.KV("lifo", ab_test->canary.lifo);
    w.EndObject();
    w.KV("promote_at_ms", ab_test->promote_at_ms);
    w.KV("rollback_at_ms", ab_test->rollback_at_ms);
    w.EndObject();
  }

  if (fuzz.has_value()) {
    w.Key("fuzz");
    w.BeginObject();
    w.KV("cases", fuzz->cases);
    w.KV("base_seed", fuzz->base_seed);
    w.KV("schedules_per_case", fuzz->schedules_per_case);
    w.EndObject();
  }

  if (fleet.has_value()) {
    w.Key("fleet");
    RenderFleet(w, *fleet);
  }

  w.EndObject();
  return w.str();
}

ScenarioSpec ScenarioSpec::ParseOrExit(std::string_view text) {
  std::string error;
  std::optional<ScenarioSpec> spec = Parse(text, &error);
  if (!spec.has_value()) {
    std::fprintf(stderr, "scenario: %s\n", error.c_str());
    std::exit(2);
  }
  return *std::move(spec);
}

ScenarioSpec ScenarioSpec::LoadFileOrExit(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "scenario: cannot open \"%s\"\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseOrExit(buffer.str());
}

}  // namespace scenario
}  // namespace gs
