// Declarative scenario descriptions: simulation composition as data.
//
// Following gem5's standard-library idea, a scenario composes everything a
// runnable simulation needs — topology preset x policy x workload mix x load
// shape x fault plan x invariant checking — into one JSON document, so new
// policies and fleet features can be swept against a curated battery of
// production-shaped situations without writing a bench. The harness loads a
// scenario by built-in name or file path (`--scenario=<name|file.json>`),
// and the golden-expectation suite (tests/scenario_runner) pins every
// built-in scenario's deterministic verdicts.
//
// Parsing is strict, in the same spirit as the bench harness's flag
// validation: an unknown key, a missing required field, or a wrong-typed
// value is an error naming the offending key — a typo can never silently
// run the wrong configuration. `ScenarioSpec::ToJson()` re-renders the
// spec so parse -> ToJson -> parse is the identity (round-trip tested).
#ifndef GHOST_SIM_SRC_SCENARIO_SCENARIO_H_
#define GHOST_SIM_SRC_SCENARIO_SCENARIO_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/base/json.h"

namespace gs {
namespace scenario {

// ---- Component specs --------------------------------------------------------

struct TopologySpec {
  // "e5_24", "skylake112", "haswell72", "rome256", or "custom" (which uses
  // the fields below; they are rejected for presets).
  std::string preset = "custom";
  int sockets = 1;
  int cores_per_socket = 4;
  int smt = 2;
  int cores_per_ccx = 4;
};

struct PolicySpec {
  // "centralized_fifo" | "shinjuku" | "shinjuku_shenango" | "snap" |
  // "per_cpu_fifo" | "o1" | "search" | "predictive_shinjuku" |
  // "predictive_search" | "vm_core_sched" | "ab_test" (A/B lane split;
  // configured by the top-level "ab_test" block) | "cfs" (no agent: the
  // workload runs under the kernel's default scheduler).
  std::string kind = "shinjuku";
  int global_cpu = -1;          // centralized policies; -1 = first enclave CPU
  double timeslice_us = 30;     // preemption timeslice (0 = run to completion)
  // Shinjuku family: cadence at which the agent probes for expired slices
  // (0 = track each running task's exact expiry). Lets probe-vs-predictive
  // comparisons be a config diff.
  double probe_interval_us = 0;
  // predictive_shinjuku: predicted service >= threshold routes to the long
  // lane; predicted-shorts carry a backstop of predicted * multiplier.
  double long_threshold_us = 100;
  int backstop_multiplier = 4;
  // O1 parameters.
  int num_priorities = 8;
  double base_timeslice_ms = 6;
  double min_timeslice_ms = 1;
  int worker_priority = 1;      // priority assigned to workload threads
  int antagonist_priority = 6;  // priority assigned to enclave antagonists
  // vm_core_sched: guaranteed slice per VM per period.
  double vm_slice_ms = 6;
};

struct ServiceSpec {
  // "fixed" | "bimodal" | "exponential".
  std::string model = "bimodal";
  double fixed_us = 10;  // fixed
  double short_us = 10;  // bimodal
  double long_us = 10000;
  double p_long = 0.005;
  double mean_us = 10;  // exponential
};

struct LoadPhase {
  double duration_ms = 0;
  double qps = 0;  // open-loop Poisson arrival rate during the phase
};

struct WorkloadSpec {
  // "request_service" (thread-pool server + phased Poisson load) or
  // "vm" (Table 4's vCPU workload: fixed CPU work per vCPU).
  std::string kind = "request_service";
  // request_service:
  int num_workers = 50;
  int fanout = 1;  // >1: each arrival fans out into `fanout` sub-requests
                   // and the group completes at the max sub-latency
  ServiceSpec service;
  std::vector<LoadPhase> phases;
  // vm:
  int num_vms = 4;
  int vcpus_per_vm = 2;
  double work_per_vcpu_ms = 20;
};

struct AntagonistSpec {
  int threads = 0;  // 0 = no antagonist
  // "cfs": nice'd best-effort threads outside the enclave (fig 6's batch
  // app). "enclave": ghOSt-managed threads in the low tier / low priority.
  std::string placement = "cfs";
  int nice = 19;        // cfs placement only
  double chunk_us = 500;
};

struct FaultEventSpec {
  double at_ms = 0;
  // "agent_crash" | "agent_stall" | "agent_recover" | "enclave_destroy".
  std::string kind;
};

struct FaultsSpec {
  // Probabilistic faults fire only inside [window_start_ms, window_end_ms);
  // window_end_ms < 0 means "never closes".
  double window_start_ms = 0;
  double window_end_ms = -1;
  double ipi_delay_probability = 0;
  double ipi_drop_probability = 0;
  double msg_drop_probability = 0;
  double estale_probability = 0;
  std::vector<FaultEventSpec> plan;  // scheduled one-shot faults
};

struct EnclaveSpec {
  // CPUs [cpu_first, cpu_first + cpu_count). cpu_count < 0 = all remaining
  // CPUs from cpu_first up. CPU 0 is conventionally left to the load
  // generator / housekeeping, matching the bench setups.
  int cpu_first = 1;
  int cpu_count = -1;
  double watchdog_timeout_ms = 0;  // 0 = watchdog disabled
  double watchdog_period_ms = 10;
};

struct InvariantsSpec {
  bool enabled = true;
  double period_us = 250;
  // Starvation bound for watchdog-less enclaves (0 = skip that check).
  double ghost_starvation_bound_ms = 0;
};

// ---- A/B hot-swap and policy-fuzzer specs -----------------------------------

struct AbCanarySpec {
  // Share of the tid space hashed into the canary lane, 0..100.
  int percent = 10;
  // Canary behavioral delta: freshly woken canary threads are admitted LIFO.
  bool lifo = false;
};

// Live A/B hot-swap (policy.kind must be "ab_test"): the enclave starts with
// the lanes split per `canary`, then the run optionally *promotes* the canary
// (hot-swaps in an instance with canary at 100%) and/or *rolls back* (canary
// at 0%) via AgentProcess::SwapPolicy — the §3.4 upgrade path — while the
// workload keeps running. Per-lane counters land in the scenario's exact
// metrics; lane membership is a pure tid hash, so split counters partition
// the single-policy totals.
struct AbTestSpec {
  AbCanarySpec canary;
  double promote_at_ms = -1;   // < 0 = never promote
  double rollback_at_ms = -1;  // < 0 = never roll back
};

// Policy-fuzzer scenario: instead of one simulated machine, the run sweeps
// `cases` generated hostile policies through the fuzz harness
// (verify/policy_fuzzer.h) and reports case/violation counts as exact
// metrics. All machine-shaping sections (topology/workload/...) are ignored;
// the fuzz harness owns its own fixed machine.
struct FuzzSpec {
  int cases = 50;
  uint64_t base_seed = 1;
  int schedules_per_case = 1;  // random-walk executions per generated config
};

// ---- Fleet (multi-machine) specs --------------------------------------------

struct BalancerSpec {
  // "round_robin" | "least_loaded" | "consistent_hash".
  std::string policy = "least_loaded";
  // Shed a request outright when its chosen machine already has this many
  // front-end-tracked outstanding requests (0 = never shed).
  int shed_outstanding = 0;
  // consistent_hash: ring points per machine.
  int virtual_nodes = 16;
};

struct LinkSpec {
  // Node indices: machine index, or -1 for the front end. Links are
  // directed; list both directions to override a full duplex pair.
  int from = 0;
  int to = 0;
  double latency_us = -1;      // < 0 = inherit network.latency_us
  double bandwidth_gbps = -1;  // < 0 = inherit network.bandwidth_gbps
};

struct NetworkSpec {
  // Defaults for every directed link (front end <-> machines and
  // machine <-> machine); `links` lists per-link overrides.
  double latency_us = 50;
  double bandwidth_gbps = 10;
  double request_bytes = 1500;
  double response_bytes = 1500;
  std::vector<LinkSpec> links;
};

struct FleetEventSpec {
  double at_ms = 0;
  // Machine-scoped faults: "agent_crash" | "agent_stall" | "agent_recover" |
  // "enclave_destroy" (delivered to that machine's FaultInjector).
  // Balancer control: "lb_drain" | "lb_undrain" (the front end stops/resumes
  // routing new requests to the machine).
  // Network control: "link_down" | "link_up" (partition/heal the machine:
  // new messages to or from it are parked until the link heals; messages
  // already on the wire still deliver).
  std::string kind;
  int machine = 0;
};

// Per-machine deviations from the base scenario. Each present section is
// parsed *over a copy of the base section*, so an override only needs the
// keys it changes.
struct MachineOverrideSpec {
  int machine = 0;
  std::optional<PolicySpec> policy;
  std::optional<EnclaveSpec> enclave;
  std::optional<WorkloadSpec> workload;
  std::optional<AntagonistSpec> antagonist;
  std::optional<FaultsSpec> faults;
};

// A fleet scenario runs `machines` copies of the single-machine simulation
// under a front-end load balancer: the workload's Poisson phases drive the
// front end, which shards sessions across machines; requests and responses
// cross a deterministic network model (per-link latency + bandwidth).
// Requires workload.kind == "request_service" with fanout == 1
// (fleet.rpc_fanout is the cross-machine fan-out knob).
struct FleetSpec {
  int machines = 1;
  // Simulated user sessions the front end shards (a request's session id
  // feeds consistent hashing).
  int sessions = 256;
  // 1 = each request runs on one machine. k > 1: after the root machine
  // finishes its own service, it issues k-1 leaf RPCs to distinct other
  // machines and responds when all leaves complete (tail-at-scale).
  int rpc_fanout = 1;
  BalancerSpec balancer;
  NetworkSpec network;
  std::vector<MachineOverrideSpec> overrides;
  std::vector<FleetEventSpec> plan;
};

// ---- The scenario -----------------------------------------------------------

struct ScenarioSpec {
  std::string name;
  std::string description;
  uint64_t seed = 42;
  double warmup_ms = 20;   // metrics reset at the end of warmup
  double measure_ms = 80;  // measurement window
  double drain_ms = 20;    // extra run time to let in-flight requests finish
  TopologySpec topology;
  PolicySpec policy;
  EnclaveSpec enclave;
  WorkloadSpec workload;
  AntagonistSpec antagonist;
  FaultsSpec faults;
  InvariantsSpec invariants;
  // Present only with policy.kind == "ab_test"; incompatible with fleet.
  std::optional<AbTestSpec> ab_test;
  // Present = fuzzer sweep scenario; incompatible with fleet and ab_test.
  std::optional<FuzzSpec> fuzz;
  // Absent = single machine (the degenerate one-node cluster, no network or
  // front end in the loop). Present = fleet mode, even with machines == 1.
  std::optional<FleetSpec> fleet;

  // Deterministic, compact JSON rendering; Parse(ToJson()) == *this.
  std::string ToJson() const;

  // Strict parse of a scenario document. On failure returns nullopt and sets
  // `*error` to a message naming the offending key (or the JSON syntax
  // error's line:column).
  static std::optional<ScenarioSpec> Parse(std::string_view text, std::string* error);

  // Binary-facing wrappers matching the harness's flag-validation style:
  // print "scenario: <error>" to stderr and exit(2) on any problem.
  static ScenarioSpec ParseOrExit(std::string_view text);
  static ScenarioSpec LoadFileOrExit(const std::string& path);
};

}  // namespace scenario
}  // namespace gs

#endif  // GHOST_SIM_SRC_SCENARIO_SCENARIO_H_
