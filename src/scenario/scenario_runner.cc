#include "src/scenario/scenario_runner.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "src/fleet/cluster.h"
#include "src/verify/policy_fuzzer.h"

namespace gs {
namespace scenario {

void EnvelopeBand(const std::string& name, double value, double* lo, double* hi) {
  // Relative tolerance + absolute slack floor, per metric family. The sim is
  // deterministic, so the band absorbs intentional code drift, not noise:
  // latencies move with every scheduling-cost tweak (wide band), counts and
  // rates are structural (tight band).
  double rel = 0.25;
  double abs_slack = 1.0;
  if (name.size() >= 3 && name.compare(name.size() - 3, 3, "_us") == 0) {
    rel = 0.40;
    abs_slack = 10.0;
  } else if (name.find("kqps") != std::string::npos) {
    rel = 0.20;
    abs_slack = 0.5;
  } else if (name.find("share") != std::string::npos ||
             name.find("frac") != std::string::npos) {
    rel = 0.30;
    abs_slack = 0.02;
  }
  const double margin = std::max(std::abs(value) * rel, abs_slack);
  *lo = value - margin;
  *hi = value + margin;
}

ScenarioResult RunScenario(const ScenarioSpec& spec, StatsRegistry* stats,
                           int jobs) {
  if (spec.fuzz.has_value()) {
    // Fuzzer scenario: no machine to build — sweep generated hostile
    // policies through the fuzz harness and report the verdict as exact
    // metrics. Always single-job so the golden is byte-identical whatever
    // --jobs the harness runs with.
    FuzzSweepOptions options;
    options.cases = spec.fuzz->cases;
    options.base_seed = spec.fuzz->base_seed;
    options.schedules_per_case = static_cast<uint64_t>(spec.fuzz->schedules_per_case);
    options.jobs = 1;
    const FuzzSweepResult sweep = RunFuzzSweep(options);
    ScenarioResult result;
    result.name = spec.name;
    result.seed = spec.seed;
    result.exact["fuzz_cases"] = sweep.cases_run;
    result.exact["fuzz_schedules"] = static_cast<int64_t>(sweep.total_schedules);
    result.exact["fuzz_violations"] = static_cast<int64_t>(sweep.violations.size());
    result.exact["invariants_ok"] = sweep.violations.empty() ? 1 : 0;
    for (const FuzzCaseResult& v : sweep.violations) {
      result.violations.push_back("seed " + std::to_string(v.config.seed) + ": " +
                                  v.violation);
    }
    return result;
  }
  fleet::Cluster cluster(spec, stats, jobs);
  return cluster.Run();
}

std::string RenderGolden(const ScenarioResult& result) {
  JsonWriter w;
  w.BeginObject();
  w.KV("schema_version", 1);
  w.KV("scenario", result.name);
  w.KV("seed", result.seed);
  w.Key("exact");
  w.BeginObject();
  for (const auto& [key, value] : result.exact) {
    w.KV(key, value);
  }
  w.EndObject();
  w.Key("envelopes");
  w.BeginObject();
  for (const auto& [key, value] : result.envelopes) {
    double lo = 0;
    double hi = 0;
    EnvelopeBand(key, value, &lo, &hi);
    w.Key(key);
    w.BeginObject();
    w.KV("value", value);
    w.KV("lo", lo);
    w.KV("hi", hi);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str() + "\n";
}

bool CheckGolden(const ScenarioResult& result, const std::string& golden_json,
                 std::vector<std::string>* failures) {
  const size_t failures_before = failures->size();
  std::string parse_error;
  std::optional<JsonValue> doc = JsonValue::Parse(golden_json, &parse_error);
  if (!doc.has_value() || !doc->is_object()) {
    failures->push_back("golden is not valid JSON: " + parse_error);
    return false;
  }
  const JsonValue* scenario = doc->Find("scenario");
  if (scenario == nullptr || !scenario->is_string() || scenario->string != result.name) {
    failures->push_back("golden is for a different scenario");
  }
  const JsonValue* seed = doc->Find("seed");
  if (seed == nullptr || !seed->is_number() ||
      static_cast<uint64_t>(seed->number) != result.seed) {
    failures->push_back("golden seed does not match the run seed");
  }

  const JsonValue* exact = doc->Find("exact");
  if (exact == nullptr || !exact->is_object()) {
    failures->push_back("golden has no \"exact\" object");
  } else {
    for (const auto& [key, value] : exact->object) {
      auto it = result.exact.find(key);
      if (it == result.exact.end()) {
        failures->push_back("exact." + key + ": present in golden, absent in run");
        continue;
      }
      const int64_t want = static_cast<int64_t>(value.number);
      if (it->second != want) {
        failures->push_back("exact." + key + ": golden " + std::to_string(want) +
                            ", run " + std::to_string(it->second));
      }
    }
    for (const auto& [key, value] : result.exact) {
      if (exact->Find(key) == nullptr) {
        failures->push_back("exact." + key +
                            ": produced by run, missing from golden "
                            "(schema drift; re-run --update-goldens)");
      }
    }
  }

  const JsonValue* envelopes = doc->Find("envelopes");
  if (envelopes == nullptr || !envelopes->is_object()) {
    failures->push_back("golden has no \"envelopes\" object");
  } else {
    for (const auto& [key, band] : envelopes->object) {
      auto it = result.envelopes.find(key);
      if (it == result.envelopes.end()) {
        failures->push_back("envelopes." + key + ": present in golden, absent in run");
        continue;
      }
      const JsonValue* lo = band.Find("lo");
      const JsonValue* hi = band.Find("hi");
      if (lo == nullptr || hi == nullptr) {
        failures->push_back("envelopes." + key + ": golden band missing lo/hi");
        continue;
      }
      if (it->second < lo->number || it->second > hi->number) {
        failures->push_back("envelopes." + key + ": run value " +
                            std::to_string(it->second) + " outside golden band [" +
                            std::to_string(lo->number) + ", " +
                            std::to_string(hi->number) + "]");
      }
    }
    for (const auto& [key, value] : result.envelopes) {
      if (envelopes->Find(key) == nullptr) {
        failures->push_back("envelopes." + key +
                            ": produced by run, missing from golden "
                            "(schema drift; re-run --update-goldens)");
      }
    }
  }
  return failures->size() == failures_before;
}

}  // namespace scenario
}  // namespace gs
