#include "src/scenario/scenario_runner.h"

#include <algorithm>
#include <memory>
#include <set>

#include "src/base/logging.h"
#include "src/policies/o1.h"
#include "src/policies/per_cpu_fifo.h"
#include "src/policies/shinjuku.h"
#include "src/policies/vm_core_sched.h"
#include "src/sim/simulation.h"
#include "src/verify/invariants.h"
#include "src/workloads/batch.h"
#include "src/workloads/request_service.h"
#include "src/workloads/vm_workload.h"

namespace gs {
namespace scenario {
namespace {

Duration FromMs(double ms) { return static_cast<Duration>(ms * 1e6); }
Duration FromUs(double us) { return static_cast<Duration>(us * 1e3); }

Topology MakeTopology(const TopologySpec& spec) {
  if (spec.preset == "e5_24") {
    return Topology::IntelE5_24();
  }
  if (spec.preset == "skylake112") {
    return Topology::IntelSkylake112();
  }
  if (spec.preset == "haswell72") {
    return Topology::IntelHaswell72();
  }
  if (spec.preset == "rome256") {
    return Topology::AmdRome256();
  }
  return Topology::Make("scenario", spec.sockets, spec.cores_per_socket, spec.smt,
                        spec.cores_per_ccx);
}

ServiceTimeModel* MakeService(const ServiceSpec& spec,
                              std::unique_ptr<ServiceTimeModel>* owned) {
  if (spec.model == "fixed") {
    *owned = std::make_unique<FixedServiceModel>(FromUs(spec.fixed_us));
  } else if (spec.model == "exponential") {
    *owned = std::make_unique<ExponentialServiceModel>(FromUs(spec.mean_us));
  } else {
    *owned = std::make_unique<BimodalServiceModel>(
        FromUs(spec.short_us), FromUs(spec.long_us), spec.p_long);
  }
  return owned->get();
}

// Joint state for one fan-out group (tail-at-scale): the group completes when
// its slowest sub-request does.
struct FanoutGroup {
  int remaining = 0;
  Duration max_latency = 0;
};

}  // namespace

void EnvelopeBand(const std::string& name, double value, double* lo, double* hi) {
  // Relative tolerance + absolute slack floor, per metric family. The sim is
  // deterministic, so the band absorbs intentional code drift, not noise:
  // latencies move with every scheduling-cost tweak (wide band), counts and
  // rates are structural (tight band).
  double rel = 0.25;
  double abs_slack = 1.0;
  if (name.size() >= 3 && name.compare(name.size() - 3, 3, "_us") == 0) {
    rel = 0.40;
    abs_slack = 10.0;
  } else if (name.find("kqps") != std::string::npos) {
    rel = 0.20;
    abs_slack = 0.5;
  } else if (name.find("share") != std::string::npos ||
             name.find("frac") != std::string::npos) {
    rel = 0.30;
    abs_slack = 0.02;
  }
  const double margin = std::max(std::abs(value) * rel, abs_slack);
  *lo = value - margin;
  *hi = value + margin;
}

ScenarioResult RunScenario(const ScenarioSpec& spec, StatsRegistry* stats) {
  ScenarioResult result;
  result.name = spec.name;
  result.seed = spec.seed;

  const Duration warmup = FromMs(spec.warmup_ms);
  const Duration measure = FromMs(spec.measure_ms);
  const Duration drain = FromMs(spec.drain_ms);

  SimulationContext::Options options;
  options.topology = MakeTopology(spec.topology);
  options.with_core_sched = spec.policy.kind == "vm_core_sched";
  options.seed = spec.seed;
  options.enable_stats = stats != nullptr;
  options.stats = stats;
  const bool want_faults = !spec.faults.plan.empty() ||
                           spec.faults.ipi_delay_probability > 0 ||
                           spec.faults.ipi_drop_probability > 0 ||
                           spec.faults.msg_drop_probability > 0 ||
                           spec.faults.estale_probability > 0;
  if (want_faults) {
    FaultInjector::Config faults;
    faults.window_start = FromMs(spec.faults.window_start_ms);
    faults.window_end = spec.faults.window_end_ms < 0
                            ? kTimeNever
                            : FromMs(spec.faults.window_end_ms);
    faults.ipi_delay_probability = spec.faults.ipi_delay_probability;
    faults.ipi_drop_probability = spec.faults.ipi_drop_probability;
    faults.msg_drop_probability = spec.faults.msg_drop_probability;
    faults.estale_probability = spec.faults.estale_probability;
    options.faults = faults;
  }
  SimulationContext ctx(std::move(options));

  // ---- CPU plan -------------------------------------------------------------
  const int num_cpus = ctx.topology().num_cpus();
  const int cpu_first = std::min(spec.enclave.cpu_first, num_cpus - 1);
  const int cpu_count = spec.enclave.cpu_count < 0
                            ? num_cpus - cpu_first
                            : std::min(spec.enclave.cpu_count, num_cpus - cpu_first);
  CpuMask server_cpus;
  for (int cpu = cpu_first; cpu < cpu_first + cpu_count; ++cpu) {
    server_cpus.Set(cpu);
  }
  CHECK_GE(cpu_count, 1) << "scenario " << spec.name << ": empty enclave CPU set";

  // ---- Workload threads (created before the policy so tid-based classifiers
  // can capture them) ---------------------------------------------------------
  const bool is_vm = spec.workload.kind == "vm";
  std::unique_ptr<ThreadPoolServer> server;
  std::unique_ptr<VmWorkload> vm;
  if (is_vm) {
    VmWorkload::Options vm_options;
    vm_options.num_vms = spec.workload.num_vms;
    vm_options.vcpus_per_vm = spec.workload.vcpus_per_vm;
    vm_options.work_per_vcpu = FromMs(spec.workload.work_per_vcpu_ms);
    vm = std::make_unique<VmWorkload>(&ctx.kernel(), vm_options);
  } else {
    ThreadPoolServer::Options server_options;
    server_options.num_workers = spec.workload.num_workers;
    server = std::make_unique<ThreadPoolServer>(&ctx.kernel(), server_options);
  }

  BatchApp antagonist(&ctx.kernel(),
                      {.num_threads = std::max(spec.antagonist.threads, 1),
                       .chunk = FromUs(spec.antagonist.chunk_us)});
  const bool with_antagonist = spec.antagonist.threads > 0;
  const bool antagonist_in_enclave =
      with_antagonist && spec.antagonist.placement == "enclave";
  auto antagonist_tids = std::make_shared<std::set<int64_t>>();
  if (antagonist_in_enclave) {
    for (Task* t : antagonist.threads()) {
      antagonist_tids->insert(t->tid());
    }
  }

  // ---- Policy + enclave -----------------------------------------------------
  const bool use_ghost = spec.policy.kind != "cfs";
  std::unique_ptr<Enclave> enclave;
  std::unique_ptr<AgentProcess> process;
  if (use_ghost) {
    Enclave::Config config;
    config.watchdog_timeout = FromMs(spec.enclave.watchdog_timeout_ms);
    config.watchdog_period = FromMs(spec.enclave.watchdog_period_ms);
    enclave = ctx.CreateEnclave(server_cpus, config);

    const int global_cpu =
        spec.policy.global_cpu >= 0 ? spec.policy.global_cpu : cpu_first;
    const Duration timeslice = FromUs(spec.policy.timeslice_us);
    std::unique_ptr<Policy> policy;
    const std::string& kind = spec.policy.kind;
    if (kind == "centralized_fifo") {
      CentralizedFifoPolicy::Options o;
      o.global_cpu = global_cpu;
      o.preemption_timeslice = timeslice;
      policy = std::make_unique<CentralizedFifoPolicy>(o);
    } else if (kind == "shinjuku") {
      policy = MakeShinjukuPolicy(timeslice, global_cpu);
    } else if (kind == "shinjuku_shenango") {
      policy = MakeShinjukuShenangoPolicy(
          timeslice,
          [antagonist_tids](int64_t tid) { return antagonist_tids->count(tid) ? 1 : 0; },
          global_cpu);
    } else if (kind == "snap") {
      policy = MakeSnapPolicy(
          [antagonist_tids](int64_t tid) { return antagonist_tids->count(tid) ? 1 : 0; },
          global_cpu);
    } else if (kind == "per_cpu_fifo") {
      policy = std::make_unique<PerCpuFifoPolicy>();
    } else if (kind == "o1") {
      O1Policy::Options o;
      o.num_priorities = spec.policy.num_priorities;
      o.base_timeslice = FromMs(spec.policy.base_timeslice_ms);
      o.min_timeslice = FromMs(spec.policy.min_timeslice_ms);
      const int worker_prio = spec.policy.worker_priority;
      const int antagonist_prio = spec.policy.antagonist_priority;
      o.priority_of = [antagonist_tids, worker_prio, antagonist_prio](int64_t tid) {
        return antagonist_tids->count(tid) ? antagonist_prio : worker_prio;
      };
      policy = std::make_unique<O1Policy>(o);
    } else if (kind == "vm_core_sched") {
      CHECK(is_vm) << "scenario " << spec.name
                   << ": vm_core_sched requires workload.kind == \"vm\"";
      VmCoreSchedPolicy::Options o;
      o.global_cpu = global_cpu;
      o.slice = FromMs(spec.policy.vm_slice_ms);
      VmWorkload* vm_ptr = vm.get();
      o.cookie_of = [vm_ptr](int64_t tid) { return vm_ptr->CookieOf(tid); };
      policy = std::make_unique<VmCoreSchedPolicy>(o);
    }
    CHECK(policy != nullptr) << "scenario " << spec.name
                             << ": unhandled policy kind " << kind;
    process = ctx.CreateAgentProcess(enclave.get(), std::move(policy));
    process->Start();
  }

  // ---- Thread placement -----------------------------------------------------
  const std::vector<Task*>& workload_threads =
      is_vm ? vm->vcpus() : server->workers();
  for (Task* t : workload_threads) {
    if (use_ghost) {
      enclave->AddTask(t);
    } else {
      ctx.kernel().SetAffinity(t, server_cpus);
    }
  }
  if (with_antagonist) {
    for (Task* t : antagonist.threads()) {
      if (antagonist_in_enclave) {
        enclave->AddTask(t);
      } else {
        ctx.kernel().SetAffinity(t, server_cpus);
        ctx.kernel().SetNice(t, spec.antagonist.nice);
      }
    }
    antagonist.Start();
  }

  // ---- Load -----------------------------------------------------------------
  std::unique_ptr<ServiceTimeModel> service_owned;
  std::vector<std::unique_ptr<PoissonLoadGen>> gens;
  LatencyRecorder group_latency;  // fan-out group completion latency
  const int fanout = spec.workload.fanout;
  // Extra sub-request service samples come from a dedicated stream so arrival
  // sampling stays identical whether or not fan-out is configured.
  Rng fanout_rng(spec.seed ^ 0x9e3779b97f4a7c15ULL);
  if (is_vm) {
    vm->Start();
    vm->StartSecuritySampler();
  } else {
    ServiceTimeModel* service = MakeService(spec.workload.service, &service_owned);
    ThreadPoolServer* server_ptr = server.get();
    std::function<void(Time, Duration)> sink;
    if (fanout <= 1) {
      sink = [server_ptr](Time t, Duration s) { server_ptr->Submit(t, s); };
    } else {
      sink = [server_ptr, service, fanout, &fanout_rng, &group_latency](Time t,
                                                                        Duration s) {
        auto group = std::make_shared<FanoutGroup>();
        group->remaining = fanout;
        for (int k = 0; k < fanout; ++k) {
          const Duration sub_service = k == 0 ? s : service->Sample(fanout_rng);
          server_ptr->Submit(t, sub_service,
                             [group, &group_latency](Time, Duration latency) {
                               group->max_latency =
                                   std::max(group->max_latency, latency);
                               if (--group->remaining == 0) {
                                 group_latency.Add(group->max_latency);
                               }
                             });
        }
      };
    }
    Time phase_start = 0;
    int phase_index = 0;
    for (const LoadPhase& phase : spec.workload.phases) {
      const Time start = phase_start;
      const Time end = phase_start + FromMs(phase.duration_ms);
      if (phase.qps > 0) {
        gens.push_back(std::make_unique<PoissonLoadGen>(
            &ctx.loop(), service, phase.qps,
            spec.seed + 1000003ULL * static_cast<uint64_t>(phase_index), sink));
        PoissonLoadGen* gen = gens.back().get();
        ctx.loop().ScheduleAt(start, [gen, end] { gen->Start(end); });
      }
      phase_start = end;
      ++phase_index;
    }
  }

  // ---- Fault plan -----------------------------------------------------------
  if (!spec.faults.plan.empty()) {
    FaultInjector* injector = ctx.fault_injector();
    Enclave* enclave_ptr = enclave.get();
    AgentProcess* process_ptr = process.get();
    for (const FaultEventSpec& event : spec.faults.plan) {
      const Time when = FromMs(event.at_ms);
      if (event.kind == "agent_crash" && process_ptr != nullptr) {
        injector->At(when, FaultKind::kAgentCrash,
                     [process_ptr] { process_ptr->Crash(); });
      } else if (event.kind == "agent_stall" && process_ptr != nullptr) {
        injector->At(when, FaultKind::kAgentStall,
                     [process_ptr] { process_ptr->SetStalled(true); });
      } else if (event.kind == "agent_recover" && process_ptr != nullptr) {
        injector->At(when, FaultKind::kAgentStall,
                     [process_ptr] { process_ptr->SetStalled(false); });
      } else if (event.kind == "enclave_destroy" && enclave_ptr != nullptr) {
        injector->At(when, FaultKind::kEnclaveDestroy, [enclave_ptr] {
          if (!enclave_ptr->destroyed()) {
            enclave_ptr->Destroy();
          }
        });
      }
    }
  }

  // ---- Invariant checking ---------------------------------------------------
  std::unique_ptr<InvariantChecker> checker;
  if (spec.invariants.enabled) {
    InvariantChecker::Options inv;
    inv.period = FromUs(spec.invariants.period_us);
    inv.ghost_starvation_bound = FromMs(spec.invariants.ghost_starvation_bound_ms);
    checker = std::make_unique<InvariantChecker>(&ctx.kernel(), inv);
    if (enclave != nullptr) {
      checker->Watch(enclave.get());
    }
    checker->Start();
  }

  // ---- Run ------------------------------------------------------------------
  int64_t completed_at_warmup = 0;
  ctx.loop().ScheduleAt(warmup, [&] {
    if (server != nullptr) {
      server->latency().Reset();
      completed_at_warmup = server->completed();
    }
    antagonist.MarkWindow();
  });
  ctx.RunFor(warmup + measure + drain);
  if (checker != nullptr) {
    checker->CheckNow();
    checker->Stop();
  }

  // ---- Collect --------------------------------------------------------------
  int64_t generated = 0;
  for (const auto& gen : gens) {
    generated += gen->generated();
  }
  if (!is_vm) {
    result.exact["generated"] = generated;
    result.exact["completed"] = server->completed();
    result.exact["dropped"] = server->dropped();
    const double measured =
        static_cast<double>(server->completed() - completed_at_warmup);
    result.envelopes["achieved_kqps"] = measured / ToSeconds(measure + drain) / 1e3;
    LatencyRecorder& lat = fanout > 1 ? group_latency : server->latency();
    result.envelopes["p50_us"] = lat.PercentileUs(50);
    result.envelopes["p99_us"] = lat.PercentileUs(99);
    result.envelopes["p999_us"] = lat.PercentileUs(99.9);
  } else {
    result.exact["vm_vcpus"] = static_cast<int64_t>(vm->vcpus().size());
    result.exact["vm_completed"] = vm->completed();
    result.exact["vm_coresidency_violations"] =
        static_cast<int64_t>(vm->coresidency_violations());
    result.envelopes["vcpu_completed_frac"] =
        static_cast<double>(vm->completed()) /
        static_cast<double>(vm->vcpus().size());
  }
  if (with_antagonist) {
    result.envelopes["antagonist_share"] = antagonist.CpuShare(
        warmup, ctx.now(), cpu_count);
  }
  if (ctx.fault_injector() != nullptr) {
    const FaultInjector* injector = ctx.fault_injector();
    for (int k = 0; k < kNumFaultKinds; ++k) {
      const FaultKind kind = static_cast<FaultKind>(k);
      result.exact[std::string("faults_") + ToString(kind)] =
          static_cast<int64_t>(injector->injected(kind));
    }
  }
  result.exact["enclave_destroyed"] =
      enclave != nullptr && enclave->destroyed() ? 1 : 0;
  if (checker != nullptr) {
    result.exact["invariants_ok"] = checker->ok() ? 1 : 0;
    result.exact["invariant_violations"] =
        static_cast<int64_t>(checker->violations().size());
    result.violations = checker->violations();
  }
  return result;
}

std::string RenderGolden(const ScenarioResult& result) {
  JsonWriter w;
  w.BeginObject();
  w.KV("schema_version", 1);
  w.KV("scenario", result.name);
  w.KV("seed", result.seed);
  w.Key("exact");
  w.BeginObject();
  for (const auto& [key, value] : result.exact) {
    w.KV(key, value);
  }
  w.EndObject();
  w.Key("envelopes");
  w.BeginObject();
  for (const auto& [key, value] : result.envelopes) {
    double lo = 0;
    double hi = 0;
    EnvelopeBand(key, value, &lo, &hi);
    w.Key(key);
    w.BeginObject();
    w.KV("value", value);
    w.KV("lo", lo);
    w.KV("hi", hi);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str() + "\n";
}

bool CheckGolden(const ScenarioResult& result, const std::string& golden_json,
                 std::vector<std::string>* failures) {
  const size_t failures_before = failures->size();
  std::string parse_error;
  std::optional<JsonValue> doc = JsonValue::Parse(golden_json, &parse_error);
  if (!doc.has_value() || !doc->is_object()) {
    failures->push_back("golden is not valid JSON: " + parse_error);
    return false;
  }
  const JsonValue* scenario = doc->Find("scenario");
  if (scenario == nullptr || !scenario->is_string() || scenario->string != result.name) {
    failures->push_back("golden is for a different scenario");
  }
  const JsonValue* seed = doc->Find("seed");
  if (seed == nullptr || !seed->is_number() ||
      static_cast<uint64_t>(seed->number) != result.seed) {
    failures->push_back("golden seed does not match the run seed");
  }

  const JsonValue* exact = doc->Find("exact");
  if (exact == nullptr || !exact->is_object()) {
    failures->push_back("golden has no \"exact\" object");
  } else {
    for (const auto& [key, value] : exact->object) {
      auto it = result.exact.find(key);
      if (it == result.exact.end()) {
        failures->push_back("exact." + key + ": present in golden, absent in run");
        continue;
      }
      const int64_t want = static_cast<int64_t>(value.number);
      if (it->second != want) {
        failures->push_back("exact." + key + ": golden " + std::to_string(want) +
                            ", run " + std::to_string(it->second));
      }
    }
    for (const auto& [key, value] : result.exact) {
      if (exact->Find(key) == nullptr) {
        failures->push_back("exact." + key +
                            ": produced by run, missing from golden "
                            "(schema drift; re-run --update-goldens)");
      }
    }
  }

  const JsonValue* envelopes = doc->Find("envelopes");
  if (envelopes == nullptr || !envelopes->is_object()) {
    failures->push_back("golden has no \"envelopes\" object");
  } else {
    for (const auto& [key, band] : envelopes->object) {
      auto it = result.envelopes.find(key);
      if (it == result.envelopes.end()) {
        failures->push_back("envelopes." + key + ": present in golden, absent in run");
        continue;
      }
      const JsonValue* lo = band.Find("lo");
      const JsonValue* hi = band.Find("hi");
      if (lo == nullptr || hi == nullptr) {
        failures->push_back("envelopes." + key + ": golden band missing lo/hi");
        continue;
      }
      if (it->second < lo->number || it->second > hi->number) {
        failures->push_back("envelopes." + key + ": run value " +
                            std::to_string(it->second) + " outside golden band [" +
                            std::to_string(lo->number) + ", " +
                            std::to_string(hi->number) + "]");
      }
    }
    for (const auto& [key, value] : result.envelopes) {
      if (envelopes->Find(key) == nullptr) {
        failures->push_back("envelopes." + key +
                            ": produced by run, missing from golden "
                            "(schema drift; re-run --update-goldens)");
      }
    }
  }
  return failures->size() == failures_before;
}

}  // namespace scenario
}  // namespace gs
