// Registry of named built-in scenarios.
//
// Each built-in is stored as its JSON source text and goes through the same
// strict ScenarioSpec::Parse as a user-supplied file — the library dogfoods
// its own schema, and a scenario_test case fails if any built-in ever stops
// parsing. The harness resolves `--scenario=<arg>` here: a built-in name
// first, otherwise a path to a scenario JSON file.
#ifndef GHOST_SIM_SRC_SCENARIO_REGISTRY_H_
#define GHOST_SIM_SRC_SCENARIO_REGISTRY_H_

#include <string>
#include <vector>

#include "src/scenario/scenario.h"

namespace gs {
namespace scenario {

// Names of all built-in scenarios, sorted.
std::vector<std::string> BuiltinScenarioNames();

// JSON source of a built-in; nullptr if `name` is not a built-in.
const char* BuiltinScenarioJson(const std::string& name);

// Parsed built-in. CHECK-fails on an unknown name (use BuiltinScenarioJson
// to probe) or if the embedded JSON is invalid.
ScenarioSpec GetBuiltinScenario(const std::string& name);

// `--scenario=` resolution: a built-in name, else a file path. On an unknown
// name that does not exist as a file, prints the available names and
// exit(2)s; on a malformed file, ParseOrExit semantics apply.
ScenarioSpec LoadScenarioOrExit(const std::string& name_or_path);

}  // namespace scenario
}  // namespace gs

#endif  // GHOST_SIM_SRC_SCENARIO_REGISTRY_H_
