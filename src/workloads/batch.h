// Batch / antagonist application: best-effort CPU hogs.
//
// §4.2's "batch app" co-located with RocksDB and §4.3's "40 antagonist
// threads" are threads that soak up whatever CPU the scheduler gives them.
// BatchApp tracks aggregate attained CPU time so benchmarks can report the
// batch CPU *share* (Fig 6c).
#ifndef GHOST_SIM_SRC_WORKLOADS_BATCH_H_
#define GHOST_SIM_SRC_WORKLOADS_BATCH_H_

#include <string>
#include <vector>

#include "src/kernel/kernel.h"

namespace gs {

class BatchApp {
 public:
  struct Options {
    int num_threads = 4;
    std::string name_prefix = "batch";
    // Work chunk between voluntary re-checks (infinite loop granularity).
    Duration chunk = Microseconds(500);
  };

  BatchApp(Kernel* kernel, Options options);

  // The threads, for placement (CFS nice value, enclave tier, affinity).
  const std::vector<Task*>& threads() const { return threads_; }

  // Starts all threads spinning.
  void Start();

  // Aggregate CPU time attained so far.
  Duration TotalRuntime() const;

  // Attained share of `num_cpus` over the window [since, now].
  double CpuShare(Time since, Time now, int num_cpus) const;

  // Call at the start of a measurement window.
  void MarkWindow();
  Duration RuntimeSinceMark() const { return TotalRuntime() - marked_runtime_; }

 private:
  Kernel* kernel_;
  Options options_;
  std::vector<Task*> threads_;
  Duration marked_runtime_ = 0;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_WORKLOADS_BATCH_H_
