// Snap workload model (§4.3 / Fig 7).
//
// Snap is Google's userspace packet-switching framework: polling engine
// ("worker") threads move packets between the NIC and application threads,
// waking and sleeping as load changes. The paper's test: six client threads
// on a second machine send 10k msgs/s each to six server threads — one flow
// with 64 B messages (scheduling-stress worst case) and five with 64 kB
// (copy-heavy) — and the engine threads are scheduled either by MicroQuanta
// (baseline) or by a ghOSt centralized FIFO policy.
//
// Model: clients are arrival processes (the second machine isn't scheduled);
// each message costs engine RX processing, then application processing on
// the flow's server thread (always CFS), then engine TX processing, plus a
// fixed wire/client constant. Engines sleep when their ingress queues drain
// and are woken by packet arrival, exactly the wakeups whose latency the
// experiment measures.
#ifndef GHOST_SIM_SRC_WORKLOADS_SNAP_H_
#define GHOST_SIM_SRC_WORKLOADS_SNAP_H_

#include <deque>
#include <vector>

#include "src/base/rng.h"
#include "src/kernel/kernel.h"
#include "src/workloads/latency_recorder.h"

namespace gs {

class SnapSystem {
 public:
  struct Options {
    int num_engines = 2;
    int num_small_flows = 1;   // 64 B
    int num_large_flows = 5;   // 64 kB
    double msgs_per_sec_per_flow = 10'000;
    // Engine-side per-packet processing (protocol + copy).
    Duration small_rx = Microseconds(1);
    Duration small_tx = Microseconds(1);
    // 64 kB at ~10 GB/s memcpy plus protocol work: ~6 us per direction. The
    // engine carrying the five large flows then runs at ~60% utilization
    // when alone and ~86% effective utilization under SMT contention in the
    // loaded test — bursts intermittently exceed MicroQuanta's 0.9 ms
    // budget, producing the blackouts the experiment is about, without
    // diverging.
    Duration large_rx = Microseconds(6);
    Duration large_tx = Microseconds(6);
    // Application processing on the server thread.
    Duration small_app = Microseconds(2);
    Duration large_app = Microseconds(10);
    // Constant wire + client-side cost added to every recorded RTT.
    Duration wire_rtt = Microseconds(80);
    uint64_t seed = 1;
  };

  SnapSystem(Kernel* kernel, Options options);

  // Engine threads: place them under the scheduler being evaluated
  // (MicroQuanta or a ghOSt enclave) before Start().
  const std::vector<Task*>& engine_threads() const { return engines_tasks_; }
  // Server threads stay in CFS, as in the paper.
  const std::vector<Task*>& server_threads() const { return server_tasks_; }

  // Begins client traffic; arrivals stop at `until`.
  void Start(Time until);

  LatencyRecorder& small_latency() { return small_latency_; }
  LatencyRecorder& large_latency() { return large_latency_; }
  void ResetLatency() {
    small_latency_.Reset();
    large_latency_.Reset();
  }

  int64_t completed() const { return completed_; }

 private:
  struct Packet {
    Time arrival = 0;
    int flow = -1;
    bool reply = false;  // false: RX path, true: TX path
  };

  struct Engine {
    Task* task = nullptr;
    std::deque<Packet> queue;
    bool active = false;  // processing (running or runnable)
  };

  struct Flow {
    bool small = false;
    Task* server = nullptr;
    int engine = -1;
    std::deque<Packet> inbox;  // requests awaiting the server thread
    bool server_active = false;
  };

  void ScheduleNextArrival(int flow);
  void EnqueueToEngine(int engine, Packet packet);
  void EngineStep(int engine);
  void DeliverToServer(Packet packet);
  void ServerStep(int flow);
  void Complete(const Packet& packet);

  Kernel* kernel_;
  Options options_;
  Rng rng_;
  Time until_ = 0;
  std::vector<Engine> engines_;
  std::vector<Flow> flows_;
  std::vector<Task*> engines_tasks_;
  std::vector<Task*> server_tasks_;
  LatencyRecorder small_latency_;
  LatencyRecorder large_latency_;
  int64_t completed_ = 0;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_WORKLOADS_SNAP_H_
