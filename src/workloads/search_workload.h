// Google Search workload model (§4.4 / Fig 8).
//
// Three query classes served by worker-thread pools on the 256-CPU AMD Rome
// machine:
//   A: CPU- and memory-intensive, served by workers woken as needed, with
//      sub-queries tied to the NUMA socket holding their data
//      (sched_setaffinity -> THREAD_CREATED cpumask, as in the paper);
//   B: little computation but an SSD access, served by short-lived workers
//      (compute, block on the SSD, compute, respond);
//   C: CPU-intensive, served by long-living workers.
//
// Queries arrive open-loop (Poisson) per class and occupy one pool worker
// each; per-second QPS and latency series feed the Fig 8 panels. The
// machine runs with realistic cache-warmth penalties (CostModel::
// WithCacheWarmth), so placement quality — the thing the ghOSt Search policy
// optimizes — affects service times.
#ifndef GHOST_SIM_SRC_WORKLOADS_SEARCH_WORKLOAD_H_
#define GHOST_SIM_SRC_WORKLOADS_SEARCH_WORKLOAD_H_

#include <deque>
#include <vector>

#include "src/base/rng.h"
#include "src/kernel/kernel.h"
#include "src/workloads/latency_recorder.h"

namespace gs {

class SearchWorkload {
 public:
  enum QueryType { kA = 0, kB = 1, kC = 2 };

  struct Options {
    // ~80% machine utilization including SMT-contention inflation — the
    // regime where placement and rebalancing quality shows up in the tails.
    double qps_a = 24'000;
    double qps_b = 65'000;
    double qps_c = 4'500;
    // Type A queries fan into sequential sub-queries (leaf lookups) with
    // brief IPC gaps — each hop is a fresh scheduling decision.
    int a_subqueries = 3;
    Duration a_burst = Milliseconds(1);
    Duration a_gap = Microseconds(100);
    Duration b_compute = Microseconds(200);  // twice: before and after the SSD
    Duration b_ssd = Milliseconds(2);
    Duration c_burst = Milliseconds(8);
    int a_workers_per_socket = 150;
    int b_workers = 420;
    int c_workers = 150;
    Duration series_window = Seconds(1);
    uint64_t seed = 1;
  };

  SearchWorkload(Kernel* kernel, Options options);

  // All worker threads, for enclave placement. A-workers already carry their
  // socket cpumask (set via SetAffinity at construction).
  const std::vector<Task*>& workers() const { return all_workers_; }

  void Start(Time until);

  WindowedSeries& series(QueryType type) { return series_[type]; }
  LatencyRecorder& latency(QueryType type) { return latency_[type]; }
  int64_t completed(QueryType type) const { return completed_[type]; }
  int64_t offered(QueryType type) const { return offered_[type]; }

 private:
  struct Worker {
    Task* task = nullptr;
    QueryType type = kA;
    int socket = -1;  // A-workers only
    Time query_arrival = 0;
    int subqueries_left = 0;  // A-workers only
  };

  void ScheduleArrival(QueryType type);
  void Dispatch(QueryType type, Time arrival, int socket);
  void AssignQuery(int worker_index, Time arrival);
  void FinishQuery(int worker_index);
  // B-workers: first compute burst done -> block on SSD -> second burst.
  void BWorkerSsd(int worker_index);
  // A-workers: next sub-query hop (block briefly, then another burst).
  void AWorkerHop(int worker_index);

  Kernel* kernel_;
  Options options_;
  Rng rng_;
  Time until_ = 0;

  std::vector<Worker> workers_;
  std::vector<Task*> all_workers_;
  // Free worker indices: per socket for A, global for B and C.
  std::vector<std::vector<int>> free_a_;  // [socket]
  std::vector<int> free_b_;
  std::vector<int> free_c_;
  // Pending queries when the pool is exhausted.
  std::vector<std::deque<std::pair<Time, int>>> pending_;  // [type] -> (arrival, socket)

  WindowedSeries series_[3] = {WindowedSeries(Seconds(1)), WindowedSeries(Seconds(1)),
                               WindowedSeries(Seconds(1))};
  LatencyRecorder latency_[3];
  int64_t completed_[3] = {0, 0, 0};
  int64_t offered_[3] = {0, 0, 0};
  int next_socket_ = 0;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_WORKLOADS_SEARCH_WORKLOAD_H_
