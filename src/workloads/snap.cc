#include "src/workloads/snap.h"

namespace gs {

SnapSystem::SnapSystem(Kernel* kernel, Options options)
    : kernel_(kernel), options_(options), rng_(options.seed) {
  engines_.resize(options_.num_engines);
  for (int e = 0; e < options_.num_engines; ++e) {
    engines_[e].task = kernel_->CreateTask("snap-engine/" + std::to_string(e));
    engines_tasks_.push_back(engines_[e].task);
  }
  const int num_flows = options_.num_small_flows + options_.num_large_flows;
  flows_.resize(num_flows);
  for (int f = 0; f < num_flows; ++f) {
    flows_[f].small = f < options_.num_small_flows;
    // Engine 0 polls the latency-sensitive small flows; copy-heavy large
    // flows share the remaining engines (Snap steers flows to engines by
    // load class). Concentrating the large flows is what pushes an engine
    // toward its MicroQuanta budget under bursts.
    if (flows_[f].small || options_.num_engines == 1) {
      flows_[f].engine = 0;
    } else {
      flows_[f].engine = 1 + (f - options_.num_small_flows) % (options_.num_engines - 1);
    }
    flows_[f].server = kernel_->CreateTask("snap-server/" + std::to_string(f));
    server_tasks_.push_back(flows_[f].server);
  }
}

void SnapSystem::Start(Time until) {
  until_ = until;
  for (int f = 0; f < static_cast<int>(flows_.size()); ++f) {
    ScheduleNextArrival(f);
  }
}

void SnapSystem::ScheduleNextArrival(int flow) {
  const double mean_gap = 1e9 / options_.msgs_per_sec_per_flow;
  const auto gap = std::max<Duration>(1, static_cast<Duration>(rng_.NextExponential(mean_gap)));
  if (kernel_->now() + gap > until_) {
    return;
  }
  kernel_->loop()->ScheduleAfter(gap, [this, flow] {
    Packet packet;
    packet.arrival = kernel_->now();
    packet.flow = flow;
    packet.reply = false;
    EnqueueToEngine(flows_[flow].engine, packet);
    ScheduleNextArrival(flow);
  });
}

void SnapSystem::EnqueueToEngine(int engine, Packet packet) {
  Engine& eng = engines_[engine];
  eng.queue.push_back(packet);
  if (eng.active) {
    return;  // the running chain will drain it
  }
  eng.active = true;
  const Packet& front = eng.queue.front();
  const Flow& flow = flows_[front.flow];
  const Duration cost = flow.small
                            ? (front.reply ? options_.small_tx : options_.small_rx)
                            : (front.reply ? options_.large_tx : options_.large_rx);
  kernel_->StartBurst(eng.task, cost, [this, engine](Task*) { EngineStep(engine); });
  kernel_->Wake(eng.task);
}

void SnapSystem::EngineStep(int engine) {
  Engine& eng = engines_[engine];
  CHECK(!eng.queue.empty());
  const Packet done = eng.queue.front();
  eng.queue.pop_front();
  if (done.reply) {
    Complete(done);
  } else {
    DeliverToServer(done);
  }

  if (eng.queue.empty()) {
    eng.active = false;
    kernel_->Block(eng.task);
    return;
  }
  const Packet& front = eng.queue.front();
  const Flow& flow = flows_[front.flow];
  const Duration cost = flow.small
                            ? (front.reply ? options_.small_tx : options_.small_rx)
                            : (front.reply ? options_.large_tx : options_.large_rx);
  kernel_->StartBurst(eng.task, cost, [this, engine](Task*) { EngineStep(engine); });
}

void SnapSystem::DeliverToServer(Packet packet) {
  Flow& flow = flows_[packet.flow];
  flow.inbox.push_back(packet);
  if (flow.server_active) {
    return;
  }
  flow.server_active = true;
  const Duration cost = flow.small ? options_.small_app : options_.large_app;
  const int f = packet.flow;
  kernel_->StartBurst(flow.server, cost, [this, f](Task*) { ServerStep(f); });
  kernel_->Wake(flow.server);
}

void SnapSystem::ServerStep(int f) {
  Flow& flow = flows_[f];
  CHECK(!flow.inbox.empty());
  Packet packet = flow.inbox.front();
  flow.inbox.pop_front();
  packet.reply = true;
  EnqueueToEngine(flow.engine, packet);

  if (flow.inbox.empty()) {
    flow.server_active = false;
    kernel_->Block(flow.server);
    return;
  }
  const Duration cost = flow.small ? options_.small_app : options_.large_app;
  kernel_->StartBurst(flow.server, cost, [this, f](Task*) { ServerStep(f); });
}

void SnapSystem::Complete(const Packet& packet) {
  const Duration rtt = kernel_->now() - packet.arrival + options_.wire_rtt;
  if (flows_[packet.flow].small) {
    small_latency_.Add(rtt);
  } else {
    large_latency_.Add(rtt);
  }
  ++completed_;
}

}  // namespace gs
