#include "src/workloads/vm_workload.h"

#include <algorithm>

namespace gs {

VmWorkload::VmWorkload(Kernel* kernel, Options options)
    : kernel_(kernel), options_(options) {
  for (int vm = 0; vm < options_.num_vms; ++vm) {
    for (int v = 0; v < options_.vcpus_per_vm; ++v) {
      Task* task = kernel_->CreateTask("vm" + std::to_string(vm) + "/vcpu" +
                                       std::to_string(v));
      vcpus_.push_back(task);
      remaining_.push_back(options_.work_per_vcpu);
      completions_.push_back(0);
    }
  }
}

int64_t VmWorkload::CookieOf(int64_t tid) const {
  for (size_t i = 0; i < vcpus_.size(); ++i) {
    if (vcpus_[i]->tid() == tid) {
      return static_cast<int64_t>(i) / options_.vcpus_per_vm + 1;
    }
  }
  return 0;
}

void VmWorkload::Start() {
  for (int i = 0; i < static_cast<int>(vcpus_.size()); ++i) {
    RunChunk(i);
    kernel_->Wake(vcpus_[i]);
  }
}

void VmWorkload::RunChunk(int index) {
  const Duration chunk = std::min(options_.chunk, remaining_[index]);
  kernel_->StartBurst(vcpus_[index], chunk, [this, index, chunk](Task* task) {
    remaining_[index] -= chunk;
    if (remaining_[index] <= 0) {
      ++completed_;
      completions_[index] = kernel_->now();
      finish_time_ = std::max(finish_time_, kernel_->now());
      kernel_->Exit(task);
      return;
    }
    RunChunk(index);
  });
}

bool VmWorkload::AllDone() const {
  return completed_ == static_cast<int>(vcpus_.size());
}

void VmWorkload::StartSecuritySampler(Duration period) {
  sampler_event_ =
      kernel_->loop()->SchedulePeriodic(period, period, [this] { Sample(); });
}

void VmWorkload::Sample() {
  const Topology& topo = kernel_->topology();
  for (int core = 0; core < topo.num_cores(); ++core) {
    const CpuMask cpus = topo.CoreMask(core);
    int64_t cookie = 0;
    bool conflict = false;
    for (int cpu = cpus.First(); cpu >= 0; cpu = cpus.NextAfter(cpu)) {
      const Task* current = kernel_->current(cpu);
      if (current == nullptr) {
        continue;
      }
      const int64_t c = CookieOf(current->tid());
      if (c == 0) {
        continue;  // not a vCPU
      }
      if (cookie == 0) {
        cookie = c;
      } else if (c != cookie) {
        conflict = true;
      }
    }
    if (conflict) {
      ++violations_;
    }
  }
  if (AllDone() && sampler_event_ != kInvalidEventId) {
    // Cancelling from inside the sampler's own callback stops the re-arm.
    kernel_->loop()->Cancel(sampler_event_);
    sampler_event_ = kInvalidEventId;
  }
}

}  // namespace gs
