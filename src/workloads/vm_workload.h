// Virtual-machine workload for the §4.5 / Table 4 experiment.
//
// 16 VMs x 2 vCPUs (32 vCPU threads) on 25 physical cores / 50 CPUs, running
// a bwaves-like CPU-bound computation: each vCPU must complete a fixed amount
// of CPU work; the benchmark reports aggregate rate (work/s, higher better)
// and total completion time (lower better), plus the count of observed
// cross-VM sibling co-residencies (the security property; must be 0 under
// core scheduling).
#ifndef GHOST_SIM_SRC_WORKLOADS_VM_WORKLOAD_H_
#define GHOST_SIM_SRC_WORKLOADS_VM_WORKLOAD_H_

#include <vector>

#include "src/kernel/kernel.h"

namespace gs {

class VmWorkload {
 public:
  struct Options {
    int num_vms = 16;
    int vcpus_per_vm = 2;
    // CPU demand per vCPU (bwaves runs for minutes on real hardware; scaled
    // down so relative rates are unchanged).
    Duration work_per_vcpu = Seconds(2);
    Duration chunk = Milliseconds(2);  // burst granularity
  };

  VmWorkload(Kernel* kernel, Options options);

  const std::vector<Task*>& vcpus() const { return vcpus_; }
  int64_t CookieOf(int64_t tid) const;  // VM id (1-based)

  void Start();

  bool AllDone() const;
  Time finish_time() const { return finish_time_; }
  int completed() const { return completed_; }
  // Per-vCPU completion times (0 if unfinished) — SPECrate-style metrics sum
  // per-copy rates.
  const std::vector<Time>& completions() const { return completions_; }

  // Starts a periodic security sampler: counts instants where sibling CPUs
  // run vCPUs of different VMs.
  void StartSecuritySampler(Duration period = Milliseconds(1));
  uint64_t coresidency_violations() const { return violations_; }

 private:
  void RunChunk(int index);
  void Sample();

  Kernel* kernel_;
  Options options_;
  std::vector<Task*> vcpus_;
  std::vector<Duration> remaining_;
  std::vector<Time> completions_;
  int completed_ = 0;
  Time finish_time_ = 0;
  uint64_t violations_ = 0;
  EventId sampler_event_ = kInvalidEventId;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_WORKLOADS_VM_WORKLOAD_H_
