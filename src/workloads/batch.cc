#include "src/workloads/batch.h"

#include <memory>

namespace gs {

BatchApp::BatchApp(Kernel* kernel, Options options) : kernel_(kernel), options_(options) {
  threads_.reserve(options_.num_threads);
  for (int i = 0; i < options_.num_threads; ++i) {
    threads_.push_back(
        kernel_->CreateTask(options_.name_prefix + "/" + std::to_string(i)));
  }
}

void BatchApp::Start() {
  for (Task* thread : threads_) {
    auto loop = std::make_shared<std::function<void(Task*)>>();
    Kernel* kernel = kernel_;
    const Duration chunk = options_.chunk;
    *loop = [kernel, chunk, loop](Task* t) { kernel->StartBurst(t, chunk, *loop); };
    kernel_->StartBurst(thread, options_.chunk, *loop);
    kernel_->Wake(thread);
  }
}

Duration BatchApp::TotalRuntime() const {
  Duration total = 0;
  for (const Task* thread : threads_) {
    total += thread->total_runtime();
  }
  return total;
}

double BatchApp::CpuShare(Time since, Time now, int num_cpus) const {
  const Duration window = now - since;
  if (window <= 0 || num_cpus <= 0) {
    return 0.0;
  }
  return static_cast<double>(RuntimeSinceMark()) /
         static_cast<double>(window * num_cpus);
}

void BatchApp::MarkWindow() { marked_runtime_ = TotalRuntime(); }

}  // namespace gs
