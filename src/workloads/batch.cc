#include "src/workloads/batch.h"

namespace gs {

namespace {

// Self-rearming spin: each burst completion schedules the next chunk. A plain
// recursive function beats the old shared_ptr<std::function> self-capture
// knot, which leaked (the closure owned itself) and heap-allocated per thread.
void SpinForever(Kernel* kernel, Task* task, Duration chunk) {
  kernel->StartBurst(task, chunk, [kernel, chunk](Task* t) {
    SpinForever(kernel, t, chunk);
  });
}

}  // namespace

BatchApp::BatchApp(Kernel* kernel, Options options) : kernel_(kernel), options_(options) {
  threads_.reserve(options_.num_threads);
  for (int i = 0; i < options_.num_threads; ++i) {
    threads_.push_back(
        kernel_->CreateTask(options_.name_prefix + "/" + std::to_string(i)));
  }
}

void BatchApp::Start() {
  for (Task* thread : threads_) {
    SpinForever(kernel_, thread, options_.chunk);
    kernel_->Wake(thread);
  }
}

Duration BatchApp::TotalRuntime() const {
  Duration total = 0;
  for (const Task* thread : threads_) {
    total += thread->total_runtime();
  }
  return total;
}

double BatchApp::CpuShare(Time since, Time now, int num_cpus) const {
  const Duration window = now - since;
  if (window <= 0 || num_cpus <= 0) {
    return 0.0;
  }
  return static_cast<double>(RuntimeSinceMark()) /
         static_cast<double>(window * num_cpus);
}

void BatchApp::MarkWindow() { marked_runtime_ = TotalRuntime(); }

}  // namespace gs
