#include "src/workloads/search_workload.h"

namespace gs {

SearchWorkload::SearchWorkload(Kernel* kernel, Options options)
    : kernel_(kernel), options_(options), rng_(options.seed) {
  const Topology& topo = kernel_->topology();
  const int sockets = topo.num_numa_nodes();
  free_a_.resize(sockets);
  pending_.resize(3);

  auto add_worker = [&](QueryType type, const std::string& name, int socket) {
    Worker w;
    w.task = kernel_->CreateTask(name);
    w.type = type;
    w.socket = socket;
    const int index = static_cast<int>(workers_.size());
    workers_.push_back(w);
    all_workers_.push_back(w.task);
    return index;
  };

  // A-workers: tied to the socket holding their query data (§4.4: the
  // cpumask travels in the THREAD_CREATED message).
  for (int socket = 0; socket < sockets; ++socket) {
    for (int i = 0; i < options_.a_workers_per_socket; ++i) {
      const int index = add_worker(
          kA, "search-a/" + std::to_string(socket) + "/" + std::to_string(i), socket);
      kernel_->SetAffinity(workers_[index].task, topo.NumaMask(socket));
      free_a_[socket].push_back(index);
    }
  }
  for (int i = 0; i < options_.b_workers; ++i) {
    free_b_.push_back(add_worker(kB, "search-b/" + std::to_string(i), -1));
  }
  for (int i = 0; i < options_.c_workers; ++i) {
    free_c_.push_back(add_worker(kC, "search-c/" + std::to_string(i), -1));
  }
}

void SearchWorkload::Start(Time until) {
  until_ = until;
  ScheduleArrival(kA);
  ScheduleArrival(kB);
  ScheduleArrival(kC);
}

void SearchWorkload::ScheduleArrival(QueryType type) {
  const double qps =
      type == kA ? options_.qps_a : (type == kB ? options_.qps_b : options_.qps_c);
  const auto gap =
      std::max<Duration>(1, static_cast<Duration>(rng_.NextExponential(1e9 / qps)));
  if (kernel_->now() + gap > until_) {
    return;
  }
  kernel_->loop()->ScheduleAfter(gap, [this, type] {
    ++offered_[type];
    int socket = -1;
    if (type == kA) {
      socket = next_socket_;
      next_socket_ = (next_socket_ + 1) % static_cast<int>(free_a_.size());
    }
    Dispatch(type, kernel_->now(), socket);
    ScheduleArrival(type);
  });
}

void SearchWorkload::Dispatch(QueryType type, Time arrival, int socket) {
  std::vector<int>* pool = nullptr;
  switch (type) {
    case kA:
      pool = &free_a_[socket];
      break;
    case kB:
      pool = &free_b_;
      break;
    case kC:
      pool = &free_c_;
      break;
  }
  if (pool->empty()) {
    pending_[type].push_back({arrival, socket});
    return;
  }
  const int index = pool->back();
  pool->pop_back();
  AssignQuery(index, arrival);
}

void SearchWorkload::AssignQuery(int worker_index, Time arrival) {
  Worker& w = workers_[worker_index];
  w.query_arrival = arrival;
  switch (w.type) {
    case kA:
      w.subqueries_left = options_.a_subqueries - 1;
      kernel_->StartBurst(w.task, options_.a_burst,
                          [this, worker_index](Task*) { AWorkerHop(worker_index); });
      break;
    case kB:
      kernel_->StartBurst(w.task, options_.b_compute,
                          [this, worker_index](Task*) { BWorkerSsd(worker_index); });
      break;
    case kC:
      kernel_->StartBurst(w.task, options_.c_burst,
                          [this, worker_index](Task*) { FinishQuery(worker_index); });
      break;
  }
  kernel_->Wake(w.task);
}

void SearchWorkload::AWorkerHop(int worker_index) {
  Worker& w = workers_[worker_index];
  if (w.subqueries_left <= 0) {
    FinishQuery(worker_index);
    return;
  }
  --w.subqueries_left;
  // Brief IPC gap (result exchange with the parent server thread), then the
  // next sub-query burst — a fresh wakeup the scheduler must place.
  kernel_->Block(w.task);
  kernel_->loop()->ScheduleAfter(options_.a_gap, [this, worker_index] {
    Worker& worker = workers_[worker_index];
    kernel_->StartBurst(worker.task, options_.a_burst,
                        [this, worker_index](Task*) { AWorkerHop(worker_index); });
    kernel_->Wake(worker.task);
  });
}

void SearchWorkload::BWorkerSsd(int worker_index) {
  Worker& w = workers_[worker_index];
  // Block for the SSD access, then the post-processing burst.
  kernel_->Block(w.task);
  kernel_->loop()->ScheduleAfter(options_.b_ssd, [this, worker_index] {
    Worker& worker = workers_[worker_index];
    kernel_->StartBurst(worker.task, options_.b_compute,
                        [this, worker_index](Task*) { FinishQuery(worker_index); });
    kernel_->Wake(worker.task);
  });
}

void SearchWorkload::FinishQuery(int worker_index) {
  Worker& w = workers_[worker_index];
  const Duration latency = kernel_->now() - w.query_arrival;
  latency_[w.type].Add(latency);
  series_[w.type].Add(kernel_->now(), latency);
  ++completed_[w.type];
  kernel_->Block(w.task);

  auto& backlog = pending_[w.type];
  if (!backlog.empty()) {
    // A-workers can only take queries for their own socket.
    if (w.type != kA) {
      auto [arrival, socket] = backlog.front();
      backlog.pop_front();
      kernel_->loop()->ScheduleAfter(Nanoseconds(500), [this, worker_index, arrival] {
        AssignQuery(worker_index, arrival);
      });
      return;
    }
    for (auto it = backlog.begin(); it != backlog.end(); ++it) {
      if (it->second == w.socket) {
        const Time arrival = it->first;
        backlog.erase(it);
        kernel_->loop()->ScheduleAfter(Nanoseconds(500), [this, worker_index, arrival] {
          AssignQuery(worker_index, arrival);
        });
        return;
      }
    }
  }
  switch (w.type) {
    case kA:
      free_a_[w.socket].push_back(worker_index);
      break;
    case kB:
      free_b_.push_back(worker_index);
      break;
    case kC:
      free_c_.push_back(worker_index);
      break;
  }
}

}  // namespace gs
