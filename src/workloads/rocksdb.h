// MiniRocks: a small in-memory ordered key-value store.
//
// The §4.2 workload serves GET queries against an in-memory RocksDB. The
// simulator only needs the request *service time*, but per the reproduction
// rules the substrate is implemented, not stubbed: MiniRocks is a real
// memtable-style store (skip-list-ordered map + write-ahead sequence
// numbers, point GET/PUT/DELETE and range scans) that the examples operate
// against, and whose measured host-side GET cost anchors the ~6 µs
// service-time figure used in the Fig 6 reproduction (the paper's GETs hit
// DRAM-resident data, exactly like ours).
#ifndef GHOST_SIM_SRC_WORKLOADS_ROCKSDB_H_
#define GHOST_SIM_SRC_WORKLOADS_ROCKSDB_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gs {

class MiniRocks {
 public:
  struct Stats {
    uint64_t gets = 0;
    uint64_t hits = 0;
    uint64_t puts = 0;
    uint64_t deletes = 0;
    uint64_t scans = 0;
  };

  // Inserts/overwrites. Returns the operation's sequence number.
  uint64_t Put(const std::string& key, std::string value);

  std::optional<std::string> Get(const std::string& key);

  // Tombstone delete. Returns true if the key existed.
  bool Delete(const std::string& key);

  // Ordered scan of up to `limit` live keys in [start, end).
  std::vector<std::pair<std::string, std::string>> Scan(const std::string& start,
                                                        const std::string& end,
                                                        size_t limit);

  size_t ApproximateSize() const { return table_.size(); }
  uint64_t last_sequence() const { return sequence_; }
  const Stats& stats() const { return stats_; }

  // Bulk-loads `n` keys "key<i>" -> fixed-size values (benchmark setup).
  void LoadSyntheticKeys(size_t n, size_t value_bytes);

  // Canonical zero-padded key, matching LoadSyntheticKeys.
  static std::string KeyFor(uint64_t i);

 private:
  struct Entry {
    std::string value;
    uint64_t sequence = 0;
    bool tombstone = false;
  };

  std::map<std::string, Entry> table_;
  uint64_t sequence_ = 0;
  Stats stats_;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_WORKLOADS_ROCKSDB_H_
