#include "src/workloads/rocksdb.h"

#include <cstdio>

namespace gs {

uint64_t MiniRocks::Put(const std::string& key, std::string value) {
  ++stats_.puts;
  Entry& entry = table_[key];
  entry.value = std::move(value);
  entry.sequence = ++sequence_;
  entry.tombstone = false;
  return entry.sequence;
}

std::optional<std::string> MiniRocks::Get(const std::string& key) {
  ++stats_.gets;
  auto it = table_.find(key);
  if (it == table_.end() || it->second.tombstone) {
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second.value;
}

bool MiniRocks::Delete(const std::string& key) {
  ++stats_.deletes;
  auto it = table_.find(key);
  if (it == table_.end() || it->second.tombstone) {
    return false;
  }
  it->second.tombstone = true;
  it->second.sequence = ++sequence_;
  return true;
}

std::vector<std::pair<std::string, std::string>> MiniRocks::Scan(const std::string& start,
                                                                 const std::string& end,
                                                                 size_t limit) {
  ++stats_.scans;
  std::vector<std::pair<std::string, std::string>> out;
  for (auto it = table_.lower_bound(start); it != table_.end() && it->first < end; ++it) {
    if (it->second.tombstone) {
      continue;
    }
    out.emplace_back(it->first, it->second.value);
    if (out.size() >= limit) {
      break;
    }
  }
  return out;
}

void MiniRocks::LoadSyntheticKeys(size_t n, size_t value_bytes) {
  const std::string value(value_bytes, 'v');
  for (size_t i = 0; i < n; ++i) {
    Put(KeyFor(i), value);
  }
}

std::string MiniRocks::KeyFor(uint64_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "key%012llu", static_cast<unsigned long long>(i));
  return buf;
}

}  // namespace gs
