#include "src/workloads/request_service.h"

namespace gs {

ThreadPoolServer::ThreadPoolServer(Kernel* kernel, Options options)
    : kernel_(kernel), options_(options) {
  workers_.reserve(options_.num_workers);
  active_.resize(options_.num_workers);
  for (int i = 0; i < options_.num_workers; ++i) {
    Task* worker =
        kernel_->CreateTask(options_.name_prefix + "/" + std::to_string(i));
    workers_.push_back(worker);
    free_.push_back(i);
  }
}

void ThreadPoolServer::Submit(Time arrival, Duration service, CompletionFn done) {
  if (!free_.empty()) {
    const int index = free_.back();
    free_.pop_back();
    Assign(index, Request{arrival, service, std::move(done)});
    return;
  }
  if (pending_.size() >= options_.max_pending) {
    ++dropped_;
    return;
  }
  pending_.push_back(Request{arrival, service, std::move(done)});
}

void ThreadPoolServer::Assign(int worker_index, Request request) {
  active_[worker_index] = std::move(request);
  StartActive(worker_index);
}

void ThreadPoolServer::StartActive(int worker_index) {
  Task* worker = workers_[worker_index];
  kernel_->StartBurst(worker, active_[worker_index].service,
                      [this, worker_index](Task*) { OnWorkerDone(worker_index); });
  kernel_->Wake(worker);
}

void ThreadPoolServer::OnWorkerDone(int worker_index) {
  Task* worker = workers_[worker_index];
  // Move the per-request callback out before the slot is reused.
  const CompletionFn done = std::move(active_[worker_index].done);
  const Request& request = active_[worker_index];
  const Duration latency = kernel_->now() - request.arrival;
  latency_.Add(latency);
  ++completed_;
  if (completion_hook_) {
    completion_hook_(kernel_->now(), latency);
  }
  if (done) {
    done(kernel_->now(), latency);
  }

  // The worker returns to the pool. Every request costs a fresh
  // block + wakeup, i.e. one scheduling decision per request (§4.2).
  kernel_->Block(worker);
  if (pending_.empty()) {
    free_.push_back(worker_index);
    return;
  }
  // Park the next request in the slot now; the deferred event only carries
  // the worker index (the Request — with its inline callback — never has to
  // squeeze into the event loop's inline storage).
  active_[worker_index] = std::move(pending_.front());
  pending_.pop_front();
  kernel_->loop()->ScheduleAfter(options_.dispatch_delay, [this, worker_index] {
    StartActive(worker_index);
  });
}

}  // namespace gs
