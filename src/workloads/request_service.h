// Open-loop request serving on a pool of native worker threads.
//
// The §4.2 experiment structure: a load generator produces Poisson request
// arrivals; each request occupies one worker thread from a pool (the paper
// uses 200 workers for ghOSt-Shinjuku) for its service time. Idle workers
// block; assigning a request wakes the worker, so *every request costs one
// thread-scheduling decision* — the overhead ghOSt pays relative to the
// Shinjuku dataplane's descriptor passing. The scheduler under test (ghOSt
// policy, CFS, MicroQuanta) is chosen by where the caller puts the worker
// tasks before starting load.
#ifndef GHOST_SIM_SRC_WORKLOADS_REQUEST_SERVICE_H_
#define GHOST_SIM_SRC_WORKLOADS_REQUEST_SERVICE_H_

#include <deque>
#include <functional>
#include <vector>

#include "src/base/inline_callback.h"
#include "src/base/rng.h"
#include "src/kernel/kernel.h"
#include "src/workloads/latency_recorder.h"

namespace gs {

// Samples per-request CPU demand.
class ServiceTimeModel {
 public:
  virtual ~ServiceTimeModel() = default;
  virtual Duration Sample(Rng& rng) = 0;
  virtual double MeanNs() const = 0;
};

// The Shinjuku paper's dispersive workload: mostly-short requests with a
// small fraction of very long ones (§4.2: 99.5% at ~short, 0.5% at 10 ms).
class BimodalServiceModel : public ServiceTimeModel {
 public:
  BimodalServiceModel(Duration short_service, Duration long_service, double p_long)
      : short_(short_service), long_(long_service), p_long_(p_long) {}

  Duration Sample(Rng& rng) override {
    return rng.NextBernoulli(p_long_) ? long_ : short_;
  }

  double MeanNs() const override {
    return (1.0 - p_long_) * static_cast<double>(short_) +
           p_long_ * static_cast<double>(long_);
  }

 private:
  Duration short_;
  Duration long_;
  double p_long_;
};

class FixedServiceModel : public ServiceTimeModel {
 public:
  explicit FixedServiceModel(Duration service) : service_(service) {}
  Duration Sample(Rng& rng) override { return service_; }
  double MeanNs() const override { return static_cast<double>(service_); }

 private:
  Duration service_;
};

class ExponentialServiceModel : public ServiceTimeModel {
 public:
  explicit ExponentialServiceModel(Duration mean) : mean_(mean) {}
  Duration Sample(Rng& rng) override {
    return std::max<Duration>(1, static_cast<Duration>(
                                     rng.NextExponential(static_cast<double>(mean_))));
  }
  double MeanNs() const override { return static_cast<double>(mean_); }

 private:
  Duration mean_;
};

class ThreadPoolServer {
 public:
  struct Options {
    int num_workers = 200;
    std::string name_prefix = "worker";
    // Dispatcher hand-off latency between a worker freeing up and the next
    // pending request being assigned to it.
    Duration dispatch_delay = Nanoseconds(500);
    // Cap on the pending queue; arrivals beyond it are dropped (counted).
    size_t max_pending = 1'000'000;
  };

  ThreadPoolServer(Kernel* kernel, Options options);

  // The worker tasks, for placement (enclave->AddTask, affinity, nice, ...).
  // Must be configured before the first Submit().
  const std::vector<Task*>& workers() const { return workers_; }

  // Per-request completion callback (fan-out joins, per-class latency).
  // InlineFunction: one of these travels with every request through the
  // pending queue and the active slots, so it must not malloc per request.
  using CompletionFn = InlineFunction<void(Time now, Duration latency)>;

  // Request arrival (open loop). Called at virtual time `arrival`. `done`,
  // when set, fires on this request's completion (after the recorder and the
  // global completion hook).
  void Submit(Time arrival, Duration service, CompletionFn done = nullptr);

  LatencyRecorder& latency() { return latency_; }
  // Called on each completion, if set (per-window series etc.).
  void set_completion_hook(std::function<void(Time now, Duration latency)> hook) {
    completion_hook_ = std::move(hook);
  }

  int64_t completed() const { return completed_; }
  int64_t dropped() const { return dropped_; }
  size_t pending() const { return pending_.size(); }
  int free_workers() const { return static_cast<int>(free_.size()); }

 private:
  struct Request {
    Time arrival = 0;
    Duration service = 0;
    CompletionFn done;
  };

  void Assign(int worker_index, Request request);
  // Starts the burst for the request already parked in active_[worker_index]
  // (split from Assign so the dispatch-delay event captures only the index,
  // never the move-only Request).
  void StartActive(int worker_index);
  void OnWorkerDone(int worker_index);

  Kernel* kernel_;
  Options options_;
  std::vector<Task*> workers_;
  std::vector<Request> active_;  // per worker
  std::vector<int> free_;
  std::deque<Request> pending_;
  LatencyRecorder latency_;
  std::function<void(Time, Duration)> completion_hook_;
  int64_t completed_ = 0;
  int64_t dropped_ = 0;
};

// Open-loop Poisson arrival generator feeding a sink.
class PoissonLoadGen {
 public:
  PoissonLoadGen(EventLoop* loop, ServiceTimeModel* model, double requests_per_sec,
                 uint64_t seed, std::function<void(Time, Duration)> sink)
      : loop_(loop),
        model_(model),
        mean_gap_ns_(1e9 / requests_per_sec),
        rng_(seed),
        sink_(std::move(sink)) {}

  // Generates arrivals in (now, until].
  void Start(Time until) {
    until_ = until;
    ScheduleNext();
  }

  int64_t generated() const { return generated_; }

 private:
  void ScheduleNext() {
    const auto gap = std::max<Duration>(
        1, static_cast<Duration>(rng_.NextExponential(mean_gap_ns_)));
    if (loop_->now() + gap > until_) {
      return;
    }
    loop_->ScheduleAfter(gap, [this] {
      ++generated_;
      sink_(loop_->now(), model_->Sample(rng_));
      ScheduleNext();
    });
  }

  EventLoop* loop_;
  ServiceTimeModel* model_;
  double mean_gap_ns_;
  Rng rng_;
  std::function<void(Time, Duration)> sink_;
  Time until_ = 0;
  int64_t generated_ = 0;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_WORKLOADS_REQUEST_SERVICE_H_
