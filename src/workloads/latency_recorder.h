// Latency recording: whole-run histograms plus windowed time series.
//
// LatencyRecorder backs the tail-latency curves (Fig 6, Fig 7);
// WindowedSeries backs the per-second QPS / p99 time series of Fig 8.
#ifndef GHOST_SIM_SRC_WORKLOADS_LATENCY_RECORDER_H_
#define GHOST_SIM_SRC_WORKLOADS_LATENCY_RECORDER_H_

#include <string>
#include <vector>

#include "src/base/histogram.h"
#include "src/base/time.h"

namespace gs {

class LatencyRecorder {
 public:
  void Add(Duration latency) { hist_.Add(latency); }
  int64_t count() const { return hist_.count(); }
  double MeanUs() const { return hist_.Mean() / 1e3; }
  double PercentileUs(double p) const {
    return static_cast<double>(hist_.Percentile(p)) / 1e3;
  }
  std::string Summary() const { return hist_.Summary(1000, "us"); }
  const Histogram& histogram() const { return hist_; }
  void Reset() { hist_.Reset(); }
  // Nanosecond-unit snapshot (same shape as Histogram::ToJson).
  std::string ToJson() const { return hist_.ToJson(); }

 private:
  Histogram hist_;
};

// Fixed-width time windows, each with its own histogram and count.
class WindowedSeries {
 public:
  explicit WindowedSeries(Duration window) : window_(window) {}

  void Add(Time now, Duration value) {
    Window& w = WindowAt(now);
    ++w.count;
    w.hist.Add(value);
  }

  void AddCount(Time now) { ++WindowAt(now).count; }

  int num_windows() const { return static_cast<int>(windows_.size()); }
  int64_t CountAt(int i) const { return windows_[i].count; }
  double RateAt(int i) const {
    return static_cast<double>(windows_[i].count) / ToSeconds(window_);
  }
  double PercentileUsAt(int i, double p) const {
    return static_cast<double>(windows_[i].hist.Percentile(p)) / 1e3;
  }

  // Array of per-window snapshots:
  //   [{"t_s": <window start, seconds>, "count": N, "rate_per_s": R,
  //     "hist": {...Histogram::ToJson...}}, ...]
  std::string ToJson() const;

 private:
  struct Window {
    int64_t count = 0;
    Histogram hist;
  };

  Window& WindowAt(Time now) {
    const size_t index = static_cast<size_t>(now / window_);
    while (windows_.size() <= index) {
      windows_.emplace_back();
    }
    return windows_[index];
  }

  Duration window_;
  std::vector<Window> windows_;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_WORKLOADS_LATENCY_RECORDER_H_
