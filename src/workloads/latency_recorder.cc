#include "src/workloads/latency_recorder.h"

// Header-only logic; this TU anchors the library target.
