#include "src/workloads/latency_recorder.h"

#include "src/base/json.h"

namespace gs {

std::string WindowedSeries::ToJson() const {
  JsonWriter w;
  w.BeginArray();
  for (size_t i = 0; i < windows_.size(); ++i) {
    w.BeginObject();
    w.KV("t_s", ToSeconds(window_) * static_cast<double>(i));
    w.KV("count", windows_[i].count);
    w.KV("rate_per_s", RateAt(static_cast<int>(i)));
    w.Key("hist");
    w.Raw(windows_[i].hist.ToJson());
    w.EndObject();
  }
  w.EndArray();
  return w.str();
}

}  // namespace gs
