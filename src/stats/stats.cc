#include "src/stats/stats.h"

#include <algorithm>

#include "src/base/json.h"
#include "src/base/logging.h"

namespace gs {

std::string StatsRegistry::FullName(const std::string& name, const Labels& labels) {
  if (labels.empty()) {
    return name;
  }
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string full = name + "{";
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) {
      full += ',';
    }
    full += sorted[i].first + "=" + sorted[i].second;
  }
  full += '}';
  return full;
}

Counter* StatsRegistry::GetCounter(const std::string& name, const Labels& labels) {
  const std::string full = FullName(name, labels);
  CHECK_EQ(gauges_.count(full), 0u) << full << " already registered as a gauge";
  CHECK_EQ(histograms_.count(full), 0u) << full << " already registered as a histogram";
  auto& slot = counters_[full];
  if (slot == nullptr) {
    slot.reset(new Counter(&enabled_));
  }
  return slot.get();
}

Gauge* StatsRegistry::GetGauge(const std::string& name, const Labels& labels) {
  const std::string full = FullName(name, labels);
  CHECK_EQ(counters_.count(full), 0u) << full << " already registered as a counter";
  CHECK_EQ(histograms_.count(full), 0u) << full << " already registered as a histogram";
  auto& slot = gauges_[full];
  if (slot == nullptr) {
    slot.reset(new Gauge(&enabled_));
  }
  return slot.get();
}

HistogramMetric* StatsRegistry::GetHistogram(const std::string& name,
                                             const Labels& labels) {
  const std::string full = FullName(name, labels);
  CHECK_EQ(counters_.count(full), 0u) << full << " already registered as a counter";
  CHECK_EQ(gauges_.count(full), 0u) << full << " already registered as a gauge";
  auto& slot = histograms_[full];
  if (slot == nullptr) {
    slot.reset(new HistogramMetric(&enabled_));
  }
  return slot.get();
}

void StatsRegistry::Reset() {
  for (auto& [name, counter] : counters_) {
    counter->value_ = 0;
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->value_ = 0;
  }
  for (auto& [name, hist] : histograms_) {
    hist->hist_.Reset();
  }
}

void StatsRegistry::MergeFrom(const StatsRegistry& other) {
  // Maps are keyed by full name, so metrics transfer without re-deriving
  // labels. Slots are created on demand with this registry's enabled flag.
  for (const auto& [full, counter] : other.counters_) {
    CHECK_EQ(gauges_.count(full), 0u) << full << " already registered as a gauge";
    CHECK_EQ(histograms_.count(full), 0u) << full << " already registered as a histogram";
    auto& slot = counters_[full];
    if (slot == nullptr) {
      slot.reset(new Counter(&enabled_));
    }
    slot->value_ += counter->value_;
  }
  for (const auto& [full, gauge] : other.gauges_) {
    CHECK_EQ(counters_.count(full), 0u) << full << " already registered as a counter";
    CHECK_EQ(histograms_.count(full), 0u) << full << " already registered as a histogram";
    auto& slot = gauges_[full];
    if (slot == nullptr) {
      slot.reset(new Gauge(&enabled_));
    }
    slot->value_ += gauge->value_;
  }
  for (const auto& [full, hist] : other.histograms_) {
    CHECK_EQ(counters_.count(full), 0u) << full << " already registered as a counter";
    CHECK_EQ(gauges_.count(full), 0u) << full << " already registered as a gauge";
    auto& slot = histograms_[full];
    if (slot == nullptr) {
      slot.reset(new HistogramMetric(&enabled_));
    }
    slot->hist_.Merge(hist->hist_);
  }
}

void StatsRegistry::AppendJson(JsonWriter& w) const {
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, counter] : counters_) {
    w.KV(name, counter->value());
  }
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    w.KV(name, gauge->value());
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, hist] : histograms_) {
    w.Key(name);
    w.Raw(hist->histogram().ToJson());
  }
  w.EndObject();
  w.EndObject();
}

std::string StatsRegistry::ToJson() const {
  JsonWriter w;
  AppendJson(w);
  return w.str();
}

}  // namespace gs
