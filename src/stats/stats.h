// Metrics registry: named counters, gauges, and histograms with label
// support, instrumented at the hot seams of the simulated stack.
//
// The paper's §2 argument is that userspace schedulers can finally be
// observed with ordinary tooling. This registry is the simulator's
// equivalent of /proc/schedstat + tracefs counters: the kernel, the ghOSt
// module, agents, policies, and the fault injector register metrics like
// `txn_commit_total{status=ESTALE}` once at construction and bump them on
// the hot path.
//
// Cost contract: metric updates are a pointer-chase plus a predictable
// branch on the registry's enabled flag — *zero side effects* and no
// allocation when disabled (the default). Lookup (`GetCounter` etc.) is a
// map operation intended for construction time only; hot paths must cache
// the returned pointer. Metric objects live as long as the registry and are
// never invalidated by later registrations.
//
// Ownership model: there is no process-wide registry. Every
// SimulationContext owns its registry and hands it to the components it
// constructs (Kernel -> Enclave/AgentProcess, FaultInjector), so independent
// simulations share nothing and can run on concurrent threads. A registry is
// single-threaded, like the context that owns it. Explicit `StatsRegistry*`
// injection is the only path — the transitional GlobalStats()/
// StatsRegistry::Global() shims are gone.
#ifndef GHOST_SIM_SRC_STATS_STATS_H_
#define GHOST_SIM_SRC_STATS_STATS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/base/histogram.h"

namespace gs {

class JsonWriter;
class StatsRegistry;

// Sorted key=value label set, e.g. {{"status", "ESTALE"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void Inc(int64_t n = 1) {
    if (*enabled_) {
      value_ += n;
    }
  }
  int64_t value() const { return value_; }

 private:
  friend class StatsRegistry;
  explicit Counter(const bool* enabled) : enabled_(enabled) {}
  const bool* enabled_;
  int64_t value_ = 0;
};

class Gauge {
 public:
  void Set(int64_t v) {
    if (*enabled_) {
      value_ = v;
    }
  }
  void Add(int64_t n) {
    if (*enabled_) {
      value_ += n;
    }
  }
  int64_t value() const { return value_; }

 private:
  friend class StatsRegistry;
  explicit Gauge(const bool* enabled) : enabled_(enabled) {}
  const bool* enabled_;
  int64_t value_ = 0;
};

// Distribution metric backed by the log-bucketed Histogram.
class HistogramMetric {
 public:
  void Observe(int64_t v) {
    if (*enabled_) {
      hist_.Add(v);
    }
  }
  const Histogram& histogram() const { return hist_; }

 private:
  friend class StatsRegistry;
  explicit HistogramMetric(const bool* enabled) : enabled_(enabled) {}
  const bool* enabled_;
  Histogram hist_;
};

class StatsRegistry {
 public:
  StatsRegistry() = default;
  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  void Enable() { enabled_ = true; }
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  // Returns the metric registered under `name` + `labels`, creating it on
  // first use. Repeated calls with the same name/labels return the same
  // object. A name must stay one kind (counter vs gauge vs histogram);
  // mixing kinds CHECK-fails.
  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  HistogramMetric* GetHistogram(const std::string& name, const Labels& labels = {});

  // Zeroes every metric value (registrations survive).
  void Reset();

  // Folds `other`'s values into this registry: counters/gauges add, histogram
  // buckets merge; metrics missing here are registered first. Used to
  // aggregate per-SimulationContext registries into a sweep-level one
  // (deterministic as long as merge order is deterministic).
  void MergeFrom(const StatsRegistry& other);

  // Deterministic snapshot of every registered metric:
  //   {"counters": {"name{k=v}": 123, ...},
  //    "gauges": {...},
  //    "histograms": {"name": {"count":..,"mean":..,"p50":..,...}, ...}}
  // Key order is sorted; two identical seeded runs produce identical bytes.
  std::string ToJson() const;
  // Same snapshot, spliced into an existing writer in value position.
  void AppendJson(JsonWriter& writer) const;

  // Fully-qualified metric key, e.g. `txn_commit_total{status=ESTALE}`.
  static std::string FullName(const std::string& name, const Labels& labels);

 private:
  bool enabled_ = false;
  // Stable addresses: values are unique_ptrs, maps are keyed by full name.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_STATS_STATS_H_
