// Minimal logging and assertion macros in the style of glog/absl.
//
// CHECK* macros abort on failure and are always on; they guard simulator
// invariants whose violation would silently corrupt an experiment. LOG(INFO)
// writes to stderr and can be silenced with SetLogLevel().
#ifndef GHOST_SIM_SRC_BASE_LOGGING_H_
#define GHOST_SIM_SRC_BASE_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace gs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

// Minimum level that is actually emitted. Defaults to kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace log_internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Consumes an ostream so that `CHECK(x) << "msg"` compiles in the passing case
// without evaluating the message.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace log_internal
}  // namespace gs

#define GS_LOG_LEVEL_DEBUG ::gs::LogLevel::kDebug
#define GS_LOG_LEVEL_INFO ::gs::LogLevel::kInfo
#define GS_LOG_LEVEL_WARNING ::gs::LogLevel::kWarning
#define GS_LOG_LEVEL_ERROR ::gs::LogLevel::kError
#define GS_LOG_LEVEL_FATAL ::gs::LogLevel::kFatal

#define LOG(severity)                                                             \
  ::gs::log_internal::LogMessage(GS_LOG_LEVEL_##severity, __FILE__, __LINE__).stream()

#define CHECK(cond)                                                     \
  (cond) ? (void)0                                                      \
         : ::gs::log_internal::Voidify() &                              \
               ::gs::log_internal::LogMessage(::gs::LogLevel::kFatal,   \
                                              __FILE__, __LINE__)       \
                   .stream()                                            \
               << "Check failed: " #cond " "

#define CHECK_OP(a, b, op) CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_EQ(a, b) CHECK_OP(a, b, ==)
#define CHECK_NE(a, b) CHECK_OP(a, b, !=)
#define CHECK_LT(a, b) CHECK_OP(a, b, <)
#define CHECK_LE(a, b) CHECK_OP(a, b, <=)
#define CHECK_GT(a, b) CHECK_OP(a, b, >)
#define CHECK_GE(a, b) CHECK_OP(a, b, >=)

// Debug-only checks for hot-path invariants: active in Debug builds (and the
// sanitizer CI jobs), compiled out under NDEBUG so per-event accessors cost
// nothing in benchmark builds. The condition is still compiled (no unused-
// variable surprises), just never evaluated.
#ifndef NDEBUG
#define DCHECK(cond) CHECK(cond)
#define DCHECK_EQ(a, b) CHECK_EQ(a, b)
#define DCHECK_NE(a, b) CHECK_NE(a, b)
#define DCHECK_LT(a, b) CHECK_LT(a, b)
#define DCHECK_LE(a, b) CHECK_LE(a, b)
#define DCHECK_GT(a, b) CHECK_GT(a, b)
#define DCHECK_GE(a, b) CHECK_GE(a, b)
#else
#define DCHECK(cond) \
  while (false) CHECK(cond)
#define DCHECK_EQ(a, b) DCHECK((a) == (b))
#define DCHECK_NE(a, b) DCHECK((a) != (b))
#define DCHECK_LT(a, b) DCHECK((a) < (b))
#define DCHECK_LE(a, b) DCHECK((a) <= (b))
#define DCHECK_GT(a, b) DCHECK((a) > (b))
#define DCHECK_GE(a, b) DCHECK((a) >= (b))
#endif

#endif  // GHOST_SIM_SRC_BASE_LOGGING_H_
