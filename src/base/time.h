// Virtual time for the simulated machine.
//
// All simulation timestamps and durations are integer nanoseconds. A plain
// int64_t is used (rather than std::chrono) so that times can be stored in
// shared-memory structures (status words, messages) and compared without any
// conversion; helper constructors keep call sites readable.
#ifndef GHOST_SIM_SRC_BASE_TIME_H_
#define GHOST_SIM_SRC_BASE_TIME_H_

#include <cstdint>

namespace gs {

// A point in virtual time, in nanoseconds since simulation start.
using Time = int64_t;
// A span of virtual time, in nanoseconds.
using Duration = int64_t;

inline constexpr Time kTimeNever = INT64_MAX;

constexpr Duration Nanoseconds(int64_t n) { return n; }
constexpr Duration Microseconds(int64_t n) { return n * 1'000; }
constexpr Duration Milliseconds(int64_t n) { return n * 1'000'000; }
constexpr Duration Seconds(int64_t n) { return n * 1'000'000'000; }

constexpr double ToSeconds(Duration d) { return static_cast<double>(d) * 1e-9; }
constexpr double ToMicros(Duration d) { return static_cast<double>(d) * 1e-3; }
constexpr double ToMillis(Duration d) { return static_cast<double>(d) * 1e-6; }

}  // namespace gs

#endif  // GHOST_SIM_SRC_BASE_TIME_H_
