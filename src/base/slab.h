// Slab<T>: a typed freelist slab allocator with generation-checked handles.
//
// The simulation's long-lived objects (Task, GhostTask, policy-side task
// state) are allocated and freed in the hot loop; going through the general
// heap for each one costs a malloc/free pair plus cache-hostile scatter.
// Slab<T> carves objects out of fixed-size chunks instead:
//
//  - O(1) New/Delete through an intrusive freelist; no per-object malloc
//    after a chunk is warm.
//  - Pointer stability: chunks are never moved or freed while the slab is
//    alive, so raw T* remains valid for the object's lifetime (the rest of
//    the tree keeps using plain pointers).
//  - Generation-checked handles, mirroring the event-loop slot slab (PR 3):
//    a Handle encodes (generation << 32) | slot index; Get() on a stale
//    handle (the slot was freed or reused) returns nullptr instead of a
//    dangling pointer. Use handles for references that may outlive the
//    object (deferred callbacks); use raw pointers inside an event where
//    liveness is already guaranteed.
//
// Not thread-safe: one slab belongs to one SimulationContext, like the event
// loop it mirrors.
#ifndef GHOST_SIM_SRC_BASE_SLAB_H_
#define GHOST_SIM_SRC_BASE_SLAB_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/base/logging.h"

namespace gs {

template <typename T>
class Slab {
 public:
  using Handle = uint64_t;
  static constexpr Handle kNullHandle = 0;

  Slab() = default;
  ~Slab() {
    // Live objects are destroyed here; the owner is expected to have freed
    // them already (Delete runs destructors), but tearing down a whole
    // simulation without per-object Delete calls is fine.
    for (auto& chunk : chunks_) {
      for (uint32_t i = 0; i < kChunkSlots; ++i) {
        Slot& slot = chunk->slots[i];
        if (slot.live) {
          Object(&slot)->~T();
        }
      }
    }
  }

  Slab(const Slab&) = delete;
  Slab& operator=(const Slab&) = delete;

  template <typename... Args>
  T* New(Args&&... args) {
    if (free_head_ == kNil) {
      Grow();
    }
    const uint32_t index = free_head_;
    Slot* slot = SlotAt(index);
    free_head_ = slot->next_free;
    slot->live = true;
    ++live_;
    T* obj = new (slot->storage) T(std::forward<Args>(args)...);
    return obj;
  }

  // Destroys the object and recycles its slot. The slot's generation is
  // bumped so outstanding handles to this object go stale.
  void Delete(T* obj) {
    Slot* slot = SlotOf(obj);
    DCHECK(slot->live) << "double free in Slab";
    Object(slot)->~T();
    slot->live = false;
    ++slot->generation;
    slot->next_free = free_head_;
    free_head_ = slot->index;
    --live_;
  }

  // A stable reference that survives the object's death: Get() on a handle
  // whose slot has been freed (or reused by a later New) returns nullptr.
  Handle HandleOf(const T* obj) const {
    const Slot* slot = SlotOf(obj);
    return (static_cast<Handle>(slot->generation) << 32) |
           (static_cast<Handle>(slot->index) + 1);
  }

  T* Get(Handle handle) const {
    if (handle == kNullHandle) {
      return nullptr;
    }
    const uint32_t index = static_cast<uint32_t>(handle & 0xffffffffu) - 1;
    const uint32_t generation = static_cast<uint32_t>(handle >> 32);
    if (index >= chunks_.size() * kChunkSlots) {
      return nullptr;
    }
    Slot* slot = SlotAt(index);
    if (!slot->live || slot->generation != generation) {
      return nullptr;
    }
    return Object(slot);
  }

  // Destroys every live object and rebuilds the freelist in index order, so
  // a cleared slab allocates in the same deterministic sequence as a fresh
  // one. Chunks are retained (warm for the next phase, e.g. a TaskDump
  // resync repopulating a policy table).
  void Clear() {
    for (auto& chunk : chunks_) {
      for (uint32_t i = 0; i < kChunkSlots; ++i) {
        Slot& slot = chunk->slots[i];
        if (slot.live) {
          Object(&slot)->~T();
          slot.live = false;
          ++slot.generation;
        }
      }
    }
    live_ = 0;
    free_head_ = kNil;
    for (size_t c = chunks_.size(); c-- > 0;) {
      Chunk* chunk = chunks_[c].get();
      for (uint32_t i = kChunkSlots; i-- > 0;) {
        chunk->slots[i].next_free = free_head_;
        free_head_ = chunk->slots[i].index;
      }
    }
  }

  size_t live() const { return live_; }
  size_t capacity() const { return chunks_.size() * kChunkSlots; }

 private:
  // 256 objects per chunk: big enough to amortize the chunk malloc to noise,
  // small enough that sparse slabs don't waste memory.
  static constexpr uint32_t kChunkSlots = 256;
  static constexpr uint32_t kNil = 0xffffffffu;

  struct Slot {
    alignas(T) unsigned char storage[sizeof(T)];
    uint32_t index = 0;       // global slot index (chunk * kChunkSlots + i)
    uint32_t generation = 0;  // bumped on free
    uint32_t next_free = kNil;
    bool live = false;
  };

  struct Chunk {
    Slot slots[kChunkSlots];
  };

  static T* Object(Slot* slot) {
    return std::launder(reinterpret_cast<T*>(slot->storage));
  }
  static const T* Object(const Slot* slot) {
    return std::launder(reinterpret_cast<const T*>(slot->storage));
  }
  // storage is at offset 0, so the object pointer *is* the slot pointer.
  static Slot* SlotOf(const T* obj) {
    static_assert(offsetof(Slot, storage) == 0, "storage must lead the slot");
    return reinterpret_cast<Slot*>(
        const_cast<unsigned char*>(reinterpret_cast<const unsigned char*>(obj)));
  }

  Slot* SlotAt(uint32_t index) const {
    return &chunks_[index / kChunkSlots]->slots[index % kChunkSlots];
  }

  void Grow() {
    const uint32_t base = static_cast<uint32_t>(chunks_.size()) * kChunkSlots;
    CHECK(chunks_.size() < (1u << 24)) << "Slab exhausted its 32-bit index space";
    chunks_.push_back(std::make_unique<Chunk>());
    Chunk* chunk = chunks_.back().get();
    // Thread the fresh slots onto the freelist in index order so allocation
    // order (and therefore object addresses) is deterministic.
    for (uint32_t i = 0; i < kChunkSlots; ++i) {
      Slot& slot = chunk->slots[i];
      slot.index = base + i;
      slot.next_free = (i + 1 < kChunkSlots) ? base + i + 1 : free_head_;
    }
    free_head_ = base;
  }

  std::vector<std::unique_ptr<Chunk>> chunks_;
  uint32_t free_head_ = kNil;
  size_t live_ = 0;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_BASE_SLAB_H_
