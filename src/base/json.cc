#include "src/base/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace gs {

// ---- Writer ---------------------------------------------------------------------

std::string JsonWriter::Escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (first_.back()) {
      first_.back() = false;
    } else {
      out_ += ',';
    }
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  first_.push_back(true);
}

void JsonWriter::EndObject() {
  first_.pop_back();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  first_.push_back(true);
}

void JsonWriter::EndArray() {
  first_.pop_back();
  out_ += ']';
}

void JsonWriter::Key(std::string_view key) {
  if (!first_.empty()) {
    if (first_.back()) {
      first_.back() = false;
    } else {
      out_ += ',';
    }
  }
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  // Integral doubles print without a fraction; everything else with enough
  // digits to round-trip typical metric values deterministically.
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      std::abs(value) < 1e15) {
    out_ += std::to_string(static_cast<int64_t>(value));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

void JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_ += json;
}

// ---- Parser ---------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> Run() {
    SkipSpace();
    JsonValue value;
    if (!ParseValue(&value)) {
      return std::nullopt;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      Fail("trailing garbage after document");
      return std::nullopt;
    }
    return value;
  }

  // First recorded failure, as "line L:C: reason". Empty if Run() succeeded.
  std::string error() const {
    if (error_reason_.empty()) {
      return "";
    }
    size_t line = 1, col = 1;
    for (size_t i = 0; i < error_pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return "line " + std::to_string(line) + ":" + std::to_string(col) + ": " +
           error_reason_;
  }

 private:
  // Records the first failure (inner-most parse frames fail first, and their
  // position is the interesting one).
  bool Fail(const char* reason) {
    if (error_reason_.empty()) {
      error_reason_ = reason;
      error_pos_ = pos_;
    }
    return false;
  }
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input, expected a value");
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return Literal("true") || Fail("bad literal, expected \"true\"");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return Literal("false") || Fail("bad literal, expected \"false\"");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return Literal("null") || Fail("bad literal, expected \"null\"");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    if (!Eat('{')) {
      return false;
    }
    SkipSpace();
    if (Eat('}')) {
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) {
        return Fail("expected a quoted object key");
      }
      SkipSpace();
      if (!Eat(':')) {
        return Fail("expected ':' after object key");
      }
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->object.emplace(std::move(key), std::move(value));
      SkipSpace();
      if (Eat('}')) {
        return true;
      }
      if (!Eat(',')) {
        return Fail("expected ',' or '}' in object");
      }
    }
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    if (!Eat('[')) {
      return false;
    }
    SkipSpace();
    if (Eat(']')) {
      return true;
    }
    while (true) {
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->array.push_back(std::move(value));
      SkipSpace();
      if (Eat(']')) {
        return true;
      }
      if (!Eat(',')) {
        return Fail("expected ',' or ']' in array");
      }
    }
  }

  bool ParseString(std::string* out) {
    if (!Eat('"')) {
      return false;
    }
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        return false;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return false;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= h - '0';
            } else if (h >= 'a' && h <= 'f') {
              code |= h - 'a' + 10;
            } else if (h >= 'A' && h <= 'F') {
              code |= h - 'A' + 10;
            } else {
              return false;
            }
          }
          // Non-ASCII escapes are preserved as UTF-8 (2/3-byte forms).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xc0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            *out += static_cast<char>(0xe0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            *out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          return Fail("bad escape sequence in string");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected a value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out->number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      return Fail("malformed number");
    }
    out->type = JsonValue::Type::kNumber;
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_reason_;
  size_t error_pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) {
    return nullptr;
  }
  auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

std::optional<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).Run();
}

std::optional<JsonValue> JsonValue::Parse(std::string_view text, std::string* error) {
  Parser parser(text);
  std::optional<JsonValue> value = parser.Run();
  if (!value.has_value() && error != nullptr) {
    *error = parser.error();
  }
  return value;
}

}  // namespace gs
