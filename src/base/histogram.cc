#include "src/base/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "src/base/json.h"
#include "src/base/logging.h"

namespace gs {

Histogram::Histogram() : buckets_(NumBuckets(), 0) { Reset(); }

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = INT64_MAX;
  max_ = INT64_MIN;
}

int Histogram::BucketIndex(int64_t value) {
  if (value < 0) {
    value = 0;
  }
  if (value < kLinearBuckets) {
    return static_cast<int>(value);  // exact buckets 0..63
  }
  const int msb = 63 - std::countl_zero(static_cast<uint64_t>(value));
  // Log range r >= 1 covers values with msb == kSubBucketBits + r, i.e.
  // [kSubBuckets << r, kSubBuckets << (r+1)); within it, `value >> r` is in
  // [kSubBuckets, 2*kSubBuckets) — strip the implied leading bit for the
  // sub-bucket.
  const int range = msb - kSubBucketBits;  // >= 1 since value >= kLinearBuckets
  const int sub = static_cast<int>(value >> range) - kSubBuckets;
  int index = kLinearBuckets + (range - 1) * kSubBuckets + sub;
  if (index >= NumBuckets()) {
    index = NumBuckets() - 1;
  }
  return index;
}

int64_t Histogram::BucketValue(int index) {
  if (index < kLinearBuckets) {
    return index;
  }
  const int range = (index - kLinearBuckets) / kSubBuckets + 1;
  const int sub = (index - kLinearBuckets) % kSubBuckets;
  // Top of the bucket (conservative: Percentile() never under-reports). The
  // bucket covers [(kSubBuckets+sub) << range, (kSubBuckets+sub+1) << range).
  return ((static_cast<int64_t>(kSubBuckets + sub + 1)) << range) - 1;
}

void Histogram::Add(int64_t value) {
  buckets_[BucketIndex(value)]++;
  count_++;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  CHECK_EQ(buckets_.size(), other.buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

int64_t Histogram::Percentile(double percentile) const {
  if (count_ == 0) {
    return 0;
  }
  if (percentile <= 0) {
    return min_;
  }
  if (percentile >= 100) {
    return max_;
  }
  const double target = percentile / 100.0 * static_cast<double>(count_);
  int64_t running = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    running += buckets_[i];
    if (static_cast<double>(running) >= target) {
      return std::min(BucketValue(static_cast<int>(i)), max_);
    }
  }
  return max_;
}

std::string Histogram::Summary(int64_t unit_divisor, const std::string& unit) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%lld p50=%.1f%s p90=%.1f%s p99=%.1f%s p99.9=%.1f%s p99.99=%.1f%s max=%.1f%s",
                static_cast<long long>(count_),
                static_cast<double>(Percentile(50)) / static_cast<double>(unit_divisor),
                unit.c_str(),
                static_cast<double>(Percentile(90)) / static_cast<double>(unit_divisor),
                unit.c_str(),
                static_cast<double>(Percentile(99)) / static_cast<double>(unit_divisor),
                unit.c_str(),
                static_cast<double>(Percentile(99.9)) / static_cast<double>(unit_divisor),
                unit.c_str(),
                static_cast<double>(Percentile(99.99)) / static_cast<double>(unit_divisor),
                unit.c_str(),
                static_cast<double>(max()) / static_cast<double>(unit_divisor), unit.c_str());
  return buf;
}

std::string Histogram::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.KV("count", count_);
  w.KV("min", min());
  w.KV("max", max());
  w.KV("mean", Mean());
  w.KV("p50", Percentile(50));
  w.KV("p90", Percentile(90));
  w.KV("p99", Percentile(99));
  w.KV("p99.9", Percentile(99.9));
  w.KV("p99.99", Percentile(99.99));
  w.EndObject();
  return w.str();
}

}  // namespace gs
