// Minimal JSON support: a streaming writer and a small recursive-descent
// parser.
//
// The observability layer (stats snapshots, Chrome-trace export, bench
// harness result files) emits machine-readable JSON; the parser exists so
// tests and the bench-result validator can round-trip what we emit without
// an external dependency. This is not a general-purpose JSON library: the
// writer produces deterministic, compact output and the parser accepts
// strict RFC 8259 JSON (no comments, no trailing commas).
#ifndef GHOST_SIM_SRC_BASE_JSON_H_
#define GHOST_SIM_SRC_BASE_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gs {

// Streaming JSON writer with automatic comma/nesting management.
// Usage:
//   JsonWriter w;
//   w.BeginObject();
//   w.Key("name"); w.String("fig6");
//   w.Key("rows"); w.BeginArray(); w.Double(1.5); w.EndArray();
//   w.EndObject();
//   std::string out = w.str();
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(int64_t value);
  void UInt(uint64_t value);
  // Non-finite doubles are emitted as null (JSON has no NaN/Inf).
  void Double(double value);
  void Bool(bool value);
  void Null();

  // Convenience key/value pairs.
  void KV(std::string_view key, std::string_view value) { Key(key); String(value); }
  void KV(std::string_view key, const char* value) { Key(key); String(value); }
  void KV(std::string_view key, int64_t value) { Key(key); Int(value); }
  void KV(std::string_view key, uint64_t value) { Key(key); UInt(value); }
  void KV(std::string_view key, int value) { Key(key); Int(value); }
  void KV(std::string_view key, double value) { Key(key); Double(value); }
  void KV(std::string_view key, bool value) { Key(key); Bool(value); }

  // Splices a pre-rendered JSON value (e.g. Histogram::ToJson()) in value
  // position. The caller guarantees `json` is valid JSON.
  void Raw(std::string_view json);

  const std::string& str() const { return out_; }

  static std::string Escape(std::string_view raw);

 private:
  void BeforeValue();

  std::string out_;
  // One entry per open container: true until the first element is written.
  std::vector<bool> first_;
  bool pending_key_ = false;
};

// Parsed JSON value. Object keys are kept in a std::map: iteration order is
// deterministic (sorted), which the tests rely on.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  // Object member lookup; nullptr if absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  // Parses a complete JSON document (surrounding whitespace allowed).
  // nullopt on any syntax error or trailing garbage.
  static std::optional<JsonValue> Parse(std::string_view text);

  // As above; on failure `*error` receives a one-line description with the
  // 1-based line:column of the first offending byte (e.g. "line 3:14:
  // expected ':' after object key"). The scenario loader surfaces these
  // verbatim, so they are written for humans editing config files.
  static std::optional<JsonValue> Parse(std::string_view text, std::string* error);
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_BASE_JSON_H_
