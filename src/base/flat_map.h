// TidMap<V>: an open-addressing hash map from non-negative int64 ids (thread
// ids, CPU ids) to small values (pointers), tuned for the simulation hot loop.
//
// std::map's red-black tree costs a pointer chase per level on every Find;
// the enclave and policy task tables do tens of millions of lookups per
// bench run. TidMap does one mixed hash plus a short linear probe over a
// contiguous array — typically a single cache line.
//
// Deliberately minimal: keys must be >= 0 (negative keys are reserved as
// empty markers), erase uses backward-shift deletion (no tombstones), and
// iteration order is unspecified — callers that need deterministic order
// keep a sorted side vector (see Enclave::tasks_by_tid_).
#ifndef GHOST_SIM_SRC_BASE_FLAT_MAP_H_
#define GHOST_SIM_SRC_BASE_FLAT_MAP_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/base/logging.h"

namespace gs {

template <typename V>
class TidMap {
 public:
  TidMap() { Rehash(kMinCapacity); }

  void Insert(int64_t key, V value) {
    DCHECK(key >= 0) << "TidMap keys must be non-negative";
    if ((size_ + 1) * 4 >= capacity_ * 3) {
      Rehash(capacity_ * 2);
    }
    size_t i = IndexFor(key);
    while (keys_[i] >= 0) {
      if (keys_[i] == key) {
        values_[i] = std::move(value);
        return;
      }
      i = (i + 1) & mask_;
    }
    keys_[i] = key;
    values_[i] = std::move(value);
    ++size_;
  }

  // Returns nullptr-equivalent (default V) semantics via pointer-to-slot:
  // Find returns a pointer to the stored value, or nullptr if absent.
  V* Find(int64_t key) {
    size_t i = IndexFor(key);
    while (keys_[i] >= 0) {
      if (keys_[i] == key) {
        return &values_[i];
      }
      i = (i + 1) & mask_;
    }
    return nullptr;
  }
  const V* Find(int64_t key) const {
    return const_cast<TidMap*>(this)->Find(key);
  }

  bool Erase(int64_t key) {
    size_t i = IndexFor(key);
    while (keys_[i] >= 0) {
      if (keys_[i] == key) {
        RemoveAt(i);
        return true;
      }
      i = (i + 1) & mask_;
    }
    return false;
  }

  void Clear() {
    std::fill(keys_.begin(), keys_.end(), kEmpty);
    size_ = 0;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Visits every (key, value) pair in unspecified order. Callers needing
  // deterministic order must collect and sort the keys (see the header note).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] >= 0) {
        fn(keys_[i], values_[i]);
      }
    }
  }

 private:
  static constexpr size_t kMinCapacity = 16;
  static constexpr int64_t kEmpty = -1;

  static uint64_t Mix(uint64_t x) {
    // splitmix64 finalizer: cheap and well-distributed for sequential tids.
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  size_t IndexFor(int64_t key) const {
    return static_cast<size_t>(Mix(static_cast<uint64_t>(key))) & mask_;
  }

  void RemoveAt(size_t hole) {
    // Backward-shift deletion keeps probe chains contiguous without
    // tombstones (which would degrade probes over a long run's churn).
    size_t i = hole;
    while (true) {
      i = (i + 1) & mask_;
      if (keys_[i] < 0) {
        break;
      }
      const size_t home = IndexFor(keys_[i]);
      // Move slot i into the hole if its home position does not sit
      // (cyclically) after the hole — i.e. the probe chain would break.
      const bool movable = ((i - home) & mask_) >= ((i - hole) & mask_);
      if (movable) {
        keys_[hole] = keys_[i];
        values_[hole] = std::move(values_[i]);
        hole = i;
      }
    }
    keys_[hole] = kEmpty;
    --size_;
  }

  void Rehash(size_t new_capacity) {
    std::vector<int64_t> old_keys = std::move(keys_);
    std::vector<V> old_values = std::move(values_);
    capacity_ = new_capacity;
    mask_ = capacity_ - 1;
    keys_.assign(capacity_, kEmpty);
    values_.assign(capacity_, V{});
    size_ = 0;
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] >= 0) {
        Insert(old_keys[i], std::move(old_values[i]));
      }
    }
  }

  std::vector<int64_t> keys_;
  std::vector<V> values_;
  size_t capacity_ = 0;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_BASE_FLAT_MAP_H_
