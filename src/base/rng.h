// Deterministic random number generation for experiments.
//
// xoshiro256** (Blackman & Vigna) — fast, high quality, and trivially
// seedable, so every benchmark run is reproducible from a single uint64 seed.
// Distribution helpers cover what the workload generators need: uniform,
// exponential (Poisson inter-arrival times), and Bernoulli.
#ifndef GHOST_SIM_SRC_BASE_RNG_H_
#define GHOST_SIM_SRC_BASE_RNG_H_

#include <cmath>
#include <cstdint>

#include "src/base/logging.h"

namespace gs {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  // Re-seeds the generator. Uses splitmix64 to expand the seed into the full
  // 256-bit state, per the xoshiro authors' recommendation.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    CHECK_GT(bound, 0u);
    // Lemire's multiply-shift rejection-free approximation is fine here: the
    // slight modulo bias at 64-bit range is irrelevant for workload sampling.
    return static_cast<uint64_t>((static_cast<__uint128_t>(Next()) * bound) >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  bool NextBernoulli(double p) { return NextDouble() < p; }

  // Exponentially distributed value with the given mean (for Poisson
  // processes: mean inter-arrival time).
  double NextExponential(double mean) {
    double u = NextDouble();
    // Guard against log(0).
    if (u >= 1.0) {
      u = 0.9999999999999999;
    }
    return -mean * std::log1p(-u);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_BASE_RNG_H_
