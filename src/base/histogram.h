// Log-bucketed latency histogram with percentile queries.
//
// HDR-histogram style: values are bucketed with a fixed number of linear
// sub-buckets per power-of-two range, giving a bounded relative error
// (~1/kSubBuckets) across many orders of magnitude while using O(1) memory
// per recorded value. This is what the latency-percentile figures (Fig 6, 7)
// are computed from.
#ifndef GHOST_SIM_SRC_BASE_HISTOGRAM_H_
#define GHOST_SIM_SRC_BASE_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gs {

class Histogram {
 public:
  Histogram();

  void Add(int64_t value);
  void Merge(const Histogram& other);
  void Reset();

  int64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double Mean() const;

  // Returns the smallest recorded bucket value v such that at least
  // `percentile` percent of samples are <= v. `percentile` in [0, 100].
  int64_t Percentile(double percentile) const;

  // "p50=12us p99=340us ..." summary for logs; values scaled by `unit_divisor`
  // and suffixed with `unit` (e.g. 1000, "us" for nanosecond inputs).
  std::string Summary(int64_t unit_divisor, const std::string& unit) const;

  // Machine-readable counterpart of Summary(): a JSON object
  //   {"count":N,"min":..,"max":..,"mean":..,"p50":..,"p90":..,"p99":..,
  //    "p99.9":..,"p99.99":..}
  // in the histogram's native unit. Deterministic byte-for-byte for equal
  // recorded distributions.
  std::string ToJson() const;

 private:
  // Values 0..63 get exact buckets; beyond that, each power-of-two range is
  // split into 32 sub-buckets (~3% max relative error).
  static constexpr int kSubBucketBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kLinearBuckets = 2 * kSubBuckets;  // exact buckets 0..63
  // Log ranges 1..57 cover msb 6..62, i.e. every positive int64.
  static constexpr int NumBuckets() {
    return kLinearBuckets + (62 - kSubBucketBits) * kSubBuckets;
  }

  static int BucketIndex(int64_t value);
  static int64_t BucketValue(int index);

  std::vector<int64_t> buckets_;
  int64_t count_;
  int64_t sum_;
  int64_t min_;
  int64_t max_;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_BASE_HISTOGRAM_H_
