// RingDeque<T>: a growable power-of-2 ring buffer with deque semantics.
//
// std::deque allocates its elements in heap blocks (~512B each in libstdc++)
// and frees them as the queue drains, so a runqueue that oscillates around
// empty — the common case for per-CPU queues — pays a malloc/free pair per
// oscillation plus a double indirection per access. RingDeque keeps one flat
// power-of-2 array that only ever grows, so steady-state push/pop is
// index arithmetic on contiguous memory.
#ifndef GHOST_SIM_SRC_BASE_RING_DEQUE_H_
#define GHOST_SIM_SRC_BASE_RING_DEQUE_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "src/base/logging.h"

namespace gs {

template <typename T>
class RingDeque {
 public:
  RingDeque() = default;

  void push_back(T value) {
    GrowIfFull();
    slots_[(head_ + size_) & mask_] = std::move(value);
    ++size_;
  }

  void push_front(T value) {
    GrowIfFull();
    head_ = (head_ + mask_) & mask_;  // head - 1, wrapped
    slots_[head_] = std::move(value);
    ++size_;
  }

  void pop_front() {
    DCHECK(size_ > 0);
    slots_[head_] = T{};
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  void pop_back() {
    DCHECK(size_ > 0);
    slots_[(head_ + size_ - 1) & mask_] = T{};
    --size_;
  }

  T& front() {
    DCHECK(size_ > 0);
    return slots_[head_];
  }
  const T& front() const {
    DCHECK(size_ > 0);
    return slots_[head_];
  }
  T& back() {
    DCHECK(size_ > 0);
    return slots_[(head_ + size_ - 1) & mask_];
  }
  const T& back() const {
    DCHECK(size_ > 0);
    return slots_[(head_ + size_ - 1) & mask_];
  }

  T& operator[](size_t i) {
    DCHECK(i < size_);
    return slots_[(head_ + i) & mask_];
  }
  const T& operator[](size_t i) const {
    DCHECK(i < size_);
    return slots_[(head_ + i) & mask_];
  }

  // Removes the element at logical index i, preserving relative order of the
  // rest (shifts the shorter side). O(n) — used for rare mid-queue removals
  // (task death while queued), not hot-path pops.
  void erase_at(size_t i) {
    DCHECK(i < size_);
    if (i < size_ - i - 1) {
      for (size_t j = i; j > 0; --j) {
        (*this)[j] = std::move((*this)[j - 1]);
      }
      pop_front();
    } else {
      for (size_t j = i; j + 1 < size_; ++j) {
        (*this)[j] = std::move((*this)[j + 1]);
      }
      pop_back();
    }
  }

  // Removes the first element equal to `value`; returns whether one was found.
  bool remove(const T& value) {
    for (size_t i = 0; i < size_; ++i) {
      if ((*this)[i] == value) {
        erase_at(i);
        return true;
      }
    }
    return false;
  }

  void clear() {
    for (size_t i = 0; i < size_; ++i) {
      slots_[(head_ + i) & mask_] = T{};
    }
    head_ = 0;
    size_ = 0;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Just enough iterator to support range-for, std::find, and erase(it).
  template <typename Deque, typename Ref>
  class Iter {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = std::remove_reference_t<Ref>*;
    using reference = Ref;

    Iter(Deque* dq, size_t i) : dq_(dq), i_(i) {}
    Ref operator*() const { return (*dq_)[i_]; }
    Iter& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const Iter& other) const { return i_ == other.i_; }
    bool operator!=(const Iter& other) const { return i_ != other.i_; }
    size_t index() const { return i_; }

   private:
    Deque* dq_;
    size_t i_;
  };
  using iterator = Iter<RingDeque, T&>;
  using const_iterator = Iter<const RingDeque, const T&>;

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, size_); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size_); }

  iterator erase(iterator it) {
    erase_at(it.index());
    return iterator(this, it.index());
  }

 private:
  void GrowIfFull() {
    if (size_ < slots_.size()) {
      return;
    }
    const size_t new_capacity = slots_.empty() ? 8 : slots_.size() * 2;
    std::vector<T> grown(new_capacity);
    for (size_t i = 0; i < size_; ++i) {
      grown[i] = std::move(slots_[(head_ + i) & mask_]);
    }
    slots_ = std::move(grown);
    head_ = 0;
    mask_ = new_capacity - 1;
  }

  std::vector<T> slots_;
  size_t head_ = 0;
  size_t size_ = 0;
  size_t mask_ = 0;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_BASE_RING_DEQUE_H_
