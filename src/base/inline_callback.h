// InlineCallback: a move-only, type-erased `void()` callable with fixed
// inline storage and NO heap fallback.
//
// The discrete-event engine dispatches hundreds of millions of callbacks per
// run; wrapping each capture in a std::function means a heap allocation for
// anything larger than the (small) libstdc++ SBO buffer, plus a pointer chase
// on every invoke. InlineCallback stores the callable directly in the event
// slot instead. Oversized captures are a *compile error* — the static_assert
// below is the proof that no schedule site in the tree allocates. If you hit
// it, either shrink the capture (capture a pointer to long-lived state rather
// than copies) or, as a last resort, bump kCapacity.
#ifndef GHOST_SIM_SRC_BASE_INLINE_CALLBACK_H_
#define GHOST_SIM_SRC_BASE_INLINE_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace gs {

class InlineCallback {
 public:
  // Sized to cover the largest capture in the tree (the fuzz-test chaos
  // lambda, 10 captured words) with a little headroom.
  static constexpr size_t kCapacity = 96;

  InlineCallback() = default;

  // Implicit so every existing `loop->ScheduleAfter(d, [..] {...})` call site
  // keeps working unchanged.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback>>>
  InlineCallback(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kCapacity,
                  "capture too large for InlineCallback inline storage: "
                  "capture pointers to long-lived state instead of copies, "
                  "or bump InlineCallback::kCapacity");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned capture not supported");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "callable must be nothrow-move-constructible (event slots "
                  "move when the slab grows)");
    new (storage_) Fn(std::forward<F>(fn));
    invoke_ = &InvokeImpl<Fn>;
    manage_ = &ManageImpl<Fn>;
  }

  InlineCallback(InlineCallback&& other) noexcept { MoveFrom(other); }
  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { Reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  void operator()() { invoke_(storage_); }

  // Destroys the held callable (releasing its captures) and becomes empty.
  void Reset() {
    if (manage_ != nullptr) {
      manage_(Op::kDestroy, storage_, nullptr);
      manage_ = nullptr;
      invoke_ = nullptr;
    }
  }

 private:
  enum class Op { kDestroy, kMoveAndDestroy };
  using InvokeFn = void (*)(void*);
  using ManageFn = void (*)(Op, void* src, void* dst);

  template <typename Fn>
  static void InvokeImpl(void* storage) {
    (*std::launder(reinterpret_cast<Fn*>(storage)))();
  }

  template <typename Fn>
  static void ManageImpl(Op op, void* src, void* dst) {
    Fn* fn = std::launder(reinterpret_cast<Fn*>(src));
    if (op == Op::kMoveAndDestroy) {
      new (dst) Fn(std::move(*fn));
    }
    fn->~Fn();
  }

  void MoveFrom(InlineCallback& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (manage_ != nullptr) {
      manage_(Op::kMoveAndDestroy, other.storage_, storage_);
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[kCapacity];
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_BASE_INLINE_CALLBACK_H_
