// InlineFunction: a move-only, type-erased callable with fixed inline
// storage and NO heap fallback. InlineCallback is its `void()` alias.
//
// The discrete-event engine dispatches hundreds of millions of callbacks per
// run; wrapping each capture in a std::function means a heap allocation for
// anything larger than the (small) libstdc++ SBO buffer, plus a pointer chase
// on every invoke. InlineFunction stores the callable directly in the owner's
// slot instead. Oversized captures are a *compile error* — the static_assert
// below is the proof that no schedule site in the tree allocates. If you hit
// it, either shrink the capture (capture a pointer to long-lived state rather
// than copies) or, as a last resort, bump kCapacity.
#ifndef GHOST_SIM_SRC_BASE_INLINE_CALLBACK_H_
#define GHOST_SIM_SRC_BASE_INLINE_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace gs {

template <typename Signature>
class InlineFunction;  // undefined primary; only R(Args...) is provided

template <typename R, typename... Args>
class InlineFunction<R(Args...)> {
 public:
  // Sized to cover the largest capture in the tree (the fuzz-test chaos
  // lambda, 10 captured words) with a little headroom.
  static constexpr size_t kCapacity = 96;

  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  // Implicit so every existing `loop->ScheduleAfter(d, [..] {...})` call site
  // keeps working unchanged.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kCapacity,
                  "capture too large for InlineFunction inline storage: "
                  "capture pointers to long-lived state instead of copies, "
                  "or bump InlineFunction::kCapacity");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned capture not supported");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "callable must be nothrow-move-constructible (slots move "
                  "when the owning slab grows)");
    new (storage_) Fn(std::forward<F>(fn));
    invoke_ = &InvokeImpl<Fn>;
    manage_ = &ManageImpl<Fn>;
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  // Const like std::function: the held callable is logically part of the
  // function value, and call sites pass `const InlineFunction&` through
  // plumbing that never reassigns it.
  R operator()(Args... args) const {
    return invoke_(storage_, std::forward<Args>(args)...);
  }

  // Destroys the held callable (releasing its captures) and becomes empty.
  void Reset() {
    if (manage_ != nullptr) {
      manage_(Op::kDestroy, storage_, nullptr);
      manage_ = nullptr;
      invoke_ = nullptr;
    }
  }

 private:
  enum class Op { kDestroy, kMoveAndDestroy };
  using InvokeFn = R (*)(void*, Args&&...);
  using ManageFn = void (*)(Op, void* src, void* dst);

  template <typename Fn>
  static R InvokeImpl(void* storage, Args&&... args) {
    return (*std::launder(reinterpret_cast<Fn*>(storage)))(
        std::forward<Args>(args)...);
  }

  template <typename Fn>
  static void ManageImpl(Op op, void* src, void* dst) {
    Fn* fn = std::launder(reinterpret_cast<Fn*>(src));
    if (op == Op::kMoveAndDestroy) {
      new (dst) Fn(std::move(*fn));
    }
    fn->~Fn();
  }

  void MoveFrom(InlineFunction& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (manage_ != nullptr) {
      manage_(Op::kMoveAndDestroy, other.storage_, storage_);
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  alignas(std::max_align_t) mutable unsigned char storage_[kCapacity];
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
};

using InlineCallback = InlineFunction<void()>;

}  // namespace gs

#endif  // GHOST_SIM_SRC_BASE_INLINE_CALLBACK_H_
