// Single-producer / single-consumer lock-free ring buffer.
//
// This is the shared-memory message-queue substrate (§3.1 of the paper): the
// kernel side produces messages, exactly one agent consumes them. The
// implementation is a classic bounded ring with monotonically increasing
// head/tail indices and acquire/release synchronization only — no CAS on the
// hot path. Producer and consumer indices live on separate cache lines to
// avoid false sharing, which is what the host nanobenchmarks (Table 3
// companion) measure.
#ifndef GHOST_SIM_SRC_BASE_SPSC_RING_H_
#define GHOST_SIM_SRC_BASE_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <new>
#include <optional>

#include "src/base/logging.h"

namespace gs {

inline constexpr size_t kCacheLineSize = 64;

template <typename T>
class SpscRing {
 public:
  // `capacity` must be a power of two.
  explicit SpscRing(size_t capacity)
      : capacity_(capacity), mask_(capacity - 1), slots_(new Slot[capacity]) {
    CHECK_GT(capacity, 0u);
    CHECK((capacity & (capacity - 1)) == 0) << "capacity must be a power of two";
  }

  // Producer side. Returns false if the ring is full.
  bool TryPush(T value) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    const uint64_t head = cached_head_;
    if (tail - head >= capacity_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= capacity_) {
        return false;
      }
    }
    slots_[tail & mask_].value = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns nullopt if the ring is empty.
  std::optional<T> TryPop() {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) {
        return std::nullopt;
      }
    }
    T value = std::move(slots_[head & mask_].value);
    head_.store(head + 1, std::memory_order_release);
    return value;
  }

  // Consumer side peek without consuming. Returns nullptr if empty.
  const T* Peek() const {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) {
      return nullptr;
    }
    return &slots_[head & mask_].value;
  }

  size_t capacity() const { return capacity_; }

  // Approximate size; exact when called from either endpoint's thread.
  size_t size() const {
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<size_t>(tail - head);
  }

  bool empty() const { return size() == 0; }

 private:
  struct Slot {
    T value;
  };

  const size_t capacity_;
  const size_t mask_;
  std::unique_ptr<Slot[]> slots_;

  alignas(kCacheLineSize) std::atomic<uint64_t> head_{0};
  alignas(kCacheLineSize) uint64_t cached_tail_{0};  // consumer-local
  alignas(kCacheLineSize) std::atomic<uint64_t> tail_{0};
  alignas(kCacheLineSize) uint64_t cached_head_{0};  // producer-local
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_BASE_SPSC_RING_H_
