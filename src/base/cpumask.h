// Fixed-capacity CPU bitmask, analogous to the kernel's cpumask_t.
//
// Used for task affinity (sched_setaffinity / THREAD_AFFINITY messages), for
// enclave CPU sets, and for idle-CPU intersection in scheduling policies
// (e.g. the Search policy intersects a task's affinity mask with the idle set,
// §4.4 of the paper).
#ifndef GHOST_SIM_SRC_BASE_CPUMASK_H_
#define GHOST_SIM_SRC_BASE_CPUMASK_H_

#include <array>
#include <bit>
#include <cstdint>
#include <string>

#include "src/base/logging.h"

namespace gs {

class CpuMask {
 public:
  static constexpr int kMaxCpus = 512;

  constexpr CpuMask() : words_{} {}

  static CpuMask AllUpTo(int num_cpus) {
    CpuMask mask;
    for (int cpu = 0; cpu < num_cpus; ++cpu) {
      mask.Set(cpu);
    }
    return mask;
  }

  static CpuMask Single(int cpu) {
    CpuMask mask;
    mask.Set(cpu);
    return mask;
  }

  void Set(int cpu) {
    CheckBounds(cpu);
    words_[cpu / 64] |= (1ULL << (cpu % 64));
  }

  void Clear(int cpu) {
    CheckBounds(cpu);
    words_[cpu / 64] &= ~(1ULL << (cpu % 64));
  }

  bool IsSet(int cpu) const {
    CheckBounds(cpu);
    return (words_[cpu / 64] >> (cpu % 64)) & 1;
  }

  void SetAll() {
    for (auto& w : words_) {
      w = ~0ULL;
    }
  }

  void ClearAll() { words_.fill(0); }

  int Count() const {
    int total = 0;
    for (uint64_t w : words_) {
      total += std::popcount(w);
    }
    return total;
  }

  bool Empty() const {
    for (uint64_t w : words_) {
      if (w != 0) {
        return false;
      }
    }
    return true;
  }

  // First set CPU, or -1 if empty.
  int First() const {
    for (size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] != 0) {
        return static_cast<int>(i * 64 + std::countr_zero(words_[i]));
      }
    }
    return -1;
  }

  // Next set CPU strictly after `cpu`, or -1.
  int NextAfter(int cpu) const {
    for (int c = cpu + 1; c < kMaxCpus; ++c) {
      const uint64_t word = words_[c / 64] >> (c % 64);
      if (word == 0) {
        c = (c / 64) * 64 + 63;  // skip the rest of this word
        continue;
      }
      return c + std::countr_zero(word);
    }
    return -1;
  }

  CpuMask& operator&=(const CpuMask& other) {
    for (size_t i = 0; i < words_.size(); ++i) {
      words_[i] &= other.words_[i];
    }
    return *this;
  }

  // this &= ~other, without materializing the complement.
  CpuMask& AndNot(const CpuMask& other) {
    for (size_t i = 0; i < words_.size(); ++i) {
      words_[i] &= ~other.words_[i];
    }
    return *this;
  }

  CpuMask operator&(const CpuMask& other) const {
    CpuMask out;
    for (size_t i = 0; i < words_.size(); ++i) {
      out.words_[i] = words_[i] & other.words_[i];
    }
    return out;
  }

  CpuMask operator|(const CpuMask& other) const {
    CpuMask out;
    for (size_t i = 0; i < words_.size(); ++i) {
      out.words_[i] = words_[i] | other.words_[i];
    }
    return out;
  }

  CpuMask operator~() const {
    CpuMask out;
    for (size_t i = 0; i < words_.size(); ++i) {
      out.words_[i] = ~words_[i];
    }
    return out;
  }

  bool operator==(const CpuMask& other) const { return words_ == other.words_; }
  bool operator!=(const CpuMask& other) const { return !(*this == other); }

  bool Intersects(const CpuMask& other) const {
    for (size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & other.words_[i]) != 0) {
        return true;
      }
    }
    return false;
  }

  std::string ToString() const {
    std::string out = "{";
    bool first = true;
    for (int cpu = First(); cpu >= 0; cpu = NextAfter(cpu)) {
      if (!first) {
        out += ",";
      }
      out += std::to_string(cpu);
      first = false;
    }
    out += "}";
    return out;
  }

 private:
  static void CheckBounds(int cpu) {
    CHECK_GE(cpu, 0);
    CHECK_LT(cpu, kMaxCpus);
  }

  std::array<uint64_t, kMaxCpus / 64> words_;
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_BASE_CPUMASK_H_
