// Bounded multi-producer / multi-consumer lock-free queue (Vyukov scheme).
//
// Used for the BPF-fast-path analog (§3.2, §5 of the paper): the agent
// (producer) publishes runnable threads into per-domain rings; the kernel's
// pick-next hook on any idle CPU (many consumers) pops them. Each slot carries
// a sequence number that encodes whether it is ready for the producer or the
// consumer, so both sides make progress with a single CAS-free
// fetch-or-compare loop per operation.
#ifndef GHOST_SIM_SRC_BASE_MPMC_RING_H_
#define GHOST_SIM_SRC_BASE_MPMC_RING_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>

#include "src/base/logging.h"
#include "src/base/spsc_ring.h"  // kCacheLineSize

namespace gs {

template <typename T>
class MpmcRing {
 public:
  // `capacity` must be a power of two.
  explicit MpmcRing(size_t capacity) : mask_(capacity - 1), slots_(new Slot[capacity]) {
    CHECK_GT(capacity, 0u);
    CHECK((capacity & (capacity - 1)) == 0) << "capacity must be a power of two";
    for (size_t i = 0; i < capacity; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  bool TryPush(T value) {
    Slot* slot;
    uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      slot = &slots_[pos & mask_];
      const uint64_t seq = slot->seq.load(std::memory_order_acquire);
      const int64_t diff = static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    slot->value = std::move(value);
    slot->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  std::optional<T> TryPop() {
    Slot* slot;
    uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      slot = &slots_[pos & mask_];
      const uint64_t seq = slot->seq.load(std::memory_order_acquire);
      const int64_t diff = static_cast<int64_t>(seq) - static_cast<int64_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return std::nullopt;  // empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    T value = std::move(slot->value);
    slot->seq.store(pos + mask_ + 1, std::memory_order_release);
    return value;
  }

  size_t capacity() const { return mask_ + 1; }

  // Approximate (racy) size, for load metrics only.
  size_t size() const {
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<size_t>(tail - head) : 0;
  }

  bool empty() const { return size() == 0; }

 private:
  struct Slot {
    std::atomic<uint64_t> seq;
    T value;
  };

  const size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  alignas(kCacheLineSize) std::atomic<uint64_t> head_{0};
  alignas(kCacheLineSize) std::atomic<uint64_t> tail_{0};
};

}  // namespace gs

#endif  // GHOST_SIM_SRC_BASE_MPMC_RING_H_
