file(REMOVE_RECURSE
  "CMakeFiles/fig7_snap.dir/fig7_snap.cc.o"
  "CMakeFiles/fig7_snap.dir/fig7_snap.cc.o.d"
  "fig7_snap"
  "fig7_snap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_snap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
