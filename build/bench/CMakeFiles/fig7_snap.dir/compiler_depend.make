# Empty compiler generated dependencies file for fig7_snap.
# This may be replaced when dependencies are built.
