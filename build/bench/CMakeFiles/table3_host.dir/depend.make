# Empty dependencies file for table3_host.
# This may be replaced when dependencies are built.
