file(REMOVE_RECURSE
  "CMakeFiles/table3_host.dir/table3_host.cc.o"
  "CMakeFiles/table3_host.dir/table3_host.cc.o.d"
  "table3_host"
  "table3_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
