# Empty compiler generated dependencies file for fig6_shinjuku.
# This may be replaced when dependencies are built.
