file(REMOVE_RECURSE
  "CMakeFiles/fig6_shinjuku.dir/fig6_shinjuku.cc.o"
  "CMakeFiles/fig6_shinjuku.dir/fig6_shinjuku.cc.o.d"
  "fig6_shinjuku"
  "fig6_shinjuku.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_shinjuku.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
