file(REMOVE_RECURSE
  "CMakeFiles/ablation_fastpath.dir/ablation_fastpath.cc.o"
  "CMakeFiles/ablation_fastpath.dir/ablation_fastpath.cc.o.d"
  "ablation_fastpath"
  "ablation_fastpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fastpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
