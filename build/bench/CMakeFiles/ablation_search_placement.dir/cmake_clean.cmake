file(REMOVE_RECURSE
  "CMakeFiles/ablation_search_placement.dir/ablation_search_placement.cc.o"
  "CMakeFiles/ablation_search_placement.dir/ablation_search_placement.cc.o.d"
  "ablation_search_placement"
  "ablation_search_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_search_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
