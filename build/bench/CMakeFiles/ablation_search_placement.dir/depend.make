# Empty dependencies file for ablation_search_placement.
# This may be replaced when dependencies are built.
