# Empty compiler generated dependencies file for table3_microbench.
# This may be replaced when dependencies are built.
