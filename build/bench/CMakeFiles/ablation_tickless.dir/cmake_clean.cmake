file(REMOVE_RECURSE
  "CMakeFiles/ablation_tickless.dir/ablation_tickless.cc.o"
  "CMakeFiles/ablation_tickless.dir/ablation_tickless.cc.o.d"
  "ablation_tickless"
  "ablation_tickless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tickless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
