# Empty compiler generated dependencies file for ablation_tickless.
# This may be replaced when dependencies are built.
