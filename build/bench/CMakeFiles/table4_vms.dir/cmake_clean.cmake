file(REMOVE_RECURSE
  "CMakeFiles/table4_vms.dir/table4_vms.cc.o"
  "CMakeFiles/table4_vms.dir/table4_vms.cc.o.d"
  "table4_vms"
  "table4_vms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_vms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
