# Empty compiler generated dependencies file for table4_vms.
# This may be replaced when dependencies are built.
