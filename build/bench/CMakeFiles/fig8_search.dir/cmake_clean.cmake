file(REMOVE_RECURSE
  "CMakeFiles/fig8_search.dir/fig8_search.cc.o"
  "CMakeFiles/fig8_search.dir/fig8_search.cc.o.d"
  "fig8_search"
  "fig8_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
