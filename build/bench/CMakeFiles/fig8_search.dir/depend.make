# Empty dependencies file for fig8_search.
# This may be replaced when dependencies are built.
