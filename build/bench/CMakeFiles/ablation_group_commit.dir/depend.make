# Empty dependencies file for ablation_group_commit.
# This may be replaced when dependencies are built.
