# Empty dependencies file for agent_upgrade.
# This may be replaced when dependencies are built.
