file(REMOVE_RECURSE
  "CMakeFiles/agent_upgrade.dir/agent_upgrade.cc.o"
  "CMakeFiles/agent_upgrade.dir/agent_upgrade.cc.o.d"
  "agent_upgrade"
  "agent_upgrade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agent_upgrade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
