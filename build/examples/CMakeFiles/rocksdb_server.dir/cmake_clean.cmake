file(REMOVE_RECURSE
  "CMakeFiles/rocksdb_server.dir/rocksdb_server.cc.o"
  "CMakeFiles/rocksdb_server.dir/rocksdb_server.cc.o.d"
  "rocksdb_server"
  "rocksdb_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocksdb_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
