# Empty compiler generated dependencies file for rocksdb_server.
# This may be replaced when dependencies are built.
