# Empty dependencies file for secure_vms.
# This may be replaced when dependencies are built.
