file(REMOVE_RECURSE
  "CMakeFiles/secure_vms.dir/secure_vms.cc.o"
  "CMakeFiles/secure_vms.dir/secure_vms.cc.o.d"
  "secure_vms"
  "secure_vms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_vms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
