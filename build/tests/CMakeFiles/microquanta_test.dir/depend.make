# Empty dependencies file for microquanta_test.
# This may be replaced when dependencies are built.
