file(REMOVE_RECURSE
  "CMakeFiles/microquanta_test.dir/microquanta_test.cc.o"
  "CMakeFiles/microquanta_test.dir/microquanta_test.cc.o.d"
  "microquanta_test"
  "microquanta_test.pdb"
  "microquanta_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microquanta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
