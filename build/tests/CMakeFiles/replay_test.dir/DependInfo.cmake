
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/replay_test.cc" "tests/CMakeFiles/replay_test.dir/replay_test.cc.o" "gcc" "tests/CMakeFiles/replay_test.dir/replay_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gs_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_ghost.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
