# Empty dependencies file for histogram_precision_test.
# This may be replaced when dependencies are built.
