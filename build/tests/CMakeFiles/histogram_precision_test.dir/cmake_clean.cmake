file(REMOVE_RECURSE
  "CMakeFiles/histogram_precision_test.dir/histogram_precision_test.cc.o"
  "CMakeFiles/histogram_precision_test.dir/histogram_precision_test.cc.o.d"
  "histogram_precision_test"
  "histogram_precision_test.pdb"
  "histogram_precision_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histogram_precision_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
