file(REMOVE_RECURSE
  "CMakeFiles/hot_handoff_test.dir/hot_handoff_test.cc.o"
  "CMakeFiles/hot_handoff_test.dir/hot_handoff_test.cc.o.d"
  "hot_handoff_test"
  "hot_handoff_test.pdb"
  "hot_handoff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_handoff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
