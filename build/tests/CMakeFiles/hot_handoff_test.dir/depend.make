# Empty dependencies file for hot_handoff_test.
# This may be replaced when dependencies are built.
