file(REMOVE_RECURSE
  "CMakeFiles/cfs_test.dir/cfs_test.cc.o"
  "CMakeFiles/cfs_test.dir/cfs_test.cc.o.d"
  "cfs_test"
  "cfs_test.pdb"
  "cfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
