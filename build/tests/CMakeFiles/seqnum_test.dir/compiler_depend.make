# Empty compiler generated dependencies file for seqnum_test.
# This may be replaced when dependencies are built.
