file(REMOVE_RECURSE
  "CMakeFiles/seqnum_test.dir/seqnum_test.cc.o"
  "CMakeFiles/seqnum_test.dir/seqnum_test.cc.o.d"
  "seqnum_test"
  "seqnum_test.pdb"
  "seqnum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seqnum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
