# Empty compiler generated dependencies file for ghost_test.
# This may be replaced when dependencies are built.
