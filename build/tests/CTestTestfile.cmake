# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/event_loop_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_test[1]_include.cmake")
include("/root/repo/build/tests/ghost_test[1]_include.cmake")
include("/root/repo/build/tests/agent_test[1]_include.cmake")
include("/root/repo/build/tests/cfs_test[1]_include.cmake")
include("/root/repo/build/tests/core_sched_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/work_stealing_test[1]_include.cmake")
include("/root/repo/build/tests/event_loop_property_test[1]_include.cmake")
include("/root/repo/build/tests/mechanism_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/hot_handoff_test[1]_include.cmake")
include("/root/repo/build/tests/latch_test[1]_include.cmake")
include("/root/repo/build/tests/microquanta_test[1]_include.cmake")
include("/root/repo/build/tests/histogram_precision_test[1]_include.cmake")
include("/root/repo/build/tests/seqnum_test[1]_include.cmake")
include("/root/repo/build/tests/fault_injection_test[1]_include.cmake")
include("/root/repo/build/tests/overflow_test[1]_include.cmake")
include("/root/repo/build/tests/replay_test[1]_include.cmake")
