file(REMOVE_RECURSE
  "CMakeFiles/gs_sim.dir/sim/event_loop.cc.o"
  "CMakeFiles/gs_sim.dir/sim/event_loop.cc.o.d"
  "CMakeFiles/gs_sim.dir/sim/fault_injector.cc.o"
  "CMakeFiles/gs_sim.dir/sim/fault_injector.cc.o.d"
  "CMakeFiles/gs_sim.dir/sim/trace.cc.o"
  "CMakeFiles/gs_sim.dir/sim/trace.cc.o.d"
  "libgs_sim.a"
  "libgs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
