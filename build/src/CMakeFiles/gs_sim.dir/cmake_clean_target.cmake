file(REMOVE_RECURSE
  "libgs_sim.a"
)
