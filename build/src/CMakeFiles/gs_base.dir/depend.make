# Empty dependencies file for gs_base.
# This may be replaced when dependencies are built.
