file(REMOVE_RECURSE
  "CMakeFiles/gs_base.dir/base/histogram.cc.o"
  "CMakeFiles/gs_base.dir/base/histogram.cc.o.d"
  "CMakeFiles/gs_base.dir/base/logging.cc.o"
  "CMakeFiles/gs_base.dir/base/logging.cc.o.d"
  "libgs_base.a"
  "libgs_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
