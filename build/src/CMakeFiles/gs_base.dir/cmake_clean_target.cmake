file(REMOVE_RECURSE
  "libgs_base.a"
)
