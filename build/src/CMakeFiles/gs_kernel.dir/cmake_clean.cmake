file(REMOVE_RECURSE
  "CMakeFiles/gs_kernel.dir/kernel/agent_class.cc.o"
  "CMakeFiles/gs_kernel.dir/kernel/agent_class.cc.o.d"
  "CMakeFiles/gs_kernel.dir/kernel/cfs.cc.o"
  "CMakeFiles/gs_kernel.dir/kernel/cfs.cc.o.d"
  "CMakeFiles/gs_kernel.dir/kernel/core_sched.cc.o"
  "CMakeFiles/gs_kernel.dir/kernel/core_sched.cc.o.d"
  "CMakeFiles/gs_kernel.dir/kernel/kernel.cc.o"
  "CMakeFiles/gs_kernel.dir/kernel/kernel.cc.o.d"
  "CMakeFiles/gs_kernel.dir/kernel/microquanta.cc.o"
  "CMakeFiles/gs_kernel.dir/kernel/microquanta.cc.o.d"
  "libgs_kernel.a"
  "libgs_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
