# Empty dependencies file for gs_kernel.
# This may be replaced when dependencies are built.
