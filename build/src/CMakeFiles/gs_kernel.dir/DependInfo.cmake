
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/agent_class.cc" "src/CMakeFiles/gs_kernel.dir/kernel/agent_class.cc.o" "gcc" "src/CMakeFiles/gs_kernel.dir/kernel/agent_class.cc.o.d"
  "/root/repo/src/kernel/cfs.cc" "src/CMakeFiles/gs_kernel.dir/kernel/cfs.cc.o" "gcc" "src/CMakeFiles/gs_kernel.dir/kernel/cfs.cc.o.d"
  "/root/repo/src/kernel/core_sched.cc" "src/CMakeFiles/gs_kernel.dir/kernel/core_sched.cc.o" "gcc" "src/CMakeFiles/gs_kernel.dir/kernel/core_sched.cc.o.d"
  "/root/repo/src/kernel/kernel.cc" "src/CMakeFiles/gs_kernel.dir/kernel/kernel.cc.o" "gcc" "src/CMakeFiles/gs_kernel.dir/kernel/kernel.cc.o.d"
  "/root/repo/src/kernel/microquanta.cc" "src/CMakeFiles/gs_kernel.dir/kernel/microquanta.cc.o" "gcc" "src/CMakeFiles/gs_kernel.dir/kernel/microquanta.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gs_base.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
