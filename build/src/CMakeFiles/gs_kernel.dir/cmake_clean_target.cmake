file(REMOVE_RECURSE
  "libgs_kernel.a"
)
