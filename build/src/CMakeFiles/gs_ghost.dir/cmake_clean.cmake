file(REMOVE_RECURSE
  "CMakeFiles/gs_ghost.dir/ghost/enclave.cc.o"
  "CMakeFiles/gs_ghost.dir/ghost/enclave.cc.o.d"
  "CMakeFiles/gs_ghost.dir/ghost/ghost_class.cc.o"
  "CMakeFiles/gs_ghost.dir/ghost/ghost_class.cc.o.d"
  "libgs_ghost.a"
  "libgs_ghost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_ghost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
