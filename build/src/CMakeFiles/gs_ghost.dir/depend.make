# Empty dependencies file for gs_ghost.
# This may be replaced when dependencies are built.
