file(REMOVE_RECURSE
  "libgs_ghost.a"
)
