file(REMOVE_RECURSE
  "CMakeFiles/gs_agent.dir/agent/agent_context.cc.o"
  "CMakeFiles/gs_agent.dir/agent/agent_context.cc.o.d"
  "CMakeFiles/gs_agent.dir/agent/agent_process.cc.o"
  "CMakeFiles/gs_agent.dir/agent/agent_process.cc.o.d"
  "CMakeFiles/gs_agent.dir/agent/task_table.cc.o"
  "CMakeFiles/gs_agent.dir/agent/task_table.cc.o.d"
  "libgs_agent.a"
  "libgs_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
