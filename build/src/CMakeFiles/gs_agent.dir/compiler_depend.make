# Empty compiler generated dependencies file for gs_agent.
# This may be replaced when dependencies are built.
