file(REMOVE_RECURSE
  "libgs_agent.a"
)
