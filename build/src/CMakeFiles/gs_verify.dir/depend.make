# Empty dependencies file for gs_verify.
# This may be replaced when dependencies are built.
