file(REMOVE_RECURSE
  "libgs_verify.a"
)
