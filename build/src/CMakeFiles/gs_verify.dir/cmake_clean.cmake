file(REMOVE_RECURSE
  "CMakeFiles/gs_verify.dir/verify/invariants.cc.o"
  "CMakeFiles/gs_verify.dir/verify/invariants.cc.o.d"
  "libgs_verify.a"
  "libgs_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
