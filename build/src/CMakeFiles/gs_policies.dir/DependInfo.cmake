
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policies/centralized_fifo.cc" "src/CMakeFiles/gs_policies.dir/policies/centralized_fifo.cc.o" "gcc" "src/CMakeFiles/gs_policies.dir/policies/centralized_fifo.cc.o.d"
  "/root/repo/src/policies/per_cpu_fifo.cc" "src/CMakeFiles/gs_policies.dir/policies/per_cpu_fifo.cc.o" "gcc" "src/CMakeFiles/gs_policies.dir/policies/per_cpu_fifo.cc.o.d"
  "/root/repo/src/policies/search.cc" "src/CMakeFiles/gs_policies.dir/policies/search.cc.o" "gcc" "src/CMakeFiles/gs_policies.dir/policies/search.cc.o.d"
  "/root/repo/src/policies/shinjuku.cc" "src/CMakeFiles/gs_policies.dir/policies/shinjuku.cc.o" "gcc" "src/CMakeFiles/gs_policies.dir/policies/shinjuku.cc.o.d"
  "/root/repo/src/policies/vm_core_sched.cc" "src/CMakeFiles/gs_policies.dir/policies/vm_core_sched.cc.o" "gcc" "src/CMakeFiles/gs_policies.dir/policies/vm_core_sched.cc.o.d"
  "/root/repo/src/policies/work_stealing.cc" "src/CMakeFiles/gs_policies.dir/policies/work_stealing.cc.o" "gcc" "src/CMakeFiles/gs_policies.dir/policies/work_stealing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gs_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_ghost.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
