# Empty dependencies file for gs_policies.
# This may be replaced when dependencies are built.
