file(REMOVE_RECURSE
  "libgs_policies.a"
)
