file(REMOVE_RECURSE
  "CMakeFiles/gs_policies.dir/policies/centralized_fifo.cc.o"
  "CMakeFiles/gs_policies.dir/policies/centralized_fifo.cc.o.d"
  "CMakeFiles/gs_policies.dir/policies/per_cpu_fifo.cc.o"
  "CMakeFiles/gs_policies.dir/policies/per_cpu_fifo.cc.o.d"
  "CMakeFiles/gs_policies.dir/policies/search.cc.o"
  "CMakeFiles/gs_policies.dir/policies/search.cc.o.d"
  "CMakeFiles/gs_policies.dir/policies/shinjuku.cc.o"
  "CMakeFiles/gs_policies.dir/policies/shinjuku.cc.o.d"
  "CMakeFiles/gs_policies.dir/policies/vm_core_sched.cc.o"
  "CMakeFiles/gs_policies.dir/policies/vm_core_sched.cc.o.d"
  "CMakeFiles/gs_policies.dir/policies/work_stealing.cc.o"
  "CMakeFiles/gs_policies.dir/policies/work_stealing.cc.o.d"
  "libgs_policies.a"
  "libgs_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
