file(REMOVE_RECURSE
  "CMakeFiles/gs_topology.dir/topology/topology.cc.o"
  "CMakeFiles/gs_topology.dir/topology/topology.cc.o.d"
  "libgs_topology.a"
  "libgs_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
