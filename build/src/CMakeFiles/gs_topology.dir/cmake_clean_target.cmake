file(REMOVE_RECURSE
  "libgs_topology.a"
)
