
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/batch.cc" "src/CMakeFiles/gs_workloads.dir/workloads/batch.cc.o" "gcc" "src/CMakeFiles/gs_workloads.dir/workloads/batch.cc.o.d"
  "/root/repo/src/workloads/latency_recorder.cc" "src/CMakeFiles/gs_workloads.dir/workloads/latency_recorder.cc.o" "gcc" "src/CMakeFiles/gs_workloads.dir/workloads/latency_recorder.cc.o.d"
  "/root/repo/src/workloads/request_service.cc" "src/CMakeFiles/gs_workloads.dir/workloads/request_service.cc.o" "gcc" "src/CMakeFiles/gs_workloads.dir/workloads/request_service.cc.o.d"
  "/root/repo/src/workloads/rocksdb.cc" "src/CMakeFiles/gs_workloads.dir/workloads/rocksdb.cc.o" "gcc" "src/CMakeFiles/gs_workloads.dir/workloads/rocksdb.cc.o.d"
  "/root/repo/src/workloads/search_workload.cc" "src/CMakeFiles/gs_workloads.dir/workloads/search_workload.cc.o" "gcc" "src/CMakeFiles/gs_workloads.dir/workloads/search_workload.cc.o.d"
  "/root/repo/src/workloads/snap.cc" "src/CMakeFiles/gs_workloads.dir/workloads/snap.cc.o" "gcc" "src/CMakeFiles/gs_workloads.dir/workloads/snap.cc.o.d"
  "/root/repo/src/workloads/vm_workload.cc" "src/CMakeFiles/gs_workloads.dir/workloads/vm_workload.cc.o" "gcc" "src/CMakeFiles/gs_workloads.dir/workloads/vm_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gs_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_ghost.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gs_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
