# Empty compiler generated dependencies file for gs_workloads.
# This may be replaced when dependencies are built.
