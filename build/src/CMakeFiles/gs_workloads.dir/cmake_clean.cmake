file(REMOVE_RECURSE
  "CMakeFiles/gs_workloads.dir/workloads/batch.cc.o"
  "CMakeFiles/gs_workloads.dir/workloads/batch.cc.o.d"
  "CMakeFiles/gs_workloads.dir/workloads/latency_recorder.cc.o"
  "CMakeFiles/gs_workloads.dir/workloads/latency_recorder.cc.o.d"
  "CMakeFiles/gs_workloads.dir/workloads/request_service.cc.o"
  "CMakeFiles/gs_workloads.dir/workloads/request_service.cc.o.d"
  "CMakeFiles/gs_workloads.dir/workloads/rocksdb.cc.o"
  "CMakeFiles/gs_workloads.dir/workloads/rocksdb.cc.o.d"
  "CMakeFiles/gs_workloads.dir/workloads/search_workload.cc.o"
  "CMakeFiles/gs_workloads.dir/workloads/search_workload.cc.o.d"
  "CMakeFiles/gs_workloads.dir/workloads/snap.cc.o"
  "CMakeFiles/gs_workloads.dir/workloads/snap.cc.o.d"
  "CMakeFiles/gs_workloads.dir/workloads/vm_workload.cc.o"
  "CMakeFiles/gs_workloads.dir/workloads/vm_workload.cc.o.d"
  "libgs_workloads.a"
  "libgs_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
