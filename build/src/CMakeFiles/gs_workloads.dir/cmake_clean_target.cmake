file(REMOVE_RECURSE
  "libgs_workloads.a"
)
