file(REMOVE_RECURSE
  "libgs_baselines.a"
)
