file(REMOVE_RECURSE
  "CMakeFiles/gs_baselines.dir/baselines/shinjuku_dataplane.cc.o"
  "CMakeFiles/gs_baselines.dir/baselines/shinjuku_dataplane.cc.o.d"
  "libgs_baselines.a"
  "libgs_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
