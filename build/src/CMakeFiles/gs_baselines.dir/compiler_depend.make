# Empty compiler generated dependencies file for gs_baselines.
# This may be replaced when dependencies are built.
