// Fig 7 reproduction (§4.3): Google Snap round-trip tail latencies under
// MicroQuanta (the production soft real-time scheduler) vs a ghOSt
// centralized FIFO policy, in quiet and loaded (40 antagonist threads)
// modes, for 64 B and 64 kB messages.
//
// Expected shape (paper): ghOSt tracks MicroQuanta through ~p99; for 64 kB
// messages ghOSt is 5-30% better at p99.9+ (it relocates workers instead of
// waiting out MicroQuanta's up-to-0.1 ms throttling blackouts); for 64 B
// messages ghOSt can be worse at extreme percentiles (per-message scheduling
// overhead shows when packets are tiny).
#include <cstdio>
#include <memory>
#include <set>

#include "bench/harness.h"
#include "bench/machine_trace.h"
#include "src/agent/agent_process.h"
#include "src/ghost/machine.h"
#include "src/policies/shinjuku.h"
#include "src/workloads/batch.h"
#include "src/workloads/snap.h"

namespace gs {
namespace {

constexpr int kAntagonists = 40;

Duration kWarmup = Seconds(1);
Duration kMeasure = Seconds(19);

Topology SnapTopo() {
  // Single socket of the Skylake machine: 28 cores / 56 CPUs.
  return Topology::Make("skylake1s-56", 1, 28, 2, 28);
}

struct Tails {
  double p[6];  // 50, 90, 99, 99.9, 99.99, 99.999
};

Tails Collect(const LatencyRecorder& rec) {
  return Tails{{rec.PercentileUs(50), rec.PercentileUs(90), rec.PercentileUs(99),
                rec.PercentileUs(99.9), rec.PercentileUs(99.99),
                rec.PercentileUs(99.999)}};
}

struct RunResult {
  Tails small;
  Tails large;
};

RunResult RunMicroQuanta(bench::Run& run, bool loaded, uint64_t seed) {
  Machine m(SnapTopo(), CostModel(), /*with_core_sched=*/false, &run.stats());
  SnapSystem snap(&m.kernel(), {.seed = seed});
  for (Task* engine : snap.engine_threads()) {
    m.kernel().SetSchedClass(engine, m.mq_class());
  }
  BatchApp antagonists(&m.kernel(), {.num_threads = kAntagonists, .name_prefix = "antag"});
  if (loaded) {
    antagonists.Start();
  }
  snap.Start(kWarmup + kMeasure);
  m.RunFor(kWarmup);
  snap.ResetLatency();
  m.RunFor(kMeasure + Milliseconds(100));
  return RunResult{Collect(snap.small_latency()), Collect(snap.large_latency())};
}

RunResult RunGhost(bench::Run& run, bool loaded, uint64_t seed) {
  Machine m(SnapTopo(), CostModel(), /*with_core_sched=*/false, &run.stats());
  bench::ScopedMachineTrace trace_scope(run, m.kernel());
  auto enclave = m.CreateEnclave(m.kernel().topology().AllCpus());
  SnapSystem snap(&m.kernel(), {.seed = seed});
  BatchApp antagonists(&m.kernel(), {.num_threads = kAntagonists, .name_prefix = "antag"});

  auto engine_tids = std::make_shared<std::set<int64_t>>();
  for (Task* engine : snap.engine_threads()) {
    engine_tids->insert(engine->tid());
  }
  // §4.3: "a simple, yet effective centralized FIFO policy ... giving Snap
  // worker threads strict priority over antagonist threads".
  AgentProcess process(
      &m.kernel(), m.ghost_class(), enclave.get(),
      MakeSnapPolicy([engine_tids](int64_t tid) { return engine_tids->count(tid) ? 0 : 1; },
                     /*global_cpu=*/0));
  process.Start();
  for (Task* engine : snap.engine_threads()) {
    enclave->AddTask(engine);
  }
  if (loaded) {
    for (Task* t : antagonists.threads()) {
      enclave->AddTask(t);
    }
    antagonists.Start();
  }
  snap.Start(kWarmup + kMeasure);
  m.RunFor(kWarmup);
  snap.ResetLatency();
  m.RunFor(kMeasure + Milliseconds(100));
  return RunResult{Collect(snap.small_latency()), Collect(snap.large_latency())};
}

void RecordRows(bench::Run& run, const char* system, bool loaded, const RunResult& r) {
  auto add = [&](const char* size, const Tails& t) {
    run.AddRow()
        .Set("system", system)
        .Set("loaded", loaded)
        .Set("msg_size", size)
        .Set("p50_us", t.p[0])
        .Set("p90_us", t.p[1])
        .Set("p99_us", t.p[2])
        .Set("p999_us", t.p[3])
        .Set("p9999_us", t.p[4])
        .Set("p99999_us", t.p[5]);
  };
  add("64B", r.small);
  add("64kB", r.large);
}

void PrintMode(const char* title, const RunResult& mq, const RunResult& ghost) {
  static const char* kPcts[] = {"50%", "90%", "99%", "99.9%", "99.99%", "99.999%"};
  std::printf("\n== %s ==\n", title);
  std::printf("%-10s %12s %12s %12s %12s\n", "pct", "MicroQ 64B", "ghOSt 64B",
              "MicroQ 64kB", "ghOSt 64kB");
  for (int i = 0; i < 6; ++i) {
    std::printf("%-10s %10.1fus %10.1fus %10.1fus %10.1fus\n", kPcts[i], mq.small.p[i],
                ghost.small.p[i], mq.large.p[i], ghost.large.p[i]);
  }
}

}  // namespace
}  // namespace gs

int main(int argc, char** argv) {
  using namespace gs;
  bench::Harness harness("fig7_snap", argc, argv);
  if (harness.quick()) {
    kWarmup = Milliseconds(200);
    kMeasure = Seconds(2);
  }
  harness.Param("antagonists", kAntagonists);
  harness.Param("warmup_ms", static_cast<int64_t>(kWarmup / 1000000));
  harness.Param("measure_ms", static_cast<int64_t>(kMeasure / 1000000));
  std::printf("Fig 7 reproduction: Snap packet-processing latencies, 56-CPU socket.\n"
              "6 flows x 10k msg/s (1x64B + 5x64kB); engines under MicroQuanta vs ghOSt.\n");
  harness.RunAll(11, [](bench::Run& run) {
    const uint64_t base_seed = run.seed();
    {
      RunResult mq = RunMicroQuanta(run, /*loaded=*/false, base_seed);
      RunResult ghost = RunGhost(run, /*loaded=*/false, base_seed);
      PrintMode("Fig 7a: quiet (networking load only)", mq, ghost);
      RecordRows(run, "microquanta", false, mq);
      RecordRows(run, "ghost", false, ghost);
    }
    {
      RunResult mq = RunMicroQuanta(run, /*loaded=*/true, base_seed + 1);
      RunResult ghost = RunGhost(run, /*loaded=*/true, base_seed + 1);
      PrintMode("Fig 7b: loaded (40 antagonist threads)", mq, ghost);
      RecordRows(run, "microquanta", true, mq);
      RecordRows(run, "ghost", true, ghost);
    }
  });
  return harness.Finish();
}
