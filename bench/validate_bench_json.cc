// Schema validator for bench-harness result files (see bench/harness.h).
// Usage: validate_bench_json <result.json>...
// Exits non-zero (listing the problems) if any file fails validation; CI
// runs this over the smoke-bench artifacts.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/json.h"

namespace {

using gs::JsonValue;

bool Check(bool ok, const std::string& file, const std::string& what,
           std::vector<std::string>& errors) {
  if (!ok) {
    errors.push_back(file + ": " + what);
  }
  return ok;
}

void Validate(const std::string& file, std::vector<std::string>& errors) {
  std::ifstream in(file);
  if (!in) {
    errors.push_back(file + ": cannot open");
    return;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto doc = JsonValue::Parse(buf.str());
  if (!Check(doc.has_value(), file, "does not parse as JSON", errors)) {
    return;
  }
  if (!Check(doc->is_object(), file, "top level is not an object", errors)) {
    return;
  }

  const JsonValue* version = doc->Find("schema_version");
  Check(version != nullptr && version->is_number() && version->number == 1, file,
        "schema_version missing or != 1", errors);

  const JsonValue* name = doc->Find("benchmark");
  Check(name != nullptr && name->is_string() && !name->string.empty(), file,
        "benchmark missing or empty", errors);

  const JsonValue* scale = doc->Find("scale");
  Check(scale != nullptr && scale->is_string() &&
            (scale->string == "quick" || scale->string == "paper"),
        file, "scale missing or not quick|paper", errors);

  const JsonValue* params = doc->Find("params");
  Check(params != nullptr && params->is_object(), file, "params missing or not an object",
        errors);

  const JsonValue* series = doc->Find("series");
  if (Check(series != nullptr && series->is_array(), file,
            "series missing or not an array", errors)) {
    for (size_t i = 0; i < series->array.size(); ++i) {
      Check(series->array[i].is_object(), file,
            "series[" + std::to_string(i) + "] is not an object", errors);
    }
  }

  const JsonValue* metrics = doc->Find("metrics");
  Check(metrics != nullptr && metrics->is_object(), file,
        "metrics missing or not an object", errors);

  const JsonValue* histograms = doc->Find("histograms");
  Check(histograms != nullptr && histograms->is_object(), file,
        "histograms missing or not an object", errors);

  const JsonValue* stats = doc->Find("stats");
  if (Check(stats != nullptr && stats->is_object(), file,
            "stats missing or not an object", errors)) {
    for (const char* block : {"counters", "gauges", "histograms"}) {
      const JsonValue* sub = stats->Find(block);
      Check(sub != nullptr && sub->is_object(), file,
            std::string("stats.") + block + " missing or not an object", errors);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <result.json>...\n", argv[0]);
    return 2;
  }
  std::vector<std::string> errors;
  for (int i = 1; i < argc; ++i) {
    Validate(argv[i], errors);
  }
  if (!errors.empty()) {
    for (const std::string& error : errors) {
      std::fprintf(stderr, "FAIL %s\n", error.c_str());
    }
    return 1;
  }
  std::printf("OK: %d file(s) schema-valid\n", argc - 1);
  return 0;
}
