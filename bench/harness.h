// Unified bench harness: one flag surface and one result schema for every
// benchmark binary in bench/.
//
// Flags (stripped from argc/argv so wrappers like google-benchmark can parse
// whatever remains):
//
//   --json=<path>       write a machine-readable result file (schema below)
//   --seed=<N>          override the benchmark's base RNG seed
//   --scale=quick|paper run a CI-sized subset or the full paper-scale sweep
//   --trace-out=<path>  write a Chrome-trace/Perfetto JSON of the run
//
// Result schema (schema_version 1):
//
//   {
//     "schema_version": 1,
//     "benchmark": "fig6_shinjuku",
//     "seed": 1000,
//     "scale": "paper",
//     "params": {<flag/config key-values>},
//     "series": [{<one row per sweep point>}, ...],
//     "metrics": {<scalar name: value>},
//     "histograms": {<name>: {count,min,max,mean,p50,...}},
//     "stats": {<StatsRegistry snapshot>}
//   }
//
// Passing --json enables the global StatsRegistry, so the "stats" block
// carries the kernel/ghost/agent counters for the run; without --json (and
// without --trace-out) the instrumentation stays disabled and the benchmark
// measures the zero-overhead path.
#ifndef GHOST_SIM_BENCH_HARNESS_H_
#define GHOST_SIM_BENCH_HARNESS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/base/json.h"
#include "src/sim/chrome_trace.h"

namespace gs {

class Trace;

namespace bench {

enum class Scale { kQuick, kPaper };

// One row of the "series" array: ordered key -> value pairs.
class Row {
 public:
  Row& Set(const std::string& key, int64_t v);
  Row& Set(const std::string& key, int v) { return Set(key, static_cast<int64_t>(v)); }
  Row& Set(const std::string& key, uint64_t v);
  Row& Set(const std::string& key, double v);
  Row& Set(const std::string& key, const std::string& v);
  Row& Set(const std::string& key, const char* v) { return Set(key, std::string(v)); }
  Row& Set(const std::string& key, bool v);
  // Splices a pre-rendered JSON value (e.g. Histogram::ToJson()).
  Row& SetRaw(const std::string& key, std::string json);

 private:
  friend class Harness;
  // Values are pre-rendered JSON, kept in insertion order.
  std::vector<std::pair<std::string, std::string>> cells_;
};

class Harness {
 public:
  // Parses and removes the harness flags from argc/argv. Malformed harness
  // flags print usage and exit(2); unrelated flags are left in place for the
  // benchmark (or its framework) to consume.
  Harness(std::string benchmark_name, int& argc, char** argv);

  Harness(const Harness&) = delete;
  Harness& operator=(const Harness&) = delete;

  // The benchmark's base seed: `fallback` unless --seed was given. Also
  // records the value for the "seed" field of the result file.
  uint64_t SeedOr(uint64_t fallback);

  Scale scale() const { return scale_; }
  bool quick() const { return scale_ == Scale::kQuick; }
  bool json_requested() const { return !json_path_.empty(); }

  // Records a benchmark parameter into the "params" block.
  void Param(const std::string& key, int64_t v);
  void Param(const std::string& key, int v) { Param(key, static_cast<int64_t>(v)); }
  void Param(const std::string& key, double v);
  void Param(const std::string& key, const std::string& v);
  void Param(const std::string& key, bool v);

  // Appends a row to the "series" array; fill it with Row::Set.
  Row& AddRow();

  // Records a scalar into the "metrics" block.
  void Metric(const std::string& name, double v);
  void Metric(const std::string& name, int64_t v);

  // Records a distribution into the "histograms" block. `json` must be a
  // pre-rendered JSON value (Histogram/LatencyRecorder/WindowedSeries
  // ToJson() all qualify).
  void HistogramJson(const std::string& name, std::string json);

  // Attaches the Chrome-trace exporter to `trace` when --trace-out was
  // given; a no-op otherwise. Only the FIRST call attaches: a sweep of many
  // machine runs traces its first run, keeping the exported timestamps
  // monotonic (virtual time restarts at 0 for every run). The exporter is
  // owned by the harness and written out at Finish(). Returns true iff this
  // call attached (i.e. this run is the traced one).
  bool MaybeAttachTrace(Trace& trace);
  // Exporter, or nullptr when --trace-out was not given.
  ChromeTraceExporter* trace_exporter() { return exporter_.get(); }

  // Writes the result file (--json) and the trace (--trace-out), appending
  // the StatsRegistry snapshot. Returns the process exit code (non-zero on
  // I/O failure). Call once, at the end of main.
  int Finish();

 private:
  std::string name_;
  std::string json_path_;
  std::string trace_path_;
  Scale scale_ = Scale::kPaper;
  bool seed_overridden_ = false;
  uint64_t seed_override_ = 0;
  uint64_t seed_used_ = 0;
  bool seed_recorded_ = false;
  bool finished_ = false;

  std::vector<std::pair<std::string, std::string>> params_;
  std::vector<Row> rows_;
  std::vector<std::pair<std::string, std::string>> metrics_;
  std::vector<std::pair<std::string, std::string>> histograms_;
  std::unique_ptr<ChromeTraceExporter> exporter_;
  bool trace_attached_ = false;
};

}  // namespace bench
}  // namespace gs

#endif  // GHOST_SIM_BENCH_HARNESS_H_
