// Unified bench harness: one flag surface and one result schema for every
// benchmark binary in bench/.
//
// Flags (stripped from argc/argv; anything else starting with "--" that the
// benchmark did not declare as a passthrough prefix is rejected with usage):
//
//   --json=<path>       write a machine-readable result file (schema below)
//   --seed=<N>          override the benchmark's base RNG seed
//   --seeds=<N>         run N independent repetitions, seeds base..base+N-1
//   --jobs=<N>          worker threads for the repetitions (0 = one per
//                       hardware thread; default 1)
//   --scale=quick|paper run a CI-sized subset or the full paper-scale sweep
//   --trace-out=<path>  write a Chrome-trace/Perfetto JSON of the run
//   --wall-clock        record a "wall_clock_s" metric in the result file
//                       (off by default: wall time is nondeterministic, and
//                       several CI gates byte-compare result files)
//
// Result schema (schema_version 1):
//
//   {
//     "schema_version": 1,
//     "benchmark": "fig6_shinjuku",
//     "seed": 1000,
//     "scale": "paper",
//     "params": {<flag/config key-values>},
//     "series": [{<one row per sweep point>}, ...],
//     "metrics": {<scalar name: value>},
//     "histograms": {<name>: {count,min,max,mean,p50,...}},
//     "stats": {<StatsRegistry snapshot>}
//   }
//
// With --seeds=N (N > 1) every seed writes its own standalone file of the
// schema above — the --json path with ".seed<SEED>" spliced in before the
// extension — and the --json path itself receives an aggregate document:
// same schema, plus "seeds"/"jobs" keys, a seed column prefixed onto every
// series row, per-run metrics/histograms suffixed "{seed=N}", a
// "wall_clock_s" metric, and the per-run stats registries merged. Per-seed
// files depend only on the seed, never on --jobs: a parallel sweep is
// byte-identical to a serial one.
//
// Each repetition runs against its own `Run` — per-run rows, metrics, and a
// per-run StatsRegistry the benchmark passes to the Machine/SimulationContext
// it builds. Passing --json enables those registries, so the "stats" block
// carries the kernel/ghost/agent counters for the run; without --json (and
// without --trace-out) the instrumentation stays disabled and the benchmark
// measures the zero-overhead path.
#ifndef GHOST_SIM_BENCH_HARNESS_H_
#define GHOST_SIM_BENCH_HARNESS_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/base/json.h"
#include "src/sim/chrome_trace.h"
#include "src/stats/stats.h"

namespace gs {

class Trace;

namespace bench {

enum class Scale { kQuick, kPaper };

class Harness;

// One row of the "series" array: ordered key -> value pairs.
class Row {
 public:
  Row& Set(const std::string& key, int64_t v);
  Row& Set(const std::string& key, int v) { return Set(key, static_cast<int64_t>(v)); }
  Row& Set(const std::string& key, uint64_t v);
  Row& Set(const std::string& key, double v);
  Row& Set(const std::string& key, const std::string& v);
  Row& Set(const std::string& key, const char* v) { return Set(key, std::string(v)); }
  Row& Set(const std::string& key, bool v);
  // Splices a pre-rendered JSON value (e.g. Histogram::ToJson()).
  Row& SetRaw(const std::string& key, std::string json);

 private:
  friend class Harness;
  // Values are pre-rendered JSON, kept in insertion order.
  std::vector<std::pair<std::string, std::string>> cells_;
};

// One repetition of the benchmark: the sinks for its rows/metrics/histograms
// and the StatsRegistry its simulated machine writes to. Handed to the
// Harness::RunAll body, one Run per seed. A Run is used by exactly one
// worker thread; nothing in it is synchronized.
class Run {
 public:
  Run(const Run&) = delete;
  Run& operator=(const Run&) = delete;

  uint64_t seed() const { return seed_; }
  // 0-based repetition index (seed() == base seed + index()).
  int index() const { return index_; }
  Scale scale() const;
  bool quick() const;

  // The registry for this run's machine(s): pass `&stats()` to the Machine /
  // SimulationContext constructor. Enabled iff --json or --trace-out was
  // given (results without counters would be hollow; plain stdout runs keep
  // the zero-overhead path).
  StatsRegistry& stats() { return stats_; }

  Row& AddRow();
  void Metric(const std::string& name, double v);
  void Metric(const std::string& name, int64_t v);
  // `json` must be a pre-rendered JSON value (Histogram/LatencyRecorder/
  // WindowedSeries ToJson() all qualify).
  void HistogramJson(const std::string& name, std::string json);

  // Attaches the Chrome-trace exporter to `trace` when --trace-out was given
  // — only for run 0 (virtual time restarts at 0 for every run, so tracing
  // one keeps the exported timestamps monotonic), and only on the FIRST call
  // (a sweep of many machines traces its first). Returns true iff this call
  // attached.
  bool MaybeAttachTrace(Trace& trace);
  // Exporter when this run is the traced one, nullptr otherwise.
  ChromeTraceExporter* trace_exporter();

 private:
  friend class Harness;
  Run(Harness* harness, uint64_t seed, int index);

  Harness* harness_;
  uint64_t seed_;
  int index_;
  StatsRegistry stats_;
  std::vector<Row> rows_;
  std::vector<std::pair<std::string, std::string>> metrics_;
  std::vector<std::pair<std::string, std::string>> histograms_;
};

class Harness {
 public:
  struct Options {
    // Unknown "--" flags matching one of these prefixes are left in argv for
    // a wrapped framework to consume (e.g. "--benchmark_" for
    // google-benchmark binaries, or a benchmark's own "--scenario="). Flags
    // matching nothing are rejected with usage and exit(2).
    std::vector<std::string> passthrough_prefixes;
    // Benchmarks built on frameworks with process-global state cannot fan
    // out; false rejects --seeds/--jobs values other than 1.
    bool allow_parallel = true;
  };

  // Parses and removes the harness flags from argc/argv. Malformed or
  // unknown flags print usage and exit(2); passthrough-prefixed flags and
  // positional arguments are left in place for the benchmark (or its
  // framework) to consume.
  Harness(std::string benchmark_name, int& argc, char** argv);
  Harness(std::string benchmark_name, int& argc, char** argv, Options options);

  Harness(const Harness&) = delete;
  Harness& operator=(const Harness&) = delete;

  // The benchmark's base seed: `fallback` unless --seed was given. Also
  // records the value for the "seed" field of the result file.
  uint64_t SeedOr(uint64_t fallback);

  Scale scale() const { return scale_; }
  bool quick() const { return scale_ == Scale::kQuick; }
  bool json_requested() const { return !json_path_.empty(); }
  int num_seeds() const { return num_seeds_; }
  // Worker threads requested via --jobs (0 = one per hardware thread).
  int jobs() const { return jobs_; }

  // Records a benchmark parameter into the "params" block (shared by every
  // repetition; call before RunAll).
  void Param(const std::string& key, int64_t v);
  void Param(const std::string& key, int v) { Param(key, static_cast<int64_t>(v)); }
  void Param(const std::string& key, double v);
  void Param(const std::string& key, const std::string& v);
  void Param(const std::string& key, bool v);

  // Runs `body` once per seed (base = SeedOr(fallback_seed), then
  // base+1, ...) on a BatchRunner with --jobs workers. Each invocation gets
  // its own Run; results aggregate by run index, so the output is
  // independent of --jobs. Call once; mutually exclusive with the
  // single-run sinks below.
  void RunAll(uint64_t fallback_seed, const std::function<void(Run&)>& body);

  // Single-run compatibility sinks for benchmarks that cannot fan out
  // (frameworks with global state, LOC counters): forward to an implicit
  // lone Run. Mutually exclusive with RunAll.
  Row& AddRow();
  void Metric(const std::string& name, double v);
  void Metric(const std::string& name, int64_t v);
  void HistogramJson(const std::string& name, std::string json);
  bool MaybeAttachTrace(Trace& trace);
  ChromeTraceExporter* trace_exporter() { return exporter_.get(); }

  // Writes the result file(s) (--json) and the trace (--trace-out). Returns
  // the process exit code (non-zero on I/O failure). Call once, at the end
  // of main.
  int Finish();

 private:
  friend class Run;

  Run& DefaultRun();
  bool AttachTrace(const Run& run, Trace& trace);
  // Renders one run's "series"/"metrics"/"histograms"/"stats" blocks. A
  // non-negative `wall_clock_s` is spliced in as the first metric (top-level
  // document only — per-seed files must stay --jobs-independent).
  void AppendRunBlocks(JsonWriter& w, const Run& run,
                       double wall_clock_s = -1) const;
  void AppendAggregateBlocks(JsonWriter& w) const;
  void AppendDocHeader(JsonWriter& w, uint64_t seed) const;
  int WriteJsonFile(const std::string& path, const std::string& json) const;
  // The --json path with ".seed<SEED>" spliced in before the extension.
  std::string SeedPath(uint64_t seed) const;

  std::string name_;
  Options options_;
  std::string json_path_;
  std::string trace_path_;
  Scale scale_ = Scale::kPaper;
  int num_seeds_ = 1;
  int jobs_ = 1;
  bool seed_overridden_ = false;
  uint64_t seed_override_ = 0;
  uint64_t seed_used_ = 0;
  bool seed_recorded_ = false;
  bool ran_all_ = false;
  bool finished_ = false;
  bool record_wall_clock_ = false;
  double wall_clock_s_ = 0;
  std::chrono::steady_clock::time_point start_ = std::chrono::steady_clock::now();

  std::vector<std::pair<std::string, std::string>> params_;
  std::vector<std::unique_ptr<Run>> runs_;
  std::unique_ptr<ChromeTraceExporter> exporter_;
  bool trace_attached_ = false;
};

}  // namespace bench
}  // namespace gs

#endif  // GHOST_SIM_BENCH_HARNESS_H_
