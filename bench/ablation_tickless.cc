// Ablation (§5): tick-less scheduling for VM workloads.
//
// "When ghOSt is in centralized mode, timer ticks can be disabled across
// CPUs to avoid expensive VM-exits in VM workloads... Since the global agent
// is continuously spinning and making scheduling decisions, there is no need
// for these ticks. Eliminating these ticks across all CPUs will substantially
// reduce guest jitter. This type of optimization is not possible with CFS."
//
// Each 1 ms tick on a CPU running a vCPU costs a VM-exit + re-entry
// (~4 us here). The bench runs the Table 4 VM workload under the ghOSt
// core-scheduling policy with ticks on vs off and reports completion time
// and ticks delivered to vCPU-running CPUs.
#include <cstdio>
#include <memory>

#include "bench/harness.h"
#include "bench/machine_trace.h"
#include "src/agent/agent_process.h"
#include "src/ghost/machine.h"
#include "src/policies/vm_core_sched.h"
#include "src/workloads/vm_workload.h"

namespace gs {
namespace {

Duration kWork = Seconds(1);

struct Result {
  double total_time = 0;
  uint64_t ticks = 0;
};

Result Run(bench::Run& run, bool tickless) {
  CostModel cost;
  cost.smt_contention_factor = 0.88;
  cost.tick_cost = Microseconds(4);  // VM-exit + cache pollution + re-entry
  Machine m(Topology::Make("vmhost-24", 1, 12, 2, 12), cost,
            /*with_core_sched=*/false, &run.stats());
  bench::ScopedMachineTrace trace_scope(run, m.kernel());
  auto enclave = m.CreateEnclave(m.kernel().topology().AllCpus());
  VmWorkload vms(&m.kernel(),
                 {.num_vms = 8, .vcpus_per_vm = 2, .work_per_vcpu = kWork});
  VmCoreSchedPolicy::Options options;
  options.global_cpu = 0;
  VmWorkload* ptr = &vms;
  options.cookie_of = [ptr](int64_t tid) { return ptr->CookieOf(tid); };
  AgentProcess process(&m.kernel(), m.ghost_class(), enclave.get(),
                       std::make_unique<VmCoreSchedPolicy>(options));
  process.Start();
  for (Task* vcpu : vms.vcpus()) {
    enclave->AddTask(vcpu);
  }
  if (tickless) {
    enclave->SetTickless(true);
  }
  vms.Start();
  while (!vms.AllDone() && m.now() < Seconds(60)) {
    m.RunFor(Milliseconds(100));
  }
  Result r;
  r.total_time = ToSeconds(vms.finish_time());
  for (int cpu = 0; cpu < m.kernel().topology().num_cpus(); ++cpu) {
    r.ticks += m.kernel().ticks_delivered(cpu);
  }
  return r;
}

}  // namespace
}  // namespace gs

int main(int argc, char** argv) {
  using namespace gs;
  bench::Harness harness("ablation_tickless", argc, argv);
  if (harness.quick()) {
    kWork = Milliseconds(250);
  }
  harness.Param("work_per_vcpu_ms", static_cast<int64_t>(kWork / 1000000));
  std::printf("Ablation: tick-less centralized scheduling for VM guests (section 5).\n"
              "8 VMs x 2 vCPUs on 12 cores, 1s work each, 4us VM-exit per tick.\n\n");
  harness.RunAll(1, [](bench::Run& run) {
    const Result ticks = Run(run, false);
    const Result tickless = Run(run, true);
    std::printf("%-12s %14s %16s\n", "mode", "total_time_s", "ticks_delivered");
    std::printf("%-12s %14.4f %16llu\n", "ticks on", ticks.total_time,
                (unsigned long long)ticks.ticks);
    std::printf("%-12s %14.4f %16llu\n", "tickless", tickless.total_time,
                (unsigned long long)tickless.ticks);
    run.AddRow()
        .Set("mode", "ticks_on")
        .Set("total_time_s", ticks.total_time)
        .Set("ticks_delivered", ticks.ticks);
    run.AddRow()
        .Set("mode", "tickless")
        .Set("total_time_s", tickless.total_time)
        .Set("ticks_delivered", tickless.ticks);
    run.Metric("guest_time_recovered_pct",
               100.0 * (1.0 - tickless.total_time / ticks.total_time));
    std::printf("\nguest time recovered: %.2f%%\n",
                100.0 * (1.0 - tickless.total_time / ticks.total_time));
  });
  return harness.Finish();
}
