// Ablation (§3.2, §5): the BPF fast path.
//
// "The global agent scheduling loop in §4.4 takes 30 µs, creating potential
// scheduling gaps. Indeed, some of the threads in our system run for only
// 5-30 µs before they block, leaving CPUs idle during these gaps. We can
// mitigate these scheduling gaps using an integrated BPF program."
//
// Setup: a deliberately heavyweight global agent (30 µs added per loop
// iteration) schedules short (15 µs) requests. With the fast path, idle CPUs
// pull published threads from the shared ring at pick_next_task instead of
// waiting out the agent's loop. Expect a large p99 reduction and most
// dispatches served by the fast path.
#include <cstdio>
#include <memory>

#include "bench/harness.h"
#include "bench/machine_trace.h"
#include "src/agent/agent_process.h"
#include "src/ghost/machine.h"
#include "src/policies/centralized_fifo.h"
#include "src/workloads/request_service.h"

namespace gs {
namespace {

constexpr Duration kService = Microseconds(15);
constexpr Duration kSlowLoop = Microseconds(30);
constexpr double kLoadKqps = 300;  // over 7 worker CPUs: ~64% utilization
constexpr Duration kWarmup = Milliseconds(100);
Duration kMeasure = Milliseconds(900);

struct Result {
  double p50_us = 0;
  double p99_us = 0;
  double achieved_kqps = 0;
  uint64_t fastpath_picks = 0;
  uint64_t agent_schedules = 0;
};

Result Run(bench::Run& run, bool use_fastpath, uint64_t seed) {
  Machine m(Topology::Make("small-8", 1, 8, 1, 8), CostModel(),
            /*with_core_sched=*/false, &run.stats());
  bench::ScopedMachineTrace trace_scope(run, m.kernel());
  auto enclave = m.CreateEnclave(CpuMask::AllUpTo(8));
  CentralizedFifoPolicy::Options options;
  options.global_cpu = 0;
  options.extra_loop_cost = kSlowLoop;
  options.use_fastpath = use_fastpath;
  auto policy = std::make_unique<CentralizedFifoPolicy>(options);
  CentralizedFifoPolicy* policy_ptr = policy.get();
  AgentProcess process(&m.kernel(), m.ghost_class(), enclave.get(), std::move(policy));
  process.Start();

  ThreadPoolServer server(&m.kernel(), {.num_workers = 64});
  for (Task* worker : server.workers()) {
    enclave->AddTask(worker);
  }
  FixedServiceModel model(kService);
  PoissonLoadGen gen(&m.loop(), &model, kLoadKqps * 1e3, seed,
                     [&server](Time t, Duration s) { server.Submit(t, s); });
  gen.Start(kWarmup + kMeasure);
  int64_t at_warmup = 0;
  m.loop().ScheduleAt(kWarmup, [&] {
    server.latency().Reset();
    at_warmup = server.completed();
  });
  m.RunFor(kWarmup + kMeasure + Milliseconds(20));

  Result r;
  r.p50_us = server.latency().PercentileUs(50);
  r.p99_us = server.latency().PercentileUs(99);
  r.achieved_kqps =
      static_cast<double>(server.completed() - at_warmup) / ToSeconds(kMeasure) / 1e3;
  r.fastpath_picks = m.ghost_class()->fastpath_picks();
  r.agent_schedules = policy_ptr->scheduled();
  return r;
}

void Record(bench::Run& run, const char* fastpath, const Result& r) {
  run.AddRow()
      .Set("fastpath", fastpath)
      .Set("p50_us", r.p50_us)
      .Set("p99_us", r.p99_us)
      .Set("achieved_kqps", r.achieved_kqps)
      .Set("fastpath_picks", r.fastpath_picks)
      .Set("agent_txns", r.agent_schedules);
}

}  // namespace
}  // namespace gs

int main(int argc, char** argv) {
  using namespace gs;
  bench::Harness harness("ablation_fastpath", argc, argv);
  if (harness.quick()) {
    kMeasure = Milliseconds(300);
  }
  harness.Param("service_us", static_cast<int64_t>(kService / 1000));
  harness.Param("slow_loop_us", static_cast<int64_t>(kSlowLoop / 1000));
  harness.Param("load_kqps", kLoadKqps);
  harness.Param("measure_ms", static_cast<int64_t>(kMeasure / 1000000));
  std::printf("Ablation: BPF-analog fast path closing agent-loop scheduling gaps.\n"
              "8 CPUs, slow (30us/loop) global agent, 15us requests at %.0fk req/s.\n\n",
              kLoadKqps);
  harness.RunAll(7, [](bench::Run& run) {
    const Result off = Run(run, false, run.seed());
    const Result on = Run(run, true, run.seed());
    std::printf("%-14s %10s %10s %10s %14s %12s\n", "fastpath", "p50_us", "p99_us",
                "ach_kqps", "fastpath_picks", "agent_txns");
    std::printf("%-14s %10.1f %10.1f %10.1f %14llu %12llu\n", "off", off.p50_us,
                off.p99_us, off.achieved_kqps, (unsigned long long)off.fastpath_picks,
                (unsigned long long)off.agent_schedules);
    std::printf("%-14s %10.1f %10.1f %10.1f %14llu %12llu\n", "on", on.p50_us, on.p99_us,
                on.achieved_kqps, (unsigned long long)on.fastpath_picks,
                (unsigned long long)on.agent_schedules);
    Record(run, "off", off);
    Record(run, "on", on);
    run.Metric("p99_reduction_pct", 100.0 * (1.0 - on.p99_us / off.p99_us));
    std::printf("\np99 reduction: %.1f%%\n", 100.0 * (1.0 - on.p99_us / off.p99_us));
  });
  return harness.Finish();
}
