// Scoped glue between a benchmark's Machine run and the harness trace
// exporter.
//
// Declare one of these right after constructing the Machine:
//
//   Machine m = MakeMachine();
//   ScopedMachineTrace trace_scope(run, m.kernel());
//
// On construction it attaches the exporter to this run's kernel trace (only
// the first machine of the harness's run 0 actually attaches — see
// Run::MaybeAttachTrace). On destruction — while the kernel is still
// alive — it snapshots every task's tid -> name mapping into the exporter's
// task namer and installs the ghOSt enum namers, so the exported slices read
// "agent/3" / "msg task_wakeup" / "txn_fail estale" instead of raw integers.
#ifndef GHOST_SIM_BENCH_MACHINE_TRACE_H_
#define GHOST_SIM_BENCH_MACHINE_TRACE_H_

#include <map>
#include <memory>
#include <string>

#include "bench/harness.h"
#include "src/ghost/message.h"
#include "src/ghost/transaction.h"
#include "src/kernel/kernel.h"

namespace gs {
namespace bench {

class ScopedMachineTrace {
 public:
  ScopedMachineTrace(Run& run, Kernel& kernel) : run_(run), kernel_(kernel) {
    traced_ = run_.MaybeAttachTrace(kernel_.trace());
  }

  ~ScopedMachineTrace() {
    if (!traced_) {
      return;
    }
    auto names = std::make_shared<std::map<int64_t, std::string>>();
    for (const auto& task : kernel_.tasks()) {
      (*names)[task->tid()] = task->name();
    }
    ChromeTraceExporter* exporter = run_.trace_exporter();
    exporter->SetTaskNamer([names](int64_t tid) {
      auto it = names->find(tid);
      return it == names->end() ? std::string() : it->second;
    });
    exporter->SetArgNamer([](TraceEventType type, int64_t arg) {
      switch (type) {
        case TraceEventType::kMessage:
        case TraceEventType::kMsgDrop:
          return std::string(ToString(static_cast<MessageType>(arg)));
        case TraceEventType::kTxnFail:
          return std::string(ToString(static_cast<TxnStatus>(arg)));
        default:
          return std::string();
      }
    });
  }

  ScopedMachineTrace(const ScopedMachineTrace&) = delete;
  ScopedMachineTrace& operator=(const ScopedMachineTrace&) = delete;

  bool traced() const { return traced_; }

 private:
  Run& run_;
  Kernel& kernel_;
  bool traced_ = false;
};

}  // namespace bench
}  // namespace gs

#endif  // GHOST_SIM_BENCH_MACHINE_TRACE_H_
