// Fig 6 reproduction (§4.2): ghOSt vs Shinjuku vs CFS on a dispersive
// RocksDB-style workload.
//
//   6a: 99th-percentile latency vs offered load, no co-location.
//   6b: same with a co-located batch app.
//   6c: the batch app's attained CPU share vs offered load.
//
// Machine: one socket of a 2-socket Xeon E5-2658 (12 cores / 24 CPUs), as in
// the paper. Workload: open-loop Poisson; 99.5% of requests ~10 us (6 us
// RocksDB GET + 4 us processing), 0.5% take 10 ms; 30 us preemption
// timeslice for the preemptive systems.
//
// Expected shape (paper): Shinjuku best; ghOSt-Shinjuku within ~5% of its
// saturation throughput with slightly higher tails at high load;
// CFS-Shinjuku's tail knees ~30% earlier. Under co-location (6c) Shinjuku
// gives the batch app zero CPU while ghOSt matches CFS-like sharing without
// hurting tails (6b).
#include <cstdio>
#include <memory>
#include <set>

#include "bench/harness.h"
#include "bench/machine_trace.h"
#include "src/agent/agent_process.h"
#include "src/baselines/shinjuku_dataplane.h"
#include "src/ghost/machine.h"
#include "src/policies/factory.h"
#include "src/workloads/batch.h"
#include "src/workloads/request_service.h"

namespace gs {
namespace {

constexpr Duration kShort = Microseconds(10);  // 6 us GET + 4 us processing
constexpr Duration kLong = Milliseconds(10);
constexpr double kPLong = 0.005;
constexpr Duration kTimeslice = Microseconds(30);
constexpr int kNumWorkers = 200;
constexpr int kBatchThreads = 10;

// Sweep sizing: --scale=paper is the full Fig 6 sweep; --scale=quick is the
// CI smoke configuration (two load points, shorter windows).
Duration kWarmup = Milliseconds(100);
Duration kMeasure = Milliseconds(900);

// CPU plan on the 24-CPU socket: core 0 (CPUs 0,12) belongs to the load
// generator. The agent/dispatcher takes core 1 (CPUs 1,13); request
// processing gets the remaining 20 hyperthread CPUs.
CpuMask ServerCpus() {
  CpuMask mask;
  for (int cpu = 2; cpu <= 11; ++cpu) {
    mask.Set(cpu);
  }
  for (int cpu = 14; cpu <= 23; ++cpu) {
    mask.Set(cpu);
  }
  return mask;
}

struct Result {
  double offered_kqps = 0;
  double achieved_kqps = 0;
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double batch_share = 0;
};

CostModel Fig6Cost() {
  CostModel cost;
  // The paper's service times were measured end-to-end on the SMT machine;
  // fold SMT effects into the service times rather than double-counting.
  cost.smt_contention_factor = 1.0;
  cost.agent_smt_contention_factor = 1.0;
  return cost;
}

Machine MakeMachine(bench::Run& run) {
  return Machine(Topology::IntelE5_24(), Fig6Cost(), /*with_core_sched=*/false,
                 &run.stats());
}

Result RunGhost(bench::Run& run, double offered_kqps, bool with_batch, uint64_t seed) {
  Machine m = MakeMachine(run);
  bench::ScopedMachineTrace trace_scope(run, m.kernel());
  CpuMask enclave_cpus = ServerCpus();
  enclave_cpus.Set(1);  // global agent home
  auto enclave = m.CreateEnclave(enclave_cpus);

  BatchApp batch(&m.kernel(), {.num_threads = kBatchThreads});
  auto batch_tids = std::make_shared<std::set<int64_t>>();
  // Construct through the factory — the same path the scenario runner uses.
  scenario::PolicySpec spec;
  spec.kind = with_batch ? "shinjuku_shenango" : "shinjuku";
  spec.timeslice_us = static_cast<double>(kTimeslice) / 1e3;
  PolicyEnv env;
  env.default_global_cpu = 1;
  if (with_batch) {
    for (Task* t : batch.threads()) {
      batch_tids->insert(t->tid());
    }
    env.tier_of = [batch_tids](int64_t tid) { return batch_tids->count(tid) ? 1 : 0; };
  }
  AgentProcess process(&m.kernel(), m.ghost_class(), enclave.get(),
                       MakeScenarioPolicy(spec, env));
  process.Start();

  ThreadPoolServer server(&m.kernel(), {.num_workers = kNumWorkers});
  for (Task* worker : server.workers()) {
    enclave->AddTask(worker);
  }
  if (with_batch) {
    for (Task* t : batch.threads()) {
      enclave->AddTask(t);
    }
    batch.Start();
  }

  BimodalServiceModel model(kShort, kLong, kPLong);
  PoissonLoadGen gen(&m.loop(), &model, offered_kqps * 1e3, seed,
                     [&server](Time t, Duration s) { server.Submit(t, s); });
  gen.Start(kWarmup + kMeasure);

  int64_t completed_at_warmup = 0;
  m.loop().ScheduleAt(kWarmup, [&] {
    server.latency().Reset();
    completed_at_warmup = server.completed();
    batch.MarkWindow();
  });
  m.RunFor(kWarmup + kMeasure + Milliseconds(50));

  Result r;
  r.offered_kqps = offered_kqps;
  r.achieved_kqps =
      static_cast<double>(server.completed() - completed_at_warmup) /
      ToSeconds(kMeasure + Milliseconds(50)) / 1e3;
  r.p50_us = server.latency().PercentileUs(50);
  r.p99_us = server.latency().PercentileUs(99);
  r.p999_us = server.latency().PercentileUs(99.9);
  r.batch_share = with_batch
                      ? batch.CpuShare(kWarmup, m.now(), m.kernel().topology().num_cpus())
                      : 0;
  return r;
}

Result RunCfs(bench::Run& run, double offered_kqps, bool with_batch, uint64_t seed) {
  Machine m = MakeMachine(run);
  CpuMask worker_cpus = ServerCpus();
  worker_cpus.Set(1);
  worker_cpus.Set(13);

  ThreadPoolServer server(&m.kernel(), {.num_workers = kNumWorkers});
  for (Task* worker : server.workers()) {
    m.kernel().SetAffinity(worker, worker_cpus);
    m.kernel().SetNice(worker, -20);  // the paper's CFS co-location setup
  }
  BatchApp batch(&m.kernel(), {.num_threads = kBatchThreads});
  if (with_batch) {
    for (Task* t : batch.threads()) {
      m.kernel().SetAffinity(t, worker_cpus);
      m.kernel().SetNice(t, 19);
    }
    batch.Start();
  }

  BimodalServiceModel model(kShort, kLong, kPLong);
  PoissonLoadGen gen(&m.loop(), &model, offered_kqps * 1e3, seed,
                     [&server](Time t, Duration s) { server.Submit(t, s); });
  gen.Start(kWarmup + kMeasure);

  int64_t completed_at_warmup = 0;
  m.loop().ScheduleAt(kWarmup, [&] {
    server.latency().Reset();
    completed_at_warmup = server.completed();
    batch.MarkWindow();
  });
  m.RunFor(kWarmup + kMeasure + Milliseconds(50));

  Result r;
  r.offered_kqps = offered_kqps;
  r.achieved_kqps =
      static_cast<double>(server.completed() - completed_at_warmup) /
      ToSeconds(kMeasure + Milliseconds(50)) / 1e3;
  r.p50_us = server.latency().PercentileUs(50);
  r.p99_us = server.latency().PercentileUs(99);
  r.p999_us = server.latency().PercentileUs(99.9);
  r.batch_share = with_batch
                      ? batch.CpuShare(kWarmup, m.now(), m.kernel().topology().num_cpus())
                      : 0;
  return r;
}

Result RunShinjuku(bench::Run& run, double offered_kqps, bool with_batch, uint64_t seed) {
  Machine m = MakeMachine(run);
  ShinjukuDataplane::Options options;
  const CpuMask workers = ServerCpus();
  for (int cpu = workers.First(); cpu >= 0; cpu = workers.NextAfter(cpu)) {
    options.worker_cpus.push_back(cpu);
  }
  options.dispatcher_cpus = {1, 13};
  options.timeslice = kTimeslice;
  ShinjukuDataplane dataplane(&m.kernel(), m.agent_class(), options);

  BatchApp batch(&m.kernel(), {.num_threads = kBatchThreads});
  if (with_batch) {
    CpuMask batch_cpus = ServerCpus();
    batch_cpus.Set(1);
    batch_cpus.Set(13);
    for (Task* t : batch.threads()) {
      m.kernel().SetAffinity(t, batch_cpus);
      m.kernel().SetNice(t, 19);
    }
    batch.Start();
  }

  BimodalServiceModel model(kShort, kLong, kPLong);
  PoissonLoadGen gen(&m.loop(), &model, offered_kqps * 1e3, seed,
                     [&dataplane](Time t, Duration s) { dataplane.Submit(t, s); });
  gen.Start(kWarmup + kMeasure);

  int64_t completed_at_warmup = 0;
  m.loop().ScheduleAt(kWarmup, [&] {
    dataplane.latency().Reset();
    completed_at_warmup = dataplane.completed();
    batch.MarkWindow();
  });
  m.RunFor(kWarmup + kMeasure + Milliseconds(50));

  Result r;
  r.offered_kqps = offered_kqps;
  r.achieved_kqps =
      static_cast<double>(dataplane.completed() - completed_at_warmup) /
      ToSeconds(kMeasure + Milliseconds(50)) / 1e3;
  r.p50_us = dataplane.latency().PercentileUs(50);
  r.p99_us = dataplane.latency().PercentileUs(99);
  r.p999_us = dataplane.latency().PercentileUs(99.9);
  r.batch_share = with_batch
                      ? batch.CpuShare(kWarmup, m.now(), m.kernel().topology().num_cpus())
                      : 0;
  return r;
}

void PrintHeader(const char* title) {
  std::printf("\n== %s ==\n", title);
  std::printf("%-16s %10s %10s %10s %10s %10s %10s\n", "system", "offer_kqps",
              "ach_kqps", "p50_us", "p99_us", "p99.9_us", "batchshr");
}

void PrintRow(const char* system, const Result& r) {
  std::printf("%-16s %10.0f %10.1f %10.1f %10.1f %10.1f %10.3f\n", system,
              r.offered_kqps, r.achieved_kqps, r.p50_us, r.p99_us, r.p999_us,
              r.batch_share);
  std::fflush(stdout);
}

void Record(bench::Run& run, const char* system, bool with_batch, const Result& r) {
  PrintRow(system, r);
  run.AddRow()
      .Set("system", system)
      .Set("with_batch", with_batch)
      .Set("offered_kqps", r.offered_kqps)
      .Set("achieved_kqps", r.achieved_kqps)
      .Set("p50_us", r.p50_us)
      .Set("p99_us", r.p99_us)
      .Set("p999_us", r.p999_us)
      .Set("batch_share", r.batch_share);
}

void RunSweep(bench::Run& run, bool with_batch) {
  PrintHeader(with_batch ? "Fig 6b/6c: RocksDB co-located with a batch app"
                         : "Fig 6a: tail latency for dispersive loads");
  const std::vector<double> loads =
      run.quick() ? std::vector<double>{25, 100}
                  : std::vector<double>{25, 50, 100, 150, 200, 240, 270, 290, 310};
  for (double load : loads) {
    const uint64_t seed = run.seed() + static_cast<uint64_t>(load);
    Record(run, "shinjuku", with_batch, RunShinjuku(run, load, with_batch, seed));
    Record(run, "ghost-shinjuku", with_batch, RunGhost(run, load, with_batch, seed));
    Record(run, "cfs-shinjuku", with_batch, RunCfs(run, load, with_batch, seed));
  }
}

}  // namespace
}  // namespace gs

int main(int argc, char** argv) {
  gs::bench::Harness harness("fig6_shinjuku", argc, argv);
  if (harness.quick()) {
    // CI smoke sizing: fewer load points, shorter windows.
    gs::kWarmup = gs::Milliseconds(50);
    gs::kMeasure = gs::Milliseconds(200);
  }
  harness.Param("timeslice_us", static_cast<int64_t>(gs::kTimeslice / 1000));
  harness.Param("num_workers", gs::kNumWorkers);
  harness.Param("batch_threads", gs::kBatchThreads);
  harness.Param("warmup_ms", static_cast<int64_t>(gs::kWarmup / 1000000));
  harness.Param("measure_ms", static_cast<int64_t>(gs::kMeasure / 1000000));

  std::printf("Fig 6 reproduction: Shinjuku-style dispersive workload on 24-CPU socket\n");
  std::printf("workload: 99.5%% x %lld us + 0.5%% x %lld ms, 30 us timeslice, 200 workers\n",
              static_cast<long long>(gs::kShort / 1000),
              static_cast<long long>(gs::kLong / 1000000));
  harness.RunAll(1000, [](gs::bench::Run& run) {
    gs::RunSweep(run, /*with_batch=*/false);
    gs::RunSweep(run, /*with_batch=*/true);
  });
  return harness.Finish();
}
