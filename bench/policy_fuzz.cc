// Policy-fuzzer harness: sweeps generated hostile policies against the
// mechanism layer (src/verify/policy_fuzzer) and exits non-zero on any
// violation, so the binary doubles as the CI fuzz-smoke gate.
//
// Flags:
//   --cases=<N>        hostile configs to generate (default 200)
//   --seed=<N>         base seed; case i uses seed base+i (default 1)
//   --schedules=<N>    random-walk executions per config (default 2)
//   --jobs=<N>         parallel walks per case (default 1)
//   --stop-at-first    stop the sweep at its first violating case
//   --seam=<name>      reintroduce a fixed mechanism bug through its test
//                      seam (unguarded_commit_ipis | leak_teardown_cpu_state |
//                      deferred_exit_teardown); repeatable. With a seam on,
//                      the sweep is *expected* to catch violations.
//   --replay-out=<dir> write a shrunken replay file per violating case
//   --replay=<file>    re-execute a saved replay and exit (0 = reproduced)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/verify/policy_fuzzer.h"

namespace gs {
namespace {

struct Flags {
  int cases = 200;
  uint64_t seed = 1;
  uint64_t schedules = 2;
  int jobs = 1;
  bool stop_at_first = false;
  FuzzSeams seams;
  std::string replay_out;
  std::string replay;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--cases=N] [--seed=N] [--schedules=N] [--jobs=N]\n"
               "          [--stop-at-first] [--seam=NAME] [--replay-out=DIR]\n"
               "          [--replay=FILE]\n",
               argv0);
  return 2;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
    };
    if (const char* v = value("--cases=")) {
      flags->cases = std::atoi(v);
    } else if (const char* v = value("--seed=")) {
      flags->seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--schedules=")) {
      flags->schedules = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--jobs=")) {
      flags->jobs = std::atoi(v);
    } else if (std::strcmp(arg, "--stop-at-first") == 0) {
      flags->stop_at_first = true;
    } else if (const char* v = value("--seam=")) {
      if (std::strcmp(v, "unguarded_commit_ipis") == 0) {
        flags->seams.unguarded_commit_ipis = true;
      } else if (std::strcmp(v, "leak_teardown_cpu_state") == 0) {
        flags->seams.leak_teardown_cpu_state = true;
      } else if (std::strcmp(v, "deferred_exit_teardown") == 0) {
        flags->seams.deferred_exit_teardown = true;
      } else {
        std::fprintf(stderr, "error: unknown seam '%s'\n", v);
        return false;
      }
    } else if (const char* v = value("--replay-out=")) {
      flags->replay_out = v;
    } else if (const char* v = value("--replay=")) {
      flags->replay = v;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", arg);
      return false;
    }
  }
  return true;
}

int RunReplay(const std::string& path) {
  HostileConfig config;
  FuzzSeams seams;
  Explorer::ChoiceTrace trace;
  std::string expected;
  if (!LoadFuzzReplay(path, &config, &seams, &trace, &expected)) {
    std::fprintf(stderr, "error: cannot parse replay file %s\n", path.c_str());
    return 2;
  }
  const std::string violation = RunFuzzReplay(config, seams, trace);
  std::printf("replay: %s\nseed: %llu\nexpected: %s\n", path.c_str(),
              static_cast<unsigned long long>(config.seed), expected.c_str());
  if (violation.empty()) {
    std::printf("result: no violation (replay did not reproduce)\n");
    return 1;
  }
  std::printf("result: %s\n", violation.c_str());
  return 0;
}

int Run(const Flags& flags) {
  if (!flags.replay.empty()) {
    return RunReplay(flags.replay);
  }

  FuzzSweepOptions options;
  options.cases = flags.cases;
  options.base_seed = flags.seed;
  options.schedules_per_case = flags.schedules;
  options.jobs = flags.jobs;
  options.stop_at_first_case = flags.stop_at_first;
  options.seams = flags.seams;
  const FuzzSweepResult sweep = RunFuzzSweep(options);

  std::printf("policy-fuzz: %d cases, %llu schedules, %zu violation(s)\n",
              sweep.cases_run,
              static_cast<unsigned long long>(sweep.total_schedules),
              sweep.violations.size());
  int saved = 0;
  for (const FuzzCaseResult& v : sweep.violations) {
    std::printf("  seed %llu: %s\n",
                static_cast<unsigned long long>(v.config.seed),
                v.violation.c_str());
    if (!flags.replay_out.empty()) {
      const std::string path = flags.replay_out + "/fuzz_seed_" +
                               std::to_string(v.config.seed) + ".replay";
      if (SaveFuzzReplay(path, v, flags.seams)) {
        std::printf("  replay written: %s\n", path.c_str());
        ++saved;
      } else {
        std::fprintf(stderr, "error: cannot write replay %s\n", path.c_str());
      }
    }
  }
  if (!sweep.violations.empty()) {
    return 1;
  }
  std::printf("policy-fuzz: mechanism layer survived every generated policy\n");
  return 0;
}

}  // namespace
}  // namespace gs

int main(int argc, char** argv) {
  gs::Flags flags;
  if (!gs::ParseFlags(argc, argv, &flags)) {
    return gs::Usage(argv[0]);
  }
  return gs::Run(flags);
}
