// Predictive policy family vs probe-based baselines (ROADMAP item 4).
//
// Part 1 — Fig 6 workload (dispersive RocksDB bimodal, 24-CPU socket):
//   ghost-shinjuku (30 us probe rotation) vs predictive-shinjuku (per-tid
//   Markov service prediction, long lane + backstop, no probe). The
//   acceptance metric is tail latency: predictive-shinjuku must beat the
//   probe baseline's P99.9 at one or more load points because it (a) fills
//   idle CPUs before preempting and (b) never burns preemptions on
//   predicted-shorts.
//
// Part 2 — Fig 8 workload (Google Search on 256-CPU AMD Rome):
//   search vs predictive-search. The predictive variant feeds a per-tid
//   wakeup-affinity predictor into placement as a CCX hint, pulling
//   threads back to the CCX their history says is warm.
//
// Every ghOSt policy here is constructed through the factory
// (MakeScenarioPolicy), the same single construction path the scenario
// runner uses — the bench differs from a scenario only in workload wiring.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "bench/harness.h"
#include "bench/machine_trace.h"
#include "src/agent/agent_process.h"
#include "src/ghost/machine.h"
#include "src/policies/centralized_fifo.h"
#include "src/policies/factory.h"
#include "src/policies/predictive_shinjuku.h"
#include "src/policies/search.h"
#include "src/scenario/scenario.h"
#include "src/workloads/request_service.h"
#include "src/workloads/search_workload.h"

namespace gs {
namespace {

// ---------------------------------------------------------------------------
// Part 1: Fig 6 bimodal request workload, probe vs predictive Shinjuku.
// Same machine/workload constants as fig6_shinjuku.cc.
constexpr Duration kShort = Microseconds(10);
constexpr Duration kLong = Milliseconds(10);
constexpr double kPLong = 0.005;
constexpr int kNumWorkers = 200;

Duration kWarmup = Milliseconds(100);
Duration kMeasure = Milliseconds(900);
Duration kSearchRun = Seconds(30);

CpuMask ServerCpus() {
  CpuMask mask;
  for (int cpu = 2; cpu <= 11; ++cpu) {
    mask.Set(cpu);
  }
  for (int cpu = 14; cpu <= 23; ++cpu) {
    mask.Set(cpu);
  }
  return mask;
}

CostModel Fig6Cost() {
  CostModel cost;
  cost.smt_contention_factor = 1.0;
  cost.agent_smt_contention_factor = 1.0;
  return cost;
}

struct Result {
  double offered_kqps = 0;
  double achieved_kqps = 0;
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
};

// One Fig 6 run under the factory-built policy for `spec`. The policy is
// owned by the in-run AgentProcess, so `scrape` (may be null) is invoked
// with it after the run completes but before teardown.
Result RunFig6(bench::Run& run, const scenario::PolicySpec& spec,
               double offered_kqps, uint64_t seed,
               const std::function<void(const Policy&)>& scrape) {
  Machine m(Topology::IntelE5_24(), Fig6Cost(), /*with_core_sched=*/false,
            &run.stats());
  bench::ScopedMachineTrace trace_scope(run, m.kernel());
  CpuMask enclave_cpus = ServerCpus();
  enclave_cpus.Set(1);  // global agent home
  auto enclave = m.CreateEnclave(enclave_cpus);

  PolicyEnv env;
  env.default_global_cpu = 1;
  std::unique_ptr<Policy> policy = MakeScenarioPolicy(spec, env);
  Policy* policy_ptr = policy.get();
  AgentProcess process(&m.kernel(), m.ghost_class(), enclave.get(),
                       std::move(policy));
  process.Start();

  ThreadPoolServer server(&m.kernel(), {.num_workers = kNumWorkers});
  for (Task* worker : server.workers()) {
    enclave->AddTask(worker);
  }

  BimodalServiceModel model(kShort, kLong, kPLong);
  PoissonLoadGen gen(&m.loop(), &model, offered_kqps * 1e3, seed,
                     [&server](Time t, Duration s) { server.Submit(t, s); });
  gen.Start(kWarmup + kMeasure);

  int64_t completed_at_warmup = 0;
  m.loop().ScheduleAt(kWarmup, [&] {
    server.latency().Reset();
    completed_at_warmup = server.completed();
  });
  m.RunFor(kWarmup + kMeasure + Milliseconds(50));

  Result r;
  r.offered_kqps = offered_kqps;
  r.achieved_kqps =
      static_cast<double>(server.completed() - completed_at_warmup) /
      ToSeconds(kMeasure + Milliseconds(50)) / 1e3;
  r.p50_us = server.latency().PercentileUs(50);
  r.p99_us = server.latency().PercentileUs(99);
  r.p999_us = server.latency().PercentileUs(99.9);
  if (scrape) {
    scrape(*policy_ptr);
  }
  return r;
}

void RecordFig6(bench::Run& run, const char* system, const Result& r) {
  std::printf("%-20s %10.0f %10.1f %10.1f %10.1f %10.1f\n", system,
              r.offered_kqps, r.achieved_kqps, r.p50_us, r.p99_us, r.p999_us);
  std::fflush(stdout);
  run.AddRow()
      .Set("part", "fig6")
      .Set("system", system)
      .Set("offered_kqps", r.offered_kqps)
      .Set("achieved_kqps", r.achieved_kqps)
      .Set("p50_us", r.p50_us)
      .Set("p99_us", r.p99_us)
      .Set("p999_us", r.p999_us);
}

void RunShinjukuSweep(bench::Run& run) {
  std::printf("\n== probe vs predictive Shinjuku (Fig 6 workload) ==\n");
  std::printf("%-20s %10s %10s %10s %10s %10s\n", "system", "offer_kqps",
              "ach_kqps", "p50_us", "p99_us", "p99.9_us");
  const std::vector<double> loads =
      run.quick() ? std::vector<double>{25, 100}
                  : std::vector<double>{25, 50, 100, 150, 200, 240, 270};
  int win_points = 0;
  double best_ratio = 0;  // probe_p999 / predictive_p999, >1 = win
  for (double load : loads) {
    const uint64_t seed = run.seed() + static_cast<uint64_t>(load);
    const std::string sfx = "{load=" + std::to_string(static_cast<int>(load)) + "}";

    scenario::PolicySpec probe_spec;
    probe_spec.kind = "shinjuku";
    probe_spec.timeslice_us = 30;
    const Result probe =
        RunFig6(run, probe_spec, load, seed, [&](const Policy& policy) {
          // Probe baseline's preemption count, for the "probe burns
          // preemptions on longs" comparison.
          const auto& p = static_cast<const CentralizedFifoPolicy&>(policy);
          run.Metric("preemptions_probe" + sfx,
                     static_cast<int64_t>(p.preemptions()));
        });
    RecordFig6(run, "ghost-shinjuku", probe);

    scenario::PolicySpec pred_spec;
    pred_spec.kind = "predictive_shinjuku";
    pred_spec.timeslice_us = 30;
    pred_spec.long_threshold_us = 100;
    pred_spec.backstop_multiplier = 4;
    const Result pred =
        RunFig6(run, pred_spec, load, seed, [&](const Policy& policy) {
          const auto& p = static_cast<const PredictiveShinjukuPolicy&>(policy);
          run.Metric("predicted_short" + sfx,
                     static_cast<int64_t>(p.predicted_short()));
          run.Metric("predicted_long" + sfx,
                     static_cast<int64_t>(p.predicted_long()));
          run.Metric("backstop_demotions" + sfx,
                     static_cast<int64_t>(p.backstop_demotions()));
          run.Metric("preemptions_predictive" + sfx,
                     static_cast<int64_t>(p.preemptions()));
        });
    RecordFig6(run, "predictive-shinjuku", pred);

    const double ratio = pred.p999_us > 0 ? probe.p999_us / pred.p999_us : 0;
    if (pred.p999_us < probe.p999_us) {
      ++win_points;
    }
    best_ratio = std::max(best_ratio, ratio);
    run.Metric("p999_ratio{load=" + std::to_string(static_cast<int>(load)) + "}",
               ratio);
  }
  // The acceptance gate: predictive must beat probe P99.9 somewhere.
  run.Metric("p999_win_points", static_cast<int64_t>(win_points));
  run.Metric("best_p999_ratio", best_ratio);
  std::printf("p99.9 win points: %d/%zu (best probe/predictive ratio %.2f)\n",
              win_points, loads.size(), best_ratio);
}

// ---------------------------------------------------------------------------
// Part 2: Fig 8 Search workload, baseline vs predictive placement.

double RunSearch(bench::Run& run, bool predictive, uint64_t seed,
                 const char* system) {
  Machine m(Topology::AmdRome256(), CostModel().WithCacheWarmth(),
            /*with_core_sched=*/false, &run.stats());
  auto enclave = m.CreateEnclave(m.kernel().topology().AllCpus());

  scenario::PolicySpec spec;
  spec.kind = predictive ? "predictive_search" : "search";
  spec.global_cpu = 0;
  PolicyEnv env;
  env.default_global_cpu = 0;
  std::unique_ptr<Policy> policy = MakeScenarioPolicy(spec, env);
  auto* search = static_cast<SearchPolicy*>(policy.get());
  AgentProcess process(&m.kernel(), m.ghost_class(), enclave.get(),
                       std::move(policy));
  process.Start();

  SearchWorkload workload(&m.kernel(), {.seed = seed});
  for (Task* worker : workload.workers()) {
    enclave->AddTask(worker);
  }
  workload.Start(kSearchRun);
  m.RunFor(kSearchRun + Milliseconds(200));

  static const char* kNames[3] = {"A", "B", "C"};
  double mean_p99 = 0;
  for (int type = 0; type < 3; ++type) {
    auto q = static_cast<SearchWorkload::QueryType>(type);
    const double p99 = workload.latency(q).PercentileUs(99);
    const double qps =
        static_cast<double>(workload.completed(q)) / ToSeconds(kSearchRun);
    mean_p99 += p99 / 3.0;
    run.AddRow()
        .Set("part", "fig8")
        .Set("system", system)
        .Set("query_type", kNames[type])
        .Set("total_qps", qps)
        .Set("overall_p99_us", p99);
    std::printf("%-20s type %s: %8.0f qps, p99 %8.0f us\n", system, kNames[type],
                qps, p99);
  }
  run.Metric(std::string("hint_hits{") + system + "}",
             static_cast<int64_t>(search->hint_hits()));
  run.Metric(std::string("warmth_deferred{") + system + "}",
             static_cast<int64_t>(search->deferred_for_warmth()));
  std::fflush(stdout);
  return mean_p99;
}

void RunSearchComparison(bench::Run& run) {
  std::printf("\n== search vs predictive-search (Fig 8 workload, %lld s) ==\n",
              static_cast<long long>(kSearchRun / 1000000000));
  const double base = RunSearch(run, /*predictive=*/false, run.seed(), "search");
  const double pred =
      RunSearch(run, /*predictive=*/true, run.seed(), "predictive-search");
  run.Metric("search_mean_p99_us", base);
  run.Metric("predictive_search_mean_p99_us", pred);
  std::printf("mean p99 across query types: search %.0f us, predictive %.0f us\n",
              base, pred);
}

}  // namespace
}  // namespace gs

int main(int argc, char** argv) {
  gs::bench::Harness harness("fig_predict", argc, argv);
  if (harness.quick()) {
    gs::kWarmup = gs::Milliseconds(50);
    gs::kMeasure = gs::Milliseconds(200);
    gs::kSearchRun = gs::Seconds(3);
  }
  harness.Param("num_workers", gs::kNumWorkers);
  harness.Param("warmup_ms", static_cast<int64_t>(gs::kWarmup / 1000000));
  harness.Param("measure_ms", static_cast<int64_t>(gs::kMeasure / 1000000));
  harness.Param("search_run_s", static_cast<int64_t>(gs::kSearchRun / 1000000000));

  std::printf("Predictive policies vs probe baselines.\n"
              "Part 1: Fig 6 bimodal (99.5%% x 10 us + 0.5%% x 10 ms).\n"
              "Part 2: Fig 8 Search placement with wakeup-affinity hints.\n");
  harness.RunAll(42, [](gs::bench::Run& run) {
    gs::RunShinjukuSweep(run);
    gs::RunSearchComparison(run);
  });
  return harness.Finish();
}
