// Host-hardware nanobenchmarks of the real shared-memory substrates
// (google-benchmark).
//
// Table 3's operations run on a real Xeon; our reproduction's mechanism runs
// in a simulator, but its shared-memory building blocks — the SPSC message
// ring, the MPMC fast-path ring, the status-word reads — are real lock-free
// code. This binary measures their actual cost on the host, demonstrating
// that the per-operation primitives the cost model assumes (tens to hundreds
// of ns) are achievable with these exact data structures.
#include <benchmark/benchmark.h>

#include "bench/harness.h"
#include "src/base/cpumask.h"
#include "src/base/histogram.h"
#include "src/base/mpmc_ring.h"
#include "src/base/rng.h"
#include "src/base/spsc_ring.h"
#include "src/ghost/message.h"
#include "src/sim/event_loop.h"

namespace gs {
namespace {

void BM_SpscRingPushPop(benchmark::State& state) {
  SpscRing<Message> ring(4096);
  Message msg;
  msg.type = MessageType::kTaskWakeup;
  msg.tid = 42;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.TryPush(msg));
    benchmark::DoNotOptimize(ring.TryPop());
  }
}
BENCHMARK(BM_SpscRingPushPop);

void BM_SpscRingBatchDrain(benchmark::State& state) {
  SpscRing<Message> ring(4096);
  Message msg;
  msg.type = MessageType::kTaskWakeup;
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      ring.TryPush(msg);
    }
    while (auto m = ring.TryPop()) {
      benchmark::DoNotOptimize(*m);
    }
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SpscRingBatchDrain)->Arg(1)->Arg(10)->Arg(100);

void BM_MpmcRingPushPop(benchmark::State& state) {
  MpmcRing<int64_t> ring(1024);
  int64_t tid = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.TryPush(tid++));
    benchmark::DoNotOptimize(ring.TryPop());
  }
}
BENCHMARK(BM_MpmcRingPushPop);

void BM_HistogramAdd(benchmark::State& state) {
  Histogram hist;
  Rng rng(1);
  for (auto _ : state) {
    hist.Add(static_cast<int64_t>(rng.NextBounded(100'000'000)));
  }
}
BENCHMARK(BM_HistogramAdd);

void BM_CpuMaskScan(benchmark::State& state) {
  CpuMask mask;
  Rng rng(2);
  for (int i = 0; i < 64; ++i) {
    mask.Set(static_cast<int>(rng.NextBounded(256)));
  }
  for (auto _ : state) {
    int count = 0;
    for (int cpu = mask.First(); cpu >= 0; cpu = mask.NextAfter(cpu)) {
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_CpuMaskScan);

void BM_EventLoopScheduleRun(benchmark::State& state) {
  EventLoop loop;
  for (auto _ : state) {
    loop.ScheduleAfter(1, [] {});
    loop.RunOne();
  }
}
BENCHMARK(BM_EventLoopScheduleRun);

void BM_RngNext(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
}
BENCHMARK(BM_RngNext);

// Console output as usual, plus one harness row per benchmark run so the
// nanobench numbers land in the --json results file.
class HarnessReporter : public benchmark::ConsoleReporter {
 public:
  explicit HarnessReporter(bench::Harness* harness) : harness_(harness) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) {
        continue;
      }
      bench::Row& row = harness_->AddRow();
      row.Set("name", run.benchmark_name())
          .Set("iterations", static_cast<int64_t>(run.iterations))
          .Set("real_time_ns", run.GetAdjustedRealTime())
          .Set("cpu_time_ns", run.GetAdjustedCPUTime());
      for (const auto& [name, counter] : run.counters) {
        row.Set(name, static_cast<double>(counter.value));
      }
    }
  }

 private:
  bench::Harness* harness_;
};

}  // namespace
}  // namespace gs

int main(int argc, char** argv) {
  // The harness strips its own flags first; --benchmark_* flags pass
  // through to google-benchmark, whose global registry cannot run multi-seed
  // repetitions in one process.
  gs::bench::Harness harness("table3_host", argc, argv,
                             {.passthrough_prefixes = {"--benchmark_"},
                              .allow_parallel = false});
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  gs::HarnessReporter reporter(&harness);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return harness.Finish();
}
