// Schedule-space exploration harness: drives src/verify/explorer over the
// mechanism-race scenario library and reports coverage (schedules, choice
// points, sleep-set prunes) per scenario.
//
// For every scenario two searches run: the *fixed* code (must sweep clean
// across the whole budget) and the *mutant* with the historical bug
// reintroduced through its test seam (must be caught, and the shrunken
// violating trace must replay deterministically). Exit status is non-zero if
// either side misbehaves, so the binary doubles as the CI smoke gate.
//
// Extra flags (on top of the harness's --json/--seed/--scale):
//   --scenario=<name>    run one scenario instead of all
//   --mode=dfs|walk      exhaustive DFS (default) or random-walk fallback
//   --budget=<N>         max schedules per search (default: scale-dependent)
//   --no-sleep-sets      disable DPOR-lite pruning (coverage comparison)
//   --replay-out=<dir>   write a replay file per caught mutant
//   --replay=<file>      re-execute a saved replay file and exit
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/verify/explorer.h"
#include "src/verify/explorer_scenarios.h"

namespace gs {
namespace {

struct Flags {
  std::string scenario;  // empty = all
  std::string mode = "dfs";
  uint64_t budget = 0;  // 0 = scale default
  bool sleep_sets = true;
  std::string replay_out;
  std::string replay;
};

// Consumes the explorer-specific flags; leaves anything else untouched.
Flags ParseFlags(int& argc, char** argv) {
  Flags flags;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
    };
    if (const char* v = value("--scenario=")) {
      flags.scenario = v;
    } else if (const char* v = value("--mode=")) {
      flags.mode = v;
    } else if (const char* v = value("--budget=")) {
      flags.budget = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(arg, "--no-sleep-sets") == 0) {
      flags.sleep_sets = false;
    } else if (const char* v = value("--replay-out=")) {
      flags.replay_out = v;
    } else if (const char* v = value("--replay=")) {
      flags.replay = v;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return flags;
}

Explorer::Options MakeOptions(const Flags& flags, uint64_t budget,
                              uint64_t seed, bool stop_at_first) {
  Explorer::Options options;
  options.mode = flags.mode == "walk" ? Explorer::Mode::kRandomWalk
                                      : Explorer::Mode::kExhaustive;
  options.max_schedules = budget;
  options.sleep_sets = flags.sleep_sets;
  options.seed = seed;
  options.stop_at_first = stop_at_first;
  return options;
}

std::string TraceToString(const Explorer::ChoiceTrace& trace) {
  std::string s;
  for (uint32_t c : trace) {
    if (!s.empty()) {
      s += ' ';
    }
    s += std::to_string(c);
  }
  return s;
}

// Re-executes a saved replay file against the mutated scenario and prints
// the violation it reproduces. Returns the process exit code.
int RunReplay(const std::string& path) {
  std::string scenario_name;
  Explorer::ChoiceTrace trace;
  if (!Explorer::LoadTrace(path, &scenario_name, &trace)) {
    std::fprintf(stderr, "error: cannot parse replay file %s\n", path.c_str());
    return 2;
  }
  Explorer::Scenario scenario = MakeExplorerScenario(scenario_name, /*mutate=*/true);
  if (scenario == nullptr) {
    std::fprintf(stderr, "error: unknown scenario '%s' in %s\n",
                 scenario_name.c_str(), path.c_str());
    return 2;
  }
  Explorer explorer(scenario, Explorer::Options());
  const std::string violation = explorer.Replay(trace);
  std::printf("replay: %s\nscenario: %s\nchoices: %s\n", path.c_str(),
              scenario_name.c_str(), TraceToString(trace).c_str());
  if (violation.empty()) {
    std::printf("result: no violation (trace did not reproduce)\n");
    return 1;
  }
  std::printf("result: %s\n", violation.c_str());
  return 0;
}

}  // namespace
}  // namespace gs

int main(int argc, char** argv) {
  using namespace gs;
  Flags flags = ParseFlags(argc, argv);
  if (!flags.replay.empty()) {
    return RunReplay(flags.replay);
  }

  bench::Harness harness("explorer", argc, argv);
  const uint64_t budget =
      flags.budget > 0 ? flags.budget : (harness.quick() ? 2000 : 50000);
  harness.Param("mode", flags.mode);
  harness.Param("budget", static_cast<int64_t>(budget));
  harness.Param("sleep_sets", flags.sleep_sets);

  std::printf("Schedule-space explorer: %s search, %llu schedules/scenario "
              "budget, sleep sets %s, %d job(s).\n\n",
              flags.mode == "walk" ? "random-walk" : "exhaustive DFS",
              (unsigned long long)budget, flags.sleep_sets ? "on" : "off",
              harness.jobs());
  std::printf("%-22s %-6s %10s %10s %8s %7s %6s  %s\n", "scenario", "code",
              "schedules", "choicepts", "pruned", "depth", "trace", "result");

  std::atomic<int> failures{0};
  harness.RunAll(1, [&](bench::Run& run) {
  const uint64_t seed = run.seed();
  // Random-walk searches fan their walk budget across the harness's --jobs
  // pool; DFS is inherently sequential (each branch extends the last), so
  // it always runs single-threaded.
  auto search = [&](const char* name, bool mutate,
                    bool stop_at_first) -> Explorer::Result {
    const Explorer::Options options =
        MakeOptions(flags, budget, seed, stop_at_first);
    if (flags.mode == "walk" && harness.jobs() != 1) {
      return Explorer::ExploreParallelWalks(
          [name, mutate] { return MakeExplorerScenario(name, mutate); },
          options, harness.jobs());
    }
    Explorer explorer(MakeExplorerScenario(name, mutate), options);
    return explorer.Explore();
  };
  for (const ExplorerScenarioInfo& info : AllExplorerScenarios()) {
    if (!flags.scenario.empty() && flags.scenario != info.name) {
      continue;
    }
    // Fixed code: the full budget must sweep clean.
    Explorer::Result clean = search(info.name, /*mutate=*/false,
                                    /*stop_at_first=*/false);
    std::printf("%-22s %-6s %10llu %10llu %8llu %7d %6s  %s\n", info.name,
                "fixed", (unsigned long long)clean.schedules,
                (unsigned long long)clean.choice_points,
                (unsigned long long)clean.pruned, clean.max_depth, "-",
                clean.violation_found ? clean.violation.c_str() : "clean");
    if (clean.violation_found) {
      ++failures;
    }

    // Mutant: must be caught, and the shrunken trace must replay.
    Explorer::Result caught = search(info.name, /*mutate=*/true,
                                     /*stop_at_first=*/true);
    bool replays = false;
    if (caught.violation_found) {
      Explorer replayer(MakeExplorerScenario(info.name, /*mutate=*/true),
                        Explorer::Options());
      replays = replayer.Replay(caught.shrunk_trace) == caught.violation;
    }
    std::printf("%-22s %-6s %10llu %10llu %8llu %7d %6zu  %s\n", info.name,
                "mutant", (unsigned long long)caught.schedules,
                (unsigned long long)caught.choice_points,
                (unsigned long long)caught.pruned, caught.max_depth,
                caught.shrunk_trace.size(),
                !caught.violation_found ? "ESCAPED"
                : !replays              ? "caught, replay diverged"
                                        : caught.violation.c_str());
    if (!caught.violation_found || !replays) {
      ++failures;
    } else if (!flags.replay_out.empty()) {
      const std::string path =
          flags.replay_out + "/" + info.name + ".replay";
      if (Explorer::SaveTrace(path, info.name, caught.violation,
                              caught.shrunk_trace)) {
        std::printf("  wrote %s\n", path.c_str());
      } else {
        std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
        ++failures;
      }
    }

    run.AddRow()
        .Set("scenario", info.name)
        .Set("fixed_schedules", clean.schedules)
        .Set("fixed_choice_points", clean.choice_points)
        .Set("fixed_pruned", clean.pruned)
        .Set("fixed_clean", !clean.violation_found)
        .Set("mutant_schedules", caught.schedules)
        .Set("mutant_caught", caught.violation_found)
        .Set("trace_len", static_cast<int64_t>(caught.trace.size()))
        .Set("shrunk_len", static_cast<int64_t>(caught.shrunk_trace.size()))
        .Set("shrink_runs", caught.shrink_runs)
        .Set("violation", caught.violation);
  }
  run.Metric("failures", static_cast<int64_t>(failures.load()));
  });

  const int harness_rc = harness.Finish();
  if (failures.load() > 0) {
    std::fprintf(stderr, "\n%d scenario check(s) FAILED\n", failures.load());
    return 1;
  }
  return harness_rc;
}
