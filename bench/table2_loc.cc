// Table 2 reproduction: lines of code of the reproduction's components.
//
// The paper's Table 2 argues that ghOSt concentrates mechanism in a
// modest, rarely-changing kernel component plus a reusable userspace support
// library, so each *policy* is only hundreds of lines. This binary counts the
// same breakdown for this reproduction (non-blank, non-comment-only lines),
// so the claim can be checked against our own code.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/harness.h"

namespace {

namespace fs = std::filesystem;

int CountFileLoc(const fs::path& path) {
  std::ifstream in(path);
  int loc = 0;
  std::string line;
  bool in_block_comment = false;
  while (std::getline(in, line)) {
    size_t i = line.find_first_not_of(" \t");
    if (i == std::string::npos) {
      continue;  // blank
    }
    if (in_block_comment) {
      if (line.find("*/") != std::string::npos) {
        in_block_comment = false;
      }
      continue;
    }
    if (line.compare(i, 2, "//") == 0) {
      continue;  // line comment
    }
    if (line.compare(i, 2, "/*") == 0 && line.find("*/") == std::string::npos) {
      in_block_comment = true;
      continue;
    }
    ++loc;
  }
  return loc;
}

int CountDirLoc(const fs::path& dir, const std::vector<std::string>& only = {}) {
  int total = 0;
  if (!fs::exists(dir)) {
    return 0;
  }
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const std::string ext = entry.path().extension().string();
    if (ext != ".cc" && ext != ".h") {
      continue;
    }
    if (!only.empty()) {
      bool match = false;
      for (const std::string& stem : only) {
        if (entry.path().filename().string().rfind(stem, 0) == 0) {
          match = true;
          break;
        }
      }
      if (!match) {
        continue;
      }
    }
    total += CountFileLoc(entry.path());
  }
  return total;
}

void Row(gs::bench::Harness& harness, const char* name, int loc, const char* paper) {
  std::printf("%-46s %6d LOC   (paper: %s)\n", name, loc, paper);
  harness.AddRow().Set("component", name).Set("loc", loc).Set("paper_loc", paper);
}

}  // namespace

int main(int argc, char** argv) {
  // LOC counting is a pure host-filesystem walk: no simulation, nothing to
  // fan out, so multi-seed runs are rejected up front.
  gs::bench::Harness::Options options;
  options.allow_parallel = false;
  gs::bench::Harness harness("table2_loc", argc, argv, options);
  const fs::path root = GHOST_SIM_SOURCE_DIR;
  const fs::path src = root / "src";

  std::printf("Table 2 reproduction: lines of code (non-blank, non-comment)\n\n");

  Row(harness, "Simulated kernel substrate (src/kernel, sim, ...)",
      CountDirLoc(src / "kernel") + CountDirLoc(src / "sim") + CountDirLoc(src / "topology") +
          CountDirLoc(src / "base"),
      "Linux CFS alone is 6,217");
  Row(harness, "ghOSt kernel scheduling class (src/ghost)", CountDirLoc(src / "ghost"),
      "3,777");
  Row(harness, "ghOSt userspace support library (src/agent)", CountDirLoc(src / "agent"),
      "3,115");
  Row(harness, "Shinjuku policy", CountDirLoc(src / "policies", {"centralized_fifo", "shinjuku"}),
      "710 (+17 for Shenango ext)");
  Row(harness, "Per-CPU FIFO policy", CountDirLoc(src / "policies", {"per_cpu_fifo"}), "n/a");
  Row(harness, "Google Search policy", CountDirLoc(src / "policies", {"search"}), "929");
  Row(harness, "Secure VM (core scheduling) policy",
      CountDirLoc(src / "policies", {"vm_core_sched"}), "4,702 (ghOSt) vs 7,164 (kernel)");
  Row(harness, "Shinjuku dataplane baseline (src/baselines)", CountDirLoc(src / "baselines"),
      "Shinjuku system: 3,900");
  Row(harness, "Workloads (src/workloads)", CountDirLoc(src / "workloads"), "n/a");
  Row(harness, "Whole repository (src/)", CountDirLoc(src), "-");

  std::printf(
      "\nThe paper's structural claim to check: policies are small (100s of\n"
      "lines) because mechanism lives in the kernel class and bookkeeping in\n"
      "the reusable userspace library.\n");
  return harness.Finish();
}
