#include "bench/harness.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/base/logging.h"
#include "src/sim/trace.h"
#include "src/stats/stats.h"

namespace gs {
namespace bench {

namespace {

std::string RenderInt(int64_t v) {
  JsonWriter w;
  w.Int(v);
  return w.str();
}

std::string RenderUInt(uint64_t v) {
  JsonWriter w;
  w.UInt(v);
  return w.str();
}

std::string RenderDouble(double v) {
  JsonWriter w;
  w.Double(v);
  return w.str();
}

std::string RenderString(const std::string& v) {
  JsonWriter w;
  w.String(v);
  return w.str();
}

std::string RenderBool(bool v) {
  JsonWriter w;
  w.Bool(v);
  return w.str();
}

// Value of "--flag=value" if `arg` matches, nullptr otherwise.
const char* FlagValue(const char* arg, const char* flag) {
  const size_t len = std::strlen(flag);
  if (std::strncmp(arg, flag, len) == 0 && arg[len] == '=') {
    return arg + len + 1;
  }
  return nullptr;
}

[[noreturn]] void UsageError(const std::string& name, const std::string& detail) {
  std::fprintf(stderr,
               "%s: %s\n"
               "harness flags:\n"
               "  --json=<path>       write machine-readable results\n"
               "  --seed=<N>          override the base RNG seed\n"
               "  --scale=quick|paper sweep size (default: paper)\n"
               "  --trace-out=<path>  write a Chrome-trace/Perfetto JSON\n",
               name.c_str(), detail.c_str());
  std::exit(2);
}

}  // namespace

Row& Row::Set(const std::string& key, int64_t v) {
  cells_.emplace_back(key, RenderInt(v));
  return *this;
}
Row& Row::Set(const std::string& key, uint64_t v) {
  cells_.emplace_back(key, RenderUInt(v));
  return *this;
}
Row& Row::Set(const std::string& key, double v) {
  cells_.emplace_back(key, RenderDouble(v));
  return *this;
}
Row& Row::Set(const std::string& key, const std::string& v) {
  cells_.emplace_back(key, RenderString(v));
  return *this;
}
Row& Row::Set(const std::string& key, bool v) {
  cells_.emplace_back(key, RenderBool(v));
  return *this;
}
Row& Row::SetRaw(const std::string& key, std::string json) {
  cells_.emplace_back(key, std::move(json));
  return *this;
}

Harness::Harness(std::string benchmark_name, int& argc, char** argv)
    : name_(std::move(benchmark_name)) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (const char* v = FlagValue(arg, "--json")) {
      json_path_ = v;
    } else if (const char* v = FlagValue(arg, "--seed")) {
      char* end = nullptr;
      seed_override_ = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0') {
        UsageError(name_, "bad --seed value: " + std::string(v));
      }
      seed_overridden_ = true;
    } else if (const char* v = FlagValue(arg, "--scale")) {
      if (std::strcmp(v, "quick") == 0) {
        scale_ = Scale::kQuick;
      } else if (std::strcmp(v, "paper") == 0) {
        scale_ = Scale::kPaper;
      } else {
        UsageError(name_, "bad --scale value: " + std::string(v) +
                              " (want quick or paper)");
      }
    } else if (const char* v = FlagValue(arg, "--trace-out")) {
      trace_path_ = v;
    } else {
      argv[out++] = argv[i];  // not ours; leave for the benchmark
      continue;
    }
  }
  argc = out;
  argv[argc] = nullptr;

  if (!trace_path_.empty()) {
    exporter_ = std::make_unique<ChromeTraceExporter>(name_);
  }
  // A result file without the stats snapshot would be hollow; traces imply
  // introspection too. Plain stdout runs keep the zero-overhead default.
  if (!json_path_.empty() || !trace_path_.empty()) {
    GlobalStats().Enable();
  }
}

uint64_t Harness::SeedOr(uint64_t fallback) {
  seed_used_ = seed_overridden_ ? seed_override_ : fallback;
  seed_recorded_ = true;
  return seed_used_;
}

void Harness::Param(const std::string& key, int64_t v) {
  params_.emplace_back(key, RenderInt(v));
}
void Harness::Param(const std::string& key, double v) {
  params_.emplace_back(key, RenderDouble(v));
}
void Harness::Param(const std::string& key, const std::string& v) {
  params_.emplace_back(key, RenderString(v));
}
void Harness::Param(const std::string& key, bool v) {
  params_.emplace_back(key, RenderBool(v));
}

Row& Harness::AddRow() {
  rows_.emplace_back();
  return rows_.back();
}

void Harness::Metric(const std::string& name, double v) {
  metrics_.emplace_back(name, RenderDouble(v));
}
void Harness::Metric(const std::string& name, int64_t v) {
  metrics_.emplace_back(name, RenderInt(v));
}

void Harness::HistogramJson(const std::string& name, std::string json) {
  histograms_.emplace_back(name, std::move(json));
}

bool Harness::MaybeAttachTrace(Trace& trace) {
  if (exporter_ == nullptr || trace_attached_) {
    return false;
  }
  trace.AddSink(exporter_.get());
  trace_attached_ = true;
  return true;
}

int Harness::Finish() {
  CHECK(!finished_) << "Harness::Finish called twice";
  finished_ = true;
  int rc = 0;

  if (!json_path_.empty()) {
    JsonWriter w;
    w.BeginObject();
    w.KV("schema_version", 1);
    w.KV("benchmark", name_);
    if (seed_recorded_) {
      w.Key("seed");
      w.UInt(seed_used_);
    }
    w.KV("scale", quick() ? "quick" : "paper");
    w.Key("params");
    w.BeginObject();
    for (const auto& [key, json] : params_) {
      w.Key(key);
      w.Raw(json);
    }
    w.EndObject();
    w.Key("series");
    w.BeginArray();
    for (const Row& row : rows_) {
      w.BeginObject();
      for (const auto& [key, json] : row.cells_) {
        w.Key(key);
        w.Raw(json);
      }
      w.EndObject();
    }
    w.EndArray();
    w.Key("metrics");
    w.BeginObject();
    for (const auto& [key, json] : metrics_) {
      w.Key(key);
      w.Raw(json);
    }
    w.EndObject();
    w.Key("histograms");
    w.BeginObject();
    for (const auto& [key, json] : histograms_) {
      w.Key(key);
      w.Raw(json);
    }
    w.EndObject();
    w.Key("stats");
    GlobalStats().AppendJson(w);
    w.EndObject();

    std::FILE* f = std::fopen(json_path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "%s: cannot open %s\n", name_.c_str(), json_path_.c_str());
      rc = 1;
    } else {
      const std::string& json = w.str();
      if (std::fwrite(json.data(), 1, json.size(), f) != json.size() ||
          std::fputc('\n', f) == EOF) {
        std::fprintf(stderr, "%s: short write to %s\n", name_.c_str(),
                     json_path_.c_str());
        rc = 1;
      }
      std::fclose(f);
      std::fprintf(stderr, "wrote %s\n", json_path_.c_str());
    }
  }

  if (exporter_ != nullptr) {
    if (!exporter_->WriteFile(trace_path_)) {
      rc = 1;
    } else {
      std::fprintf(stderr, "wrote %s (%zu events)\n", trace_path_.c_str(),
                   exporter_->num_events());
    }
  }
  return rc;
}

}  // namespace bench
}  // namespace gs
