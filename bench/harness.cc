#include "bench/harness.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/base/logging.h"
#include "src/sim/batch_runner.h"
#include "src/sim/trace.h"

namespace gs {
namespace bench {

namespace {

std::string RenderInt(int64_t v) {
  JsonWriter w;
  w.Int(v);
  return w.str();
}

std::string RenderUInt(uint64_t v) {
  JsonWriter w;
  w.UInt(v);
  return w.str();
}

std::string RenderDouble(double v) {
  JsonWriter w;
  w.Double(v);
  return w.str();
}

std::string RenderString(const std::string& v) {
  JsonWriter w;
  w.String(v);
  return w.str();
}

std::string RenderBool(bool v) {
  JsonWriter w;
  w.Bool(v);
  return w.str();
}

// Value of "--flag=value" if `arg` matches, nullptr otherwise.
const char* FlagValue(const char* arg, const char* flag) {
  const size_t len = std::strlen(flag);
  if (std::strncmp(arg, flag, len) == 0 && arg[len] == '=') {
    return arg + len + 1;
  }
  return nullptr;
}

void PrintUsage(std::FILE* out, const std::string& name,
                const Harness::Options& options) {
  std::fprintf(out,
               "%s: harness flags:\n"
               "  --json=<path>       write machine-readable results\n"
               "  --seed=<N>          override the base RNG seed\n"
               "  --seeds=<N>         run N repetitions, seeds base..base+N-1\n"
               "  --jobs=<N>          worker threads for the repetitions\n"
               "                      (0 = one per hardware thread, default 1)\n"
               "  --scale=quick|paper sweep size (default: paper)\n"
               "  --trace-out=<path>  write a Chrome-trace/Perfetto JSON\n"
               "  --wall-clock        record wall_clock_s in the result file\n",
               name.c_str());
  for (const std::string& prefix : options.passthrough_prefixes) {
    std::fprintf(out, "  %s...        passed through to the benchmark\n",
                 prefix.c_str());
  }
}

[[noreturn]] void UsageError(const std::string& name,
                             const Harness::Options& options,
                             const std::string& detail) {
  std::fprintf(stderr, "%s: %s\n", name.c_str(), detail.c_str());
  PrintUsage(stderr, name, options);
  std::exit(2);
}

}  // namespace

Row& Row::Set(const std::string& key, int64_t v) {
  cells_.emplace_back(key, RenderInt(v));
  return *this;
}
Row& Row::Set(const std::string& key, uint64_t v) {
  cells_.emplace_back(key, RenderUInt(v));
  return *this;
}
Row& Row::Set(const std::string& key, double v) {
  cells_.emplace_back(key, RenderDouble(v));
  return *this;
}
Row& Row::Set(const std::string& key, const std::string& v) {
  cells_.emplace_back(key, RenderString(v));
  return *this;
}
Row& Row::Set(const std::string& key, bool v) {
  cells_.emplace_back(key, RenderBool(v));
  return *this;
}
Row& Row::SetRaw(const std::string& key, std::string json) {
  cells_.emplace_back(key, std::move(json));
  return *this;
}

Run::Run(Harness* harness, uint64_t seed, int index)
    : harness_(harness), seed_(seed), index_(index) {
  if (harness_->json_requested() || !harness_->trace_path_.empty()) {
    stats_.Enable();
  }
}

Scale Run::scale() const { return harness_->scale(); }
bool Run::quick() const { return harness_->quick(); }

Row& Run::AddRow() {
  rows_.emplace_back();
  return rows_.back();
}

void Run::Metric(const std::string& name, double v) {
  metrics_.emplace_back(name, RenderDouble(v));
}
void Run::Metric(const std::string& name, int64_t v) {
  metrics_.emplace_back(name, RenderInt(v));
}

void Run::HistogramJson(const std::string& name, std::string json) {
  histograms_.emplace_back(name, std::move(json));
}

bool Run::MaybeAttachTrace(Trace& trace) {
  return harness_->AttachTrace(*this, trace);
}

ChromeTraceExporter* Run::trace_exporter() {
  return index_ == 0 ? harness_->exporter_.get() : nullptr;
}

Harness::Harness(std::string benchmark_name, int& argc, char** argv)
    : Harness(std::move(benchmark_name), argc, argv, Options()) {}

Harness::Harness(std::string benchmark_name, int& argc, char** argv,
                 Options options)
    : name_(std::move(benchmark_name)), options_(std::move(options)) {
  auto parse_positive = [&](const char* v, const char* flag, int min) {
    char* end = nullptr;
    const long long n = std::strtoll(v, &end, 10);
    if (end == v || *end != '\0' || n < min || n > 1 << 20) {
      UsageError(name_, options_,
                 std::string("bad ") + flag + " value: " + v + " (want an integer >= " +
                     std::to_string(min) + ")");
    }
    return static_cast<int>(n);
  };

  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (const char* v = FlagValue(arg, "--json")) {
      json_path_ = v;
    } else if (const char* v = FlagValue(arg, "--seed")) {
      char* end = nullptr;
      seed_override_ = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0') {
        UsageError(name_, options_, "bad --seed value: " + std::string(v));
      }
      seed_overridden_ = true;
    } else if (const char* v = FlagValue(arg, "--seeds")) {
      num_seeds_ = parse_positive(v, "--seeds", 1);
    } else if (const char* v = FlagValue(arg, "--jobs")) {
      jobs_ = parse_positive(v, "--jobs", 0);
    } else if (const char* v = FlagValue(arg, "--scale")) {
      if (std::strcmp(v, "quick") == 0) {
        scale_ = Scale::kQuick;
      } else if (std::strcmp(v, "paper") == 0) {
        scale_ = Scale::kPaper;
      } else {
        UsageError(name_, options_, "bad --scale value: " + std::string(v) +
                                        " (want quick or paper)");
      }
    } else if (const char* v = FlagValue(arg, "--trace-out")) {
      trace_path_ = v;
    } else if (std::strcmp(arg, "--wall-clock") == 0) {
      record_wall_clock_ = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      PrintUsage(stdout, name_, options_);
      std::exit(0);
    } else if (std::strncmp(arg, "--", 2) == 0 && arg[2] != '\0') {
      // A "--" flag the harness does not know: either the benchmark declared
      // its prefix, or it is a typo — reject so a misspelled flag cannot
      // silently run the wrong configuration.
      bool passthrough = false;
      for (const std::string& prefix : options_.passthrough_prefixes) {
        if (std::strncmp(arg, prefix.c_str(), prefix.size()) == 0) {
          passthrough = true;
          break;
        }
      }
      if (!passthrough) {
        UsageError(name_, options_, "unknown flag: " + std::string(arg));
      }
      argv[out++] = argv[i];
    } else {
      argv[out++] = argv[i];  // positional; leave for the benchmark
    }
  }
  argc = out;
  argv[argc] = nullptr;

  if (!options_.allow_parallel && (num_seeds_ != 1 || jobs_ != 1)) {
    UsageError(name_, options_,
               "--seeds/--jobs are not supported by this benchmark (it wraps "
               "a framework with process-global state)");
  }
  if (!trace_path_.empty()) {
    exporter_ = std::make_unique<ChromeTraceExporter>(name_);
  }
}

uint64_t Harness::SeedOr(uint64_t fallback) {
  seed_used_ = seed_overridden_ ? seed_override_ : fallback;
  seed_recorded_ = true;
  return seed_used_;
}

void Harness::Param(const std::string& key, int64_t v) {
  params_.emplace_back(key, RenderInt(v));
}
void Harness::Param(const std::string& key, double v) {
  params_.emplace_back(key, RenderDouble(v));
}
void Harness::Param(const std::string& key, const std::string& v) {
  params_.emplace_back(key, RenderString(v));
}
void Harness::Param(const std::string& key, bool v) {
  params_.emplace_back(key, RenderBool(v));
}

void Harness::RunAll(uint64_t fallback_seed,
                     const std::function<void(Run&)>& body) {
  CHECK(!ran_all_) << "Harness::RunAll called twice";
  CHECK(runs_.empty()) << "Harness::RunAll mixed with single-run sinks";
  ran_all_ = true;
  const uint64_t base = SeedOr(fallback_seed);
  for (int i = 0; i < num_seeds_; ++i) {
    runs_.emplace_back(new Run(this, base + static_cast<uint64_t>(i), i));
  }
  const BatchRunner runner(num_seeds_ > 1 ? jobs_ : 1);
  const auto start = std::chrono::steady_clock::now();
  runner.Run(num_seeds_, [&](int i) { body(*runs_[i]); });
  wall_clock_s_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (num_seeds_ > 1) {
    std::fprintf(stderr, "ran %d seeds with %d job(s) in %.2fs\n", num_seeds_,
                 runner.jobs(), wall_clock_s_);
  }
}

Run& Harness::DefaultRun() {
  CHECK(!ran_all_) << "single-run sinks mixed with Harness::RunAll";
  if (runs_.empty()) {
    runs_.emplace_back(new Run(this, seed_used_, 0));
  }
  return *runs_.front();
}

Row& Harness::AddRow() { return DefaultRun().AddRow(); }
void Harness::Metric(const std::string& name, double v) {
  DefaultRun().Metric(name, v);
}
void Harness::Metric(const std::string& name, int64_t v) {
  DefaultRun().Metric(name, v);
}
void Harness::HistogramJson(const std::string& name, std::string json) {
  DefaultRun().HistogramJson(name, std::move(json));
}
bool Harness::MaybeAttachTrace(Trace& trace) {
  return AttachTrace(DefaultRun(), trace);
}

bool Harness::AttachTrace(const Run& run, Trace& trace) {
  // Only run 0 traces (virtual time restarts at 0 every run; a second
  // attachment would interleave restarted timestamps), so `trace_attached_`
  // is only ever touched from the thread executing run 0.
  if (exporter_ == nullptr || run.index_ != 0 || trace_attached_) {
    return false;
  }
  trace.AddSink(exporter_.get());
  trace_attached_ = true;
  return true;
}

void Harness::AppendDocHeader(JsonWriter& w, uint64_t seed) const {
  w.KV("schema_version", 1);
  w.KV("benchmark", name_);
  if (seed_recorded_) {
    w.Key("seed");
    w.UInt(seed);
  }
  w.KV("scale", quick() ? "quick" : "paper");
}

void Harness::AppendRunBlocks(JsonWriter& w, const Run& run,
                              double wall_clock_s) const {
  w.Key("series");
  w.BeginArray();
  for (const Row& row : run.rows_) {
    w.BeginObject();
    for (const auto& [key, json] : row.cells_) {
      w.Key(key);
      w.Raw(json);
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("metrics");
  w.BeginObject();
  if (wall_clock_s >= 0) {
    w.Key("wall_clock_s");
    w.Double(wall_clock_s);
  }
  for (const auto& [key, json] : run.metrics_) {
    w.Key(key);
    w.Raw(json);
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& [key, json] : run.histograms_) {
    w.Key(key);
    w.Raw(json);
  }
  w.EndObject();
  w.Key("stats");
  run.stats_.AppendJson(w);
}

void Harness::AppendAggregateBlocks(JsonWriter& w) const {
  w.Key("series");
  w.BeginArray();
  for (const auto& run : runs_) {
    for (const Row& row : run->rows_) {
      w.BeginObject();
      w.Key("seed");
      w.UInt(run->seed_);
      for (const auto& [key, json] : row.cells_) {
        w.Key(key);
        w.Raw(json);
      }
      w.EndObject();
    }
  }
  w.EndArray();
  w.Key("metrics");
  w.BeginObject();
  w.Key("wall_clock_s");
  w.Double(wall_clock_s_);
  for (const auto& run : runs_) {
    const std::string suffix = "{seed=" + std::to_string(run->seed_) + "}";
    for (const auto& [key, json] : run->metrics_) {
      w.Key(key + suffix);
      w.Raw(json);
    }
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& run : runs_) {
    const std::string suffix = "{seed=" + std::to_string(run->seed_) + "}";
    for (const auto& [key, json] : run->histograms_) {
      w.Key(key + suffix);
      w.Raw(json);
    }
  }
  w.EndObject();
  w.Key("stats");
  StatsRegistry merged;
  for (const auto& run : runs_) {
    merged.MergeFrom(run->stats_);
  }
  merged.AppendJson(w);
}

int Harness::WriteJsonFile(const std::string& path,
                           const std::string& json) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "%s: cannot open %s\n", name_.c_str(), path.c_str());
    return 1;
  }
  int rc = 0;
  if (std::fwrite(json.data(), 1, json.size(), f) != json.size() ||
      std::fputc('\n', f) == EOF) {
    std::fprintf(stderr, "%s: short write to %s\n", name_.c_str(), path.c_str());
    rc = 1;
  }
  std::fclose(f);
  if (rc == 0) {
    std::fprintf(stderr, "wrote %s\n", path.c_str());
  }
  return rc;
}

std::string Harness::SeedPath(uint64_t seed) const {
  const std::string insert = ".seed" + std::to_string(seed);
  const size_t dot = json_path_.rfind('.');
  const size_t slash = json_path_.find_last_of('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return json_path_ + insert;  // no extension: append
  }
  return json_path_.substr(0, dot) + insert + json_path_.substr(dot);
}

int Harness::Finish() {
  CHECK(!finished_) << "Harness::Finish called twice";
  finished_ = true;
  int rc = 0;

  if (!json_path_.empty()) {
    if (runs_.empty()) {
      // A benchmark that recorded nothing still emits a schema-valid file.
      CHECK(!ran_all_);
      runs_.emplace_back(new Run(this, seed_used_, 0));
    }
    if (runs_.size() == 1) {
      JsonWriter w;
      w.BeginObject();
      AppendDocHeader(w, runs_.front()->seed_);
      w.Key("params");
      w.BeginObject();
      for (const auto& [key, json] : params_) {
        w.Key(key);
        w.Raw(json);
      }
      w.EndObject();
      double wall_clock_s = -1;
      if (record_wall_clock_) {
        // RunAll timed the body itself; single-run sinks fall back to
        // harness lifetime (construction to Finish).
        wall_clock_s =
            ran_all_ ? wall_clock_s_
                     : std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_)
                           .count();
      }
      AppendRunBlocks(w, *runs_.front(), wall_clock_s);
      w.EndObject();
      rc |= WriteJsonFile(json_path_, w.str());
    } else {
      // One standalone per-seed document each (byte-identical for any
      // --jobs), then the aggregate at the --json path itself.
      for (const auto& run : runs_) {
        JsonWriter w;
        w.BeginObject();
        AppendDocHeader(w, run->seed_);
        w.Key("params");
        w.BeginObject();
        for (const auto& [key, json] : params_) {
          w.Key(key);
          w.Raw(json);
        }
        w.EndObject();
        AppendRunBlocks(w, *run);
        w.EndObject();
        rc |= WriteJsonFile(SeedPath(run->seed_), w.str());
      }
      JsonWriter w;
      w.BeginObject();
      AppendDocHeader(w, seed_used_);
      w.KV("seeds", static_cast<int64_t>(num_seeds_));
      w.KV("jobs", static_cast<int64_t>(jobs_));
      w.Key("params");
      w.BeginObject();
      for (const auto& [key, json] : params_) {
        w.Key(key);
        w.Raw(json);
      }
      w.EndObject();
      AppendAggregateBlocks(w);
      w.EndObject();
      rc |= WriteJsonFile(json_path_, w.str());
    }
  }

  if (exporter_ != nullptr) {
    if (!exporter_->WriteFile(trace_path_)) {
      rc = 1;
    } else {
      std::fprintf(stderr, "wrote %s (%zu events)\n", trace_path_.c_str(),
                   exporter_->num_events());
    }
  }
  return rc;
}

}  // namespace bench
}  // namespace gs
