// Fig 5 reproduction (§4.1): scalability of a single global agent.
//
// "To show how a global agent scales, we analyze a simple round-robin
// policy. The policy manages all threads in a FIFO runqueue, scheduling them
// on CPUs as soon as CPUs become idle. The agent groups as many transactions
// as possible per commit."
//
// Sweep: number of scheduled CPUs on the Skylake (112 CPU) and Haswell
// (72 CPU) parts. CPUs are added in the order local-socket cores, local
// hyperthreads, remote cores, remote hyperthreads, so the three regimes of
// the paper's figure appear in sequence:
//   ❶ linear ramp while the agent keeps up,
//   ❷ a dip when a worker lands on the agent's SMT sibling and contends for
//     the physical core's pipeline,
//   ❸ degradation as remote-socket CPUs add cross-NUMA commit costs.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/harness.h"
#include "bench/machine_trace.h"
#include "src/agent/agent_process.h"
#include "src/ghost/machine.h"
#include "src/policies/centralized_fifo.h"

namespace gs {
namespace {

constexpr Duration kTaskBurst = Microseconds(10);
constexpr Duration kMeasure = Milliseconds(300);

// CPU fill order: agent's socket cores first (skipping the agent CPU), then
// its hyperthreads (the agent's sibling first — the ❷ dip), then the remote
// socket.
std::vector<int> FillOrder(const Topology& topo, int agent_cpu) {
  std::vector<int> order;
  const int agent_numa = topo.cpu(agent_cpu).numa;
  auto add = [&](bool primary, int numa) {
    for (const CpuInfo& cpu : topo.cpus()) {
      if (cpu.id == agent_cpu || cpu.numa != numa) {
        continue;
      }
      if ((cpu.smt_index == 0) == primary) {
        order.push_back(cpu.id);
      }
    }
  };
  add(/*primary=*/true, agent_numa);
  add(/*primary=*/false, agent_numa);  // includes the agent's sibling
  for (int numa = 0; numa < topo.num_numa_nodes(); ++numa) {
    if (numa != agent_numa) {
      add(true, numa);
      add(false, numa);
    }
  }
  return order;
}

// Workers that run `kTaskBurst` then block and immediately re-wake, so the
// agent must issue one transaction per burst.
// Arms one burst; on completion the worker blocks, re-arms, and re-wakes
// 100 ns later — a self-rearming chain with no per-cycle heap allocation
// (the old shared_ptr<std::function> self-capture leaked and malloc'd).
void ArmWorkerBurst(Kernel* k, Task* t) {
  k->StartBurst(t, kTaskBurst, [k](Task* done) {
    k->Block(done);
    k->loop()->ScheduleAfter(Nanoseconds(100), [k, done] {
      ArmWorkerBurst(k, done);
      k->Wake(done);
    });
  });
}

void SpawnWorker(Kernel& kernel, Enclave& enclave, int index) {
  Task* task = kernel.CreateTask("spin/" + std::to_string(index));
  enclave.AddTask(task);
  ArmWorkerBurst(&kernel, task);
  kernel.Wake(task);
}

double RunPoint(bench::Run& run, const Topology& topo, int num_cpus) {
  Machine m(topo, CostModel(), /*with_core_sched=*/false, &run.stats());
  bench::ScopedMachineTrace trace_scope(run, m.kernel());
  const int agent_cpu = 0;
  const std::vector<int> order = FillOrder(m.kernel().topology(), agent_cpu);

  CpuMask cpus = CpuMask::Single(agent_cpu);
  for (int i = 0; i < num_cpus && i < static_cast<int>(order.size()); ++i) {
    cpus.Set(order[i]);
  }
  auto enclave = m.CreateEnclave(cpus);
  CentralizedFifoPolicy::Options options;
  options.global_cpu = agent_cpu;
  AgentProcess process(&m.kernel(), m.ghost_class(), enclave.get(),
                       std::make_unique<CentralizedFifoPolicy>(options));
  process.Start();

  // ~2 runnable workers per scheduled CPU keeps every CPU saturated.
  for (int i = 0; i < 2 * num_cpus; ++i) {
    SpawnWorker(m.kernel(), *enclave, i);
  }

  m.RunFor(Milliseconds(50));  // warm up
  const uint64_t before = enclave->txns_committed();
  m.RunFor(kMeasure);
  const uint64_t after = enclave->txns_committed();
  return static_cast<double>(after - before) / ToSeconds(kMeasure) / 1e6;
}

void RecordPoint(bench::Run& run, const char* machine, const Topology& topo, int n) {
  const double mtxn = RunPoint(run, topo, n);
  std::printf("%8d %14.3f\n", n, mtxn);
  std::fflush(stdout);
  run.AddRow().Set("machine", machine).Set("cpus", n).Set("mtxn_per_sec", mtxn);
}

void RunMachine(bench::Run& run, const char* label, const char* machine,
                const Topology& topo) {
  std::printf("\n-- %s --\n%8s %14s\n", label, "cpus", "Mtxn/sec");
  const int max = topo.num_cpus() - 1;
  const int stride = run.quick() ? 16 : 4;
  for (int n = 4; n <= max; n += stride) {
    RecordPoint(run, machine, topo, n);
  }
  RecordPoint(run, machine, topo, max);
}

}  // namespace
}  // namespace gs

int main(int argc, char** argv) {
  gs::bench::Harness harness("fig5_scalability", argc, argv);
  harness.Param("task_burst_us", static_cast<int64_t>(gs::kTaskBurst / 1000));
  harness.Param("measure_ms", static_cast<int64_t>(gs::kMeasure / 1000000));
  std::printf("Fig 5 reproduction: global agent scalability (round-robin policy,\n"
              "%lld us tasks, group commits). Expect ramp, SMT dip, NUMA droop.\n",
              static_cast<long long>(gs::kTaskBurst / 1000));
  harness.RunAll(1, [](gs::bench::Run& run) {
    gs::RunMachine(run, "Skylake (112 CPUs)", "skylake112",
                   gs::Topology::IntelSkylake112());
    gs::RunMachine(run, "Haswell (72 CPUs)", "haswell72",
                   gs::Topology::IntelHaswell72());
  });
  return harness.Finish();
}
