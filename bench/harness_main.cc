// The scenario harness: runs any named built-in or user-authored scenario
// file under the standard bench flag surface.
//
//   harness --scenario=<name|file.json> [--json=...] [--seed=N] [--seeds=N]
//           [--jobs=N] [--trace-out=...]
//   harness --list-scenarios
//   harness --print-scenario=<name|file.json>   (canonical ToJson rendering)
//
// All the usual harness guarantees apply: schema-v1 result files, per-seed
// outputs byte-independent of --jobs, strict flag validation (unknown flags
// exit 2). Scenario-spec problems also exit 2, naming the offending key.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/harness.h"
#include "src/scenario/registry.h"
#include "src/scenario/scenario.h"
#include "src/scenario/scenario_runner.h"

namespace {

// Value of `--flag=` in argv, nullptr if absent. (The bench harness leaves
// our passthrough-prefixed flags in place.)
const char* FlagValue(int argc, char** argv, const char* flag) {
  const size_t len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], flag, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
    if (std::strcmp(argv[i], flag) == 0) {
      return "";
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  gs::bench::Harness::Options options;
  options.passthrough_prefixes = {"--scenario", "--list-scenarios", "--print-scenario"};
  gs::bench::Harness harness("scenario", argc, argv, options);

  if (FlagValue(argc, argv, "--list-scenarios") != nullptr) {
    for (const std::string& name : gs::scenario::BuiltinScenarioNames()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (const char* arg = FlagValue(argc, argv, "--print-scenario")) {
    if (*arg == '\0') {
      std::fprintf(stderr, "usage: --print-scenario=<name|file.json>\n");
      return 2;
    }
    const gs::scenario::ScenarioSpec spec = gs::scenario::LoadScenarioOrExit(arg);
    std::printf("%s\n", spec.ToJson().c_str());
    return 0;
  }
  const char* arg = FlagValue(argc, argv, "--scenario");
  if (arg == nullptr || *arg == '\0') {
    std::fprintf(stderr,
                 "usage: harness --scenario=<name|file.json> [harness flags]\n"
                 "       harness --list-scenarios\n"
                 "       harness --print-scenario=<name|file.json>\n");
    return 2;
  }
  const gs::scenario::ScenarioSpec spec = gs::scenario::LoadScenarioOrExit(arg);

  harness.Param("scenario", spec.name);
  harness.Param("policy", spec.policy.kind);
  harness.Param("workload", spec.workload.kind);
  std::printf("scenario %s: %s\n", spec.name.c_str(), spec.description.c_str());

  harness.RunAll(spec.seed, [&spec, &harness](gs::bench::Run& run) {
    gs::scenario::ScenarioSpec seeded = spec;
    seeded.seed = run.seed();
    // --jobs also parallelizes fleet epochs within a run; results are
    // byte-identical either way (the golden suite pins this).
    const gs::scenario::ScenarioResult result =
        gs::scenario::RunScenario(seeded, &run.stats(), harness.jobs());
    gs::bench::Row& row = run.AddRow();
    row.Set("scenario", result.name);
    for (const auto& [key, value] : result.exact) {
      row.Set(key, value);
    }
    for (const auto& [key, value] : result.envelopes) {
      run.Metric(key, value);
    }
    std::printf("  seed %llu:", static_cast<unsigned long long>(result.seed));
    for (const auto& [key, value] : result.envelopes) {
      std::printf(" %s=%.2f", key.c_str(), value);
    }
    for (const auto& [key, value] : result.exact) {
      std::printf(" %s=%lld", key.c_str(), static_cast<long long>(value));
    }
    std::printf("\n");
    for (const std::string& violation : result.violations) {
      std::printf("  invariant violation: %s\n", violation.c_str());
    }
  });
  return harness.Finish();
}
