// Microbenchmark for the discrete-event engine: the timing-wheel EventLoop
// against ReferenceEventLoop (the original binary-heap engine).
//
// Workloads:
//   mixed          self-sustaining callback chains with bimodal delays
//                  (~70% 0-10us, ~30% ~1ms) plus a ~30% cancel mix
//   periodic       hundreds of staggered periodic timers (1-100us periods)
//   tick_storm_N   N simulated CPUs, each a staggered 1ms periodic tick whose
//                  callback schedules a delay-0 resched and a 5us follow-up
//
// Every workload runs on both engines from the same seed; the (now, tag)
// firing sequences are FNV-hashed and must match exactly — a mismatch is a
// determinism bug and the binary exits non-zero. Wall-clock events/sec and
// the wheel/reference speedup are reported through the schema-v1 harness.
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/base/rng.h"
#include "src/sim/event_loop.h"
#include "src/sim/reference_event_loop.h"

namespace gs {
namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

inline uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ (v & 0xff)) * kFnvPrime;
    v >>= 8;
  }
  return h;
}

struct RunResult {
  uint64_t events = 0;
  double seconds = 0;
  uint64_t checksum = kFnvOffset;
};

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Elapsed() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// ---- mixed: schedule/fire/cancel chains --------------------------------

template <typename Loop>
struct MixedState {
  Loop loop;
  Rng rng;
  uint64_t checksum = kFnvOffset;
  uint64_t spawned = 0;
  uint64_t target = 0;
  uint64_t next_tag = 0;
  std::vector<EventId> ring;  // cancel candidates
  size_t ring_pos = 0;

  explicit MixedState(uint64_t seed) : rng(seed), ring(512, kInvalidEventId) {}

  void SpawnChain() {
    if (spawned >= target) {
      return;
    }
    ++spawned;
    const uint64_t tag = ++next_tag;
    // Bimodal: mostly short (sub-bucket to level ~2), a heavy tail at ~1ms.
    const Duration delay =
        rng.NextBounded(10) < 7
            ? static_cast<Duration>(rng.NextBounded(10000))
            : static_cast<Duration>(1000000 + rng.NextBounded(100000));
    loop.ScheduleAfter(delay, [this, tag] { OnFire(tag); });
  }

  void OnFire(uint64_t tag) {
    checksum = FnvMix(FnvMix(checksum, static_cast<uint64_t>(loop.now())), tag);
    SpawnChain();
    if (rng.NextBounded(10) < 3) {
      // Schedule a victim far out and cancel whatever previously occupied
      // its ring slot (it may have fired already: both outcomes count).
      const uint64_t vtag = ++next_tag;
      EventId& slot = ring[ring_pos];
      ring_pos = (ring_pos + 1) % ring.size();
      if (slot != kInvalidEventId) {
        loop.Cancel(slot);
      }
      slot = loop.ScheduleAfter(static_cast<Duration>(2000000),
                                [this, vtag] { OnFire(vtag); });
    }
  }
};

template <typename Loop>
RunResult RunMixed(uint64_t seed, uint64_t target) {
  MixedState<Loop> st(seed);
  st.target = target;
  WallTimer timer;
  for (int i = 0; i < 512; ++i) {
    st.SpawnChain();
  }
  st.loop.RunUntilIdle();
  RunResult r;
  r.seconds = timer.Elapsed();
  r.events = st.loop.executed_count();
  r.checksum = st.checksum;
  return r;
}

// ---- periodic-heavy ----------------------------------------------------

template <typename Loop>
RunResult RunPeriodicHeavy(uint64_t seed, int timers, uint64_t target) {
  Loop loop;
  Rng rng(seed);
  uint64_t checksum = kFnvOffset;
  std::vector<EventId> ids;
  WallTimer timer;
  for (int i = 0; i < timers; ++i) {
    const uint64_t tag = static_cast<uint64_t>(i);
    const Duration period = static_cast<Duration>(1000 + rng.NextBounded(99000));
    const Duration phase = static_cast<Duration>(1 + rng.NextBounded(100000));
    ids.push_back(loop.SchedulePeriodic(phase, period, [&loop, &checksum, tag] {
      checksum =
          FnvMix(FnvMix(checksum, static_cast<uint64_t>(loop.now())), tag);
    }));
  }
  while (loop.executed_count() < target) {
    loop.RunUntil(loop.now() + 1000000);
  }
  for (EventId id : ids) {
    loop.Cancel(id);
  }
  RunResult r;
  r.seconds = timer.Elapsed();
  r.events = loop.executed_count();
  r.checksum = checksum;
  return r;
}

// ---- tick storm --------------------------------------------------------

template <typename Loop>
struct StormState {
  Loop loop;
  uint64_t checksum = kFnvOffset;

  void Tick(uint64_t cpu) {
    checksum = FnvMix(FnvMix(checksum, static_cast<uint64_t>(loop.now())), cpu);
    // A tick kicks a zero-delay resched and a short follow-up, like the
    // kernel's IPI + context-switch completion events.
    loop.ScheduleAfter(0, [this, cpu] {
      checksum = FnvMix(checksum, cpu ^ 0x5bd1e995);
    });
    loop.ScheduleAfter(5000, [this, cpu] {
      checksum = FnvMix(checksum, cpu ^ 0x9e3779b9);
    });
  }
};

template <typename Loop>
RunResult RunTickStorm(int cpus, Duration virtual_span) {
  StormState<Loop> st;
  constexpr Duration kTick = 1000000;  // 1ms
  WallTimer timer;
  for (int i = 0; i < cpus; ++i) {
    const uint64_t cpu = static_cast<uint64_t>(i);
    st.loop.SchedulePeriodic(1 + (kTick * i) / cpus, kTick,
                             [&st, cpu] { st.Tick(cpu); });
  }
  st.loop.RunUntil(virtual_span);
  RunResult r;
  r.seconds = timer.Elapsed();
  r.events = st.loop.executed_count();
  r.checksum = st.checksum;
  return r;
}

// ---- driver ------------------------------------------------------------

struct WorkloadResult {
  std::string name;
  RunResult wheel;
  RunResult reference;
};

bool Report(bench::Run& run, std::vector<WorkloadResult>& results) {
  bool ok = true;
  for (const WorkloadResult& w : results) {
    if (w.wheel.checksum != w.reference.checksum ||
        w.wheel.events != w.reference.events) {
      std::fprintf(stderr,
                   "FATAL: %s diverges: wheel %" PRIu64 " events cksum %016" PRIx64
                   ", reference %" PRIu64 " events cksum %016" PRIx64 "\n",
                   w.name.c_str(), w.wheel.events, w.wheel.checksum,
                   w.reference.events, w.reference.checksum);
      ok = false;
    }
    for (const char* engine : {"wheel", "reference"}) {
      const RunResult& r =
          engine == std::string("wheel") ? w.wheel : w.reference;
      run.AddRow()
          .Set("workload", w.name)
          .Set("engine", engine)
          .Set("events", r.events)
          .Set("wall_s", r.seconds)
          .Set("events_per_sec", r.seconds > 0 ? r.events / r.seconds : 0.0)
          .Set("checksum", static_cast<uint64_t>(r.checksum));
    }
    const double speedup = w.reference.seconds > 0 && w.wheel.seconds > 0
                               ? w.reference.seconds / w.wheel.seconds
                               : 0.0;
    run.Metric("speedup_" + w.name, speedup);
    std::printf("%-16s wheel %10.0f ev/s   reference %10.0f ev/s   speedup %.2fx\n",
                w.name.c_str(),
                w.wheel.seconds > 0 ? w.wheel.events / w.wheel.seconds : 0.0,
                w.reference.seconds > 0 ? w.reference.events / w.reference.seconds
                                        : 0.0,
                speedup);
  }
  return ok;
}

}  // namespace
}  // namespace gs

int main(int argc, char** argv) {
  gs::bench::Harness harness("event_engine", argc, argv);
  const bool quick = harness.quick();

  const uint64_t mixed_events = quick ? 2000000 : 20000000;
  const int periodic_timers = quick ? 256 : 1024;
  const uint64_t periodic_fires = quick ? 2000000 : 20000000;
  const gs::Duration storm_span = quick ? 300000000 : 1000000000;  // 0.3s / 1s
  std::vector<int> storm_cpus = {64, 256};
  if (!quick) {
    storm_cpus.push_back(1024);
  }

  harness.Param("mixed_events", static_cast<int64_t>(mixed_events));
  harness.Param("periodic_timers", periodic_timers);
  harness.Param("periodic_fires", static_cast<int64_t>(periodic_fires));
  harness.Param("storm_span_ns", static_cast<int64_t>(storm_span));

  std::atomic<int> divergences{0};
  harness.RunAll(1000, [&](gs::bench::Run& run) {
    const uint64_t seed = run.seed();
    std::vector<gs::WorkloadResult> results;

    {
      gs::WorkloadResult w;
      w.name = "mixed";
      w.wheel = gs::RunMixed<gs::EventLoop>(seed, mixed_events);
      w.reference = gs::RunMixed<gs::ReferenceEventLoop>(seed, mixed_events);
      results.push_back(std::move(w));
    }
    {
      gs::WorkloadResult w;
      w.name = "periodic";
      w.wheel = gs::RunPeriodicHeavy<gs::EventLoop>(seed, periodic_timers,
                                                    periodic_fires);
      w.reference = gs::RunPeriodicHeavy<gs::ReferenceEventLoop>(
          seed, periodic_timers, periodic_fires);
      results.push_back(std::move(w));
    }
    for (int cpus : storm_cpus) {
      gs::WorkloadResult w;
      w.name = "tick_storm_" + std::to_string(cpus);
      w.wheel = gs::RunTickStorm<gs::EventLoop>(cpus, storm_span);
      w.reference = gs::RunTickStorm<gs::ReferenceEventLoop>(cpus, storm_span);
      results.push_back(std::move(w));
    }

    if (!gs::Report(run, results)) {
      divergences.fetch_add(1, std::memory_order_relaxed);
    }
  });

  const int finish = harness.Finish();
  if (divergences.load() > 0) {
    return 1;  // determinism failure between the two engines
  }
  return finish;
}
