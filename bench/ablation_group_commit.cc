// Ablation (§3.2): group-commit amortization.
//
// "An agent commits multiple transactions by passing all of them to the
// TXNS_COMMIT() syscall. This syscall amortizes the expensive overheads over
// several transactions. Most importantly, it amortizes the overhead of
// sending interrupts by using the batch interrupt functionality."
//
// Sweep the per-syscall transaction cap on the Fig 5 setup (56 scheduled
// Skylake CPUs, saturating round-robin load) and report agent throughput.
#include <cstdio>
#include <memory>

#include "bench/harness.h"
#include "bench/machine_trace.h"
#include "src/agent/agent_process.h"
#include "src/ghost/machine.h"
#include "src/policies/centralized_fifo.h"

namespace gs {
namespace {

constexpr Duration kTaskBurst = Microseconds(10);
Duration kMeasure = Milliseconds(200);
constexpr int kCpus = 56;

// Self-rearming burst chain (see fig5_scalability.cc): block, re-arm, re-wake
// 100 ns later, with no per-cycle heap allocation.
void ArmWorkerBurst(Kernel* k, Task* t) {
  k->StartBurst(t, kTaskBurst, [k](Task* done) {
    k->Block(done);
    k->loop()->ScheduleAfter(Nanoseconds(100), [k, done] {
      ArmWorkerBurst(k, done);
      k->Wake(done);
    });
  });
}

void SpawnWorker(Kernel& kernel, Enclave& enclave, int index) {
  Task* task = kernel.CreateTask("w/" + std::to_string(index));
  enclave.AddTask(task);
  ArmWorkerBurst(&kernel, task);
  kernel.Wake(task);
}

double Run(bench::Run& run, int max_group) {
  Machine m(Topology::IntelSkylake112(), CostModel(),
            /*with_core_sched=*/false, &run.stats());
  bench::ScopedMachineTrace trace_scope(run, m.kernel());
  auto enclave = m.CreateEnclave(CpuMask::AllUpTo(kCpus));
  CentralizedFifoPolicy::Options options;
  options.global_cpu = 0;
  options.max_group_commit = max_group;
  AgentProcess process(&m.kernel(), m.ghost_class(), enclave.get(),
                       std::make_unique<CentralizedFifoPolicy>(options));
  process.Start();
  for (int i = 0; i < 2 * kCpus; ++i) {
    SpawnWorker(m.kernel(), *enclave, i);
  }
  m.RunFor(Milliseconds(50));
  const uint64_t before = enclave->txns_committed();
  m.RunFor(kMeasure);
  return static_cast<double>(enclave->txns_committed() - before) / ToSeconds(kMeasure) / 1e6;
}

}  // namespace
}  // namespace gs

int main(int argc, char** argv) {
  using namespace gs;
  bench::Harness harness("ablation_group_commit", argc, argv);
  if (harness.quick()) {
    kMeasure = Milliseconds(100);
  }
  harness.Param("cpus", kCpus);
  harness.Param("task_burst_us", static_cast<int64_t>(kTaskBurst / 1000));
  harness.Param("measure_ms", static_cast<int64_t>(kMeasure / 1000000));
  std::printf("Ablation: group-commit size vs global-agent throughput\n"
              "(Fig 5 setup: %d scheduled CPUs, 10us tasks, saturating load).\n\n", kCpus);
  std::printf("%12s %14s\n", "max group", "Mtxn/sec");
  harness.RunAll(1, [](bench::Run& run) {
    const std::vector<int> groups = run.quick()
                                        ? std::vector<int>{1, 8, INT32_MAX}
                                        : std::vector<int>{1, 2, 4, 8, 16, 32, INT32_MAX};
    for (int group : groups) {
      const double mtxn = Run(run, group);
      std::printf("%12d %14.3f\n", group == INT32_MAX ? 0 : group, mtxn);
      std::fflush(stdout);
      run.AddRow()
          .Set("max_group", group == INT32_MAX ? 0 : group)
          .Set("mtxn_per_sec", mtxn);
    }
  });
  std::printf("(0 = unlimited; the paper's Table 3 single-vs-10 txn numbers imply\n"
              " a 1.5M -> 2.5M/s theoretical gain from batching.)\n");
  return harness.Finish();
}
