// Ablation (§4.2): preemption-timeslice sensitivity of the ghOSt-Shinjuku
// policy on the dispersive workload.
//
// The Shinjuku design's core knob: too large a slice and rare 10 ms requests
// head-of-line-block the 10 µs ones (the CFS-Shinjuku failure mode); too
// small a slice and preemption overhead eats throughput. 30 µs — the paper's
// choice — sits in the flat basin.
#include <cstdio>
#include <memory>
#include <set>

#include "bench/harness.h"
#include "bench/machine_trace.h"
#include "src/agent/agent_process.h"
#include "src/ghost/machine.h"
#include "src/policies/shinjuku.h"
#include "src/workloads/request_service.h"

namespace gs {
namespace {

constexpr Duration kShort = Microseconds(10);
constexpr Duration kLong = Milliseconds(10);
constexpr double kPLong = 0.005;
constexpr double kLoadKqps = 240;
constexpr Duration kWarmup = Milliseconds(100);
Duration kMeasure = Milliseconds(900);

CpuMask ServerCpus() {
  CpuMask mask;
  for (int cpu = 2; cpu <= 11; ++cpu) {
    mask.Set(cpu);
  }
  for (int cpu = 14; cpu <= 23; ++cpu) {
    mask.Set(cpu);
  }
  return mask;
}

struct Result {
  double p50_us = 0;
  double p99_us = 0;
  double achieved_kqps = 0;
  uint64_t preemptions = 0;
};

Result Run(bench::Run& run, Duration timeslice) {
  CostModel cost;
  cost.smt_contention_factor = 1.0;
  cost.agent_smt_contention_factor = 1.0;
  Machine m(Topology::IntelE5_24(), cost, /*with_core_sched=*/false, &run.stats());
  bench::ScopedMachineTrace trace_scope(run, m.kernel());
  CpuMask enclave_cpus = ServerCpus();
  enclave_cpus.Set(1);
  auto enclave = m.CreateEnclave(enclave_cpus);
  auto policy = MakeShinjukuPolicy(timeslice, /*global_cpu=*/1);
  CentralizedFifoPolicy* policy_ptr = policy.get();
  AgentProcess process(&m.kernel(), m.ghost_class(), enclave.get(), std::move(policy));
  process.Start();

  ThreadPoolServer server(&m.kernel(), {.num_workers = 200});
  for (Task* worker : server.workers()) {
    enclave->AddTask(worker);
  }
  BimodalServiceModel model(kShort, kLong, kPLong);
  PoissonLoadGen gen(&m.loop(), &model, kLoadKqps * 1e3, run.seed(),
                     [&server](Time t, Duration s) { server.Submit(t, s); });
  gen.Start(kWarmup + kMeasure);
  int64_t at_warmup = 0;
  m.loop().ScheduleAt(kWarmup, [&] {
    server.latency().Reset();
    at_warmup = server.completed();
  });
  m.RunFor(kWarmup + kMeasure + Milliseconds(50));

  Result r;
  r.p50_us = server.latency().PercentileUs(50);
  r.p99_us = server.latency().PercentileUs(99);
  r.achieved_kqps = static_cast<double>(server.completed() - at_warmup) /
                    ToSeconds(kMeasure + Milliseconds(50)) / 1e3;
  r.preemptions = policy_ptr->preemptions();
  return r;
}

}  // namespace
}  // namespace gs

int main(int argc, char** argv) {
  using namespace gs;
  bench::Harness harness("ablation_timeslice", argc, argv);
  if (harness.quick()) {
    kMeasure = Milliseconds(300);
  }
  harness.Param("load_kqps", kLoadKqps);
  harness.Param("measure_ms", static_cast<int64_t>(kMeasure / 1000000));
  std::printf("Ablation: ghOSt-Shinjuku preemption timeslice on the dispersive\n"
              "workload (240 kqps; 99.5%% x 10us + 0.5%% x 10ms). The paper uses 30us.\n\n");
  std::printf("%12s %10s %10s %10s %12s\n", "slice_us", "p50_us", "p99_us", "ach_kqps",
              "preemptions");
  harness.RunAll(99, [](bench::Run& run) {
    const std::vector<Duration> slices =
        run.quick()
            ? std::vector<Duration>{Microseconds(30), Milliseconds(5), 0}
            : std::vector<Duration>{Microseconds(5),   Microseconds(15), Microseconds(30),
                                    Microseconds(100), Microseconds(500), Milliseconds(5), 0};
    for (Duration slice : slices) {
      const Result r = Run(run, slice);
      if (slice > 0) {
        std::printf("%12lld %10.1f %10.1f %10.1f %12llu\n",
                    static_cast<long long>(slice / 1000), r.p50_us, r.p99_us,
                    r.achieved_kqps, (unsigned long long)r.preemptions);
      } else {
        std::printf("%12s %10.1f %10.1f %10.1f %12llu   (run-to-completion)\n", "inf",
                    r.p50_us, r.p99_us, r.achieved_kqps,
                    (unsigned long long)r.preemptions);
      }
      std::fflush(stdout);
      run.AddRow()
          .Set("slice_us", static_cast<int64_t>(slice / 1000))
          .Set("run_to_completion", slice == 0)
          .Set("p50_us", r.p50_us)
          .Set("p99_us", r.p99_us)
          .Set("achieved_kqps", r.achieved_kqps)
          .Set("preemptions", r.preemptions);
    }
  });
  return harness.Finish();
}
