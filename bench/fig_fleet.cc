// Fleet-scale sweep: offered load vs achieved throughput / tail latency /
// shed fraction for an 8-machine cluster behind each front-end balancing
// strategy (round_robin, least_loaded, consistent_hash).
//
// Every machine runs the same ghOSt stack as the single-machine benches
// (Shinjuku policy on a small SMT box); each root request fans one leaf RPC
// to the next machine, so the sweep exercises the cross-machine RPC path and
// the network model under rising load until the balancer browns out
// (shed_outstanding). The whole cluster is deterministic: the JSON produced
// for a given seed is byte-identical for any --jobs value.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/scenario/scenario.h"
#include "src/scenario/scenario_runner.h"

namespace gs {
namespace {

constexpr int kMachines = 8;
constexpr int kRpcFanout = 2;
constexpr int kShedOutstanding = 48;
constexpr double kServiceMeanUs = 100;

double kWarmupMs = 20;
double kMeasureMs = 200;
double kDrainMs = 30;

scenario::ScenarioSpec MakeSpec(double offered_kqps, const std::string& strategy,
                                uint64_t seed) {
  scenario::ScenarioSpec spec;
  spec.name = "fig_fleet";
  spec.description = "fleet load sweep";
  spec.seed = seed;
  spec.warmup_ms = kWarmupMs;
  spec.measure_ms = kMeasureMs;
  spec.drain_ms = kDrainMs;
  spec.topology.preset = "custom";
  spec.topology.sockets = 1;
  spec.topology.cores_per_socket = 2;
  spec.topology.smt = 2;
  spec.topology.cores_per_ccx = 2;
  spec.policy.kind = "shinjuku";
  spec.policy.timeslice_us = 30;
  spec.enclave.cpu_first = 1;
  spec.workload.kind = "request_service";
  spec.workload.num_workers = 24;
  spec.workload.service.model = "exponential";
  spec.workload.service.mean_us = kServiceMeanUs;
  spec.workload.phases.clear();
  spec.workload.phases.push_back(
      {kWarmupMs + kMeasureMs + kDrainMs, offered_kqps * 1e3});
  spec.fleet.emplace();
  spec.fleet->machines = kMachines;
  spec.fleet->sessions = 512;
  spec.fleet->rpc_fanout = kRpcFanout;
  spec.fleet->balancer.policy = strategy;
  spec.fleet->balancer.shed_outstanding = kShedOutstanding;
  return spec;
}

void RunSweep(bench::Harness& harness, bench::Run& run) {
  // Aggregate capacity: 8 machines x 2 worker CPUs x (1 / 100 us) = 160 k
  // requests/s = 80 k arrivals/s at fan-out 2. Sweep through saturation.
  const std::vector<double> loads =
      run.quick() ? std::vector<double>{20, 60, 100}
                  : std::vector<double>{10, 20, 40, 60, 70, 80, 90, 100, 120};
  std::printf("%-16s %10s %10s %10s %10s %10s %10s\n", "balancer", "offer_kqps",
              "ach_kqps", "p99_us", "shed", "rpcs", "maxshare");
  for (const char* strategy : {"round_robin", "least_loaded", "consistent_hash"}) {
    for (double load : loads) {
      const uint64_t seed = run.seed() + static_cast<uint64_t>(load);
      const scenario::ScenarioSpec spec = MakeSpec(load, strategy, seed);
      const scenario::ScenarioResult result =
          scenario::RunScenario(spec, &run.stats(), harness.jobs());
      const double achieved = result.envelopes.at("achieved_kqps");
      const double p99 = result.envelopes.at("p99_us");
      const double max_share = result.envelopes.count("lb_max_share")
                                   ? result.envelopes.at("lb_max_share")
                                   : 0.0;
      const int64_t shed = result.exact.at("shed");
      const int64_t rpcs = result.exact.at("rpcs");
      std::printf("%-16s %10.0f %10.1f %10.1f %10lld %10lld %10.3f\n", strategy,
                  load, achieved, p99, static_cast<long long>(shed),
                  static_cast<long long>(rpcs), max_share);
      std::fflush(stdout);
      run.AddRow()
          .Set("balancer", strategy)
          .Set("offered_kqps", load)
          .Set("achieved_kqps", achieved)
          .Set("p50_us", result.envelopes.at("p50_us"))
          .Set("p99_us", p99)
          .Set("p999_us", result.envelopes.at("p999_us"))
          .Set("generated", result.exact.at("generated"))
          .Set("completed", result.exact.at("completed"))
          .Set("shed", shed)
          .Set("rpcs", rpcs)
          .Set("net_messages", result.exact.at("net_messages"))
          .Set("lb_max_share", max_share)
          .Set("invariants_ok", result.exact.at("invariants_ok"));
    }
  }
}

}  // namespace
}  // namespace gs

int main(int argc, char** argv) {
  gs::bench::Harness harness("fig_fleet", argc, argv);
  if (harness.quick()) {
    gs::kWarmupMs = 10;
    gs::kMeasureMs = 60;
    gs::kDrainMs = 20;
  }
  harness.Param("machines", gs::kMachines);
  harness.Param("rpc_fanout", gs::kRpcFanout);
  harness.Param("shed_outstanding", gs::kShedOutstanding);
  harness.Param("service_mean_us", gs::kServiceMeanUs);
  harness.Param("warmup_ms", gs::kWarmupMs);
  harness.Param("measure_ms", gs::kMeasureMs);

  std::printf("Fleet sweep: %d machines, fan-out %d, exp(%g us) service\n",
              gs::kMachines, gs::kRpcFanout, gs::kServiceMeanUs);
  harness.RunAll(42, [&harness](gs::bench::Run& run) {
    gs::RunSweep(harness, run);
  });
  return harness.Finish();
}
