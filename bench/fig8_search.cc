// Fig 8 reproduction (§4.4): Google Search on a 256-CPU AMD Rome machine,
// CFS vs the ghOSt Search policy, over 60 seconds.
//
// Panels (a-c): normalized per-second QPS for query types A, B, C.
// Panels (d-f): normalized per-second 99% latency.
//
// Expected shape (paper): comparable QPS; ghOSt reduces p99 by ~40-50% for
// types A and B (µs-scale rebalancing + CCX/NUMA-aware placement on warm
// caches) and is comparable for type C (compute-bound, long runs).
#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench/harness.h"
#include "bench/machine_trace.h"
#include "src/agent/agent_process.h"
#include "src/ghost/machine.h"
#include "src/policies/factory.h"
#include "src/workloads/search_workload.h"

namespace gs {
namespace {

Duration kRun = Seconds(60);

struct Series {
  std::vector<double> qps[3];
  std::vector<double> p99_us[3];
  double overall_p99[3];
  double total_qps[3];
};

Series Collect(bench::Run& run, SearchWorkload& workload, const char* system) {
  const int seconds = static_cast<int>(ToSeconds(kRun));
  Series out;
  for (int type = 0; type < 3; ++type) {
    auto q = static_cast<SearchWorkload::QueryType>(type);
    WindowedSeries& series = workload.series(q);
    for (int s = 0; s < seconds && s < series.num_windows(); ++s) {
      out.qps[type].push_back(series.RateAt(s));
      out.p99_us[type].push_back(series.PercentileUsAt(s, 99));
    }
    out.overall_p99[type] = workload.latency(q).PercentileUs(99);
    out.total_qps[type] =
        static_cast<double>(workload.completed(q)) / ToSeconds(kRun);
    static const char* kNames[3] = {"A", "B", "C"};
    run.AddRow()
        .Set("system", system)
        .Set("query_type", kNames[type])
        .Set("total_qps", out.total_qps[type])
        .Set("overall_p99_us", out.overall_p99[type]);
    run.HistogramJson(
        std::string("windows_") + system + "_" + kNames[type], series.ToJson());
  }
  return out;
}

Series RunCfs(bench::Run& run, uint64_t seed) {
  Machine m(Topology::AmdRome256(), CostModel().WithCacheWarmth(),
            /*with_core_sched=*/false, &run.stats());
  SearchWorkload workload(&m.kernel(), {.seed = seed});
  workload.Start(kRun);
  m.RunFor(kRun + Milliseconds(200));
  return Collect(run, workload, "cfs");
}

Series RunGhost(bench::Run& run, uint64_t seed) {
  Machine m(Topology::AmdRome256(), CostModel().WithCacheWarmth(),
            /*with_core_sched=*/false, &run.stats());
  bench::ScopedMachineTrace trace_scope(run, m.kernel());
  auto enclave = m.CreateEnclave(m.kernel().topology().AllCpus());
  // Construct through the factory — the same path the scenario runner uses.
  scenario::PolicySpec spec;
  spec.kind = "search";
  spec.global_cpu = 0;
  AgentProcess process(&m.kernel(), m.ghost_class(), enclave.get(),
                       MakeScenarioPolicy(spec, PolicyEnv{}));
  process.Start();

  SearchWorkload workload(&m.kernel(), {.seed = seed});
  for (Task* worker : workload.workers()) {
    enclave->AddTask(worker);
  }
  workload.Start(kRun);
  m.RunFor(kRun + Milliseconds(200));
  return Collect(run, workload, "ghost");
}

void PrintPanels(const Series& cfs, const Series& ghost) {
  static const char* kNames[3] = {"A", "B", "C"};
  for (int type = 0; type < 3; ++type) {
    // Normalize as the paper does: to the run's max.
    double max_qps = 1e-9, max_p99 = 1e-9;
    const size_t n = std::min(cfs.qps[type].size(), ghost.qps[type].size());
    for (size_t s = 0; s < n; ++s) {
      max_qps = std::max({max_qps, cfs.qps[type][s], ghost.qps[type][s]});
      max_p99 = std::max({max_p99, cfs.p99_us[type][s], ghost.p99_us[type][s]});
    }
    std::printf("\n== Fig 8: query type %s (per-5s samples, normalized) ==\n",
                kNames[type]);
    std::printf("%6s %10s %10s %12s %12s\n", "t(s)", "QPS cfs", "QPS ghost", "p99 cfs",
                "p99 ghost");
    for (size_t s = 0; s < n; s += 5) {
      std::printf("%6zu %10.2f %10.2f %12.2f %12.2f\n", s, cfs.qps[type][s] / max_qps,
                  ghost.qps[type][s] / max_qps, cfs.p99_us[type][s] / max_p99,
                  ghost.p99_us[type][s] / max_p99);
    }
    std::printf("  totals: QPS cfs=%.0f ghost=%.0f (ratio %.3f) | overall p99 "
                "cfs=%.0fus ghost=%.0fus (ghost/cfs = %.2f)\n",
                cfs.total_qps[type], ghost.total_qps[type],
                ghost.total_qps[type] / cfs.total_qps[type], cfs.overall_p99[type],
                ghost.overall_p99[type],
                ghost.overall_p99[type] / cfs.overall_p99[type]);
    std::fflush(stdout);
  }
}

}  // namespace
}  // namespace gs

int main(int argc, char** argv) {
  using namespace gs;
  bench::Harness harness("fig8_search", argc, argv);
  if (harness.quick()) {
    kRun = Seconds(5);
  }
  harness.Param("run_s", static_cast<int64_t>(kRun / 1000000000));
  std::printf("Fig 8 reproduction: Google Search on AMD Rome (256 CPUs), %lld s.\n"
              "Query A: 25k qps x 3ms (NUMA-tied); B: 50k qps x 0.4ms + 2ms SSD;\n"
              "C: 8k qps x 8ms (long-living workers).\n",
              static_cast<long long>(kRun / 1000000000));
  harness.RunAll(21, [](bench::Run& run) {
    Series cfs = RunCfs(run, run.seed());
    std::printf("[cfs run done]\n");
    Series ghost = RunGhost(run, run.seed());
    std::printf("[ghost run done]\n");
    PrintPanels(cfs, ghost);
  });
  return harness.Finish();
}
