// Ablation (§4.4): the Search policy's placement optimizations.
//
// The paper: "The NUMA and CCX optimizations were critical in achieving
// parity with CFS as they delivered 27% and 10% throughput improvements",
// plus the bespoke keep-pending-100us-instead-of-migrating rule discovered
// through rapid iteration. This bench runs the Fig 8 workload under the full
// Search policy and with each placement feature disabled.
#include <cstdio>
#include <memory>

#include "bench/harness.h"
#include "bench/machine_trace.h"
#include "src/agent/agent_process.h"
#include "src/ghost/machine.h"
#include "src/policies/search.h"
#include "src/workloads/search_workload.h"

namespace gs {
namespace {

Duration kRun = Seconds(20);

struct Result {
  double p99_a = 0, p99_b = 0, p99_c = 0;
  uint64_t deferred = 0;
};

Result Run(bench::Run& run, bool ccx_aware, Duration max_pending) {
  Machine m(Topology::AmdRome256(), CostModel().WithCacheWarmth(),
            /*with_core_sched=*/false, &run.stats());
  bench::ScopedMachineTrace trace_scope(run, m.kernel());
  auto enclave = m.CreateEnclave(m.kernel().topology().AllCpus());
  SearchPolicy::Options options;
  options.global_cpu = 0;
  options.ccx_aware = ccx_aware;
  options.max_pending_before_migrate = max_pending;
  auto policy = std::make_unique<SearchPolicy>(options);
  SearchPolicy* policy_ptr = policy.get();
  AgentProcess process(&m.kernel(), m.ghost_class(), enclave.get(), std::move(policy));
  process.Start();

  SearchWorkload workload(&m.kernel(), {.seed = run.seed()});
  for (Task* worker : workload.workers()) {
    enclave->AddTask(worker);
  }
  workload.Start(kRun);
  m.RunFor(kRun + Milliseconds(200));

  Result r;
  r.p99_a = workload.latency(SearchWorkload::kA).PercentileUs(99);
  r.p99_b = workload.latency(SearchWorkload::kB).PercentileUs(99);
  r.p99_c = workload.latency(SearchWorkload::kC).PercentileUs(99);
  r.deferred = policy_ptr->deferred_for_warmth();
  return r;
}

void Print(bench::Run& run, const char* name, const Result& r) {
  std::printf("%-34s %10.0f %10.0f %10.0f %12llu\n", name, r.p99_a, r.p99_b, r.p99_c,
              (unsigned long long)r.deferred);
  std::fflush(stdout);
  run.AddRow()
      .Set("variant", name)
      .Set("p99_a_us", r.p99_a)
      .Set("p99_b_us", r.p99_b)
      .Set("p99_c_us", r.p99_c)
      .Set("deferred", r.deferred);
}

}  // namespace
}  // namespace gs

int main(int argc, char** argv) {
  using namespace gs;
  bench::Harness harness("ablation_search_placement", argc, argv);
  if (harness.quick()) {
    kRun = Seconds(3);
  }
  harness.Param("run_s", static_cast<int64_t>(kRun / 1000000000));
  std::printf("Ablation: Search policy placement features (Fig 8 workload, %lld s).\n\n",
              static_cast<long long>(kRun / 1000000000));
  std::printf("%-34s %10s %10s %10s %12s\n", "variant", "p99_A_us", "p99_B_us", "p99_C_us",
              "deferred");
  harness.RunAll(33, [](bench::Run& run) {
    Print(run, "full policy", Run(run, true, Microseconds(100)));
    Print(run, "no 100us pending rule", Run(run, true, 0));
    Print(run, "no CCX tiers (first-idle)", Run(run, false, 0));
  });
  return harness.Finish();
}
