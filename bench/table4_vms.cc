// Table 4 reproduction (§4.5): secure VM core scheduling.
//
// 32 vCPUs (16 VMs x 2) running a bwaves-like CPU-bound workload on 25
// physical cores / 50 CPUs, under three policies:
//   1. CFS            — best performance, no protection (vCPUs of different
//                       VMs may share a physical core);
//   2. in-kernel core scheduling — secure, the kernel pairs cookies;
//   3. ghOSt core scheduling     — secure, synchronized group commits.
//
// Expected shape (paper: rates 489 / 464 / 468, times 888 / 937 / 929 s):
// CFS fastest; both core schedulers a few % behind and within a whisker of
// each other; co-residency violations positive under CFS and exactly zero
// under both core schedulers.
#include <cstdio>
#include <memory>

#include "bench/harness.h"
#include "bench/machine_trace.h"
#include "src/agent/agent_process.h"
#include "src/ghost/machine.h"
#include "src/policies/vm_core_sched.h"
#include "src/workloads/vm_workload.h"

namespace gs {
namespace {

// CPU demand per vCPU; --scale=quick shrinks it (relative rates unchanged).
Duration kWork = Seconds(2);

// bwaves is memory-bandwidth-bound: SMT contention costs it ~12%, far less
// than integer codes (the paper's rates imply a mild penalty).
CostModel VmCost() {
  CostModel cost;
  cost.smt_contention_factor = 0.88;
  return cost;
}

Topology VmTopo() { return Topology::Make("vmhost-50", 1, 25, 2, 25); }

struct Result {
  double rate = 0;       // aggregate work/s ("bwaves rate"; higher better)
  double total_time = 0; // seconds until the last vCPU finishes
  uint64_t violations = 0;
};

Result Finish(Machine& m, VmWorkload& vms) {
  while (!vms.AllDone() && m.now() < Seconds(600)) {
    m.RunFor(Milliseconds(100));
  }
  Result r;
  r.total_time = ToSeconds(vms.finish_time());
  // SPECrate-style metric: sum of per-copy rates (each copy demands kWork of
  // CPU work), scaled into the same ballpark as the paper's bwaves figures.
  for (Time t : vms.completions()) {
    if (t > 0) {
      r.rate += ToSeconds(kWork) / ToSeconds(t) * 16.0;
    }
  }
  r.violations = vms.coresidency_violations();
  return r;
}

Result RunCfs(bench::Run& run) {
  Machine m(VmTopo(), VmCost(), /*with_core_sched=*/false, &run.stats());
  VmWorkload vms(&m.kernel(), {.work_per_vcpu = kWork});
  vms.StartSecuritySampler();
  vms.Start();
  return Finish(m, vms);
}

Result RunKernelCoreSched(bench::Run& run) {
  Machine m(VmTopo(), VmCost(), /*with_core_sched=*/true, &run.stats());
  VmWorkload vms(&m.kernel(), {.work_per_vcpu = kWork});
  for (Task* vcpu : vms.vcpus()) {
    m.kernel().SetSchedClass(vcpu, m.core_sched_class());
    m.core_sched_class()->SetCookie(vcpu, vms.CookieOf(vcpu->tid()));
  }
  vms.StartSecuritySampler();
  vms.Start();
  Result r = Finish(m, vms);
  r.violations += m.core_sched_class()->violations();
  return r;
}

Result RunGhostCoreSched(bench::Run& run) {
  Machine m(VmTopo(), VmCost(), /*with_core_sched=*/false, &run.stats());
  bench::ScopedMachineTrace trace_scope(run, m.kernel());
  auto enclave = m.CreateEnclave(m.kernel().topology().AllCpus());
  VmWorkload vms(&m.kernel(), {.work_per_vcpu = kWork});
  VmCoreSchedPolicy::Options options;
  options.global_cpu = 0;
  VmWorkload* vms_ptr = &vms;
  options.cookie_of = [vms_ptr](int64_t tid) { return vms_ptr->CookieOf(tid); };
  AgentProcess process(&m.kernel(), m.ghost_class(), enclave.get(),
                       std::make_unique<VmCoreSchedPolicy>(options));
  process.Start();
  for (Task* vcpu : vms.vcpus()) {
    enclave->AddTask(vcpu);
  }
  vms.StartSecuritySampler();
  vms.Start();
  return Finish(m, vms);
}

void Print(bench::Run& run, const char* system, const char* name, const Result& r,
           const char* paper) {
  std::printf("%-28s rate=%6.1f  total_time=%6.3fs  coresidency_violations=%llu   (paper: %s)\n",
              name, r.rate, r.total_time, static_cast<unsigned long long>(r.violations),
              paper);
  std::fflush(stdout);
  run.AddRow()
      .Set("system", system)
      .Set("rate", r.rate)
      .Set("total_time_s", r.total_time)
      .Set("coresidency_violations", static_cast<int64_t>(r.violations))
      .Set("paper", paper);
}

}  // namespace
}  // namespace gs

int main(int argc, char** argv) {
  using namespace gs;
  bench::Harness harness("table4_vms", argc, argv);
  if (harness.quick()) {
    kWork = Milliseconds(500);
  }
  harness.Param("work_per_vcpu_ms", static_cast<int64_t>(kWork / 1000000));
  std::printf("Table 4 reproduction: secure VM core scheduling.\n"
              "32 vCPUs (16 VMs x 2) on 25 cores / 50 CPUs, bwaves-like CPU-bound work.\n\n");
  harness.RunAll(1, [](bench::Run& run) {
    Print(run, "cfs", "CFS (no security)", RunCfs(run), "rate 489, 888 s");
    Print(run, "core_sched", "In-kernel Core Scheduling", RunKernelCoreSched(run),
          "rate 464, 937 s");
    Print(run, "ghost", "ghOSt Core Scheduling", RunGhostCoreSched(run),
          "rate 468, 929 s");
  });
  return harness.Finish();
}
